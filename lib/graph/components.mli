(** Connected components of an undirected graph. *)

val of_graph : Undirected.t -> int list list
(** Components as ascending node lists, ordered by smallest member;
    isolated nodes form singleton components. *)

val count : Undirected.t -> int
val component_of : Undirected.t -> int -> int list
(** The component containing the given node (BFS). *)

(** {2 Partition surgery}

    Incremental maintenance of a component partition under single-node
    removal with dense id re-packing (node ids above the removed one
    shift down by one — the pending-set convention). Removal can split
    only the part the node belonged to; every other part survives
    re-id'd. *)

val remove_node : int list list -> int -> int list list * int list
(** [remove_node parts node] is [(rest, survivors)]: the parts not
    containing [node], re-id'd, and the surviving members of the part
    that did contain it, re-id'd — for the caller to re-split with
    {!split_members} against its edge oracle. *)

val split_members :
  n:int -> int list -> (int * int) list -> int list list
(** [split_members ~n members edges] re-splits [members] (node ids below
    [n]) into connected sub-parts under [edges], which must only join
    members. Sub-parts are ascending node lists, ordered by smallest
    member. *)

val merge : int list list -> int list list -> int list list
(** Merge two part lists back into canonical partition order (by
    smallest member), dropping empty parts. *)
