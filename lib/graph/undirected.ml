(* Adjacency is one Bitset row per node. The clique enumerator borrows
   rows directly ({!neighbours_bitset}) and intersects neighbourhoods
   word-at-a-time, so building its per-node tables costs nothing — the
   rows *are* the tables. *)

type t = { n : int; rows : Bitset.t array }

let create n =
  if n < 0 then invalid_arg "Undirected.create: negative size";
  { n; rows = Array.init n (fun _ -> Bitset.create n) }

let node_count g = g.n
let copy g = { g with rows = Array.map Bitset.copy g.rows }

let extend g extra =
  if extra < 0 then invalid_arg "Undirected.extend: negative extra";
  let out = create (g.n + extra) in
  (* Row capacities differ, so re-add bit by bit. *)
  for i = 0 to g.n - 1 do
    Bitset.iter (Bitset.add out.rows.(i)) g.rows.(i)
  done;
  out

let check g i =
  if i < 0 || i >= g.n then invalid_arg "Undirected: node out of range"

let get g i j = Bitset.mem g.rows.(i) j

let add_edge g i j =
  check g i;
  check g j;
  if i <> j then begin
    Bitset.add g.rows.(i) j;
    Bitset.add g.rows.(j) i
  end

let remove_edge g i j =
  check g i;
  check g j;
  if i <> j then begin
    Bitset.remove g.rows.(i) j;
    Bitset.remove g.rows.(j) i
  end

let connected g i j =
  check g i;
  check g j;
  get g i j

let neighbours_bitset g i =
  check g i;
  g.rows.(i)

let iter_neighbours g i f =
  check g i;
  Bitset.iter f g.rows.(i)

let neighbours g i =
  let acc = ref [] in
  iter_neighbours g i (fun j -> acc := j :: !acc);
  List.rev !acc

let degree g i =
  check g i;
  Bitset.cardinal g.rows.(i)

let edge_count g =
  let total = ref 0 in
  for i = 0 to g.n - 1 do
    total := !total + degree g i
  done;
  !total / 2

let fold_nodes g f acc =
  let acc = ref acc in
  for i = 0 to g.n - 1 do
    acc := f !acc i
  done;
  !acc

let complement g =
  let c = create g.n in
  for i = 0 to g.n - 1 do
    for j = i + 1 to g.n - 1 do
      if not (get g i j) then add_edge c i j
    done
  done;
  c

let induced g nodes =
  let nodes = Array.of_list nodes in
  Array.iter (check g) nodes;
  let n = Array.length nodes in
  let identity =
    n = g.n
    &&
    let rec id i = i = n || (nodes.(i) = i && id (i + 1)) in
    id 0
  in
  if identity then
    (* Whole-graph induction (NaiveDCSat passes every node, each solve):
       the subgraph is the graph itself — copy the rows instead of
       running the O(n²) pair loop below. *)
    (copy g, nodes)
  else begin
    let sub = create n in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        if get g nodes.(a) nodes.(b) then add_edge sub a b
      done
    done;
    (sub, nodes)
  end

let pp ppf g =
  Format.fprintf ppf "@[<v>graph on %d nodes:" g.n;
  for i = 0 to g.n - 1 do
    let ns = neighbours g i in
    if ns <> [] then
      Format.fprintf ppf "@ %d -- %a" i
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        ns
  done;
  Format.fprintf ppf "@]"
