(* Adjacency is one Bitset row per node. The clique enumerator borrows
   rows directly ({!neighbours_bitset}) and intersects neighbourhoods
   word-at-a-time, so building its per-node tables costs nothing — the
   rows *are* the tables. *)

type t = { n : int; rows : Bitset.t array }

let create n =
  if n < 0 then invalid_arg "Undirected.create: negative size";
  { n; rows = Array.init n (fun _ -> Bitset.create n) }

let node_count g = g.n
let copy g = { g with rows = Array.map Bitset.copy g.rows }

let extend g extra =
  if extra < 0 then invalid_arg "Undirected.extend: negative extra";
  let out = create (g.n + extra) in
  (* Row capacities differ, so re-add bit by bit. *)
  for i = 0 to g.n - 1 do
    Bitset.iter (Bitset.add out.rows.(i)) g.rows.(i)
  done;
  out

let check g i =
  if i < 0 || i >= g.n then invalid_arg "Undirected: node out of range"

let get g i j = Bitset.mem g.rows.(i) j

let add_edge g i j =
  check g i;
  check g j;
  if i <> j then begin
    Bitset.add g.rows.(i) j;
    Bitset.add g.rows.(j) i
  end

let remove_edge g i j =
  check g i;
  check g j;
  if i <> j then begin
    Bitset.remove g.rows.(i) j;
    Bitset.remove g.rows.(j) i
  end

let connected g i j =
  check g i;
  check g j;
  get g i j

let neighbours_bitset g i =
  check g i;
  g.rows.(i)

let iter_neighbours g i f =
  check g i;
  Bitset.iter f g.rows.(i)

let neighbours g i =
  let acc = ref [] in
  iter_neighbours g i (fun j -> acc := j :: !acc);
  List.rev !acc

let degree g i =
  check g i;
  Bitset.cardinal g.rows.(i)

let edge_count g =
  let total = ref 0 in
  for i = 0 to g.n - 1 do
    total := !total + degree g i
  done;
  !total / 2

let fold_nodes g f acc =
  let acc = ref acc in
  for i = 0 to g.n - 1 do
    acc := f !acc i
  done;
  !acc

let complement g =
  let c = create g.n in
  for i = 0 to g.n - 1 do
    for j = i + 1 to g.n - 1 do
      if not (get g i j) then add_edge c i j
    done
  done;
  c

let induced g nodes =
  let nodes = Array.of_list nodes in
  Array.iter (check g) nodes;
  let n = Array.length nodes in
  let identity =
    n = g.n
    &&
    let rec id i = i = n || (nodes.(i) = i && id (i + 1)) in
    id 0
  in
  if identity then
    (* Whole-graph induction (NaiveDCSat passes every node, each solve):
       the subgraph is the graph itself — copy the rows instead of
       running the O(n²) pair loop below. *)
    (copy g, nodes)
  else begin
    let sub = create n in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        if get g nodes.(a) nodes.(b) then add_edge sub a b
      done
    done;
    (sub, nodes)
  end

(* Degeneracy order via the classic bucket-queue peel: repeatedly remove
   a node of minimum degree in the remaining graph (smallest id on
   ties). Each removal only decrements the degrees of its surviving
   neighbours, so total cost is O(n + m). The resulting order bounds
   every node's later-neighbour count by the degeneracy d, which is what
   keeps the clique enumerator's outer level to n subtrees of candidate
   width <= d. *)
let degeneracy_order g =
  let n = g.n in
  let order = Array.make n 0 in
  if n > 0 then begin
    let deg = Array.init n (degree g) in
    let removed = Array.make n false in
    (* Lazy-deletion binary min-heap of (degree, node) packed as
       [deg * n + node] — one int, so the min is the smallest live
       degree with ties to the smallest node id, exactly the documented
       rule. Stale entries (node removed, or its degree since lowered)
       are skipped on pop. Each edge causes at most one decrement and
       hence one extra push: O((n + m) log n) total. *)
    let cap = n + edge_count g in
    let heap = Array.make cap 0 in
    let hsize = ref 0 in
    let push key =
      let i = ref !hsize in
      incr hsize;
      heap.(!i) <- key;
      while
        !i > 0
        &&
        let p = (!i - 1) / 2 in
        heap.(p) > heap.(!i)
        &&
        let tmp = heap.(p) in
        heap.(p) <- heap.(!i);
        heap.(!i) <- tmp;
        i := p;
        true
      do
        ()
      done
    in
    let pop () =
      let top = heap.(0) in
      decr hsize;
      heap.(0) <- heap.(!hsize);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let s = ref !i in
        if l < !hsize && heap.(l) < heap.(!s) then s := l;
        if r < !hsize && heap.(r) < heap.(!s) then s := r;
        if !s = !i then continue := false
        else begin
          let tmp = heap.(!s) in
          heap.(!s) <- heap.(!i);
          heap.(!i) <- tmp;
          i := !s
        end
      done;
      top
    in
    for v = 0 to n - 1 do
      push ((deg.(v) * n) + v)
    done;
    for k = 0 to n - 1 do
      let rec take () =
        let key = pop () in
        let v = key mod n and d = key / n in
        if removed.(v) || deg.(v) <> d then take () else v
      in
      let v = take () in
      removed.(v) <- true;
      order.(k) <- v;
      Bitset.iter
        (fun u ->
          if not removed.(u) then begin
            deg.(u) <- deg.(u) - 1;
            push ((deg.(u) * n) + u)
          end)
        g.rows.(v)
    done
  end;
  order

let pp ppf g =
  Format.fprintf ppf "@[<v>graph on %d nodes:" g.n;
  for i = 0 to g.n - 1 do
    let ns = neighbours g i in
    if ns <> [] then
      Format.fprintf ppf "@ %d -- %a" i
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        ns
  done;
  Format.fprintf ppf "@]"
