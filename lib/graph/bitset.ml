type t = { n : int; words : int array }

(* 32 bits per array slot: comfortably inside OCaml's 63-bit immediate
   ints (so popcounts and masks never overflow), while still giving the
   clique enumerator and the world representation word-at-a-time set
   operations. Invariant: bits at positions >= n in the last word are
   always zero, so equality / emptiness / popcount need no masking. *)

let wbits = 32
let wmask = 0xFFFFFFFF
let nwords n = (n + wbits - 1) / wbits
let create n = { n; words = Array.make (nwords n) 0 }
let capacity t = t.n
let copy t = { n = t.n; words = Array.copy t.words }

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: element out of range"

let add t i =
  check t i;
  let w = i lsr 5 in
  t.words.(w) <- t.words.(w) lor (1 lsl (i land 31))

let remove t i =
  check t i;
  let w = i lsr 5 in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i land 31))

let mem t i =
  check t i;
  t.words.(i lsr 5) land (1 lsl (i land 31)) <> 0

let is_empty t = Array.for_all (fun w -> w = 0) t.words

(* SWAR popcount of a 32-bit value held in a wider int. *)
let popcount x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (* mask the product: OCaml ints don't wrap at 32 bits *)
  ((x * 0x01010101) land 0xFFFFFFFF) lsr 24

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let equal a b =
  a.n = b.n
  &&
  let rec go i = i < 0 || (a.words.(i) = b.words.(i) && go (i - 1)) in
  go (Array.length a.words - 1)

let binop f a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch";
  let out = create a.n in
  for i = 0 to Array.length a.words - 1 do
    out.words.(i) <- f a.words.(i) b.words.(i)
  done;
  out

let inter = binop ( land )
let union = binop ( lor )

(* [lnot y] sets bits above position 31, but [x] has none, so no
   re-masking is needed to keep the trailing-zero invariant. *)
let diff = binop (fun x y -> x land lnot y)

let inter_cardinal a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch";
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(i) land b.words.(i))
  done;
  !acc

let subset a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch";
  let rec go i =
    i < 0 || (a.words.(i) land lnot b.words.(i) = 0 && go (i - 1))
  in
  go (Array.length a.words - 1)

let iter_word f base x =
  let x = ref x in
  while !x <> 0 do
    let b = !x land - !x in
    (* lowest set bit as a power of two; its index via popcount of b-1 *)
    f (base + popcount (b - 1));
    x := !x lxor b
  done

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let x = t.words.(w) in
    if x <> 0 then iter_word f (w lsl 5) x
  done

let iter_diff f a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch";
  for w = 0 to Array.length a.words - 1 do
    let x = a.words.(w) land lnot b.words.(w) in
    if x <> 0 then iter_word f (w lsl 5) x
  done

(* Argmax of [inter_cardinal rows.(u) target] over the members [u] of
   [cand], allocation-free: the score of each candidate is a direct
   word-loop popcount, and only a strictly better score displaces the
   current best, so ties resolve to the smallest member — the
   deterministic pivot rule the clique enumerator relies on. *)
let max_inter ~rows cand target =
  let nw = Array.length target.words in
  let best = ref (-1) and best_score = ref (-1) in
  iter
    (fun u ->
      let ru = rows.(u) in
      if ru.n <> target.n then invalid_arg "Bitset.max_inter: capacity mismatch";
      let score = ref 0 in
      for i = 0 to nw - 1 do
        score := !score + popcount (ru.words.(i) land target.words.(i))
      done;
      if !score > !best_score then begin
        best := u;
        best_score := !score
      end)
    cand;
  (!best, !best_score)

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let choose_opt t =
  let rec go w =
    if w >= Array.length t.words then None
    else
      let x = t.words.(w) in
      if x = 0 then go (w + 1)
      else Some ((w lsl 5) + popcount ((x land -x) - 1))
  in
  go 0

let of_list n members =
  let t = create n in
  List.iter (add t) members;
  t

let to_list t = List.rev (fold List.cons t [])

let full n =
  let t = create n in
  let nw = nwords n in
  if nw > 0 then begin
    Array.fill t.words 0 nw wmask;
    let tail = n land 31 in
    if tail <> 0 then t.words.(nw - 1) <- (1 lsl tail) - 1
  end;
  t

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (to_list t)
