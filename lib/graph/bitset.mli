(** Fixed-capacity mutable bitsets over [0 .. n-1]. Shared by the clique
    enumerator and by the core library's possible-world representation
    (a world is the bitset of included pending transactions). *)

type t

val create : int -> t
(** All-zero bitset of the given capacity. *)

val capacity : t -> int
val copy : t -> t
val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool
val is_empty : t -> bool
val cardinal : t -> int
val equal : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b] is true when every member of [a] is in [b]. *)

val inter : t -> t -> t
(** Fresh bitset; operands must have equal capacity. *)

val union : t -> t -> t
val diff : t -> t -> t

val inter_cardinal : t -> t -> int
(** [inter_cardinal a b] is [cardinal (inter a b)] without the
    intermediate allocation. *)

val max_inter : rows:t array -> t -> t -> int * int
(** [max_inter ~rows cand target] is [(u, score)] where [u] is the
    member of [cand] maximizing [inter_cardinal rows.(u) target] and
    [score] that maximum — the Tomita pivot score |P ∩ N(u)| when
    [target] is P and [rows] the adjacency rows. Ties resolve to the
    smallest member; [(-1, -1)] when [cand] is empty. Allocation-free:
    equivalent to the naive loop over {!inter_cardinal} but without any
    intermediate bitsets. *)

val iter : (int -> unit) -> t -> unit

val iter_diff : (int -> unit) -> t -> t -> unit
(** [iter_diff f a b] applies [f] to every member of [a] not in [b], in
    ascending order, without materializing the difference. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val choose_opt : t -> int option
(** Smallest member, if any. *)

val of_list : int -> int list -> t
val to_list : t -> int list
val full : int -> t
(** [full n] contains all of [0 .. n-1]. *)

val pp : Format.formatter -> t -> unit
