(** Simple undirected graphs over the node set [0 .. n-1], represented as
    adjacency bitsets. Dense-friendly: the transaction graphs of Section 6
    ([G^fd_T], [G^{q,ind}_T]) have one node per pending transaction and are
    often dense, and the clique algorithms want O(1) adjacency tests and
    fast neighbourhood intersections. *)

type t

val create : int -> t
(** [create n] is the edgeless graph on [n] nodes. *)

val node_count : t -> int

val copy : t -> t

val extend : t -> int -> t
(** [extend g extra] is a fresh graph with [extra] additional isolated
    nodes and all of [g]'s edges. *)

val add_edge : t -> int -> int -> unit
(** Self-loops are ignored. Out-of-range nodes raise [Invalid_argument]. *)

val remove_edge : t -> int -> int -> unit
val connected : t -> int -> int -> bool
val degree : t -> int -> int
val edge_count : t -> int
val neighbours : t -> int -> int list
(** Ascending order. *)

val neighbours_bitset : t -> int -> Bitset.t
(** The node's adjacency row itself — shared with the graph, not a
    copy. Treat as read-only; mutating it corrupts the graph. Lets the
    clique enumerator use rows as its neighbour tables without an
    O(n²) rebuild. *)

val iter_neighbours : t -> int -> (int -> unit) -> unit
val fold_nodes : t -> ('a -> int -> 'a) -> 'a -> 'a
val complement : t -> t
val induced : t -> int list -> t * int array
(** [induced g nodes] is the subgraph induced by [nodes] with nodes
    renumbered [0..]; the returned array maps new indices back to the
    original node ids. *)

val degeneracy_order : t -> int array
(** A degeneracy ordering of the nodes: repeatedly remove a node of
    minimum degree in the remaining graph (smallest id on ties — fully
    deterministic). Every node has at most [d] neighbours *later* in the
    order, where [d] is the graph's degeneracy, so rooting a clique
    search at each node with only its later neighbours as candidates
    yields [n] subtrees of width at most [d]. O(n + m). *)

val pp : Format.formatter -> t -> unit
