let of_graph g =
  let n = Undirected.node_count g in
  let uf = Union_find.create n in
  for i = 0 to n - 1 do
    Undirected.iter_neighbours g i (fun j -> if j > i then Union_find.union uf i j)
  done;
  Union_find.groups uf

let count g = List.length (of_graph g)

(* --- partition surgery (single-node removal) ----------------------- *)

(* Removing one node only ever touches the part that contains it: every
   other part keeps its edges and merely re-identifies (dense re-packing
   shifts ids above [node] down by one, mirroring the id re-packing of a
   pending-set removal). The touched part's survivors are returned for
   the caller to re-split against an edge oracle — the partition itself
   has no edges to consult. *)
let remove_node parts node =
  let reid x = if x > node then x - 1 else x in
  let touched, rest = List.partition (List.mem node) parts in
  let rest = List.map (List.map reid) rest in
  let survivors =
    match touched with
    | [] -> []
    | part :: _ ->
        List.filter_map
          (fun x -> if x = node then None else Some (reid x))
          part
  in
  (rest, survivors)

(* Re-split [members] into connected sub-parts under [edges] (which must
   join members only). Built on the same union-find as {!of_graph}, so
   the sub-parts come out in canonical form: ascending node lists. *)
let split_members ~n members edges =
  let uf = Union_find.create n in
  List.iter (fun (a, b) -> Union_find.union uf a b) edges;
  let member = Array.make n false in
  List.iter (fun m -> member.(m) <- true) members;
  List.filter
    (fun group -> match group with m :: _ -> member.(m) | [] -> false)
    (Union_find.groups uf)

(* Canonical partition order: parts ascending, sorted by smallest member
   — the invariant {!of_graph} establishes and every incremental
   maintainer must preserve. *)
let merge a b =
  List.sort
    (fun p q ->
      match (p, q) with
      | x :: _, y :: _ -> Int.compare x y
      | [], _ -> -1
      | _, [] -> 1)
    (List.filter (fun p -> p <> []) (a @ b))

let component_of g start =
  let n = Undirected.node_count g in
  let seen = Array.make n false in
  let queue = Queue.create () in
  Queue.add start queue;
  seen.(start) <- true;
  let acc = ref [] in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    acc := v :: !acc;
    Undirected.iter_neighbours g v (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          Queue.add w queue
        end)
  done;
  List.sort Int.compare !acc
