(** Maximal-clique enumeration: the Bron–Kerbosch algorithm (CACM 1973)
    with the pivoting rule of Tomita, Tanaka and Takahashi (TCS 2006),
    exactly the combination the paper uses inside OptDCSat (Section 6.3).

    Enumeration is lazy in two flavours: a callback that may abort early
    — denial constraint checking stops at the first violating world — and
    a resumable step-wise generator that hands cliques out one at a time,
    so that a scheduler can distribute them as work items. *)

val generator : ?interrupt:(unit -> bool) -> Undirected.t -> unit -> int list option
(** [generator g] is a stateful puller: each call produces the next
    maximal clique (ascending node list; isolated nodes yield singleton
    cliques) or [None] once the enumeration is exhausted. The traversal
    state lives in the returned closure, so several generators over the
    same graph are independent. Enumeration order is identical to
    {!iter_maximal_cliques}.

    [interrupt] is a cooperative cancellation hook, polled once per
    branching step of the search — i.e. {e between} yields too, so a
    caller's deadline cuts even an exponentially long gap separating two
    consecutive maximal cliques. Once it returns [true] the generator
    permanently answers [None]; the enumeration prefix already produced
    is unaffected. *)

val iter_maximal_cliques : Undirected.t -> (int list -> [ `Continue | `Stop ]) -> unit
(** Calls the function once per maximal clique (ascending node list,
    isolated nodes yield singleton cliques). Returning [`Stop] aborts the
    enumeration. *)

val maximal_cliques : Undirected.t -> int list list
(** All maximal cliques, in enumeration order. *)

val count_maximal_cliques : Undirected.t -> int
