(** Maximal-clique enumeration: the Bron–Kerbosch algorithm (CACM 1973)
    with the pivoting rule of Tomita, Tanaka and Takahashi (TCS 2006),
    exactly the combination the paper uses inside OptDCSat (Section 6.3),
    rooted at a degeneracy ordering of the nodes (Eppstein–Löffler–Strash
    style): the outer level is split into one subtree per node, each of
    candidate width at most the graph's degeneracy.

    Enumeration comes in three flavours: a callback that may abort early
    — denial constraint checking stops at the first violating world — a
    resumable step-wise generator that hands cliques out one at a time,
    and a work-stealing pool ({!Par}) that enumerates the {e same} search
    tree from several domains at once.

    All flavours walk one canonical tree. A tree node is named by its
    {e path} — the branch indices from the top (root [i] is [[|i|]], its
    [j]-th branch [[|i; j|]], ...). Maximal cliques are the leaves; leaf
    paths are prefix-free and their lexicographic order ({!path_compare})
    is exactly the sequential emission order, which is what keeps the
    parallel pool's lowest-path winner identical to the sequential
    first-found result. *)

val generator : ?interrupt:(unit -> bool) -> Undirected.t -> unit -> int list option
(** [generator g] is a stateful puller: each call produces the next
    maximal clique (ascending node list; isolated nodes yield singleton
    cliques) or [None] once the enumeration is exhausted. The traversal
    state lives in the returned closure, so several generators over the
    same graph are independent. Enumeration order is identical to
    {!iter_maximal_cliques}.

    [interrupt] is a cooperative cancellation hook, polled once per
    branching step of the search — i.e. {e between} yields too, so a
    caller's deadline cuts even an exponentially long gap separating two
    consecutive maximal cliques. Once it returns [true] the generator
    permanently answers [None]; the enumeration prefix already produced
    is unaffected. *)

val iter_maximal_cliques : Undirected.t -> (int list -> [ `Continue | `Stop ]) -> unit
(** Calls the function once per maximal clique (ascending node list,
    isolated nodes yield singleton cliques). Returning [`Stop] aborts the
    enumeration. *)

val maximal_cliques : Undirected.t -> int list list
(** All maximal cliques, in enumeration order. *)

val count_maximal_cliques : Undirected.t -> int

val path_compare : int array -> int array -> int
(** Lexicographic order on tree paths; on two leaf paths this is exactly
    the sequential enumeration order. *)

val count_upto : Undirected.t -> int array -> int
(** [count_upto g path] is the number of maximal cliques whose tree path
    is [<= path] — i.e. the 1-based position of the leaf at [path] in
    sequential enumeration order. A pure graph walk (no worlds, no
    stored cliques): subtrees entirely after [path] are pruned, so a
    violated parallel run can recover the exact sequential pulled /
    evaluated counts without having recorded its enumeration. *)

module Par : sig
  (** Work-stealing enumeration of the same tree. Each worker owns a
      deque of unexplored frames; exhausted workers claim fresh root
      subtrees from a shared cursor, then steal half the branch range of
      the shallowest splittable frame of a victim. Termination is
      detected by a live-work token count; {!prune} lets the consumer
      cut every subtree strictly after a known winning leaf, preserving
      the deterministic lowest-path winner. *)

  type t

  val create : ?interrupt:(unit -> bool) -> workers:int -> Undirected.t -> t
  (** [interrupt] is shared by all workers (it must be domain-safe, like
      [Engine.Budget.interrupt]) and is sticky: once it fires, every
      worker's {!next} permanently answers [None]. *)

  val next : t -> worker:int -> (int array * int list) option
  (** [next t ~worker] is the next maximal clique claimed by [worker]
      (in [0 .. workers-1], exclusive to one domain): its tree path and
      the ascending node list. Blocks (spinning cooperatively) while
      other workers still hold unexplored work; [None] means the whole
      enumeration is exhausted, pruned or interrupted. The union of all
      workers' cliques is exactly the sequential enumeration minus
      subtrees pruned after {!prune}. *)

  val prune : t -> int array -> unit
  (** [prune t path] records a winning leaf: subtrees every leaf of
      which is lexicographically after [path] are abandoned. Keeps the
      minimum over all calls, so racing workers can only tighten it. *)

  val steals : t -> int
  (** Successful steal operations so far. *)

  val subtrees : t -> int
  (** Root subtrees claimed so far. *)
end
