(* Neighbour bitsets are materialized once; the search then works on
   bitset intersections. Pivot choice: the vertex of P ∪ X with the most
   neighbours inside P, which minimizes the branching set P \ N(pivot).

   The fd compatibility graphs this runs on are *dense* (most transaction
   pairs are compatible), so both the pivot score |P ∩ N(u)| and the
   branching set P \ N(pivot) are computed through the complement
   adjacency lists, which are short exactly when the graph is dense:

     |P ∩ N(u)|    = |P| - [u ∈ P] - |P ∩ comp(u)|
     P \ N(pivot)  = ({pivot} ∩ P) ∪ (comp(pivot) ∩ P)

   This changes the per-frame cost from |P ∪ X| bitset intersections to
   a handful of membership tests, while selecting the *same* pivot and
   emitting cliques in the *same* order as the direct formulation
   (candidates are scored in ascending P-then-X order with strict
   improvement, exactly as before). On sparse graphs the complement
   lists are long and this degrades to the dense-matrix cost — fine for
   the small induced component subgraphs the solver feeds us.

   The recursion is expressed as an explicit stack of frames so that the
   enumeration can be suspended between cliques: [generator] hands the
   cliques out one at a time, which lets a solver engine treat them as
   work items to distribute. Consecutive cliques come from adjacent
   branches of the search tree and therefore share long prefixes — world
   switching downstream is cheap when applied as a delta. *)

type frame = {
  r : int list;  (* current clique under construction *)
  p : Bitset.t;  (* candidates still extending r *)
  x : Bitset.t;  (* vertices already covered by earlier branches *)
  mutable todo : int list;  (* P \ N(pivot), ascending, not yet branched *)
}

let generator ?interrupt g =
  let n = Undirected.node_count g in
  if n = 0 then fun () -> None
  else begin
    (* [interrupt] is polled once per branching step, not once per yield:
       on adversarial graphs the search can expand exponentially many
       frames between two maximal cliques, and a deadline must be able to
       cut the enumeration inside that gap. Once it fires the generator
       is exhausted for good. *)
    let interrupted =
      match interrupt with
      | None -> fun () -> false
      | Some stop ->
          let dead = ref false in
          fun () ->
            !dead
            ||
            if stop () then begin
              dead := true;
              true
            end
            else false
    in
    (* Borrowed adjacency rows — read-only here (only intersected). *)
    let neigh = Array.init n (Undirected.neighbours_bitset g) in
    let all = Bitset.full n in
    let comp =
      (* complement adjacency as ascending int arrays, self excluded *)
      Array.init n (fun i ->
          let acc = ref [] in
          Bitset.iter_diff (fun j -> if j <> i then acc := j :: !acc) all
            neigh.(i);
          Array.of_list (List.rev !acc))
    in
    let pick_pivot p x =
      let pcard = Bitset.cardinal p in
      let best = ref (-1) and best_score = ref (-1) in
      let consider in_p u =
        let missing = ref (if in_p then 1 else 0) in
        let cu = comp.(u) in
        for i = 0 to Array.length cu - 1 do
          if Bitset.mem p cu.(i) then incr missing
        done;
        let score = pcard - !missing in
        if score > !best_score then begin
          best := u;
          best_score := score
        end
      in
      Bitset.iter (consider true) p;
      Bitset.iter (consider false) x;
      !best
    in
    let frame r p x =
      let pivot = pick_pivot p x in
      let todo =
        let acc = ref [] in
        let cu = comp.(pivot) in
        for i = Array.length cu - 1 downto 0 do
          if Bitset.mem p cu.(i) then acc := cu.(i) :: !acc
        done;
        if Bitset.mem p pivot then
          List.merge Int.compare [ pivot ] !acc
        else !acc
      in
      { r; p; x; todo }
    in
    let stack = ref [ frame [] (Bitset.full n) (Bitset.create n) ] in
    let rec next () =
      if interrupted () then None
      else
      match !stack with
      | [] -> None
      | f :: rest -> (
          match f.todo with
          | [] ->
              stack := rest;
              next ()
          | v :: tl ->
              f.todo <- tl;
              let p' = Bitset.inter f.p neigh.(v)
              and x' = Bitset.inter f.x neigh.(v) in
              let r' = v :: f.r in
              Bitset.remove f.p v;
              Bitset.add f.x v;
              if Bitset.is_empty p' && Bitset.is_empty x' then
                Some (List.sort Int.compare r')
              else begin
                stack := frame r' p' x' :: !stack;
                next ()
              end)
    in
    next
  end

let iter_maximal_cliques g f =
  let next = generator g in
  let rec go () =
    match next () with
    | None -> ()
    | Some clique -> ( match f clique with `Continue -> go () | `Stop -> ())
  in
  go ()

let maximal_cliques g =
  let acc = ref [] in
  iter_maximal_cliques g (fun c ->
      acc := c :: !acc;
      `Continue);
  List.rev !acc

let count_maximal_cliques g =
  let count = ref 0 in
  iter_maximal_cliques g (fun _ ->
      incr count;
      `Continue);
  !count
