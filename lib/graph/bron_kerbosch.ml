(* Neighbour bitsets are materialized once; the search then works purely
   on bitset intersections. Pivot choice: the vertex of P ∪ X with the most
   neighbours inside P, which minimizes the branching set P \ N(pivot).

   The recursion is expressed as an explicit stack of frames so that the
   enumeration can be suspended between cliques: [generator] hands the
   cliques out one at a time, which lets a solver engine treat them as
   work items to distribute. [iter_maximal_cliques] is a thin wrapper and
   enumerates in exactly the order of the original recursive
   formulation. *)

type frame = {
  r : int list;  (* current clique under construction *)
  p : Bitset.t;  (* candidates still extending r *)
  x : Bitset.t;  (* vertices already covered by earlier branches *)
  mutable todo : int list;  (* P \ N(pivot), ascending, not yet branched *)
}

let generator g =
  let n = Undirected.node_count g in
  if n = 0 then fun () -> None
  else begin
    let neigh =
      Array.init n (fun i ->
          let b = Bitset.create n in
          Undirected.iter_neighbours g i (Bitset.add b);
          b)
    in
    let pick_pivot p x =
      let best = ref (-1) and best_score = ref (-1) in
      let consider u =
        let score = Bitset.cardinal (Bitset.inter p neigh.(u)) in
        if score > !best_score then begin
          best := u;
          best_score := score
        end
      in
      Bitset.iter consider p;
      Bitset.iter consider x;
      !best
    in
    let frame r p x =
      let pivot = pick_pivot p x in
      { r; p; x; todo = Bitset.to_list (Bitset.diff p neigh.(pivot)) }
    in
    let stack = ref [ frame [] (Bitset.full n) (Bitset.create n) ] in
    let rec next () =
      match !stack with
      | [] -> None
      | f :: rest -> (
          match f.todo with
          | [] ->
              stack := rest;
              next ()
          | v :: tl ->
              f.todo <- tl;
              let p' = Bitset.inter f.p neigh.(v)
              and x' = Bitset.inter f.x neigh.(v) in
              let r' = v :: f.r in
              Bitset.remove f.p v;
              Bitset.add f.x v;
              if Bitset.is_empty p' && Bitset.is_empty x' then
                Some (List.sort Int.compare r')
              else begin
                stack := frame r' p' x' :: !stack;
                next ()
              end)
    in
    next
  end

let iter_maximal_cliques g f =
  let next = generator g in
  let rec go () =
    match next () with
    | None -> ()
    | Some clique -> ( match f clique with `Continue -> go () | `Stop -> ())
  in
  go ()

let maximal_cliques g =
  let acc = ref [] in
  iter_maximal_cliques g (fun c ->
      acc := c :: !acc;
      `Continue);
  List.rev !acc

let count_maximal_cliques g =
  let count = ref 0 in
  iter_maximal_cliques g (fun _ ->
      incr count;
      `Continue);
  !count
