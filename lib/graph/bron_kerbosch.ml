(* Degeneracy-rooted Bron–Kerbosch with Tomita pivoting.

   Both entry points — the sequential [generator] and the work-stealing
   [Par] pool — walk the *same* canonical search tree:

     - The outer level is the degeneracy order: root [i] explores the
       node [v = order.(i)] with R = {v}, P = N(v) ∩ {later in order},
       X = N(v) ∩ {earlier in order}. Every maximal clique is emitted
       exactly once, inside the subtree of its minimum-rank member, and
       each root's candidate set has width at most the degeneracy.
     - Below the roots, branches follow the Tomita pivot rule: pivot =
       argmax of |P ∩ N(u)| over P then X (ties to the smallest node,
       X wins only on strict improvement), branching set P \ N(pivot)
       in ascending node order.

   A tree node is identified by its *path*: the array of branch indices
   taken from the virtual top (so a root is [|i|], its j-th branch
   [|i; j|], ...). Leaves — nodes with both P and X empty — are the
   maximal cliques; leaf paths are prefix-free, and lexicographic order
   on leaf paths is exactly the sequential DFS emission order. That
   gives the parallel pool a deterministic winner (minimum path) and
   lets a violated run recover the exact sequential clique count with a
   cheap post-hoc graph-only walk ([count_upto]).

   Pivot scoring runs through {!Bitset.max_inter} — a word-level argmax
   over the borrowed adjacency rows, no intermediate bitsets. *)

type prep = {
  n : int;
  neigh : Bitset.t array;  (* borrowed adjacency rows, read-only *)
  order : int array;  (* degeneracy order: order.(i) = i-th root node *)
  rank : int array;  (* inverse of order *)
}

let prep g =
  let n = Undirected.node_count g in
  let neigh = Array.init n (Undirected.neighbours_bitset g) in
  let order = Undirected.degeneracy_order g in
  let rank = Array.make n 0 in
  Array.iteri (fun i v -> rank.(v) <- i) order;
  { n; neigh; order; rank }

(* Root [i]'s P/X split of N(order.(i)) by rank. Fresh bitsets — the
   walkers mutate them as branching advances. *)
let root_px pr v =
  let p = Bitset.create pr.n and x = Bitset.create pr.n in
  let rv = pr.rank.(v) in
  Bitset.iter
    (fun u -> if pr.rank.(u) > rv then Bitset.add p u else Bitset.add x u)
    pr.neigh.(v);
  (p, x)

(* Branching set of a non-leaf node: P \ N(pivot), ascending. Empty
   when P is empty or an X-pivot dominates P (a dead end: no maximal
   clique below). Precondition: P and X not both empty. *)
let branch_todo pr p x =
  let bp, sp = Bitset.max_inter ~rows:pr.neigh p p in
  let bx, sx = Bitset.max_inter ~rows:pr.neigh x p in
  let pivot = if sx > sp then bx else bp in
  let acc = ref [] in
  Bitset.iter_diff (fun j -> acc := j :: !acc) p pr.neigh.(pivot);
  (* !acc is descending; fill back-to-front to get ascending *)
  let len = List.length !acc in
  let todo = Array.make len 0 in
  List.iteri (fun k v -> todo.(len - 1 - k) <- v) !acc;
  todo

let path_snoc path i =
  let l = Array.length path in
  let out = Array.make (l + 1) i in
  Array.blit path 0 out 0 l;
  out

(* Lexicographic order on paths, shorter-prefix-first tiebreak. Leaf
   paths are prefix-free so the tiebreak never decides between two
   cliques; it only makes the order total. *)
let path_compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec go k =
    if k = la || k = lb then Int.compare la lb
    else
      let c = Int.compare a.(k) b.(k) in
      if c <> 0 then c else go (k + 1)
  in
  go 0

(* [beyond prefix best]: true iff *every* leaf under the tree node at
   [prefix] has path > [best] — i.e. the first difference between the
   two already favours [best]. When [prefix] is a prefix of [best] the
   subtree may still contain smaller leaves, so the answer is false. *)
let beyond prefix best =
  let n = min (Array.length prefix) (Array.length best) in
  let rec go k =
    if k = n then false
    else if prefix.(k) = best.(k) then go (k + 1)
    else prefix.(k) > best.(k)
  in
  go 0

(* Sticky interrupt: polled once per branching step, not once per
   yield — on adversarial graphs the search can expand exponentially
   many frames between two maximal cliques, and a deadline must be able
   to cut the enumeration inside that gap. Once it fires the walk is
   dead for good. *)
let sticky = function
  | None -> fun () -> false
  | Some stop ->
      let dead = ref false in
      fun () ->
        !dead
        ||
        if stop () then begin
          dead := true;
          true
        end
        else false

(* ------------------------------------------------------------------ *)
(* Sequential generator                                               *)

type sframe = {
  sr : int list;  (* current clique under construction *)
  sp : Bitset.t;  (* candidates still extending sr; shrinks as we branch *)
  sx : Bitset.t;  (* vertices covered by earlier branches; grows *)
  stodo : int array;
  mutable scur : int;
}

let mk_sframe pr r p x =
  let todo = branch_todo pr p x in
  if Array.length todo = 0 then None
  else Some { sr = r; sp = p; sx = x; stodo = todo; scur = 0 }

let generator ?interrupt g =
  let pr = prep g in
  if pr.n = 0 then fun () -> None
  else begin
    let interrupted = sticky interrupt in
    let stack = ref [] in
    let ri = ref 0 in
    let rec next () =
      if interrupted () then None
      else
        match !stack with
        | f :: rest ->
            if f.scur >= Array.length f.stodo then begin
              stack := rest;
              next ()
            end
            else begin
              let v = f.stodo.(f.scur) in
              f.scur <- f.scur + 1;
              let p' = Bitset.inter f.sp pr.neigh.(v)
              and x' = Bitset.inter f.sx pr.neigh.(v) in
              let r' = v :: f.sr in
              Bitset.remove f.sp v;
              Bitset.add f.sx v;
              if Bitset.is_empty p' && Bitset.is_empty x' then
                Some (List.sort Int.compare r')
              else begin
                (match mk_sframe pr r' p' x' with
                | Some fr -> stack := fr :: !stack
                | None -> ());
                next ()
              end
            end
        | [] ->
            if !ri >= pr.n then None
            else begin
              let i = !ri in
              incr ri;
              let v = pr.order.(i) in
              let p, x = root_px pr v in
              if Bitset.is_empty p && Bitset.is_empty x then Some [ v ]
              else begin
                (match mk_sframe pr [ v ] p x with
                | Some fr -> stack := [ fr ]
                | None -> ());
                next ()
              end
            end
    in
    next
  end

let iter_maximal_cliques g f =
  let next = generator g in
  let rec go () =
    match next () with
    | None -> ()
    | Some clique -> ( match f clique with `Continue -> go () | `Stop -> ())
  in
  go ()

let maximal_cliques g =
  let acc = ref [] in
  iter_maximal_cliques g (fun c ->
      acc := c :: !acc;
      `Continue);
  List.rev !acc

let count_maximal_cliques g =
  let count = ref 0 in
  iter_maximal_cliques g (fun _ ->
      incr count;
      `Continue);
  !count

(* ------------------------------------------------------------------ *)
(* Post-hoc prefix count                                              *)

exception Done

let count_upto g target =
  let pr = prep g in
  let count = ref 0 in
  (* [on_prefix]: the current node's path equals target's prefix of the
     same depth. Off-prefix nodes are strictly before the target in DFS
     order, so their whole subtree counts with no further comparisons;
     on the prefix, branches left of target.(depth) fall off-prefix,
     the one at target.(depth) stays on, and anything right of it is
     beyond the target and pruned (unreachable when [target] is a real
     leaf path — we meet the leaf first and stop). *)
  let rec walk on_prefix depth p x =
    if Bitset.is_empty p && Bitset.is_empty x then begin
      incr count;
      if on_prefix then raise Done
    end
    else begin
      let todo = branch_todo pr p x in
      for j = 0 to Array.length todo - 1 do
        let v = todo.(j) in
        let child_on =
          on_prefix
          &&
          if depth >= Array.length target || j > target.(depth) then raise Done
          else j = target.(depth)
        in
        let p' = Bitset.inter p pr.neigh.(v)
        and x' = Bitset.inter x pr.neigh.(v) in
        walk child_on (depth + 1) p' x';
        Bitset.remove p v;
        Bitset.add x v
      done
    end
  in
  (try
     let i = ref 0 in
     while !i < pr.n do
       let v = pr.order.(!i) in
       let child_on =
         if Array.length target = 0 || !i > target.(0) then raise Done
         else !i = target.(0)
       in
       let p, x = root_px pr v in
       walk child_on 1 p x;
       incr i
     done
   with Done -> ());
  !count

(* ------------------------------------------------------------------ *)
(* Work-stealing pool                                                 *)

module Par = struct
  (* A frame is one interior tree node with branches [lo, hi) still
     unexplored. [fpr]/[fxr] are the *running* P/X — the frozen sets of
     the node advanced past branches [0, lo): every mutation happens
     under the owning deque's mutex, and a thief splitting off the
     suffix [mid, hi) rebuilds its own running sets by advancing copies
     of the victim's over todo.[lo, mid). [fpath] and [ftodo] are
     immutable and safely shared between the halves. *)
  type frame = {
    fpath : int array;
    fr : int list;
    ftodo : int array;
    mutable lo : int;
    mutable hi : int;
    fpr : Bitset.t;
    fxr : Bitset.t;
  }

  type deque = { dmutex : Mutex.t; mutable frames : frame list (* head = newest *) }

  type t = {
    pp : prep;
    workers : int;
    interrupted : unit -> bool;
    cursor : int Atomic.t;  (* next unclaimed root index *)
    live : int Atomic.t;  (* deque frames + in-hand work tokens *)
    best : int array option Atomic.t;  (* min winning leaf path so far *)
    deques : deque array;
    steal_count : int Atomic.t;
    subtree_count : int Atomic.t;
  }

  let create ?interrupt ~workers g =
    if workers < 1 then invalid_arg "Bron_kerbosch.Par.create: workers < 1";
    let stop = sticky interrupt in
    (* The caller's hook must already be domain-safe (the engine shares
       Budget.interrupt across workers); stickiness needs an atomic. *)
    let dead = Atomic.make false in
    let interrupted () =
      Atomic.get dead
      ||
      if stop () then begin
        Atomic.set dead true;
        true
      end
      else false
    in
    {
      pp = prep g;
      workers;
      interrupted;
      cursor = Atomic.make 0;
      live = Atomic.make 0;
      best = Atomic.make None;
      deques =
        Array.init workers (fun _ -> { dmutex = Mutex.create (); frames = [] });
      steal_count = Atomic.make 0;
      subtree_count = Atomic.make 0;
    }

  let steals t = Atomic.get t.steal_count
  let subtrees t = Atomic.get t.subtree_count

  let prune t path =
    let rec cas () =
      let cur = Atomic.get t.best in
      match cur with
      | Some b when path_compare b path <= 0 -> ()
      | _ -> if not (Atomic.compare_and_set t.best cur (Some path)) then cas ()
    in
    cas ()

  let beyond_best t prefix =
    match Atomic.get t.best with None -> false | Some b -> beyond prefix b

  let push_own t w f =
    let dq = t.deques.(w) in
    Mutex.lock dq.dmutex;
    dq.frames <- f :: dq.frames;
    Atomic.incr t.live;
    Mutex.unlock dq.dmutex

  (* Push a frame whose live token is already accounted for (a stolen
     frame: the split case bumps [live] under the victim's lock, the
     move-whole case carries the victim frame's own count across).
     Incrementing again here would leak a token per steal and keep the
     termination test from ever firing. *)
  let push_stolen t w f =
    let dq = t.deques.(w) in
    Mutex.lock dq.dmutex;
    dq.frames <- f :: dq.frames;
    Mutex.unlock dq.dmutex

  (* Take the next branch of the newest frame of [w]'s own deque.
     Returns [`Empty] when the deque is empty, [`Pruned] when the frame
     head was dropped against the current best path, and
     [`Branch (path, r, p, x)] — with a live-token acquired — when a
     child node was carved out. *)
  let take_own t w =
    let dq = t.deques.(w) in
    Mutex.lock dq.dmutex;
    match dq.frames with
    | [] ->
        Mutex.unlock dq.dmutex;
        `Empty
    | f :: rest ->
        let i = f.lo in
        let branch_path = path_snoc f.fpath i in
        if beyond_best t branch_path then begin
          (* every leaf under branches [lo, hi) is beyond the winner *)
          dq.frames <- rest;
          Atomic.decr t.live;
          Mutex.unlock dq.dmutex;
          `Pruned
        end
        else begin
          Atomic.incr t.live;
          let v = f.ftodo.(i) in
          let p' = Bitset.inter f.fpr t.pp.neigh.(v)
          and x' = Bitset.inter f.fxr t.pp.neigh.(v) in
          Bitset.remove f.fpr v;
          Bitset.add f.fxr v;
          f.lo <- i + 1;
          if f.lo >= f.hi then begin
            dq.frames <- rest;
            Atomic.decr t.live
          end;
          Mutex.unlock dq.dmutex;
          `Branch (branch_path, v :: f.fr, p', x')
        end

  (* Under the victim's lock: split the oldest frame that still has two
     or more branches (the shallowest = biggest subtree); if every frame
     is down to its last branch, take the oldest whole. Returns a frame
     already accounted for in [live] that the thief must push. *)
  let steal_from t dq =
    let rec scan frames last_split last_any =
      match frames with
      | [] -> (last_split, last_any)
      | f :: rest ->
          scan rest (if f.hi - f.lo >= 2 then Some f else last_split) (Some f)
    in
    match scan dq.frames None None with
    | Some f, _ ->
        let mid = (f.lo + f.hi + 1) / 2 in
        let pr' = Bitset.copy f.fpr and xr' = Bitset.copy f.fxr in
        for k = f.lo to mid - 1 do
          Bitset.remove pr' f.ftodo.(k);
          Bitset.add xr' f.ftodo.(k)
        done;
        let nf =
          {
            fpath = f.fpath;
            fr = f.fr;
            ftodo = f.ftodo;
            lo = mid;
            hi = f.hi;
            fpr = pr';
            fxr = xr';
          }
        in
        f.hi <- mid;
        Atomic.incr t.live;
        Some nf
    | None, Some f ->
        (* single-branch frames only: move the oldest across; it keeps
           its live count *)
        dq.frames <- List.filter (fun g -> g != f) dq.frames;
        Some f
    | None, None -> None

  let try_steal t w =
    let rec go k =
      if k >= t.workers then false
      else
        let vi = (w + 1 + k) mod t.workers in
        if vi = w then go (k + 1)
        else
          let dq = t.deques.(vi) in
          if Mutex.try_lock dq.dmutex then begin
            let stolen = steal_from t dq in
            Mutex.unlock dq.dmutex;
            match stolen with
            | Some f ->
                push_stolen t w f;
                Atomic.incr t.steal_count;
                true
            | None -> go (k + 1)
          end
          else go (k + 1)
    in
    go 0

  let next t ~worker =
    let w = worker in
    if w < 0 || w >= t.workers then invalid_arg "Bron_kerbosch.Par.next";
    (* [process] holds one live token for the child node in hand;
       releases it before returning a leaf or resuming the loop. *)
    let rec process path r p x =
      if Bitset.is_empty p && Bitset.is_empty x then begin
        Atomic.decr t.live;
        Some (path, List.sort Int.compare r)
      end
      else begin
        let todo = branch_todo t.pp p x in
        if Array.length todo > 0 then
          push_own t w
            {
              fpath = path;
              fr = r;
              ftodo = todo;
              lo = 0;
              hi = Array.length todo;
              fpr = p;
              fxr = x;
            };
        Atomic.decr t.live;
        loop ()
      end
    and claim_root () =
      (* [live] is bumped *before* the cursor moves: any worker that
         observes the advanced cursor also observes the token, so the
         termination test (roots exhausted && live = 0) can't fire while
         a root claim is in flight. *)
      Atomic.incr t.live;
      let i = Atomic.fetch_and_add t.cursor 1 in
      if i >= t.pp.n then begin
        Atomic.decr t.live;
        `Exhausted
      end
      else begin
        Atomic.incr t.subtree_count;
        if beyond_best t [| i |] then begin
          Atomic.decr t.live;
          `Claimed_empty
        end
        else begin
          let v = t.pp.order.(i) in
          let p, x = root_px t.pp v in
          `Root (process [| i |] [ v ] p x)
        end
      end
    and loop () =
      if t.interrupted () then None
      else
        match take_own t w with
        | `Branch (path, r, p, x) -> process path r p x
        | `Pruned -> loop ()
        | `Empty -> (
            match claim_root () with
            | `Root r -> r
            | `Claimed_empty -> loop ()
            | `Exhausted ->
                if try_steal t w then loop ()
                else if
                  Atomic.get t.live = 0 && Atomic.get t.cursor >= t.pp.n
                then None
                else begin
                  Domain.cpu_relax ();
                  loop ()
                end)
    in
    if t.pp.n = 0 then None else loop ()
end
