(** Seeded per-message fault injection for the gossip network's links.

    Each message send draws one {!fate} from a shared PRNG: delivered
    intact, silently dropped, duplicated, delayed a few delivery rounds,
    or pushed out of FIFO order. All draws come from a single
    [Random.State] seeded at creation, so a network run is reproducible
    from (seed, event script) alone — the property the convergence
    qcheck tests and the CI fault matrix rely on. *)

type fate =
  | Deliver
  | Drop  (** The message never reaches this neighbour. *)
  | Duplicate  (** Enqueued twice; receiver-side dedup must cope. *)
  | Delay of int  (** Held back for this many delivery rounds (≥ 1). *)
  | Reorder  (** Inserted at a random queue position instead of the tail. *)

type t

val reliable : t
(** Every fate is [Deliver]; never touches a PRNG. The default. *)

val create :
  ?drop:float ->
  ?duplicate:float ->
  ?reorder:float ->
  ?delay:float ->
  ?max_delay:int ->
  seed:int ->
  unit ->
  t
(** Per-message fault probabilities, all defaulting to 0. Raises
    [Invalid_argument] if any is outside [0, 1], if they sum past 1, or
    if [max_delay] (default 3, the upper bound of each drawn delay) is
    below 1. *)

val is_reliable : t -> bool
(** All probabilities zero — the model can be bypassed entirely. *)

val fate : t -> fate
(** Draw the fate of one message send. *)

val pick : t -> int -> int
(** [pick t n] draws a queue position in [0, n-1] ([0] when [n <= 1]) —
    the insertion point of a reordered message. *)
