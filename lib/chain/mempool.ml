type entry = { tx : Tx.t; fee : int; feerate : float; sequence : int }

type removal_reason = Evicted | Confirmed | Conflicting

type event =
  | Tx_added of Tx.t
  | Tx_removed of { tx : Tx.t; reason : removal_reason }

type t = {
  by_txid : (Crypto.digest, entry) Hashtbl.t;
  spenders : (Tx.outpoint, Crypto.digest) Hashtbl.t;
      (** outpoint -> txid of the pool tx spending it. *)
  mutable next_seq : int;
  mutable hooks : (event -> unit) list;  (* registration order *)
}

let create () =
  {
    by_txid = Hashtbl.create 64;
    spenders = Hashtbl.create 64;
    next_seq = 0;
    hooks = [];
  }

let on_event t f = t.hooks <- t.hooks @ [ f ]
let fire t ev = List.iter (fun f -> f ev) t.hooks

let size t = Hashtbl.length t.by_txid

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.by_txid []
  |> List.sort (fun a b -> Int.compare a.sequence b.sequence)

let txs t = List.map (fun e -> e.tx) (entries t)
let mem t txid = Hashtbl.mem t.by_txid txid
let find t txid = Hashtbl.find_opt t.by_txid txid

type reject =
  | Unknown_inputs of Tx.outpoint list
  | Invalid of string
  | Duplicate
  | Fee_too_low of { required : int; offered : int }

let pp_reject ppf = function
  | Unknown_inputs ops ->
      Format.fprintf ppf "unknown inputs: %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Tx.pp_outpoint)
        ops
  | Invalid msg -> Format.fprintf ppf "invalid: %s" msg
  | Duplicate -> Format.pp_print_string ppf "already in the pool"
  | Fee_too_low { required; offered } ->
      Format.fprintf ppf "replacement fee too low: offered %d, required %d"
        offered required

let min_rbf_bump = 10

(* Resolve against the chain UTXO or outputs of pool transactions. *)
let resolver t ~utxo outpoint =
  match Utxo.find utxo outpoint with
  | Some o -> Some o
  | None -> (
      match Hashtbl.find_opt t.by_txid outpoint.Tx.txid with
      | Some e -> List.nth_opt e.tx.Tx.outputs outpoint.Tx.vout
      | None -> None)

let conflicts_of t (tx : Tx.t) =
  List.filter_map
    (fun (i : Tx.input) ->
      Option.bind (Hashtbl.find_opt t.spenders i.Tx.prev) (find t))
    tx.Tx.inputs
  |> List.sort_uniq (fun a b -> Tx.compare a.tx b.tx)

let descendants t txid =
  (* Children of a pool tx: pool txs spending one of its outputs. *)
  let children id =
    match Hashtbl.find_opt t.by_txid id with
    | None -> []
    | Some e ->
        List.mapi (fun vout _ -> { Tx.txid = id; vout }) e.tx.Tx.outputs
        |> List.filter_map (Hashtbl.find_opt t.spenders)
  in
  let seen = Hashtbl.create 8 in
  let rec collect acc id =
    if Hashtbl.mem seen id then acc
    else begin
      Hashtbl.replace seen id ();
      let deeper = List.fold_left collect acc (children id) in
      id :: deeper
    end
  in
  collect [] txid

let remove_one ?(reason = Evicted) t txid =
  match Hashtbl.find_opt t.by_txid txid with
  | None -> ()
  | Some e ->
      Hashtbl.remove t.by_txid txid;
      List.iter
        (fun (i : Tx.input) ->
          match Hashtbl.find_opt t.spenders i.Tx.prev with
          | Some spender when String.equal spender txid ->
              Hashtbl.remove t.spenders i.Tx.prev
          | Some _ | None -> ())
        e.tx.Tx.inputs;
      fire t (Tx_removed { tx = e.tx; reason })

let remove ?reason t txid =
  List.iter (remove_one ?reason t) (descendants t txid)

let add t ~utxo ?(height = max_int) (tx : Tx.t) =
  if mem t tx.Tx.txid then Error Duplicate
  else begin
    let resolver = resolver t ~utxo in
    let unknown =
      List.filter_map
        (fun (i : Tx.input) ->
          if Option.is_none (resolver i.Tx.prev) then Some i.Tx.prev else None)
        tx.Tx.inputs
    in
    if unknown <> [] then Error (Unknown_inputs unknown)
    else
      match Tx.validate ~resolver ~height tx with
      | Error msg -> Error (Invalid msg)
      | Ok () -> (
          match Tx.fee ~resolver tx with
          | Error msg -> Error (Invalid msg)
          | Ok fee ->
              let conflicting = conflicts_of t tx in
              let evicted_fee =
                List.fold_left (fun acc e -> acc + e.fee) 0 conflicting
              in
              let required =
                evicted_fee + (min_rbf_bump * List.length conflicting)
              in
              if conflicting <> [] && fee < required then
                Error (Fee_too_low { required; offered = fee })
              else begin
                List.iter (fun e -> remove t e.tx.Tx.txid) conflicting;
                let entry =
                  {
                    tx;
                    fee;
                    feerate = float_of_int fee /. float_of_int (Tx.vsize tx);
                    sequence = t.next_seq;
                  }
                in
                t.next_seq <- t.next_seq + 1;
                Hashtbl.replace t.by_txid tx.Tx.txid entry;
                List.iter
                  (fun (i : Tx.input) ->
                    Hashtbl.replace t.spenders i.Tx.prev tx.Tx.txid)
                  tx.Tx.inputs;
                fire t (Tx_added tx);
                Ok ()
              end)
  end

let confirm_block t (block : Block.t) =
  List.iter
    (fun (tx : Tx.t) ->
      remove_one ~reason:Confirmed t tx.Tx.txid;
      (* Pool txs now conflicting with a confirmed tx are invalid. *)
      List.iter
        (fun (i : Tx.input) ->
          match Hashtbl.find_opt t.spenders i.Tx.prev with
          | Some spender -> remove ~reason:Conflicting t spender
          | None -> ())
        tx.Tx.inputs)
    block.Block.txs
