type message = Mtx of Tx.t | Mblock of Block.t

(* Envelopes tag every queued message with its sender, so a partition
   can drop exactly the in-flight traffic that crosses the cut. *)
type envelope = { from : int; msg : message }

type peer_state = {
  node : Node.t;
  queue : envelope Queue.t;
  orphans : (Crypto.digest, Block.t) Hashtbl.t;
      (** Blocks ahead of the tip, keyed by their parent hash. A parent
          may have several stashed children (competing fork blocks), so
          the table is multi-binding: [Hashtbl.add]/[find_all], never
          [replace]. *)
  seen_blocks : (Crypto.digest, unit) Hashtbl.t;
}

type t = {
  peers : peer_state array;
  linked : bool array array;
  faults : Link_model.t;
  mutable delayed : (int * envelope * int) list;
      (** (target, envelope, rounds left) — newest first. Ticked once
          per [deliver] round; at zero the envelope joins the target's
          queue. *)
}

let create ?(faults = Link_model.reliable) ~peers ~initial () =
  if peers < 1 then invalid_arg "Network.create: need at least one peer";
  let mk () =
    {
      node = Node.create ~initial;
      queue = Queue.create ();
      orphans = Hashtbl.create 8;
      seen_blocks = Hashtbl.create 8;
    }
  in
  {
    peers = Array.init peers (fun _ -> mk ());
    linked = Array.init peers (fun i -> Array.init peers (fun j -> i <> j));
    faults;
    delayed = [];
  }

let peer_count t = Array.length t.peers
let peer t i = t.peers.(i).node

(* Rebuild the queue with [env] at a random position — the Reorder
   fate. Queues are small (one simulated network's in-flight traffic),
   so the linear rebuild is fine. *)
let enqueue_reordered t p env =
  let n = Queue.length p.queue in
  let pos = Link_model.pick t.faults (n + 1) in
  let buf = Queue.create () in
  Queue.transfer p.queue buf;
  for i = 0 to n do
    if i = pos then Queue.add env p.queue;
    if not (Queue.is_empty buf) then Queue.add (Queue.pop buf) p.queue
  done

let gossip t ~from msg =
  Array.iteri
    (fun j p ->
      if t.linked.(from).(j) then begin
        let env = { from; msg } in
        match Link_model.fate t.faults with
        | Link_model.Deliver -> Queue.add env p.queue
        | Link_model.Drop -> ()
        | Link_model.Duplicate ->
            Queue.add env p.queue;
            Queue.add env p.queue
        | Link_model.Delay rounds ->
            t.delayed <- (j, env, rounds) :: t.delayed
        | Link_model.Reorder -> enqueue_reordered t p env
      end)
    t.peers

let submit t ~at tx =
  match Node.submit t.peers.(at).node tx with
  | Ok () ->
      gossip t ~from:at (Mtx tx);
      Ok ()
  | Error _ as e -> e

let try_connect t ~at block =
  let p = t.peers.(at) in
  let chain = Node.chain p.node in
  let pool = Node.mempool p.node in
  let rec connect block =
    match Chain_state.connect_block chain block with
    | Ok event ->
        (match event with
        | Chain_state.Extended -> Mempool.confirm_block pool block
        | Chain_state.Side_branch -> ()
        | Chain_state.Reorg { disconnected; connected } ->
            (* Newly active blocks clear the pool; abandoned transactions
               become pending again (where still valid). *)
            List.iter (Mempool.confirm_block pool) connected;
            let next_height = Chain_state.height chain + 1 in
            List.iter
              (fun (b : Block.t) ->
                List.iter
                  (fun tx ->
                    if not (Tx.is_coinbase tx) then
                      ignore
                        (Mempool.add pool ~utxo:(Chain_state.utxo chain)
                           ~height:next_height tx))
                  b.Block.txs)
              disconnected);
        (* Every stashed child may now fit — two fork blocks can share
           the parent that just arrived, and each must be offered to the
           chain (one extends, the other becomes a side branch). *)
        let h = Block.hash block in
        (match Hashtbl.find_all p.orphans h with
        | [] -> ()
        | children ->
            List.iter (fun _ -> Hashtbl.remove p.orphans h) children;
            (* [find_all] lists newest binding first; connect in arrival
               order. *)
            List.iter connect (List.rev children))
    | Error "unknown parent" ->
        (* Ahead of us: stash until the parent arrives. Duplicate fates
           can offer the same block twice before the parent shows up, so
           never stash the same child twice. *)
        let parent = block.Block.header.Block.prev_hash in
        let already =
          List.exists
            (fun (b : Block.t) ->
              String.equal (Block.hash b) (Block.hash block))
            (Hashtbl.find_all p.orphans parent)
        in
        if not already then Hashtbl.add p.orphans parent block
    | Error _ -> ()
  in
  connect block

let mine_at t ~at ~coinbase_script ?min_feerate () =
  match Node.mine t.peers.(at).node ~coinbase_script ?min_feerate () with
  | Ok block ->
      Hashtbl.replace t.peers.(at).seen_blocks (Block.hash block) ();
      gossip t ~from:at (Mblock block);
      Ok block
  | Error _ as e -> e

let inject_block t ~at block =
  Hashtbl.replace t.peers.(at).seen_blocks (Block.hash block) ();
  try_connect t ~at block

let handle t ~at env =
  let p = t.peers.(at) in
  match env.msg with
  | Mtx tx ->
      if not (Mempool.mem (Node.mempool p.node) tx.Tx.txid) then begin
        match Node.submit p.node tx with
        | Ok () -> gossip t ~from:at (Mtx tx)
        | Error _ -> ()
        (* Already confirmed, conflicting, or unresolvable here: drop. *)
      end
  | Mblock block ->
      let h = Block.hash block in
      if not (Hashtbl.mem p.seen_blocks h) then begin
        Hashtbl.replace p.seen_blocks h ();
        try_connect t ~at block;
        gossip t ~from:at (Mblock block)
      end

(* One round boundary: envelopes whose delay has elapsed join their
   target queues, the rest tick down by one. *)
let release_delayed t =
  let due, later =
    List.partition (fun (_, _, rounds) -> rounds <= 1) t.delayed
  in
  t.delayed <- List.map (fun (j, env, rounds) -> (j, env, rounds - 1)) later;
  (* The list is newest-first; release in send order. *)
  List.iter (fun (j, env, _) -> Queue.add env t.peers.(j).queue) (List.rev due)

let deliver t ?max_messages () =
  release_delayed t;
  let processed = ref 0 in
  let budget = Option.value max_messages ~default:max_int in
  let progress = ref true in
  while !progress && !processed < budget do
    progress := false;
    Array.iteri
      (fun at p ->
        if !processed < budget && not (Queue.is_empty p.queue) then begin
          let env = Queue.pop p.queue in
          incr processed;
          progress := true;
          handle t ~at env
        end)
      t.peers
  done;
  !processed

let partition t group =
  let in_group = Array.make (peer_count t) false in
  List.iter (fun i -> in_group.(i) <- true) group;
  for i = 0 to peer_count t - 1 do
    for j = 0 to peer_count t - 1 do
      if i <> j && in_group.(i) <> in_group.(j) then t.linked.(i).(j) <- false
    done
  done;
  (* Sever the links *and* the traffic already on them: queued and
     delayed envelopes whose sender sits across the cut are dropped, as
     a real partition would lose them. [heal]'s re-announcement is what
     repairs the resulting gaps. *)
  Array.iteri
    (fun j p ->
      let buf = Queue.create () in
      Queue.transfer p.queue buf;
      Queue.iter
        (fun env ->
          if in_group.(env.from) = in_group.(j) then Queue.add env p.queue)
        buf)
    t.peers;
  t.delayed <-
    List.filter
      (fun (j, env, _) -> in_group.(env.from) = in_group.(j))
      t.delayed

(* Every peer re-gossips its mempool and chain to its current
   neighbours — the simulation's stand-in for a real node's periodic
   inventory re-broadcast. Announcements travel the faulty links like
   any other traffic. *)
let announce_all t =
  Array.iteri
    (fun i p ->
      List.iter (fun tx -> gossip t ~from:i (Mtx tx)) (Node.pending_txs p.node);
      List.iter
        (fun b -> gossip t ~from:i (Mblock b))
        (Chain_state.blocks (Node.chain p.node)))
    t.peers

let heal t =
  for i = 0 to peer_count t - 1 do
    for j = 0 to peer_count t - 1 do
      t.linked.(i).(j) <- i <> j
    done
  done;
  (* Re-announce local state so the other side can catch up. *)
  announce_all t

let mempool_view t i =
  Node.pending_txs t.peers.(i).node
  |> List.map (fun (tx : Tx.t) -> tx.Tx.txid)
  |> List.sort String.compare

let in_sync t =
  let tip i = Chain_state.tip_hash (Node.chain t.peers.(i).node) in
  let view0 = mempool_view t 0 and tip0 = tip 0 in
  (match t.delayed with [] -> true | _ :: _ -> false)
  && Array.for_all
       (fun p -> Queue.is_empty p.queue && Hashtbl.length p.orphans = 0)
       t.peers
  &&
  let rec go i =
    i >= peer_count t
    || (String.equal (tip i) tip0
       && List.equal String.equal (mempool_view t i) view0
       && go (i + 1))
  in
  go 1

let converge ?until ?(max_rounds = 200) t =
  let settled () = match until with Some f -> f t | None -> in_sync t in
  let gap = ref 1 in
  let next_announce = ref 0 in
  let rec go round =
    if settled () then Some round
    else if round >= max_rounds then None
    else begin
      let processed = deliver t () in
      (* Stalled — queues empty, nothing delayed, still not settled:
         dropped messages ate the traffic. Re-announce, backing off
         exponentially so a stubbornly lossy run doesn't flood itself
         with redundant inventory. *)
      (match t.delayed with
      | [] when processed = 0 && not (settled ()) ->
          if round >= !next_announce then begin
            announce_all t;
            next_announce := round + !gap;
            gap := min (!gap * 2) 16
          end
      | _ -> ());
      go (round + 1)
    end
  in
  go 0
