(** The mempool: transactions issued to the network but not yet accepted
    into the chain — exactly the pending set [T] of the blockchain
    database abstraction. Tracks spent outpoints for conflict detection
    and implements replace-by-fee: a conflicting transaction is admitted
    only if it pays strictly more total fee than everything it evicts
    (plus a minimum bump), mirroring the fee-bumping practice the paper's
    motivating example describes. *)

type entry = private {
  tx : Tx.t;
  fee : int;
  feerate : float;  (** fee / vsize. *)
  sequence : int;  (** Admission order. *)
}

type t

type removal_reason =
  | Evicted
      (** Replaced by fee ({!add}) or explicitly removed ({!remove}),
          including pool descendants of either. *)
  | Confirmed  (** Included in a confirmed block ({!confirm_block}). *)
  | Conflicting
      (** Spends an outpoint that a just-confirmed transaction also
          spent (double-spend made unwinnable by the block). *)

type event =
  | Tx_added of Tx.t  (** Admitted by {!add} (after any evictions). *)
  | Tx_removed of { tx : Tx.t; reason : removal_reason }

val on_event : t -> (event -> unit) -> unit
(** Register a hook, fired synchronously on every pool mutation in
    mutation order — evictions before the arrival that caused them.
    Hooks run in registration order; what {!Live} consumes (through
    {!Feed}) to maintain solver inputs incrementally. *)

val create : unit -> t
val size : t -> int
val entries : t -> entry list
(** In admission order. *)

val txs : t -> Tx.t list
val mem : t -> Crypto.digest -> bool
val find : t -> Crypto.digest -> entry option

type reject =
  | Unknown_inputs of Tx.outpoint list
      (** Inputs neither in the UTXO set nor created by mempool txs. *)
  | Invalid of string  (** Failed script/amount validation. *)
  | Duplicate
  | Fee_too_low of { required : int; offered : int }
      (** Replace-by-fee refused. *)

val pp_reject : Format.formatter -> reject -> unit

val min_rbf_bump : int
(** Minimum extra fee a replacement must add (per evicted tx). *)

val add : t -> utxo:Utxo.t -> ?height:int -> Tx.t -> (unit, reject) result
(** Admit a transaction. Inputs may come from the UTXO set or from
    outputs of transactions already in the pool (chained pending
    transactions). On a successful replace-by-fee, the conflicting
    transactions and their pool descendants are evicted. *)

val conflicts_of : t -> Tx.t -> entry list
(** Pool entries spending an outpoint this transaction also spends. *)

val descendants : t -> Crypto.digest -> Crypto.digest list
(** Pool transactions depending (transitively) on the given txid,
    including it, in eviction-safe order. *)

val remove : ?reason:removal_reason -> t -> Crypto.digest -> unit
(** Remove a transaction and its pool descendants. [reason] (default
    [Evicted]) is reported to event hooks. *)

val confirm_block : t -> Block.t -> unit
(** Drop transactions included in the block and any pool transaction that
    now conflicts with a confirmed one. *)
