(** A small peer-to-peer gossip simulation: several full nodes exchanging
    transactions and blocks over FIFO links.

    This grounds the paper's footnote 6: the pending set [T] of a
    blockchain database is {e a node's view} — transactions issued
    concurrently at different peers live in different mempools until
    gossip converges, so two honest nodes can return different answers to
    the same denial constraint at the same instant. The tests and the
    gossip example exercise exactly that divergence.

    Links are FIFO queues drained on demand ([deliver]); topology is a
    full mesh with optional partitions. By default links are reliable;
    a {!Link_model} makes each message send independently drop,
    duplicate, delay, or reorder, from a seeded PRNG — the fault
    schedule of a run is reproducible from its seed. Fork races resolve
    by the longest-chain rule of {!Chain_state}: a competing branch that
    overtakes a peer's tip triggers a reorg, returning the abandoned
    blocks' transactions to that peer's mempool; blocks arriving ahead
    of a missing parent are stashed (several children per missing
    parent) and connected once the gap fills. *)

type t

val create :
  ?faults:Link_model.t ->
  peers:int ->
  initial:(Script.t * int) list ->
  unit ->
  t
(** [peers >= 1] nodes, all starting from the same genesis. [faults]
    (default {!Link_model.reliable}) injects per-message link faults. *)

val peer_count : t -> int
val peer : t -> int -> Node.t
(** The node at a peer index. *)

val submit : t -> at:int -> Tx.t -> (unit, Mempool.reject) result
(** Submit to one peer's mempool; on acceptance the transaction is queued
    to the peer's current neighbours (each send subject to the fault
    model). *)

val mine_at :
  t -> at:int -> coinbase_script:Script.t -> ?min_feerate:float -> unit ->
  (Block.t, string) result
(** Mine from the peer's mempool, connect locally, gossip the block. *)

val inject_block : t -> at:int -> Block.t -> unit
(** Hand a block straight to one peer — marked seen and connected (or
    stashed as an orphan) without any gossip. A test hook: it simulates
    a block arriving from outside the simulated mesh, in any order. *)

val deliver : t -> ?max_messages:int -> unit -> int
(** One delivery round: messages whose injected delay has elapsed join
    their target queues (others tick down one round), then queued
    messages are drained, re-gossiping anything new; returns the number
    of messages processed. Without [max_messages], runs until every
    queue is empty — on reliable links that is full convergence, under
    faults some traffic may be dropped or still delayed. *)

val converge :
  ?until:(t -> bool) -> ?max_rounds:int -> t -> int option
(** Run delivery rounds until [until] (default {!in_sync}) holds,
    returning [Some rounds_used], or [None] after [max_rounds] (default
    200). When a round goes idle without converging — lossy links ate
    the traffic — peers re-announce their state, with exponentially
    backed-off gaps (1, 2, 4, … capped at 16 rounds) between retries. *)

val partition : t -> int list -> unit
(** Cut every link between the listed peers and the rest, dropping the
    in-flight traffic (queued or delayed) that crosses the cut — as a
    real partition would lose it. Traffic between peers on the same
    side is untouched. [heal]'s re-announcement repairs the gaps. *)

val heal : t -> unit
(** Restore the full mesh and let peers re-announce their mempools and
    chain tips to everyone. [deliver] (or [converge], under faults) then
    converges the views. *)

val announce_all : t -> unit
(** Every peer re-gossips its mempool and chain to its current
    neighbours — the periodic inventory re-broadcast of a real node.
    [converge] uses it to recover from dropped messages. *)

val mempool_view : t -> int -> Crypto.digest list
(** Sorted txids in a peer's mempool. *)

val in_sync : t -> bool
(** All peers have equal chain tips and equal mempool views, no
    messages are in flight (queued or delayed), and no peer is holding
    orphan blocks it could not yet connect. *)
