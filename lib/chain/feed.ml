module R = Relational

(* Rows are resolved when the hook fires (the mempool still holds the
   outputs the transaction chains on); by drain time they may be gone. *)
type ev =
  | Add of { txid : Crypto.digest; rows : (string * R.Tuple.t) list }
  | Drop of { txid : Crypto.digest; reason : Mempool.removal_reason }

type t = {
  node : Node.t;
  mutable live : Bccore.Live.t;
  queue : ev Queue.t;
  mutable last_tip : Crypto.digest;
  mutable desync : string option;
      (* an event we could not encode: full resync on next [sync] *)
  obs : Bccore.Obs.t;
}

let node t = t.node
let live t = t.live

(* Chain history plus current mempool outputs — what an arriving
   transaction's inputs can legitimately reference. *)
let resolver t outpoint =
  match Chain_state.find_output (Node.chain t.node) outpoint with
  | Some o -> Some o
  | None -> (
      match Mempool.find (Node.mempool t.node) outpoint.Tx.txid with
      | Some e -> List.nth_opt e.Mempool.tx.Tx.outputs outpoint.Tx.vout
      | None -> None)

let enqueue t = function
  | Mempool.Tx_added tx -> (
      match Encode.rows_of_tx ~resolver:(resolver t) tx with
      | Ok rows -> Queue.add (Add { txid = tx.Tx.txid; rows }) t.queue
      | Error msg ->
          t.desync <- Some (Printf.sprintf "%s: %s" tx.Tx.txid msg))
  | Mempool.Tx_removed { tx; reason } ->
      Queue.add (Drop { txid = tx.Tx.txid; reason }) t.queue

let create ?(obs = Bccore.Obs.null) node =
  match Encode.bcdb_of_node node with
  | Error msg -> Error msg
  | Ok db ->
      let t =
        {
          node;
          live = Bccore.Live.create ~obs db;
          queue = Queue.create ();
          last_tip = Chain_state.tip_hash (Node.chain node);
          desync = None;
          obs;
        }
      in
      Mempool.on_event (Node.mempool node) (enqueue t);
      Ok t

let full_resync t =
  match Encode.bcdb_of_node t.node with
  | Error _ as e -> e
  | Ok db ->
      Queue.clear t.queue;
      t.desync <- None;
      Bccore.Live.reset t.live db;
      t.last_tip <- Chain_state.tip_hash (Node.chain t.node);
      Ok ()

(* Drain the event queue in firing order. Returns the txids applied as
   [confirm]s so the block walk below skips them. *)
let drain t =
  let confirmed = Hashtbl.create 8 in
  let rec go () =
    match Queue.take_opt t.queue with
    | None -> Ok confirmed
    | Some ev -> (
        match ev with
        | Add { txid; rows } ->
            Bccore.Live.add t.live ~label:txid rows;
            go ()
        | Drop { txid; reason = Mempool.Confirmed } -> (
            match Bccore.Live.confirm t.live txid with
            | Ok () ->
                Hashtbl.replace confirmed txid ();
                go ()
            | Error _ as e -> e)
        | Drop { txid; reason = Mempool.Evicted | Mempool.Conflicting } -> (
            match Bccore.Live.evict t.live txid with
            | Ok () -> go ()
            | Error _ as e -> e))
  in
  go ()

(* Blocks connected since [last_tip], oldest first; [None] when the
   recorded tip left the active chain (reorg). *)
let new_blocks t =
  let blocks = Chain_state.blocks (Node.chain t.node) in
  let rec after = function
    | [] -> None
    | b :: rest ->
        if String.equal (Block.hash b) t.last_tip then Some rest
        else after rest
  in
  after blocks

let sync t =
  match t.desync with
  | Some _ -> full_resync t
  | None -> (
      match new_blocks t with
      | None -> full_resync t (* reorg *)
      | Some blocks -> (
          match drain t with
          | Error msg ->
              (* The live layer and the pool disagree on membership —
                 should not happen; re-snapshot rather than limp on. *)
              ignore msg;
              full_resync t
          | Ok confirmed ->
              let rec fold_blocks = function
                | [] ->
                    t.last_tip <- Chain_state.tip_hash (Node.chain t.node);
                    Ok ()
                | (b : Block.t) :: rest ->
                    let rec fold_txs = function
                      | [] -> fold_blocks rest
                      | (tx : Tx.t) :: txs ->
                          if Hashtbl.mem confirmed tx.Tx.txid then
                            fold_txs txs
                          else
                            (* Never passed through our mempool: coinbase
                               or mined elsewhere. Historical inputs
                               resolve against the chain. *)
                            let resolve op =
                              Chain_state.find_output (Node.chain t.node) op
                            in
                            (match
                               Encode.rows_of_tx ~resolver:resolve tx
                             with
                            | Ok rows ->
                                Bccore.Live.append_state t.live rows;
                                fold_txs txs
                            | Error _ as e -> e)
                    in
                    fold_txs b.Block.txs
              in
              fold_blocks blocks))

let submit t tx =
  match Node.submit t.node tx with
  | Error _ as e -> e
  | Ok () -> (
      match sync t with Ok () -> Ok () | Error msg -> failwith msg)

let mine t ~coinbase_script =
  match Node.mine t.node ~coinbase_script () with
  | Error _ as e -> e
  | Ok block -> (
      match sync t with Ok () -> Ok block | Error msg -> failwith msg)
