(** The mempool → solver bridge: keeps a {!Bccore.Live} context in sync
    with a {!Node} through {!Mempool.on_event} hooks and the active
    chain, so the DCSat service maintains its graphs from the stream of
    protocol events instead of re-encoding the node per request.

    Event rows are captured {e eagerly} when the hook fires — while the
    mempool still holds the parents an arriving transaction's inputs
    resolve against — and queued; {!sync} drains the queue into the live
    layer and then walks newly connected blocks to fold in transactions
    the mempool never saw (coinbases, blocks mined elsewhere). A reorg —
    the recorded tip no longer on the active chain — falls back to a
    full re-encode ({!Bccore.Live.reset}), the one event with no useful
    delta. *)

type t

val create : ?obs:Bccore.Obs.t -> Node.t -> (t, string) result
(** Snapshot the node ({!Encode.bcdb_of_node}) and register the event
    hook. The feed must be the node's only writer path from then on —
    mutate the mempool through the node as usual; call {!sync} before
    checking. *)

val node : t -> Node.t
val live : t -> Bccore.Live.t

val sync : t -> (unit, string) result
(** Apply every queued mempool event (add / evict / conflict / confirm,
    in firing order), then fold in transactions of newly connected
    blocks that never passed through the mempool. Falls back to a full
    resync on reorg or on an event whose rows could not be encoded.
    Idempotent when nothing happened. *)

val submit : t -> Tx.t -> (unit, Mempool.reject) result
(** {!Node.submit} followed by {!sync} (sync errors are raised as
    [Failure] — they indicate an encoding bug, not a user error). *)

val mine : t -> coinbase_script:Script.t -> (Block.t, string) result
(** {!Node.mine} followed by {!sync}. *)
