(* Per-message fault model for the gossip links. One shared PRNG drives
   every draw, so a whole network run is reproducible from its seed: the
   same seed, the same submit/mine/deliver script, the same fault
   schedule. Fates are drawn lazily — one uniform sample per message
   send — so adding a peer or a message changes only the draws after it. *)

type fate = Deliver | Drop | Duplicate | Delay of int | Reorder

type t = {
  rng : Random.State.t;
  drop : float;
  duplicate : float;
  reorder : float;
  delay : float;
  max_delay : int;
}

let reliable =
  {
    (* Never consulted: [fate] short-circuits when every probability is
       zero, so the shared state stays untouched. *)
    rng = Random.State.make [| 0 |];
    drop = 0.0;
    duplicate = 0.0;
    reorder = 0.0;
    delay = 0.0;
    max_delay = 1;
  }

let is_reliable t =
  t.drop = 0.0 && t.duplicate = 0.0 && t.reorder = 0.0 && t.delay = 0.0

let check_prob name p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Link_model.create: %s not in [0, 1]" name)

let create ?(drop = 0.0) ?(duplicate = 0.0) ?(reorder = 0.0) ?(delay = 0.0)
    ?(max_delay = 3) ~seed () =
  check_prob "drop" drop;
  check_prob "duplicate" duplicate;
  check_prob "reorder" reorder;
  check_prob "delay" delay;
  if drop +. duplicate +. reorder +. delay > 1.0 then
    invalid_arg "Link_model.create: fault probabilities sum past 1";
  if max_delay < 1 then invalid_arg "Link_model.create: max_delay < 1";
  {
    rng = Random.State.make [| seed |];
    drop;
    duplicate;
    reorder;
    delay;
    max_delay;
  }

let fate t =
  if is_reliable t then Deliver
  else begin
    let u = Random.State.float t.rng 1.0 in
    if u < t.drop then Drop
    else if u < t.drop +. t.duplicate then Duplicate
    else if u < t.drop +. t.duplicate +. t.reorder then Reorder
    else if u < t.drop +. t.duplicate +. t.reorder +. t.delay then
      Delay (1 + Random.State.int t.rng t.max_delay)
    else Deliver
  end

let pick t n = if n <= 1 then 0 else Random.State.int t.rng n
