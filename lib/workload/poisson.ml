type summary = {
  requests : int;
  rate : float;
  duration : float;
  checks_per_sec : float;
  mean_service : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Poisson.percentile: empty";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) rank))

(* Seeded exponential inter-arrival times via inverse-transform
   sampling; Random.State keeps the stream independent of any other
   randomness in the process. *)
let inter_arrival st rate =
  let u = Random.State.float st 1.0 in
  -.log1p (-.u) /. rate

let run ~seed ~rate ~requests service =
  if requests <= 0 then invalid_arg "Poisson.run: requests must be positive";
  if rate <= 0.0 then invalid_arg "Poisson.run: rate must be positive";
  let st = Random.State.make [| seed |] in
  let latencies = Array.make requests 0.0 in
  let total_service = ref 0.0 in
  let clock = ref 0.0 (* virtual time *) in
  let completion = ref 0.0 in
  let first_arrival = ref 0.0 in
  for i = 0 to requests - 1 do
    clock := !clock +. inter_arrival st rate;
    if i = 0 then first_arrival := !clock;
    let started = Float.max !clock !completion in
    let t0 = Bccore.Monotime.now () in
    service i;
    let dt = Bccore.Monotime.elapsed ~since:t0 in
    total_service := !total_service +. dt;
    completion := started +. dt;
    latencies.(i) <- !completion -. !clock
  done;
  let duration = Float.max epsilon_float (!completion -. !first_arrival) in
  {
    requests;
    rate;
    duration;
    checks_per_sec = float_of_int requests /. duration;
    mean_service = !total_service /. float_of_int requests;
    p50 = percentile latencies 0.50;
    p90 = percentile latencies 0.90;
    p99 = percentile latencies 0.99;
  }
