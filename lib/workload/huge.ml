module R = Relational
module V = R.Value
module Q = Bcquery
module C = Chain

(* Paper-scale datasets (Section 7 runs denial constraints over up to
   ~99M base rows). The generator streams rows straight into columnar
   segment builders — the row form of the base state never exists as a
   whole — and skips the [R |= I] validation pass: the layout below
   satisfies the UTXO constraints by construction.

   Base state: a spend chain over [Chain.Encode]'s catalog.
     TxOut(i, 0, pk(i), amt(i))                         for i < nout
     TxIn(i, 0, pk(i), amt(i), i+1, i)                  for i < nin
   with nin = rows/3 and nout = rows - nin, so every TxIn consumes an
   existing output (key and inclusion constraints hold row by row).
   Transaction ids are [Int]s (fully unboxed columns); only the public
   keys go through a dictionary, of [users] distinct strings.

   Pending transaction j spends the unspent output nin+j and pays into
   a fresh transaction nout+j; conflict transaction c double-spends the
   same output as pending transaction c, so each (j=c, conflict c) pair
   is mutually exclusive — the dependency-graph shape the solvers
   enumerate. Pending transaction 0 pays a marked public key that
   appears nowhere in the base state. *)

type params = { rows : int; users : int; pending : int; conflicts : int }

let default = { rows = 10_000_000; users = 5_000; pending = 6; conflicts = 3 }
let smoke = { default with rows = 150_000; users = 1_000 }

let name p =
  if p.rows >= 1_000_000 then Printf.sprintf "D-huge-%dM" (p.rows / 1_000_000)
  else Printf.sprintf "D-huge-%dk" (p.rows / 1_000)

let mark_pk = "PKMARK"

let split p =
  let nin = p.rows / 3 in
  (nin, p.rows - nin)

let generate p =
  if p.conflicts > p.pending then
    invalid_arg "Huge.generate: conflicts must not exceed pending";
  let nin, nout = split p in
  if p.users < 1 || nin <= p.pending + 1 then
    invalid_arg "Huge.generate: rows too small for the pending set";
  let pks = Array.init p.users (fun u -> V.Str (Printf.sprintf "PK%d" u)) in
  let pk i = pks.(i mod p.users) in
  let amt i = V.Int (1 + ((i * 7919) mod 9973)) in
  let bout = R.Segment.Builder.create ~arity:4 in
  for i = 0 to nout - 1 do
    R.Segment.Builder.add bout [| V.Int i; V.Int 0; pk i; amt i |]
  done;
  let bin = R.Segment.Builder.create ~arity:6 in
  for i = 0 to nin - 1 do
    R.Segment.Builder.add bin
      [| V.Int i; V.Int 0; pk i; amt i; V.Int (i + 1); V.Int i |]
  done;
  let state =
    R.Database.of_segments C.Encode.catalog
      [
        ("TxOut", R.Segment.Builder.finish bout);
        ("TxIn", R.Segment.Builder.finish bin);
      ]
  in
  let spend_tx ~spend ~newid ~out_pk ~sig_ =
    [
      ( "TxIn",
        [| V.Int spend; V.Int 0; pk spend; amt spend; V.Int newid; V.Int sig_ |]
      );
      ("TxOut", [| V.Int newid; V.Int 0; out_pk; amt newid |]);
    ]
  in
  let pending_txs =
    List.init p.pending (fun j ->
        let spend = nin + j in
        spend_tx ~spend ~newid:(nout + j)
          ~out_pk:(if j = 0 then V.Str mark_pk else pk spend)
          ~sig_:(1_000_000_000 + j))
  in
  let conflict_txs =
    List.init p.conflicts (fun c ->
        let spend = nin + c in
        spend_tx ~spend
          ~newid:(nout + p.pending + c)
          ~out_pk:(pk spend)
          ~sig_:(2_000_000_000 + c))
  in
  let labels =
    List.init p.pending (Printf.sprintf "H%d")
    @ List.init p.conflicts (Printf.sprintf "C%d")
  in
  Bccore.Bcdb.create_unchecked ~state
    ~constraints:C.Encode.constraints
    ~pending:(pending_txs @ conflict_txs)
    ~labels ()

(* Queries over the marked key. [query_hit] matches exactly in worlds
   containing pending transaction 0 (whose output pays [mark_pk]), so
   as a denial constraint it is unsatisfied — those worlds violate it;
   probing the base segment for the mark is a dictionary miss, so the
   per-world base probes show up in the ["segment.dict_miss"] counter.
   [query_miss] asks for a key no transaction ever pays — it matches
   nowhere, the denial constraint holds in every world. *)

let var v = Q.Term.Var v
let str s = Q.Term.Const (V.Str s)
let boolean positive = Q.Query.boolean (Q.Cq.make_exn ~positive ())

let query_hit () =
  boolean
    [
      Q.Atom.make "TxIn"
        [ var "p"; var "s"; var "k"; var "a"; var "n"; var "g" ];
      Q.Atom.make "TxOut" [ var "n"; var "s2"; str mark_pk; var "a2" ];
    ]

let query_miss () =
  boolean [ Q.Atom.make "TxOut" [ var "t"; var "s"; str "PK-none-such"; var "a" ] ]
