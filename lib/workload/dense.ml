module Core = Bccore
module R = Relational
module V = R.Value

let acct = R.Schema.relation "Acct" [ "id"; "val" ]
let catalog = R.Schema.of_list [ acct ]
let acct_row id v = ("Acct", R.Tuple.make [ V.Int id; V.Str v ])

let worlds ~pairs = 1 lsl pairs

let db ~pairs =
  if pairs < 1 || pairs > 30 then invalid_arg "Dense.db: pairs out of range";
  let state = R.Database.create catalog in
  (* Transactions 2j and 2j+1 both claim key id = j with different
     values, so exactly one of each pair fits in any possible world and
     every other combination is compatible: the compatibility graph is
     the cocktail-party graph K_{pairs x 2} with 2^pairs maximal
     cliques, all of them one dense component. *)
  let pending =
    List.concat_map
      (fun j -> [ [ acct_row j "a" ]; [ acct_row j "b" ] ])
      (List.init pairs Fun.id)
  in
  Core.Bcdb.create_exn ~state
    ~constraints:[ R.Constr.key acct [ "id" ] ]
    ~pending ()

let query () =
  (* True over R ∪ T (both values of every pair visible), so the
     pre-check cannot decide; false over every individual world (no id
     carries both values at once), so the solver must visit all 2^pairs
     maximal worlds to conclude SATISFIED. *)
  Bcquery.Parser.parse_exn ~catalog {| q() :- Acct(x, "a"), Acct(x, "b"). |}
