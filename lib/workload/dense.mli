(** Dense-component worst case for the clique enumeration: [pairs]
    key-conflicting transaction pairs whose compatibility graph is one
    cocktail-party component K_{pairs×2} with [2^pairs] maximal worlds.

    This is the adversarial regime the work-stealing Bron–Kerbosch
    backend targets: a single giant component where the sequential
    clique producer would otherwise serialize the whole solve behind
    one enumerator. The paired query is satisfied but undecidable by
    the pre-check, so every world must be materialized and evaluated. *)

val db : pairs:int -> Bccore.Bcdb.t
(** Fresh database with [2 * pairs] single-row pending transactions;
    transactions [2j] and [2j+1] write the two conflicting values of
    key [j]. Raises [Invalid_argument] outside [1..30]. *)

val query : unit -> Bcquery.Query.t
(** [q() :- Acct(x,"a"), Acct(x,"b")] — true over [R ∪ T], false over
    every possible world: forces a full enumeration ending SATISFIED. *)

val worlds : pairs:int -> int
(** [2^pairs], the number of maximal worlds of {!db}. *)
