(** Experiment harness: timed denial-constraint runs and the paper-style
    tables printed by the benchmark binary (one per table/figure of
    Section 7). *)

type algo = Naive | Opt

val algo_name : algo -> string

type measurement = {
  label : string;
  algo : algo;
  variant : Queries.variant;
  jobs : int;  (** Engine worker count used for the run. *)
  satisfied : bool;
  unknown : bool;
      (** The last run's budget tripped before the enumeration finished
          (verdict [Unknown]): [satisfied] is then vacuous and [seconds]
          measures a truncated run, not a solve. *)
  seconds : float;  (** Mean (or min) over [repeats] runs. *)
  stats : Bccore.Dcsat.stats;  (** From the last run. *)
  obs_worlds : int;
      (** Worlds evaluated, from the instrumented run's merged
          ["dcsat.worlds"] counter (deterministic across backends). *)
  cache_hit_ratio : float;
      (** Visibility-cache hits / (hits + misses) in the tagged store;
          0 when the run never probed the cache. *)
  comp_cache_hit_ratio : float;
      (** Live verdict-cache hits / (hits + misses)
          (["live.comp_cache_hit"] / ["live.comp_cache_miss"]); 0 on the
          batch paths, which never consult the per-component cache —
          populated by the serve benchmark's warm-check rows. *)
  worker_util : float;
      (** Σ per-item evaluation time / (jobs × runtime) of the
          instrumented run — the fraction of worker-domain capacity
          spent evaluating worlds. *)
  eval_full : int;
      (** Worlds evaluated by a full backtracking join in the
          instrumented run (["eval.full"]). *)
  eval_delta : int;
      (** Worlds answered incrementally — replayed from a cached world
          or decided by a delta-seeded search (["eval.delta"]). *)
  eval_delta_tuples : int;
      (** Δ-tuples the delta-seeded searches iterated
          (["eval.delta_tuples"]). *)
  eval_delta_ratio : float;
      (** [eval_delta / (eval_full + eval_delta)]; 0 when no worlds were
          evaluated. *)
  base_bytes : int;
      (** Estimated bytes of the session store's shared columnar base
          segments ({!Bccore.Tagged_store.base_bytes}) — a data-size
          axis for the measurement, independent of the run. *)
  dict_hits : int;
      (** Base-segment dictionary probes that found their string/bool
          key, from the instrumented run (["segment.dict_hits"]). *)
  bk_steals : int;
      (** Work-stealing clique backend: frames stolen between worker
          deques in the instrumented run (["bk.steal"]); 0 when the
          claim-lock backend ran. *)
  bk_subtrees : int;
      (** Degeneracy-ordered root subtrees claimed by the stealing
          backend (["bk.subtree"]); 0 under the claim-lock backend. *)
  eval_native : int;
      (** Full evaluations served by the closure-compiled plan in the
          instrumented run (["eval.compiled_native"]). *)
}

val run :
  ?repeats:int ->
  ?warmup:int ->
  ?summary:[ `Mean | `Min ] ->
  ?jobs:int ->
  ?use_delta:bool ->
  ?use_native:bool ->
  ?use_steal:bool ->
  ?timeout_s:float ->
  ?max_worlds:int ->
  ?obs_sinks:Bccore.Obs.sink list ->
  session:Bccore.Session.t ->
  label:string ->
  algo:algo ->
  variant:Queries.variant ->
  Bcquery.Query.t ->
  measurement
(** Executes the solver [warmup] (default 0) unrecorded times, then
    [repeats] recorded times (default 3, as in the paper) and summarizes
    the wall-clock time — the mean by default, or the minimum with
    [~summary:`Min] (the right statistic when comparing backends whose
    difference is smaller than scheduler noise). Times are read from the
    solver's monotonic-clock stats. [jobs] (default 1) selects the
    engine backend. [use_delta] (default true) toggles the incremental
    evaluation layer ({!Bccore.Inc_eval}); pass [false] to measure the
    full-evaluation baseline, or when comparing backends whose runs
    would otherwise replay each other's cached worlds. [use_native]
    (default true) toggles the closure-compiled evaluation tier;
    [use_steal] forces the work-stealing clique backend on ([true]) or
    off ([false]) — left unset, the solver consults [BCDB_BK_STEAL] or
    falls back to automatic selection (see {!Bccore.Dcsat.naive}). [timeout_s]/[max_worlds] bound each individual solve
    (a fresh {!Bccore.Engine.Budget} per run, so repeats don't share one
    allowance); a tripped budget surfaces as [unknown = true]. Raises
    [Invalid_argument] if the solver refuses the query (e.g. OptDCSat on
    a disconnected query).

    The timed runs execute with the session's existing recorder
    untouched (normally {!Bccore.Obs.null}, so they are not perturbed);
    one extra {e untimed} run under a fresh recorder supplies the
    [obs_worlds]/[cache_hit_ratio]/[worker_util] fields and pushes its
    summary through [obs_sinks] (default none — e.g. a trace collector
    accumulating one Chrome trace for the whole bench run). *)

val session_of : Bccore.Bcdb.t -> Bccore.Session.t
(** Fresh session with the steady-state structures prebuilt (warm), so
    measurements exclude one-time precomputation — matching the paper's
    setting where graphs are maintained incrementally. *)

val print_table :
  title:string -> columns:string list -> rows:string list list -> unit
(** Aligned plain-text table on stdout. *)

val ms : float -> string
(** Milliseconds with sensible precision. *)
