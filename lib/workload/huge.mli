(** Paper-scale base states (tens of millions of rows), generated
    streaming into columnar segments — the row form never materializes
    as a whole — over {!Chain.Encode}'s UTXO catalog. The layout
    satisfies the constraints by construction, so generation skips the
    [R |= I] validation pass ({!Bccore.Bcdb.create_unchecked}). *)

type params = {
  rows : int;  (** Total base rows (TxOut + TxIn), split 2:1. *)
  users : int;  (** Distinct public keys — the dictionary size. *)
  pending : int;  (** Pending spend transactions. *)
  conflicts : int;
      (** Double-spend transactions; conflict [c] is mutually exclusive
          with pending transaction [c]. Must not exceed [pending]. *)
}

val default : params
(** 10M base rows, 5000 keys, 6 pending + 3 conflicts. *)

val smoke : params
(** 150k rows — same shape, CI-sized. *)

val name : params -> string

val mark_pk : string
(** The public key paid only by pending transaction 0. *)

val generate : params -> Bccore.Bcdb.t
(** Raises [Invalid_argument] on degenerate parameters. *)

val query_hit : unit -> Bcquery.Query.t
(** Boolean query matching exactly in worlds containing pending
    transaction 0 (joins TxIn to the marked TxOut) — as a denial
    constraint, unsatisfied. *)

val query_miss : unit -> Bcquery.Query.t
(** Boolean query matching in no world (a public key nobody pays), so
    the denial constraint holds everywhere; every base probe for it is
    a dictionary miss. *)
