module Core = Bccore

type algo = Naive | Opt

let algo_name = function Naive -> "NaiveDCSat" | Opt -> "OptDCSat"

type measurement = {
  label : string;
  algo : algo;
  variant : Queries.variant;
  jobs : int;
  satisfied : bool;
  unknown : bool;
  seconds : float;
  stats : Core.Dcsat.stats;
  obs_worlds : int;
  cache_hit_ratio : float;
  comp_cache_hit_ratio : float;
  worker_util : float;
  eval_full : int;
  eval_delta : int;
  eval_delta_tuples : int;
  eval_delta_ratio : float;
  base_bytes : int;
  dict_hits : int;
  bk_steals : int;
  bk_subtrees : int;
  eval_native : int;
}

let run ?(repeats = 3) ?(warmup = 0) ?(summary = `Mean) ?(jobs = 1)
    ?(use_delta = true) ?use_native ?use_steal ?timeout_s ?max_worlds
    ?(obs_sinks = []) ~session ~label ~algo ~variant q =
  let solve () =
    (* Budgets are single-run (the deadline is absolute): each solve gets
       a fresh one, so every repeat has the full allowance. *)
    let budget =
      match (timeout_s, max_worlds) with
      | None, None -> Core.Engine.Budget.unlimited
      | _ -> Core.Engine.Budget.create ?timeout_s ?max_worlds ()
    in
    let result =
      match algo with
      | Naive ->
          Core.Dcsat.naive ~jobs ~budget ~use_delta ?use_native ?use_steal
            session q
      | Opt ->
          Core.Dcsat.opt ~jobs ~budget ~use_delta ?use_native ?use_steal
            session q
    in
    match result with
    | Ok outcome -> outcome
    | Error refusal ->
        invalid_arg
          (Format.asprintf "Experiment.run (%s, %s): %a" label (algo_name algo)
             Core.Dcsat.pp_refusal refusal)
  in
  for _ = 1 to warmup do
    ignore (solve ())
  done;
  let outcomes = List.init (max 1 repeats) (fun _ -> solve ()) in
  (* Per-run times come from the solver's own stats, which read the
     monotonic clock (Monotime) — immune to NTP adjustments. *)
  let times =
    List.map
      (fun (o : Core.Dcsat.outcome) -> o.Core.Dcsat.stats.Core.Dcsat.runtime)
      outcomes
  in
  let seconds =
    match summary with
    | `Mean ->
        List.fold_left ( +. ) 0.0 times /. float_of_int (List.length times)
    | `Min -> List.fold_left min infinity times
  in
  let last = List.nth outcomes (List.length outcomes - 1) in
  (* The headline counters come from one extra, untimed solve under a
     fresh recorder: the timed loop above stays uninstrumented (null
     recorder — within noise of the pre-observability harness), and the
     engine's determinism contract makes the world/clique counters of
     the extra run equal to the timed runs'. *)
  let obs = Core.Obs.create ~sinks:obs_sinks () in
  let saved = Core.Session.obs session in
  Core.Session.set_obs session obs;
  let instrumented = solve () in
  Core.Session.set_obs session saved;
  Core.Obs.flush obs;
  let obs_worlds = Core.Obs.counter obs "dcsat.worlds" in
  let eval_full = Core.Obs.counter obs "eval.full" in
  let eval_delta = Core.Obs.counter obs "eval.delta" in
  let eval_delta_tuples = Core.Obs.counter obs "eval.delta_tuples" in
  let eval_delta_ratio =
    let total = eval_full + eval_delta in
    if total = 0 then 0.0 else float_of_int eval_delta /. float_of_int total
  in
  let hit = Core.Obs.counter obs "store.vis_hit" in
  let miss = Core.Obs.counter obs "store.vis_miss" in
  let cache_hit_ratio =
    if hit + miss = 0 then 0.0
    else float_of_int hit /. float_of_int (hit + miss)
  in
  let chit = Core.Obs.counter obs "live.comp_cache_hit" in
  let cmiss = Core.Obs.counter obs "live.comp_cache_miss" in
  let comp_cache_hit_ratio =
    if chit + cmiss = 0 then 0.0
    else float_of_int chit /. float_of_int (chit + cmiss)
  in
  let busy =
    match Core.Obs.hist_of obs "engine.busy_s" with
    | Some h -> h.Core.Obs.sum
    | None -> 0.0
  in
  let irt = instrumented.Core.Dcsat.stats.Core.Dcsat.runtime in
  let worker_util =
    if irt <= 0.0 then 0.0 else busy /. (float_of_int (max 1 jobs) *. irt)
  in
  {
    label;
    algo;
    variant;
    jobs;
    satisfied = last.Core.Dcsat.satisfied;
    unknown =
      (match last.Core.Dcsat.verdict with
      | Core.Dcsat.Unknown _ -> true
      | Core.Dcsat.Satisfied | Core.Dcsat.Violated _ -> false);
    seconds;
    stats = last.Core.Dcsat.stats;
    obs_worlds;
    cache_hit_ratio;
    comp_cache_hit_ratio;
    worker_util;
    eval_full;
    eval_delta;
    eval_delta_tuples;
    eval_delta_ratio;
    base_bytes = Core.Tagged_store.base_bytes (Core.Session.store session);
    dict_hits = Core.Obs.counter obs "segment.dict_hits";
    bk_steals = Core.Obs.counter obs "bk.steal";
    bk_subtrees = Core.Obs.counter obs "bk.subtree";
    eval_native = Core.Obs.counter obs "eval.compiled_native";
  }

let session_of db =
  let session = Core.Session.create db in
  Core.Session.warm session;
  session

let print_table ~title ~columns ~rows =
  let all = columns :: rows in
  let ncols = List.length columns in
  let width i =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row i with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let print_row row =
    List.mapi (fun i cell -> pad cell (List.nth widths i)) row
    |> String.concat "  " |> String.trim |> print_endline
  in
  Printf.printf "\n== %s ==\n" title;
  print_row columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let ms seconds =
  if seconds < 0.0005 then Printf.sprintf "%.2f ms" (seconds *. 1000.0)
  else if seconds < 1.0 then Printf.sprintf "%.1f ms" (seconds *. 1000.0)
  else Printf.sprintf "%.2f s" seconds
