(** Poisson-arrival driver for the live DCSat service: replays an
    open-loop request stream against a single-server check loop and
    reports throughput and latency percentiles — the serving metrics a
    single-solve seconds figure cannot express.

    Requests arrive at exponentially distributed inter-arrival times
    (rate λ, seeded and deterministic); the service time of request [i]
    is the {e measured} wall-clock of running the supplied thunk. The
    server is single-file, so request [i] starts at
    [max(arrival_i, completion_{i-1})] and its {e latency} — what a
    client would see — is queueing delay plus service time. Arrivals are
    simulated (no real sleeping): the driver runs the thunks
    back-to-back and does the queueing arithmetic on the virtual
    clock, so a bench run costs only the sum of the service times. *)

type summary = {
  requests : int;
  rate : float;  (** Offered arrival rate λ (requests/second). *)
  duration : float;
      (** Virtual makespan: last completion minus first arrival. *)
  checks_per_sec : float;  (** [requests /. duration]. *)
  mean_service : float;  (** Mean measured service time (seconds). *)
  p50 : float;  (** Median client latency (seconds). *)
  p90 : float;
  p99 : float;
}

val run : seed:int -> rate:float -> requests:int -> (int -> unit) -> summary
(** [run ~seed ~rate ~requests service] times [service i] for each
    [i < requests] and folds the measurements through the queueing
    model. [requests] must be positive. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,1]: nearest-rank percentile of the
    (unsorted) array. Raises [Invalid_argument] on an empty array. *)
