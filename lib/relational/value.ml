type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

let tag = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Str _ -> 4

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | _ -> Int.compare (tag a) (tag b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Bool b -> if b then 1 else 2
  | Int i -> Hashtbl.hash (2, i)
  | Float f -> Hashtbl.hash (3, f)
  | Str s -> Hashtbl.hash (4, s)

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Null | Bool _ | Str _ -> None

let is_numeric v = match v with Int _ | Float _ -> true | _ -> false

let lt a b =
  match (a, b) with
  | Int x, Int y -> x < y
  | Str x, Str y -> x < y
  | Bool x, Bool y -> (not x) && y
  | (Int _ | Float _), (Int _ | Float _) -> (
      match (to_float a, to_float b) with
      | Some x, Some y -> x < y
      | _ -> false)
  | _ -> false

let add a b =
  match (a, b) with
  | Int x, Int y -> Int (x + y)
  | (Int _ | Float _), (Int _ | Float _) -> (
      match (to_float a, to_float b) with
      | Some x, Some y -> Float (x +. y)
      | _ -> invalid_arg "Value.add: non-numeric operand")
  | _ -> invalid_arg "Value.add: non-numeric operand"

let zero = Int 0
let max_v a b = if lt a b then b else a
let min_v a b = if lt b a then b else a

let pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Format.fprintf ppf "%.1f" f
      else begin
        (* Shortest representation that parses back to the same float
           (bit-exact, nan included): try ascending precision and stop
           at the first fixpoint. 17 significant digits always suffice
           for a binary64, so the loop terminates. *)
        let rec shortest p =
          let s = Printf.sprintf "%.*g" p f in
          if p >= 17 || Float.equal (float_of_string s) f then s
          else shortest (p + 1)
        in
        Format.pp_print_string ppf (shortest 1)
      end
  | Str s -> Format.fprintf ppf "%S" s

let to_string v = Format.asprintf "%a" pp v

(* Binary encoding (little-endian), used by the snapshot format. *)

let write_binary buf = function
  | Null -> Buffer.add_uint8 buf 0
  | Bool false -> Buffer.add_uint8 buf 1
  | Bool true -> Buffer.add_uint8 buf 2
  | Int i ->
      Buffer.add_uint8 buf 3;
      Buffer.add_int64_le buf (Int64.of_int i)
  | Float f ->
      Buffer.add_uint8 buf 4;
      Buffer.add_int64_le buf (Int64.bits_of_float f)
  | Str s ->
      Buffer.add_uint8 buf 5;
      Buffer.add_int64_le buf (Int64.of_int (String.length s));
      Buffer.add_string buf s

let read_binary s pos =
  let len = String.length s in
  if !pos >= len then None
  else begin
    let tag = Char.code s.[!pos] in
    incr pos;
    let i64 () =
      if !pos + 8 > len then None
      else begin
        let v = String.get_int64_le s !pos in
        pos := !pos + 8;
        Some v
      end
    in
    match tag with
    | 0 -> Some Null
    | 1 -> Some (Bool false)
    | 2 -> Some (Bool true)
    | 3 -> Option.map (fun v -> Int (Int64.to_int v)) (i64 ())
    | 4 -> Option.map (fun v -> Float (Int64.float_of_bits v)) (i64 ())
    | 5 -> (
        match i64 () with
        | Some n ->
            let n = Int64.to_int n in
            if n < 0 || !pos + n > len then None
            else begin
              let v = Str (String.sub s !pos n) in
              pos := !pos + n;
              Some v
            end
        | None -> None)
    | _ -> None
  end
