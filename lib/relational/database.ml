module Smap = Map.Make (String)

(* Hybrid storage: each relation is an optional immutable columnar
   [Segment.t] (the bulk, shared structurally by [copy]) plus a mutable
   [Relation.t] tail for rows inserted afterwards. Databases built row
   by row simply have empty segments. *)
type t = {
  catalog : Schema.t;
  segs : Segment.t Smap.t;
  relations : Relation.t Smap.t;
}

let fresh_tails catalog =
  List.fold_left
    (fun acc r -> Smap.add r.Schema.name (Relation.create r) acc)
    Smap.empty (Schema.relations catalog)

let create catalog = { catalog; segs = Smap.empty; relations = fresh_tails catalog }

let of_segments catalog segs =
  let segs =
    List.fold_left
      (fun acc (name, seg) ->
        let schema =
          match Schema.find_opt catalog name with
          | Some s -> s
          | None -> invalid_arg ("Database.of_segments: unknown relation " ^ name)
        in
        if Schema.arity schema <> Segment.arity seg then
          invalid_arg ("Database.of_segments: arity mismatch for " ^ name);
        Smap.add name seg acc)
      Smap.empty segs
  in
  { catalog; segs; relations = fresh_tails catalog }

let catalog t = t.catalog
let relation t name = Smap.find name t.relations
let relation_opt t name = Smap.find_opt name t.relations
let segment t name = Smap.find_opt name t.segs

let seg_len t name =
  match Smap.find_opt name t.segs with Some s -> Segment.length s | None -> 0

let insert t name tuple =
  (match Smap.find_opt name t.segs with
  | Some seg when Segment.mem seg tuple -> false
  | _ -> true)
  && Relation.insert (relation t name) tuple

let insert_all t rows =
  List.iter (fun (name, tuple) -> ignore (insert t name tuple)) rows

let total_cardinality t =
  Smap.fold
    (fun name r acc -> acc + Relation.cardinality r + seg_len t name)
    t.relations 0

(* Tails are append-only sets, so their total cardinality is a faithful
   mutation stamp — it moves on every in-place insert, through any code
   path, and never repeats a value after a change. *)
let generation t =
  Smap.fold (fun _ r acc -> acc + Relation.cardinality r) t.relations 0

let iter_tuples t name f =
  (match Smap.find_opt name t.segs with
  | Some seg -> Seq.iter f (Segment.tuple_seq seg)
  | None -> ());
  Relation.iter f (relation t name)

(* Columnar view of one relation: the segment itself when the tail is
   empty (zero cost — this is how a freshly loaded snapshot reaches the
   tagged store without a rebuild), otherwise segment + tail re-encoded. *)
let to_segment t name =
  let tail = relation t name in
  match Smap.find_opt name t.segs with
  | Some seg when Relation.cardinality tail = 0 -> seg
  | seg ->
      let arity = Schema.arity (Relation.schema tail) in
      let b = Segment.Builder.create ~arity in
      (match seg with
      | Some s -> Seq.iter (Segment.Builder.add b) (Segment.tuple_seq s)
      | None -> ());
      Relation.iter (Segment.Builder.add b) tail;
      Segment.Builder.finish b

let copy t =
  (* Segments are immutable: share them; deep-copy only the tails. *)
  let fresh = { t with relations = fresh_tails t.catalog } in
  Smap.iter
    (fun name r ->
      Relation.iter
        (fun tu -> ignore (Relation.insert (relation fresh name) tu))
        r)
    t.relations;
  fresh

let scan t name =
  match Smap.find_opt name t.segs with
  | Some seg -> Seq.append (Segment.tuple_seq seg) (Relation.scan (relation t name))
  | None -> Relation.scan (relation t name)

let lookup t name binds =
  match binds with
  | [] -> scan t name
  | _ ->
      let tail = Relation.lookup (relation t name) binds in
      (match Smap.find_opt name t.segs with
      | Some seg ->
          let sl = Segment.lookup seg (List.map fst binds) binds in
          Seq.append
            (Seq.map (Segment.tuple seg) (Segment.slice_rows seg sl))
            tail
      | None -> tail)

(* Early-exit fold over [lookup]'s stream. The plain database is the
   cold path (sessions evaluate on tagged stores), so a Seq wrapper is
   fine here; the tagged store iterates its indexes directly. *)
let fold_lookup t name binds f =
  let rec go s =
    match s () with
    | Seq.Nil -> true
    | Seq.Cons (tu, rest) -> if f tu then go rest else false
  in
  go (lookup t name binds)

let mem t name tu =
  (match Smap.find_opt name t.segs with
  | Some seg -> Segment.mem seg tu
  | None -> false)
  || Relation.mem (relation t name) tu

let cardinality t name = seg_len t name + Relation.cardinality (relation t name)

let selectivity t name binds =
  let tail = Relation.lookup_count_estimate (relation t name) binds in
  match (binds, Smap.find_opt name t.segs) with
  | [], Some seg -> Segment.length seg + tail
  | _ :: _, Some seg ->
      let sl = Segment.lookup seg (List.map fst binds) binds in
      Segment.slice_count sl + tail
  | _, None -> tail

let source t =
  {
    Source.catalog = t.catalog;
    scan = scan t;
    lookup = lookup t;
    fold_lookup = fold_lookup t;
    mem = mem t;
    cardinality = cardinality t;
    selectivity = selectivity t;
  }

let pp ppf t =
  let pp_rel ppf (name, r) =
    let tuples = List.of_seq (scan t name) in
    Format.fprintf ppf "@[<v 2>%a:@ %a@]" Schema.pp_relation (Relation.schema r)
      (Format.pp_print_list Tuple.pp)
      tuples
  in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list pp_rel)
    (Smap.bindings t.relations)
