type t = {
  catalog : Schema.t;
  scan : string -> Tuple.t Seq.t;
  lookup : string -> (int * Value.t) list -> Tuple.t Seq.t;
  fold_lookup : string -> (int * Value.t) list -> (Tuple.t -> bool) -> bool;
  mem : string -> Tuple.t -> bool;
  cardinality : string -> int;
  selectivity : string -> (int * Value.t) list -> int;
}

let schema t name = Schema.find t.catalog name
