(** Ground values stored in blockchain-database relations.

    Values are the leaves of the data model of Section 4 of the paper:
    relations hold ground tuples of values, and denial constraints compare
    values to one another and to constants. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

val compare : t -> t -> int
(** Total order over all values (constructor order first, then payload).
    Used for indexing and set containers; not the semantic comparison used
    by query predicates (see {!lt}). *)

val equal : t -> t -> bool

val hash : t -> int
(** Hash compatible with {!equal}; suitable for [Hashtbl]. *)

val lt : t -> t -> bool
(** Semantic strict order used by query comparisons ([<], [>]).
    Numeric values compare numerically ([Int] and [Float] interoperate);
    strings and booleans compare within their own type. Comparing
    incomparable values (e.g. a string to an int, or anything to [Null])
    yields [false], mirroring SQL's three-valued logic collapsing to
    false in a boolean context. *)

val is_numeric : t -> bool

val to_float : t -> float option
(** Numeric view of a value, when it has one. *)

val add : t -> t -> t
(** Numeric addition for aggregation ([sum]). [Int]+[Int] stays [Int];
    any [Float] operand promotes the result. Adding a non-numeric value
    raises [Invalid_argument]. *)

val zero : t
(** Additive identity for {!add} ([Int 0]). *)

val max_v : t -> t -> t
(** Semantic maximum of two values under {!lt}'s order. *)

val min_v : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Prints values in the syntax accepted by the query parser: strings
    are double-quoted with escapes; floats print either with a decimal
    point (integer-valued) or as the shortest decimal string that
    parses back to the identical bits, so printing never loses
    precision. *)

val to_string : t -> string

val write_binary : Buffer.t -> t -> unit
(** Tagged little-endian binary encoding, used by the snapshot format. *)

val read_binary : string -> int ref -> t option
(** Reads one {!write_binary}-encoded value at [!pos], advancing [pos].
    [None] on a malformed or truncated encoding (never reads out of
    bounds). *)
