(* One attribute of an immutable columnar segment. Homogeneous Int and
   Float columns are stored unboxed in Bigarrays; everything else (and
   mixed-type columns — attributes are untyped in this model) falls back
   to dictionary encoding: distinct values are interned once and rows
   store small integer codes whose width is chosen by dictionary size.
   All payloads live off the OCaml heap, so a 10M-row segment costs the
   GC nothing. *)

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type int_ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type float_ba =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type codes =
  | C8 of (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
  | C16 of
      (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
  | C64 of int_ba

type dict = {
  codes : codes;
  values : Value.t array;  (* code -> interned value *)
  vhash : int array;  (* code -> Value.hash of the value *)
  by_value : int Vtbl.t;  (* value -> code; probe-time encoding *)
}

type t = Ints of int_ba | Floats of float_ba | Dict of dict

(* A probe value encoded against one column. [Knone] means the value
   cannot occur in the column at all (wrong type for an unboxed column,
   or absent from the dictionary), so any probe for it is empty. *)
type key = Kint of int | Kfloat of float | Kcode of int | Knone

let length = function
  | Ints a -> Bigarray.Array1.dim a
  | Floats a -> Bigarray.Array1.dim a
  | Dict d -> (
      match d.codes with
      | C8 a -> Bigarray.Array1.dim a
      | C16 a -> Bigarray.Array1.dim a
      | C64 a -> Bigarray.Array1.dim a)

let code d row =
  match d.codes with
  | C8 a -> Bigarray.Array1.unsafe_get a row
  | C16 a -> Bigarray.Array1.unsafe_get a row
  | C64 a -> Bigarray.Array1.unsafe_get a row

let get t row =
  match t with
  | Ints a -> Value.Int (Bigarray.Array1.get a row)
  | Floats a -> Value.Float (Bigarray.Array1.get a row)
  | Dict d -> d.values.(code d row)

let is_dict = function Dict _ -> true | Ints _ | Floats _ -> false

let key t v =
  match (t, v) with
  | Ints _, Value.Int i -> Kint i
  | Floats _, Value.Float f -> Kfloat f
  | Dict d, _ -> (
      match Vtbl.find_opt d.by_value v with Some c -> Kcode c | None -> Knone)
  | (Ints _ | Floats _), _ -> Knone

let matches t row k =
  match (t, k) with
  | _, Knone -> false
  | Ints a, Kint i -> Bigarray.Array1.unsafe_get a row = i
  | Floats a, Kfloat f -> Float.compare (Bigarray.Array1.unsafe_get a row) f = 0
  | Dict d, Kcode c -> code d row = c
  | _ -> false

(* [hash_at t row = Value.hash (get t row)] without boxing the value,
   so positional index builds hash exactly like probe keys do. *)
let hash_at t row =
  match t with
  | Ints a -> Hashtbl.hash (2, Bigarray.Array1.unsafe_get a row)
  | Floats a -> Hashtbl.hash (3, Bigarray.Array1.unsafe_get a row)
  | Dict d -> d.vhash.(code d row)

let equal_at t row v =
  match t with
  | Ints a -> (
      match v with
      | Value.Int i -> Bigarray.Array1.unsafe_get a row = i
      | _ -> false)
  | Floats a -> (
      match v with
      | Value.Float f -> Float.compare (Bigarray.Array1.unsafe_get a row) f = 0
      | _ -> false)
  | Dict d -> Value.equal d.values.(code d row) v

(* Resident bytes, estimated: Bigarray payloads exactly, dictionary
   entries by a boxed-value approximation. *)
let value_bytes = function
  | Value.Str s -> 24 + String.length s
  | Value.Float _ -> 16
  | Value.Int _ | Value.Bool _ | Value.Null -> 8

let bytes t =
  let n = length t in
  match t with
  | Ints _ | Floats _ -> 8 * n
  | Dict d ->
      let w = match d.codes with C8 _ -> 1 | C16 _ -> 2 | C64 _ -> 8 in
      (w * n)
      + Array.fold_left (fun acc v -> acc + 16 + value_bytes v) 0 d.values

let dict_size = function Dict d -> Array.length d.values | _ -> 0

(* ------------------------------------------------------------------ *)

module Builder = struct
  type col = t

  type t = {
    mutable n : int;
    mutable codes : int array;  (* growable; valid up to [n] *)
    by_value : int Vtbl.t;
    mutable values : Value.t list;  (* reversed interning order *)
    mutable nvalues : int;
    mutable all_int : bool;
    mutable all_float : bool;
  }

  let create () =
    {
      n = 0;
      codes = [||];
      by_value = Vtbl.create 64;
      values = [];
      nvalues = 0;
      all_int = true;
      all_float = true;
    }

  let add b v =
    if b.n >= Array.length b.codes then begin
      let ncap = max 64 (2 * Array.length b.codes) in
      let nc = Array.make ncap 0 in
      Array.blit b.codes 0 nc 0 b.n;
      b.codes <- nc
    end;
    let c =
      match Vtbl.find_opt b.by_value v with
      | Some c -> c
      | None ->
          let c = b.nvalues in
          Vtbl.replace b.by_value v c;
          b.values <- v :: b.values;
          b.nvalues <- c + 1;
          (match v with
          | Value.Int _ -> b.all_float <- false
          | Value.Float _ -> b.all_int <- false
          | _ ->
              b.all_int <- false;
              b.all_float <- false);
          c
    in
    b.codes.(b.n) <- c;
    b.n <- b.n + 1

  let length b = b.n

  let finish b =
    let values = Array.of_list (List.rev b.values) in
    let n = b.n in
    if b.all_int && b.nvalues > 0 then begin
      let decode = Array.map (function Value.Int i -> i | _ -> 0) values in
      let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
      for i = 0 to n - 1 do
        Bigarray.Array1.unsafe_set a i decode.(b.codes.(i))
      done;
      Ints a
    end
    else if b.all_float && b.nvalues > 0 then begin
      let decode = Array.map (function Value.Float f -> f | _ -> 0.0) values in
      let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
      for i = 0 to n - 1 do
        Bigarray.Array1.unsafe_set a i decode.(b.codes.(i))
      done;
      Floats a
    end
    else begin
      let codes =
        if b.nvalues <= 0x100 then begin
          let a =
            Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout n
          in
          for i = 0 to n - 1 do
            Bigarray.Array1.unsafe_set a i b.codes.(i)
          done;
          C8 a
        end
        else if b.nvalues <= 0x10000 then begin
          let a =
            Bigarray.Array1.create Bigarray.int16_unsigned Bigarray.c_layout n
          in
          for i = 0 to n - 1 do
            Bigarray.Array1.unsafe_set a i b.codes.(i)
          done;
          C16 a
        end
        else begin
          let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
          for i = 0 to n - 1 do
            Bigarray.Array1.unsafe_set a i b.codes.(i)
          done;
          C64 a
        end
      in
      Dict { codes; values; vhash = Array.map Value.hash values; by_value = b.by_value }
    end
end

(* ------------------------------------------------------------------ *)
(* Binary blobs (little-endian; consumed by the snapshot format). *)

let add_i64 buf i = Buffer.add_int64_le buf (Int64.of_int i)

let serialize buf t =
  let n = length t in
  (match t with Ints _ -> Buffer.add_uint8 buf 0
  | Floats _ -> Buffer.add_uint8 buf 1
  | Dict _ -> Buffer.add_uint8 buf 2);
  add_i64 buf n;
  match t with
  | Ints a ->
      for i = 0 to n - 1 do
        add_i64 buf (Bigarray.Array1.get a i)
      done
  | Floats a ->
      for i = 0 to n - 1 do
        Buffer.add_int64_le buf (Int64.bits_of_float (Bigarray.Array1.get a i))
      done
  | Dict d ->
      add_i64 buf (Array.length d.values);
      Array.iter (Value.write_binary buf) d.values;
      let w = match d.codes with C8 _ -> 1 | C16 _ -> 2 | C64 _ -> 8 in
      Buffer.add_uint8 buf w;
      for i = 0 to n - 1 do
        match d.codes with
        | C8 a -> Buffer.add_uint8 buf (Bigarray.Array1.get a i)
        | C16 a -> Buffer.add_uint16_le buf (Bigarray.Array1.get a i)
        | C64 a -> add_i64 buf (Bigarray.Array1.get a i)
      done

exception Corrupt of string

let read_i64 s pos =
  if !pos + 8 > String.length s then raise (Corrupt "truncated int64");
  let v = Int64.to_int (String.get_int64_le s !pos) in
  pos := !pos + 8;
  v

let deserialize s pos =
  let kind =
    if !pos >= String.length s then raise (Corrupt "truncated column")
    else Char.code s.[!pos]
  in
  incr pos;
  let n = read_i64 s pos in
  if n < 0 then raise (Corrupt "negative column length");
  match kind with
  | 0 ->
      let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
      for i = 0 to n - 1 do
        Bigarray.Array1.set a i (read_i64 s pos)
      done;
      Ints a
  | 1 ->
      let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
      for i = 0 to n - 1 do
        if !pos + 8 > String.length s then raise (Corrupt "truncated floats");
        Bigarray.Array1.set a i (Int64.float_of_bits (String.get_int64_le s !pos));
        pos := !pos + 8
      done;
      Floats a
  | 2 ->
      let nd = read_i64 s pos in
      if nd < 0 then raise (Corrupt "negative dictionary size");
      let values =
        Array.init nd (fun _ ->
            match Value.read_binary s pos with
            | Some v -> v
            | None -> raise (Corrupt "bad dictionary value"))
      in
      let by_value = Vtbl.create (max 16 nd) in
      Array.iteri (fun c v -> Vtbl.replace by_value v c) values;
      let w =
        if !pos >= String.length s then raise (Corrupt "truncated code width")
        else Char.code s.[!pos]
      in
      incr pos;
      let need = w * n in
      if !pos + need > String.length s then raise (Corrupt "truncated codes");
      let check c = if c < 0 || c >= nd then raise (Corrupt "code out of range") in
      let codes =
        match w with
        | 1 ->
            let a =
              Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout n
            in
            for i = 0 to n - 1 do
              let c = Char.code s.[!pos + i] in
              check c;
              Bigarray.Array1.set a i c
            done;
            pos := !pos + n;
            C8 a
        | 2 ->
            let a =
              Bigarray.Array1.create Bigarray.int16_unsigned Bigarray.c_layout n
            in
            for i = 0 to n - 1 do
              let c = String.get_uint16_le s (!pos + (2 * i)) in
              check c;
              Bigarray.Array1.set a i c
            done;
            pos := !pos + (2 * n);
            C16 a
        | 8 ->
            let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
            for i = 0 to n - 1 do
              let c = Int64.to_int (String.get_int64_le s (!pos + (8 * i))) in
              check c;
              Bigarray.Array1.set a i c
            done;
            pos := !pos + (8 * n);
            C64 a
        | _ -> raise (Corrupt "bad code width")
      in
      Dict { codes; values; vhash = Array.map Value.hash values; by_value }
  | _ -> raise (Corrupt "bad column kind")
