(** Read-only access interface over some collection of relations.

    The query evaluator and the constraint checker are written against
    this record so that they work uniformly over a plain {!Database.t},
    over a possible world materialized as a visibility bitset (the core
    library's tagged store), or over any other tuple source. *)

type t = {
  catalog : Schema.t;
  scan : string -> Tuple.t Seq.t;
      (** All visible tuples of the named relation. *)
  lookup : string -> (int * Value.t) list -> Tuple.t Seq.t;
      (** Visible tuples agreeing with all [(position, value)] binds.
          Implementations are encouraged to serve this from an index and
          to cache the visibility-filtered posting per world — the core
          tagged store stamps each cached filter with a world epoch and
          reuses it until the world actually changes. *)
  fold_lookup : string -> (int * Value.t) list -> (Tuple.t -> bool) -> bool;
      (** [fold_lookup rel binds f] calls [f] on each tuple {!lookup}
          would yield, in the same order, until [f] returns [false];
          returns [false] iff the iteration was stopped early. The
          closure-compiled evaluator drives its fused join loops through
          this entry point — implementations should iterate their
          indexes directly rather than materializing a [Seq.t]. *)
  mem : string -> Tuple.t -> bool;
      (** Visible membership test (used for negated atoms). *)
  cardinality : string -> int;
      (** Number of visible tuples (may be an upper bound). *)
  selectivity : string -> (int * Value.t) list -> int;
      (** Upper bound on [lookup] result size; join-ordering heuristic. *)
}

val schema : t -> string -> Schema.relation
(** Raises [Not_found] for an unknown relation. *)
