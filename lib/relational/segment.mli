(** An immutable columnar segment: one {!Column} per attribute plus
    lazily built hash indexes shared by every referent.

    Indexes are uniform: a permutation of row positions sorted by the
    hash of the indexed projection (the hash reproduces {!Tuple.hash}'s
    scheme over the indexed columns in ascending order). The sort is a
    stable LSD radix sort seeded with rows in descending order, so rows
    with equal hashes stay in {e descending} position order — the
    ordering contract the tagged store's [lookup] exposes. Probes
    binary-search the hash array; ranges over-approximate (collisions)
    and {!slice_rows} filters the false positives out positionally. *)

type t

val length : t -> int
val arity : t -> int
val get : t -> int -> int -> Value.t
(** [get s row col]. *)

val tuple : t -> int -> Tuple.t
(** Materializes one row as a boxed tuple. *)

val tuple_seq : t -> Tuple.t Seq.t
(** All rows in position order, materialized lazily. *)

val bytes : t -> int
(** Estimated resident bytes of the column payloads (indexes excluded,
    so the figure is stable regardless of probe history). *)

val dict_size : t -> int
(** Total interned dictionary values across columns. *)

(** {2 Probing} *)

type keys
(** Binds compiled against this segment's columns. *)

val compile : t -> (int * Value.t) list -> keys
val keys_match : t -> keys -> int -> bool
(** [keys_match s k row] — positional equality on every bound column. *)

type index

val index : t -> int list -> index
(** Cached; built on first use under the segment's lock. The returned
    index is immutable — memoize it per store for lock-free probing. *)

type slice

val slice : t -> index -> keys -> slice

val slice_count : slice -> int
(** Upper bound on matching rows (hash-range width, collisions
    included). Use as a selectivity estimate only. *)

val slice_rows : t -> slice -> int Seq.t
(** Exactly the matching row positions, descending. *)

val dict_hits : slice -> int * int
(** [(hits, misses)] of dictionary-encoded probe columns — a miss means
    the probe value is absent from the column's dictionary. *)

val lookup : t -> int list -> (int * Value.t) list -> slice
(** [slice] over [index s cols] with [compile s binds]. *)

val find : t -> Tuple.t -> int Seq.t
(** Positions holding exactly this tuple (via the all-columns index),
    descending. *)

val mem : t -> Tuple.t -> bool

(** {2 Building and bridging} *)

module Builder : sig
  type seg = t
  type t

  val create : arity:int -> t
  val add : t -> Tuple.t -> unit
  val length : t -> int
  val finish : t -> seg
end

val of_relation : Relation.t -> t
(** Positions follow the relation's insertion order. *)

val to_relation : Schema.relation -> t -> Relation.t

(** {2 Binary blobs} — indexes are rebuilt on demand, never stored. *)

val serialize : Buffer.t -> t -> unit

val deserialize : string -> int ref -> t
(** Raises {!Column.Corrupt} on malformed input. *)
