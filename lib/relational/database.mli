(** A database: a catalog of schemas together with one relation instance
    per name. Used for the current state [R] of a blockchain database
    and for scratch materializations in tests.

    Storage is hybrid: each relation is an optional immutable columnar
    {!Segment.t} (the bulk — shared structurally by {!copy}) plus a
    mutable {!Relation.t} tail holding rows inserted afterwards.
    Databases built row by row simply have empty segments; databases
    restored from a binary snapshot are all segment. *)

type t

val create : Schema.t -> t
(** Fresh empty instance for every relation of the catalog. *)

val of_segments : Schema.t -> (string * Segment.t) list -> t
(** Database whose listed relations start as the given segments (tails
    empty). Raises [Invalid_argument] on unknown names or arity
    mismatches. *)

val catalog : t -> Schema.t

val relation : t -> string -> Relation.t
(** The {e mutable tail} of a relation — rows inserted after the
    segment; excludes segment rows. Prefer {!iter_tuples} / {!source}
    for whole-relation reads. Raises [Not_found] for an unknown name. *)

val relation_opt : t -> string -> Relation.t option

val segment : t -> string -> Segment.t option
(** The immutable base segment, when the relation has one. *)

val insert : t -> string -> Tuple.t -> bool
(** Insert into a named relation's tail; duplicates of segment or tail
    rows are rejected (returns [false]), as in {!Relation.insert}. *)

val insert_all : t -> (string * Tuple.t) list -> unit

val iter_tuples : t -> string -> (Tuple.t -> unit) -> unit
(** All rows of one relation: segment rows in position order, then tail
    rows in insertion order. *)

val to_segment : t -> string -> Segment.t
(** Columnar view of one whole relation. When the tail is empty this is
    the stored segment itself (zero cost); otherwise segment and tail
    are re-encoded into a fresh segment. *)

val total_cardinality : t -> int

val generation : t -> int
(** Monotone mutation stamp of the database value: the total row count
    across every relation's mutable tail. Relations are append-only sets
    (no update, no delete), so {e any} in-place change — whether through
    {!insert}/{!insert_all} or a direct {!Relation.insert} on a tail
    obtained from {!relation} — moves the stamp. Segments are immutable
    and do not contribute. Caches that guard entries by physical equality
    of the database value pair it with this stamp to detect in-place
    churn (see {!Bccore.Session}). *)

val copy : t -> t
(** Copy sharing the immutable segments and deep-copying the tails. *)

val source : t -> Source.t
(** Read-only view for the query evaluator, merging segment and tail
    (segment matches first, then tail). *)

val pp : Format.formatter -> t -> unit
