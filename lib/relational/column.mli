(** One attribute of an immutable columnar segment.

    Homogeneous [Int] and [Float] columns are stored unboxed in
    [Bigarray]s; mixed-type columns (and [Str]/[Bool]/[Null]) are
    dictionary-encoded — distinct values interned once, rows holding
    integer codes whose width (8/16/64 bit) follows dictionary size.
    Payloads live off the OCaml heap, so a multi-million-row segment is
    invisible to the GC. *)

type int_ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

type key = Kint of int | Kfloat of float | Kcode of int | Knone
(** A probe value encoded against one column. [Knone] means the value
    cannot occur in the column (wrong type for an unboxed column, or
    absent from the dictionary): any probe for it is empty. *)

val length : t -> int
val get : t -> int -> Value.t
val is_dict : t -> bool

val key : t -> Value.t -> key
(** Encode a probe value. O(1) for unboxed columns, one hash lookup for
    dictionary columns. *)

val matches : t -> int -> key -> bool
(** [matches c row k] — does the row's value equal the encoded probe?
    Always [false] for [Knone]. *)

val hash_at : t -> int -> int
(** [hash_at c row = Value.hash (get c row)], computed without boxing
    the value. *)

val equal_at : t -> int -> Value.t -> bool
(** [equal_at c row v = Value.equal (get c row) v] without boxing. *)

val bytes : t -> int
(** Estimated resident bytes: Bigarray payloads exactly, dictionary
    entries by a boxed-value approximation. *)

val dict_size : t -> int
(** Number of interned dictionary values; 0 for unboxed columns. *)

(** Streaming construction: values are dictionary-encoded as they
    arrive; if every value turns out to be [Int] (resp. [Float]) the
    finished column is unboxed instead. *)
module Builder : sig
  type col = t
  type t

  val create : unit -> t
  val add : t -> Value.t -> unit
  val length : t -> int
  val finish : t -> col
end

(** {2 Binary blobs} — little-endian, consumed by the snapshot format. *)

exception Corrupt of string

val serialize : Buffer.t -> t -> unit

val deserialize : string -> int ref -> t
(** Raises {!Corrupt} on malformed input (never reads out of bounds). *)

(**/**)

val add_i64 : Buffer.t -> int -> unit
val read_i64 : string -> int ref -> int
