(* An immutable columnar segment: one Column per attribute plus lazily
   built hash indexes. Every index — single-column, composite, or whole-
   tuple membership — has the same shape: a permutation of row positions
   sorted by the hash of the indexed projection. The hash reproduces
   [Tuple.hash]'s scheme (fold [acc*31 + Value.hash v] from 17 over the
   indexed columns in ascending order), so a probe key computed from
   boxed values lands in the same bucket as rows hashed positionally.

   The permutation is built by an LSD radix sort (16-bit digits) seeded
   with rows in descending order; the sort is stable, so rows with equal
   hashes stay in descending position order — the ordering contract
   [Tagged_store.lookup] exposes. Lookups binary-search the sorted hash
   array; the resulting range is an upper bound (hash collisions), and
   [slice_rows] filters collisions out by positional comparison. *)

type int_ba = Column.int_ba

type index = { icols : int array; hashes : int_ba; perm : int_ba }

type t = {
  cols : Column.t array;
  n : int;
  icache : (int list, index) Hashtbl.t;  (* shared by all referents *)
  ilock : Mutex.t;  (* guards [icache]; indexes themselves are immutable *)
}

let make cols n = { cols; n; icache = Hashtbl.create 8; ilock = Mutex.create () }

let length s = s.n
let arity s = Array.length s.cols
let get s row c = Column.get s.cols.(c) row
let tuple s row = Array.init (arity s) (fun c -> Column.get s.cols.(c) row)

let tuple_seq s =
  let rec go i () =
    if i >= s.n then Seq.Nil else Seq.Cons (tuple s i, go (i + 1))
  in
  go 0

let bytes s = Array.fold_left (fun acc c -> acc + Column.bytes c) 0 s.cols
let dict_size s = Array.fold_left (fun acc c -> acc + Column.dict_size c) 0 s.cols

(* ------------------------------------------------------------------ *)
(* Probe keys *)

(* Binds compiled against this segment's columns: kept in ascending
   column order, with dictionary hit/miss counts from the encoding. *)
type keys = {
  kcols : int array;
  kkeys : Column.key array;
  khash : int;  (* projection hash; meaningless if [kempty] *)
  kempty : bool;  (* some key is [Knone]: no row can match *)
  dhits : int;
  dmisses : int;
}

let compile s binds =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) binds in
  (* Collapse duplicate columns. Two different values bound to the same
     column can never both hold, so the probe is empty. *)
  let conflict = ref false in
  let rec uniq = function
    | (c1, v1) :: ((c2, v2) :: _ as rest) when c1 = c2 ->
        if not (Value.equal v1 v2) then conflict := true;
        uniq rest
    | b :: rest -> b :: uniq rest
    | [] -> []
  in
  let binds = uniq sorted in
  let kcols = Array.of_list (List.map fst binds) in
  let vals = Array.of_list (List.map snd binds) in
  let kkeys = Array.map2 (fun c v -> Column.key s.cols.(c) v) kcols vals in
  let kempty = !conflict || Array.exists (fun k -> k = Column.Knone) kkeys in
  let dhits = ref 0 and dmisses = ref 0 in
  Array.iteri
    (fun i c ->
      if Column.is_dict s.cols.(c) then
        match kkeys.(i) with
        | Column.Knone -> incr dmisses
        | _ -> incr dhits)
    kcols;
  let khash =
    Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 vals land max_int
  in
  { kcols; kkeys; khash; kempty; dhits = !dhits; dmisses = !dmisses }

let keys_match s k row =
  let rec go i =
    i >= Array.length k.kcols
    || (Column.matches s.cols.(k.kcols.(i)) row k.kkeys.(i) && go (i + 1))
  in
  (not k.kempty) && go 0

(* ------------------------------------------------------------------ *)
(* Hash-permutation indexes *)

let row_hash s icols row =
  let acc = ref 17 in
  Array.iter
    (fun c -> acc := (!acc * 31) + Column.hash_at s.cols.(c) row)
    icols;
  !acc land max_int

let build_index s icols =
  let n = s.n in
  let h = Array.init n (fun row -> row_hash s icols row) in
  (* Descending seed + stable LSD radix sort keeps equal-hash rows in
     descending position order. *)
  let perm = ref (Array.init n (fun k -> n - 1 - k)) in
  let scratch = ref (Array.make n 0) in
  let hmax = Array.fold_left max 0 (if n = 0 then [| 0 |] else h) in
  let count = Array.make 0x10000 0 in
  let shift = ref 0 in
  while !shift < 63 && hmax lsr !shift > 0 do
    Array.fill count 0 0x10000 0;
    let src = !perm and dst = !scratch in
    for k = 0 to n - 1 do
      let d = (h.(src.(k)) lsr !shift) land 0xffff in
      count.(d) <- count.(d) + 1
    done;
    let acc = ref 0 in
    for d = 0 to 0xffff do
      let c = count.(d) in
      count.(d) <- !acc;
      acc := !acc + c
    done;
    for k = 0 to n - 1 do
      let row = src.(k) in
      let d = (h.(row) lsr !shift) land 0xffff in
      dst.(count.(d)) <- row;
      count.(d) <- count.(d) + 1
    done;
    perm := dst;
    scratch := src;
    shift := !shift + 16
  done;
  let perm = !perm in
  let hashes_ba = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  let perm_ba = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  for k = 0 to n - 1 do
    Bigarray.Array1.unsafe_set perm_ba k perm.(k);
    Bigarray.Array1.unsafe_set hashes_ba k h.(perm.(k))
  done;
  { icols; hashes = hashes_ba; perm = perm_ba }

let index s cols =
  let cols = List.sort_uniq compare cols in
  Mutex.lock s.ilock;
  match Hashtbl.find_opt s.icache cols with
  | Some idx ->
      Mutex.unlock s.ilock;
      idx
  | None ->
      (* Builds are rare and the segment is shared across replicas, so
         hold the lock and build once rather than racing duplicates.
         Callers memoize the returned index per store, making the
         steady state lock-free. *)
      Fun.protect
        ~finally:(fun () -> Mutex.unlock s.ilock)
        (fun () ->
          let idx = build_index s (Array.of_list cols) in
          Hashtbl.replace s.icache cols idx;
          idx)

(* ------------------------------------------------------------------ *)
(* Lookups *)

type slice = { slo : int; shi : int; sidx : index; skeys : keys }

let empty_slice idx k = { slo = 0; shi = 0; sidx = idx; skeys = k }

let slice s idx (k : keys) =
  if k.kempty then empty_slice idx k
  else begin
    let hashes = idx.hashes in
    let n = Bigarray.Array1.dim hashes in
    let target = k.khash in
    (* lower bound: first k with hashes.(k) >= target *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Bigarray.Array1.unsafe_get hashes mid < target then lo := mid + 1
      else hi := mid
    done;
    let first = !lo in
    let lo = ref first and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Bigarray.Array1.unsafe_get hashes mid <= target then lo := mid + 1
      else hi := mid
    done;
    ignore s;
    { slo = first; shi = !lo; sidx = idx; skeys = k }
  end

(* Upper bound: range width counts hash collisions too. Callers use it
   as a selectivity estimate, never as an exact cardinality. *)
let slice_count sl = sl.shi - sl.slo

let slice_rows s sl =
  let perm = sl.sidx.perm in
  let k = sl.skeys in
  let rec go i () =
    if i >= sl.shi then Seq.Nil
    else
      let row = Bigarray.Array1.unsafe_get perm i in
      if keys_match s k row then Seq.Cons (row, go (i + 1)) else go (i + 1) ()
  in
  go sl.slo

let dict_hits sl = (sl.skeys.dhits, sl.skeys.dmisses)

let lookup s cols binds =
  let idx = index s cols in
  slice s idx (compile s binds)

(* Whole-tuple membership via the all-columns index. *)
let all_cols s = List.init (arity s) Fun.id

let find s t =
  if Array.length t <> arity s then Seq.empty
  else
    let binds = Array.to_list (Array.mapi (fun c v -> (c, v)) t) in
    let sl = lookup s (all_cols s) binds in
    slice_rows s sl

let mem s t = not (Seq.is_empty (find s t))

(* ------------------------------------------------------------------ *)
(* Building and bridging *)

module Builder = struct
  type seg = t
  type t = { builders : Column.Builder.t array; mutable bn : int }

  let create ~arity =
    { builders = Array.init arity (fun _ -> Column.Builder.create ()); bn = 0 }

  let add b (t : Tuple.t) =
    if Array.length t <> Array.length b.builders then
      invalid_arg "Segment.Builder.add: arity mismatch";
    Array.iteri (fun c bld -> Column.Builder.add bld t.(c)) b.builders;
    b.bn <- b.bn + 1

  let length b = b.bn
  let finish b = make (Array.map Column.Builder.finish b.builders) b.bn
end

let of_relation r =
  let b = Builder.create ~arity:(Schema.arity (Relation.schema r)) in
  Relation.iter (Builder.add b) r;
  Builder.finish b

let to_relation schema s =
  if Schema.arity schema <> arity s then
    invalid_arg "Segment.to_relation: arity mismatch";
  let r = Relation.create schema in
  for row = 0 to s.n - 1 do
    ignore (Relation.insert r (tuple s row))
  done;
  r

(* ------------------------------------------------------------------ *)
(* Binary blobs (indexes are rebuilt on demand, never serialized). *)

let serialize buf s =
  Column.add_i64 buf s.n;
  Column.add_i64 buf (Array.length s.cols);
  Array.iter (Column.serialize buf) s.cols

let deserialize str pos =
  let n = Column.read_i64 str pos in
  let ncols = Column.read_i64 str pos in
  if n < 0 || ncols < 0 || ncols > 4096 then
    raise (Column.Corrupt "bad segment header");
  let cols = Array.init ncols (fun _ -> Column.deserialize str pos) in
  Array.iter
    (fun c ->
      if Column.length c <> n then
        raise (Column.Corrupt "column length mismatch"))
    cols;
  make cols n
