(** Ground tuples: fixed-arity arrays of {!Value.t}.

    Tuples are treated as immutable once inserted into a relation; the
    array representation is exposed for efficient positional access by
    the query evaluator, but callers must not mutate stored tuples. *)

type t = Value.t array

val make : Value.t list -> t
val arity : t -> int
val get : t -> int -> Value.t

val project : t -> int list -> t
(** [project t positions] extracts the listed attribute positions, in
    order. The identity projection [[0; ...; arity-1]] returns the
    input array itself (no allocation); callers must not mutate the
    result. Raises [Invalid_argument] on an out-of-range position. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [(v1, v2, ...)]. *)

val to_string : t -> string

module Hashed : Hashtbl.HashedType with type t = t
module Tbl : Hashtbl.S with type key = t
module Set : Set.S with type elt = t
