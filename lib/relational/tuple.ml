type t = Value.t array

let make vs = Array.of_list vs
let arity = Array.length
let get t i = t.(i)

let project t positions =
  let n = Array.length t in
  (* Identity projection is common (whole-tuple keys, single-attribute
     relations): return the input unchanged instead of allocating a
     copy. Tuples are immutable by contract, so sharing is safe. *)
  let rec is_identity i = function
    | [] -> i = n
    | p :: rest -> p = i && is_identity (i + 1) rest
  in
  if is_identity 0 positions then t
  else
    let pick i =
      if i < 0 || i >= n then invalid_arg "Tuple.project: position out of range"
      else t.(i)
    in
    Array.of_list (List.map pick positions)

let equal a b =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let compare a b =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let rec go i =
      if i >= Array.length a then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (Array.to_list t)

let to_string t = Format.asprintf "%a" pp t

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Tbl = Hashtbl.Make (Hashed)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
