(** One-stop entry point: dispatch a denial constraint to the cheapest
    sound procedure.

    Order of preference: a tractable PTIME special case when the
    constraint profile and query class admit one (Theorems 1–2); otherwise
    OptDCSat for connected monotone constraints; NaiveDCSat for monotone
    but disconnected ones; and the exact exponential enumeration as a last
    resort for non-monotone constraints over small pending sets. *)

type strategy =
  | Tractable of Tractable.case
  | Opt
  | Naive
  | Brute_force

val strategy_name : strategy -> string

val solve :
  ?jobs:int ->
  ?budget:Engine.Budget.t ->
  ?use_delta:bool ->
  ?use_native:bool ->
  ?use_steal:bool ->
  ?sum_args_nonnegative:bool ->
  ?comp_hooks:Dcsat.comp_hooks ->
  Session.t ->
  Bcquery.Query.t ->
  (Dcsat.outcome * strategy, string) result
(** [Error] only when the constraint is non-monotone {e and} the pending
    set is too large for exhaustive enumeration (> 24 transactions).
    [jobs] selects the engine backend for the Naive/Opt/brute-force
    paths (default 1, sequential — bit-identical to the pre-engine
    solvers); [jobs > 1] runs the calling domain plus pooled helper
    domains, evaluating on session-pooled replicas or component-scoped
    store views (see {!Engine}). [budget] bounds those enumerating
    paths; an exhausted budget yields [verdict = Unknown] in the
    outcome. The tractable procedures are PTIME and always run inline,
    unbudgeted — they terminate promptly by construction. [use_steal]
    selects the work-stealing clique backend for the enumerating paths
    (see {!Dcsat.naive}); it defaults to the [BCDB_BK_STEAL] environment
    variable, or to automatic when unset. [use_native] (default true)
    toggles the closure-compiled evaluation tier on the same paths (see
    {!Dcsat.naive}); answers are identical either way. [comp_hooks]
    enables OptDCSat's per-component verdict-cache path (see
    {!Dcsat.opt}); the tractable, naive and brute-force strategies
    ignore it — only the component-factorized algorithm has cacheable
    per-component verdicts. *)

val solve_exn :
  ?jobs:int ->
  ?budget:Engine.Budget.t ->
  ?use_delta:bool ->
  ?use_native:bool ->
  ?use_steal:bool ->
  ?sum_args_nonnegative:bool ->
  ?comp_hooks:Dcsat.comp_hooks ->
  Session.t ->
  Bcquery.Query.t ->
  Dcsat.outcome * strategy

val check : Bcdb.t -> Bcquery.Query.t -> (bool, string) result
(** Convenience: does [D |= ¬q]? Builds a throwaway session. *)
