(** A plain-text format for blockchain databases, so that instances can be
    saved, versioned and fed to the CLI. Example:

    {v
    # comments run to the end of the line
    relation TxOut(txId, ser, pk, amount)
    relation TxIn(prevTxId, prevSer, pk, amount, newTxId, sig)
    key TxOut(txId, ser)
    key TxIn(prevTxId, prevSer)
    fd TxOut(txId -> pk)                      # plain fd
    ind TxIn(prevTxId) <= TxOut(txId)

    state TxOut("1", 1, "U1Pk", 1.0)
    state TxIn("1", 1, "U1Pk", 1.0, "3", "U1Sig")

    tx T1
      TxIn("2", 2, "U2Pk", 4.0, "4", "U2Sig")
      TxOut("4", 1, "U5Pk", 1.0)

    tx
      TxOut("8", 1, "U7Pk", 4.0)
    v}

    Declarations may appear in any order except that relations must be
    declared before use and transaction rows follow their [tx] header.
    Values are integers, floats (with a decimal point), double-quoted
    strings, [true], [false] or [null]. *)

val of_string : string -> (Bcdb.t, string) result
(** Parse and validate (including [R |= I]); errors carry a line
    number. *)

val to_string : Bcdb.t -> string
(** Render in the same format; [of_string (to_string db)] reconstructs an
    equivalent database. *)

val load : string -> (Bcdb.t, string) result
(** Read from a file path. *)

val save : string -> Bcdb.t -> (unit, string) result

(** {2 Binary snapshots}

    A versioned, magic-tagged binary format (["BCDBSNP1"], version 1):
    header, catalog, constraints, then per relation the column blobs of
    a {!Relational.Segment.t} (dictionaries + unboxed payloads), then
    pending transactions, then an end marker. The state is written
    columnar, so a restore rebuilds the segments directly — no row
    parsing, no re-indexing — and a service restart is a load, not a
    rebuild. *)

val to_binary_string : Bcdb.t -> string

val of_binary_string : ?validate:bool -> string -> (Bcdb.t, string) result
(** Structural integrity (magic, version, bounds, arities, constraint
    attribute ranges) is always checked; the semantic [R |= I]
    validation — a full pass over the state — runs only with
    [~validate:true], since snapshots are normally written by this
    process from an already validated database. *)

val load_binary : ?validate:bool -> string -> (Bcdb.t, string) result
val save_binary : string -> Bcdb.t -> (unit, string) result

val parse_row :
  Relational.Schema.t -> string -> (string * Relational.Tuple.t, string) result
(** Parse a single ["Name(v1, v2, ...)"] row against a catalog — the
    building block interactive tools use to accept tuples. *)
