(** Denial constraint satisfaction (Sections 5–6): decide whether
    [D |= ¬q], i.e. whether the denial constraint's underlying query is
    false over {e every} possible world.

    Three solvers:

    - {!brute_force} — exact for {e any} query class, by exhaustive
      possible-world enumeration (exponential; small pending sets only).
      The reference implementation the practical algorithms are tested
      against.
    - {!naive} — [NaiveDCSat] (Fig. 4): sound and complete for
      {e monotone} denial constraints; iterates over the maximal cliques
      of the fd-transaction graph and evaluates [q] over the maximal
      world of each.
    - {!opt} — [OptDCSat] (Fig. 5): additionally requires the query to be
      {e connected}; splits the pending set into connected components of
      the ind-q-transaction graph, skips components that cannot cover the
      query's constants, and runs the clique enumeration per component.

    Both practical solvers apply the paper's pre-check first: if [q] is
    already false over [R ∪ T] (all transactions visible), monotonicity
    makes it false over every possible world, and the constraint is
    satisfied without any enumeration.

    All solvers run on the {!Engine}: candidate worlds stream from a
    pull-based work source and are evaluated by a backend selected with
    [?jobs]. The default [jobs:1] is the sequential backend —
    bit-for-bit the historical behaviour; [jobs:n] with [n > 1] fans the
    per-world work out over [n] OCaml domains, each on a private store
    replica, with identical results and work counts (see the engine's
    determinism contract). Every solver restores the session store's
    active world on exit, whatever the outcome.

    Every solver accepts an {!Engine.Budget.t}: when the budget trips
    before the enumeration completes — and no violation was found first —
    the outcome's {!type-verdict} is [Unknown] rather than a claim either
    way. A violation found before exhaustion is always reported as
    [Violated]: a counterexample from an incomplete enumeration is still
    sound. Budgets are single-run; create a fresh one per solve. *)

type stats = {
  worlds_checked : int;  (** Maximal worlds materialized and evaluated. *)
  cliques_enumerated : int;
  components_total : int;  (** OptDCSat only. *)
  components_covered : int;  (** Components passing the Covers test. *)
  precheck_decided : bool;  (** Answer came from the [R ∪ T] pre-check. *)
  runtime : float;  (** Wall-clock seconds. *)
}

type verdict =
  | Satisfied  (** Every possible world was covered; [D |= ¬q]. *)
  | Violated of {
      world : int list;  (** Transactions of a violating possible world. *)
      witness : (string * Relational.Value.t) list option;
          (** A satisfying assignment over that world (Boolean queries). *)
    }
  | Unknown of Engine.Budget.reason
      (** The budget tripped before the enumeration completed and no
          violation had been found: the unexplored suffix could hide
          one, so neither [Satisfied] nor [Violated] would be sound. *)

type outcome = {
  satisfied : bool;
      (** [D |= ¬q] is {e known} to hold: [verdict = Satisfied]. False
          for both [Violated] and [Unknown] — consult [verdict] to tell
          a refuted constraint from an exhausted budget. *)
  witness_world : int list option;
      (** Transactions of a violating possible world, when unsatisfied. *)
  witness : (string * Relational.Value.t) list option;
      (** A satisfying assignment over that world (Boolean queries). *)
  verdict : verdict;
  stats : stats;
}

type refusal =
  [ `Not_monotone of string
    (** The solver requires a monotone denial constraint. *)
  | `Not_connected
    (** OptDCSat requires a connected conjunctive query. *) ]

type event =
  | Precheck_decided  (** q false over [R ∪ T]: satisfied immediately. *)
  | Components_found of int  (** OptDCSat: component count. *)
  | Component_skipped of int list  (** Failed the Covers test. *)
  | Component_entered of int list
  | Clique_found of int list
  | World_evaluated of int list * bool  (** Included txs, q's value. *)
(** Trace events, in execution order; pass [on_event] to {!naive}/{!opt}
    to observe the solver's decisions (see {!Explain}). *)

type comp_verdict =
  | Comp_satisfied
      (** Fully enumerated with no violation, or failed the Covers
          test: no world of this component can violate [q]. *)
  | Comp_violated of {
      world : int list;
      witness : (string * Relational.Value.t) list option;
    }
      (** The component's first violating maximal world in serial
          enumeration order, with its witness. *)
  | Comp_unknown of Engine.Budget.reason
      (** The budget cut this component's enumeration short. *)

type comp_hooks = {
  comp_clean : index:int -> int list -> comp_verdict option;
      (** [comp_clean ~index members] — [Some v] when the caller {e
          knows} this component's verdict is [v] with unchanged content
          (a verdict-cache hit): the component is skipped wholesale and
          [v] stands in for a fresh solve. The claim must be sound — a
          component's verdict depends only on its members' rows, the
          confirmed state and the query (Proposition 2), so an unchanged
          content signature suffices for [Comp_satisfied]; replaying a
          [Comp_violated] additionally requires that the {e database}
          has not changed at all since the verdict was solved — its
          world and witness name transaction ids, and the witness is
          canonical only relative to the whole database (plan choice
          and row order are global, so even a mutation outside the
          component can shift it). [None] marks the component dirty:
          it is re-solved. *)
  comp_suspect : index:int -> int list -> bool;
      (** [true] schedules the component first (the last-violating
          component is the likeliest to still violate). A heuristic:
          answers may be wrong without affecting correctness. *)
  comp_solved : index:int -> int list -> comp_verdict -> unit;
      (** Fired once per freshly solved dirty component — in ascending
          component index, after the enumeration ends — so the caller
          can (re)fill its cache. Skipped components (clean hits, or
          left unsolved after a budget trip) get no callback. *)
}
(** The per-component verdict-cache protocol of {!opt}'s scheduled path
    (the live layer's warm-check fast path). See [?comp_hooks] in
    {!opt}. *)

val pp_refusal : Format.formatter -> refusal -> unit

val verdict_name : verdict -> string
(** ["SATISFIED"], ["UNSATISFIED"], or ["UNKNOWN (budget exhausted: …)"]. *)

val brute_force :
  ?jobs:int ->
  ?budget:Engine.Budget.t ->
  ?use_delta:bool ->
  ?use_native:bool ->
  Session.t ->
  Bcquery.Query.t ->
  outcome
(** Raises [Invalid_argument] beyond 24 pending transactions. *)

val naive :
  ?jobs:int ->
  ?budget:Engine.Budget.t ->
  ?use_precheck:bool ->
  ?use_delta:bool ->
  ?use_native:bool ->
  ?use_steal:bool ->
  ?on_event:(event -> unit) ->
  Session.t ->
  Bcquery.Query.t ->
  (outcome, refusal) result
(** [use_precheck] (default true) disables the [R ∪ T] pre-check for
    ablation measurements. [use_delta] (default true) turns off the
    incremental evaluation layer ({!Inc_eval}: per-store world caches,
    replay, delta-seeded search) — every world then pays a full
    backtracking join; answers and witnesses are identical either way.
    [jobs] (default 1) selects the engine backend; with [jobs > 1],
    [on_event] callbacks are serialized but their order is
    nondeterministic. [budget] (default {!Engine.Budget.unlimited})
    bounds the enumeration; the pre-check is never budgeted (it is a
    single query evaluation).

    [use_native] (default true) turns off the closure-compiled
    evaluation tier ({!Bcquery.Eval.compile_native} via {!Inc_eval}) —
    full evaluations then run the interpreted backtracking join;
    answers, witnesses and counts are identical either way.

    [use_steal] selects the work-stealing clique backend
    ({!Engine.run_cliques_steal}): the enumeration itself is spread over
    the workers instead of running behind the claim lock. Defaults to
    the [BCDB_BK_STEAL] environment variable ([0] never, [1] always) or,
    unset, to automatic (steal only when [jobs > 1] and the node set is
    large). Verdicts, witnesses and — on violated or fully enumerated
    runs — work counts are identical either way; only budget-tripped
    counts may differ, as with the claim-lock parallel backend. *)

val opt :
  ?jobs:int ->
  ?budget:Engine.Budget.t ->
  ?use_precheck:bool ->
  ?use_covers:bool ->
  ?use_delta:bool ->
  ?use_native:bool ->
  ?use_steal:bool ->
  ?on_event:(event -> unit) ->
  ?comp_hooks:comp_hooks ->
  Session.t ->
  Bcquery.Query.t ->
  (outcome, refusal) result
(** [use_covers] (default true) disables the constant-coverage component
    filter for ablation measurements. [jobs], [budget], [use_delta],
    [use_native] and [use_steal] as in {!naive}; with stealing enabled, big components
    each get a dedicated work-stealing run while runs of consecutive
    small components stay batched through one chained claim-lock source,
    all under cumulative budget accounting.

    [comp_hooks] switches component processing to the {e scheduled}
    path: components reported clean by [comp_clean] are skipped (their
    cached verdict being [Satisfied]), and the dirty remainder is solved
    {e exhaustively} — no cross-component early exit, so every dirty
    component's verdict reaches [comp_solved] and the caller's cache —
    ordered suspects-first then largest-first. Small dirty components
    become the work items of one drained claim-lock engine run
    (cross-component parallelism); big ones each get a dedicated
    work-stealing run. The lowest-component-index violation wins, which
    reproduces the serial early-exit verdict and witness bit for bit
    (clean components cannot violate, each component's internal winner
    is the serial-order first). Caveats under [comp_hooks]: reported
    stats count only the work actually done (clean components are never
    re-counted); budgets are enforced at clique granularity inside each
    component with up to one in-flight world per worker of overshoot,
    and budget-tripped runs may do more work than the serial order
    (concurrent components finish); [on_event] callbacks remain
    serialized but unordered across components. *)

val pp_outcome : Format.formatter -> outcome -> unit
