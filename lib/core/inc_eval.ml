module Q = Bcquery
module R = Relational
module Bitset = Bcgraph.Bitset

(* Incremental (delta-seeded) query evaluation across worlds.

   The solver evaluates one constraint over thousands of possible
   worlds that differ by a handful of transactions — consecutive
   Bron–Kerbosch cliques share large prefixes, and repeated solves of
   one constraint on an unchanged session revisit the very same worlds.
   A {!plan} compiles the constraint body once; an evaluator then keeps,
   per (store, plan), a small LRU of recently evaluated worlds (their
   bitset, verdict, canonical witness and — for aggregates — the
   accumulator). Evaluating the current world first looks for a cached
   world at transaction-level distance zero (pure replay), then seeds a
   semi-naive delta search ({!Bcquery.Eval.run_delta}) from the nearest
   cached world instead of re-running the full join.

   Soundness of the delta path rests on monotonicity: for a
   negation-free body, a world's match set grows with its visible
   tuples, so relative to a cached {e no-match} world every match of the
   current world must use a tuple visible now but not then — exactly the
   Δ-set {!Tagged_store.world_delta} materializes. Removed transactions
   need no handling on the boolean path (current ⊆ cached ∪ Δ); the
   aggregate path additionally requires an insert-only delta so the
   cached accumulator stays a correct partial sum. Everything else —
   negated atoms, Cntd, a cached world that already matched, a delta too
   large to be cheaper than a fresh search — falls back to full
   evaluation, so the fast path is an optimization, never a semantic
   fork. *)

type plan = {
  query : Q.Query.t;
  body : Q.Eval.compiled;
  native : Q.Eval.native option;
      (* closure-compiled second stage; None outside the tier *)
  monotone_body : bool;  (* no negated atoms: match set grows with tuples *)
  agg : Q.Query.aggregate option;
  incremental_agg : bool;  (* accumulator-maintainable aggregate kind *)
}

let plan query =
  let body = Q.Eval.compile (Q.Eval.body_of query) in
  let agg =
    match query with
    | Q.Query.Boolean _ -> None
    | Q.Query.Aggregate a -> Some a
  in
  {
    query;
    body;
    native = Q.Eval.compile_native body;
    monotone_body = not (Q.Eval.has_negation body);
    agg;
    incremental_agg =
      (match agg with
      | None -> false
      | Some a -> (
          match a.Q.Query.agg with
          | Q.Query.Count | Q.Query.Sum | Q.Query.Max | Q.Query.Min -> true
          (* Cntd needs the distinct-value set, not a scalar accumulator. *)
          | Q.Query.Cntd -> false));
  }

let query p = p.query
let body p = p.body

(* --- aggregate accumulators --- *)

type acc = { n : int; sum : R.Value.t; extreme : R.Value.t option }

let acc_empty = { n = 0; sum = R.Value.zero; extreme = None }

let acc_add p (a : Q.Query.aggregate) acc values =
  let projected () = (Q.Eval.project_compiled p.body a.Q.Query.agg_args values).(0) in
  match a.Q.Query.agg with
  | Q.Query.Count -> { acc with n = acc.n + 1 }
  | Q.Query.Sum -> { acc with n = acc.n + 1; sum = R.Value.add acc.sum (projected ()) }
  | Q.Query.Max | Q.Query.Min ->
      let combine =
        match a.Q.Query.agg with
        | Q.Query.Max -> R.Value.max_v
        | _ -> R.Value.min_v
      in
      let v = projected () in
      {
        acc with
        n = acc.n + 1;
        extreme = Some (match acc.extreme with None -> v | Some w -> combine v w);
      }
  | Q.Query.Cntd -> assert false

let acc_value (a : Q.Query.aggregate) acc =
  if acc.n = 0 then None (* empty bag *)
  else
    match a.Q.Query.agg with
    | Q.Query.Count -> Some (R.Value.Int acc.n)
    | Q.Query.Sum -> Some acc.sum
    | Q.Query.Max | Q.Query.Min -> acc.extreme
    | Q.Query.Cntd -> assert false

let acc_matched (a : Q.Query.aggregate) acc =
  match acc_value a acc with
  | None -> false
  | Some v -> Q.Eval.theta_holds a.Q.Query.theta v a.Q.Query.threshold

(* Inserts can only move these aggregates toward their threshold, so the
   delta accumulation may stop as soon as θ holds — the verdict is final
   for this world even though the accumulator is not. *)
let theta_early_exit (a : Q.Query.aggregate) =
  match (a.Q.Query.agg, a.Q.Query.theta) with
  | Q.Query.Count, Q.Query.Gt
  | Q.Query.Max, Q.Query.Gt
  | Q.Query.Min, Q.Query.Lt ->
      true
  | _ -> false

(* --- per-(store, plan) cached worlds --- *)

type entry = {
  world : Bitset.t;  (* private copy of the evaluated world *)
  matched : bool;
  witness : (string * R.Value.t) list option;  (* canonical, boolean only *)
  acc : acc option;  (* complete aggregate accumulator *)
}

type state = {
  mutable for_db : Bcdb.t;  (* entries valid only against this database *)
  mutable for_state_gen : int;
      (* generation stamp of [for_db]'s state R when the entries were
         cached; catches in-place mutation of R behind an unchanged
         physical database value (the [serve] access pattern). *)
  mutable entries : entry list;  (* most recently used first, capped *)
  mutable worlds : (Bitset.t * Bitset.t) list;
      (* clique members -> its maximal world, both private copies; the
         closure is world-independent, so memoized results replay across
         solves (most recently used first, capped). *)
}

let max_entries = 4
let max_worlds = 16

(* States live in a global weak-keyed registry so they persist exactly
   as long as the store does: session stores and pooled replicas keep
   their history across solver runs; component-scoped views drop theirs
   with the view. One store is only ever evaluated on by one domain at a
   time (the engine's no-shared-store contract), so states need no lock
   of their own — only the registry itself is guarded. *)
module Registry = Ephemeron.K1.Make (struct
  type t = Tagged_store.t

  let equal = ( == )
  let hash = Tagged_store.uid
end)

let registry : (plan * state) list ref Registry.t = Registry.create 64
let registry_lock = Mutex.create ()

let state_for store plan =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) @@ fun () ->
  let states =
    match Registry.find_opt registry store with
    | Some l -> l
    | None ->
        let l = ref [] in
        Registry.replace registry store l;
        l
  in
  match List.find_opt (fun (p, _) -> p == plan) !states with
  | Some (_, st) -> st
  | None ->
      let st =
        {
          for_db = Tagged_store.db store;
          for_state_gen = Tagged_store.state_generation store;
          entries = [];
          worlds = [];
        }
      in
      states := (plan, st) :: !states;
      st

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let remember st e =
  let rest =
    List.filter (fun e' -> not (Bitset.equal e'.world e.world)) st.entries
  in
  st.entries <- e :: take (max_entries - 1) rest

(* --- the evaluator --- *)

type t = {
  plan : plan;
  use_delta : bool;
  use_native : bool;
  obs : Obs.t;
  mutable cached : (Tagged_store.t * state) option;  (* last store seen *)
}

let evaluator ?(use_delta = true) ?(use_native = true) ?(obs = Obs.null) plan =
  { plan; use_delta; use_native; obs; cached = None }

(* The evaluator's state for [store], with a one-slot physical-identity
   fast path (workers see one store for a whole engine run). A dry-run
   append/undo replaces the store's database value; cached worlds (and
   their bitset capacities) are then meaningless and are dropped. *)
let state_of t store =
  let st =
    match t.cached with
    | Some (s, st) when s == store -> st
    | _ ->
        let st = state_for store t.plan in
        t.cached <- Some (store, st);
        st
  in
  let gen = Tagged_store.state_generation store in
  if st.for_db != Tagged_store.db store || st.for_state_gen <> gen then begin
    st.for_db <- Tagged_store.db store;
    st.for_state_gen <- gen;
    st.entries <- [];
    st.worlds <- []
  end;
  st

let count_full t = if Obs.enabled t.obs then Obs.add t.obs "eval.full" 1

let count_delta t tuples =
  if Obs.enabled t.obs then begin
    Obs.add t.obs "eval.delta" 1;
    if tuples > 0 then Obs.add t.obs "eval.delta_tuples" tuples
  end

let count_native t = if Obs.enabled t.obs then Obs.add t.obs "eval.compiled_native" 1

(* The closure-compiled plan when this evaluator may use it. *)
let native_of t = if t.use_native then t.plan.native else None

let full_entry t store =
  count_full t;
  let p = t.plan in
  let src = Tagged_store.source store in
  let world = Tagged_store.world store in
  match p.agg with
  | None -> (
      match native_of t with
      | Some nat ->
          (* Decide with the fused closure chain; only a violated world
             (at most one per engine run) pays the interpreted search
             again, to re-derive the canonical witness. *)
          count_native t;
          if Q.Eval.native_exists nat src then
            let witness = Q.Eval.find_witness_compiled src p.body in
            { world; matched = true; witness; acc = None }
          else { world; matched = false; witness = None; acc = None }
      | None ->
          let witness = Q.Eval.find_witness_compiled src p.body in
          { world; matched = witness <> None; witness; acc = None })
  | Some a ->
      if p.incremental_agg then begin
        let acc = ref acc_empty in
        (match native_of t with
        | Some nat ->
            (* Count/Sum/Max/Min are commutative: the native plan's
               match order does not matter. (Cntd compiles natively too
               but keeps the interpreted path — its dedup table
               dominates, see [incremental_agg].) *)
            count_native t;
            Q.Eval.native_iter nat src (fun values ->
                acc := acc_add p a !acc values)
        | None ->
            Q.Eval.iter_matches_compiled src p.body (fun values _ ->
                acc := acc_add p a !acc values;
                `Continue));
        { world; matched = acc_matched a !acc; witness = None; acc = Some !acc }
      end
      else
        {
          world;
          matched = Q.Eval.eval_compiled src p.query p.body;
          witness = None;
          acc = None;
        }

(* Number of Δ-tuples the seeded search will consider: one count per
   {e distinct} relation among the positive atoms (an atom pair on one
   relation reuses the same Δ-list). *)
let delta_tuple_count p delta_fn =
  let rels = List.sort_uniq String.compare (Q.Eval.positive_relations p.body) in
  List.fold_left (fun n rel -> n + List.length (delta_fn rel)) 0 rels

(* Delta evaluation is worth attempting when the transaction-level
   frontier is small next to the world: the seeded search costs
   O(|Δ-tuples| × join), a full search with early exit is often cheap,
   and e.g. the hop from a small enumerated world back to the
   pre-check's full-visibility world is better evaluated afresh. *)
let worthwhile added_txs k = added_txs * 4 <= max 4 k

let delta_boolean t store (e : entry) (d : Tagged_store.world_delta) =
  let p = t.plan in
  let src = Tagged_store.source store in
  let delta_fn = Lazy.force d.Tagged_store.added in
  count_delta t (delta_tuple_count p delta_fn);
  let found = ref false in
  Q.Eval.run_delta src p.body ~delta:delta_fn (fun _ _ ->
      found := true;
      `Stop);
  ignore e;
  let world = Tagged_store.world store in
  if not !found then { world; matched = false; witness = None; acc = None }
  else
    (* Re-derive the witness with the full (deterministically ordered)
       search, so delta and from-scratch evaluation return the identical
       canonical assignment. This runs at most once per solve — the
       engine stops at the first violation. *)
    let witness = Q.Eval.find_witness_compiled src p.body in
    { world; matched = true; witness; acc = None }

let delta_aggregate t store a (acc0 : acc) (d : Tagged_store.world_delta) =
  let p = t.plan in
  let src = Tagged_store.source store in
  let delta_fn = Lazy.force d.Tagged_store.added in
  count_delta t (delta_tuple_count p delta_fn);
  (* [run_delta] reports an assignment once per positive atom it maps to
     a Δ-tuple: deduplicate within the batch on the full variable
     assignment (the values array is a fresh tuple per match). Across
     batches no dedup is needed — a match using a Δ-tuple cannot have
     existed in the cached world. *)
  let seen = R.Tuple.Tbl.create 32 in
  let acc = ref acc0 in
  let early = theta_early_exit a in
  let complete = ref true in
  Q.Eval.run_delta src p.body ~delta:delta_fn (fun values _ ->
      if R.Tuple.Tbl.mem seen values then `Continue
      else begin
        R.Tuple.Tbl.replace seen values ();
        acc := acc_add p a !acc values;
        if early && acc_matched a !acc then begin
          (* θ holds and inserts can only push further past it: the
             verdict is final, the (now partial) accumulator is not. *)
          complete := false;
          `Stop
        end
        else `Continue
      end);
  let world = Tagged_store.world store in
  if !complete then
    { world; matched = acc_matched a !acc; witness = None; acc = Some !acc }
  else { world; matched = true; witness = None; acc = None }

(* Evaluate the plan over the store's {e current} world, consulting and
   updating the per-(store, plan) world cache. *)
let eval_current t store =
  if not t.use_delta then full_entry t store
  else begin
    let st = state_of t store in
    let p = t.plan in
    let deltas =
      List.map (fun e -> (e, Tagged_store.world_delta store ~prev:e.world)) st.entries
    in
    let replay =
      List.find_opt
        (fun ((_, d) : entry * Tagged_store.world_delta) ->
          d.Tagged_store.added_txs = 0 && d.Tagged_store.removed_txs = 0)
        deltas
    in
    let entry =
      match replay with
      | Some (e, _) ->
          count_delta t 0;
          e
      | None -> (
          let applicable ((e, d) : entry * Tagged_store.world_delta) =
            p.monotone_body
            &&
            match p.agg with
            | None ->
                (* Boolean: sound relative to a no-match world even with
                   removals (current ⊆ cached ∪ Δ). *)
                not e.matched
            | Some _ ->
                (* Aggregate: the cached accumulator stays a correct
                   partial result only under an insert-only delta. *)
                p.incremental_agg && e.acc <> None
                && d.Tagged_store.removed_txs = 0
          in
          let best =
            List.fold_left
              (fun best cand ->
                if not (applicable cand) then best
                else
                  match best with
                  | Some ((_, bd) : entry * Tagged_store.world_delta)
                    when bd.Tagged_store.added_txs
                         <= (snd cand).Tagged_store.added_txs ->
                      best
                  | _ -> Some cand)
              None deltas
          in
          match best with
          | Some (e, d)
            when worthwhile d.Tagged_store.added_txs (Tagged_store.tx_count store)
            -> (
              match t.plan.agg with
              | None -> delta_boolean t store e d
              | Some a -> (
                  match e.acc with
                  | Some acc0 -> delta_aggregate t store a acc0 d
                  | None -> assert false (* [applicable] checked it *)))
          | _ -> full_entry t store)
    in
    remember st entry;
    entry
  end

let eval_bool t store =
  let e = eval_current t store in
  e.matched

(* Maximal-world closure ({!Get_maximal}) memoized per (store, plan):
   the closure extends a clique starting from the empty world, so its
   result depends only on the members and the database — never on the
   store's current world — and repeated solves revisit the same cliques.
   Both sides are kept and returned as private copies. *)
let maximal_world t store members =
  if not t.use_delta then Get_maximal.run_list store members
  else begin
    let st = state_of t store in
    let key = Bitset.of_list (Tagged_store.tx_count store) members in
    match List.find_opt (fun (k, _) -> Bitset.equal k key) st.worlds with
    | Some (_, w) -> Bitset.copy w
    | None ->
        let w = Get_maximal.run_list store members in
        st.worlds <- (key, Bitset.copy w) :: take (max_worlds - 1) st.worlds;
        w
  end

let eval_world t store txs =
  Tagged_store.set_world_list store txs;
  let e = eval_current t store in
  let violation =
    if e.matched then Some { Engine.world = txs; witness = e.witness } else None
  in
  { Engine.world = txs; violation }
