module R = Relational
module Q = Bcquery
module Bitset = Bcgraph.Bitset

type case =
  | Fd_conjunctive
  | Ind_conjunctive
  | Fd_aggregate
  | Ind_monotone_aggregate

let case_name = function
  | Fd_conjunctive -> "fd-conjunctive"
  | Ind_conjunctive -> "ind-conjunctive"
  | Fd_aggregate -> "fd-aggregate (minimal support worlds)"
  | Ind_monotone_aggregate -> "ind-monotone-aggregate (unique maximal world)"

let applicable ?(sum_args_nonnegative = true) db q =
  let profile = Bcdb.constraint_profile db in
  let has_ind = List.mem `Ind profile in
  let has_fd = List.mem `Fd profile || List.mem `Key profile in
  let fd_only = not has_ind in
  let ind_only = not has_fd in
  match q with
  | Q.Query.Boolean _ ->
      if fd_only then Some Fd_conjunctive
      else if ind_only then Some Ind_conjunctive
      else None
  | Q.Query.Aggregate a ->
      if not (Q.Cq.is_positive a.Q.Query.body) then None
      else if fd_only then begin
        match (a.Q.Query.agg, a.Q.Query.theta) with
        | (Q.Query.Count | Q.Query.Cntd), Q.Query.Lt -> Some Fd_aggregate
        | Q.Query.Sum, Q.Query.Lt ->
            if sum_args_nonnegative then Some Fd_aggregate else None
        | (Q.Query.Max | Q.Query.Min), _ -> Some Fd_aggregate
        | (Q.Query.Count | Q.Query.Cntd | Q.Query.Sum), (Q.Query.Gt | Q.Query.Eq)
          ->
            None
      end
      else if ind_only then begin
        match (a.Q.Query.agg, a.Q.Query.theta) with
        | (Q.Query.Count | Q.Query.Cntd | Q.Query.Max), Q.Query.Gt ->
            Some Ind_monotone_aggregate
        | Q.Query.Sum, Q.Query.Gt ->
            if sum_args_nonnegative then Some Ind_monotone_aggregate else None
        | Q.Query.Min, Q.Query.Lt -> Some Ind_monotone_aggregate
        | _, (Q.Query.Lt | Q.Query.Gt | Q.Query.Eq) -> None
      end
      else None

(* ------------------------------------------------------------------ *)

type run = {
  session : Session.t;
  mutable worlds : int;
  t0 : float;
}

let outcome run satisfied witness_world witness : Dcsat.outcome =
  (* Tractable solvers always decide: the verdict is never [Unknown]. *)
  let verdict =
    if satisfied then Dcsat.Satisfied
    else
      Dcsat.Violated
        { world = Option.value witness_world ~default:[]; witness }
  in
  {
    Dcsat.satisfied;
    witness_world;
    witness;
    verdict;
    stats =
      {
        Dcsat.worlds_checked = run.worlds;
        cliques_enumerated = 0;
        components_total = 0;
        components_covered = 0;
        precheck_decided = false;
        runtime = Monotime.elapsed ~since:run.t0;
      };
  }

(* The body with negated atoms dropped: candidate assignments must be
   enumerated without filtering on negation against R ∪ T, since a
   negated tuple present in some *excluded* transaction is fine. *)
let positive_part (body : Q.Cq.t) =
  if body.Q.Cq.negated = [] then body
  else
    Q.Cq.make_exn ~positive:body.Q.Cq.positive
      ~comparisons:body.Q.Cq.comparisons ()

let var_index (body : Q.Cq.t) =
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace tbl v i) body.Q.Cq.vars;
  tbl

let ground_atom vindex values (a : Q.Atom.t) =
  Array.map
    (function
      | Q.Term.Var v -> values.(Hashtbl.find vindex v)
      | Q.Term.Const c -> c)
    a.Q.Atom.args

(* All minimal transaction-set choices able to supply the assignment's
   support tuples: base-state tuples need no transaction; a pending-only
   tuple needs one of its providing transactions. Returns the product of
   the choices, as sorted dedup'd id lists. *)
let support_choices store support =
  let tuple_options =
    List.filter_map
      (fun (rel, tuple) ->
        let origins = Tagged_store.origins store rel tuple in
        if List.mem (-1) origins then None else Some origins)
      support
  in
  let rec product = function
    | [] -> [ [] ]
    | options :: rest ->
        let tails = product rest in
        List.concat_map (fun o -> List.map (fun tl -> o :: tl) tails) options
  in
  product tuple_options |> List.map (List.sort_uniq Int.compare)
  |> List.sort_uniq compare

let fd_consistent_set session members =
  let fd = Session.fd_graph session in
  let rec pairs = function
    | [] -> true
    | i :: rest ->
        fd.Fd_graph.node_ok.(i)
        && List.for_all
             (fun j -> Bcgraph.Undirected.connected fd.Fd_graph.graph i j)
             rest
        && pairs rest
  in
  pairs members

(* h's negated tuples must be absent from R ∪ S. *)
let negation_avoided store vindex values negated members =
  List.for_all
    (fun atom ->
      let tuple = ground_atom vindex values atom in
      let origins = Tagged_store.origins store atom.Q.Atom.rel tuple in
      (not (List.mem (-1) origins))
      && not (List.exists (fun o -> List.mem o members) origins))
    negated

let solve_fd_conjunctive run body =
  let store = Session.store run.session in
  let vindex = var_index body in
  let qpos = positive_part body in
  Tagged_store.all_visible store;
  let src = Tagged_store.source store in
  let found = ref None in
  Q.Eval.iter_matches src qpos (fun values support ->
      let candidates = support_choices store support in
      let viable members =
        fd_consistent_set run.session members
        && negation_avoided store vindex values body.Q.Cq.negated members
      in
      match List.find_opt viable candidates with
      | Some members ->
          run.worlds <- run.worlds + 1;
          found :=
            Some
              ( members,
                List.combine body.Q.Cq.vars (Array.to_list values) );
          `Stop
      | None -> `Continue);
  match !found with
  | Some (members, assignment) ->
      outcome run false (Some members) (Some assignment)
  | None -> outcome run true None None

let global_maximal run =
  let store = Session.store run.session in
  let k = Tagged_store.tx_count store in
  Get_maximal.run store (Bitset.full k)

let solve_ind_conjunctive run body =
  let store = Session.store run.session in
  if body.Q.Cq.negated = [] then begin
    let world = global_maximal run in
    run.worlds <- run.worlds + 1;
    Tagged_store.set_world store world;
    match Q.Eval.find_witness (Tagged_store.source store) body with
    | Some assignment ->
        outcome run false (Some (Bitset.to_list world)) (Some assignment)
    | None -> outcome run true None None
  end
  else begin
    let vindex = var_index body in
    let qpos = positive_part body in
    let k = Tagged_store.tx_count store in
    (* Memoize the maximal allowed world per excluded-transaction set. *)
    let memo = Hashtbl.create 16 in
    let maximal_avoiding excluded =
      match Hashtbl.find_opt memo excluded with
      | Some w -> w
      | None ->
          let allowed = Bitset.full k in
          List.iter (Bitset.remove allowed) excluded;
          let w = Get_maximal.run store allowed in
          run.worlds <- run.worlds + 1;
          Hashtbl.replace memo excluded w;
          w
    in
    let found = ref None in
    Tagged_store.all_visible store;
    let src = Tagged_store.source store in
    Q.Eval.iter_matches src qpos (fun values support ->
        Tagged_store.all_visible store;
        let negated_ground =
          List.map
            (fun a -> (a.Q.Atom.rel, ground_atom vindex values a))
            body.Q.Cq.negated
        in
        let in_base (rel, tuple) =
          List.mem (-1) (Tagged_store.origins store rel tuple)
        in
        if List.exists in_base negated_ground then `Continue
        else begin
          let excluded =
            List.concat_map
              (fun (rel, tuple) ->
                List.filter (fun o -> o >= 0) (Tagged_store.origins store rel tuple))
              negated_ground
            |> List.sort_uniq Int.compare
          in
          let world = maximal_avoiding excluded in
          let supported (rel, tuple) =
            let origins = Tagged_store.origins store rel tuple in
            List.mem (-1) origins
            || List.exists (fun o -> o >= 0 && Bitset.mem world o) origins
          in
          if List.for_all supported support then begin
            found :=
              Some
                ( Bitset.to_list world,
                  List.combine body.Q.Cq.vars (Array.to_list values) );
            `Stop
          end
          else begin
            Tagged_store.all_visible store;
            `Continue
          end
        end);
    match !found with
    | Some (world, assignment) ->
        outcome run false (Some world) (Some assignment)
    | None -> outcome run true None None
  end

let theta_holds theta value threshold =
  match theta with
  | Q.Query.Lt -> R.Value.lt value threshold
  | Q.Query.Gt -> R.Value.lt threshold value
  | Q.Query.Eq -> R.Value.equal value threshold

let solve_fd_aggregate run (a : Q.Query.aggregate) =
  let store = Session.store run.session in
  let body = a.Q.Query.body in
  let tested = Hashtbl.create 64 in
  let found = ref None in
  Tagged_store.all_visible store;
  let src = Tagged_store.source store in
  Q.Eval.iter_matches src body (fun _values support ->
      let candidates = support_choices store support in
      let test members =
        if Hashtbl.mem tested members then false
        else begin
          Hashtbl.replace tested members ();
          fd_consistent_set run.session members
          && begin
            run.worlds <- run.worlds + 1;
            Tagged_store.set_world_list store members;
            let world_src = Tagged_store.source store in
            let result =
              match Q.Eval.aggregate_value world_src a with
              | None -> false
              | Some v -> theta_holds a.Q.Query.theta v a.Q.Query.threshold
            in
            Tagged_store.all_visible store;
            result
          end
        end
      in
      match List.find_opt test candidates with
      | Some members ->
          found := Some members;
          `Stop
      | None -> `Continue);
  match !found with
  | Some members -> outcome run false (Some members) None
  | None -> outcome run true None None

let solve_ind_monotone_aggregate run q =
  let store = Session.store run.session in
  let world = global_maximal run in
  run.worlds <- run.worlds + 1;
  Tagged_store.set_world store world;
  if Q.Eval.eval (Tagged_store.source store) q then
    outcome run false (Some (Bitset.to_list world)) None
  else outcome run true None None

(* The live layer's dispatch guard: a tractable-decided query never
   reaches the component machinery, so seeding ind-q components (or
   probing a per-component verdict cache) for it would be pure waste. *)
let decides ?sum_args_nonnegative db q =
  applicable ?sum_args_nonnegative db q <> None

let solve ?sum_args_nonnegative session q =
  match applicable ?sum_args_nonnegative (Session.db session) q with
  | None -> None
  | Some case ->
      let run = { session; worlds = 0; t0 = Monotime.now () } in
      let result =
        match (case, q) with
        | Fd_conjunctive, Q.Query.Boolean body -> solve_fd_conjunctive run body
        | Ind_conjunctive, Q.Query.Boolean body ->
            solve_ind_conjunctive run body
        | Fd_aggregate, Q.Query.Aggregate a -> solve_fd_aggregate run a
        | Ind_monotone_aggregate, Q.Query.Aggregate _ ->
            solve_ind_monotone_aggregate run q
        | (Fd_conjunctive | Ind_conjunctive), Q.Query.Aggregate _
        | (Fd_aggregate | Ind_monotone_aggregate), Q.Query.Boolean _ ->
            assert false
      in
      Some (result, case)
