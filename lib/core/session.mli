(** A solving session over one blockchain database: owns the tagged store
    and lazily caches the structures the paper precomputes in the steady
    state (Section 6.3) — the fd-transaction graph, the ΘI edges of the
    ind-transaction graph, and per-transaction includability
    ([R ∪ {T} |= I]). Multiple denial constraints can then be checked
    against the same session cheaply.

    The store snapshots the state [R] at creation, so every cached
    structure is also guarded by [R]'s {!Relational.Database.generation}
    stamp: if the same database value is mutated in place between two
    solves (the long-running [serve] access pattern), the next accessor
    call rebuilds the store and caches instead of answering from stale
    ones. *)

type t

val create : ?obs:Obs.t -> Bcdb.t -> t
(** [obs] (default {!Obs.null}) is the session's recorder: spans around
    the lazy precomputations, store cache counters, and — via
    {!Solver}/{!Dcsat} — solver phase spans and counters. *)

val db : t -> Bcdb.t
val store : t -> Tagged_store.t

val obs : t -> Obs.t
val set_obs : t -> Obs.t -> unit
(** Swap the recorder mid-session (the bench harness records one
    instrumented run after the timed ones). The store, pooled replicas
    as they are next borrowed, and future solver runs all pick up the
    new recorder; {!replica} sessions share it. *)

val plan : t -> Bcquery.Query.t -> Inc_eval.plan
(** The session's compiled plan for [q], compiling on first use and
    cached for the session's lifetime (physical query equality is the
    fast path, structural equality the fallback). Thread-safe; plans
    are immutable and may be evaluated concurrently. *)

val fd_graph : t -> Fd_graph.t
(** Computed on first use, then cached. *)

val ind_base_edges : t -> (int * int) list
(** The ΘI edges of the ind-transaction graph; computed on first use,
    then cached. *)

val ind_components : t -> Bcquery.Query.t -> int list list
(** Connected components of the ind-q-transaction graph
    [G^{q,ind}_T] for [q] (OptDCSat's partition, Proposition 2),
    computed on first use and cached per query for the session's
    lifetime — the graph depends only on the pending set and the query
    body, never on the store's active world. Entries are invalidated
    when the store's database value changes (dry-run extensions).
    Thread-safe. *)

val seed_components : t -> Bcquery.Query.t -> int list list -> unit
(** Install externally-maintained ind-q components for [q] against the
    current database value, replacing any cached entry for the same
    query. {!Live} maintains components with a union-find merge per
    arriving transaction and seeds them here so {!ind_components} (and
    through it OptDCSat's delta path) answers without a rebuild. The
    caller vouches that the partition is exactly what
    {!ind_components} would compute. Thread-safe. *)

val includable : t -> bool array
(** [includable.(i)] iff [R ∪ {T_i} |= I] — the transaction could be
    appended right now. *)

val warm : t -> unit
(** Force all cached structures (for benchmarking the steady state). *)

val borrow_replica : t -> Tagged_store.t
(** A full replica of the session store, reused from the session's pool
    when a previous engine run has returned one that still matches the
    current database (dry-run extensions invalidate pooled replicas).
    Thread-safe; the parallel engine calls this under its claim lock. *)

val return_replica : t -> Tagged_store.t -> unit
(** Hand a borrowed replica back for reuse. Replicas whose database no
    longer matches the session's are silently dropped. *)

val replica : t -> t
(** A worker-private view of the same database: the store is cloned
    ({!Tagged_store.clone}) so worlds can be switched independently,
    while every cached structure that has already been forced
    (fd-transaction graph, ΘI edges, includability) is shared by value —
    they are immutable once built. Structures not yet forced are rebound
    to the replica's own store. Used by the parallel {!Engine} backend:
    one replica per worker domain. *)

val extended : t -> t
(** A session over the same store after the store has been extended with
    one hypothetical transaction ({!Tagged_store.append_tx}): every
    already-computed structure is updated incrementally (one new graph
    node, its edges found via indexes) instead of rebuilt. Used by
    {!Dry_run} and by {!Live} on transaction arrival; when the extension
    is rolled back, the extended session must not outlive the rollback. *)

val reseed :
  t ->
  ?fd_graph:Fd_graph.t ->
  ?ind_base_edges:(int * int) list ->
  ?includable:bool array ->
  Bcdb.t ->
  t
(** [reseed t db] is a fresh session over [db] that inherits [t]'s
    compiled-plan cache and recorder, with any supplied pre-maintained
    structures installed as already-forced caches instead of being
    rebuilt. This is the {!Live} layer's eviction/confirmation path: it
    maintains the fd graph, ΘI edges and includability incrementally
    itself and only needs the store reloaded — O(pending) when the state
    is all-segment. Structures not supplied are rebuilt lazily. The
    supplied structures must of course describe [db] exactly; nothing is
    checked. *)
