(** Possible worlds (Section 4). A world is identified by the set of
    pending transactions it includes, as a bitset over transaction ids;
    the world's tuple set is [R ∪ ⋃ T_i].

    Recognition ([is_possible_world], Proposition 1) is PTIME via a
    greedy closure: functional dependencies are preserved under subsets
    (so only the final set needs checking) while inclusion dependencies
    are monotone under additions (so greedily appending any transaction
    whose inclusion requirements are already met is order-insensitive and
    complete). *)

val is_possible_world : Tagged_store.t -> Bcgraph.Bitset.t -> bool
(** Whether [R ⇒T,I R ∪ (chosen transactions)]. Leaves the store's
    active world unchanged. *)

val reachable_subset : Tagged_store.t -> Bcgraph.Bitset.t -> Bcgraph.Bitset.t
(** The unique maximal subset of the given transactions reachable under
    the inclusion dependencies, assuming the given set is fd-consistent
    as a whole; used by recognition and by [getMaximal]-style closures. *)

val generator : Tagged_store.t -> unit -> Bcgraph.Bitset.t option
(** A resumable pull-based enumerator over every possible world
    (including the empty world [R]), in the same order as {!enumerate}.
    Each call performs at most one BFS expansion step against the store
    (switching worlds and restoring them), so the solver engine can hand
    worlds out as work items. Exponential in the number of pending
    transactions; raises [Invalid_argument] when more than 24
    transactions are pending. *)

val enumerate : Tagged_store.t -> (Bcgraph.Bitset.t -> [ `Continue | `Stop ]) -> unit
(** Enumerate every possible world exactly once (including the empty
    world [R]). Exponential in the number of pending transactions —
    intended for the brute-force reference solver and for tests; raises
    [Invalid_argument] when more than 24 transactions are pending. *)

val count : Tagged_store.t -> int
(** [|Poss(D)|] by exhaustive enumeration (same bound as {!enumerate}). *)
