(** The fd-transaction graph [G^fd_T] (Section 6.1): one node per pending
    transaction, an edge between every pair of transactions that are
    mutually consistent with respect to the functional dependencies.
    Every possible world is a clique of this graph, so monotone denial
    constraints only need the maximal cliques.

    Beyond the paper's definition, a node is {e valid} only if its
    transaction is fd-consistent with the current state on its own
    ([R ∪ T |= I_fd]); invalid nodes can never join any world and are
    left isolated. Edges are checked against [R ∪ T ∪ T'] for the same
    reason. For schemas with fresh key values (like Bitcoin's) this
    coincides with the paper's [T ∪ T' |= I_fd].

    Construction is near-linear: for each fd, pending rows are bucketed
    by their lhs projection and only same-bucket pairs with differing rhs
    conflict; the graph is the complement of the conflict relation over
    valid nodes. *)

type t = private {
  graph : Bcgraph.Undirected.t;
  node_ok : bool array;  (** [R ∪ T_i |= I_fd]. *)
  conflicts : (int * int) list;  (** Conflicting valid pairs found. *)
}

val build : Tagged_store.t -> t
val conflict_count : t -> int

val node_valid : Tagged_store.t -> int -> bool
(** [R ∪ T_id |= I_fd], checked through the store's indexes with the
    base state alone visible. What {!build} computes for every node at
    once; exposed for the live layer, which re-derives validity per
    surviving transaction after a block confirmation changes [R]. *)

val of_parts : node_ok:bool array -> conflicts:(int * int) list -> t
(** Assemble a graph directly from node validity and the pairwise
    conflict relation: edges connect exactly the valid pairs not listed
    in [conflicts]. Pairs naming an invalid node are dropped from the
    kept list. O(k²) bit operations, no row work — this is how the live
    layer rebuilds after maintaining both ingredients incrementally. *)

val remove : t -> int -> t
(** [remove g j] drops node [j] and densely re-ids the survivors (ids
    above [j] shift down by one, matching {!Bcdb.create_unchecked} after
    an RBF eviction). Validity and conflicts of survivors are reused
    unchanged — both depend only on [R] and the transactions' own
    rows. *)

val extend : t -> Tagged_store.t -> t
(** [extend g store] incrementally adds the store's newest transaction
    (id = [tx_count - 1]) as one more node: its validity and its
    conflicts against the other pending transactions are found through
    the store's indexes, without re-examining existing pairs. The
    steady-state maintenance of Section 6.3. *)
