module R = Relational
module Bitset = Bcgraph.Bitset

(* Check that the union of the base state and the given transactions
   satisfies the fds. Since fds are preserved under subsets, this is
   exactly the condition that no intermediate step can violate an fd. *)
let fd_consistent store target =
  let saved = Tagged_store.world store in
  Tagged_store.set_world store target;
  let src = Tagged_store.source store in
  let db = Tagged_store.db store in
  let ok =
    List.for_all
      (fun f -> Option.is_none (R.Check.check_fd src f))
      (Bcdb.fds db)
  in
  Tagged_store.set_world store saved;
  ok

(* Greedy closure under inds only: fds over the final set were already
   checked, and fds hold in every subset of an fd-consistent set. *)
let reachable_subset store target =
  let db = Tagged_store.db store in
  let ind_constraints =
    List.map (fun i -> R.Constr.Ind i) (Bcdb.inds db)
  in
  Closure.run store ~constraints:ind_constraints ~candidates:target

let is_possible_world store target =
  fd_consistent store target
  && Bitset.equal (reachable_subset store target) target

(* BFS over the can-append relation starting from the empty world,
   expressed as a resumable stepper: each call emits the next discovered
   world, expanding one BFS node at a time. The emission order is the
   visit order of the original push-based loop. *)
let generator store =
  let k = Tagged_store.tx_count store in
  if k > 24 then
    invalid_arg "Poss.enumerate: too many pending transactions (max 24)";
  let of_bits bits =
    let set = Bitset.create k in
    for i = 0 to k - 1 do
      if bits land (1 lsl i) <> 0 then Bitset.add set i
    done;
    set
  in
  let visited = Hashtbl.create 256 in
  let frontier = Queue.create () in
  let to_emit = Queue.create () in
  let visit bits =
    if not (Hashtbl.mem visited bits) then begin
      Hashtbl.replace visited bits ();
      Queue.add bits frontier;
      Queue.add bits to_emit
    end
  in
  visit 0;
  let rec next () =
    if not (Queue.is_empty to_emit) then Some (of_bits (Queue.pop to_emit))
    else if Queue.is_empty frontier then None
    else begin
      let bits = Queue.pop frontier in
      let world = of_bits bits in
      for id = 0 to k - 1 do
        if bits land (1 lsl id) = 0 then begin
          let next_bits = bits lor (1 lsl id) in
          if not (Hashtbl.mem visited next_bits) then begin
            (* One can-append step: the extended instance must satisfy I. *)
            let saved = Tagged_store.world store in
            Tagged_store.set_world store world;
            let src = Tagged_store.source store in
            let rows = Tagged_store.tx_rows store id in
            let db = Tagged_store.db store in
            let ok = R.Check.batch_consistent src db.Bcdb.constraints rows in
            Tagged_store.set_world store saved;
            if ok then visit next_bits
          end
        end
      done;
      next ()
    end
  in
  next

let enumerate store f =
  let next = generator store in
  let rec go () =
    match next () with
    | None -> ()
    | Some world -> ( match f world with `Continue -> go () | `Stop -> ())
  in
  go ()

let count store =
  let n = ref 0 in
  enumerate store (fun _ ->
      incr n;
      `Continue);
  !n
