module R = Relational
module V = R.Value

(* ------------------------------------------------------------------ *)
(* Line-oriented tokenizer: each declaration fits on one line (a tx row
   is "NAME(v, ...)" on its own line under a "tx" header). *)

type line =
  | Relation_decl of string * string list
  | Key_decl of string * string list
  | Fd_decl of string * string list * string list
  | Ind_decl of string * string list * string * string list
  | State_row of string * V.t list
  | Tx_header of string option
  | Tx_row of string * V.t list

exception Err of int * string

let fail lineno msg = raise (Err (lineno, msg))

let strip_comment s =
  let cut c s = match String.index_opt s c with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  cut '#' s |> cut '%'

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '~'

(* Parse "NAME(item, item, ...)" returning the name and raw item
   strings; items may contain quoted strings with commas. *)
let parse_call lineno s =
  match String.index_opt s '(' with
  | None -> fail lineno "expected NAME(...)"
  | Some lp ->
      let name = String.trim (String.sub s 0 lp) in
      if name = "" then fail lineno "missing name before '('";
      let n = String.length s in
      if s.[n - 1] <> ')' then fail lineno "missing closing ')'";
      let body = String.sub s (lp + 1) (n - lp - 2) in
      (* Split on commas outside quotes; a backslash escapes the next
         character inside a quoted string. *)
      let items = ref [] in
      let buf = Buffer.create 16 in
      let in_quote = ref false in
      let escaped = ref false in
      String.iter
        (fun c ->
          if !escaped then begin
            Buffer.add_char buf c;
            escaped := false
          end
          else if !in_quote && c = '\\' then begin
            Buffer.add_char buf c;
            escaped := true
          end
          else if c = '"' then begin
            in_quote := not !in_quote;
            Buffer.add_char buf c
          end
          else if c = ',' && not !in_quote then begin
            items := Buffer.contents buf :: !items;
            Buffer.clear buf
          end
          else Buffer.add_char buf c)
        body;
      if Buffer.length buf > 0 || !items <> [] then
        items := Buffer.contents buf :: !items;
      let items = List.rev_map String.trim !items in
      if List.exists (fun i -> i = "") items && List.length items > 1 then
        fail lineno "empty item in argument list";
      (name, List.filter (fun i -> i <> "") items)

let parse_value lineno raw =
  let n = String.length raw in
  if n = 0 then fail lineno "empty value"
  else if raw.[0] = '"' then begin
    if n < 2 || raw.[n - 1] <> '"' then fail lineno "unterminated string";
    (* Undo OCaml-style escapes produced by the printer (%S). *)
    let buf = Buffer.create (n - 2) in
    let i = ref 1 in
    while !i < n - 1 do
      let c = raw.[!i] in
      if c = '\\' && !i + 1 < n - 1 then begin
        (match raw.[!i + 1] with
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | other -> Buffer.add_char buf other);
        i := !i + 2
      end
      else begin
        Buffer.add_char buf c;
        incr i
      end
    done;
    V.Str (Buffer.contents buf)
  end
  else
    match raw with
    | "true" -> V.Bool true
    | "false" -> V.Bool false
    | "null" -> V.Null
    | _ -> (
        match int_of_string_opt raw with
        | Some i -> V.Int i
        | None -> (
            match float_of_string_opt raw with
            | Some f -> V.Float f
            | None ->
                fail lineno
                  (Printf.sprintf "cannot parse value %S (strings are quoted)" raw)))

let check_attr lineno a =
  if a = "" || not (String.for_all is_ident_char a) then
    fail lineno (Printf.sprintf "bad attribute name %S" a);
  a

let parse_line lineno s =
  let s = String.trim (strip_comment s) in
  if s = "" then None
  else if String.length s >= 9 && String.sub s 0 9 = "relation " then begin
    let name, attrs = parse_call lineno (String.sub s 9 (String.length s - 9)) in
    Some (Relation_decl (name, List.map (check_attr lineno) attrs))
  end
  else if String.length s >= 4 && String.sub s 0 4 = "key " then begin
    let name, attrs = parse_call lineno (String.sub s 4 (String.length s - 4)) in
    Some (Key_decl (name, List.map (check_attr lineno) attrs))
  end
  else if String.length s >= 3 && String.sub s 0 3 = "fd " then begin
    let name, items = parse_call lineno (String.sub s 3 (String.length s - 3)) in
    (* items were split on commas; the arrow lives inside one item,
       e.g. "a, b -> c, d" splits as ["a"; "b -> c"; "d"]. *)
    let lhs = ref [] and rhs = ref [] and seen_arrow = ref false in
    List.iter
      (fun item ->
        match
          let rec find i =
            if i + 1 >= String.length item then None
            else if item.[i] = '-' && item.[i + 1] = '>' then Some i
            else find (i + 1)
          in
          find 0
        with
        | Some i ->
            if !seen_arrow then fail lineno "two arrows in fd";
            seen_arrow := true;
            let l = String.trim (String.sub item 0 i) in
            let r =
              String.trim (String.sub item (i + 2) (String.length item - i - 2))
            in
            if l <> "" then lhs := l :: !lhs;
            if r <> "" then rhs := r :: !rhs
        | None ->
            if !seen_arrow then rhs := item :: !rhs else lhs := item :: !lhs)
      items;
    if not !seen_arrow then fail lineno "fd needs '->'";
    Some
      (Fd_decl
         ( name,
           List.rev_map (check_attr lineno) !lhs,
           List.rev_map (check_attr lineno) !rhs ))
  end
  else if String.length s >= 4 && String.sub s 0 4 = "ind " then begin
    let rest = String.sub s 4 (String.length s - 4) in
    let sep = "<=" in
    let idx =
      let rec find i =
        if i + 1 >= String.length rest then fail lineno "ind needs '<='"
        else if rest.[i] = '<' && rest.[i + 1] = '=' then i
        else find (i + 1)
      in
      find 0
    in
    let left = String.trim (String.sub rest 0 idx) in
    let right =
      String.trim (String.sub rest (idx + String.length sep)
                     (String.length rest - idx - String.length sep))
    in
    let sub_name, sub_attrs = parse_call lineno left in
    let sup_name, sup_attrs = parse_call lineno right in
    Some
      (Ind_decl
         ( sub_name,
           List.map (check_attr lineno) sub_attrs,
           sup_name,
           List.map (check_attr lineno) sup_attrs ))
  end
  else if String.length s >= 6 && String.sub s 0 6 = "state " then begin
    let name, items = parse_call lineno (String.sub s 6 (String.length s - 6)) in
    Some (State_row (name, List.map (parse_value lineno) items))
  end
  else if s = "tx" then Some (Tx_header None)
  else if String.length s >= 3 && String.sub s 0 3 = "tx " then
    Some (Tx_header (Some (String.trim (String.sub s 3 (String.length s - 3)))))
  else begin
    let name, items = parse_call lineno s in
    Some (Tx_row (name, List.map (parse_value lineno) items))
  end

(* ------------------------------------------------------------------ *)

let of_string input =
  match
    let lines = String.split_on_char '\n' input in
    let parsed =
      List.concat
        (List.mapi
           (fun i raw ->
             match parse_line (i + 1) raw with
             | Some l -> [ (i + 1, l) ]
             | None -> [])
           lines)
    in
    let schemas = ref [] in
    let constraints = ref [] in
    let state_rows = ref [] in
    let txs = ref [] (* (label option, rows ref) in reverse *) in
    let find_schema lineno name =
      match List.assoc_opt name !schemas with
      | Some s -> s
      | None -> fail lineno (Printf.sprintf "relation %s not declared" name)
    in
    let check_row lineno name values =
      let schema = find_schema lineno name in
      if List.length values <> R.Schema.arity schema then
        fail lineno
          (Printf.sprintf "%s expects %d values, got %d" name
             (R.Schema.arity schema) (List.length values));
      (name, R.Tuple.make values)
    in
    List.iter
      (fun (lineno, l) ->
        match l with
        | Relation_decl (name, attrs) ->
            if List.mem_assoc name !schemas then
              fail lineno (Printf.sprintf "relation %s declared twice" name);
            let schema =
              try R.Schema.relation name attrs
              with Invalid_argument msg -> fail lineno msg
            in
            schemas := (name, schema) :: !schemas
        | Key_decl (name, attrs) ->
            let schema = find_schema lineno name in
            let c =
              try R.Constr.key schema attrs
              with Invalid_argument msg | Failure msg -> fail lineno msg
                 | Not_found -> fail lineno ("unknown attribute in key on " ^ name)
            in
            constraints := c :: !constraints
        | Fd_decl (name, lhs, rhs) ->
            let schema = find_schema lineno name in
            let c =
              try R.Constr.fd schema lhs rhs
              with Invalid_argument msg -> fail lineno msg
                 | Not_found -> fail lineno ("unknown attribute in fd on " ^ name)
            in
            constraints := c :: !constraints
        | Ind_decl (sub_name, sub_attrs, sup_name, sup_attrs) ->
            let sub = find_schema lineno sub_name in
            let sup = find_schema lineno sup_name in
            let c =
              try R.Constr.ind ~sub sub_attrs ~sup sup_attrs
              with Invalid_argument msg -> fail lineno msg
                 | Not_found -> fail lineno "unknown attribute in ind"
            in
            constraints := c :: !constraints
        | State_row (name, values) ->
            state_rows := check_row lineno name values :: !state_rows
        | Tx_header label -> txs := (label, ref []) :: !txs
        | Tx_row (name, values) -> (
            match !txs with
            | [] -> fail lineno "transaction row before any 'tx' header"
            | (_, rows) :: _ -> rows := check_row lineno name values :: !rows))
      parsed;
    let catalog = R.Schema.of_list (List.rev_map snd !schemas) in
    let state = R.Database.create catalog in
    R.Database.insert_all state (List.rev !state_rows);
    let txs = List.rev !txs in
    List.iteri
      (fun i (_, rows) ->
        if !rows = [] then
          fail 0 (Printf.sprintf "transaction #%d has no rows" (i + 1)))
      txs;
    let labels =
      List.mapi
        (fun i (label, _) ->
          Option.value label ~default:(Printf.sprintf "T%d" (i + 1)))
        txs
    in
    Bcdb.create ~state
      ~constraints:(List.rev !constraints)
      ~pending:(List.map (fun (_, rows) -> List.rev !rows) txs)
      ~labels ()
  with
  | result -> result
  | exception Err (lineno, msg) ->
      Error (Printf.sprintf "line %d: %s" lineno msg)

let to_string (db : Bcdb.t) =
  let buf = Buffer.create 4096 in
  let catalog = Bcdb.catalog db in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun schema ->
      pr "relation %s(%s)\n" schema.R.Schema.name
        (String.concat ", " (Array.to_list schema.R.Schema.attrs)))
    (R.Schema.relations catalog);
  Buffer.add_char buf '\n';
  List.iter
    (fun c ->
      let attr_names schema positions =
        String.concat ", "
          (List.map (fun i -> schema.R.Schema.attrs.(i)) positions)
      in
      match c with
      | R.Constr.Fd f ->
          let schema = R.Schema.find catalog f.R.Constr.frel in
          if R.Constr.is_key schema f then
            pr "key %s(%s)\n" f.R.Constr.frel (attr_names schema f.R.Constr.lhs)
          else
            pr "fd %s(%s -> %s)\n" f.R.Constr.frel
              (attr_names schema f.R.Constr.lhs)
              (attr_names schema f.R.Constr.rhs)
      | R.Constr.Ind i ->
          let sub = R.Schema.find catalog i.R.Constr.sub_rel in
          let sup = R.Schema.find catalog i.R.Constr.sup_rel in
          pr "ind %s(%s) <= %s(%s)\n" i.R.Constr.sub_rel
            (attr_names sub i.R.Constr.sub_attrs)
            i.R.Constr.sup_rel
            (attr_names sup i.R.Constr.sup_attrs))
    db.Bcdb.constraints;
  Buffer.add_char buf '\n';
  let pr_tuple name tuple =
    Printf.sprintf "%s(%s)" name
      (String.concat ", "
         (List.map V.to_string (Array.to_list tuple)))
  in
  List.iter
    (fun schema ->
      R.Database.iter_tuples db.Bcdb.state schema.R.Schema.name (fun tuple ->
          pr "state %s\n" (pr_tuple schema.R.Schema.name tuple)))
    (R.Schema.relations catalog);
  Array.iter
    (fun (tx : Pending.t) ->
      pr "\ntx %s\n" tx.Pending.label;
      List.iter
        (fun (name, tuple) -> pr "  %s\n" (pr_tuple name tuple))
        tx.Pending.rows)
    db.Bcdb.pending;
  Buffer.contents buf

let parse_row catalog input =
  match
    let name, items = parse_call 1 (String.trim (strip_comment input)) in
    match R.Schema.find_opt catalog name with
    | None -> Error (Printf.sprintf "unknown relation %s" name)
    | Some schema ->
        let values = List.map (parse_value 1) items in
        if List.length values <> R.Schema.arity schema then
          Error
            (Printf.sprintf "%s expects %d values, got %d" name
               (R.Schema.arity schema) (List.length values))
        else Ok (name, R.Tuple.make values)
  with
  | result -> result
  | exception Err (_, msg) -> Error msg

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_string contents
  | exception Sys_error msg -> Error msg

let save path db =
  match Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string db)) with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Binary snapshots.

   Layout (all integers little-endian):

     "BCDBSNP1"                                  8-byte magic
     u32 version (= 1)
     i64 nrels; per relation: str name, i64 nattrs, str attr...
     i64 nconstraints; per constraint:
       u8 0 (fd):  str frel, intlist lhs, intlist rhs
       u8 1 (ind): str sub_rel, intlist sub_attrs,
                   str sup_rel, intlist sup_attrs
     per relation (catalog order): column blobs (Segment.serialize:
       row count, column count, then per column the kind tag,
       dictionary and payload)
     i64 npending; per transaction: str label, i64 nrows;
       per row: i64 relation-index, then one Value per attribute
     "BCDBEND1"                                  8-byte end marker

   where str = i64 length + bytes and intlist = i64 count + i64 each.
   The state is always written columnar (dictionaries + payload blobs),
   so loading reconstructs the segments directly — no row parsing, no
   re-indexing, no constraint re-check (the snapshot was written from a
   validated database). *)

let binary_magic = "BCDBSNP1"
let binary_end = "BCDBEND1"
let binary_version = 1

let add_str buf s =
  Relational.Column.add_i64 buf (String.length s);
  Buffer.add_string buf s

let add_int_list buf l =
  Relational.Column.add_i64 buf (List.length l);
  List.iter (Relational.Column.add_i64 buf) l

let to_binary_string (db : Bcdb.t) =
  (* Pre-size near the payload size (the segments dominate): at
     paper-scale states, letting the buffer double its way up would copy
     hundreds of MB and leave as much garbage behind. *)
  let size_hint =
    R.Schema.relations (Bcdb.catalog db)
    |> List.fold_left
         (fun acc schema ->
           match R.Database.segment db.Bcdb.state schema.R.Schema.name with
           | Some seg -> acc + R.Segment.bytes seg
           | None -> acc)
         (1 lsl 16)
  in
  let buf = Buffer.create size_hint in
  Buffer.add_string buf binary_magic;
  Buffer.add_int32_le buf (Int32.of_int binary_version);
  let catalog = Bcdb.catalog db in
  let rels = R.Schema.relations catalog in
  Relational.Column.add_i64 buf (List.length rels);
  List.iter
    (fun schema ->
      add_str buf schema.R.Schema.name;
      Relational.Column.add_i64 buf (Array.length schema.R.Schema.attrs);
      Array.iter (add_str buf) schema.R.Schema.attrs)
    rels;
  Relational.Column.add_i64 buf (List.length db.Bcdb.constraints);
  List.iter
    (function
      | R.Constr.Fd f ->
          Buffer.add_uint8 buf 0;
          add_str buf f.R.Constr.frel;
          add_int_list buf f.R.Constr.lhs;
          add_int_list buf f.R.Constr.rhs
      | R.Constr.Ind i ->
          Buffer.add_uint8 buf 1;
          add_str buf i.R.Constr.sub_rel;
          add_int_list buf i.R.Constr.sub_attrs;
          add_str buf i.R.Constr.sup_rel;
          add_int_list buf i.R.Constr.sup_attrs)
    db.Bcdb.constraints;
  List.iter
    (fun schema ->
      R.Segment.serialize buf
        (R.Database.to_segment db.Bcdb.state schema.R.Schema.name))
    rels;
  let rel_index = Hashtbl.create 8 in
  List.iteri (fun i schema -> Hashtbl.replace rel_index schema.R.Schema.name i) rels;
  Relational.Column.add_i64 buf (Array.length db.Bcdb.pending);
  Array.iter
    (fun (tx : Pending.t) ->
      add_str buf tx.Pending.label;
      Relational.Column.add_i64 buf (List.length tx.Pending.rows);
      List.iter
        (fun (rel, tuple) ->
          Relational.Column.add_i64 buf (Hashtbl.find rel_index rel);
          Array.iter (V.write_binary buf) tuple)
        tx.Pending.rows)
    db.Bcdb.pending;
  Buffer.add_string buf binary_end;
  Buffer.contents buf

let of_binary_string ?(validate = false) s =
  let corrupt msg = raise (Relational.Column.Corrupt msg) in
  let read_str pos =
    let n = Relational.Column.read_i64 s pos in
    if n < 0 || !pos + n > String.length s then corrupt "truncated string";
    let v = String.sub s !pos n in
    pos := !pos + n;
    v
  in
  let read_int_list pos =
    let n = Relational.Column.read_i64 s pos in
    if n < 0 || n > 4096 then corrupt "bad int list length";
    List.init n (fun _ -> Relational.Column.read_i64 s pos)
  in
  match
    if String.length s < 12 || String.sub s 0 8 <> binary_magic then
      corrupt "bad magic (not a binary snapshot)";
    let pos = ref 8 in
    let version = Int32.to_int (String.get_int32_le s !pos) in
    pos := !pos + 4;
    if version <> binary_version then
      corrupt (Printf.sprintf "unsupported snapshot version %d" version);
    let nrels = Relational.Column.read_i64 s pos in
    if nrels < 0 || nrels > 100_000 then corrupt "bad relation count";
    let schemas =
      List.init nrels (fun _ ->
          let name = read_str pos in
          let nattrs = Relational.Column.read_i64 s pos in
          if nattrs < 0 || nattrs > 4096 then corrupt "bad attribute count";
          let attrs = List.init nattrs (fun _ -> read_str pos) in
          match R.Schema.relation name attrs with
          | schema -> schema
          | exception Invalid_argument msg -> corrupt msg)
    in
    let catalog = R.Schema.of_list schemas in
    let check_rel name =
      match R.Schema.find_opt catalog name with
      | Some schema -> schema
      | None -> corrupt (Printf.sprintf "constraint on unknown relation %s" name)
    in
    let check_attrs schema l =
      List.iter
        (fun i ->
          if i < 0 || i >= R.Schema.arity schema then
            corrupt "constraint attribute out of range")
        l;
      l
    in
    let nconstr = Relational.Column.read_i64 s pos in
    if nconstr < 0 || nconstr > 100_000 then corrupt "bad constraint count";
    let constraints =
      List.init nconstr (fun _ ->
          if !pos >= String.length s then corrupt "truncated constraint";
          let tag = Char.code s.[!pos] in
          incr pos;
          match tag with
          | 0 ->
              let frel = read_str pos in
              let schema = check_rel frel in
              let lhs = check_attrs schema (read_int_list pos) in
              let rhs = check_attrs schema (read_int_list pos) in
              if lhs = [] || rhs = [] then corrupt "empty fd attribute list";
              R.Constr.Fd { R.Constr.frel; lhs; rhs }
          | 1 ->
              let sub_rel = read_str pos in
              let sub = check_rel sub_rel in
              let sub_attrs = check_attrs sub (read_int_list pos) in
              let sup_rel = read_str pos in
              let sup = check_rel sup_rel in
              let sup_attrs = check_attrs sup (read_int_list pos) in
              if
                sub_attrs = []
                || List.length sub_attrs <> List.length sup_attrs
              then corrupt "bad ind attribute lists";
              R.Constr.Ind { R.Constr.sub_rel; sub_attrs; sup_rel; sup_attrs }
          | _ -> corrupt "bad constraint tag")
    in
    let segs =
      List.map
        (fun schema ->
          let seg = R.Segment.deserialize s pos in
          if R.Segment.arity seg <> R.Schema.arity schema then
            corrupt
              (Printf.sprintf "segment arity mismatch for %s"
                 schema.R.Schema.name);
          (schema.R.Schema.name, seg))
        schemas
    in
    let state = R.Database.of_segments catalog segs in
    let by_index = Array.of_list schemas in
    let npend = Relational.Column.read_i64 s pos in
    if npend < 0 || npend > 1_000_000 then corrupt "bad pending count";
    let txs =
      List.init npend (fun _ ->
          let label = read_str pos in
          let nrows = Relational.Column.read_i64 s pos in
          if nrows < 0 || nrows > 10_000_000 then corrupt "bad row count";
          let rows =
            List.init nrows (fun _ ->
                let ri = Relational.Column.read_i64 s pos in
                if ri < 0 || ri >= Array.length by_index then
                  corrupt "bad relation index in pending row";
                let schema = by_index.(ri) in
                let tuple =
                  Array.init (R.Schema.arity schema) (fun _ ->
                      match V.read_binary s pos with
                      | Some v -> v
                      | None -> corrupt "bad value in pending row")
                in
                (schema.R.Schema.name, tuple))
          in
          (label, rows))
    in
    if
      !pos + String.length binary_end <> String.length s
      || String.sub s !pos (String.length binary_end) <> binary_end
    then corrupt "missing end marker";
    let labels = List.map fst txs in
    let pending = List.map snd txs in
    if validate then Bcdb.create ~state ~constraints ~pending ~labels ()
    else Ok (Bcdb.create_unchecked ~state ~constraints ~pending ~labels ())
  with
  | result -> result
  | exception Relational.Column.Corrupt msg -> Error ("binary snapshot: " ^ msg)

let load_binary ?validate path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> of_binary_string ?validate contents
  | exception Sys_error msg -> Error msg

let save_binary path db =
  match
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (to_binary_string db))
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg
