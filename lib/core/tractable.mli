(** Polynomial-time decision procedures for the tractable cases of
    Theorems 1 and 2. Each procedure exploits structure that the generic
    clique enumeration cannot:

    - {b Fd_conjunctive} — [DCSat(Qc, {key, fd})] (Thm 1.1). With no
      inclusion dependencies, {e every} fd-consistent transaction set is a
      possible world, so [q] is violable iff some assignment over [R ∪ T]
      has an fd-consistent support whose induced world also avoids the
      assignment's negated tuples. Only supports of at most [|q|]
      transactions ever need considering.
    - {b Ind_conjunctive} — [DCSat(Qc, {ind})] (Thm 1.1). With no fds,
      reachable worlds are closed under union, so there is a unique
      maximal world; for positive queries one evaluation over it decides
      the problem. With negation, for each candidate assignment the
      transactions providing a negated tuple are excluded and the maximal
      world over the remaining transactions is tested.
    - {b Fd_aggregate} — [DCSat(Q+α,<, {key, fd})] for α ∈ {count, cntd,
      sum} (Thm 2.2, sum assuming non-negative summands) and
      [DCSat(Q+max/min,θ, {key, fd})] for every θ (Thm 2.1). The bag of a
      world shrinks with the world, so it suffices to test the {e minimal
      support worlds} [R ∪ support(h)] of single assignments [h].
    - {b Ind_monotone_aggregate} — [DCSat(Q+α,>, {ind})] for α ∈ {count,
      cntd, sum, max} and [Q+min,<] (Thms 2.4, 2.7): evaluate once over
      the unique maximal world. *)

type case =
  | Fd_conjunctive
  | Ind_conjunctive
  | Fd_aggregate
  | Ind_monotone_aggregate

val case_name : case -> string

val applicable :
  ?sum_args_nonnegative:bool -> Bcdb.t -> Bcquery.Query.t -> case option
(** Which (if any) tractable procedure decides this query over this
    database's constraint profile. *)

val decides : ?sum_args_nonnegative:bool -> Bcdb.t -> Bcquery.Query.t -> bool
(** [applicable db q <> None] — the dispatch guard used by the live
    layer to keep tractable-decided queries away from the component
    tracking and verdict-cache machinery entirely. *)

val solve :
  ?sum_args_nonnegative:bool ->
  Session.t ->
  Bcquery.Query.t ->
  (Dcsat.outcome * case) option
(** [None] when no tractable case applies. *)
