module Q = Bcquery

type strategy =
  | Tractable of Tractable.case
  | Opt
  | Naive
  | Brute_force

let strategy_name = function
  | Tractable case -> "tractable: " ^ Tractable.case_name case
  | Opt -> "OptDCSat"
  | Naive -> "NaiveDCSat"
  | Brute_force -> "brute force"

let brute_limit = 24

(* One "solver.strategy.*" counter per dispatch outcome, so merged
   metrics show which algorithm answered each constraint. *)
let strategy_counter = function
  | Tractable _ -> "solver.strategy.tractable"
  | Opt -> "solver.strategy.opt"
  | Naive -> "solver.strategy.naive"
  | Brute_force -> "solver.strategy.brute_force"

let solve ?jobs ?budget ?use_delta ?use_native ?use_steal ?sum_args_nonnegative
    ?comp_hooks session q =
  let obs = Session.obs session in
  let result =
    Obs.span obs ~cat:"solver" "solve" @@ fun () ->
    match Tractable.solve ?sum_args_nonnegative session q with
    | Some (outcome, case) -> Ok (outcome, Tractable case)
    | None -> (
        match
          Dcsat.opt ?jobs ?budget ?use_delta ?use_native ?use_steal ?comp_hooks
            session q
        with
        | Ok outcome -> Ok (outcome, Opt)
        | Error `Not_connected -> (
            match
              Dcsat.naive ?jobs ?budget ?use_delta ?use_native ?use_steal
                session q
            with
            | Ok outcome -> Ok (outcome, Naive)
            | Error refusal ->
                Error (Format.asprintf "%a" Dcsat.pp_refusal refusal))
        | Error (`Not_monotone _) ->
            let store = Session.store session in
            if Tagged_store.tx_count store > brute_limit then
              Error
                (Printf.sprintf
                   "constraint is not monotone and %d pending transactions \
                    exceed the exhaustive-enumeration limit (%d)"
                   (Tagged_store.tx_count store) brute_limit)
            else
              Ok
                ( Dcsat.brute_force ?jobs ?budget ?use_delta ?use_native session q,
                  Brute_force ))
  in
  (match result with
  | Ok (_, strategy) when Obs.enabled obs ->
      Obs.add obs (strategy_counter strategy) 1
  | _ -> ());
  result

let solve_exn ?jobs ?budget ?use_delta ?use_native ?use_steal
    ?sum_args_nonnegative ?comp_hooks session q =
  match
    solve ?jobs ?budget ?use_delta ?use_native ?use_steal ?sum_args_nonnegative
      ?comp_hooks session q
  with
  | Ok result -> result
  | Error msg -> invalid_arg ("Solver.solve: " ^ msg)

let check db q =
  let session = Session.create db in
  Result.map (fun (o, _) -> o.Dcsat.satisfied) (solve session q)
