(** Human-readable reports about a denial-constraint check: the query's
    syntactic properties, the complexity class of the instance, which
    solver ran, and a bounded trace of its decisions (components skipped
    by Covers, cliques enumerated, worlds evaluated). *)

type report = {
  query : string;
  monotone : bool;
  monotone_reason : string option;  (** Why not, when not monotone. *)
  connected : bool;
  complexity : Complexity.verdict;
  strategy : string;
  outcome : Dcsat.outcome;
  trace : Dcsat.event list;  (** At most [max_events], execution order. *)
  trace_truncated : bool;
}

val run :
  ?jobs:int ->
  ?budget:Engine.Budget.t ->
  ?max_events:int ->
  Session.t ->
  Bcquery.Query.t ->
  (report, string) result
(** Solve with the dispatcher's preference order (tracing only applies to
    the Naive/Opt paths; tractable and brute-force runs yield an empty
    trace). [max_events] defaults to 50. [jobs] selects the engine
    backend (default 1); with [jobs > 1] the trace's event order is
    nondeterministic. [budget] bounds the enumerating solvers as in
    {!Solver.solve}; an exhausted budget reports an UNKNOWN result. *)

val pp_event : labels:(int -> string) -> Format.formatter -> Dcsat.event -> unit
val pp : labels:(int -> string) -> Format.formatter -> report -> unit
(** [labels] maps transaction ids to display names
    (e.g. [fun i -> db.pending.(i).label]). *)

val to_string : Bcdb.t -> report -> string
