(* Alias so core modules (and their .mlis) can name recorder types as
   [Obs.t] without depending on the wrapped library name. *)
include Bcobs.Obs
