(* The clock moved into the observability library (spans need it below
   the core); re-exported here so core modules keep saying
   [Monotime.now]. *)
include Bcobs.Monotime
