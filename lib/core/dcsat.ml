module R = Relational
module Q = Bcquery
module Bitset = Bcgraph.Bitset
module Undirected = Bcgraph.Undirected

type stats = {
  worlds_checked : int;
  cliques_enumerated : int;
  components_total : int;
  components_covered : int;
  precheck_decided : bool;
  runtime : float;
}

type verdict =
  | Satisfied
  | Violated of {
      world : int list;
      witness : (string * R.Value.t) list option;
    }
  | Unknown of Engine.Budget.reason

type outcome = {
  satisfied : bool;
  witness_world : int list option;
  witness : (string * R.Value.t) list option;
  verdict : verdict;
  stats : stats;
}

type refusal = [ `Not_monotone of string | `Not_connected ]

type event =
  | Precheck_decided
  | Components_found of int
  | Component_skipped of int list
  | Component_entered of int list
  | Clique_found of int list
  | World_evaluated of int list * bool

(* Per-component verdicts and the cache hooks of the scheduled OptDCSat
   path. A component's verdict depends only on its member transactions'
   rows, the confirmed state and the query — the factorization argument
   of Proposition 2 — so a caller that can recognize an unchanged
   component (Live's content signatures) may replay its last verdict. *)
type comp_verdict =
  | Comp_satisfied
  | Comp_violated of {
      world : int list;
      witness : (string * R.Value.t) list option;
    }
  | Comp_unknown of Engine.Budget.reason

type comp_hooks = {
  comp_clean : index:int -> int list -> comp_verdict option;
      (* [Some v]: verdict known for unchanged content — skip entirely,
         [v] stands in for a fresh solve. Replaying [Comp_violated]
         additionally requires un-re-packed ids (world/witness name
         transaction ids). *)
  comp_suspect : index:int -> int list -> bool;
      (* Violated last check: schedule first. *)
  comp_solved : index:int -> int list -> comp_verdict -> unit;
      (* Fired once per solved dirty component, in ascending component
         index, after the enumeration ends. *)
}

let pp_refusal ppf = function
  | `Not_monotone reason -> Format.fprintf ppf "not monotone: %s" reason
  | `Not_connected -> Format.pp_print_string ppf "not a connected conjunctive query"

let verdict_name = function
  | Satisfied -> "SATISFIED"
  | Violated _ -> "UNSATISFIED"
  | Unknown reason ->
      Printf.sprintf "UNKNOWN (budget exhausted: %s)"
        (Engine.Budget.reason_name reason)

let pp_outcome ppf o =
  Format.fprintf ppf "%s (worlds=%d cliques=%d comps=%d/%d precheck=%b %.4fs)"
    (verdict_name o.verdict) o.stats.worlds_checked o.stats.cliques_enumerated
    o.stats.components_covered o.stats.components_total
    o.stats.precheck_decided o.stats.runtime

(* Mutable counters threaded through a run. *)
type counters = {
  mutable worlds : int;
  mutable cliques : int;
  mutable comps : int;
  mutable covered : int;
}

let fresh_counters () = { worlds = 0; cliques = 0; comps = 0; covered = 0 }

(* The verdict of one enumeration: a violation found before any budget
   exhaustion is a sound counterexample (Violated wins); a clean, fully
   enumerated run is Satisfied; a budget-cut run without a witness is
   Unknown — the unexplored suffix could hide a violation. *)
let verdict_of ~violation ~exhausted =
  match (violation, exhausted) with
  | Some (world, witness), _ -> Violated { world; witness }
  | None, Some reason -> Unknown reason
  | None, None -> Satisfied

let finish ~t0 ~precheck counters verdict =
  let witness_world, witness =
    match verdict with
    | Violated v -> (Some v.world, v.witness)
    | Satisfied | Unknown _ -> (None, None)
  in
  {
    (* [satisfied] means "known to hold in every world": false for both
       Violated and Unknown — consult [verdict] to tell them apart. *)
    satisfied = (verdict = Satisfied);
    witness_world;
    witness;
    verdict;
    stats =
      {
        worlds_checked = counters.worlds;
        cliques_enumerated = counters.cliques;
        components_total = counters.comps;
        components_covered = counters.covered;
        precheck_decided = precheck;
        runtime = Monotime.elapsed ~since:t0;
      };
  }

(* Engine eval factories: each worker instantiates one {!Inc_eval}
   evaluator over the session's compiled plan, so its incremental world
   caches are worker-private (the caches themselves live with the store
   being evaluated on, which is also worker-private).

   [obs] records the eval span — it runs on whatever domain evaluates,
   and per-domain buffering keeps concurrent evaluations from
   interleaving. This runs once per world: the span closure must only be
   built when recording, or its allocation taxes the uninstrumented hot
   path. *)
let eval_txs_with ev obs store txs =
  if Obs.enabled obs then
    Obs.span obs ~cat:"dcsat" "eval" (fun () -> Inc_eval.eval_world ev store txs)
  else Inc_eval.eval_world ev store txs

let eval_txs_factory ~use_delta ~use_native obs plan () =
  let ev = Inc_eval.evaluator ~use_delta ~use_native ~obs plan in
  fun store txs -> eval_txs_with ev obs store txs

(* A clique work item: materialize its maximal world (memoized with the
   evaluator's world cache — the closure is world-independent), then
   evaluate. *)
let eval_clique_factory ~use_delta ~use_native obs plan () =
  let ev = Inc_eval.evaluator ~use_delta ~use_native ~obs plan in
  fun store members ->
    let world =
      if Obs.enabled obs then
        Obs.span obs ~cat:"dcsat" "get_maximal" (fun () ->
            Inc_eval.maximal_world ev store members)
      else Inc_eval.maximal_world ev store members
    in
    eval_txs_with ev obs store (Bitset.to_list world)

(* Work-stealing toggle. BCDB_BK_STEAL=0 forces the claim-lock clique
   pipeline, =1 forces the work-stealing enumerator at any jobs count
   (the CI matrix crosses both with BCDB_TEST_JOBS); unset is Auto:
   steal only when there are several workers to feed and the node set is
   large enough that one sequential producer could become the
   bottleneck. An explicit [?use_steal] argument beats the env var. *)
let steal_env = lazy (Sys.getenv_opt "BCDB_BK_STEAL")
let auto_steal_threshold = 32

let steal_enabled ~use_steal ~jobs n =
  match use_steal with
  | Some b -> b
  | None -> (
      match Lazy.force steal_env with
      | Some "0" -> false
      | Some "1" -> true
      | _ -> jobs > 1 && n >= auto_steal_threshold)

(* The monotone pre-check: q false over R ∪ T implies satisfied. The
   previously active world is restored afterwards. The full-visibility
   world goes through the incremental evaluator too: on repeated solves
   of one constraint it is a pure replay. *)
let precheck ~use_delta ~use_native session plan =
  let obs = Session.obs session in
  Obs.span obs ~cat:"dcsat" "precheck" @@ fun () ->
  let store = Session.store session in
  let saved = Tagged_store.world store in
  Tagged_store.all_visible store;
  let ev = Inc_eval.evaluator ~use_delta ~use_native ~obs plan in
  let decided = not (Inc_eval.eval_bool ev store) in
  Tagged_store.set_world store saved;
  decided

(* Fan the items of [source] out over the engine and fold the report
   back into the run's counters. Returns the run's violation (if any)
   and the budget-exhaustion reason (if the budget tripped). *)
let run_worlds ~jobs ~budget ~on_event ~count_cliques session counters ~eval
    source =
  let store = Session.store session in
  let obs = Session.obs session in
  let report =
    Engine.run ~obs ~budget
      ~counted:(counters.cliques, counters.worlds)
      ~jobs ~store
      ~replicate:(fun () -> Session.borrow_replica session)
      ~release:(Session.return_replica session)
      ~restrict:(Tagged_store.restrict store)
      ~source ~eval
      ~on_item:(fun members ->
        if count_cliques then on_event (Clique_found members))
      ~on_evaluated:(fun ev ->
        on_event
          (World_evaluated (ev.Engine.world, ev.Engine.violation <> None)))
      ()
  in
  if count_cliques then
    counters.cliques <- counters.cliques + report.Engine.pulled;
  counters.worlds <- counters.worlds + report.Engine.evaluated;
  (* The engine clamps both counts to the winning index, so these obs
     counters are deterministic across backends and job counts. *)
  if Obs.enabled obs then begin
    if count_cliques then Obs.add obs "dcsat.cliques" report.Engine.pulled;
    Obs.add obs "dcsat.worlds" report.Engine.evaluated
  end;
  ( Option.map
      (fun (v : Engine.violation) -> (v.Engine.world, v.witness))
      report.Engine.hit,
    report.Engine.exhausted )

(* Work-stealing counterpart of {!run_worlds} over {!clique_source}:
   the cliques of the fd graph restricted to [nodes] are enumerated by
   the engine's steal backend itself (no single producer), evaluated on
   [scope] views or full replicas, and the report is folded into the
   run's counters the same way. *)
let run_steal ~jobs ~budget ~on_event ?scope session counters ~eval nodes =
  let store = Session.store session in
  let obs = Session.obs session in
  let fd = Session.fd_graph session in
  let sub, back = Undirected.induced fd.Fd_graph.graph nodes in
  let report =
    Engine.run_cliques_steal ~obs ~budget
      ~counted:(counters.cliques, counters.worlds)
      ~jobs
      ~replicate:(fun () -> Session.borrow_replica session)
      ~release:(Session.return_replica session)
      ~restrict:(Tagged_store.restrict store) ?scope ~graph:sub ~back ~eval
      ~on_item:(fun members -> on_event (Clique_found members))
      ~on_evaluated:(fun ev ->
        on_event
          (World_evaluated (ev.Engine.world, ev.Engine.violation <> None)))
      ()
  in
  counters.cliques <- counters.cliques + report.Engine.pulled;
  counters.worlds <- counters.worlds + report.Engine.evaluated;
  if Obs.enabled obs then begin
    Obs.add obs "dcsat.cliques" report.Engine.pulled;
    Obs.add obs "dcsat.worlds" report.Engine.evaluated
  end;
  ( Option.map
      (fun (v : Engine.violation) -> (v.Engine.world, v.witness))
      report.Engine.hit,
    report.Engine.exhausted )

(* Work source: the maximal cliques of the fd graph restricted to
   [nodes], as candidate sets in original transaction ids. When [scope]
   is given, items are tagged with that component-scoped store view. A
   budgeted run threads its deadline hook into the clique generator, so
   a long inter-yield search is still cut promptly; source pulls happen
   under the engine lock, so the budget's sticky trip never races. *)
let clique_source ?scope ~budget session nodes =
  let obs = Session.obs session in
  let fd = Session.fd_graph session in
  let sub, back = Undirected.induced fd.Fd_graph.graph nodes in
  let interrupt =
    if Engine.Budget.is_unlimited budget then None
    else Some (Engine.Budget.interrupt budget)
  in
  let next = Engine.Work_source.of_cliques ?interrupt ?scope sub ~back in
  if not (Obs.enabled obs) then next
  else fun () -> Obs.span obs ~cat:"dcsat" "bk_yield" next

(* Work source for OptDCSat: the clique streams of the covered
   components, chained in component order. The Covers test and the
   component events fire lazily, when the stream first reaches the
   component — under the engine lock in the parallel backend, so the
   primary store is never touched concurrently.

   The parallel claim pump may pull ahead of the winning violation
   into later components, so covers are not counted directly: each is
   tagged with the emission index of the component's first clique
   (= its engine claim index), and [covered] later counts only those
   within the claimed-and-counted prefix — making the stat identical
   to the sequential run's. *)
let component_source ~use_covers ~budget ~on_event session q components =
  let store = Session.store session in
  let remaining = ref components in
  let current = ref Engine.Work_source.empty in
  let emitted = ref 0 in
  let cover_marks = ref [] in
  let rec pull () =
    match !current () with
    | Some _ as item ->
        incr emitted;
        item
    | None -> (
        match !remaining with
        | [] -> None
        | component :: rest ->
            remaining := rest;
            let covers =
              (not use_covers)
              || Obs.span (Session.obs session) ~cat:"dcsat" "covers"
                   (fun () -> Covers.covers store component q)
            in
            if covers then begin
              cover_marks := !emitted :: !cover_marks;
              on_event (Component_entered component);
              (* Every clique of this component — and the maximal world
                 it closes into — lives inside [component], so its items
                 are scoped to it: workers evaluate on component-sized
                 store views (tens of tuples, not the whole store). *)
              current := clique_source ~scope:component ~budget session component;
              pull ()
            end
            else begin
              on_event (Component_skipped component);
              pull ()
            end)
  in
  let covered ~pulled =
    List.length (List.filter (fun mark -> mark < pulled) !cover_marks)
  in
  (pull, covered)

(* --- dirty-component scheduling (per-component verdict cache) ------- *)

(* The cached OptDCSat path: with [hooks], the caller owns a
   per-component verdict cache. Components whose [comp_clean] probe hits
   are skipped wholesale (their cached verdict is Satisfied); the dirty
   remainder is solved {e exhaustively} — no cross-component early exit,
   so every dirty component's fresh verdict lands back in the cache —
   scheduled suspects-first then largest-first: small components become
   the work items of one drained claim-lock engine run
   ([stop_on_hit:false], cross-component parallelism), big ones each get
   a dedicated work-stealing run (intra-component parallelism).

   Determinism: clean components are provably satisfied (equal content
   signature ⇒ equal verdict), so the first violating component overall
   is the first violating {e dirty} one; picking the lowest-component-
   index violation — each component's own winner being the first in BK
   emission order (claim-lock) or the path-minimum (steal), both equal
   to the serial order — reproduces the serial early-exit verdict and
   witness bit for bit. Budgets are enforced inside the per-component
   evaluator at clique granularity (the engine claim path here counts
   components, the wrong unit), at cumulative counts under one lock;
   a budget-cut component reports [Comp_unknown] and is never cached. *)
let run_scheduled ~jobs ~budget ~use_covers ~use_delta ~use_native ~use_steal
    ~on_event ~hooks session q plan counters components =
  let store = Session.store session in
  let obs = Session.obs session in
  let fd = Session.fd_graph session in
  let comps = Array.of_list components in
  let n = Array.length comps in
  (* Per component index: verdict plus its clique/world work counts. *)
  let results : (comp_verdict * int * int) option array = Array.make n None in
  (* Cache hits land in [results] but must not re-fire [comp_solved]. *)
  let from_cache = Array.make n false in
  let dirty = ref [] in
  for i = n - 1 downto 0 do
    match hooks.comp_clean ~index:i comps.(i) with
    | Some v ->
        results.(i) <- Some (v, 0, 0);
        from_cache.(i) <- true
    | None -> dirty := (i, comps.(i)) :: !dirty
  done;
  (* Covers runs serially up front (it probes the primary store): a
     component that cannot cover the query's constants is Satisfied
     without enumeration — cacheably so. *)
  let to_solve =
    List.filter
      (fun (i, c) ->
        let covers =
          (not use_covers)
          || Obs.span obs ~cat:"dcsat" "covers" (fun () ->
                 Covers.covers store c q)
        in
        if not covers then begin
          on_event (Component_skipped c);
          results.(i) <- Some (Comp_satisfied, 0, 0)
        end;
        covers)
      !dirty
  in
  let ordered =
    List.map
      (fun (_, _, i, c) -> (i, c))
      (List.sort
         (fun (s1, n1, i1, _) (s2, n2, i2, _) ->
           if s1 <> s2 then compare s2 s1 (* suspects first *)
           else if n1 <> n2 then Int.compare n2 n1 (* then largest *)
           else Int.compare i1 i2)
         (List.map
            (fun (i, c) ->
              (hooks.comp_suspect ~index:i c, List.length c, i, c))
            to_solve))
  in
  let big, small =
    List.partition
      (fun (_, c) -> steal_enabled ~use_steal ~jobs (List.length c))
      ordered
  in
  let entered = ref 0 in
  let lock = Mutex.create () in
  let locked f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
  in
  let cliques_acc = Atomic.make 0 and worlds_acc = Atomic.make 0 in
  let cliques_base = counters.cliques and worlds_base = counters.worlds in
  (* Work items reuse the component lists physically, so results are
     attributed back by physical equality — the same convention the
     engine's scoped-view cache relies on. *)
  let index_of =
    let assoc = List.map (fun (i, c) -> (c, i)) small in
    fun members ->
      let rec go = function
        | (c, i) :: tl -> if c == members then i else go tl
        | [] -> -1
      in
      go assoc
  in
  let eval_comp () =
    let clique_eval = eval_clique_factory ~use_delta ~use_native obs plan () in
    fun view members ->
      let i = index_of members in
      let sub, back = Undirected.induced fd.Fd_graph.graph members in
      let cut = ref false in
      let interrupt =
        if Engine.Budget.is_unlimited budget then None
        else
          Some
            (fun () ->
              let stop = locked (fun () -> Engine.Budget.interrupt budget ()) in
              if stop then cut := true;
              stop)
      in
      let next = Bcgraph.Bron_kerbosch.generator ?interrupt sub in
      let comp_cliques = ref 0 and comp_worlds = ref 0 in
      let rec go () =
        match next () with
        | None -> (
            if not !cut then Comp_satisfied
            else
              match locked (fun () -> Engine.Budget.tripped budget) with
              | Some reason -> Comp_unknown reason
              | None -> Comp_satisfied)
        | Some clique -> (
            let members' = List.map (fun j -> back.(j)) clique in
            incr comp_cliques;
            ignore (Atomic.fetch_and_add cliques_acc 1 : int);
            let tripped =
              locked (fun () ->
                  Engine.Budget.check budget
                    ~pulled:(cliques_base + Atomic.get cliques_acc)
                    ~evaluated:(worlds_base + Atomic.get worlds_acc))
            in
            match tripped with
            | Some reason -> Comp_unknown reason
            | None -> (
                locked (fun () -> on_event (Clique_found members'));
                let ev = clique_eval view members' in
                incr comp_worlds;
                ignore (Atomic.fetch_and_add worlds_acc 1 : int);
                locked (fun () ->
                    on_event
                      (World_evaluated
                         (ev.Engine.world, ev.Engine.violation <> None)));
                match ev.Engine.violation with
                | Some v ->
                    Comp_violated
                      { world = v.Engine.world; witness = v.Engine.witness }
                | None -> go ()))
      in
      let verdict = go () in
      locked (fun () ->
          if i >= 0 then
            results.(i) <- Some (verdict, !comp_cliques, !comp_worlds));
      {
        Engine.world = members;
        violation =
          (match verdict with
          | Comp_violated { world; witness } -> Some { Engine.world; witness }
          | Comp_satisfied | Comp_unknown _ -> None);
      }
  in
  if small <> [] then begin
    let remaining = ref small in
    let source () =
      match !remaining with
      | [] -> None
      | (_, c) :: tl ->
          remaining := tl;
          Some { Engine.Work_source.members = c; scope = Some c }
    in
    (* The run's own budget stays unlimited: exhaustion is enforced per
       clique inside [eval_comp] (components claimed after a trip settle
       to [Comp_unknown] on their first pull, in O(1)). *)
    ignore
      (Engine.run ~obs ~jobs ~store ~stop_on_hit:false
         ~replicate:(fun () -> Session.borrow_replica session)
         ~release:(Session.return_replica session)
         ~restrict:(Tagged_store.restrict store)
         ~source ~eval:eval_comp
         ~on_item:(fun members ->
           locked (fun () ->
               incr entered;
               on_event (Component_entered members)))
         ~on_evaluated:ignore ()
        : Engine.report);
    counters.cliques <- counters.cliques + Atomic.get cliques_acc;
    counters.worlds <- counters.worlds + Atomic.get worlds_acc;
    if Obs.enabled obs then begin
      Obs.add obs "dcsat.cliques" (Atomic.get cliques_acc);
      Obs.add obs "dcsat.worlds" (Atomic.get worlds_acc)
    end
  end;
  let eval = eval_clique_factory ~use_delta ~use_native obs plan in
  List.iter
    (fun (i, c) ->
      match Engine.Budget.tripped budget with
      | Some _ -> () (* unsolved: never cached; verdict resolves Unknown *)
      | None ->
          on_event (Component_entered c);
          incr entered;
          let before_cl = counters.cliques and before_w = counters.worlds in
          let violation, exhausted =
            run_steal ~jobs ~budget ~on_event ~scope:c session counters ~eval c
          in
          let verdict =
            match (violation, exhausted) with
            | Some (world, witness), _ -> Comp_violated { world; witness }
            | None, Some reason -> Comp_unknown reason
            | None, None -> Comp_satisfied
          in
          results.(i) <-
            Some
              ( verdict,
                counters.cliques - before_cl,
                counters.worlds - before_w ))
    big;
  counters.covered <- counters.covered + !entered;
  Array.iteri
    (fun i r ->
      match r with
      | Some (verdict, _, _) when not from_cache.(i) ->
          hooks.comp_solved ~index:i comps.(i) verdict
      | Some _ | None -> ())
    results;
  let rec first_violation i =
    if i >= n then None
    else
      match results.(i) with
      | Some (Comp_violated { world; witness }, _, _) -> Some (world, witness)
      | _ -> first_violation (i + 1)
  in
  (first_violation 0, Engine.Budget.tripped budget)

let brute_force ?(jobs = 1) ?(budget = Engine.Budget.unlimited)
    ?(use_delta = true) ?(use_native = true) session q =
  let t0 = Monotime.now () in
  let store = Session.store session in
  let saved = Tagged_store.world store in
  Fun.protect ~finally:(fun () -> Tagged_store.set_world store saved)
  @@ fun () ->
  let counters = fresh_counters () in
  let plan = Session.plan session q in
  let next = Poss.generator store in
  let source () =
    Option.map
      (fun w -> Engine.Work_source.plain (Bitset.to_list w))
      (next ())
  in
  let violation, exhausted =
    run_worlds ~jobs ~budget ~on_event:ignore ~count_cliques:false session
      counters
      ~eval:(eval_txs_factory ~use_delta ~use_native (Session.obs session) plan)
      source
  in
  finish ~t0 ~precheck:false counters (verdict_of ~violation ~exhausted)

let require_monotone q k =
  match Q.Monotone.analyze q with
  | Q.Monotone.Monotone -> k ()
  | Q.Monotone.Not_monotone reason -> Error (`Not_monotone reason)

let base_world_check ~use_delta ~use_native session counters plan =
  let store = Session.store session in
  let obs = Session.obs session in
  counters.worlds <- counters.worlds + 1;
  if Obs.enabled obs then Obs.add obs "dcsat.worlds" 1;
  let ev = eval_txs_factory ~use_delta ~use_native obs plan () store [] in
  Option.map
    (fun (v : Engine.violation) -> (v.Engine.world, v.witness))
    ev.Engine.violation

(* Restore the store's active world on every exit path: neither a
   refusal, nor a pre-check decision, nor a full enumeration may leave
   the session in a surprising world. *)
let with_world_restored session k =
  let store = Session.store session in
  let saved = Tagged_store.world store in
  Fun.protect ~finally:(fun () -> Tagged_store.set_world store saved) k

let naive ?(jobs = 1) ?(budget = Engine.Budget.unlimited) ?(use_precheck = true)
    ?(use_delta = true) ?(use_native = true) ?use_steal ?(on_event = ignore)
    session q =
  require_monotone q @@ fun () ->
  with_world_restored session @@ fun () ->
  let t0 = Monotime.now () in
  let counters = fresh_counters () in
  let plan = Session.plan session q in
  if use_precheck && precheck ~use_delta ~use_native session plan then begin
    on_event Precheck_decided;
    Ok (finish ~t0 ~precheck:true counters Satisfied)
  end
  else begin
    let store = Session.store session in
    let k = Tagged_store.tx_count store in
    let all = List.init k Fun.id in
    let eval =
      eval_clique_factory ~use_delta ~use_native (Session.obs session) plan
    in
    let violation, exhausted =
      if k = 0 then
        (base_world_check ~use_delta ~use_native session counters plan, None)
      else if steal_enabled ~use_steal ~jobs k then
        run_steal ~jobs ~budget ~on_event session counters ~eval all
      else
        run_worlds ~jobs ~budget ~on_event ~count_cliques:true session counters
          ~eval
          (clique_source ~budget session all)
    in
    Ok (finish ~t0 ~precheck:false counters (verdict_of ~violation ~exhausted))
  end

let opt ?(jobs = 1) ?(budget = Engine.Budget.unlimited) ?(use_precheck = true)
    ?(use_covers = true) ?(use_delta = true) ?(use_native = true) ?use_steal
    ?(on_event = ignore) ?comp_hooks session q =
  require_monotone q @@ fun () ->
  match q with
  | Q.Query.Aggregate _ -> Error `Not_connected
  | Q.Query.Boolean body ->
      if not (Q.Gaifman.is_connected body) then Error `Not_connected
      else
        with_world_restored session @@ fun () ->
        let t0 = Monotime.now () in
        let counters = fresh_counters () in
        let plan = Session.plan session q in
        if use_precheck && precheck ~use_delta ~use_native session plan then begin
          on_event Precheck_decided;
          Ok (finish ~t0 ~precheck:true counters Satisfied)
        end
        else begin
          let store = Session.store session in
          let k = Tagged_store.tx_count store in
          let violation, exhausted =
            if k = 0 then
              (base_world_check ~use_delta ~use_native session counters plan, None)
            else begin
              let obs = Session.obs session in
              let components =
                Obs.span obs ~cat:"dcsat" "ind_graph" (fun () ->
                    if use_delta then Session.ind_components session q
                    else
                      let graph =
                        Ind_graph.build store q (Session.ind_base_edges session)
                      in
                      Bcgraph.Components.of_graph graph)
              in
              counters.comps <- List.length components;
              if Obs.enabled obs then
                Obs.add obs "dcsat.components" (List.length components);
              on_event (Components_found (List.length components));
              match comp_hooks with
              | Some hooks ->
                  run_scheduled ~jobs ~budget ~use_covers ~use_delta
                    ~use_native ~use_steal ~on_event ~hooks session q plan
                    counters components
              | None ->
              let eval =
                eval_clique_factory ~use_delta ~use_native
                  (Session.obs session) plan
              in
              (* Components are processed in order, but big ones leave
                 the claim-lock pipeline for the work-stealing backend.
                 Runs of consecutive small components are batched through
                 one chained {!component_source} (per-component engine
                 joins would tax the many-tiny-components workloads), big
                 components each get a dedicated steal run; cumulative
                 counts feed every run's budget checks via [~counted],
                 so the budget sees one logical enumeration. *)
              let steal_comp c =
                steal_enabled ~use_steal ~jobs (List.length c)
              in
              let rec group = function
                | [] -> []
                | c :: rest when steal_comp c -> `Big c :: group rest
                | rest ->
                    let rec take acc = function
                      | c :: tl when not (steal_comp c) -> take (c :: acc) tl
                      | tl -> (List.rev acc, tl)
                    in
                    let small, tl = take [] rest in
                    `Batch small :: group tl
              in
              let run_group = function
                | `Batch comps ->
                    let before = counters.cliques in
                    let source, covered =
                      component_source ~use_covers ~budget ~on_event session q
                        comps
                    in
                    let result =
                      run_worlds ~jobs ~budget ~on_event ~count_cliques:true
                        session counters ~eval source
                    in
                    counters.covered <-
                      counters.covered
                      + covered ~pulled:(counters.cliques - before);
                    result
                | `Big comp ->
                    let covers =
                      (not use_covers)
                      || Obs.span obs ~cat:"dcsat" "covers" (fun () ->
                             Covers.covers store comp q)
                    in
                    if not covers then begin
                      on_event (Component_skipped comp);
                      (None, None)
                    end
                    else begin
                      on_event (Component_entered comp);
                      let before = counters.cliques in
                      let result =
                        run_steal ~jobs ~budget ~on_event ~scope:comp session
                          counters ~eval comp
                      in
                      if counters.cliques > before then
                        counters.covered <- counters.covered + 1;
                      result
                    end
              in
              let rec go = function
                | [] -> (None, Engine.Budget.tripped budget)
                | g :: rest -> (
                    match Engine.Budget.tripped budget with
                    | Some _ as ex -> (None, ex)
                    | None -> (
                        match run_group g with
                        | (Some _, _) as hit -> hit
                        | (None, Some _) as ex -> ex
                        | None, None -> go rest))
              in
              go (group components)
            end
          in
          Ok
            (finish ~t0 ~precheck:false counters
               (verdict_of ~violation ~exhausted))
        end
