(** The blockchain database triple [D = (R, I, T)] of Section 4:

    - [R], the {e current state} — the relations already accepted into the
      blockchain;
    - [I], integrity constraints with [R |= I];
    - [T], a finite set of pending insert transactions.

    The type is a snapshot: appending a transaction to the state or
    issuing a new pending transaction produces a new value (the underlying
    relations are shared, so this is cheap). *)

type t = private {
  state : Relational.Database.t;
  constraints : Relational.Constr.t list;
  pending : Pending.t array;  (** [pending.(i).id = i]. *)
}

val create :
  state:Relational.Database.t ->
  constraints:Relational.Constr.t list ->
  pending:(string * Relational.Tuple.t) list list ->
  ?labels:string list ->
  unit ->
  (t, string) result
(** Validates [R |= I] and re-ids the pending transactions densely.
    [labels], when given, must match [pending] in length. *)

val create_exn :
  state:Relational.Database.t ->
  constraints:Relational.Constr.t list ->
  pending:(string * Relational.Tuple.t) list list ->
  ?labels:string list ->
  unit ->
  t

val create_unchecked :
  state:Relational.Database.t ->
  constraints:Relational.Constr.t list ->
  pending:(string * Relational.Tuple.t) list list ->
  ?labels:string list ->
  unit ->
  t
(** Like {!create_exn} but skips the [R |= I] validation pass — a full
    scan of the state, prohibitive at paper-scale row counts. Only for
    trusted inputs: snapshots this process wrote, or generators whose
    output satisfies the constraints by construction. *)

val catalog : t -> Relational.Schema.t
val pending_count : t -> int
val fds : t -> Relational.Constr.fd list
val inds : t -> Relational.Constr.ind list

val constraint_profile : t -> [ `Key | `Fd | `Ind ] list
(** The Δ of the complexity results: which constraint types appear. *)

val with_pending :
  t -> ?label:string -> (string * Relational.Tuple.t) list -> t
(** Issue one more pending transaction (e.g. a hypothetical "dry run"
    transaction, Example 4). The state and existing transactions are
    shared. *)

val append_to_state : t -> int -> (t, string) result
(** Commit pending transaction [id] into the current state, provided the
    result satisfies the constraints; the transaction leaves [T]. This is
    one [→T,I] step of the can-append relation. The remaining pending
    transactions are re-identified densely. *)

val pp_summary : Format.formatter -> t -> unit
