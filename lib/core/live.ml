module R = Relational
module Q = Bcquery

(* --- per-(query, component) verdict cache -------------------------- *)

(* BCDB_LIVE_CACHE=0 disables the verdict cache for every check that
   does not pass an explicit [?use_cache]; anything else (including
   unset) enables it. The CI matrix crosses both values. *)
let cache_env = lazy (Sys.getenv_opt "BCDB_LIVE_CACHE")

let cache_default () =
  match Lazy.force cache_env with Some "0" -> false | _ -> true

(* Cache entries unreferenced for this many cache-eligible checks of
   their query are pruned — wide enough that an add-then-evict returning
   the mempool to a recent partition still hits. *)
let keep_window = 8

type tracked = {
  t_query : Q.Query.t;
  t_thetas : Q.Theta.t list;
      (* ΘI ∪ Θq — derived from the (fixed) constraint set and the query
         text, never from R or the pending rows: computed once. *)
  mutable t_comps : int list list;
  t_sat : (string, int) Hashtbl.t;
      (* signature → check stamp of the last hit/solve; presence means
         the component's verdict is Satisfied at that content. Survives
         id re-packing: a Satisfied verdict names no ids. *)
  t_viol : (string, int * Dcsat.comp_verdict) Hashtbl.t;
      (* signature + member ids → (stamp, violated verdict with
         witness). The world and witness name transaction ids AND are
         canonical only relative to the whole database, so this table
         is emptied on every mutation event; between events
         (back-to-back checks of an unchanged mempool) a violating
         component replays its witness verbatim. Unlike [t_sat], keys
         embed the member ids: two {e twin} components with identical
         content share a signature, and replaying one twin's verdict
         for the other would report the wrong ids. *)
  mutable t_suspect : string option;
      (* signature of the last violating component: scheduled first. *)
  mutable t_checks : int;
}

type cache_stats = {
  cache_hits : int;
  cache_misses : int;
  cache_dirty : int;
  cache_checks : int;
  cache_entries : int;
}

type t = {
  mutable db : Bcdb.t;
  mutable session : Session.t;
  mutable fd : Fd_graph.t;
  mutable ind_base : (int * int) list;
  mutable includable : bool array;
  mutable tracked : tracked list;
  mutable digests : string array;
      (* per pending transaction: content digest of its rows, computed
         once at arrival and spliced under removals — never recomputed,
         so one transaction's digest is stable across its lifetime. *)
  mutable epoch : int;
      (* Live's own monotone stamp of the confirmed state R, bumped on
         every confirm/append_state/reorg. Deliberately not
         [Database.generation]: that counts tail rows and resets when
         compaction empties the tails, so it cannot key a cache. *)
  mutable hits : int;
  mutable misses : int;
  mutable dirty : int;
  mutable checks : int;
}

(* Content digest of one pending transaction: its rows, sorted, so two
   row orderings of the same content digest equally. Two physically
   distinct but content-equal transactions may still digest differently
   (Marshal sharing); that only costs a spurious miss, never soundness. *)
let tx_digest tx =
  Digest.string (Marshal.to_string (List.sort compare tx.Pending.rows) [])

let all_digests pending = Array.map tx_digest pending

(* Order-independent content signature of one component: the two 64-bit
   halves of its members' digests, combined by wrapping addition —
   addition is commutative (ids shift under dense re-packing, content
   does not) and multiset-homomorphic (unlike xor, two content-equal
   members do not cancel) — plus the state epoch. Equal signature ⇒
   equal member-row multiset and equal R ⇒ equal per-component verdict
   (the factorization argument of Proposition 2: a component's verdict
   depends on nothing else). Probed every check for every component, so
   it must stay far cheaper than the covers probe it short-circuits. *)
let comp_signature t members =
  let a = ref 0L and b = ref 0L in
  List.iter
    (fun i ->
      let d = t.digests.(i) in
      a := Int64.add !a (String.get_int64_le d 0);
      b := Int64.add !b (String.get_int64_le d 8))
    members;
  Printf.sprintf "%Lx.%Lx.%d" !a !b t.epoch

(* Re-encode every relation of [state] into all-segment form (tails
   empty). [to_segment] is zero-cost for relations already in that form,
   so repeated compaction only pays for relations that actually grew.
   All-segment states make [Tagged_store.create] O(pending): the store
   adopts the segments as-is instead of re-encoding the whole state. *)
let compact state =
  let catalog = R.Database.catalog state in
  R.Database.of_segments catalog
    (List.map
       (fun r -> (r.R.Schema.name, R.Database.to_segment state r.R.Schema.name))
       (R.Schema.relations catalog))

(* [state] plus extra rows, compacted. Duplicates of existing state rows
   are dropped (relations are sets). *)
let compact_with state rows =
  let catalog = R.Database.catalog state in
  let tmp =
    R.Database.of_segments catalog
      (List.map
         (fun r -> (r.R.Schema.name, R.Database.to_segment state r.R.Schema.name))
         (R.Schema.relations catalog))
  in
  R.Database.insert_all tmp rows;
  compact tmp

let rebuild_db state db pending =
  Bcdb.create_unchecked ~state ~constraints:db.Bcdb.constraints
    ~pending:(List.map (fun tx -> tx.Pending.rows) pending)
    ~labels:(List.map (fun tx -> tx.Pending.label) pending)
    ()

let create ?(obs = Obs.null) db =
  let state = compact db.Bcdb.state in
  let db = rebuild_db state db (Array.to_list db.Bcdb.pending) in
  let session = Session.create ~obs db in
  Session.warm session;
  {
    db;
    session;
    fd = Session.fd_graph session;
    ind_base = Session.ind_base_edges session;
    includable = Session.includable session;
    tracked = [];
    digests = all_digests db.Bcdb.pending;
    epoch = 0;
    hits = 0;
    misses = 0;
    dirty = 0;
    checks = 0;
  }

let db t = t.db
let session t = t.session
let fd_graph t = t.fd
let ind_base_edges t = t.ind_base
let includable t = t.includable
let pending_count t = Array.length t.db.Bcdb.pending

let cache_stats t =
  {
    cache_hits = t.hits;
    cache_misses = t.misses;
    cache_dirty = t.dirty;
    cache_checks = t.checks;
    cache_entries =
      List.fold_left
        (fun acc tr -> acc + Hashtbl.length tr.t_sat + Hashtbl.length tr.t_viol)
        0 t.tracked;
  }

let find t label =
  let n = Array.length t.db.Bcdb.pending in
  let rec go i =
    if i >= n then None
    else if String.equal t.db.Bcdb.pending.(i).Pending.label label then Some i
    else go (i + 1)
  in
  go 0

let same_query q' q = q' == q || Stdlib.compare q' q = 0

let grouped_rows tx =
  List.map (fun rel -> (rel, Pending.rows_for tx rel)) (Pending.relations tx)

(* Drop edges incident to [id] and re-pack ids above it — the edge-set
   mirror of [Bcdb.create_unchecked]'s dense re-identification. *)
let remap_edges id edges =
  List.filter_map
    (fun (a, b) ->
      if a = id || b = id then None
      else
        let f x = if x > id then x - 1 else x in
        Some (f a, f b))
    edges

let splice arr id =
  Array.init
    (Array.length arr - 1)
    (fun i -> if i < id then arr.(i) else arr.(i + 1))

(* --- tx add ------------------------------------------------------- *)

let add t ?label rows =
  let db' = Bcdb.with_pending t.db ?label rows in
  let store = Session.store t.session in
  (* A permanent extension: the journal is deliberately dropped — the
     arrival is never rolled back (an eviction re-packs instead). *)
  ignore (Tagged_store.append_tx store db' : Tagged_store.journal);
  let session' = Session.extended t.session in
  let id = Array.length db'.Bcdb.pending - 1 in
  t.db <- db';
  t.session <- session';
  t.fd <- Session.fd_graph session';
  t.ind_base <- Session.ind_base_edges session';
  t.includable <- Session.includable session';
  t.digests <- Array.append t.digests [| tx_digest db'.Bcdb.pending.(id) |];
  (* Θ edges only ever appear on insert, so each tracked query's
     component partition is maintained by a union-find merge: the old
     partition plus the new node's incident Θ = ΘI ∪ Θq edges. Only the
     (possibly merged) component containing the new node changes
     content, so an add dirties exactly that one signature. *)
  List.iter
    (fun tr ->
      let incident = Ind_graph.edges_for_tx store tr.t_thetas id in
      let uf = Bcgraph.Union_find.create (id + 1) in
      List.iter
        (function
          | first :: rest ->
              List.iter (fun m -> Bcgraph.Union_find.union uf first m) rest
          | [] -> ())
        tr.t_comps;
      List.iter (fun (a, b) -> Bcgraph.Union_find.union uf a b) incident;
      let comps' = Bcgraph.Union_find.groups uf in
      Session.seed_components session' tr.t_query comps';
      tr.t_comps <- comps';
      (* Violated verdicts never survive a mutation, even of other
         components: a witness is canonical only relative to the whole
         database (plan choice and row order are global), so replaying
         one across any change would break bit-identity with a fresh
         solve. Satisfied verdicts carry no witness and stay. *)
      Hashtbl.reset tr.t_viol)
    t.tracked

(* --- removal events ------------------------------------------------ *)

let survivors pending id =
  Array.to_list pending |> List.filteri (fun i _ -> i <> id)

(* Scoped component rebuild after a removal: every part not containing
   [id] survives re-id'd — its content, hence its verdict-cache
   signature, is untouched — and only the part that lost the node is
   re-split, with its survivors' edges rediscovered through the store's
   indexes. A removal dirties exactly the component it leaves. *)
let retrack_after_removal t id =
  let store = Session.store t.session in
  let n = Array.length t.db.Bcdb.pending in
  List.iter
    (fun tr ->
      let rest, survivors = Bcgraph.Components.remove_node tr.t_comps id in
      let parts =
        match survivors with
        | [] -> []
        | _ ->
            let member = Array.make n false in
            List.iter (fun m -> member.(m) <- true) survivors;
            let edges =
              List.concat_map
                (fun m ->
                  List.filter
                    (fun (a, b) -> member.(a) && member.(b))
                    (Ind_graph.edges_for_tx store tr.t_thetas m))
                survivors
            in
            Bcgraph.Components.split_members ~n survivors edges
      in
      let comps' = Bcgraph.Components.merge rest parts in
      Session.seed_components t.session tr.t_query comps';
      tr.t_comps <- comps';
      (* Ids re-packed (and the database mutated): cached violated
         verdicts name stale ids and a witness canonical for the old
         database. The satisfied table survives — its verdicts name no
         ids and its signatures are content-based. *)
      Hashtbl.reset tr.t_viol)
    t.tracked

(* Node validity and includability against a {e changed} state: one
   indexed batch check per survivor, through the plain database source
   (the state is all-segment, so lookups hit segment indexes). *)
let install_after_state_change t db' ~conflicts ~ind_base =
  let src = R.Database.source db'.Bcdb.state in
  let fd_constraints =
    List.map (fun f -> R.Constr.Fd f) (Bcdb.fds db')
  in
  let node_ok =
    Array.map
      (fun tx -> R.Check.batch_consistent src fd_constraints (grouped_rows tx))
      db'.Bcdb.pending
  in
  let includable =
    Array.map
      (fun tx ->
        R.Check.batch_consistent src db'.Bcdb.constraints (grouped_rows tx))
      db'.Bcdb.pending
  in
  let fd = Fd_graph.of_parts ~node_ok ~conflicts in
  let session' =
    Session.reseed t.session ~fd_graph:fd ~ind_base_edges:ind_base ~includable
      db'
  in
  t.db <- db';
  t.session <- session';
  t.fd <- fd;
  t.ind_base <- ind_base;
  t.includable <- includable

let evict t label =
  match find t label with
  | None -> Error (Printf.sprintf "evict: no pending transaction %S" label)
  | Some id ->
      (* R is untouched: validity, surviving conflicts, ΘI edges and
         includability all carry over — only ids re-pack. *)
      let db' = rebuild_db t.db.Bcdb.state t.db (survivors t.db.Bcdb.pending id) in
      let fd = Fd_graph.remove t.fd id in
      let ind_base = remap_edges id t.ind_base in
      let includable = splice t.includable id in
      let session' =
        Session.reseed t.session ~fd_graph:fd ~ind_base_edges:ind_base
          ~includable db'
      in
      t.db <- db';
      t.session <- session';
      t.fd <- fd;
      t.ind_base <- ind_base;
      t.includable <- includable;
      t.digests <- splice t.digests id;
      (* Removal can split only the component it leaves: re-split that
         one, keep every other part (and its cached verdict). *)
      retrack_after_removal t id;
      Ok ()

let confirm t label =
  match find t label with
  | None -> Error (Printf.sprintf "confirm: no pending transaction %S" label)
  | Some id ->
      let tx = t.db.Bcdb.pending.(id) in
      let state = compact_with t.db.Bcdb.state tx.Pending.rows in
      let db' = rebuild_db state t.db (survivors t.db.Bcdb.pending id) in
      (* Pairwise conflicts and Θ edges depend only on pending rows:
         re-id them. Validity/includability consult R: recompute. *)
      let conflicts = remap_edges id t.fd.Fd_graph.conflicts in
      let ind_base = remap_edges id t.ind_base in
      install_after_state_change t db' ~conflicts ~ind_base;
      t.digests <- splice t.digests id;
      (* R changed: every signature embeds the epoch, so the whole
         verdict cache is conservatively dirty — but the partition
         itself is maintained like an evict's. *)
      t.epoch <- t.epoch + 1;
      retrack_after_removal t id;
      Ok ()

let append_state t rows =
  let state = compact_with t.db.Bcdb.state rows in
  let db' = rebuild_db state t.db (Array.to_list t.db.Bcdb.pending) in
  let conflicts = t.fd.Fd_graph.conflicts in
  let ind_base = t.ind_base in
  install_after_state_change t db' ~conflicts ~ind_base;
  t.epoch <- t.epoch + 1;
  (* Ids did not move and Θ edges ignore R: tracked components hold. *)
  List.iter
    (fun tr -> Session.seed_components t.session tr.t_query tr.t_comps)
    t.tracked

let reset t db =
  let state = compact db.Bcdb.state in
  let db' = rebuild_db state db (Array.to_list db.Bcdb.pending) in
  let session' = Session.reseed t.session db' in
  Session.warm session';
  t.db <- db';
  t.session <- session';
  t.fd <- Session.fd_graph session';
  t.ind_base <- Session.ind_base_edges session';
  t.includable <- Session.includable session';
  t.digests <- all_digests db'.Bcdb.pending;
  (* Reorg: conservatively dirty everything — tracking (and with it the
     per-query verdict caches) restarts from scratch. *)
  t.epoch <- t.epoch + 1;
  t.tracked <- []

(* --- checks -------------------------------------------------------- *)

let track t q =
  match List.find_opt (fun tr -> same_query tr.t_query q) t.tracked with
  | Some tr -> tr
  | None ->
      let comps = Session.ind_components t.session q in
      let thetas =
        Q.Theta.of_inds (Bcdb.inds t.db) @ Q.Theta.of_query (Q.Query.body q)
      in
      let tr =
        {
          t_query = q;
          t_thetas = thetas;
          t_comps = comps;
          t_sat = Hashtbl.create 64;
          t_viol = Hashtbl.create 8;
          t_suspect = None;
          t_checks = 0;
        }
      in
      t.tracked <- tr :: t.tracked;
      tr

let components t q = (track t q).t_comps

(* Per-check hook closures over one tracked query. Signatures are
   memoized per component index for the duration of the check — the
   clean probe, the suspect probe and the solved callback all need
   them. *)
let make_hooks t tr =
  let obs = Session.obs t.session in
  tr.t_checks <- tr.t_checks + 1;
  t.checks <- t.checks + 1;
  let sigs : (int, string) Hashtbl.t = Hashtbl.create 32 in
  let signature index members =
    match Hashtbl.find_opt sigs index with
    | Some s -> s
    | None ->
        let s = comp_signature t members in
        Hashtbl.add sigs index s;
        s
  in
  let hit () =
    t.hits <- t.hits + 1;
    if Obs.enabled obs then Obs.add obs "live.comp_cache_hit" 1
  in
  (* Violated entries are keyed by signature {e and} member ids: twin
     components (identical content, distinct transactions) share a
     signature, and a Satisfied verdict transfers between them — but a
     Violated one names ids, so each twin must replay only its own. *)
  let viol_key s members =
    s ^ "#" ^ String.concat "," (List.map string_of_int members)
  in
  let comp_clean ~index members =
    let s = signature index members in
    if Hashtbl.mem tr.t_sat s then begin
      Hashtbl.replace tr.t_sat s tr.t_checks;
      hit ();
      Some Dcsat.Comp_satisfied
    end
    else
      let vk = viol_key s members in
      match Hashtbl.find_opt tr.t_viol vk with
      | Some (_, v) ->
          Hashtbl.replace tr.t_viol vk (tr.t_checks, v);
          hit ();
          Some v
      | None ->
          t.misses <- t.misses + 1;
          if Obs.enabled obs then Obs.add obs "live.comp_cache_miss" 1;
          None
  in
  let comp_suspect ~index members =
    match tr.t_suspect with
    | Some s -> String.equal s (signature index members)
    | None -> false
  in
  let comp_solved ~index members verdict =
    let s = signature index members in
    t.dirty <- t.dirty + 1;
    if Obs.enabled obs then Obs.add obs "live.comp_dirty" 1;
    match verdict with
    | Dcsat.Comp_satisfied -> Hashtbl.replace tr.t_sat s tr.t_checks
    | Dcsat.Comp_violated _ ->
        Hashtbl.replace tr.t_viol (viol_key s members) (tr.t_checks, verdict);
        tr.t_suspect <- Some s
    | Dcsat.Comp_unknown _ -> ()
  in
  { Dcsat.comp_clean; comp_suspect; comp_solved }

let prune tr =
  if tr.t_checks mod keep_window = 0 then begin
    Hashtbl.filter_map_inplace
      (fun _ stamp ->
        if tr.t_checks - stamp > keep_window then None else Some stamp)
      tr.t_sat;
    Hashtbl.filter_map_inplace
      (fun _ ((stamp, _) as entry) ->
        if tr.t_checks - stamp > keep_window then None else Some entry)
      tr.t_viol
  end

let check ?(jobs = 1) ?timeout_s ?max_worlds ?(use_delta = true) ?use_native
    ?use_steal ?use_cache t q =
  let budget =
    match (timeout_s, max_worlds) with
    | None, None -> None
    | _ -> Some (Engine.Budget.create ?timeout_s ?max_worlds ())
  in
  (* A tractable-decided query never reaches the component machinery:
     skip both the seeding and the cache bookkeeping. *)
  if Tractable.decides t.db q then
    Solver.solve ~jobs ?budget ~use_delta ?use_native ?use_steal t.session q
  else begin
    let use_cache =
      match use_cache with Some b -> b | None -> cache_default ()
    in
    (* The cache only applies where OptDCSat will actually run — the
       component factorization is what makes per-component verdicts
       reusable. Naive/brute fallbacks check without hooks. Budgeted
       (admission-controlled) requests also bypass it: a cached verdict
       would answer where the budget-tripped solve must return
       [Unknown], breaking cache-on/off bit-identity. *)
    let cacheable =
      use_cache
      && Option.is_none budget
      &&
      match q with
      | Q.Query.Boolean body -> Q.Gaifman.is_connected body
      | Q.Query.Aggregate _ -> false
    in
    let tr = if use_delta || cacheable then Some (track t q) else None in
    (* Seeding the session's component cache is a [track] side effect,
       so the solver's delta path answers from the maintained
       partition. *)
    let comp_hooks =
      match tr with
      | Some tr when cacheable -> Some (make_hooks t tr)
      | _ -> None
    in
    let result =
      Solver.solve ~jobs ?budget ~use_delta ?use_native ?use_steal ?comp_hooks
        t.session q
    in
    (match tr with Some tr when cacheable -> prune tr | _ -> ());
    result
  end
