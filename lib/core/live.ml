module R = Relational
module Q = Bcquery

type t = {
  mutable db : Bcdb.t;
  mutable session : Session.t;
  mutable fd : Fd_graph.t;
  mutable ind_base : (int * int) list;
  mutable includable : bool array;
  mutable comps : (Q.Query.t * int list list) list;
      (* per tracked query; dropped wholesale on any removal event *)
}

(* Re-encode every relation of [state] into all-segment form (tails
   empty). [to_segment] is zero-cost for relations already in that form,
   so repeated compaction only pays for relations that actually grew.
   All-segment states make [Tagged_store.create] O(pending): the store
   adopts the segments as-is instead of re-encoding the whole state. *)
let compact state =
  let catalog = R.Database.catalog state in
  R.Database.of_segments catalog
    (List.map
       (fun r -> (r.R.Schema.name, R.Database.to_segment state r.R.Schema.name))
       (R.Schema.relations catalog))

(* [state] plus extra rows, compacted. Duplicates of existing state rows
   are dropped (relations are sets). *)
let compact_with state rows =
  let catalog = R.Database.catalog state in
  let tmp =
    R.Database.of_segments catalog
      (List.map
         (fun r -> (r.R.Schema.name, R.Database.to_segment state r.R.Schema.name))
         (R.Schema.relations catalog))
  in
  R.Database.insert_all tmp rows;
  compact tmp

let rebuild_db state db pending =
  Bcdb.create_unchecked ~state ~constraints:db.Bcdb.constraints
    ~pending:(List.map (fun tx -> tx.Pending.rows) pending)
    ~labels:(List.map (fun tx -> tx.Pending.label) pending)
    ()

let create ?(obs = Obs.null) db =
  let state = compact db.Bcdb.state in
  let db = rebuild_db state db (Array.to_list db.Bcdb.pending) in
  let session = Session.create ~obs db in
  Session.warm session;
  {
    db;
    session;
    fd = Session.fd_graph session;
    ind_base = Session.ind_base_edges session;
    includable = Session.includable session;
    comps = [];
  }

let db t = t.db
let session t = t.session
let fd_graph t = t.fd
let ind_base_edges t = t.ind_base
let includable t = t.includable
let pending_count t = Array.length t.db.Bcdb.pending

let find t label =
  let n = Array.length t.db.Bcdb.pending in
  let rec go i =
    if i >= n then None
    else if String.equal t.db.Bcdb.pending.(i).Pending.label label then Some i
    else go (i + 1)
  in
  go 0

let same_query q' q = q' == q || Stdlib.compare q' q = 0

let grouped_rows tx =
  List.map (fun rel -> (rel, Pending.rows_for tx rel)) (Pending.relations tx)

(* Drop edges incident to [id] and re-pack ids above it — the edge-set
   mirror of [Bcdb.create_unchecked]'s dense re-identification. *)
let remap_edges id edges =
  List.filter_map
    (fun (a, b) ->
      if a = id || b = id then None
      else
        let f x = if x > id then x - 1 else x in
        Some (f a, f b))
    edges

let splice arr id =
  Array.init
    (Array.length arr - 1)
    (fun i -> if i < id then arr.(i) else arr.(i + 1))

(* --- tx add ------------------------------------------------------- *)

let add t ?label rows =
  let db' = Bcdb.with_pending t.db ?label rows in
  let store = Session.store t.session in
  (* A permanent extension: the journal is deliberately dropped — the
     arrival is never rolled back (an eviction re-packs instead). *)
  ignore (Tagged_store.append_tx store db' : Tagged_store.journal);
  let session' = Session.extended t.session in
  let id = Array.length db'.Bcdb.pending - 1 in
  t.db <- db';
  t.session <- session';
  t.fd <- Session.fd_graph session';
  t.ind_base <- Session.ind_base_edges session';
  t.includable <- Session.includable session';
  (* Θ edges only ever appear on insert, so each tracked query's
     component partition is maintained by a union-find merge: the old
     partition plus the new node's incident Θ = ΘI ∪ Θq edges. *)
  t.comps <-
    List.map
      (fun (q, comps) ->
        let thetas =
          Q.Theta.of_inds (Bcdb.inds db')
          @ Q.Theta.of_query (Q.Query.body q)
        in
        let incident = Ind_graph.edges_for_tx store thetas id in
        let uf = Bcgraph.Union_find.create (id + 1) in
        List.iter
          (function
            | first :: rest ->
                List.iter (fun m -> Bcgraph.Union_find.union uf first m) rest
            | [] -> ())
          comps;
        List.iter (fun (a, b) -> Bcgraph.Union_find.union uf a b) incident;
        let comps' = Bcgraph.Union_find.groups uf in
        Session.seed_components session' q comps';
        (q, comps'))
      t.comps

(* --- removal events ------------------------------------------------ *)

let survivors pending id =
  Array.to_list pending |> List.filteri (fun i _ -> i <> id)

(* Node validity and includability against a {e changed} state: one
   indexed batch check per survivor, through the plain database source
   (the state is all-segment, so lookups hit segment indexes). *)
let install_after_state_change t db' ~conflicts ~ind_base =
  let src = R.Database.source db'.Bcdb.state in
  let fd_constraints =
    List.map (fun f -> R.Constr.Fd f) (Bcdb.fds db')
  in
  let node_ok =
    Array.map
      (fun tx -> R.Check.batch_consistent src fd_constraints (grouped_rows tx))
      db'.Bcdb.pending
  in
  let includable =
    Array.map
      (fun tx ->
        R.Check.batch_consistent src db'.Bcdb.constraints (grouped_rows tx))
      db'.Bcdb.pending
  in
  let fd = Fd_graph.of_parts ~node_ok ~conflicts in
  let session' =
    Session.reseed t.session ~fd_graph:fd ~ind_base_edges:ind_base ~includable
      db'
  in
  t.db <- db';
  t.session <- session';
  t.fd <- fd;
  t.ind_base <- ind_base;
  t.includable <- includable

let evict t label =
  match find t label with
  | None -> Error (Printf.sprintf "evict: no pending transaction %S" label)
  | Some id ->
      (* R is untouched: validity, surviving conflicts, ΘI edges and
         includability all carry over — only ids re-pack. *)
      let db' = rebuild_db t.db.Bcdb.state t.db (survivors t.db.Bcdb.pending id) in
      let fd = Fd_graph.remove t.fd id in
      let ind_base = remap_edges id t.ind_base in
      let includable = splice t.includable id in
      let session' =
        Session.reseed t.session ~fd_graph:fd ~ind_base_edges:ind_base
          ~includable db'
      in
      t.db <- db';
      t.session <- session';
      t.fd <- fd;
      t.ind_base <- ind_base;
      t.includable <- includable;
      (* Removal can split a component: rebuild on next check. *)
      t.comps <- [];
      Ok ()

let confirm t label =
  match find t label with
  | None -> Error (Printf.sprintf "confirm: no pending transaction %S" label)
  | Some id ->
      let tx = t.db.Bcdb.pending.(id) in
      let state = compact_with t.db.Bcdb.state tx.Pending.rows in
      let db' = rebuild_db state t.db (survivors t.db.Bcdb.pending id) in
      (* Pairwise conflicts and Θ edges depend only on pending rows:
         re-id them. Validity/includability consult R: recompute. *)
      let conflicts = remap_edges id t.fd.Fd_graph.conflicts in
      let ind_base = remap_edges id t.ind_base in
      install_after_state_change t db' ~conflicts ~ind_base;
      t.comps <- [];
      Ok ()

let append_state t rows =
  let state = compact_with t.db.Bcdb.state rows in
  let db' = rebuild_db state t.db (Array.to_list t.db.Bcdb.pending) in
  let conflicts = t.fd.Fd_graph.conflicts in
  let ind_base = t.ind_base in
  install_after_state_change t db' ~conflicts ~ind_base;
  (* Ids did not move and Θ edges ignore R: tracked components hold. *)
  List.iter (fun (q, comps) -> Session.seed_components t.session q comps) t.comps

let reset t db =
  let state = compact db.Bcdb.state in
  let db' = rebuild_db state db (Array.to_list db.Bcdb.pending) in
  let session' = Session.reseed t.session db' in
  Session.warm session';
  t.db <- db';
  t.session <- session';
  t.fd <- Session.fd_graph session';
  t.ind_base <- Session.ind_base_edges session';
  t.includable <- Session.includable session';
  t.comps <- []

(* --- checks -------------------------------------------------------- *)

let components t q =
  match List.find_opt (fun (q', _) -> same_query q' q) t.comps with
  | Some (_, comps) -> comps
  | None ->
      let comps = Session.ind_components t.session q in
      t.comps <- (q, comps) :: t.comps;
      comps

let check ?(jobs = 1) ?timeout_s ?max_worlds ?(use_delta = true) ?use_native
    ?use_steal t q =
  if use_delta then
    (* Seeds the session's component cache as a side effect, so the
       solver's delta path answers from the maintained partition. *)
    ignore (components t q : int list list);
  let budget =
    match (timeout_s, max_worlds) with
    | None, None -> None
    | _ -> Some (Engine.Budget.create ?timeout_s ?max_worlds ())
  in
  Solver.solve ~jobs ?budget ~use_delta ?use_native ?use_steal t.session q
