module R = Relational
module Undirected = Bcgraph.Undirected

type t = {
  graph : Undirected.t;
  node_ok : bool array;
  conflicts : (int * int) list;
}

let conflict_count t = List.length t.conflicts

(* Assemble the graph from its two ingredients. The conflict relation is
   closed over: edges connect exactly the valid pairs not listed, and
   pairs involving an invalid node are dropped from the kept list (they
   carry no information — invalid nodes are isolated regardless). *)
let of_parts ~node_ok ~conflicts =
  let k = Array.length node_ok in
  let conflict = Hashtbl.create (max 16 (2 * List.length conflicts)) in
  List.iter
    (fun (i, j) ->
      Hashtbl.replace conflict (if i < j then (i, j) else (j, i)) ())
    conflicts;
  let graph = Undirected.create k in
  for i = 0 to k - 1 do
    if node_ok.(i) then
      for j = i + 1 to k - 1 do
        if node_ok.(j) && not (Hashtbl.mem conflict (i, j)) then
          Undirected.add_edge graph i j
      done
  done;
  let conflicts =
    Hashtbl.fold
      (fun (i, j) () acc ->
        if node_ok.(i) && node_ok.(j) then (i, j) :: acc else acc)
      conflict []
    |> List.sort compare
  in
  { graph; node_ok; conflicts }

(* Drop one node and densely re-id the rest (ids above [j] shift down by
   one, matching [Bcdb.create_unchecked] after an eviction). Node
   validity and pairwise conflicts of the survivors are untouched — both
   depend only on R and the transactions' own rows — so only the
   edge bitsets are re-assembled, O(k²) bit sets and no row work. *)
let remove g j =
  let k = Array.length g.node_ok in
  if j < 0 || j >= k then invalid_arg "Fd_graph.remove: no such node";
  let node_ok =
    Array.init (k - 1) (fun i -> if i < j then g.node_ok.(i) else g.node_ok.(i + 1))
  in
  let remap i = if i < j then i else i - 1 in
  let conflicts =
    List.filter_map
      (fun (a, b) -> if a = j || b = j then None else Some (remap a, remap b))
      g.conflicts
  in
  of_parts ~node_ok ~conflicts

let node_valid store id =
  let db = Tagged_store.db store in
  let fd_constraints = List.map (fun f -> R.Constr.Fd f) (Bcdb.fds db) in
  let saved = Tagged_store.world store in
  Tagged_store.base_only store;
  let ok =
    R.Check.batch_consistent (Tagged_store.source store) fd_constraints
      (Tagged_store.tx_rows store id)
  in
  Tagged_store.set_world store saved;
  ok

(* Pending transactions whose rows collide with transaction [id] on some
   fd (same lhs projection, different rhs), found through the store's
   indexes over R ∪ T. *)
let conflicts_of store id =
  let db = Tagged_store.db store in
  let saved = Tagged_store.world store in
  Tagged_store.all_visible store;
  let src = Tagged_store.source store in
  let tx = db.Bcdb.pending.(id) in
  let acc = Hashtbl.create 8 in
  List.iter
    (fun (f : R.Constr.fd) ->
      List.iter
        (fun tuple ->
          let binds = List.map (fun col -> (col, tuple.(col))) f.R.Constr.lhs in
          let rhs = R.Tuple.project tuple f.R.Constr.rhs in
          src.R.Source.lookup f.R.Constr.frel binds
          |> Seq.iter (fun other ->
                 if not (R.Tuple.equal (R.Tuple.project other f.R.Constr.rhs) rhs)
                 then
                   List.iter
                     (fun origin ->
                       if origin >= 0 && origin <> id then
                         Hashtbl.replace acc origin ())
                     (Tagged_store.origins store f.R.Constr.frel other)))
        (Pending.rows_for tx f.R.Constr.frel))
    (Bcdb.fds db);
  Tagged_store.set_world store saved;
  Hashtbl.fold (fun j () l -> j :: l) acc [] |> List.sort Int.compare

let extend g store =
  let k = Tagged_store.tx_count store in
  let id = k - 1 in
  if Array.length g.node_ok <> id then
    invalid_arg "Fd_graph.extend: store is not one transaction ahead";
  let ok = node_valid store id in
  let conflicting = conflicts_of store id in
  let graph = Undirected.extend g.graph 1 in
  let node_ok = Array.append g.node_ok [| ok |] in
  if ok then
    for j = 0 to id - 1 do
      if node_ok.(j) && not (List.mem j conflicting) then
        Undirected.add_edge graph id j
    done;
  let conflicts =
    g.conflicts
    @ List.filter_map
        (fun j -> if node_ok.(j) && ok then Some (j, id) else None)
        conflicting
  in
  { graph; node_ok; conflicts }

let build store =
  let db = Tagged_store.db store in
  let fds = Bcdb.fds db in
  let fd_constraints = List.map (fun f -> R.Constr.Fd f) fds in
  let k = Tagged_store.tx_count store in
  (* Node validity: R ∪ T_i satisfies the fds. *)
  let saved = Tagged_store.world store in
  Tagged_store.base_only store;
  let base_src = Tagged_store.source store in
  let node_ok =
    Array.init k (fun id ->
        R.Check.batch_consistent base_src fd_constraints
          (Tagged_store.tx_rows store id))
  in
  Tagged_store.set_world store saved;
  (* Pairwise conflicts: bucket pending rows by fd-lhs projection. *)
  let conflict = Hashtbl.create 64 in
  let record i j =
    let key = if i < j then (i, j) else (j, i) in
    Hashtbl.replace conflict key ()
  in
  List.iter
    (fun (f : R.Constr.fd) ->
      let buckets = R.Tuple.Tbl.create 256 in
      Array.iter
        (fun (tx : Pending.t) ->
          List.iter
            (fun tuple ->
              let lhs = R.Tuple.project tuple f.R.Constr.lhs in
              let rhs = R.Tuple.project tuple f.R.Constr.rhs in
              let prev =
                Option.value (R.Tuple.Tbl.find_opt buckets lhs) ~default:[]
              in
              R.Tuple.Tbl.replace buckets lhs ((tx.Pending.id, rhs) :: prev))
            (Pending.rows_for tx f.R.Constr.frel))
        db.Bcdb.pending;
      R.Tuple.Tbl.iter
        (fun _ entries ->
          let rec pairs = function
            | [] -> ()
            | (i, rhs_i) :: rest ->
                List.iter
                  (fun (j, rhs_j) ->
                    if i <> j && not (R.Tuple.equal rhs_i rhs_j) then record i j)
                  rest;
                pairs rest
          in
          pairs entries)
        buckets)
    fds;
  let graph = Undirected.create k in
  for i = 0 to k - 1 do
    if node_ok.(i) then
      for j = i + 1 to k - 1 do
        if node_ok.(j) && not (Hashtbl.mem conflict (i, j)) then
          Undirected.add_edge graph i j
      done
  done;
  let conflicts =
    Hashtbl.fold
      (fun (i, j) () acc ->
        if node_ok.(i) && node_ok.(j) then (i, j) :: acc else acc)
      conflict []
    |> List.sort compare
  in
  { graph; node_ok; conflicts }
