(** The solver engine: a pull-based stream of candidate worlds
    ({!Work_source}) fanned out over a pluggable execution backend.

    The per-world work of NaiveDCSat/OptDCSat — materialize the maximal
    world of a clique with [getMaximal], evaluate [q] over it — is
    independent across work items, so it parallelizes naturally once
    each worker owns a private {!Tagged_store} replica (the snapshot-per-
    worker idea of block-parallel blockchain databases). Two backends:

    - [Sequential] (the [jobs <= 1] path) runs items inline on the
      primary store — or, for scoped items, on a component view built
      with [restrict] — bit-for-bit the pre-engine behaviour, including
      event order and statistics;
    - [Parallel n] runs [n] workers: the calling domain plus [n - 1]
      helpers from a persistent pool of parked domains (spawning a
      domain costs milliseconds, often more than a whole solve, so
      helpers are reused across runs and sleep on a condition variable
      in between). Full replicas are borrowed lazily via [replicate] the
      first time a worker meets an unscoped item (and handed back
      through [release] after the join); for scoped items each worker
      materializes its own component view with [restrict] under the
      engine lock, cached across consecutive items of the same
      component — no store is ever shared between domains. An [Atomic]
      first-violation short-circuit stops claiming.

    {b Determinism contract.} Work items are claimed in source order and
    numbered; once a violation is found, no further items are handed out
    (unclaimed items all have higher indexes), in-flight items finish,
    and the lowest-index violation wins. Hence both backends return the
    same [satisfied]/witness answer, and the reported work counts (items
    pulled, worlds evaluated — clamped to the winning index) coincide.
    Only the {e order} of [on_item]/[on_evaluated] callbacks is
    backend-dependent: the parallel backend serializes them under a lock
    but interleaves completions. *)

module Work_source : sig
  type item = { members : int list; scope : int list option }
  (** A candidate transaction set, optionally tagged with the member
      list of the component all its worlds live inside. Workers turn
      the scope into a component-sized store view via the [restrict]
      parameter of {!run} and cache the view while consecutive items
      carry the physically-equal scope list — sources must reuse one
      list instance per component for the cache to hit. *)

  type t = unit -> item option
  (** A stateful puller of candidate transaction sets. Pulls happen
      under the engine lock in the parallel backend, so a source may
      safely touch the primary store (e.g. Covers tests). *)

  val plain : int list -> item
  val empty : t
  val of_list : int list list -> t

  val of_cliques : ?scope:int list -> Bcgraph.Undirected.t -> back:int array -> t
  (** Stream the graph's maximal cliques ({!Bcgraph.Bron_kerbosch.generator}),
      mapping node ids through [back] (as produced by
      {!Bcgraph.Undirected.induced}), each tagged with [scope]. *)
end

type violation = {
  world : int list;  (** Transactions of the violating possible world. *)
  witness : (string * Relational.Value.t) list option;
}

type evaluation = { world : int list; violation : violation option }

type report = {
  hit : violation option;  (** Lowest-index violation, if any. *)
  pulled : int;  (** Work items handed out (≤ winning index + 1). *)
  evaluated : int;  (** Worlds evaluated (counted up to the winner). *)
}

type backend = Sequential | Parallel of int

val backend_of_jobs : int -> backend
(** [jobs <= 1] is [Sequential]; larger values are clamped to a sane
    domain-pool bound. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val run :
  ?obs:Obs.t ->
  jobs:int ->
  store:Tagged_store.t ->
  replicate:(unit -> Tagged_store.t) ->
  ?release:(Tagged_store.t -> unit) ->
  ?restrict:(int list -> Tagged_store.t) ->
  source:Work_source.t ->
  eval:(Tagged_store.t -> int list -> evaluation) ->
  on_item:(int list -> unit) ->
  on_evaluated:(evaluation -> unit) ->
  unit ->
  report
(** Drain [source], evaluating each item with [eval] on [store] (or a
    per-component [restrict] view) sequentially, or on worker
    replicas/views in parallel, stopping at the first violation per the
    determinism contract. [eval] must use only the store it is handed.
    [obs] (default {!Obs.null}) records per-worker spans ([worker],
    [claim], [join], cat ["engine"]) and per-item evaluation times (the
    ["engine.busy_s"] histogram) — each worker domain writes to its own
    buffer, so instrumentation adds no cross-domain contention.
    [replicate] and [restrict] are called lazily, under the engine lock
    in the parallel backend (they read the primary store); every store
    [replicate] returns is passed to [release] after the workers have
    joined (the default [release] drops it). When [restrict] is absent,
    scoped items fall back to the unscoped path. [on_item] fires when an
    item is claimed, [on_evaluated] after it is evaluated. *)
