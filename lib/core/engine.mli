(** The solver engine: a pull-based stream of candidate worlds
    ({!Work_source}) fanned out over a pluggable execution backend.

    The per-world work of NaiveDCSat/OptDCSat — materialize the maximal
    world of a clique with [getMaximal], evaluate [q] over it — is
    independent across work items, so it parallelizes naturally once
    each worker owns a private {!Tagged_store} replica (the snapshot-per-
    worker idea of block-parallel blockchain databases). Two backends:

    - [Sequential] (the [jobs <= 1] path) runs items inline on the
      primary store — or, for scoped items, on a component view built
      with [restrict] — bit-for-bit the pre-engine behaviour, including
      event order and statistics;
    - [Parallel n] runs [n] workers: the calling domain plus [n - 1]
      helpers from a persistent pool of parked domains (spawning a
      domain costs milliseconds, often more than a whole solve, so
      helpers are reused across runs and sleep on a condition variable
      in between). Full replicas are borrowed lazily via [replicate] the
      first time a worker meets an unscoped item (and handed back
      through [release] after the join); for scoped items each worker
      materializes its own component view with [restrict] under the
      engine lock, cached across consecutive items of the same
      component — no store is ever shared between domains. An [Atomic]
      first-violation short-circuit stops claiming.

    {b Determinism contract.} Work items are claimed in source order and
    numbered; once a violation is found, no further items are handed out
    (unclaimed items all have higher indexes), in-flight items finish,
    and the lowest-index violation wins. Hence both backends return the
    same [satisfied]/witness answer, and the reported work counts (items
    pulled, worlds evaluated — clamped to the winning index) coincide.
    Only the {e order} of [on_item]/[on_evaluated] callbacks is
    backend-dependent: the parallel backend serializes them under a lock
    but interleaves completions. *)

module Work_source : sig
  type item = { members : int list; scope : int list option }
  (** A candidate transaction set, optionally tagged with the member
      list of the component all its worlds live inside. Workers turn
      the scope into a component-sized store view via the [restrict]
      parameter of {!run} and cache the view while consecutive items
      carry the physically-equal scope list — sources must reuse one
      list instance per component for the cache to hit. *)

  type t = unit -> item option
  (** A stateful puller of candidate transaction sets. Pulls happen
      under the engine lock in the parallel backend, so a source may
      safely touch the primary store (e.g. Covers tests). *)

  val plain : int list -> item
  val empty : t
  val of_list : int list list -> t

  val of_cliques :
    ?interrupt:(unit -> bool) ->
    ?scope:int list ->
    Bcgraph.Undirected.t ->
    back:int array ->
    t
  (** Stream the graph's maximal cliques ({!Bcgraph.Bron_kerbosch.generator}),
      mapping node ids through [back] (as produced by
      {!Bcgraph.Undirected.induced}), each tagged with [scope].
      [interrupt] is forwarded to the generator: when it fires (e.g. a
      {!Budget} deadline between yields), the stream ends early. *)
end

(** Cooperative cancellation and resource budgets. A budget bounds one
    engine run by wall-clock deadline ({!Monotime}), worlds evaluated,
    and/or work items pulled. It is checked on the claim path — the
    single point both backends funnel work through — and its
    {!Budget.interrupt} hook is polled inside
    {!Bcgraph.Bron_kerbosch.generator} branching steps, so a deadline
    also cuts an exponentially long gap between two clique yields.
    Enforcement is cooperative and item-granular: an evaluation in
    flight is never interrupted, so [max_worlds] can be overshot by up
    to [jobs - 1] in-flight items. A budget is single-run: tripping is
    sticky (the first reason wins) and is reported in
    {!type-report.exhausted}. {!Budget.unlimited} never trips and may be
    shared freely. *)
module Budget : sig
  type reason = Deadline | Max_worlds | Max_pulled

  type t

  val unlimited : t

  val create :
    ?timeout_s:float -> ?max_worlds:int -> ?max_pulled:int -> unit -> t
  (** [timeout_s] is a wall-clock allowance relative to {e now}
      (monotonic clock), converted to an absolute deadline immediately —
      create the budget right before the run it bounds. Raises
      [Invalid_argument] on a negative timeout. *)

  val is_unlimited : t -> bool

  val check : t -> pulled:int -> evaluated:int -> reason option
  (** Trip (sticky) if a limit is hit; return the tripped reason. Called
      by the engine on the claim path, under the engine lock in the
      parallel backend. *)

  val interrupt : t -> unit -> bool
  (** The between-yields cancellation hook for clique generators: [true]
      once the budget has tripped (only the deadline can trip here). *)

  val tripped : t -> reason option
  val reason_name : reason -> string
  val pp_reason : Format.formatter -> reason -> unit
end

type violation = {
  world : int list;  (** Transactions of the violating possible world. *)
  witness : (string * Relational.Value.t) list option;
}

type evaluation = { world : int list; violation : violation option }

type report = {
  hit : violation option;  (** Lowest-index violation, if any. *)
  pulled : int;  (** Work items handed out (≤ winning index + 1). *)
  evaluated : int;  (** Worlds evaluated (counted up to the winner). *)
  exhausted : Budget.reason option;
      (** The run stopped early because its budget tripped. [hit] takes
          precedence: a violation found before exhaustion is a sound
          counterexample; absence of a violation with
          [exhausted = Some _] means the enumeration was incomplete and
          the question is {e unknown}. *)
}

type backend = Sequential | Parallel of int

val backend_of_jobs : int -> backend
(** [jobs <= 1] is [Sequential]; larger values are clamped to a sane
    domain-pool bound. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val run :
  ?obs:Obs.t ->
  ?budget:Budget.t ->
  ?counted:int * int ->
  ?stop_on_hit:bool ->
  jobs:int ->
  store:Tagged_store.t ->
  replicate:(unit -> Tagged_store.t) ->
  ?release:(Tagged_store.t -> unit) ->
  ?restrict:(int list -> Tagged_store.t) ->
  source:Work_source.t ->
  eval:(unit -> Tagged_store.t -> int list -> evaluation) ->
  on_item:(int list -> unit) ->
  on_evaluated:(evaluation -> unit) ->
  unit ->
  report
(** Drain [source], evaluating each item with [eval] on [store] (or a
    per-component [restrict] view) sequentially, or on worker
    replicas/views in parallel, stopping at the first violation per the
    determinism contract. [eval] is a {e factory}: each worker calls it
    once at start-up and evaluates every item it claims with the
    returned function, so an evaluator may carry per-worker mutable
    state (e.g. {!Inc_eval}'s world caches) without cross-domain
    sharing; the factory itself must be safe to call from any worker
    domain. The returned evaluator must use only the store it is
    handed.
    [obs] (default {!Obs.null}) records per-worker spans ([worker],
    [claim], [join], cat ["engine"]) and per-item evaluation times (the
    ["engine.busy_s"] histogram) — each worker domain writes to its own
    buffer, so instrumentation adds no cross-domain contention.
    [replicate] and [restrict] are called lazily, under the engine lock
    in the parallel backend (they read the primary store); every store
    [replicate] returns is passed to [release] after the workers have
    joined (the default [release] drops it). When [restrict] is absent,
    scoped items fall back to the unscoped path. [on_item] fires when an
    item is claimed, [on_evaluated] after it is evaluated.

    [budget] (default {!Budget.unlimited}) bounds the run; when it trips,
    no further items are claimed, in-flight items finish, and the report
    carries [exhausted = Some reason]. [counted] (default [(0, 0)]) is a
    [(pulled, evaluated)] base added to this run's own counts in every
    budget check, so a caller that splits one logical enumeration over
    several consecutive engine runs (OptDCSat's per-component batches)
    keeps cumulative budget accounting.

    [stop_on_hit] (default [true]) selects whether a recorded violation
    stops further claiming. With [stop_on_hit:false] the run drains the
    whole source regardless of violations — the dirty-component
    scheduler uses this so every dirty component gets (re)solved and
    cached in one pass — and the report carries the {e lowest-claim-index}
    violation with unclamped full counts. Budget exhaustion still stops
    claiming either way.

    {b Exception safety.} If [eval] (or [replicate]/[restrict]) raises in
    any backend, the exception propagates to the caller: the parallel
    backend records the first failure, stops claiming, waits for every
    worker to finish, releases all borrowed replicas through [release],
    and re-raises with the original backtrace after the join — the
    helper-domain pool stays reusable for subsequent runs. *)

val run_cliques_steal :
  ?obs:Obs.t ->
  ?budget:Budget.t ->
  ?counted:int * int ->
  jobs:int ->
  replicate:(unit -> Tagged_store.t) ->
  ?release:(Tagged_store.t -> unit) ->
  ?restrict:(int list -> Tagged_store.t) ->
  ?scope:int list ->
  graph:Bcgraph.Undirected.t ->
  back:int array ->
  eval:(unit -> Tagged_store.t -> int list -> evaluation) ->
  on_item:(int list -> unit) ->
  on_evaluated:(evaluation -> unit) ->
  unit ->
  report
(** Work-stealing clique backend: evaluate the maximal cliques of
    [graph] (node ids mapped through [back], as from
    {!Bcgraph.Undirected.induced}) with the enumeration itself spread
    over [jobs] workers via {!Bcgraph.Bron_kerbosch.Par} — no single
    producer behind a claim lock, so one giant dense component no
    longer serializes the solve. [jobs <= 1] still runs the pool with
    one worker (exactly the sequential DFS).

    Every item shares [scope]: workers evaluate on a private [restrict]
    view of that component, or on borrowed full replicas ([replicate] /
    [release]) when [scope] or [restrict] is absent — the primary store
    is never evaluated on and never mutated during the run.

    {b Determinism.} Claimed cliques carry their canonical search-tree
    path; the winning violation is the path-minimum one (= the first in
    sequential enumeration order), later subtrees are pruned via
    {!Bcgraph.Bron_kerbosch.Par.prune}, and on a violated run the
    pulled/evaluated counts are recovered exactly by
    {!Bcgraph.Bron_kerbosch.count_upto} — so verdict, witness and stats
    all match the sequential backend's. Counts of a budget-tripped run
    without a violation are whatever the workers reached, as with the
    claim-lock backend. [budget] is enforced on each worker's claim
    path ([counted] bases included) and its deadline hook interrupts
    the pool between yields.

    [obs] records the same spans as {!run} plus ["bk.steal"] /
    ["bk.subtree"] counters (steal operations, root subtrees claimed).
    Exception safety matches {!run}: the first failure is re-raised
    after the join, borrowed replicas are released, the pool of parked
    domains stays reusable. *)
