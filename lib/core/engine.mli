(** The solver engine: a pull-based stream of candidate worlds
    ({!Work_source}) fanned out over a pluggable execution backend.

    The per-world work of NaiveDCSat/OptDCSat — materialize the maximal
    world of a clique with [getMaximal], evaluate [q] over it — is
    independent across work items, so it parallelizes naturally once
    each worker owns a private {!Tagged_store} replica (the snapshot-per-
    worker idea of block-parallel blockchain databases). Two backends:

    - [Sequential] (the [jobs <= 1] path) runs items inline on the
      primary store — bit-for-bit the pre-engine behaviour, including
      event order and statistics;
    - [Parallel n] spawns [n] OCaml 5 domains, each owning a replica
      created by [replicate], with an [Atomic] first-violation
      short-circuit.

    {b Determinism contract.} Work items are claimed in source order and
    numbered; once a violation is found, no further items are handed out
    (unclaimed items all have higher indexes), in-flight items finish,
    and the lowest-index violation wins. Hence both backends return the
    same [satisfied]/witness answer, and the reported work counts (items
    pulled, worlds evaluated — clamped to the winning index) coincide.
    Only the {e order} of [on_item]/[on_evaluated] callbacks is
    backend-dependent: the parallel backend serializes them under a lock
    but interleaves completions. *)

module Work_source : sig
  type t = unit -> int list option
  (** A stateful puller of candidate transaction sets. Pulls happen
      under the engine lock in the parallel backend, so a source may
      safely touch the primary store (e.g. Covers tests). *)

  val empty : t
  val of_list : int list list -> t

  val of_cliques : Bcgraph.Undirected.t -> back:int array -> t
  (** Stream the graph's maximal cliques ({!Bcgraph.Bron_kerbosch.generator}),
      mapping node ids through [back] (as produced by
      {!Bcgraph.Undirected.induced}). *)
end

type violation = {
  world : int list;  (** Transactions of the violating possible world. *)
  witness : (string * Relational.Value.t) list option;
}

type evaluation = { world : int list; violation : violation option }

type report = {
  hit : violation option;  (** Lowest-index violation, if any. *)
  pulled : int;  (** Work items handed out (≤ winning index + 1). *)
  evaluated : int;  (** Worlds evaluated (counted up to the winner). *)
}

type backend = Sequential | Parallel of int

val backend_of_jobs : int -> backend
(** [jobs <= 1] is [Sequential]; larger values are clamped to a sane
    domain-pool bound. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val run :
  jobs:int ->
  store:Tagged_store.t ->
  replicate:(unit -> Tagged_store.t) ->
  source:Work_source.t ->
  eval:(Tagged_store.t -> int list -> evaluation) ->
  on_item:(int list -> unit) ->
  on_evaluated:(evaluation -> unit) ->
  report
(** Drain [source], evaluating each item with [eval] on [store]
    (sequential) or on worker replicas from [replicate] (parallel),
    stopping at the first violation per the determinism contract.
    [eval] must use only the store it is handed. [on_item] fires when an
    item is claimed, [on_evaluated] after it is evaluated. *)
