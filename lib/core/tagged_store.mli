(** The evaluation store: every tuple of the current state and of every
    pending transaction is loaded once, tagged with its origins, and
    indexed. A {e possible world} is then just a visibility bitset over
    transaction ids — switching worlds costs nothing, and the exposed
    {!Relational.Source.t} filters scans, index lookups and membership
    tests by the active visibility.

    This is the in-memory analogue of the paper's implementation trick
    (Section 6.3) of augmenting every Postgres table with a boolean
    [current] column that marks the tuples of the world under
    consideration.

    A tuple may be contributed both by the base state and by pending
    transactions (or by several transactions); it is stored once with the
    set of its origins, so that worlds are genuine {e sets} of tuples and
    aggregate queries never double-count.

    The base state lives in an immutable columnar {!Relational.Segment.t}
    per relation (unboxed [Int]/[Float] columns, dictionary-encoded
    otherwise): off-heap, invisible to the GC, and shared zero-copy by
    every replica. Only the pending tail is per-store mutable state. *)

type t

val create : Bcdb.t -> t
val db : t -> Bcdb.t

val clone : t -> t
(** An independent replica over the same database: the base segments
    (and their indexes) are shared zero-copy — cloning costs O(pending),
    {e independent of base size} — while the visibility bitset, pending
    entry arrays and pending index tables are copied. Switching worlds
    or building indexes on the clone never affects the parent and vice
    versa — this is what lets one worker per replica evaluate worlds
    concurrently ({!Engine}). Clone while no {!append_tx} journal is
    outstanding. *)

val restrict : t -> int list -> t
(** [restrict t members] is a component-scoped view: the (shared,
    always-visible) base segment plus only the pending tuples
    contributed by a transaction in [members]. Transaction ids keep
    their meaning, so worlds, [tx_rows] and clique members need no
    translation. For every world [w ⊆ members], scans, lookups and
    membership tests agree exactly with [t] under [w] — tuples outside
    the view are invisible in such worlds anyway. Cloning a scoped view
    costs O(|view|), which is what lets OptDCSat workers replicate a
    component-sized slice instead of the whole database. Do not
    {!append_tx} to a scoped view. [selectivity] and [cardinality]
    answer with the parent's pending counts (frozen at restriction
    time), so the join orders the evaluator picks — and therefore the
    witness it returns — are identical to evaluating on the full
    store. The view starts with no visible transactions. *)

val tx_count : t -> int

val uid : t -> int
(** A process-unique id minted at creation ({!create}/{!clone}/
    {!restrict} each get a fresh one). Lets weak tables keyed by
    physical store identity hash in O(1) instead of walking the deep
    mutable structure. *)

val pending_epoch : t -> int
(** Monotone stamp of the store's pending-set shape: bumped by every
    {!append_tx} and {!undo}. Two reads returning the same value
    bracket a window in which the loaded pending segment did not
    change. Clones and scoped views start from the parent's value. *)

val state_generation : t -> int
(** The {!Relational.Database.generation} stamp of the database value's
    current state [R]. The store loads [R] once at {!create}; if this
    stamp has moved since, the state was mutated in place behind the
    store's back and the store (and anything cached against it) is
    stale — see {!Session} for the rebuild-on-churn guard. *)

val set_obs : t -> Obs.t -> unit
(** Attach a recorder; the store bumps visibility-cache hit/miss,
    world-epoch-switch and base-probe dictionary hit/miss
    (["segment.dict_hits"]/["segment.dict_miss"]) counters on it
    (defaults to {!Obs.null}, whose per-call cost is one branch).
    {!clone} and {!restrict} inherit the parent's recorder. *)

val base_bytes : t -> int
(** Estimated resident bytes of the base segments (column payloads).
    Replicas made by {!clone}/{!restrict} share these bytes — sum the
    figure across replicas and you count the same memory repeatedly. *)

val world : t -> Bcgraph.Bitset.t
(** The active visibility (a copy; mutating it does not affect the
    store). *)

val set_world : t -> Bcgraph.Bitset.t -> unit
(** Make exactly the given transactions visible (base state is always
    visible). Capacity must equal {!tx_count}. *)

val set_world_list : t -> int list -> unit
val all_visible : t -> unit
(** The (usually inconsistent) instance [R ∪ T] used by the monotone
    pre-check. *)

val base_only : t -> unit

val source : t -> Relational.Source.t
(** A live view: reflects subsequent [set_world] calls. *)

type world_delta = {
  added_txs : int;  (** Transactions visible now but not in [prev]. *)
  removed_txs : int;  (** Transactions visible in [prev] but not now. *)
  added : (string -> Relational.Tuple.t list) Lazy.t;
      (** Per-relation tuples visible in the {e current} world but not
          in [prev] — exact (origin sets are consulted, so a tuple also
          contributed by a surviving transaction is not reported) and
          deduplicated. Materialized on first force over the added
          transactions only, O(|Δ| rows); force it before the store's
          pending segment changes ({!append_tx}/{!undo}). *)
}

val world_delta : t -> prev:Bcgraph.Bitset.t -> world_delta
(** Compare the active world against a saved [prev] bitset (as returned
    by {!world}, possibly many switches ago — this is {e not} tied to
    the last switch). Transaction-level counts are computed eagerly in
    O(k / word_size); the added-tuple sets are lazy. Capacity of [prev]
    must equal {!tx_count}. *)

val tx_rows : t -> int -> (string * Relational.Tuple.t list) list
(** Rows of one pending transaction, grouped by relation. *)

val origins : t -> string -> Relational.Tuple.t -> int list
(** All origins of a tuple ([-1] is the base state); [[]] if the store
    has never seen the tuple. *)

val to_database : t -> Relational.Database.t
(** Materialize the active world as a standalone database (testing and
    debugging). *)

(** {2 Hypothetical extension}

    Dry runs (Example 4: "the user hypothetically adds her transaction")
    extend the store in place with one more pending transaction —
    sharing every loaded tuple and index — and later roll it back. Used
    by {!Dry_run}; while a journal is outstanding, other consumers of
    the store must not rely on the transaction count. *)

type journal

val append_tx : t -> Bcdb.t -> journal
(** [append_tx t db'] where [db'] is [db t] plus exactly one more pending
    transaction: loads that transaction's rows (id = old {!tx_count}) and
    switches the store to [db']. Returns the rollback journal. *)

val undo : t -> journal -> unit
(** Roll back the matching {!append_tx}. Journals must be undone in LIFO
    order. Restores the previously active world. *)
