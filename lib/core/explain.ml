module Q = Bcquery

type report = {
  query : string;
  monotone : bool;
  monotone_reason : string option;
  connected : bool;
  complexity : Complexity.verdict;
  strategy : string;
  outcome : Dcsat.outcome;
  trace : Dcsat.event list;
  trace_truncated : bool;
}

let run ?jobs ?budget ?(max_events = 50) session q =
  let monotone, monotone_reason =
    match Q.Monotone.analyze q with
    | Q.Monotone.Monotone -> (true, None)
    | Q.Monotone.Not_monotone reason -> (false, Some reason)
  in
  let connected =
    match q with
    | Q.Query.Boolean body -> Q.Gaifman.is_connected body
    | Q.Query.Aggregate _ -> false
  in
  let complexity = Complexity.classify (Session.db session) q in
  let events = ref [] in
  let count = ref 0 in
  let truncated = ref false in
  let on_event e =
    incr count;
    if !count <= max_events then events := e :: !events else truncated := true
  in
  let traced =
    (* Prefer the same order as the dispatcher, but instrument the paths
       that support tracing. *)
    match Tractable.solve session q with
    | Some (outcome, case) ->
        Ok (outcome, "tractable: " ^ Tractable.case_name case)
    | None -> (
        match Dcsat.opt ?jobs ?budget ~on_event session q with
        | Ok outcome -> Ok (outcome, "OptDCSat")
        | Error `Not_connected -> (
            match Dcsat.naive ?jobs ?budget ~on_event session q with
            | Ok outcome -> Ok (outcome, "NaiveDCSat")
            | Error refusal ->
                Error (Format.asprintf "%a" Dcsat.pp_refusal refusal))
        | Error (`Not_monotone _) ->
            if Tagged_store.tx_count (Session.store session) > 24 then
              Error
                "not monotone and too many pending transactions to enumerate"
            else Ok (Dcsat.brute_force ?jobs ?budget session q, "brute force"))
  in
  Result.map
    (fun (outcome, strategy) ->
      {
        query = Q.Query.to_string q;
        monotone;
        monotone_reason;
        connected;
        complexity;
        strategy;
        outcome;
        trace = List.rev !events;
        trace_truncated = !truncated;
      })
    traced

let pp_ids ~labels ppf ids =
  Format.fprintf ppf "{%s}" (String.concat ", " (List.map labels ids))

let pp_event ~labels ppf = function
  | Dcsat.Precheck_decided ->
      Format.pp_print_string ppf
        "pre-check: q is false over R ∪ T, hence over every world"
  | Dcsat.Components_found n -> Format.fprintf ppf "%d components in G^{q,ind}" n
  | Dcsat.Component_skipped ids ->
      Format.fprintf ppf "component %a skipped (constants not covered)"
        (pp_ids ~labels) ids
  | Dcsat.Component_entered ids ->
      Format.fprintf ppf "exploring component %a" (pp_ids ~labels) ids
  | Dcsat.Clique_found ids ->
      Format.fprintf ppf "maximal clique %a" (pp_ids ~labels) ids
  | Dcsat.World_evaluated (ids, value) ->
      Format.fprintf ppf "world R ∪ %a: q is %b" (pp_ids ~labels) ids value

let pp ~labels ppf r =
  Format.fprintf ppf "@[<v>query: %s@ " r.query;
  Format.fprintf ppf "monotone: %b%s@ " r.monotone
    (match r.monotone_reason with Some why -> " (" ^ why ^ ")" | None -> "");
  Format.fprintf ppf "connected: %b@ " r.connected;
  Format.fprintf ppf "complexity class: %a@ " Complexity.pp r.complexity;
  Format.fprintf ppf "strategy: %s@ " r.strategy;
  Format.fprintf ppf "result: %s@ "
    (match r.outcome.Dcsat.verdict with
    | Dcsat.Satisfied -> "SATISFIED (holds in every world)"
    | Dcsat.Violated _ -> "UNSATISFIED (violated in some world)"
    | Dcsat.Unknown reason ->
        Printf.sprintf
          "UNKNOWN (budget exhausted: %s; enumeration incomplete)"
          (Engine.Budget.reason_name reason));
  if r.trace <> [] then begin
    Format.fprintf ppf "trace:@ ";
    List.iter (fun e -> Format.fprintf ppf "  %a@ " (pp_event ~labels) e) r.trace;
    if r.trace_truncated then Format.fprintf ppf "  ... (truncated)@ "
  end;
  Format.fprintf ppf "@]"

let to_string db r =
  let labels i = db.Bcdb.pending.(i).Pending.label in
  Format.asprintf "%a" (pp ~labels) r
