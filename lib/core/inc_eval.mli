(** Incremental query evaluation across possible worlds.

    The innermost loop of the solver evaluates one denial constraint
    over a stream of worlds that differ by a handful of transactions
    (consecutive Bron–Kerbosch cliques share large prefixes) and — over
    a session's lifetime — revisits the same worlds again and again
    (repeated solves, the pre-check's [R ∪ T] instance). A {!plan}
    compiles the constraint body once; an {!type-t} evaluator then keeps a
    small per-(store, plan) cache of recently evaluated worlds in a
    process-wide weak registry keyed by store identity, so the history
    survives as long as the store does (session stores and pooled
    replicas across runs; component-scoped views until dropped).

    Evaluating the current world:

    - a cached world at transaction-level distance 0 is a {e replay}:
      the verdict (and canonical witness / aggregate accumulator) is
      returned without touching the data;
    - otherwise, for a monotone (negation-free) body, the nearest
      cached compatible world seeds a semi-naive delta search
      ({!Bcquery.Eval.run_delta}) over the Δ-tuples
      ({!Tagged_store.world_delta}): boolean bodies need a cached
      {e no-match} world (sound even with removals — the current world
      is contained in cached ∪ Δ); aggregate accumulators additionally
      need an insert-only delta, and stop early when θ already holds
      and inserts can only push past it (Count/Max with [>], Min with
      [<]);
    - anything else — negated atoms, Cntd, an oversized delta, a
      first-seen world — falls back to the full backtracking join.

    Delta-found violations re-derive their witness with the full search,
    so both paths return the identical canonical assignment and the
    engine's cross-backend determinism contract is preserved.

    Obs counters: [eval.full] (full evaluations), [eval.delta] (replays
    and delta evaluations), [eval.delta_tuples] (Δ-tuples seeded),
    [eval.compiled_native] (full evaluations served by the
    closure-compiled plan).
    These are {e not} deterministic across backends — each store carries
    its own history. *)

type plan
(** A query compiled once for repeated evaluation: the lowered body
    ({!Bcquery.Eval.compiled}), its monotonicity, and the aggregate
    shape. Immutable; share freely across domains (cache it per session
    with {!Session.plan}). *)

val plan : Bcquery.Query.t -> plan
val query : plan -> Bcquery.Query.t

val body : plan -> Bcquery.Eval.compiled
(** The compiled CQ body (for direct {!Bcquery.Eval} use). *)

type t
(** An evaluator instance: one per engine worker (cheap — the world
    cache lives with the store, not the evaluator). Not domain-safe;
    each worker builds its own. *)

val evaluator : ?use_delta:bool -> ?use_native:bool -> ?obs:Obs.t -> plan -> t
(** [use_delta] (default true) turns the world cache and delta paths
    off entirely — every evaluation is a full search (the baseline the
    benchmarks compare against). [use_native] (default true) selects the
    closure-compiled plan ({!Bcquery.Eval.compile_native}) for full
    boolean evaluations and incremental-aggregate accumulation when the
    body is inside the tier; violated worlds re-derive their witness
    with the interpreted search, so answers and witnesses are identical
    either way. Counted as [eval.compiled_native] per native
    evaluation. [obs] (default {!Obs.null}) receives the [eval.*]
    counters. *)

val eval_world : t -> Tagged_store.t -> int list -> Engine.evaluation
(** Switch the store to the world of the given transactions and
    evaluate the plan over it, as an engine evaluation (with canonical
    witness on a boolean violation). *)

val eval_bool : t -> Tagged_store.t -> bool
(** Evaluate over the store's current world without switching it (the
    pre-check's [R ∪ T] instance). *)

val maximal_world : t -> Tagged_store.t -> int list -> Bcgraph.Bitset.t
(** The maximal world closing over the given clique members
    ({!Get_maximal}), memoized in the same per-(store, plan) cache —
    the closure starts from the empty world, so the result depends only
    on the members and the database, and repeated solves revisit the
    same cliques. With [use_delta:false] this is exactly
    {!Get_maximal.run_list}. *)
