module R = Relational

(* The lazily-built solver inputs, grouped so that a staleness rebuild
   ([revalidate]) swaps them together with the store they were computed
   against. *)
type caches = {
  fd_graph : Fd_graph.t Lazy.t;
  ind_base_edges : (int * int) list Lazy.t;
  includable : bool array Lazy.t;
}

type t = {
  db : Bcdb.t;
  mutable store : Tagged_store.t;
  mutable state_gen : int;
      (* R's generation stamp when [store]/[caches] were (re)built;
         mismatch means the state was mutated in place since. *)
  obs : Obs.t ref;
      (* a ref, not a value: lazies and pooled replicas must see the
         recorder active when they run, not the one at session creation *)
  mutable caches : caches;
  valid_lock : Mutex.t;  (* guards the store/state_gen/caches swap *)
  pool : Tagged_store.t list ref;  (* idle full replicas, guarded by pool_lock *)
  pool_lock : Mutex.t;
  plans : (Bcquery.Query.t * Inc_eval.plan) list ref;
      (* compiled-plan cache, guarded by plans_lock *)
  plans_lock : Mutex.t;
  components : (Bcdb.t * Bcquery.Query.t * int list list) list ref;
      (* ind-q-graph component cache, db-guarded, under components_lock *)
  components_lock : Mutex.t;
}

let compute_includable store constraints =
  let saved = Tagged_store.world store in
  Tagged_store.base_only store;
  let src = Tagged_store.source store in
  let result =
    Array.init (Tagged_store.tx_count store) (fun id ->
        R.Check.batch_consistent src constraints (Tagged_store.tx_rows store id))
  in
  Tagged_store.set_world store saved;
  result

let build_caches obs db store =
  {
    fd_graph =
      lazy (Obs.span !obs ~cat:"session" "fd_graph" (fun () -> Fd_graph.build store));
    ind_base_edges =
      lazy
        (Obs.span !obs ~cat:"session" "ind_base_edges" (fun () ->
             Ind_graph.base_edges store));
    includable =
      lazy
        (Obs.span !obs ~cat:"session" "includable" (fun () ->
             compute_includable store db.Bcdb.constraints));
  }

let create ?(obs = Obs.null) db =
  let store = Tagged_store.create db in
  let obs = ref obs in
  Tagged_store.set_obs store !obs;
  {
    db;
    store;
    state_gen = R.Database.generation db.Bcdb.state;
    obs;
    caches = build_caches obs db store;
    valid_lock = Mutex.create ();
    pool = ref [];
    pool_lock = Mutex.create ();
    plans = ref [];
    plans_lock = Mutex.create ();
    components = ref [];
    components_lock = Mutex.create ();
  }

(* In-place churn guard (the [serve] access pattern): the store snapshots
   R at creation, so a [Database.insert] on the session's own database
   between two solves leaves every derived structure stale while the
   physical database value — the old cache guard — is unchanged. The
   generation stamp catches exactly that; on mismatch the store and every
   R-dependent cache are rebuilt and pooled replicas dropped. Component
   entries stay keyed by database value; they are cleared too because ΘI
   edges consult R. *)
let revalidate t =
  if R.Database.generation t.db.Bcdb.state <> t.state_gen then begin
    Mutex.lock t.valid_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.valid_lock) @@ fun () ->
    let gen = R.Database.generation t.db.Bcdb.state in
    if gen <> t.state_gen then begin
      let store = Tagged_store.create t.db in
      Tagged_store.set_obs store !(t.obs);
      t.caches <- build_caches t.obs t.db store;
      t.store <- store;
      t.state_gen <- gen;
      Mutex.lock t.pool_lock;
      t.pool := [];
      Mutex.unlock t.pool_lock;
      Mutex.lock t.components_lock;
      t.components := [];
      Mutex.unlock t.components_lock
    end
  end

let db t = t.db

let store t =
  revalidate t;
  t.store

let obs t = !(t.obs)

let set_obs t obs =
  t.obs := obs;
  Tagged_store.set_obs t.store obs

(* One compiled plan per distinct query text per session: repeated
   solves (and every world of one solve) reuse it. Physical equality is
   the fast path — callers usually pass the same query value; the
   structural fallback catches re-parsed but identical constraints. *)
let plan t q =
  Mutex.lock t.plans_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.plans_lock) @@ fun () ->
  match
    List.find_opt (fun (q', _) -> q' == q || Stdlib.compare q' q = 0) !(t.plans)
  with
  | Some (_, p) -> p
  | None ->
      let p = Inc_eval.plan q in
      t.plans := (q, p) :: !(t.plans);
      p

let fd_graph t =
  revalidate t;
  Lazy.force t.caches.fd_graph

let ind_base_edges t =
  revalidate t;
  Lazy.force t.caches.ind_base_edges

(* Connected components of the ind-q-transaction graph, cached per
   query: the Θq edges are found by hashing pending rows with full
   projections, never through the store's active world, so repeated
   solves of one constraint reuse it. Entries are guarded by the
   database value they were computed against — a dry-run append/undo
   replaces it, and stale entries are pruned on the next insert —
   while in-place state churn is caught by {!revalidate} (ΘI edges
   consult R). *)
let ind_components t q =
  revalidate t;
  let db_now = Tagged_store.db t.store in
  Mutex.lock t.components_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.components_lock) @@ fun () ->
  match
    List.find_opt
      (fun (db', q', _) ->
        db' == db_now && (q' == q || Stdlib.compare q' q = 0))
      !(t.components)
  with
  | Some (_, _, comps) -> comps
  | None ->
      let graph = Ind_graph.build t.store q (Lazy.force t.caches.ind_base_edges) in
      let comps = Bcgraph.Components.of_graph graph in
      let live =
        List.filter (fun (db', _, _) -> db' == db_now) !(t.components)
      in
      t.components := (db_now, q, comps) :: live;
      comps

(* The live layer maintains per-query components itself (union-find merge
   on transaction arrival); this installs its result where the solver's
   delta path will find it, replacing any entry for the same query. *)
let seed_components t q comps =
  revalidate t;
  let db_now = Tagged_store.db t.store in
  Mutex.lock t.components_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.components_lock) @@ fun () ->
  let rest =
    List.filter
      (fun (db', q', _) ->
        db' == db_now && not (q' == q || Stdlib.compare q' q = 0))
      !(t.components)
  in
  t.components := (db_now, q, comps) :: rest

let includable t =
  revalidate t;
  Lazy.force t.caches.includable

let warm t =
  ignore (fd_graph t);
  ignore (ind_base_edges t);
  ignore (includable t)

(* Replica pooling: engine runs borrow full-store replicas and hand them
   back when the run finishes, so repeated solves on one session clone
   the store once per domain overall, not once per run. A pooled replica
   is only handed out while it still matches the session's database (a
   dry-run journal on the primary invalidates it — physical equality on
   the Bcdb value catches that; in-place churn empties the pool in
   [revalidate]). *)
let borrow_replica t =
  revalidate t;
  Mutex.lock t.pool_lock;
  let hit =
    match !(t.pool) with
    | r :: rest when Tagged_store.db r == Tagged_store.db t.store ->
        t.pool := rest;
        Some r
    | _ :: _ ->
        (* Stale pool (the database moved on): drop it wholesale. *)
        t.pool := [];
        None
    | [] -> None
  in
  Mutex.unlock t.pool_lock;
  let r = match hit with Some r -> r | None -> Tagged_store.clone t.store in
  (* Pooled replicas may predate the session's current recorder. *)
  Tagged_store.set_obs r !(t.obs);
  r

let return_replica t r =
  if Tagged_store.db r == Tagged_store.db t.store then begin
    Mutex.lock t.pool_lock;
    t.pool := r :: !(t.pool);
    Mutex.unlock t.pool_lock
  end

let replica t =
  revalidate t;
  (* Already-forced caches are shared by value (they are immutable once
     built); unforced ones are rebound to the replica's own store so a
     worker can never force a computation against the parent's store. *)
  let store = Tagged_store.clone t.store in
  let share forced fresh =
    if Lazy.is_val forced then Lazy.from_val (Lazy.force forced) else fresh
  in
  let fresh = build_caches t.obs t.db store in
  {
    db = t.db;
    store;
    state_gen = t.state_gen;
    obs = t.obs;
    caches =
      {
        fd_graph = share t.caches.fd_graph fresh.fd_graph;
        ind_base_edges = share t.caches.ind_base_edges fresh.ind_base_edges;
        includable = share t.caches.includable fresh.includable;
      };
    valid_lock = Mutex.create ();
    pool = ref [];
    pool_lock = Mutex.create ();
    (* Plans are immutable and query-keyed: share the parent's cache
       value-wise at replication time; the replica then grows its own.
       Component caches are db-guarded and the replica shares the same
       database value, so its snapshot stays valid too. *)
    plans = ref !(t.plans);
    plans_lock = Mutex.create ();
    components = ref !(t.components);
    components_lock = Mutex.create ();
  }

let extended t =
  let store = t.store in
  let db' = Tagged_store.db store in
  let id = Tagged_store.tx_count store - 1 in
  if Array.length db'.Bcdb.pending <> Array.length t.db.Bcdb.pending + 1 then
    invalid_arg "Session.extended: store is not one transaction ahead";
  let fd_graph =
    if Lazy.is_val t.caches.fd_graph then
      Lazy.from_val (Fd_graph.extend (Lazy.force t.caches.fd_graph) store)
    else lazy (Fd_graph.build store)
  in
  let ind_base_edges =
    if Lazy.is_val t.caches.ind_base_edges then
      Lazy.from_val
        (Lazy.force t.caches.ind_base_edges
        @ Ind_graph.edges_for_tx store
            (Bcquery.Theta.of_inds (Bcdb.inds db'))
            id)
    else lazy (Ind_graph.base_edges store)
  in
  let includable =
    if Lazy.is_val t.caches.includable then
      Lazy.from_val
        (let saved = Tagged_store.world store in
         Tagged_store.base_only store;
         let ok =
           R.Check.batch_consistent (Tagged_store.source store)
             db'.Bcdb.constraints
             (Tagged_store.tx_rows store id)
         in
         Tagged_store.set_world store saved;
         Array.append (Lazy.force t.caches.includable) [| ok |])
    else lazy (compute_includable store db'.Bcdb.constraints)
  in
  {
    db = db';
    store;
    state_gen = t.state_gen;
    obs = t.obs;
    caches = { fd_graph; ind_base_edges; includable };
    valid_lock = Mutex.create ();
    pool = ref [];
    pool_lock = Mutex.create ();
    plans = ref !(t.plans);
    plans_lock = Mutex.create ();
    (* The hypothetical transaction changes the ind-q graph: start
       empty (entries are keyed by the pre-extension database anyway). *)
    components = ref [];
    components_lock = Mutex.create ();
  }

(* The live layer maintains the fd graph, ΘI edges and includability
   itself (lib/core/live.ml); [reseed] lets it hand a new database value
   plus those pre-maintained structures to a fresh session without
   rebuilding them — only the store is reloaded (O(pending) when the
   state is all-segment) — while compiled plans carry over. *)
let reseed t ?fd_graph ?ind_base_edges ?includable db =
  let store = Tagged_store.create db in
  Tagged_store.set_obs store !(t.obs);
  let fresh = build_caches t.obs db store in
  let seeded v fallback =
    match v with Some x -> Lazy.from_val x | None -> fallback
  in
  {
    db;
    store;
    state_gen = R.Database.generation db.Bcdb.state;
    obs = t.obs;
    caches =
      {
        fd_graph = seeded fd_graph fresh.fd_graph;
        ind_base_edges = seeded ind_base_edges fresh.ind_base_edges;
        includable = seeded includable fresh.includable;
      };
    valid_lock = Mutex.create ();
    pool = ref [];
    pool_lock = Mutex.create ();
    plans = ref !(t.plans);
    plans_lock = Mutex.create ();
    components = ref [];
    components_lock = Mutex.create ();
  }
