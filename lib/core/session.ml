module R = Relational

type t = {
  db : Bcdb.t;
  store : Tagged_store.t;
  obs : Obs.t ref;
      (* a ref, not a value: lazies and pooled replicas must see the
         recorder active when they run, not the one at session creation *)
  fd_graph : Fd_graph.t Lazy.t;
  ind_base_edges : (int * int) list Lazy.t;
  includable : bool array Lazy.t;
  pool : Tagged_store.t list ref;  (* idle full replicas, guarded by pool_lock *)
  pool_lock : Mutex.t;
  plans : (Bcquery.Query.t * Inc_eval.plan) list ref;
      (* compiled-plan cache, guarded by plans_lock *)
  plans_lock : Mutex.t;
  components : (Bcdb.t * Bcquery.Query.t * int list list) list ref;
      (* ind-q-graph component cache, db-guarded, under components_lock *)
  components_lock : Mutex.t;
}

let create ?(obs = Obs.null) db =
  let store = Tagged_store.create db in
  let obs = ref obs in
  Tagged_store.set_obs store !obs;
  {
    db;
    store;
    obs;
    pool = ref [];
    pool_lock = Mutex.create ();
    plans = ref [];
    plans_lock = Mutex.create ();
    components = ref [];
    components_lock = Mutex.create ();
    fd_graph = lazy (Obs.span !obs ~cat:"session" "fd_graph" (fun () -> Fd_graph.build store));
    ind_base_edges =
      lazy (Obs.span !obs ~cat:"session" "ind_base_edges" (fun () -> Ind_graph.base_edges store));
    includable =
      lazy
        (Obs.span !obs ~cat:"session" "includable" (fun () ->
             let saved = Tagged_store.world store in
             Tagged_store.base_only store;
             let src = Tagged_store.source store in
             let result =
               Array.init (Tagged_store.tx_count store) (fun id ->
                   R.Check.batch_consistent src db.Bcdb.constraints
                     (Tagged_store.tx_rows store id))
             in
             Tagged_store.set_world store saved;
             result));
  }

let db t = t.db
let store t = t.store
let obs t = !(t.obs)

let set_obs t obs =
  t.obs := obs;
  Tagged_store.set_obs t.store obs

(* One compiled plan per distinct query text per session: repeated
   solves (and every world of one solve) reuse it. Physical equality is
   the fast path — callers usually pass the same query value; the
   structural fallback catches re-parsed but identical constraints. *)
let plan t q =
  Mutex.lock t.plans_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.plans_lock) @@ fun () ->
  match
    List.find_opt (fun (q', _) -> q' == q || Stdlib.compare q' q = 0) !(t.plans)
  with
  | Some (_, p) -> p
  | None ->
      let p = Inc_eval.plan q in
      t.plans := (q, p) :: !(t.plans);
      p

let fd_graph t = Lazy.force t.fd_graph
let ind_base_edges t = Lazy.force t.ind_base_edges

(* Connected components of the ind-q-transaction graph, cached per
   query: the graph depends only on the pending set (Θq edges are found
   by hashing pending rows with full projections, never through the
   store's active world) and on the query body, so repeated solves of
   one constraint reuse it. Entries are guarded by the database value
   they were computed against — a dry-run append/undo replaces it, and
   stale entries are pruned on the next insert. *)
let ind_components t q =
  let db_now = Tagged_store.db t.store in
  Mutex.lock t.components_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.components_lock) @@ fun () ->
  match
    List.find_opt
      (fun (db', q', _) ->
        db' == db_now && (q' == q || Stdlib.compare q' q = 0))
      !(t.components)
  with
  | Some (_, _, comps) -> comps
  | None ->
      let graph = Ind_graph.build t.store q (ind_base_edges t) in
      let comps = Bcgraph.Components.of_graph graph in
      let live =
        List.filter (fun (db', _, _) -> db' == db_now) !(t.components)
      in
      t.components := (db_now, q, comps) :: live;
      comps
let includable t = Lazy.force t.includable

let warm t =
  ignore (fd_graph t);
  ignore (ind_base_edges t);
  ignore (includable t)

(* Replica pooling: engine runs borrow full-store replicas and hand them
   back when the run finishes, so repeated solves on one session clone
   the store once per domain overall, not once per run. A pooled replica
   is only handed out while it still matches the session's database (a
   dry-run journal on the primary invalidates it — physical equality on
   the Bcdb value catches that). *)
let borrow_replica t =
  Mutex.lock t.pool_lock;
  let hit =
    match !(t.pool) with
    | r :: rest when Tagged_store.db r == Tagged_store.db t.store ->
        t.pool := rest;
        Some r
    | _ :: _ ->
        (* Stale pool (the database moved on): drop it wholesale. *)
        t.pool := [];
        None
    | [] -> None
  in
  Mutex.unlock t.pool_lock;
  let r = match hit with Some r -> r | None -> Tagged_store.clone t.store in
  (* Pooled replicas may predate the session's current recorder. *)
  Tagged_store.set_obs r !(t.obs);
  r

let return_replica t r =
  if Tagged_store.db r == Tagged_store.db t.store then begin
    Mutex.lock t.pool_lock;
    t.pool := r :: !(t.pool);
    Mutex.unlock t.pool_lock
  end

let replica t =
  (* Already-forced caches are shared by value (they are immutable once
     built); unforced ones are rebound to the replica's own store so a
     worker can never force a computation against the parent's store. *)
  let store = Tagged_store.clone t.store in
  let share forced fresh =
    if Lazy.is_val forced then Lazy.from_val (Lazy.force forced) else fresh
  in
  {
    db = t.db;
    store;
    obs = t.obs;
    pool = ref [];
    pool_lock = Mutex.create ();
    (* Plans are immutable and query-keyed: share the parent's cache
       value-wise at replication time; the replica then grows its own.
       Component caches are db-guarded and the replica shares the same
       database value, so its snapshot stays valid too. *)
    plans = ref !(t.plans);
    plans_lock = Mutex.create ();
    components = ref !(t.components);
    components_lock = Mutex.create ();
    fd_graph = share t.fd_graph (lazy (Fd_graph.build store));
    ind_base_edges = share t.ind_base_edges (lazy (Ind_graph.base_edges store));
    includable =
      share t.includable
        (lazy
          (let saved = Tagged_store.world store in
           Tagged_store.base_only store;
           let src = Tagged_store.source store in
           let result =
             Array.init (Tagged_store.tx_count store) (fun id ->
                 R.Check.batch_consistent src t.db.Bcdb.constraints
                   (Tagged_store.tx_rows store id))
           in
           Tagged_store.set_world store saved;
           result));
  }

let extended t =
  let store = t.store in
  let db' = Tagged_store.db store in
  let id = Tagged_store.tx_count store - 1 in
  if Array.length db'.Bcdb.pending <> Array.length t.db.Bcdb.pending + 1 then
    invalid_arg "Session.extended: store is not one transaction ahead";
  let fd_graph =
    if Lazy.is_val t.fd_graph then
      Lazy.from_val (Fd_graph.extend (Lazy.force t.fd_graph) store)
    else lazy (Fd_graph.build store)
  in
  let ind_base_edges =
    if Lazy.is_val t.ind_base_edges then
      Lazy.from_val
        (Lazy.force t.ind_base_edges
        @ Ind_graph.edges_for_tx store
            (Bcquery.Theta.of_inds (Bcdb.inds db'))
            id)
    else lazy (Ind_graph.base_edges store)
  in
  let includable =
    if Lazy.is_val t.includable then
      Lazy.from_val
        (let saved = Tagged_store.world store in
         Tagged_store.base_only store;
         let ok =
           R.Check.batch_consistent (Tagged_store.source store)
             db'.Bcdb.constraints
             (Tagged_store.tx_rows store id)
         in
         Tagged_store.set_world store saved;
         Array.append (Lazy.force t.includable) [| ok |])
    else
      lazy
        (let saved = Tagged_store.world store in
         Tagged_store.base_only store;
         let src = Tagged_store.source store in
         let result =
           Array.init (Tagged_store.tx_count store) (fun i ->
               R.Check.batch_consistent src db'.Bcdb.constraints
                 (Tagged_store.tx_rows store i))
         in
         Tagged_store.set_world store saved;
         result)
  in
  {
    db = db';
    store;
    obs = t.obs;
    pool = ref [];
    pool_lock = Mutex.create ();
    plans = ref !(t.plans);
    plans_lock = Mutex.create ();
    (* The hypothetical transaction changes the ind-q graph: start
       empty (entries are keyed by the pre-extension database anyway). *)
    components = ref [];
    components_lock = Mutex.create ();
    fd_graph;
    ind_base_edges;
    includable;
  }
