(** The live DCSat layer: one long-lived solving context whose inputs are
    {e maintained} under mempool churn instead of rebuilt per request.

    A batch {!Session} amortizes the precomputed structures of Section
    6.3 — the fd-transaction graph [G^fd_T], the ΘI edges of the
    ind-transaction graph, per-transaction includability — across many
    constraint checks over one frozen database. A serving system sees
    the opposite access pattern: the database churns (transactions
    arrive, are replaced by fee bumps, are confirmed into the state,
    or vanish in a reorg) while the {e same} constraints are checked
    over and over. This module keeps those structures current under each
    of the four mempool events, paying per event only for what the event
    actually changed:

    - {b add} ({!add}): one new graph node; its fd conflicts and Θ edges
      are found through the store's indexes ({!Fd_graph.extend},
      {!Ind_graph.edges_for_tx}); tracked per-query components are
      merged with a union-find pass; everything else is reused.
    - {b evict} ({!evict}, RBF): the node and its edges are dropped and
      ids re-packed ({!Fd_graph.remove}); node validity, surviving
      conflicts, ΘI edges and includability are reused (none depends on
      the evicted transaction). Tracked components are rebuilt {e only}
      for the component the node leaves (a removal can split nothing
      else); every other part is re-id'd and keeps its cached verdict.
    - {b confirm} ({!confirm}): the transaction's rows join [R], so node
      validity and includability are recomputed per survivor (one
      indexed probe each); the pairwise conflict relation and the ΘI
      edges depend only on pending rows and are reused re-id'd. The
      component partition is maintained like an evict's, but the state
      epoch bump conservatively dirties every cached verdict.
    - {b reorg} ({!reset}): full resync — the one event with no useful
      delta. Compiled plans still carry over; verdict caches do not.

    Checks run through the ordinary {!Solver} on the maintained session,
    so PR 5's ephemeron-registry world/plan caches persist across
    requests, and per-request budgets give admission control.

    {2 The per-(query, component) verdict cache}

    On top of the maintained partition sits a content-addressed verdict
    cache (the tentpole of PR 10). Each pending transaction gets a
    content digest of its rows at arrival; each component's {e
    signature} is an order-independent digest of its members' digests
    plus Live's state epoch. By the factorization argument behind
    OptDCSat (components are mutually independent), equal signature
    implies equal per-component verdict — so a warm {!check} hands
    {!Dcsat.opt} hooks that skip every component whose signature is
    cached as [Satisfied] and re-solves only the dirty ones (the
    scheduled path of {!Dcsat.opt}: largest-first, last-violator-first,
    deterministic lowest-index violation). Verdicts and witnesses are
    bit-identical with the cache on or off, at any job count.

    [Satisfied] verdicts survive any event that leaves the component's
    content (and R) unchanged — they name no ids and claim only a
    semantic fact. [Violated] verdicts are cached {e with} their
    witness, which names transaction ids and is canonical only
    relative to the whole database (plan choice and row enumeration
    order are global), so they are replayed only between back-to-back
    checks of an unchanged mempool — {e every} mutation event empties
    them — and their cache keys additionally embed the member ids:
    {e twin} components with identical content share a signature, and
    a twin may only replay its own witness, never its sibling's. The
    last violator is also scheduled first as the {e suspect} when it
    does go dirty. Budget-cut ([Unknown]) components
    are never cached. The cache is enabled by default; set [BCDB_LIVE_CACHE=0] (or
    pass [~use_cache:false]) to disable it. Hits, misses, and dirty
    re-solves are surfaced as the [live.comp_cache_hit] /
    [live.comp_cache_miss] / [live.comp_dirty] {!Obs} counters and via
    {!cache_stats}. *)

type t

type cache_stats = {
  cache_hits : int;  (** components skipped: signature cached Satisfied *)
  cache_misses : int;  (** signature probes that missed (scheduled dirty) *)
  cache_dirty : int;  (** components actually re-solved (includes covers) *)
  cache_checks : int;  (** cache-eligible checks run *)
  cache_entries : int;  (** live cached signatures across tracked queries *)
}

val create : ?obs:Obs.t -> Bcdb.t -> t
(** Take over the database: the state is compacted to all-segment form
    (so every later store reload is O(pending), independent of state
    size), the session is created and warmed. *)

val db : t -> Bcdb.t
val session : t -> Session.t

val fd_graph : t -> Fd_graph.t
(** The maintained [G^fd_T] — what {!Fd_graph.build} would return on the
    current database (up to edge-list ordering). *)

val ind_base_edges : t -> (int * int) list
(** The maintained ΘI edge set. *)

val includable : t -> bool array
(** Maintained [R ∪ {T_i} |= I] per pending transaction. *)

val components : t -> Bcquery.Query.t -> int list list
(** The ind-q components for [q], maintained incrementally once [q] has
    been seen (first call computes and starts tracking). *)

val cache_stats : t -> cache_stats
(** Cumulative verdict-cache counters since {!create}. *)

val pending_count : t -> int

val find : t -> string -> int option
(** Pending id of the transaction with the given label, if any. *)

val add : t -> ?label:string -> (string * Relational.Tuple.t) list -> unit
(** A transaction arrives in the mempool. O(its rows) index probes plus
    one union-find merge per tracked query. Dirties only the (possibly
    merged) component the new transaction lands in. *)

val evict : t -> string -> (unit, string) result
(** The labeled transaction is replaced/evicted (RBF). [Error] if no
    pending transaction carries the label. Dirties only the component
    the transaction leaves; the re-split is scoped to that component. *)

val confirm : t -> string -> (unit, string) result
(** The labeled transaction is mined: its rows join the state, it leaves
    the pending set. The state is re-compacted (O(|R|) — once per block,
    keeping every subsequent store reload O(pending)). Conservatively
    dirties every cached verdict (the epoch bump). *)

val append_state : t -> (string * Relational.Tuple.t) list -> unit
(** Rows enter the state without ever having been pending (coinbase
    transactions, blocks mined elsewhere). Same state-side maintenance
    as {!confirm} with no pending removal; also bumps the epoch. *)

val reset : t -> Bcdb.t -> unit
(** Reorg fallback: resynchronize to a freshly encoded database. All
    structures are rebuilt; compiled plans and the recorder carry over;
    component tracking and verdict caches restart from scratch. *)

val check :
  ?jobs:int ->
  ?timeout_s:float ->
  ?max_worlds:int ->
  ?use_delta:bool ->
  ?use_native:bool ->
  ?use_steal:bool ->
  ?use_cache:bool ->
  t ->
  Bcquery.Query.t ->
  (Dcsat.outcome * Solver.strategy, string) result
(** One DCSat request against the current mempool: {!Solver.solve} over
    the maintained session, with [timeout_s]/[max_worlds] forming the
    per-request admission budget (an exhausted budget yields
    [verdict = Unknown], never a wrong answer). The first check of a
    query starts component tracking for it. [use_cache] overrides the
    [BCDB_LIVE_CACHE] environment default; when the cache is live and
    the query will take the OptDCSat path, the check re-solves only
    components whose signature is not cached (see the module preamble).
    Tractable-decided queries bypass tracking and caching entirely, and
    so do budgeted requests (any [timeout_s]/[max_worlds]): a cached
    verdict could otherwise answer where the budget-tripped solve must
    return [Unknown], breaking cache-on/off bit-identity. *)
