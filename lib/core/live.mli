(** The live DCSat layer: one long-lived solving context whose inputs are
    {e maintained} under mempool churn instead of rebuilt per request.

    A batch {!Session} amortizes the precomputed structures of Section
    6.3 — the fd-transaction graph [G^fd_T], the ΘI edges of the
    ind-transaction graph, per-transaction includability — across many
    constraint checks over one frozen database. A serving system sees
    the opposite access pattern: the database churns (transactions
    arrive, are replaced by fee bumps, are confirmed into the state,
    or vanish in a reorg) while the {e same} constraints are checked
    over and over. This module keeps those structures current under each
    of the four mempool events, paying per event only for what the event
    actually changed:

    - {b add} ({!add}): one new graph node; its fd conflicts and Θ edges
      are found through the store's indexes ({!Fd_graph.extend},
      {!Ind_graph.edges_for_tx}); tracked per-query components are
      merged with a union-find pass; everything else is reused.
    - {b evict} ({!evict}, RBF): the node and its edges are dropped and
      ids re-packed ({!Fd_graph.remove}); node validity, surviving
      conflicts, ΘI edges and includability are reused (none depends on
      the evicted transaction). Components fall back to
      rebuild-on-next-check — a removal can split them.
    - {b confirm} ({!confirm}): the transaction's rows join [R], so node
      validity and includability are recomputed per survivor (one
      indexed probe each); the pairwise conflict relation and the ΘI
      edges depend only on pending rows and are reused re-id'd.
    - {b reorg} ({!reset}): full resync — the one event with no useful
      delta. Compiled plans still carry over.

    Checks run through the ordinary {!Solver} on the maintained session,
    so PR 5's ephemeron-registry world/plan caches persist across
    requests, and per-request budgets give admission control. *)

type t

val create : ?obs:Obs.t -> Bcdb.t -> t
(** Take over the database: the state is compacted to all-segment form
    (so every later store reload is O(pending), independent of state
    size), the session is created and warmed. *)

val db : t -> Bcdb.t
val session : t -> Session.t

val fd_graph : t -> Fd_graph.t
(** The maintained [G^fd_T] — what {!Fd_graph.build} would return on the
    current database (up to edge-list ordering). *)

val ind_base_edges : t -> (int * int) list
(** The maintained ΘI edge set. *)

val includable : t -> bool array
(** Maintained [R ∪ {T_i} |= I] per pending transaction. *)

val components : t -> Bcquery.Query.t -> int list list
(** The ind-q components for [q], maintained incrementally once [q] has
    been seen (first call computes and starts tracking). *)

val pending_count : t -> int

val find : t -> string -> int option
(** Pending id of the transaction with the given label, if any. *)

val add : t -> ?label:string -> (string * Relational.Tuple.t) list -> unit
(** A transaction arrives in the mempool. O(its rows) index probes plus
    one union-find merge per tracked query. *)

val evict : t -> string -> (unit, string) result
(** The labeled transaction is replaced/evicted (RBF). [Error] if no
    pending transaction carries the label. *)

val confirm : t -> string -> (unit, string) result
(** The labeled transaction is mined: its rows join the state, it leaves
    the pending set. The state is re-compacted (O(|R|) — once per block,
    keeping every subsequent store reload O(pending)). *)

val append_state : t -> (string * Relational.Tuple.t) list -> unit
(** Rows enter the state without ever having been pending (coinbase
    transactions, blocks mined elsewhere). Same state-side maintenance
    as {!confirm} with no pending removal. *)

val reset : t -> Bcdb.t -> unit
(** Reorg fallback: resynchronize to a freshly encoded database. All
    structures are rebuilt; compiled plans and the recorder carry
    over. *)

val check :
  ?jobs:int ->
  ?timeout_s:float ->
  ?max_worlds:int ->
  ?use_delta:bool ->
  ?use_native:bool ->
  ?use_steal:bool ->
  t ->
  Bcquery.Query.t ->
  (Dcsat.outcome * Solver.strategy, string) result
(** One DCSat request against the current mempool: {!Solver.solve} over
    the maintained session, with [timeout_s]/[max_worlds] forming the
    per-request admission budget (an exhausted budget yields
    [verdict = Unknown], never a wrong answer). The first check of a
    query starts component tracking for it. *)
