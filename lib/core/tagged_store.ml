module R = Relational
module Bitset = Bcgraph.Bitset

module Vtbl = Hashtbl.Make (struct
  type t = R.Value.t

  let equal = R.Value.equal
  let hash = R.Value.hash
end)

type entry = { tuple : R.Tuple.t; origins : int array }

type rel_store = {
  mutable entries : entry array;  (* valid up to [len] *)
  mutable len : int;
  by_tuple : int R.Tuple.Tbl.t;
  indexes : (int, int list Vtbl.t) Hashtbl.t;
  composite : (int list, int list R.Tuple.Tbl.t) Hashtbl.t;
      (** Multi-column hash indexes, keyed by the (sorted) column list;
          the inner table maps a projection to entry positions. Built on
          demand for the column sets the evaluator actually probes. *)
}

module Smap = Map.Make (String)

type t = {
  mutable db : Bcdb.t;
  rels : rel_store Smap.t;
  mutable k : int;
  mutable visible : Bitset.t;
}

let base_origin = -1

let build_rel rows =
  (* rows: (origin, tuple) in insertion order. Distinct tuples are stored
     once; repeated insertions only extend the origin set. *)
  let scratch = R.Tuple.Tbl.create (max 64 (List.length rows)) in
  let order = ref [] in
  List.iter
    (fun (origin, tuple) ->
      match R.Tuple.Tbl.find_opt scratch tuple with
      | Some origins ->
          if not (List.mem origin !origins) then origins := origin :: !origins
      | None ->
          R.Tuple.Tbl.replace scratch tuple (ref [ origin ]);
          order := tuple :: !order)
    rows;
  let entries =
    Array.of_list
      (List.rev_map
         (fun tuple ->
           let origins = !(R.Tuple.Tbl.find scratch tuple) in
           { tuple; origins = Array.of_list (List.sort Int.compare origins) })
         !order)
  in
  let by_tuple = R.Tuple.Tbl.create (max 64 (Array.length entries)) in
  Array.iteri (fun i e -> R.Tuple.Tbl.replace by_tuple e.tuple i) entries;
  {
    entries;
    len = Array.length entries;
    by_tuple;
    indexes = Hashtbl.create 4;
    composite = Hashtbl.create 4;
  }

let create (db : Bcdb.t) =
  let catalog = R.Database.catalog db.Bcdb.state in
  let rows_by_rel = Hashtbl.create 8 in
  let push rel row =
    let prev = Option.value (Hashtbl.find_opt rows_by_rel rel) ~default:[] in
    Hashtbl.replace rows_by_rel rel (row :: prev)
  in
  List.iter
    (fun schema ->
      let rel = schema.R.Schema.name in
      R.Relation.iter
        (fun tuple -> push rel (base_origin, tuple))
        (R.Database.relation db.Bcdb.state rel))
    (R.Schema.relations catalog);
  Array.iter
    (fun (tx : Pending.t) ->
      List.iter (fun (rel, tuple) -> push rel (tx.Pending.id, tuple)) tx.Pending.rows)
    db.Bcdb.pending;
  let rels =
    List.fold_left
      (fun acc schema ->
        let rel = schema.R.Schema.name in
        let rows =
          List.rev (Option.value (Hashtbl.find_opt rows_by_rel rel) ~default:[])
        in
        Smap.add rel (build_rel rows) acc)
      Smap.empty (R.Schema.relations catalog)
  in
  let k = Array.length db.Bcdb.pending in
  { db; rels; k; visible = Bitset.create k }

let clone_rel rs =
  let copy_inner copy tbl =
    let out = Hashtbl.create (max 4 (Hashtbl.length tbl)) in
    Hashtbl.iter (fun key inner -> Hashtbl.replace out key (copy inner)) tbl;
    out
  in
  {
    entries = Array.copy rs.entries;
    len = rs.len;
    by_tuple = R.Tuple.Tbl.copy rs.by_tuple;
    indexes = copy_inner Vtbl.copy rs.indexes;
    composite = copy_inner R.Tuple.Tbl.copy rs.composite;
  }

let clone t =
  {
    db = t.db;
    rels = Smap.map clone_rel t.rels;
    k = t.k;
    visible = Bitset.copy t.visible;
  }

let db t = t.db
let tx_count t = t.k
let world t = Bitset.copy t.visible

let set_world t vis =
  if Bitset.capacity vis <> t.k then
    invalid_arg "Tagged_store.set_world: capacity mismatch";
  t.visible <- Bitset.copy vis

let set_world_list t ids = t.visible <- Bitset.of_list t.k ids
let all_visible t = t.visible <- Bitset.full t.k
let base_only t = t.visible <- Bitset.create t.k

let entry_visible t (e : entry) =
  let n = Array.length e.origins in
  let rec go i =
    i < n
    && (e.origins.(i) = base_origin
       || Bitset.mem t.visible e.origins.(i)
       || go (i + 1))
  in
  go 0

let rel_store t name =
  match Smap.find_opt name t.rels with
  | Some rs -> rs
  | None -> invalid_arg ("Tagged_store: unknown relation " ^ name)

let ensure_index rs col =
  match Hashtbl.find_opt rs.indexes col with
  | Some idx -> idx
  | None ->
      let idx = Vtbl.create (max 16 rs.len) in
      for i = 0 to rs.len - 1 do
        let v = rs.entries.(i).tuple.(col) in
        Vtbl.replace idx v (i :: Option.value (Vtbl.find_opt idx v) ~default:[])
      done;
      Hashtbl.replace rs.indexes col idx;
      idx

let ensure_composite rs cols =
  match Hashtbl.find_opt rs.composite cols with
  | Some idx -> idx
  | None ->
      let idx = R.Tuple.Tbl.create (max 16 rs.len) in
      for i = 0 to rs.len - 1 do
        let key = R.Tuple.project rs.entries.(i).tuple cols in
        R.Tuple.Tbl.replace idx key
          (i :: Option.value (R.Tuple.Tbl.find_opt idx key) ~default:[])
      done;
      Hashtbl.replace rs.composite cols idx;
      idx

let matches binds (tuple : R.Tuple.t) =
  List.for_all (fun (col, v) -> R.Value.equal tuple.(col) v) binds

let scan t name =
  let rs = rel_store t name in
  let n = rs.len in
  let rec go i () =
    if i >= n then Seq.Nil
    else if entry_visible t rs.entries.(i) then
      Seq.Cons (rs.entries.(i).tuple, go (i + 1))
    else go (i + 1) ()
  in
  go 0

let positions_of rs binds =
  match binds with
  | [] -> invalid_arg "positions_of: no binds"
  | [ (col, v) ] ->
      let idx = ensure_index rs col in
      (Option.value (Vtbl.find_opt idx v) ~default:[], [])
  | _ when List.length binds <= 3 ->
      (* Exact composite index: no residual filtering needed. *)
      let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) binds in
      let cols = List.map fst sorted in
      let key = Array.of_list (List.map snd sorted) in
      let idx = ensure_composite rs cols in
      (Option.value (R.Tuple.Tbl.find_opt idx key) ~default:[], [])
  | (col, v) :: rest ->
      let idx = ensure_index rs col in
      (Option.value (Vtbl.find_opt idx v) ~default:[], rest)

let lookup t name binds =
  match binds with
  | [] -> scan t name
  | _ ->
      let rs = rel_store t name in
      let positions, residual = positions_of rs binds in
      List.to_seq positions
      |> Seq.filter_map (fun i ->
             let e = rs.entries.(i) in
             if entry_visible t e && matches residual e.tuple then Some e.tuple
             else None)

let mem t name tuple =
  let rs = rel_store t name in
  match R.Tuple.Tbl.find_opt rs.by_tuple tuple with
  | None -> false
  | Some i -> entry_visible t rs.entries.(i)

let cardinality t name = (rel_store t name).len

let selectivity t name binds =
  match binds with
  | [] -> cardinality t name
  | _ ->
      let rs = rel_store t name in
      let positions, _ = positions_of rs binds in
      List.length positions

let source t =
  {
    R.Source.catalog = R.Database.catalog t.db.Bcdb.state;
    scan = scan t;
    lookup = lookup t;
    mem = mem t;
    cardinality = cardinality t;
    selectivity = selectivity t;
  }

let tx_rows t id =
  let tx = t.db.Bcdb.pending.(id) in
  List.map
    (fun rel -> (rel, Pending.rows_for tx rel))
    (Pending.relations tx)

let origins t name tuple =
  let rs = rel_store t name in
  match R.Tuple.Tbl.find_opt rs.by_tuple tuple with
  | None -> []
  | Some i -> Array.to_list rs.entries.(i).origins

let to_database t =
  let out = R.Database.create (R.Database.catalog t.db.Bcdb.state) in
  Smap.iter
    (fun name rs ->
      for i = 0 to rs.len - 1 do
        let e = rs.entries.(i) in
        if entry_visible t e then ignore (R.Database.insert out name e.tuple)
      done)
    t.rels;
  out

(* --- hypothetical extension (dry runs) --- *)

type undo_item =
  | Entry_added of string * int
  | Origin_added of string * int * entry

type journal = {
  prev_db : Bcdb.t;
  prev_visible : Bitset.t;
  items : undo_item list;
}

let push_entry rs e =
  if rs.len >= Array.length rs.entries then begin
    let ncap = max 16 (2 * Array.length rs.entries) in
    let ne = Array.make ncap e in
    Array.blit rs.entries 0 ne 0 rs.len;
    rs.entries <- ne
  end;
  rs.entries.(rs.len) <- e;
  rs.len <- rs.len + 1;
  rs.len - 1

let append_tx t (db' : Bcdb.t) =
  let id = t.k in
  assert (Array.length db'.Bcdb.pending = t.k + 1);
  let tx = db'.Bcdb.pending.(id) in
  let journal =
    {
      prev_db = t.db;
      prev_visible = t.visible;
      items =
        List.map
          (fun (rel, tuple) ->
            let rs = rel_store t rel in
            match R.Tuple.Tbl.find_opt rs.by_tuple tuple with
            | Some i ->
                let prev = rs.entries.(i) in
                rs.entries.(i) <-
                  { prev with origins = Array.append prev.origins [| id |] };
                Origin_added (rel, i, prev)
            | None ->
                let i = push_entry rs { tuple; origins = [| id |] } in
                R.Tuple.Tbl.replace rs.by_tuple tuple i;
                Hashtbl.iter
                  (fun col idx ->
                    let v = tuple.(col) in
                    Vtbl.replace idx v
                      (i :: Option.value (Vtbl.find_opt idx v) ~default:[]))
                  rs.indexes;
                Hashtbl.iter
                  (fun cols idx ->
                    let key = R.Tuple.project tuple cols in
                    R.Tuple.Tbl.replace idx key
                      (i :: Option.value (R.Tuple.Tbl.find_opt idx key) ~default:[]))
                  rs.composite;
                Entry_added (rel, i))
          tx.Pending.rows;
    }
  in
  t.db <- db';
  t.k <- t.k + 1;
  t.visible <- Bitset.of_list t.k (Bitset.to_list journal.prev_visible);
  journal

let undo t journal =
  List.iter
    (function
      | Origin_added (rel, i, prev) -> (rel_store t rel).entries.(i) <- prev
      | Entry_added (rel, i) ->
          let rs = rel_store t rel in
          let e = rs.entries.(i) in
          R.Tuple.Tbl.remove rs.by_tuple e.tuple;
          Hashtbl.iter
            (fun col idx ->
              let v = e.tuple.(col) in
              match Vtbl.find_opt idx v with
              | None -> ()
              | Some positions ->
                  Vtbl.replace idx v (List.filter (fun p -> p <> i) positions))
            rs.indexes;
          Hashtbl.iter
            (fun cols idx ->
              let key = R.Tuple.project e.tuple cols in
              match R.Tuple.Tbl.find_opt idx key with
              | None -> ()
              | Some positions ->
                  R.Tuple.Tbl.replace idx key
                    (List.filter (fun p -> p <> i) positions))
            rs.composite;
          (* Entries were appended; undoing in any order is fine because
             lengths only shrink back to the original boundary. *)
          rs.len <- min rs.len i)
    (List.rev journal.items);
  t.db <- journal.prev_db;
  t.k <- Array.length journal.prev_db.Bcdb.pending;
  t.visible <- journal.prev_visible
