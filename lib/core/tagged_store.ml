module R = Relational
module Bitset = Bcgraph.Bitset

module Vtbl = Hashtbl.Make (struct
  type t = R.Value.t

  let equal = R.Value.equal
  let hash = R.Value.hash
end)

type entry = { tuple : R.Tuple.t; origins : int array }

(* The store is segmented per relation:

   - the {e base segment} holds every tuple contributed by the base
     state, as one immutable columnar {!R.Segment.t}. Base tuples are
     visible in *every* world, so the segment — column payloads and
     hash indexes alike — is shared zero-copy across clones and
     component-scoped views; cloning a store never touches base data.
     Indexes are built on demand under the segment's own lock and
     memoized per store, so steady-state probes never touch the lock.
     The rare base tuple that is *also* written by pending transactions
     carries its merged origin set in the sparse [b_extra] side table.

   - the {e pending segment} holds tuples contributed only by pending
     transactions; their visibility depends on the active world. It is
     private to each store. Instead of re-testing origin sets per probe,
     each pending position carries a visible-origin refcount
     ([viscount]) maintained incrementally by world *deltas*: switching
     worlds flips only the transactions whose membership changed
     (O(|delta|)), not O(k). A store-wide [epoch] stamps each world;
     per-posting filtered-visibility caches are valid only for the epoch
     they were computed at, which is the entire invalidation rule. *)

type base = {
  b_seg : R.Segment.t;  (* shared: immutable columns + lock-guarded index cache *)
  b_extra : (int, int array) Hashtbl.t;
      (* base position -> merged origins [|-1; tx...|]; only positions
         some pending transaction also contributes. Immutable after
         [create], hence shared. *)
}

type posting = {
  mutable all : int list;  (* pending positions, descending *)
  mutable count : int;  (* memoized [List.length all] *)
  mutable cepoch : int;  (* epoch [cvis] was computed at; -1 = never *)
  mutable cvis : int list;  (* visible subset of [all] at [cepoch] *)
}

(* Cost-model source for [cardinality]/[selectivity]. A scoped view
   answers cost probes with the *parent's* pending counts (computed over
   an immutable snapshot of the parent segment): the query planner then
   picks the same join orders on the view as on the full store, which
   keeps witnesses bit-identical between the scoped and unscoped
   evaluation paths. *)
type snapshot = {
  s_entries : entry array;
  s_idx : (int, int Vtbl.t) Hashtbl.t;
  s_comp : (int list, int R.Tuple.Tbl.t) Hashtbl.t;
}

type stats_src = Own | Snapshot of snapshot

type rel_store = {
  base : base;  (* shared with clones and scoped views *)
  stats : stats_src;
  bmemo : (int list, R.Segment.index) Hashtbl.t;
      (* per-store memo of base indexes already fetched: lock-free *)
  mutable entries : entry array;  (* pending segment, valid up to [len] *)
  mutable len : int;
  by_tuple : int R.Tuple.Tbl.t;  (* pending tuples only *)
  indexes : (int, posting Vtbl.t) Hashtbl.t;
  composite : (int list, posting R.Tuple.Tbl.t) Hashtbl.t;
      (** Multi-column hash indexes, keyed by the (sorted) column list;
          the inner table maps a projection to pending positions. Built
          on demand for the column sets the evaluator actually probes. *)
  by_origin : (int, int list) Hashtbl.t;  (* tx id -> pending positions *)
  mutable viscount : int array;  (* per pending position *)
  overlay : (int, int array) Hashtbl.t;
      (** Base-position -> origin set extended by an outstanding dry-run
          journal; affects {!origins} only (base rows stay visible). *)
}

module Smap = Map.Make (String)

type t = {
  uid : int;  (* unique per store value; hash key for weak registries *)
  mutable db : Bcdb.t;
  rels : rel_store Smap.t;
  mutable k : int;
  mutable visible : Bitset.t;
  mutable epoch : int;
  mutable pending_epoch : int;  (* bumped by append_tx/undo: pending-set shape *)
  mutable obs : Obs.t;
}

(* Every store — created, cloned or restricted — gets a fresh uid, so a
   weak table keyed by physical store identity can hash without walking
   the (deep, mutable) structure. *)
let uid_counter = Atomic.make 0
let fresh_uid () = Atomic.fetch_and_add uid_counter 1

let base_origin = -1

let seq_first seq = match seq () with Seq.Nil -> None | Seq.Cons (x, _) -> Some x

(* Position of [tuple] in the base segment, if present. Base segments
   are duplicate-free by construction, so the first (highest) position
   is the only one. *)
let base_find bs tuple = seq_first (R.Segment.find bs.b_seg tuple)

let fresh_rel ?(stats = Own) base entries =
  let np = Array.length entries in
  let by_tuple = R.Tuple.Tbl.create (max 16 np) in
  Array.iteri (fun i (e : entry) -> R.Tuple.Tbl.replace by_tuple e.tuple i) entries;
  let by_origin = Hashtbl.create (max 16 np) in
  Array.iteri
    (fun i (e : entry) ->
      Array.iter
        (fun o ->
          if o >= 0 then
            Hashtbl.replace by_origin o
              (i :: Option.value (Hashtbl.find_opt by_origin o) ~default:[]))
        e.origins)
    entries;
  {
    base;
    stats;
    bmemo = Hashtbl.create 4;
    entries;
    len = np;
    by_tuple;
    indexes = Hashtbl.create 4;
    composite = Hashtbl.create 4;
    by_origin;
    viscount = Array.make (max 1 np) 0;
    overlay = Hashtbl.create 4;
  }

let build_rel seg rows =
  (* [seg]: the relation's base state, already columnar. [rows]:
     (origin, tuple) pending contributions in transaction order.
     Pending tuples that also sit in the base merge their origins into
     the sparse [b_extra] table (the base row is visible everywhere
     anyway); the rest are deduplicated into pending entries — rows of
     one origin arrive together, so deduplication is a head check. *)
  let b_extra = Hashtbl.create 4 in
  let scratch = R.Tuple.Tbl.create (max 64 (List.length rows)) in
  let order = ref [] in
  let bs = { b_seg = seg; b_extra } in
  List.iter
    (fun (origin, tuple) ->
      match base_find bs tuple with
      | Some bpos ->
          let prev =
            Option.value (Hashtbl.find_opt b_extra bpos) ~default:[| base_origin |]
          in
          if not (Array.exists (fun o -> o = origin) prev) then
            Hashtbl.replace b_extra bpos (Array.append prev [| origin |])
      | None -> (
          match R.Tuple.Tbl.find_opt scratch tuple with
          | Some origins -> (
              match !origins with
              | last :: _ when last = origin -> ()
              | _ -> origins := origin :: !origins)
          | None ->
              R.Tuple.Tbl.replace scratch tuple (ref [ origin ]);
              order := tuple :: !order))
    rows;
  let pending =
    Array.of_list
      (List.rev_map
         (fun tuple ->
           let origins = !(R.Tuple.Tbl.find scratch tuple) in
           { tuple; origins = Array.of_list (List.sort_uniq Int.compare origins) })
         !order)
  in
  fresh_rel bs pending

let create (db : Bcdb.t) =
  let catalog = R.Database.catalog db.Bcdb.state in
  let rows_by_rel = Hashtbl.create 8 in
  let push rel row =
    let prev = Option.value (Hashtbl.find_opt rows_by_rel rel) ~default:[] in
    Hashtbl.replace rows_by_rel rel (row :: prev)
  in
  Array.iter
    (fun (tx : Pending.t) ->
      List.iter (fun (rel, tuple) -> push rel (tx.Pending.id, tuple)) tx.Pending.rows)
    db.Bcdb.pending;
  let rels =
    List.fold_left
      (fun acc schema ->
        let rel = schema.R.Schema.name in
        (* The base state reaches the store columnar: zero-cost when the
           database was restored from a binary snapshot (all segment),
           one streaming encode when it was built row by row. *)
        let seg = R.Database.to_segment db.Bcdb.state rel in
        let rows =
          List.rev (Option.value (Hashtbl.find_opt rows_by_rel rel) ~default:[])
        in
        Smap.add rel (build_rel seg rows) acc)
      Smap.empty (R.Schema.relations catalog)
  in
  let k = Array.length db.Bcdb.pending in
  {
    uid = fresh_uid ();
    db;
    rels;
    k;
    visible = Bitset.create k;
    epoch = 0;
    pending_epoch = 0;
    obs = Obs.null;
  }

let clone_rel rs =
  let copy_postings tbl =
    let out = Vtbl.create (max 4 (Vtbl.length tbl)) in
    Vtbl.iter
      (fun key (p : posting) ->
        Vtbl.replace out key
          { all = p.all; count = p.count; cepoch = p.cepoch; cvis = p.cvis })
      tbl;
    out
  in
  let copy_composite tbl =
    let out = R.Tuple.Tbl.create (max 4 (R.Tuple.Tbl.length tbl)) in
    R.Tuple.Tbl.iter
      (fun key (p : posting) ->
        R.Tuple.Tbl.replace out key
          { all = p.all; count = p.count; cepoch = p.cepoch; cvis = p.cvis })
      tbl;
    out
  in
  let copy_outer copy tbl =
    let out = Hashtbl.create (max 4 (Hashtbl.length tbl)) in
    Hashtbl.iter (fun key inner -> Hashtbl.replace out key (copy inner)) tbl;
    out
  in
  let stats =
    match rs.stats with
    | Own -> Own
    | Snapshot s ->
        (* The snapshot entries are immutable and shared; the lazily
           built count tables are private to each store. *)
        Snapshot
          {
            s_entries = s.s_entries;
            s_idx = copy_outer Vtbl.copy s.s_idx;
            s_comp =
              (let out = Hashtbl.create (max 4 (Hashtbl.length s.s_comp)) in
               Hashtbl.iter
                 (fun key inner -> Hashtbl.replace out key (R.Tuple.Tbl.copy inner))
                 s.s_comp;
               out)
          }
  in
  {
    base = rs.base;  (* shared: immutable segment, immutable b_extra *)
    stats;
    bmemo = Hashtbl.copy rs.bmemo;
    entries = Array.copy rs.entries;
    len = rs.len;
    by_tuple = R.Tuple.Tbl.copy rs.by_tuple;
    indexes = copy_outer copy_postings rs.indexes;
    composite = copy_outer copy_composite rs.composite;
    by_origin = Hashtbl.copy rs.by_origin;
    viscount = Array.copy rs.viscount;
    overlay = Hashtbl.copy rs.overlay;
  }

let clone t =
  {
    uid = fresh_uid ();
    db = t.db;
    rels = Smap.map clone_rel t.rels;
    k = t.k;
    visible = Bitset.copy t.visible;
    epoch = t.epoch;
    pending_epoch = t.pending_epoch;
    obs = t.obs;
  }

let restrict t members =
  let mset = Bitset.of_list t.k members in
  let restrict_rel rs =
    let keep = ref [] in
    for i = rs.len - 1 downto 0 do
      let e = rs.entries.(i) in
      if Array.exists (fun o -> o >= 0 && Bitset.mem mset o) e.origins then
        keep := e :: !keep
    done;
    let stats =
      match rs.stats with
      | Snapshot s ->
          Snapshot
            {
              s_entries = s.s_entries;
              s_idx = Hashtbl.create 4;
              s_comp = Hashtbl.create 4;
            }
      | Own ->
          Snapshot
            {
              s_entries = Array.sub rs.entries 0 rs.len;
              s_idx = Hashtbl.create 4;
              s_comp = Hashtbl.create 4;
            }
    in
    let sub = fresh_rel ~stats rs.base (Array.of_list !keep) in
    Hashtbl.iter (fun key o -> Hashtbl.replace sub.overlay key o) rs.overlay;
    (* Seed the base-index memo from the parent so a fresh scoped view
       starts lock-free for every column set the parent already probed. *)
    Hashtbl.iter (fun c idx -> Hashtbl.replace sub.bmemo c idx) rs.bmemo;
    sub
  in
  {
    uid = fresh_uid ();
    db = t.db;
    rels = Smap.map restrict_rel t.rels;
    k = t.k;
    visible = Bitset.create t.k;
    epoch = 0;
    pending_epoch = t.pending_epoch;
    obs = t.obs;
  }

let db t = t.db
let uid t = t.uid
let tx_count t = t.k
let pending_epoch t = t.pending_epoch
let state_generation t = R.Database.generation t.db.Bcdb.state
let set_obs t obs = t.obs <- obs
let world t = Bitset.copy t.visible

let base_bytes t =
  Smap.fold (fun _ rs acc -> acc + R.Segment.bytes rs.base.b_seg) t.rels 0

(* Switch to [vis] (a fresh bitset owned by the store) by flipping only
   the transactions whose membership changed. A no-op switch keeps the
   epoch, so posting caches survive save/restore pairs. *)
let apply_world t vis =
  if not (Bitset.equal vis t.visible) then begin
    let old = t.visible in
    Smap.iter
      (fun _ rs ->
        let flip sign id =
          match Hashtbl.find_opt rs.by_origin id with
          | None -> ()
          | Some ps ->
              List.iter
                (fun p -> rs.viscount.(p) <- rs.viscount.(p) + sign)
                ps
        in
        Bitset.iter_diff (flip (-1)) old vis;
        Bitset.iter_diff (flip 1) vis old)
      t.rels;
    t.visible <- vis;
    t.epoch <- t.epoch + 1;
    if Obs.enabled t.obs then Obs.add t.obs "store.epoch_switch" 1
  end

let set_world t vis =
  if Bitset.capacity vis <> t.k then
    invalid_arg "Tagged_store.set_world: capacity mismatch";
  apply_world t (Bitset.copy vis)

let set_world_list t ids = apply_world t (Bitset.of_list t.k ids)
let all_visible t = apply_world t (Bitset.full t.k)
let base_only t = apply_world t (Bitset.create t.k)

let rel_store t name =
  match Smap.find_opt name t.rels with
  | Some rs -> rs
  | None -> invalid_arg ("Tagged_store: unknown relation " ^ name)

(* --- world deltas (incremental evaluation support) --- *)

type world_delta = {
  added_txs : int;
  removed_txs : int;
  added : (string -> R.Tuple.t list) Lazy.t;
}

let world_delta t ~prev =
  if Bitset.capacity prev <> t.k then
    invalid_arg "Tagged_store.world_delta: capacity mismatch";
  let cur = t.visible in
  let added_ids = ref [] and added_txs = ref 0 and removed_txs = ref 0 in
  Bitset.iter_diff
    (fun id ->
      added_ids := id :: !added_ids;
      incr added_txs)
    cur prev;
  Bitset.iter_diff (fun _ -> incr removed_txs) prev cur;
  let added_ids = !added_ids in
  let added =
    lazy
      ((* A pending tuple is {e newly visible} iff some added transaction
          contributes it and none of its origins was in [prev] (base rows
          never reach the pending segment, so base contributions don't
          mask anything here). Positions contributed by two added
          transactions are deduplicated per relation. *)
       let per_rel = Hashtbl.create 8 in
       Smap.iter
         (fun name rs ->
           let seen = Hashtbl.create 16 in
           let acc = ref [] in
           List.iter
             (fun id ->
               match Hashtbl.find_opt rs.by_origin id with
               | None -> ()
               | Some ps ->
                   List.iter
                     (fun p ->
                       if not (Hashtbl.mem seen p) then begin
                         Hashtbl.replace seen p ();
                         let e = rs.entries.(p) in
                         if
                           not
                             (Array.exists
                                (fun o -> o >= 0 && Bitset.mem prev o)
                                e.origins)
                         then acc := e.tuple :: !acc
                       end)
                     ps)
             added_ids;
           if !acc <> [] then Hashtbl.replace per_rel name !acc)
         t.rels;
       fun name -> Option.value (Hashtbl.find_opt per_rel name) ~default:[])
  in
  { added_txs = !added_txs; removed_txs = !removed_txs; added }

(* --- base-segment indexes: built once under the segment's lock,
   published immutable, memoized per store --- *)

let base_index rs cols =
  match Hashtbl.find_opt rs.bmemo cols with
  | Some idx -> idx
  | None ->
      let idx = R.Segment.index rs.base.b_seg cols in
      Hashtbl.replace rs.bmemo cols idx;
      idx

(* Exact matches for [binds] in the base segment (collision-filtered
   positions, descending). *)
let base_slice rs binds =
  let cols = List.sort_uniq Int.compare (List.map fst binds) in
  let idx = base_index rs cols in
  R.Segment.slice rs.base.b_seg idx (R.Segment.compile rs.base.b_seg binds)

let base_count rs binds = R.Segment.slice_count (base_slice rs binds)

(* --- pending-segment indexes (private, incremental) --- *)

let ensure_index rs col =
  match Hashtbl.find_opt rs.indexes col with
  | Some idx -> idx
  | None ->
      let idx = Vtbl.create (max 16 rs.len) in
      for i = 0 to rs.len - 1 do
        let v = rs.entries.(i).tuple.(col) in
        match Vtbl.find_opt idx v with
        | Some p ->
            p.all <- i :: p.all;
            p.count <- p.count + 1
        | None -> Vtbl.replace idx v { all = [ i ]; count = 1; cepoch = -1; cvis = [] }
      done;
      Hashtbl.replace rs.indexes col idx;
      idx

let ensure_composite rs cols =
  match Hashtbl.find_opt rs.composite cols with
  | Some idx -> idx
  | None ->
      let idx = R.Tuple.Tbl.create (max 16 rs.len) in
      for i = 0 to rs.len - 1 do
        let key = R.Tuple.project rs.entries.(i).tuple cols in
        match R.Tuple.Tbl.find_opt idx key with
        | Some p ->
            p.all <- i :: p.all;
            p.count <- p.count + 1
        | None ->
            R.Tuple.Tbl.replace idx key { all = [ i ]; count = 1; cepoch = -1; cvis = [] }
      done;
      Hashtbl.replace rs.composite cols idx;
      idx

(* Visible pending positions of a posting, cached per epoch. *)
let posting_visible t rs (p : posting) =
  if p.cepoch <> t.epoch then begin
    p.cvis <- List.filter (fun i -> rs.viscount.(i) > 0) p.all;
    p.cepoch <- t.epoch;
    if Obs.enabled t.obs then Obs.add t.obs "store.vis_miss" 1
  end
  else if Obs.enabled t.obs then Obs.add t.obs "store.vis_hit" 1;
  p.cvis

let matches binds (tuple : R.Tuple.t) =
  List.for_all (fun (col, v) -> R.Value.equal tuple.(col) v) binds

let scan t name =
  let rs = rel_store t name in
  let np = rs.len in
  let rec pend i () =
    if i >= np then Seq.Nil
    else if rs.viscount.(i) > 0 then Seq.Cons (rs.entries.(i).tuple, pend (i + 1))
    else pend (i + 1) ()
  in
  Seq.append (R.Segment.tuple_seq rs.base.b_seg) (pend 0)

(* Probe the pending segment for [binds]: the posting to walk and the
   residual binds an over-wide probe still has to filter by. The base
   segment always answers with an exact multi-column slice, so only the
   pending side ever needs residual filtering. *)
let probe rs binds =
  match binds with
  | [] -> invalid_arg "probe: no binds"
  | [ (col, v) ] -> (Vtbl.find_opt (ensure_index rs col) v, [])
  | _ when List.length binds <= 3 ->
      (* Exact composite index: no residual filtering needed. *)
      let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) binds in
      let cols = List.map fst sorted in
      let key = Array.of_list (List.map snd sorted) in
      (R.Tuple.Tbl.find_opt (ensure_composite rs cols) key, [])
  | _ ->
      (* Over-wide probe (no exact composite): use the single-column
         index of the {e most selective} bound column — the one whose
         posting (pending + base) is shortest — and filter the rest as
         residual binds. Any bound column yields the same matching
         position set in the same (descending) order, so the choice
         changes only how many candidates the residual filter touches,
         never the results. *)
      let count ((col, v) as bind) =
        (match Vtbl.find_opt (ensure_index rs col) v with
        | Some p -> p.count
        | None -> 0)
        + base_count rs [ bind ]
      in
      let best =
        List.fold_left
          (fun (bbind, bcost) bind ->
            let cost = count bind in
            if cost < bcost then (bind, cost) else (bbind, bcost))
          (List.hd binds, count (List.hd binds))
          (List.tl binds)
        |> fst
      in
      let col, v = best in
      let residual = List.filter (fun b -> b != best) binds in
      (Vtbl.find_opt (ensure_index rs col) v, residual)

let lookup t name binds =
  match binds with
  | [] -> scan t name
  | _ ->
      let rs = rel_store t name in
      let pend_p, residual = probe rs binds in
      (* Pending matches first (descending position), then base matches
         (descending position): the same order the unsegmented store
         produced, since pending entries sat above the base prefix. *)
      let pend =
        match pend_p with
        | None -> Seq.empty
        | Some p ->
            fun () ->
              (List.to_seq (posting_visible t rs p)
              |> Seq.filter_map (fun i ->
                     let e = rs.entries.(i) in
                     if matches residual e.tuple then Some e.tuple else None))
                ()
      in
      let base =
        fun () ->
          let sl = base_slice rs binds in
          (if Obs.enabled t.obs then begin
             let hits, misses = R.Segment.dict_hits sl in
             if hits > 0 then Obs.add t.obs "segment.dict_hits" hits;
             if misses > 0 then Obs.add t.obs "segment.dict_miss" misses
           end);
          (Seq.map
             (R.Segment.tuple rs.base.b_seg)
             (R.Segment.slice_rows rs.base.b_seg sl))
            ()
      in
      Seq.append pend base

(* Early-exit fold over exactly the tuples (and order) of [lookup],
   but driving the pending posting list and the base segment slice
   directly — no [Seq.t] nodes on the hot path. This is the entry point
   the closure-compiled evaluator's fused join loops run through. *)
let fold_lookup t name binds f =
  match binds with
  | [] ->
      let rec go s =
        match s () with
        | Seq.Nil -> true
        | Seq.Cons (tu, rest) -> if f tu then go rest else false
      in
      go (scan t name)
  | _ ->
      let rs = rel_store t name in
      let pend_p, residual = probe rs binds in
      let pend_ok =
        match pend_p with
        | None -> true
        | Some p ->
            let rec go = function
              | [] -> true
              | i :: rest ->
                  let e = rs.entries.(i) in
                  if matches residual e.tuple then
                    if f e.tuple then go rest else false
                  else go rest
            in
            go (posting_visible t rs p)
      in
      pend_ok
      &&
      let sl = base_slice rs binds in
      (if Obs.enabled t.obs then begin
         let hits, misses = R.Segment.dict_hits sl in
         if hits > 0 then Obs.add t.obs "segment.dict_hits" hits;
         if misses > 0 then Obs.add t.obs "segment.dict_miss" misses
       end);
      let seg = rs.base.b_seg in
      let rec go s =
        match s () with
        | Seq.Nil -> true
        | Seq.Cons (row, rest) ->
            if f (R.Segment.tuple seg row) then go rest else false
      in
      go (R.Segment.slice_rows seg sl)

let mem t name tuple =
  let rs = rel_store t name in
  if R.Segment.mem rs.base.b_seg tuple then true
  else
    match R.Tuple.Tbl.find_opt rs.by_tuple tuple with
    | None -> false
    | Some i -> rs.viscount.(i) > 0

(* Count tables over a stats snapshot, built on first probe of a column
   (set). Counts only — the positions themselves are never needed. *)
let snapshot_count_1 s col v =
  let tbl =
    match Hashtbl.find_opt s.s_idx col with
    | Some tbl -> tbl
    | None ->
        let tbl = Vtbl.create (max 16 (Array.length s.s_entries)) in
        Array.iter
          (fun (e : entry) ->
            let v = e.tuple.(col) in
            Vtbl.replace tbl v (1 + Option.value (Vtbl.find_opt tbl v) ~default:0))
          s.s_entries;
        Hashtbl.replace s.s_idx col tbl;
        tbl
  in
  Option.value (Vtbl.find_opt tbl v) ~default:0

let snapshot_count_n s cols key =
  let tbl =
    match Hashtbl.find_opt s.s_comp cols with
    | Some tbl -> tbl
    | None ->
        let tbl = R.Tuple.Tbl.create (max 16 (Array.length s.s_entries)) in
        Array.iter
          (fun (e : entry) ->
            let key = R.Tuple.project e.tuple cols in
            R.Tuple.Tbl.replace tbl key
              (1 + Option.value (R.Tuple.Tbl.find_opt tbl key) ~default:0))
          s.s_entries;
        Hashtbl.replace s.s_comp cols tbl;
        tbl
  in
  Option.value (R.Tuple.Tbl.find_opt tbl key) ~default:0

let cardinality t name =
  let rs = rel_store t name in
  let pend =
    match rs.stats with Own -> rs.len | Snapshot s -> Array.length s.s_entries
  in
  R.Segment.length rs.base.b_seg + pend

(* World-independent by design (and by the pre-segmentation semantics):
   memoized pending counts plus the base hash-range width (an upper
   bound — collisions are not filtered out, which is fine for a cost
   estimate and identical across every store sharing the segment, so
   scoped and unscoped evaluations still pick the same join orders). *)
let selectivity t name binds =
  match binds with
  | [] -> cardinality t name
  | _ -> (
      let rs = rel_store t name in
      let pend_count_1 col v =
        match rs.stats with
        | Own -> (
            match Vtbl.find_opt (ensure_index rs col) v with
            | Some p -> p.count
            | None -> 0)
        | Snapshot s -> snapshot_count_1 s col v
      in
      match binds with
      | [] -> assert false
      | [ (col, v) ] -> pend_count_1 col v + base_count rs binds
      | _ when List.length binds <= 3 ->
          let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) binds in
          let cols = List.map fst sorted in
          let key = Array.of_list (List.map snd sorted) in
          let pend =
            match rs.stats with
            | Own -> (
                match R.Tuple.Tbl.find_opt (ensure_composite rs cols) key with
                | Some p -> p.count
                | None -> 0)
            | Snapshot s -> snapshot_count_n s cols key
          in
          pend + base_count rs sorted
      | (col, v) :: _ -> pend_count_1 col v + base_count rs [ (col, v) ])

let source t =
  {
    R.Source.catalog = R.Database.catalog t.db.Bcdb.state;
    scan = scan t;
    lookup = lookup t;
    fold_lookup = fold_lookup t;
    mem = mem t;
    cardinality = cardinality t;
    selectivity = selectivity t;
  }

let tx_rows t id =
  let tx = t.db.Bcdb.pending.(id) in
  List.map
    (fun rel -> (rel, Pending.rows_for tx rel))
    (Pending.relations tx)

let origins t name tuple =
  let rs = rel_store t name in
  match base_find rs.base tuple with
  | Some bpos -> (
      match Hashtbl.find_opt rs.overlay bpos with
      | Some o -> Array.to_list o
      | None -> (
          match Hashtbl.find_opt rs.base.b_extra bpos with
          | Some o -> Array.to_list o
          | None -> [ base_origin ]))
  | None -> (
      match R.Tuple.Tbl.find_opt rs.by_tuple tuple with
      | Some i -> Array.to_list rs.entries.(i).origins
      | None -> [])

let to_database t =
  let out = R.Database.create (R.Database.catalog t.db.Bcdb.state) in
  Smap.iter
    (fun name rs ->
      Seq.iter
        (fun tuple -> ignore (R.Database.insert out name tuple))
        (R.Segment.tuple_seq rs.base.b_seg);
      for i = 0 to rs.len - 1 do
        if rs.viscount.(i) > 0 then
          ignore (R.Database.insert out name rs.entries.(i).tuple)
      done)
    t.rels;
  out

(* --- hypothetical extension (dry runs) --- *)

type undo_item =
  | Entry_added of string * int
  | Origin_added of string * int * entry
  | Overlay_set of string * int * int array option

type journal = {
  prev_db : Bcdb.t;
  prev_visible : Bitset.t;
  items : undo_item list;
}

let push_entry rs e =
  if rs.len >= Array.length rs.entries then begin
    let ncap = max 16 (2 * Array.length rs.entries) in
    let ne = Array.make ncap e in
    Array.blit rs.entries 0 ne 0 rs.len;
    rs.entries <- ne
  end;
  if rs.len >= Array.length rs.viscount then begin
    let nv = Array.make (max 16 (2 * Array.length rs.viscount)) 0 in
    Array.blit rs.viscount 0 nv 0 rs.len;
    rs.viscount <- nv
  end;
  rs.entries.(rs.len) <- e;
  rs.viscount.(rs.len) <- 0;
  rs.len <- rs.len + 1;
  rs.len - 1

let add_origin rs id p =
  Hashtbl.replace rs.by_origin id
    (p :: Option.value (Hashtbl.find_opt rs.by_origin id) ~default:[])

let append_tx t (db' : Bcdb.t) =
  let id = t.k in
  assert (Array.length db'.Bcdb.pending = t.k + 1);
  let tx = db'.Bcdb.pending.(id) in
  let journal =
    {
      prev_db = t.db;
      prev_visible = t.visible;
      items =
        List.map
          (fun (rel, tuple) ->
            let rs = rel_store t rel in
            match base_find rs.base tuple with
            | Some bpos ->
                (* Base rows are always visible; the new origin only has
                   to show up in [origins], via the overlay. *)
                let prev = Hashtbl.find_opt rs.overlay bpos in
                let before =
                  match prev with
                  | Some o -> o
                  | None -> (
                      match Hashtbl.find_opt rs.base.b_extra bpos with
                      | Some o -> o
                      | None -> [| base_origin |])
                in
                Hashtbl.replace rs.overlay bpos (Array.append before [| id |]);
                Overlay_set (rel, bpos, prev)
            | None -> (
                match R.Tuple.Tbl.find_opt rs.by_tuple tuple with
                | Some i ->
                    let prev = rs.entries.(i) in
                    rs.entries.(i) <-
                      { prev with origins = Array.append prev.origins [| id |] };
                    add_origin rs id i;
                    Origin_added (rel, i, prev)
                | None ->
                    let i = push_entry rs { tuple; origins = [| id |] } in
                    R.Tuple.Tbl.replace rs.by_tuple tuple i;
                    add_origin rs id i;
                    (* The new position is invisible ([id] is not in any
                       world yet), so live posting caches stay valid. *)
                    Hashtbl.iter
                      (fun col idx ->
                        let v = tuple.(col) in
                        match Vtbl.find_opt idx v with
                        | Some p ->
                            p.all <- i :: p.all;
                            p.count <- p.count + 1
                        | None ->
                            Vtbl.replace idx v
                              { all = [ i ]; count = 1; cepoch = -1; cvis = [] })
                      rs.indexes;
                    Hashtbl.iter
                      (fun cols idx ->
                        let key = R.Tuple.project tuple cols in
                        match R.Tuple.Tbl.find_opt idx key with
                        | Some p ->
                            p.all <- i :: p.all;
                            p.count <- p.count + 1
                        | None ->
                            R.Tuple.Tbl.replace idx key
                              { all = [ i ]; count = 1; cepoch = -1; cvis = [] })
                      rs.composite;
                    Entry_added (rel, i)))
          tx.Pending.rows;
    }
  in
  t.db <- db';
  t.k <- t.k + 1;
  t.pending_epoch <- t.pending_epoch + 1;
  t.visible <- Bitset.of_list t.k (Bitset.to_list journal.prev_visible);
  journal

let undo t journal =
  (* Restore the previous world's membership first, while [by_origin]
     still routes the hypothetical transaction's flips. *)
  apply_world t (Bitset.of_list t.k (Bitset.to_list journal.prev_visible));
  let id = Array.length journal.prev_db.Bcdb.pending in
  List.iter
    (function
      | Overlay_set (rel, bpos, prev) -> (
          let rs = rel_store t rel in
          match prev with
          | Some o -> Hashtbl.replace rs.overlay bpos o
          | None -> Hashtbl.remove rs.overlay bpos)
      | Origin_added (rel, i, prev) -> (rel_store t rel).entries.(i) <- prev
      | Entry_added (rel, i) ->
          let rs = rel_store t rel in
          let e = rs.entries.(i) in
          R.Tuple.Tbl.remove rs.by_tuple e.tuple;
          Hashtbl.iter
            (fun col idx ->
              let v = e.tuple.(col) in
              match Vtbl.find_opt idx v with
              | None -> ()
              | Some p ->
                  p.all <- List.filter (fun q -> q <> i) p.all;
                  p.count <- p.count - 1;
                  p.cepoch <- -1)
            rs.indexes;
          Hashtbl.iter
            (fun cols idx ->
              let key = R.Tuple.project e.tuple cols in
              match R.Tuple.Tbl.find_opt idx key with
              | None -> ()
              | Some p ->
                  p.all <- List.filter (fun q -> q <> i) p.all;
                  p.count <- p.count - 1;
                  p.cepoch <- -1)
            rs.composite;
          (* Entries were appended; undoing in any order is fine because
             lengths only shrink back to the original boundary. *)
          rs.len <- min rs.len i)
    (List.rev journal.items);
  Smap.iter (fun _ rs -> Hashtbl.remove rs.by_origin id) t.rels;
  t.db <- journal.prev_db;
  t.k <- Array.length journal.prev_db.Bcdb.pending;
  t.visible <- journal.prev_visible;
  t.pending_epoch <- t.pending_epoch + 1;
  t.epoch <- t.epoch + 1
