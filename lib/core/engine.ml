module Work_source = struct
  (* [scope], when present, is the member list of the component every
     world of this item lives inside. Workers materialize their own
     component-scoped store view from it (via the [restrict] parameter
     of {!run}) and cache the view while consecutive items carry the
     physically-equal scope list — sources must reuse one list instance
     per component for that caching to hit. *)
  type item = { members : int list; scope : int list option }

  type t = unit -> item option

  let plain members = { members; scope = None }
  let empty : t = fun () -> None

  let of_list items =
    let remaining = ref items in
    fun () ->
      match !remaining with
      | [] -> None
      | x :: tl ->
          remaining := tl;
          Some (plain x)

  let of_cliques ?interrupt ?scope graph ~back =
    let next = Bcgraph.Bron_kerbosch.generator ?interrupt graph in
    fun () ->
      Option.map
        (fun c -> { members = List.map (fun i -> back.(i)) c; scope })
        (next ())
end

(* Cooperative cancellation: a budget is checked on the claim path (the
   single point every backend funnels work through) and, via
   {!Budget.interrupt}, inside Bron–Kerbosch branching steps. A budget
   never interrupts an evaluation in flight — limits are enforced at
   work-item granularity, so [max_worlds] may be overshot by up to
   [jobs - 1] in-flight items. Tripping is sticky: the first reason
   observed is the one reported. All mutation happens on the claim path
   (under the engine lock in the parallel backend) or inside source
   pulls, which run under that same lock. *)
module Budget = struct
  type reason = Deadline | Max_worlds | Max_pulled

  type t = {
    deadline : float option;  (* absolute Monotime.now target *)
    max_worlds : int;
    max_pulled : int;
    mutable tripped : reason option;
  }

  let unlimited =
    { deadline = None; max_worlds = max_int; max_pulled = max_int; tripped = None }

  let create ?timeout_s ?max_worlds ?max_pulled () =
    (match timeout_s with
    | Some s when s < 0.0 -> invalid_arg "Engine.Budget.create: negative timeout"
    | _ -> ());
    {
      deadline = Option.map (fun s -> Monotime.now () +. s) timeout_s;
      max_worlds = Option.value max_worlds ~default:max_int;
      max_pulled = Option.value max_pulled ~default:max_int;
      tripped = None;
    }

  let is_unlimited t =
    t.deadline = None && t.max_worlds = max_int && t.max_pulled = max_int

  let tripped t = t.tripped
  let trip t reason = if t.tripped = None then t.tripped <- Some reason

  let deadline_passed t =
    match t.deadline with Some d -> Monotime.now () > d | None -> false

  let check t ~pulled ~evaluated =
    (if t.tripped = None then
       if evaluated >= t.max_worlds then trip t Max_worlds
       else if pulled >= t.max_pulled then trip t Max_pulled
       else if deadline_passed t then trip t Deadline);
    t.tripped

  (* The hook handed to Bron_kerbosch.generator: only the deadline can
     fire between yields (world/pull limits are claim-path properties). *)
  let interrupt t () =
    t.tripped <> None
    ||
    if deadline_passed t then begin
      trip t Deadline;
      true
    end
    else false

  let reason_name = function
    | Deadline -> "deadline"
    | Max_worlds -> "max-worlds"
    | Max_pulled -> "max-pulled"

  let pp_reason ppf r = Format.pp_print_string ppf (reason_name r)
end

type violation = {
  world : int list;
  witness : (string * Relational.Value.t) list option;
}

type evaluation = { world : int list; violation : violation option }

type report = {
  hit : violation option;
  pulled : int;
  evaluated : int;
  exhausted : Budget.reason option;
}

type backend = Sequential | Parallel of int

let max_jobs = 64
let backend_of_jobs jobs = if jobs <= 1 then Sequential else Parallel (min jobs max_jobs)
let default_jobs () = Domain.recommended_domain_count ()

(* Per-item evaluation time feeds the "engine.busy_s" histogram (its sum
   over jobs × wall time is the worker-utilization headline number). *)
let eval_timed obs eval store members =
  if Obs.enabled obs then begin
    let since = Monotime.now () in
    let ev = eval store members in
    Obs.observe obs "engine.busy_s" (Monotime.elapsed ~since);
    ev
  end
  else eval store members

let run_sequential ~obs ~budget ~counted:(pulled_base, evaluated_base)
    ~stop_on_hit ~store ~restrict ~source ~eval ~on_item ~on_evaluated =
  (* [eval] is a factory: one evaluator instance per worker, so stateful
     evaluators (incremental world caches) are never shared between
     domains. The sequential backend is its own single worker. *)
  let eval = eval () in
  let pulled = ref 0 and evaluated = ref 0 in
  (* One scoped view per component, rebuilt when the scope list changes
     (sources reuse one list instance per component, so consecutive
     items of a component hit the cache and its warm indexes). *)
  let scoped = ref None in
  let store_for (item : Work_source.item) =
    match (item.Work_source.scope, restrict) with
    | None, _ | _, None -> store
    | Some comp, Some restrict -> (
        match !scoped with
        | Some (c, view) when c == comp -> view
        | _ ->
            let view = restrict comp in
            scoped := Some (comp, view);
            view)
  in
  let hit = ref None in
  let rec go () =
    if
      Budget.check budget
        ~pulled:(pulled_base + !pulled)
        ~evaluated:(evaluated_base + !evaluated)
      <> None
    then ()
    else
      match source () with
      | None -> ()
      | Some item ->
          incr pulled;
          on_item item.Work_source.members;
          let ev = eval_timed obs eval (store_for item) item.Work_source.members in
          incr evaluated;
          on_evaluated ev;
          (match ev.violation with
          | Some _ when !hit = None -> hit := ev.violation
          | _ -> ());
          if !hit = None || not stop_on_hit then go ()
  in
  go ();
  {
    hit = !hit;
    pulled = !pulled;
    evaluated = !evaluated;
    exhausted = Budget.tripped budget;
  }

(* A pool of parked helper domains, reused across engine runs.
   [Domain.spawn] costs milliseconds — often more than an entire small
   solve — so helpers are spawned once and then sleep on a condition
   variable between runs (where they don't take part in GC barriers
   either). The pool only ever grows to the high-water mark of
   concurrently requested helpers. *)
module Pool = struct
  type slot = {
    m : Mutex.t;
    cv : Condition.t;
    mutable job : (unit -> unit) option;
  }

  let lock = Mutex.create ()
  let idle : slot list ref = ref []

  let rec loop slot =
    Mutex.lock slot.m;
    while slot.job = None do
      Condition.wait slot.cv slot.m
    done;
    let job = match slot.job with Some j -> j | None -> assert false in
    Mutex.unlock slot.m;
    (* Backstop only: submitted jobs are exception-safe wrappers (see
       [guarded] in [run_parallel]) that record failures and signal
       completion themselves. Swallowing here merely keeps a buggy future
       caller from killing a parked domain; it must never be the place a
       worker failure is "handled", or the submitter's join deadlocks. *)
    (try job () with _ -> ());
    Mutex.lock slot.m;
    slot.job <- None;
    Mutex.unlock slot.m;
    Mutex.lock lock;
    idle := slot :: !idle;
    Mutex.unlock lock;
    loop slot

  let take () =
    Mutex.lock lock;
    let reused =
      match !idle with
      | s :: tl ->
          idle := tl;
          Some s
      | [] -> None
    in
    Mutex.unlock lock;
    match reused with
    | Some s -> s
    | None ->
        let s = { m = Mutex.create (); cv = Condition.create (); job = None } in
        ignore (Domain.spawn (fun () -> loop s) : unit Domain.t);
        s

  let submit slot job =
    Mutex.lock slot.m;
    slot.job <- Some job;
    Condition.signal slot.cv;
    Mutex.unlock slot.m
end

(* Parallel backend. Work items are claimed from the source in index
   order under a single lock — the source itself may touch the primary
   store (Covers tests, can-append checks), which is safe because only
   the claim path ever does. The calling domain is one of the [jobs]
   workers (so [jobs = 2] parks only one helper, and a helper that never
   gets scheduled costs nothing); the rest come from the persistent
   {!Pool}. Each worker evaluates unscoped items on a private full
   replica, borrowed lazily (and under the lock, since replication reads
   the primary store) the first time the worker actually needs one —
   workers that only ever see scoped items never pay for a full clone.
   For scoped items each worker materializes its own component view with
   [restrict] — under the lock, since restriction reads the primary
   store, which only the claim path otherwise touches — and caches it
   while consecutive claims come from the same component. No store is
   ever shared between worker domains. Once any violation is recorded,
   claiming stops: unclaimed items all carry higher indexes than every
   claimed one, so none of them can beat the recorded violation; workers
   finish the items they already hold, and the lowest-index violation
   wins. That makes the returned witness — and, after clamping the work
   counters to the winning index, the reported stats — deterministic and
   equal to the sequential backend's. *)
let run_parallel ~obs ~jobs ~budget ~counted:(pulled_base, evaluated_base)
    ~stop_on_hit ~replicate ~release ~restrict ~source ~eval ~on_item
    ~on_evaluated =
  let lock = Mutex.create () in
  let locked f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
  in
  let stop = Atomic.make false in
  let best = ref None in
  let next_index = ref 0 in
  let eval_count = Atomic.make 0 in
  let borrowed = ref [] in
  let claim_raw () =
    locked (fun () ->
        if Atomic.get stop then None
        else if
          Budget.check budget
            ~pulled:(pulled_base + !next_index)
            ~evaluated:(evaluated_base + Atomic.get eval_count)
          <> None
        then None
        else
          match source () with
          | None -> None
          | Some item ->
              let i = !next_index in
              incr next_index;
              on_item item.Work_source.members;
              Some (i, item))
  in
  let claim () =
    (* The claim span covers lock acquisition plus the pull itself, so a
       trace shows contention on the claim path as wide "claim" slices.
       One claim per item: no span closure unless recording. *)
    if Obs.enabled obs then Obs.span obs ~cat:"engine" "claim" claim_raw
    else claim_raw ()
  in
  let record i v =
    locked (fun () ->
        (match !best with
        | Some (bi, _) when bi <= i -> ()
        | _ -> best := Some (i, v));
        (* [stop_on_hit:false] drains the source despite violations (the
           dirty-component scheduler wants every item solved); the
           lowest-claim-index violation still wins. *)
        if stop_on_hit then Atomic.set stop true)
  in
  let worker () =
    let eval = eval () in
    let replica = ref None in
    let scoped = ref None in
    let full_replica () =
      match !replica with
      | Some store -> store
      | None ->
          let store =
            locked (fun () ->
                let store = replicate () in
                borrowed := store :: !borrowed;
                store)
          in
          replica := Some store;
          store
    in
    let store_for (item : Work_source.item) =
      match (item.Work_source.scope, restrict) with
      | None, _ | _, None -> full_replica ()
      | Some comp, Some restrict -> (
          match !scoped with
          | Some (c, view) when c == comp -> view
          | _ ->
              let view = locked (fun () -> restrict comp) in
              scoped := Some (comp, view);
              view)
    in
    let claimed = ref [] in
    let rec go () =
      match claim () with
      | None -> ()
      | Some (i, item) ->
          let ev = eval_timed obs eval (store_for item) item.Work_source.members in
          Atomic.incr eval_count;
          claimed := i :: !claimed;
          locked (fun () -> on_evaluated ev);
          (match ev.violation with Some v -> record i v | None -> ());
          go ()
    in
    Obs.span obs ~cat:"engine" "worker" go;
    !claimed
  in
  (* Exception safety. A worker body may raise (a broken [eval], an
     interrupted replica clone): the raise must not strand [finished] —
     that deadlocks the join — and must not leak borrowed replicas. Each
     worker runs under a catch-all that records the first failure (with
     its backtrace), flips [stop] so the other workers drain quickly, and
     still counts itself finished; after the join, every borrowed replica
     is released and the recorded exception is re-raised to the caller.
     The pool's parked domains never see the exception, so the pool stays
     reusable for the next run. *)
  let failure = ref None in
  let guarded w =
    match w () with
    | claimed -> claimed
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        locked (fun () -> if !failure = None then failure := Some (e, bt));
        Atomic.set stop true;
        []
  in
  let done_m = Mutex.create () and done_cv = Condition.create () in
  let helpers = jobs - 1 in
  let finished = ref 0 in
  let helper_claims = ref [] in
  for _ = 1 to helpers do
    Pool.submit (Pool.take ()) (fun () ->
        let claimed = guarded worker in
        Mutex.lock done_m;
        helper_claims := claimed @ !helper_claims;
        incr finished;
        Condition.signal done_cv;
        Mutex.unlock done_m)
  done;
  let mine = guarded worker in
  Obs.span obs ~cat:"engine" "join" (fun () ->
      Mutex.lock done_m;
      while !finished < helpers do
        Condition.wait done_cv done_m
      done;
      Mutex.unlock done_m);
  let claimed = mine @ !helper_claims in
  List.iter release !borrowed;
  (match !failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  let win, hit =
    match !best with None -> (max_int, None) | Some (i, v) -> (i, Some v)
  in
  (* On an early stop, counts are clamped to the winning index (the
     determinism contract); a drained run reports full counts. *)
  let counted =
    if stop_on_hit then List.length (List.filter (fun i -> i <= win) claimed)
    else List.length claimed
  in
  { hit; pulled = counted; evaluated = counted; exhausted = Budget.tripped budget }

let run ?(obs = Obs.null) ?(budget = Budget.unlimited) ?(counted = (0, 0))
    ?(stop_on_hit = true) ~jobs ~store ~replicate ?(release = ignore) ?restrict
    ~source ~eval ~on_item ~on_evaluated () =
  match backend_of_jobs jobs with
  | Sequential ->
      run_sequential ~obs ~budget ~counted ~stop_on_hit ~store ~restrict
        ~source ~eval ~on_item ~on_evaluated
  | Parallel jobs ->
      run_parallel ~obs ~jobs ~budget ~counted ~stop_on_hit ~replicate ~release
        ~restrict ~source ~eval ~on_item ~on_evaluated

(* Work-stealing clique backend. Instead of one sequential enumerator
   behind the claim lock, every worker pulls cliques straight out of a
   {!Bcgraph.Bron_kerbosch.Par} pool over [graph] — enumeration itself
   is parallel, which is what the single-dense-component worst case
   needs. Determinism is path-based: each claimed clique carries its
   position in the canonical search tree, the winning violation is the
   minimum path ({!Bcgraph.Bron_kerbosch.path_compare} = sequential
   emission order), and [Par.prune] abandons every subtree strictly
   after the current winner. On a violated run the reported counts are
   recovered exactly — [count_upto] walks the same tree sequentially
   (pure graph work, no worlds) up to the winning path — so pulled /
   evaluated match the sequential backend's clamped stats. On a
   budget-tripped run counts are whatever the workers got to (the same
   nondeterminism the claim-lock backend has under budgets). All items
   share one [scope] (the component being enumerated) or none (whole
   store): workers evaluate on a [restrict] view or a borrowed full
   replica. *)
let run_cliques_steal ?(obs = Obs.null) ?(budget = Budget.unlimited)
    ?(counted = (0, 0)) ~jobs ~replicate ?(release = ignore) ?restrict ?scope
    ~graph ~back ~eval ~on_item ~on_evaluated () =
  let pulled_base, evaluated_base = counted in
  let workers = match backend_of_jobs jobs with Sequential -> 1 | Parallel j -> j in
  let interrupt =
    if Budget.is_unlimited budget then None else Some (Budget.interrupt budget)
  in
  let pool = Bcgraph.Bron_kerbosch.Par.create ?interrupt ~workers graph in
  let lock = Mutex.create () in
  let locked f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
  in
  let pulled = Atomic.make 0 and eval_count = Atomic.make 0 in
  let best = ref None in
  let borrowed = ref [] in
  let record path v =
    locked (fun () ->
        match !best with
        | Some (bp, _) when Bcgraph.Bron_kerbosch.path_compare bp path <= 0 ->
            ()
        | _ ->
            best := Some (path, v);
            Bcgraph.Bron_kerbosch.Par.prune pool path)
  in
  let worker w () =
    let eval = eval () in
    let view = ref None in
    let store_for () =
      match !view with
      | Some store -> store
      | None ->
          let store =
            locked (fun () ->
                match (scope, restrict) with
                | Some comp, Some restrict -> restrict comp
                | _ ->
                    let store = replicate () in
                    borrowed := store :: !borrowed;
                    store)
          in
          view := Some store;
          store
    in
    let claim_raw () =
      if
        Budget.check budget
          ~pulled:(pulled_base + Atomic.get pulled)
          ~evaluated:(evaluated_base + Atomic.get eval_count)
        <> None
      then None
      else if Obs.enabled obs then
        Obs.span obs ~cat:"dcsat" "bk_yield" (fun () ->
            Bcgraph.Bron_kerbosch.Par.next pool ~worker:w)
      else Bcgraph.Bron_kerbosch.Par.next pool ~worker:w
    in
    let claim () =
      if Obs.enabled obs then Obs.span obs ~cat:"engine" "claim" claim_raw
      else claim_raw ()
    in
    let rec go () =
      match claim () with
      | None -> ()
      | Some (path, clique) ->
          Atomic.incr pulled;
          let members = List.map (fun i -> back.(i)) clique in
          locked (fun () -> on_item members);
          let ev = eval_timed obs eval (store_for ()) members in
          Atomic.incr eval_count;
          locked (fun () -> on_evaluated ev);
          (match ev.violation with Some v -> record path v | None -> ());
          go ()
    in
    Obs.span obs ~cat:"engine" "worker" go
  in
  let failure = ref None in
  let guarded w =
    try w () with
    | e ->
        let bt = Printexc.get_raw_backtrace () in
        locked (fun () -> if !failure = None then failure := Some (e, bt));
        (* poison the pool so the other workers drain quickly *)
        Bcgraph.Bron_kerbosch.Par.prune pool [| -1 |]
  in
  let done_m = Mutex.create () and done_cv = Condition.create () in
  let helpers = workers - 1 in
  let finished = ref 0 in
  for h = 1 to helpers do
    Pool.submit (Pool.take ()) (fun () ->
        guarded (worker h);
        Mutex.lock done_m;
        incr finished;
        Condition.signal done_cv;
        Mutex.unlock done_m)
  done;
  guarded (worker 0);
  Obs.span obs ~cat:"engine" "join" (fun () ->
      Mutex.lock done_m;
      while !finished < helpers do
        Condition.wait done_cv done_m
      done;
      Mutex.unlock done_m);
  List.iter release !borrowed;
  if Obs.enabled obs then begin
    Obs.add obs "bk.steal" (Bcgraph.Bron_kerbosch.Par.steals pool);
    Obs.add obs "bk.subtree" (Bcgraph.Bron_kerbosch.Par.subtrees pool)
  end;
  (match !failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  match !best with
  | Some (path, v) ->
      let counted = Bcgraph.Bron_kerbosch.count_upto graph path in
      { hit = Some v; pulled = counted; evaluated = counted;
        exhausted = Budget.tripped budget }
  | None ->
      {
        hit = None;
        pulled = Atomic.get pulled;
        evaluated = Atomic.get eval_count;
        exhausted = Budget.tripped budget;
      }
