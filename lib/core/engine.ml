module Bitset = Bcgraph.Bitset

module Work_source = struct
  type t = unit -> int list option

  let empty : t = fun () -> None

  let of_list items =
    let remaining = ref items in
    fun () ->
      match !remaining with
      | [] -> None
      | x :: tl ->
          remaining := tl;
          Some x

  let of_cliques graph ~back =
    let next = Bcgraph.Bron_kerbosch.generator graph in
    fun () -> Option.map (List.map (fun i -> back.(i))) (next ())
end

type violation = {
  world : int list;
  witness : (string * Relational.Value.t) list option;
}

type evaluation = { world : int list; violation : violation option }

type report = { hit : violation option; pulled : int; evaluated : int }

type backend = Sequential | Parallel of int

let max_jobs = 64
let backend_of_jobs jobs = if jobs <= 1 then Sequential else Parallel (min jobs max_jobs)
let default_jobs () = Domain.recommended_domain_count ()

let run_sequential ~store ~source ~eval ~on_item ~on_evaluated =
  let pulled = ref 0 and evaluated = ref 0 in
  let rec go () =
    match source () with
    | None -> None
    | Some members ->
        incr pulled;
        on_item members;
        let ev = eval store members in
        incr evaluated;
        on_evaluated ev;
        (match ev.violation with Some _ as hit -> hit | None -> go ())
  in
  let hit = go () in
  { hit; pulled = !pulled; evaluated = !evaluated }

(* Parallel backend. Work items are claimed from the source in index
   order under a single lock — the source itself may touch the primary
   store (Covers tests, can-append checks), which is safe because only
   the claim path ever does. Each worker evaluates on its private
   replica. Once any violation is recorded, claiming stops: unclaimed
   items all carry higher indexes than every claimed one, so none of
   them can beat the recorded violation; workers finish the items they
   already hold, and the lowest-index violation wins. That makes the
   returned witness — and, after clamping the work counters to the
   winning index, the reported stats — deterministic and equal to the
   sequential backend's. *)
let run_parallel ~replicas ~source ~eval ~on_item ~on_evaluated =
  let lock = Mutex.create () in
  let locked f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
  in
  let stop = Atomic.make false in
  let best = ref None in
  let next_index = ref 0 in
  let claim () =
    locked (fun () ->
        if Atomic.get stop then None
        else
          match source () with
          | None -> None
          | Some members ->
              let i = !next_index in
              incr next_index;
              on_item members;
              Some (i, members))
  in
  let record i v =
    locked (fun () ->
        (match !best with
        | Some (bi, _) when bi <= i -> ()
        | _ -> best := Some (i, v));
        Atomic.set stop true)
  in
  let worker store =
    let claimed = ref [] in
    let rec go () =
      match claim () with
      | None -> ()
      | Some (i, members) ->
          let ev = eval store members in
          claimed := i :: !claimed;
          locked (fun () -> on_evaluated ev);
          (match ev.violation with Some v -> record i v | None -> ());
          go ()
    in
    go ();
    !claimed
  in
  let domains = List.map (fun store -> Domain.spawn (fun () -> worker store)) replicas in
  let claimed = List.concat_map Domain.join domains in
  let win, hit =
    match !best with None -> (max_int, None) | Some (i, v) -> (i, Some v)
  in
  let counted = List.length (List.filter (fun i -> i <= win) claimed) in
  { hit; pulled = counted; evaluated = counted }

let run ~jobs ~store ~replicate ~source ~eval ~on_item ~on_evaluated =
  match backend_of_jobs jobs with
  | Sequential -> run_sequential ~store ~source ~eval ~on_item ~on_evaluated
  | Parallel jobs ->
      (* Replicas are created up front, in this domain: cloning reads the
         primary store, which must not race with source pulls. *)
      let replicas = List.init jobs (fun _ -> replicate ()) in
      run_parallel ~replicas ~source ~eval ~on_item ~on_evaluated
