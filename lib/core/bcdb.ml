module R = Relational

type t = {
  state : R.Database.t;
  constraints : R.Constr.t list;
  pending : Pending.t array;
}

let create ~state ~constraints ~pending ?labels () =
  let label_of =
    match labels with
    | None -> fun _ -> None
    | Some ls ->
        if List.length ls <> List.length pending then
          invalid_arg "Bcdb.create: labels length mismatch";
        let arr = Array.of_list ls in
        fun i -> Some arr.(i)
  in
  if not (R.Check.satisfies (R.Database.source state) constraints) then
    Error "current state violates the integrity constraints"
  else
    let pending =
      Array.of_list
        (List.mapi (fun i rows -> Pending.make ~id:i ?label:(label_of i) rows) pending)
    in
    Ok { state; constraints; pending }

let create_exn ~state ~constraints ~pending ?labels () =
  match create ~state ~constraints ~pending ?labels () with
  | Ok db -> db
  | Error msg -> invalid_arg ("Bcdb.create: " ^ msg)

(* For trusted inputs where re-validating [R |= I] would cost a full
   pass over the state (snapshots written by us, generators correct by
   construction): same shape as [create], no [Check.satisfies]. *)
let create_unchecked ~state ~constraints ~pending ?labels () =
  let label_of =
    match labels with
    | None -> fun _ -> None
    | Some ls ->
        if List.length ls <> List.length pending then
          invalid_arg "Bcdb.create_unchecked: labels length mismatch";
        let arr = Array.of_list ls in
        fun i -> Some arr.(i)
  in
  let pending =
    Array.of_list
      (List.mapi (fun i rows -> Pending.make ~id:i ?label:(label_of i) rows) pending)
  in
  { state; constraints; pending }

let catalog t = R.Database.catalog t.state
let pending_count t = Array.length t.pending
let fds t = R.Constr.fds t.constraints
let inds t = R.Constr.inds t.constraints
let constraint_profile t = R.Constr.classify (catalog t) t.constraints

let with_pending t ?label rows =
  let id = Array.length t.pending in
  let tx = Pending.make ~id ?label rows in
  { t with pending = Array.append t.pending [| tx |] }

let append_to_state t id =
  if id < 0 || id >= Array.length t.pending then Error "no such transaction"
  else
    let tx = t.pending.(id) in
    let grouped =
      List.map (fun rel -> (rel, Pending.rows_for tx rel)) (Pending.relations tx)
    in
    if
      not
        (R.Check.batch_consistent (R.Database.source t.state) t.constraints
           grouped)
    then Error "appending this transaction would violate the constraints"
    else begin
      let state = R.Database.copy t.state in
      R.Database.insert_all state tx.Pending.rows;
      let remaining =
        Array.to_list t.pending
        |> List.filter (fun (p : Pending.t) -> p.Pending.id <> id)
        |> List.mapi (fun i (p : Pending.t) ->
               Pending.make ~id:i ~label:p.Pending.label p.Pending.rows)
      in
      Ok { t with state; pending = Array.of_list remaining }
    end

let pp_summary ppf t =
  Format.fprintf ppf
    "blockchain database: %d state tuples, %d constraints, %d pending txs"
    (R.Database.total_cardinality t.state)
    (List.length t.constraints)
    (Array.length t.pending)
