(** QCheck generator and shrinker over protocol traces.

    Rather than generating {!Trace.t} values directly — whose internal
    references (tags, parties) would dangle the moment the shrinker
    removed an entry — generation works on a {e script}: a flat list of
    self-contained {!choice}s. {!assemble} resolves each choice against
    whatever came before it (references are taken modulo the number of
    earlier submissions, impossible choices degrade to plain payments),
    so {e every} script is a well-formed trace and shrinking is just
    [Shrink.list]: remove choices, shrink their numeric fields, and the
    reassembled trace is still total. Submissions are wrapped as
    [Attempt] steps, so mempool rejections and unbuildable transactions
    are observations, never script errors. *)

type choice =
  | Pay of { from_ : int; to_ : int; amount : int; fee : int }
  | Double of { of_ : int; to_ : int; fee : int }
      (** Re-spend the inputs of the [of_]-th earlier submission. *)
  | Bump of { of_ : int; add_fee : int }
  | Cancel of { of_ : int; fee : int }
  | Mine of int  (** Confirm at peer [n mod peers]. *)
  | Slot  (** Advance the slot clock with an empty block. *)
  | Split  (** Partition peer 1 away from peer 0. *)
  | Join  (** Heal the partition. *)

type script = choice list

val parties : string array
(** The fixed cast every generated trace draws from. *)

val assemble : script -> Trace.t
(** Total: any choice list — including every shrink of a generated one —
    assembles to a runnable trace over two peers, ending with a heal and
    a delivery round so the observation peer has seen all surviving
    traffic. *)

val gen : script QCheck.Gen.t
val shrink : script QCheck.Shrink.t
val print : script -> string

val arbitrary : script QCheck.arbitrary
(** [gen] + [shrink] + [print] packaged for [QCheck.Test.make]. *)

val differential :
  ?jobs:int ->
  ?use_delta:bool ->
  ?use_native:bool ->
  ?use_steal:bool ->
  script ->
  (unit, string) result
(** The differential oracle the fuzz tests and the bench smoke round
    share: assemble and run the script, compile the observation peer to
    an [(R, I, T)] instance, and check that the auto-dispatched solver
    and the brute-force enumerator return the same verdict constructor
    for a canonical aggregate denial constraint ("the first party never
    receives more than a fixed total"). [Error] describes the
    disagreement; interpreter failures are impossible by construction
    and reported as errors if they somehow occur. *)
