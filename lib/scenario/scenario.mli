(** Entry point of the scenario DSL; re-exports the whole combinator
    stack so consumers write [Scenario.Trace.pay], [Scenario.solve], …

    A scenario: one honest multi-party trace, a denial constraint over
    its compiled [(R, I, T)] instance, and the verdict the solvers must
    return — plus {e variants}, each a list of {!Tweak}s turning the
    honest trace into an attack (or a defense) with its own expected
    verdict. A scenario family is the unit the attack library, the CLI,
    the differential test harness and the bench section all consume. *)

module Party = Party
module Step = Step
module Trace = Trace
module Tweak = Tweak
module Interp = Interp
module Compile = Compile
module Expect = Expect
module Trace_gen = Trace_gen

type property = Compile.t -> (Bcquery.Query.t, string) result
(** Built after the run, so realized txids and pks can be quoted as
    constants ({!Compile.txid} / {!Compile.pk}). *)

type t = {
  name : string;
  description : string;
  trace : Trace.t;
  property : property;
  expect : Expect.verdict;
  max_worlds : int option;
      (** Default world budget for solves of this instance — scenarios
          expecting [Unknown] carry the budget that starves them. *)
}

type variant = {
  vname : string;
  vdescription : string;
  tweaks : Tweak.t list;
  vexpect : Expect.verdict;
  vmax_worlds : int option;
}

type family = { base : t; variants : variant list }

val variant :
  ?max_worlds:int ->
  name:string ->
  description:string ->
  expect:Expect.verdict ->
  Tweak.t list ->
  variant

val instances : family -> t list
(** The base instance followed by each variant applied to it; variant
    instances are named [base/variant]. *)

val instance_count : family -> int

(** {2 Solving} *)

type engine = Auto | Naive | Opt | Brute

val engine_name : engine -> string

type solved = {
  compiled : Compile.t;
  query : Bcquery.Query.t;
  outcome : Bccore.Dcsat.outcome;
  strategy : string;  (** Which solver actually ran. *)
  check : (unit, string) result;  (** Expectation vs solver verdict. *)
}

val compile : t -> (Compile.t, string) result
(** Run the trace and encode the observation peer. *)

val solve_compiled :
  ?engine:engine ->
  ?jobs:int ->
  ?use_delta:bool ->
  ?use_native:bool ->
  ?use_steal:bool ->
  ?timeout_s:float ->
  ?max_worlds:int ->
  t ->
  Compile.t ->
  (solved, string) result
(** Solve the already-compiled instance under a fresh session.
    [max_worlds] (or, unset, the scenario's own) and [timeout_s] bound
    the solve with a fresh budget. [Error] on an unparseable property
    or a solver refusal. *)

val solve :
  ?engine:engine ->
  ?jobs:int ->
  ?use_delta:bool ->
  ?use_native:bool ->
  ?use_steal:bool ->
  ?timeout_s:float ->
  ?max_worlds:int ->
  t ->
  (solved, string) result
(** {!compile} + {!solve_compiled}. *)
