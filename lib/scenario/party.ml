type t = {
  name : string;
  wallet : Chain.Wallet.t;
  key : Chain.Crypto.keypair;
}

let make name =
  {
    name;
    wallet = Chain.Wallet.create ~seed:("party:" ^ name);
    key = Chain.Crypto.keypair ~seed:("msig:" ^ name);
  }

let address t = Chain.Wallet.address t.wallet
let pk t = Chain.Wallet.public_key t.wallet
let msig_pk t = t.key.Chain.Crypto.public

let multisig m parties =
  Chain.Script.Multi_sig (m, List.map msig_pk parties)

let pp ppf t = Format.fprintf ppf "%s<%s>" t.name (pk t)
