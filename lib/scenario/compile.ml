module C = Chain

type t = { run : Interp.t; db : Bccore.Bcdb.t }

(* The pending set T of the compiled instance is the union of every
   peer's mempool, not just the observer's: a node reasoning about the
   future accounts for every announced-but-unconfirmed transaction it
   knows of, and the conflicting ones — the double-spend sitting in the
   other side's pool, the RBF original still live on a slow peer — are
   exactly what makes the maximal-world structure non-trivial. The
   observer's own chain stays the sole source of the current state R. *)
let encode run =
  let net = Interp.net run in
  let peers = (Interp.trace run).Trace.peers in
  let observed = Interp.node run in
  let chain = C.Node.chain observed in
  let confirmed = C.Chain_state.all_txs chain in
  let on_chain = Hashtbl.create 64 in
  List.iter
    (fun (tx : C.Tx.t) -> Hashtbl.replace on_chain tx.C.Tx.txid ())
    confirmed;
  let seen = Hashtbl.create 16 in
  let pending = ref [] in
  for i = 0 to peers - 1 do
    List.iter
      (fun (tx : C.Tx.t) ->
        if
          (not (Hashtbl.mem on_chain tx.C.Tx.txid))
          && not (Hashtbl.mem seen tx.C.Tx.txid)
        then (
          Hashtbl.replace seen tx.C.Tx.txid ();
          pending := tx :: !pending))
      (C.Node.pending_txs (C.Network.peer net i))
  done;
  (* Inputs may reference outputs confirmed only on another peer's
     branch; resolve against every chain, observer first. *)
  let resolver outpoint =
    let rec go i =
      if i >= peers then None
      else
        match
          C.Chain_state.find_output
            (C.Node.chain (C.Network.peer net i))
            outpoint
        with
        | Some _ as hit -> hit
        | None -> go (i + 1)
    in
    go 0
  in
  C.Encode.bcdb_of_txs ~confirmed ~pending:(List.rev !pending) ~resolver

let of_trace trace =
  Result.bind (Interp.run trace) (fun run ->
      Result.map (fun db -> { run; db }) (encode run))

let db t = t.db
let run t = t.run

let txid t tag =
  match Interp.find_tx t.run tag with
  | Some tx -> tx.Chain.Tx.txid
  | None -> invalid_arg (Printf.sprintf "Compile.txid: unknown tag %S" tag)

let pk t name = Party.pk (Interp.party t.run name)

let pending_index t tag =
  let id = txid t tag in
  let n = Array.length t.db.Bccore.Bcdb.pending in
  let rec go i =
    if i >= n then None
    else if String.equal t.db.Bccore.Bcdb.pending.(i).Bccore.Pending.label id
    then Some i
    else go (i + 1)
  in
  go 0

let parse_property t text =
  Bcquery.Parser.parse ~catalog:(Bccore.Bcdb.catalog t.db) text
