(** Trace perturbations, cooked-validators style: a named, composable
    transformation of a base trace into an attack variant. A scenario
    ships one honest trace plus a list of tweaks, each paired with the
    verdict the perturbed instance must produce — "inject a
    double-spend and the constraint must flip to violated" is one tweak
    plus one expectation.

    Anchoring is by entry label ({!Trace.entry}); a tweak that names a
    label the trace does not carry raises [Invalid_argument] when
    applied — a scenario-authoring bug, not a runtime condition. *)

type t

val name : t -> string
val apply : t -> Trace.t -> Trace.t
val apply_all : t list -> Trace.t -> Trace.t
(** Left to right. *)

val insert_after : string -> Trace.entry list -> t
val insert_before : string -> Trace.entry list -> t
val append : Trace.entry list -> t
val remove : string -> t
val replace : string -> Trace.entry -> t

val swap : string -> string -> t
(** Exchange the positions of two labelled entries — the
    order-perturbation behind RBF/race variants. *)

val allow_reject : string -> t
(** Downgrade the labelled submission to {!Step.Attempt}: after another
    tweak changed the world, its acceptance is no longer guaranteed. *)

val must_reject : string -> t
(** Upgrade the labelled submission to {!Step.Reject}. *)

val map_entry : string -> name:string -> (Trace.entry -> Trace.entry) -> t
(** General labelled-entry rewrite, for tweaks the combinators above
    don't cover. *)
