(** A named protocol participant: a deterministic wallet (payments,
    fee bumps, cancels) plus a standalone keypair used when the party
    signs as one leg of a multisig script. Everything is derived from
    the name, so a party can be reconstructed anywhere — scripts refer
    to parties by name and the interpreter materializes them on
    demand. *)

type t = private {
  name : string;
  wallet : Chain.Wallet.t;
  key : Chain.Crypto.keypair;
      (** Multisig leg, independent of the wallet's key chain. *)
}

val make : string -> t
(** Deterministic in [name]: two [make "alice"] calls control the same
    coins. *)

val address : t -> Chain.Script.t
(** The wallet's primary pay-to-key script. *)

val pk : t -> string
(** The primary public key — the value scenario properties quote in
    [TxOut]/[TxIn] constants. *)

val msig_pk : t -> string
(** Public key of the multisig leg ({!field-key}). *)

val multisig : int -> t list -> Chain.Script.t
(** [multisig m parties]: an m-of-n script over the parties' multisig
    legs. *)

val pp : Format.formatter -> t -> unit
