(** One action of a scripted multi-party trace. Steps are pure data —
    parties are referred to by name, earlier transactions by tag — so a
    step list can be transformed (see {!Tweak}) and replayed
    deterministically by the interpreter ({!Interp}). *)

type dest =
  | To_party of string  (** The party's primary address. *)
  | To_script of Chain.Script.t
      (** An explicit script: timelock, multisig, hash lock. *)

(** How a submitted transaction is built. Tags reference transactions
    built by earlier submissions. *)
type build =
  | Pay of { from_ : string; dest : dest; amount : int; fee : int }
      (** Wallet payment with change, coins selected against the peer's
          chain + mempool view (pending spends are not double-picked). *)
  | Double_spend of { of_ : string; by : string; dest : dest; fee : int }
      (** Re-spend the inputs of the tagged transaction that [by] owns,
          to [dest] — conflicts with [of_] by construction (the attack
          primitive behind double-spends and races). *)
  | Bump of { of_ : string; by : string; add_fee : int }
      (** Replace-by-fee: the tagged transfer with [add_fee] more fee. *)
  | Cancel of { of_ : string; by : string; fee : int }
      (** Spend the tagged transaction's first owned input back to
          [by] — retraction by conflict. *)
  | Multi_spend of {
      script : Chain.Script.t;  (** The multisig script being spent. *)
      source : source;
      signers : string list;  (** Parties providing multisig legs. *)
      dest : dest;
      fee : int;
    }  (** Spend a multisig output wholesale (minus [fee]) to [dest]. *)

and source =
  | Script_utxo of Chain.Script.t
      (** The unique unspent output carrying this script at the
          submitting peer (e.g. a funded treasury). *)
  | Output_of of string * int  (** (tag, 0-based output index). *)

type submit = { tag : string; at : int; build : build }

type t =
  | Submit of submit  (** Must be accepted; a reject is a script error. *)
  | Reject of submit
      (** Must be rejected by the mempool; acceptance is a script
          error. Documents the protocol's defense working. *)
  | Attempt of submit
      (** Accepted or rejected, either way; the outcome is recorded.
          Tweaked and generated traces use this so perturbations cannot
          crash the interpreter. *)
  | Mine of { at : int; min_feerate : float option }
      (** One block from the peer's mempool, gossiped. [min_feerate]
          lets a miner skip underpaying transactions — the knob behind
          "delay confirmation past the deadline". *)
  | Slots of { at : int; count : int }
      (** [count] empty blocks at the peer: the slot clock. Timelocked
          scripts mature as the height advances. *)
  | Partition of int list
      (** Cut the listed peers off from the rest (in-flight traffic
          crossing the cut is lost). *)
  | Heal  (** Restore the full mesh and re-announce. *)
  | Deliver  (** Drain the gossip queues once. *)
  | Converge
      (** Delivery rounds with re-announce backoff until in sync —
          needed when the trace runs over a lossy {!Chain.Link_model}. *)

val submit_of : t -> submit option
val pp_dest : Format.formatter -> dest -> unit
val pp : Format.formatter -> t -> unit
