(** Trace interpreter: replays a {!Trace.t} over a fresh
    {!Chain.Network} (one node per peer, genesis minting the trace's
    funding), building, submitting, mining and partitioning exactly as
    scripted. Deterministic: parties, keys and block contents are all
    derived from names and script order, so the same trace always
    produces the same chain state and mempools.

    Submission steps assert their outcome ([Submit] must be accepted,
    [Reject] must be refused, [Attempt] records either); a failed
    assertion — or a step referencing an unknown tag or party — is a
    {e script error} and aborts the run with [Error]. Gossip queues are
    drained after every step, so within a partition side mempools stay
    converged without explicit delivery steps. *)

type outcome =
  | Accepted
  | Rejected of Chain.Mempool.reject
  | Unbuildable of string
      (** An [Attempt] submission whose transaction could not even be
          constructed (coins already spent, nothing left to bump…) —
          recorded, never fatal, so tweaked and generated traces stay
          total. *)

type t

val run : Trace.t -> (t, string) result

val trace : t -> Trace.t
val net : t -> Chain.Network.t

val node : t -> Chain.Node.t
(** The observation peer's node ({!Trace.t.observe}). *)

val party : t -> string -> Party.t
(** Materialize (or recall) the named party. *)

val find_tx : t -> string -> Chain.Tx.t option
(** The transaction a submission tag bound, whatever its outcome. *)

val tx_exn : t -> string -> Chain.Tx.t
val outcome : t -> string -> outcome option
val accepted : t -> string -> bool
(** The tagged submission was accepted by its peer's mempool. *)

val tags : t -> string list
(** All bound tags, in script order. *)
