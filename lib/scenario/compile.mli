(** Trace → [(R, I, T)] compilation: run the trace, then encode the
    observation peer's view relationally ({!Chain.Encode.bcdb_of_txs}) —
    the peer's active chain becomes the current state [R] under the
    standard TxOut/TxIn constraints [I], while the pending set [T] is
    the union of {e every} peer's mempool (minus what the observer
    already confirmed): announced-but-unconfirmed transactions are
    known futures wherever they currently sit, and mutually conflicting
    ones — double-spends across a partition, RBF originals still live
    on slow peers — are what give the instance more than one maximal
    world. The compiled value keeps the interpreter state around so
    properties can quote realized txids and public keys as query
    constants. *)

type t

val of_trace : Trace.t -> (t, string) result
val db : t -> Bccore.Bcdb.t
val run : t -> Interp.t

val txid : t -> string -> string
(** The txid a submission tag bound. Raises [Invalid_argument] on an
    unknown tag. *)

val pk : t -> string -> string
(** A party's primary public key (usable before or after the run: keys
    are deterministic in the name). *)

val pending_index : t -> string -> int option
(** The pending-set id of the tagged transaction in the compiled
    database, when it ended the trace in the observation peer's
    mempool. Pending transactions are labelled by txid. *)

val parse_property : t -> string -> (Bcquery.Query.t, string) result
(** Parse a denial constraint against the compiled catalog. *)
