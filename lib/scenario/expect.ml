module Core = Bccore

type verdict =
  | Satisfied
  | Violated of { class_ : string; involves : string list }
  | Unknown

let name = function
  | Satisfied -> "satisfied"
  | Violated { class_; _ } -> "violated:" ^ class_
  | Unknown -> "unknown"

let actual_name = function
  | Core.Dcsat.Satisfied -> "satisfied"
  | Core.Dcsat.Violated _ -> "violated"
  | Core.Dcsat.Unknown _ -> "unknown"

let check compiled ~expected (actual : Core.Dcsat.verdict) =
  match (expected, actual) with
  | Satisfied, Core.Dcsat.Satisfied -> Ok ()
  | Unknown, Core.Dcsat.Unknown _ -> Ok ()
  | Violated { class_; involves }, Core.Dcsat.Violated { world; _ } ->
      let missing =
        List.filter_map
          (fun tag ->
            match Compile.pending_index compiled tag with
            | None ->
                Some
                  (Printf.sprintf "%s (not pending in the compiled database)"
                     tag)
            | Some id ->
                if List.mem id world then None
                else Some (Printf.sprintf "%s (id %d not in witness world)" tag id))
          involves
      in
      if missing = [] then Ok ()
      else
        Error
          (Printf.sprintf
             "violated as expected (%s), but the witness world misses: %s"
             class_
             (String.concat ", " missing))
  | _ ->
      Error
        (Printf.sprintf "expected %s, solver says %s" (name expected)
           (actual_name actual))
