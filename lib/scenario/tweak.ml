type t = { name : string; f : Trace.t -> Trace.t }

let name t = t.name
let apply t trace = t.f trace
let apply_all ts trace = List.fold_left (fun tr t -> apply t tr) trace ts

let anchored op label f =
  {
    name = Printf.sprintf "%s:%s" op label;
    f =
      (fun trace ->
        if Trace.find trace label = None then
          invalid_arg
            (Printf.sprintf "Tweak.%s: no entry labelled %S" op label);
        f trace);
  }

let at_label label ~before ~replacing trace =
  let entries =
    List.concat_map
      (fun (e : Trace.entry) ->
        if e.Trace.label = Some label then
          if before then replacing e @ [ e ] else e :: replacing e
        else [ e ])
      trace.Trace.entries
  in
  { trace with Trace.entries }

let insert_after label extra =
  anchored "insert-after" label
    (at_label label ~before:false ~replacing:(fun _ -> extra))

let insert_before label extra =
  anchored "insert-before" label
    (at_label label ~before:true ~replacing:(fun _ -> extra))

let append extra =
  {
    name = "append";
    f = (fun trace -> { trace with Trace.entries = trace.Trace.entries @ extra });
  }

let remove label =
  anchored "remove" label (fun trace ->
      {
        trace with
        Trace.entries =
          List.filter
            (fun (e : Trace.entry) -> e.Trace.label <> Some label)
            trace.Trace.entries;
      })

let rewrite op label g =
  anchored op label (fun trace ->
      {
        trace with
        Trace.entries =
          List.map
            (fun (e : Trace.entry) ->
              if e.Trace.label = Some label then g e else e)
            trace.Trace.entries;
      })

let replace label entry = rewrite "replace" label (fun _ -> entry)

let swap l1 l2 =
  {
    name = Printf.sprintf "swap:%s<->%s" l1 l2;
    f =
      (fun trace ->
        let e1 = Trace.find trace l1 and e2 = Trace.find trace l2 in
        match (e1, e2) with
        | Some e1, Some e2 ->
            {
              trace with
              Trace.entries =
                List.map
                  (fun (e : Trace.entry) ->
                    if e.Trace.label = Some l1 then e2
                    else if e.Trace.label = Some l2 then e1
                    else e)
                  trace.Trace.entries;
            }
        | _ ->
            invalid_arg
              (Printf.sprintf "Tweak.swap: missing label %S or %S" l1 l2));
  }

let allow_reject label = rewrite "allow-reject" label Trace.attempted
let must_reject label = rewrite "must-reject" label Trace.rejected
let map_entry label ~name g = rewrite name label g
