type fund = Fund_party of string * int | Fund_script of Chain.Script.t * int
type entry = { label : string option; step : Step.t }

type t = {
  peers : int;
  funding : fund list;
  entries : entry list;
  observe : int;
  faults : (unit -> Chain.Link_model.t) option;
}

let make ?(peers = 1) ?(observe = 0) ?faults ~funding entries =
  if peers < 1 then invalid_arg "Trace.make: need at least one peer";
  if observe < 0 || observe >= peers then
    invalid_arg "Trace.make: observe out of range";
  { peers; funding; entries; observe; faults }

let step ?label step = { label; step }

let submit ?label ?(at = 0) ~tag build =
  { label; step = Step.Submit { Step.tag; at; build } }

let pay ?label ?at ~tag ~from_ ~to_ ~amount ~fee () =
  submit ?label ?at ~tag (Step.Pay { from_; dest = to_; amount; fee })

let double_spend ?label ?at ~tag ~of_ ~by ~to_ ~fee () =
  submit ?label ?at ~tag (Step.Double_spend { of_; by; dest = to_; fee })

let bump ?label ?at ~tag ~of_ ~by ~add_fee () =
  submit ?label ?at ~tag (Step.Bump { of_; by; add_fee })

let cancel ?label ?at ~tag ~of_ ~by ~fee () =
  submit ?label ?at ~tag (Step.Cancel { of_; by; fee })

let multi_spend ?label ?at ~tag ~script ~source ~signers ~to_ ~fee () =
  submit ?label ?at ~tag
    (Step.Multi_spend { script; source; signers; dest = to_; fee })

let mine ?label ?(at = 0) ?min_feerate () =
  { label; step = Step.Mine { at; min_feerate } }

let slots ?label ?(at = 0) count = { label; step = Step.Slots { at; count } }
let partition ?label group = { label; step = Step.Partition group }
let heal ?label () = { label; step = Step.Heal }
let deliver ?label () = { label; step = Step.Deliver }
let converge ?label () = { label; step = Step.Converge }

let rejected e =
  match e.step with
  | Step.Submit s | Step.Attempt s | Step.Reject s ->
      { e with step = Step.Reject s }
  | _ -> invalid_arg "Trace.rejected: not a submission step"

let attempted e =
  match e.step with
  | Step.Submit s | Step.Attempt s | Step.Reject s ->
      { e with step = Step.Attempt s }
  | _ -> invalid_arg "Trace.attempted: not a submission step"

let find t label =
  List.find_opt (fun e -> e.label = Some label) t.entries

let pp ppf t =
  Format.fprintf ppf "@[<v>trace (%d peer%s, observe peer%d)" t.peers
    (if t.peers = 1 then "" else "s")
    t.observe;
  List.iter
    (fun f ->
      match f with
      | Fund_party (p, amount) ->
          Format.fprintf ppf "@,  fund %s %d" p amount
      | Fund_script (s, amount) ->
          Format.fprintf ppf "@,  fund %a %d" Chain.Script.pp s amount)
    t.funding;
  List.iter
    (fun e ->
      Format.fprintf ppf "@,  %a%s" Step.pp e.step
        (match e.label with None -> "" | Some l -> "  (label " ^ l ^ ")"))
    t.entries;
  Format.fprintf ppf "@]"
