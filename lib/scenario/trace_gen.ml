module Core = Bccore

type choice =
  | Pay of { from_ : int; to_ : int; amount : int; fee : int }
  | Double of { of_ : int; to_ : int; fee : int }
  | Bump of { of_ : int; add_fee : int }
  | Cancel of { of_ : int; fee : int }
  | Mine of int
  | Slot
  | Split
  | Join

type script = choice list

let parties = [| "gen-a"; "gen-b"; "gen-c" |]

let party i = parties.(abs i mod Array.length parties)
let amount_of a = 500 + (abs a mod 30_000)
let fee_of f = 100 + (abs f mod 900)

(* Every submission is wrapped as [Attempt] and every reference resolves
   modulo the submissions that actually precede it, so removing or
   reordering choices — which is all the shrinker does — can never make
   the trace ill-formed, only change what it observes. *)
let assemble (script : script) : Trace.t =
  (* (tag, author), newest first. *)
  let made = ref [] in
  let count = ref 0 in
  let next_tag () =
    let tag = Printf.sprintf "g%d" !count in
    incr count;
    tag
  in
  let pick of_ = List.nth !made (abs of_ mod List.length !made) in
  let rec entry_of = function
    | Pay { from_; to_; amount; fee } ->
        let tag = next_tag () and author = party from_ in
        made := (tag, author) :: !made;
        Trace.attempted
          (Trace.pay ~tag ~from_:author ~to_:(Step.To_party (party to_))
             ~amount:(amount_of amount) ~fee:(fee_of fee) ())
    | Double { of_; to_; fee } when !made <> [] ->
        let of_tag, author = pick of_ in
        let tag = next_tag () in
        made := (tag, author) :: !made;
        Trace.attempted
          (Trace.double_spend ~tag ~of_:of_tag ~by:author
             ~to_:(Step.To_party (party to_)) ~fee:(fee_of fee) ())
    | Bump { of_; add_fee } when !made <> [] ->
        let of_tag, author = pick of_ in
        let tag = next_tag () in
        made := (tag, author) :: !made;
        Trace.attempted
          (Trace.bump ~tag ~of_:of_tag ~by:author
             ~add_fee:(200 + (abs add_fee mod 2_000)) ())
    | Cancel { of_; fee } when !made <> [] ->
        let of_tag, author = pick of_ in
        let tag = next_tag () in
        made := (tag, author) :: !made;
        Trace.attempted
          (Trace.cancel ~tag ~of_:of_tag ~by:author ~fee:(fee_of fee) ())
    | Double { of_; to_; fee } -> entry_of (Pay { from_ = of_; to_; amount = 0; fee })
    | Bump { of_; add_fee } ->
        entry_of (Pay { from_ = of_; to_ = of_; amount = 0; fee = add_fee })
    | Cancel { of_; fee } -> entry_of (Pay { from_ = of_; to_ = of_; amount = 0; fee })
    | Mine p -> Trace.mine ~at:(abs p mod 2) ()
    | Slot -> Trace.slots 1
    | Split -> Trace.partition [ 1 ]
    | Join -> Trace.heal ()
  in
  let entries = List.map entry_of script in
  let funding =
    Array.to_list parties
    |> List.concat_map (fun p ->
           [ Trace.Fund_party (p, 60_000); Trace.Fund_party (p, 60_000) ])
  in
  Trace.make ~peers:2 ~observe:0 ~funding
    (entries @ [ Trace.heal (); Trace.deliver () ])

let gen : script QCheck.Gen.t =
  let open QCheck.Gen in
  let choice =
    frequency
      [
        ( 5,
          map
            (fun (from_, to_, amount, fee) -> Pay { from_; to_; amount; fee })
            (quad (int_bound 20) (int_bound 20) (int_bound 30_000)
               (int_bound 900)) );
        ( 2,
          map
            (fun (of_, to_, fee) -> Double { of_; to_; fee })
            (triple (int_bound 20) (int_bound 20) (int_bound 900)) );
        ( 1,
          map
            (fun (of_, add_fee) -> Bump { of_; add_fee })
            (pair (int_bound 20) (int_bound 2_000)) );
        ( 1,
          map
            (fun (of_, fee) -> Cancel { of_; fee })
            (pair (int_bound 20) (int_bound 900)) );
        (3, map (fun p -> Mine p) (int_bound 3));
        (1, return Slot);
        (1, return Split);
        (1, return Join);
      ]
  in
  list_size (int_range 1 12) choice

let shrink_choice (c : choice) yield =
  match c with
  | Pay { from_; to_; amount; fee } ->
      QCheck.Shrink.int amount (fun amount ->
          yield (Pay { from_; to_; amount; fee }));
      QCheck.Shrink.int fee (fun fee -> yield (Pay { from_; to_; amount; fee }))
  | Double { of_; to_; fee } ->
      QCheck.Shrink.int fee (fun fee -> yield (Double { of_; to_; fee }))
  | Bump { of_; add_fee } ->
      QCheck.Shrink.int add_fee (fun add_fee -> yield (Bump { of_; add_fee }))
  | Cancel { of_; fee } ->
      QCheck.Shrink.int fee (fun fee -> yield (Cancel { of_; fee }))
  | Mine _ | Slot | Split | Join -> ()

let shrink : script QCheck.Shrink.t = QCheck.Shrink.list ~shrink:shrink_choice
let print script = Format.asprintf "%a" Trace.pp (assemble script)
let arbitrary = QCheck.make ~print ~shrink gen

(* The base funding already pays each party 120_000 at genesis, so the
   interesting margin is what the trace adds on top of it. *)
let threshold = 121_000

let verdict_class = function
  | Core.Dcsat.Satisfied -> "satisfied"
  | Core.Dcsat.Violated _ -> "violated"
  | Core.Dcsat.Unknown _ -> "unknown"

let differential ?jobs ?use_delta ?use_native ?use_steal script =
  match Compile.of_trace (assemble script) with
  | Error msg -> Error ("interpreter: " ^ msg)
  | Ok compiled -> (
      let query =
        Workload.Queries.qa ~x:(Compile.pk compiled parties.(0)) ~threshold
      in
      let db = Compile.db compiled in
      let auto =
        Core.Solver.solve ?jobs ?use_delta ?use_native ?use_steal
          (Core.Session.create db) query
      in
      match auto with
      | Error msg -> Error ("auto solver refused: " ^ msg)
      | Ok (auto_outcome, strategy) -> (
          match
            Core.Dcsat.brute_force ?jobs ?use_delta ?use_native
              (Core.Session.create db) query
          with
          | exception Invalid_argument msg ->
              Error ("brute force refused: " ^ msg)
          | brute ->
              let a = verdict_class auto_outcome.Core.Dcsat.verdict
              and b = verdict_class brute.Core.Dcsat.verdict in
              if String.equal a b then Ok ()
              else
                Error
                  (Printf.sprintf "%s (%s) disagrees with brute force (%s)"
                     (Core.Solver.strategy_name strategy)
                     a b)))
