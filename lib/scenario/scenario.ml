module Party = Party
module Step = Step
module Trace = Trace
module Tweak = Tweak
module Interp = Interp
module Compile = Compile
module Expect = Expect
module Trace_gen = Trace_gen
module Core = Bccore

type property = Compile.t -> (Bcquery.Query.t, string) result

type t = {
  name : string;
  description : string;
  trace : Trace.t;
  property : property;
  expect : Expect.verdict;
  max_worlds : int option;
}

type variant = {
  vname : string;
  vdescription : string;
  tweaks : Tweak.t list;
  vexpect : Expect.verdict;
  vmax_worlds : int option;
}

type family = { base : t; variants : variant list }

let variant ?max_worlds ~name ~description ~expect tweaks =
  {
    vname = name;
    vdescription = description;
    tweaks;
    vexpect = expect;
    vmax_worlds = max_worlds;
  }

let apply_variant base v =
  {
    base with
    name = base.name ^ "/" ^ v.vname;
    description = v.vdescription;
    trace = Tweak.apply_all v.tweaks base.trace;
    expect = v.vexpect;
    max_worlds = v.vmax_worlds;
  }

let instances f = f.base :: List.map (apply_variant f.base) f.variants
let instance_count f = 1 + List.length f.variants

type engine = Auto | Naive | Opt | Brute

let engine_name = function
  | Auto -> "auto"
  | Naive -> "naive"
  | Opt -> "opt"
  | Brute -> "brute"

type solved = {
  compiled : Compile.t;
  query : Bcquery.Query.t;
  outcome : Core.Dcsat.outcome;
  strategy : string;
  check : (unit, string) result;
}

let compile t = Compile.of_trace t.trace

let solve_compiled ?(engine = Auto) ?jobs ?use_delta ?use_native ?use_steal
    ?timeout_s ?max_worlds t compiled =
  match t.property compiled with
  | Error msg -> Error ("property: " ^ msg)
  | Ok query -> (
      let session = Core.Session.create (Compile.db compiled) in
      let max_worlds =
        match max_worlds with Some _ as m -> m | None -> t.max_worlds
      in
      let budget =
        match (timeout_s, max_worlds) with
        | None, None -> Core.Engine.Budget.unlimited
        | _ -> Core.Engine.Budget.create ?timeout_s ?max_worlds ()
      in
      let refusal_to_string r =
        Format.asprintf "%a" Core.Dcsat.pp_refusal r
      in
      let result =
        match engine with
        | Auto ->
            Result.map
              (fun (o, s) -> (o, Core.Solver.strategy_name s))
              (Core.Solver.solve ?jobs ~budget ?use_delta ?use_native
                 ?use_steal session query)
        | Naive ->
            Result.map
              (fun o -> (o, "NaiveDCSat"))
              (Result.map_error refusal_to_string
                 (Core.Dcsat.naive ?jobs ~budget ?use_delta ?use_native
                    ?use_steal session query))
        | Opt ->
            Result.map
              (fun o -> (o, "OptDCSat"))
              (Result.map_error refusal_to_string
                 (Core.Dcsat.opt ?jobs ~budget ?use_delta ?use_native
                    ?use_steal session query))
        | Brute -> (
            match
              Core.Dcsat.brute_force ?jobs ~budget ?use_delta ?use_native
                session query
            with
            | o -> Ok (o, "brute force")
            | exception Invalid_argument msg -> Error msg)
      in
      match result with
      | Error _ as e -> e
      | Ok (outcome, strategy) ->
          Ok
            {
              compiled;
              query;
              outcome;
              strategy;
              check =
                Expect.check compiled ~expected:t.expect
                  outcome.Core.Dcsat.verdict;
            })

let solve ?engine ?jobs ?use_delta ?use_native ?use_steal ?timeout_s
    ?max_worlds t =
  Result.bind (compile t)
    (solve_compiled ?engine ?jobs ?use_delta ?use_native ?use_steal ?timeout_s
       ?max_worlds t)
