(** Expected DCSat verdicts for compiled scenarios. A violation
    expectation names a {e witness class}: a label for the attack
    ("double-spend", "reorg", ...) plus the submission tags whose
    transactions every violating world must contain — scenario authors
    pick tags that are semantically necessary for the violation, so the
    check holds for whichever witness world the solver reports. *)

type verdict =
  | Satisfied
  | Violated of { class_ : string; involves : string list }
      (** [involves]: tags that must be pending in the compiled
          database and present in the reported witness world. *)
  | Unknown
      (** The solve is expected to exhaust its budget — only meaningful
          for scenarios carrying one. *)

val name : verdict -> string

val check :
  Compile.t -> expected:verdict -> Bccore.Dcsat.verdict -> (unit, string) result
(** Does the solver's verdict match the expectation? For [Violated],
    also checks the witness-class tags against the reported world. The
    error string says what diverged. *)
