type dest = To_party of string | To_script of Chain.Script.t

type build =
  | Pay of { from_ : string; dest : dest; amount : int; fee : int }
  | Double_spend of { of_ : string; by : string; dest : dest; fee : int }
  | Bump of { of_ : string; by : string; add_fee : int }
  | Cancel of { of_ : string; by : string; fee : int }
  | Multi_spend of {
      script : Chain.Script.t;
      source : source;
      signers : string list;
      dest : dest;
      fee : int;
    }

and source = Script_utxo of Chain.Script.t | Output_of of string * int

type submit = { tag : string; at : int; build : build }

type t =
  | Submit of submit
  | Reject of submit
  | Attempt of submit
  | Mine of { at : int; min_feerate : float option }
  | Slots of { at : int; count : int }
  | Partition of int list
  | Heal
  | Deliver
  | Converge

let submit_of = function
  | Submit s | Reject s | Attempt s -> Some s
  | Mine _ | Slots _ | Partition _ | Heal | Deliver | Converge -> None

let pp_dest ppf = function
  | To_party p -> Format.pp_print_string ppf p
  | To_script s -> Chain.Script.pp ppf s

let pp_source ppf = function
  | Script_utxo s -> Format.fprintf ppf "utxo[%a]" Chain.Script.pp s
  | Output_of (tag, i) -> Format.fprintf ppf "%s#%d" tag i

let pp_build ppf = function
  | Pay { from_; dest; amount; fee } ->
      Format.fprintf ppf "pay %s -> %a amount=%d fee=%d" from_ pp_dest dest
        amount fee
  | Double_spend { of_; by; dest; fee } ->
      Format.fprintf ppf "double-spend %s by %s -> %a fee=%d" of_ by pp_dest
        dest fee
  | Bump { of_; by; add_fee } ->
      Format.fprintf ppf "bump %s by %s +fee=%d" of_ by add_fee
  | Cancel { of_; by; fee } ->
      Format.fprintf ppf "cancel %s by %s fee=%d" of_ by fee
  | Multi_spend { source; signers; dest; fee; _ } ->
      Format.fprintf ppf "multi-spend %a signers=[%s] -> %a fee=%d" pp_source
        source (String.concat "," signers) pp_dest dest fee

let pp_submit kind ppf { tag; at; build } =
  Format.fprintf ppf "%s[%s@@peer%d] %a" kind tag at pp_build build

let pp ppf = function
  | Submit s -> pp_submit "submit" ppf s
  | Reject s -> pp_submit "reject" ppf s
  | Attempt s -> pp_submit "attempt" ppf s
  | Mine { at; min_feerate } ->
      Format.fprintf ppf "mine@@peer%d%s" at
        (match min_feerate with
        | None -> ""
        | Some r -> Printf.sprintf " min_feerate=%g" r)
  | Slots { at; count } -> Format.fprintf ppf "slots@@peer%d x%d" at count
  | Partition group ->
      Format.fprintf ppf "partition {%s}"
        (String.concat "," (List.map string_of_int group))
  | Heal -> Format.pp_print_string ppf "heal"
  | Deliver -> Format.pp_print_string ppf "deliver"
  | Converge -> Format.pp_print_string ppf "converge"
