(** A scripted multi-party trace: the genesis coin distribution, the
    network shape, and a list of (optionally labelled) steps. Labels
    anchor {!Tweak} transformations; they are metadata, invisible to the
    interpreter.

    The combinators below are thin constructors — a trace is plain data
    and can equally be built literally. *)

type fund =
  | Fund_party of string * int  (** Genesis coin to a party's address. *)
  | Fund_script of Chain.Script.t * int
      (** Genesis coin under an explicit script (timelocked escrow,
          multisig treasury, ...). *)

type entry = { label : string option; step : Step.t }

type t = {
  peers : int;  (** Gossip-mesh size (default 1). *)
  funding : fund list;
  entries : entry list;
  observe : int;
      (** Peer whose view compiles to the [(R, I, T)] instance. *)
  faults : (unit -> Chain.Link_model.t) option;
      (** Per-run link-fault model factory (the thunk re-seeds the PRNG
          so replays are reproducible). [None]: reliable links. *)
}

val make :
  ?peers:int ->
  ?observe:int ->
  ?faults:(unit -> Chain.Link_model.t) ->
  funding:fund list ->
  entry list ->
  t

(* {2 Step sugar}

   Each returns an [entry]; pass [~label] to make it tweakable. *)

val step : ?label:string -> Step.t -> entry

val pay :
  ?label:string ->
  ?at:int ->
  tag:string ->
  from_:string ->
  to_:Step.dest ->
  amount:int ->
  fee:int ->
  unit ->
  entry

val double_spend :
  ?label:string ->
  ?at:int ->
  tag:string ->
  of_:string ->
  by:string ->
  to_:Step.dest ->
  fee:int ->
  unit ->
  entry

val bump :
  ?label:string ->
  ?at:int ->
  tag:string ->
  of_:string ->
  by:string ->
  add_fee:int ->
  unit ->
  entry

val cancel :
  ?label:string ->
  ?at:int ->
  tag:string ->
  of_:string ->
  by:string ->
  fee:int ->
  unit ->
  entry

val multi_spend :
  ?label:string ->
  ?at:int ->
  tag:string ->
  script:Chain.Script.t ->
  source:Step.source ->
  signers:string list ->
  to_:Step.dest ->
  fee:int ->
  unit ->
  entry

val mine : ?label:string -> ?at:int -> ?min_feerate:float -> unit -> entry
val slots : ?label:string -> ?at:int -> int -> entry
val partition : ?label:string -> int list -> entry
val heal : ?label:string -> unit -> entry
val deliver : ?label:string -> unit -> entry
val converge : ?label:string -> unit -> entry

val rejected : entry -> entry
(** Flip a submission entry to a must-reject assertion. Raises
    [Invalid_argument] on a non-submission step. *)

val attempted : entry -> entry
(** Flip a submission entry to best-effort (outcome recorded either
    way). Raises [Invalid_argument] on a non-submission step. *)

val find : t -> string -> entry option
(** Look an entry up by label. *)

val pp : Format.formatter -> t -> unit
(** Readable script, one step per line — the form minimized
    counterexamples print in. *)
