module C = Chain

type outcome =
  | Accepted
  | Rejected of C.Mempool.reject
  | Unbuildable of string

type t = {
  trace : Trace.t;
  net : C.Network.t;
  parties : (string, Party.t) Hashtbl.t;
  miners : C.Wallet.t array;
  mutable txs : (string * C.Tx.t) list;  (** Newest first. *)
  mutable outcomes : (string * outcome) list;
}

exception Script_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Script_error s)) fmt

let trace t = t.trace
let net t = t.net
let node t = C.Network.peer t.net t.trace.Trace.observe

let party t name =
  match Hashtbl.find_opt t.parties name with
  | Some p -> p
  | None ->
      let p = Party.make name in
      Hashtbl.replace t.parties name p;
      p

let find_tx t tag = List.assoc_opt tag t.txs
let tx_exn t tag =
  match find_tx t tag with
  | Some tx -> tx
  | None -> fail "unknown transaction tag %S" tag

let outcome t tag = List.assoc_opt tag t.outcomes
let accepted t tag = outcome t tag = Some Accepted
let tags t = List.rev_map fst t.txs

let dest_script t = function
  | Step.To_party name -> Party.address (party t name)
  | Step.To_script s -> s

(* Resolve an outpoint against the peer's full chain history first
   (covers confirmed and reorged-out outputs), then against every
   transaction the script has built so far (covers chained pending
   spends). *)
let resolver t at outpoint =
  let chain = C.Node.chain (C.Network.peer t.net at) in
  match C.Chain_state.find_output chain outpoint with
  | Some o -> Some o
  | None ->
      List.find_map
        (fun (_, (tx : C.Tx.t)) ->
          if String.equal tx.C.Tx.txid outpoint.C.Tx.txid then
            List.nth_opt tx.C.Tx.outputs outpoint.C.Tx.vout
          else None)
        t.txs

(* The wallet's coin-selection view at a peer: the confirmed UTXO set
   with the peer's pending transactions applied, so a second payment
   does not accidentally re-pick a coin already spent in the mempool. *)
let wallet_view t at =
  let node = C.Network.peer t.net at in
  let view = C.Utxo.copy (C.Node.utxo node) in
  List.iter
    (fun tx -> ignore (C.Utxo.apply_tx view tx))
    (C.Node.pending_txs node);
  view

let ok_or_fail what = function
  | Ok v -> v
  | Error msg -> fail "%s: %s" what msg

let build_tx t ({ Step.tag; at; build } : Step.submit) =
  match build with
  | Step.Pay { from_; dest; amount; fee } ->
      let p = party t from_ in
      ok_or_fail (tag ^ ": pay")
        (C.Wallet.pay p.Party.wallet ~utxo:(wallet_view t at)
           ~to_:(dest_script t dest) ~amount ~fee)
  | Step.Double_spend { of_; by; dest; fee } ->
      let original = tx_exn t of_ in
      let p = party t by in
      let prevs =
        List.filter_map
          (fun (i : C.Tx.input) ->
            match resolver t at i.C.Tx.prev with
            | Some o when C.Wallet.owns p.Party.wallet o.C.Tx.script ->
                Some (i.C.Tx.prev, o)
            | _ -> None)
          original.C.Tx.inputs
      in
      if prevs = [] then fail "%s: double-spend: %s owns no input of %s" tag by of_;
      let total =
        List.fold_left (fun acc (_, (o : C.Tx.output)) -> acc + o.C.Tx.amount) 0 prevs
      in
      if total <= fee then fail "%s: double-spend: inputs (%d) cannot pay fee %d" tag total fee;
      let outputs =
        [ { C.Tx.amount = total - fee; script = dest_script t dest } ]
      in
      let inputs =
        ok_or_fail (tag ^ ": double-spend sign")
          (C.Wallet.sign_inputs p.Party.wallet ~prevs ~outputs)
      in
      C.Tx.create ~inputs ~outputs
  | Step.Bump { of_; by; add_fee } ->
      let original = tx_exn t of_ in
      let p = party t by in
      ok_or_fail (tag ^ ": bump")
        (C.Wallet.bump_fee p.Party.wallet ~original ~add_fee)
  | Step.Cancel { of_; by; fee } ->
      let original = tx_exn t of_ in
      let p = party t by in
      let node = C.Network.peer t.net at in
      ok_or_fail (tag ^ ": cancel")
        (C.Wallet.cancel p.Party.wallet ~utxo:(C.Node.utxo node) ~original ~fee)
  | Step.Multi_spend { script; source; signers; dest; fee } ->
      let outpoint, output =
        match source with
        | Step.Output_of (src_tag, vout) -> (
            let src = tx_exn t src_tag in
            let outpoint = { C.Tx.txid = src.C.Tx.txid; vout } in
            match List.nth_opt src.C.Tx.outputs vout with
            | Some o -> (outpoint, o)
            | None -> fail "%s: multi-spend: %s has no output %d" tag src_tag vout)
        | Step.Script_utxo s -> (
            let node = C.Network.peer t.net at in
            let hits =
              C.Utxo.filter (C.Node.utxo node) (fun _ (o : C.Tx.output) ->
                  o.C.Tx.script = s)
              |> List.sort (fun (a, _) (b, _) -> compare a b)
            in
            match hits with
            | hit :: _ -> hit
            | [] -> fail "%s: multi-spend: no unspent output carries the script" tag)
      in
      if output.C.Tx.amount <= fee then
        fail "%s: multi-spend: output (%d) cannot pay fee %d" tag
          output.C.Tx.amount fee;
      let outputs =
        [ { C.Tx.amount = output.C.Tx.amount - fee; script = dest_script t dest } ]
      in
      let msg = C.Tx.signing_msg ~inputs:[ outpoint ] ~outputs in
      let legs =
        List.map
          (fun name ->
            let p = party t name in
            ( p.Party.key.C.Crypto.public,
              C.Crypto.sign p.Party.key ~msg ))
          signers
      in
      (match script with
      | C.Script.Multi_sig _ -> ()
      | _ -> fail "%s: multi-spend: source script is not a multisig" tag);
      let inputs =
        [ { C.Tx.prev = outpoint; witness = C.Script.Sig_list legs } ]
      in
      C.Tx.create ~inputs ~outputs

let submit_step t kind (s : Step.submit) =
  let record o = t.outcomes <- (s.Step.tag, o) :: t.outcomes in
  match
    try Ok (build_tx t s) with
    | Script_error msg -> Error msg
    | Invalid_argument msg ->
        Error (Printf.sprintf "%s: tx construction: %s" s.Step.tag msg)
  with
  | Error msg when kind = `Attempt ->
      (* Best-effort submissions swallow construction failures too: a
         tweak or a generated trace may have made the build impossible
         (coins gone, original confirmed), and that is an observation,
         not a script bug. *)
      record (Unbuildable msg)
  | Error msg -> raise (Script_error msg)
  | Ok tx -> (
      t.txs <- (s.Step.tag, tx) :: t.txs;
      let result = C.Network.submit t.net ~at:s.Step.at tx in
      match (kind, result) with
      | `Attempt, Ok () | `Submit, Ok () -> record Accepted
      | `Attempt, Error r -> record (Rejected r)
      | `Submit, Error r ->
          fail "%s: submission rejected: %s" s.Step.tag
            (Format.asprintf "%a" C.Mempool.pp_reject r)
      | `Reject, Error r -> record (Rejected r)
      | `Reject, Ok () ->
          fail "%s: submission was accepted but the script requires a reject"
            s.Step.tag)

let mine_step t ~at ?min_feerate () =
  let script = C.Wallet.address t.miners.(at) in
  match C.Network.mine_at t.net ~at ~coinbase_script:script ?min_feerate () with
  | Ok _ -> ()
  | Error msg -> fail "mine@peer%d: %s" at msg

let exec_step t = function
  | Step.Submit s -> submit_step t `Submit s
  | Step.Reject s -> submit_step t `Reject s
  | Step.Attempt s -> submit_step t `Attempt s
  | Step.Mine { at; min_feerate } -> mine_step t ~at ?min_feerate ()
  | Step.Slots { at; count } ->
      (* Empty blocks: an infinite feerate floor keeps every pending
         transaction out, so only the slot clock advances. *)
      for _ = 1 to count do
        mine_step t ~at ~min_feerate:infinity ()
      done
  | Step.Partition group -> C.Network.partition t.net group
  | Step.Heal -> C.Network.heal t.net
  | Step.Deliver -> ignore (C.Network.deliver t.net ())
  | Step.Converge ->
      if C.Network.converge t.net = None then
        fail "converge: network failed to reach sync"

let run (trace : Trace.t) =
  let parties = Hashtbl.create 8 in
  let party_of name =
    match Hashtbl.find_opt parties name with
    | Some p -> p
    | None ->
        let p = Party.make name in
        Hashtbl.replace parties name p;
        p
  in
  let initial =
    List.map
      (function
        | Trace.Fund_party (name, amount) -> (Party.address (party_of name), amount)
        | Trace.Fund_script (s, amount) -> (s, amount))
      trace.Trace.funding
  in
  let faults = Option.map (fun mk -> mk ()) trace.Trace.faults in
  let net = C.Network.create ?faults ~peers:trace.Trace.peers ~initial () in
  let t =
    {
      trace;
      net;
      parties;
      miners =
        Array.init trace.Trace.peers (fun i ->
            C.Wallet.create ~seed:(Printf.sprintf "miner:%d" i));
      txs = [];
      outcomes = [];
    }
  in
  match
    List.iter
      (fun (e : Trace.entry) ->
        exec_step t e.Trace.step;
        (* Keep views converged within partition sides: drain the gossip
           queues after every step. *)
        ignore (C.Network.deliver t.net ()))
      trace.Trace.entries
  with
  | () -> Ok t
  | exception Script_error msg -> Error msg
