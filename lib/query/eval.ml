module Value = Relational.Value
module Tuple = Relational.Tuple
module Source = Relational.Source

type arg = V of int | C of Value.t

type catom = { rel : string; cargs : arg array }

type compiled = {
  nvars : int;
  var_names : string array;
  pos : catom array;
  neg : catom array;
  cmps : (arg * Cq.cmp_op * arg) array;
}

let compile (q : Cq.t) =
  let var_names = Array.of_list q.Cq.vars in
  let ids = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace ids v i) var_names;
  let carg = function
    | Term.Var v -> V (Hashtbl.find ids v)
    | Term.Const c -> C c
  in
  let catom (a : Atom.t) =
    { rel = a.Atom.rel; cargs = Array.map carg a.Atom.args }
  in
  {
    nvars = Array.length var_names;
    var_names;
    pos = Array.of_list (List.map catom q.Cq.positive);
    neg = Array.of_list (List.map catom q.Cq.negated);
    cmps =
      Array.of_list
        (List.map
           (fun (c : Cq.comparison) -> (carg c.Cq.clhs, c.Cq.op, carg c.Cq.crhs))
           q.Cq.comparisons);
  }

let has_negation c = Array.length c.neg > 0
let var_names c = c.var_names
let positive_relations c = Array.to_list (Array.map (fun a -> a.rel) c.pos)

(* Binding environment: None = unbound. *)

let arg_value env = function
  | C v -> Some v
  | V i -> env.(i)

(* A comparison or negated atom is checked once all of its variables are
   bound; before that it is skipped (it will be re-examined deeper in the
   search, and in the leaf everything is bound). *)

let cmp_ok env (lhs, op, rhs) =
  match (arg_value env lhs, arg_value env rhs) with
  | Some a, Some b -> Cq.cmp op a b
  | _ -> true

let ground_atom env (a : catom) =
  let n = Array.length a.cargs in
  let out = Array.make n Value.Null in
  let rec go i =
    if i >= n then Some out
    else
      match arg_value env a.cargs.(i) with
      | Some v ->
          out.(i) <- v;
          go (i + 1)
      | None -> None
  in
  go 0

let neg_ok (src : Source.t) env (a : catom) =
  match ground_atom env a with
  | Some t -> not (src.Source.mem a.rel t)
  | None -> true

let guards_ok src env c =
  Array.for_all (cmp_ok env) c.cmps && Array.for_all (neg_ok src env) c.neg

(* Bound (position, value) pairs of an atom under the current bindings. *)
let bound_positions env (a : catom) =
  let acc = ref [] in
  Array.iteri
    (fun i arg ->
      match arg_value env arg with
      | Some v -> acc := (i, v) :: !acc
      | None -> ())
    a.cargs;
  List.rev !acc

(* Try to match [tuple] against atom [a], extending [env]; returns the list
   of variable ids newly bound (for undo), or None on mismatch. *)
let unify env (a : catom) (tuple : Tuple.t) =
  let n = Array.length a.cargs in
  let rec go i bound =
    if i >= n then Some bound
    else
      match a.cargs.(i) with
      | C v ->
          if Value.equal v tuple.(i) then go (i + 1) bound
          else begin
            List.iter (fun id -> env.(id) <- None) bound;
            None
          end
      | V id -> (
          match env.(id) with
          | Some v ->
              if Value.equal v tuple.(i) then go (i + 1) bound
              else begin
                List.iter (fun id -> env.(id) <- None) bound;
                None
              end
          | None ->
              env.(id) <- Some tuple.(i);
              go (i + 1) (id :: bound))
  in
  go 0 []

exception Stop

(* The backtracking join over [c.pos], resumable from any [depth]: the
   caller may have pre-bound some atoms (marking them in [used] and
   filling their [support] slot) — that is how {!run_delta} seeds the
   search with a Δ-tuple. *)
let search (src : Source.t) (c : compiled) env used support ~depth on_match =
  let natoms = Array.length c.pos in
  (* Pick the cheapest remaining atom: smallest estimated match count,
     using the source's per-index selectivity. A zero-cost atom cannot
     be beaten, and — since only a strictly smaller estimate displaces
     the current best — later atoms could at most tie with it, so the
     scan stops there without changing which atom is picked. *)
  let pick () =
    let best = ref (-1) and best_cost = ref max_int in
    let i = ref 0 in
    while !best_cost > 0 && !i < natoms do
      (if not used.(!i) then begin
         let binds = bound_positions env c.pos.(!i) in
         let cost =
           if binds = [] then src.Source.cardinality c.pos.(!i).rel
           else src.Source.selectivity c.pos.(!i).rel binds
         in
         if cost < !best_cost then begin
           best := !i;
           best_cost := cost
         end
       end);
      incr i
    done;
    !best
  in
  let rec go depth =
    if depth >= natoms then begin
      if Array.for_all (cmp_ok env) c.cmps && Array.for_all (neg_ok src env) c.neg
      then begin
        let values =
          Array.map
            (function Some v -> v | None -> assert false)
            env
        in
        match on_match values (Array.to_list support) with
        | `Continue -> ()
        | `Stop -> raise Stop
      end
    end
    else begin
      let i = pick () in
      used.(i) <- true;
      let atom = c.pos.(i) in
      let binds = bound_positions env atom in
      let candidates = src.Source.lookup atom.rel binds in
      Seq.iter
        (fun tuple ->
          match unify env atom tuple with
          | None -> ()
          | Some newly_bound ->
              if guards_ok src env c then begin
                support.(i) <- (atom.rel, tuple);
                go (depth + 1)
              end;
              List.iter (fun id -> env.(id) <- None) newly_bound)
        candidates;
      used.(i) <- false
    end
  in
  go depth

let run_compiled (src : Source.t) (c : compiled) on_match =
  let env = Array.make c.nvars None in
  let natoms = Array.length c.pos in
  let used = Array.make natoms false in
  let support = Array.make natoms ("", ([||] : Tuple.t)) in
  try search src c env used support ~depth:0 on_match with Stop -> ()

let run (src : Source.t) (q : Cq.t) on_match = run_compiled src (compile q) on_match

(* Semi-naive seeding: every new match over W ∪ Δ that did not exist over
   W must map at least one positive atom to a Δ-tuple. Seed the join once
   per (positive atom, Δ-tuple) pair and search only the remaining atoms.
   An assignment mapping several atoms to Δ-tuples is reported once per
   such atom, so callers that count must deduplicate. *)
let run_delta (src : Source.t) (c : compiled) ~delta on_match =
  let env = Array.make c.nvars None in
  let natoms = Array.length c.pos in
  let used = Array.make natoms false in
  let support = Array.make natoms ("", ([||] : Tuple.t)) in
  try
    for s = 0 to natoms - 1 do
      let atom = c.pos.(s) in
      List.iter
        (fun tuple ->
          match unify env atom tuple with
          | None -> ()
          | Some newly_bound ->
              if guards_ok src env c then begin
                support.(s) <- (atom.rel, tuple);
                used.(s) <- true;
                search src c env used support ~depth:1 on_match;
                used.(s) <- false
              end;
              List.iter (fun id -> env.(id) <- None) newly_bound)
        (delta atom.rel)
    done
  with Stop -> ()

let iter_matches src q f = run src q f
let iter_matches_compiled src c f = run_compiled src c f

let eval_boolean_compiled src c =
  let found = ref false in
  run_compiled src c (fun _ _ ->
      found := true;
      `Stop);
  !found

let eval_boolean src q = eval_boolean_compiled src (compile q)

let find_witness_compiled src c =
  let witness = ref None in
  run_compiled src c (fun values _ ->
      witness := Some values;
      `Stop);
  Option.map
    (fun values -> List.combine (Array.to_list c.var_names) (Array.to_list values))
    !witness

let find_witness src q = find_witness_compiled src (compile q)

(* --- closure-compiled plans ------------------------------------------

   A second compilation stage: specialize a [compiled] body into a chain
   of OCaml closures, one per join step, fixed at compile time — the
   static greedy join order replaces the per-depth [pick] scan, argument
   classification (constant / already-bound variable / fresh variable)
   is decided once instead of per tuple, and enumeration runs through
   [Source.fold_lookup] with no [Seq.t] nodes or option-boxed bindings
   on the hot path. The environment is a plain [Value.t array]: which
   slots are live at each step is static, so there is no unbound
   marker and no undo list — the next tuple simply overwrites.

   Fallbacks keep the tier an optimization, never a semantic fork:
   negated atoms and bodies that leave a variable unbound compile to
   [None] and run on the interpreter. *)

(* A step receives the source and the environment and returns [false]
   iff the continuation asked to stop the whole enumeration. *)
type kont = Source.t -> Value.t array -> bool

type native = { n_nvars : int; n_chain : kont -> kont }

let native_exists n (src : Source.t) =
  let env = Array.make n.n_nvars Value.Null in
  (* terminal continuation: stop at the first satisfying assignment *)
  not (n.n_chain (fun _ _ -> false) src env)

let native_iter n (src : Source.t) f =
  let env = Array.make n.n_nvars Value.Null in
  ignore
    (n.n_chain
       (fun _ env ->
         f env;
         true)
       src env)

let compile_native (c : compiled) =
  if Array.length c.neg > 0 then None (* interpreter handles negation *)
  else begin
    let natoms = Array.length c.pos in
    (* Static greedy join order: repeatedly take the atom with the most
       statically-bound argument positions (constants, or variables
       bound by an earlier atom); ties go to the lower atom index. *)
    let bound = Array.make c.nvars false in
    let used = Array.make natoms false in
    let score i =
      Array.fold_left
        (fun n -> function
          | C _ -> n + 1
          | V id -> if bound.(id) then n + 1 else n)
        0 c.pos.(i).cargs
    in
    let order = Array.make natoms 0 in
    for k = 0 to natoms - 1 do
      let best = ref (-1) and best_score = ref (-1) in
      for i = 0 to natoms - 1 do
        if not used.(i) then begin
          let s = score i in
          if s > !best_score then begin
            best := i;
            best_score := s
          end
        end
      done;
      used.(!best) <- true;
      order.(k) <- !best;
      Array.iter
        (function V id -> bound.(id) <- true | C _ -> ())
        c.pos.(!best).cargs
    done;
    (* [bind_step.(id)]: index in [order] after which variable [id] is
       bound (unbound variables keep [natoms]). *)
    let bind_step = Array.make c.nvars natoms in
    let b2 = Array.make c.nvars false in
    Array.iteri
      (fun k ai ->
        Array.iter
          (function
            | V id when not b2.(id) ->
                b2.(id) <- true;
                bind_step.(id) <- k
            | _ -> ())
          c.pos.(ai).cargs)
      order;
    let arg_step = function C _ -> -1 | V id -> bind_step.(id) in
    (* Pin each comparison at the earliest step where both sides are
       bound; fold both-constant ones now. A comparison over a variable
       no atom ever binds is vacuously true in the interpreter's leaf
       check — dropping it here matches that. *)
    let const_false = ref false in
    let cmp_at = Array.make natoms [] in
    Array.iter
      (fun ((lhs, op, rhs) as cmp) ->
        let s = max (arg_step lhs) (arg_step rhs) in
        if s < 0 then begin
          match (lhs, rhs) with
          | C a, C b -> if not (Cq.cmp op a b) then const_false := true
          | _ -> assert false
        end
        else if s < natoms then cmp_at.(s) <- cmp :: cmp_at.(s))
      c.cmps;
    let all_vars_bound = Array.for_all Fun.id b2 || c.nvars = 0 in
    if (not all_vars_bound) && c.nvars > 0 then None
    else if !const_false then Some { n_nvars = c.nvars; n_chain = (fun _ _ _ -> true) }
    else begin
      (* One closure per atom (plus its due comparisons), composed
         right-to-left into a single fused loop nest. *)
      let prebound = Array.make c.nvars false in
      let atom_step ai =
        let a = c.pos.(ai) in
        let consts = ref [] and prev = ref [] and news = ref [] and dups = ref [] in
        let fresh = Array.make c.nvars false in
        Array.iteri
          (fun i arg ->
            match arg with
            | C v -> consts := (i, v) :: !consts
            | V id ->
                if prebound.(id) then prev := (i, id) :: !prev
                else if fresh.(id) then dups := (i, id) :: !dups
                else begin
                  fresh.(id) <- true;
                  news := (i, id) :: !news
                end)
          a.cargs;
        Array.iter (function V id -> prebound.(id) <- true | C _ -> ()) a.cargs;
        let consts = List.rev !consts
        and prev = List.rev !prev
        and news = List.rev !news
        and dups = List.rev !dups in
        let rel = a.rel in
        if news = [] then begin
          (* Every position is determined: a membership probe. *)
          let ar = Array.length a.cargs in
          fun (k : kont) src env ->
            let tu = Array.make ar Value.Null in
            List.iter (fun (i, v) -> tu.(i) <- v) consts;
            List.iter (fun (i, id) -> tu.(i) <- env.(id)) prev;
            if src.Source.mem rel tu then k src env else true
        end
        else
          (* Indexed enumeration: [fold_lookup] already filters the
             constant and previously-bound positions; only fresh
             bindings and intra-atom duplicates remain. *)
          fun (k : kont) src env ->
            let key =
              List.rev_append
                (List.rev_map (fun (i, id) -> (i, env.(id))) prev)
                consts
            in
            src.Source.fold_lookup rel key (fun tuple ->
                List.iter (fun (i, id) -> env.(id) <- tuple.(i)) news;
                if
                  List.for_all
                    (fun (i, id) -> Value.equal env.(id) tuple.(i))
                    dups
                then k src env
                else true)
      in
      let cmp_step (lhs, op, rhs) =
        let getter = function C v -> (fun _ -> v) | V id -> (fun env -> env.(id)) in
        let ga = getter lhs and gb = getter rhs in
        fun (k : kont) src env ->
          if Cq.cmp op (ga env) (gb env) then k src env else true
      in
      let steps = ref [] in
      Array.iteri
        (fun k ai ->
          steps := atom_step ai :: !steps;
          List.iter (fun cmp -> steps := cmp_step cmp :: !steps) cmp_at.(k))
        order;
      let chain =
        List.fold_left
          (fun acc step -> fun k -> step (acc k))
          Fun.id !steps
      in
      Some { n_nvars = c.nvars; n_chain = chain }
    end
  end

let project_compiled (c : compiled) (agg_args : Term.t array) values =
  let index v =
    let n = Array.length c.var_names in
    let rec go i =
      if i >= n then assert false
      else if String.equal c.var_names.(i) v then i
      else go (i + 1)
    in
    go 0
  in
  Array.map
    (function
      | Term.Var v -> values.(index v)
      | Term.Const k -> k)
    agg_args

let aggregate_value_compiled src (c : compiled) (a : Query.aggregate) =
  match a.Query.agg with
  | Query.Count ->
      let n = ref 0 in
      run_compiled src c (fun _ _ ->
          incr n;
          `Continue);
      if !n = 0 then None else Some (Value.Int !n)
  | Query.Cntd ->
      let seen = Tuple.Tbl.create 64 in
      run_compiled src c (fun values _ ->
          Tuple.Tbl.replace seen (project_compiled c a.Query.agg_args values) ();
          `Continue);
      let n = Tuple.Tbl.length seen in
      if n = 0 then None else Some (Value.Int n)
  | Query.Sum ->
      let total = ref Value.zero and any = ref false in
      run_compiled src c (fun values _ ->
          let projected = project_compiled c a.Query.agg_args values in
          total := Value.add !total projected.(0);
          any := true;
          `Continue);
      if !any then Some !total else None
  | Query.Max | Query.Min ->
      let combine =
        match a.Query.agg with
        | Query.Max -> Value.max_v
        | Query.Min -> Value.min_v
        | Query.Count | Query.Cntd | Query.Sum -> assert false
      in
      let acc = ref None in
      run_compiled src c (fun values _ ->
          let v = (project_compiled c a.Query.agg_args values).(0) in
          acc := Some (match !acc with None -> v | Some w -> combine v w);
          `Continue);
      !acc

let aggregate_value src (a : Query.aggregate) =
  aggregate_value_compiled src (compile a.Query.body) a

let theta_holds theta value threshold =
  match theta with
  | Query.Lt -> Value.lt value threshold
  | Query.Gt -> Value.lt threshold value
  | Query.Eq -> Value.equal value threshold

let eval_compiled src (q : Query.t) (c : compiled) =
  match q with
  | Query.Boolean _ -> eval_boolean_compiled src c
  | Query.Aggregate a -> (
      match aggregate_value_compiled src c a with
      | None -> false (* empty bag: comparison is false (footnote 9) *)
      | Some v -> theta_holds a.Query.theta v a.Query.threshold)

let body_of = function
  | Query.Boolean q -> q
  | Query.Aggregate a -> a.Query.body

let eval src q = eval_compiled src q (compile (body_of q))

let count_matches src q =
  let n = ref 0 in
  run src q (fun _ _ ->
      incr n;
      `Continue);
  !n
