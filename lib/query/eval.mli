(** Query evaluation over a {!Relational.Source.t}.

    The evaluator runs a backtracking join: at every depth it picks the
    cheapest remaining positive atom (most bound argument positions,
    smallest index-estimated result), enumerates matching tuples through
    the source's index lookups, and prunes with negated atoms and
    comparisons as soon as their variables are bound.

    An assignment [h] maps each body variable to a value; because every
    variable occurs in a positive atom, assignments correspond one-to-one
    to the tuple combinations the join enumerates, which gives exactly the
    bag semantics of Section 5 for aggregates.

    Compilation (variable numbering, atom/comparison lowering) is split
    from execution so a solver session can compile each constraint once
    and evaluate the plan over thousands of worlds; the [*_compiled]
    variants below take the reusable plan, and the plain ones remain as
    compile-and-run wrappers. *)

type compiled
(** A compiled conjunctive-query body: variables numbered, atoms and
    comparisons lowered to array form. Immutable — safe to share across
    domains and evaluate concurrently (each evaluation owns its own
    binding environment). *)

val compile : Cq.t -> compiled

val has_negation : compiled -> bool
(** The body contains negated atoms — evaluating it is not monotone in
    the source, so delta seeding ({!run_delta}) is unsound for it. *)

val var_names : compiled -> string array
(** The body's variables, in [q.vars] order. *)

val positive_relations : compiled -> string list
(** Relation of each positive atom, in atom order (with duplicates). *)

type native
(** A closure-compiled plan: the body's backtracking join specialized to
    a chain of OCaml closures with a static greedy join order, constant/
    variable argument classification decided at compile time, and
    enumeration driven through {!Relational.Source.t}[.fold_lookup] —
    no per-depth atom picking, no [Seq.t] nodes, no option-boxed
    bindings. Like {!compiled}, immutable and safe to share across
    domains (each run allocates its own environment). *)

val compile_native : compiled -> native option
(** [None] when the body is outside the tier — it has negated atoms, or
    leaves a variable unbound ({e unsafe} bodies) — in which case the
    caller keeps the interpreted plan. Compile-time-decidable
    comparisons (both sides constant) are folded away here. *)

val native_exists : native -> Relational.Source.t -> bool
(** True when at least one satisfying assignment exists (stops at the
    first match). Agrees exactly with {!eval_boolean_compiled} on the
    plan it was compiled from. *)

val native_iter :
  native -> Relational.Source.t -> (Relational.Value.t array -> unit) -> unit
(** Calls the callback once per satisfying assignment with the values of
    [q.vars] (in {!var_names} order). The array is reused between
    calls — copy it to retain. Matches are the same bag
    {!iter_matches_compiled} enumerates, in the native plan's order; use
    it only for order-insensitive (commutative) accumulation. *)

val eval_boolean : Relational.Source.t -> Cq.t -> bool
(** True when at least one satisfying assignment exists (early exit). *)

val eval_boolean_compiled : Relational.Source.t -> compiled -> bool

val find_witness :
  Relational.Source.t -> Cq.t -> (string * Relational.Value.t) list option
(** A satisfying assignment, as variable bindings in [q.vars] order. *)

val find_witness_compiled :
  Relational.Source.t -> compiled -> (string * Relational.Value.t) list option

val iter_matches :
  Relational.Source.t ->
  Cq.t ->
  (Relational.Value.t array ->
  (string * Relational.Tuple.t) list ->
  [ `Continue | `Stop ]) ->
  unit
(** Calls the callback once per satisfying assignment with the values of
    [q.vars] (in order) and the {e support}: the (relation, tuple) pair
    each positive atom was mapped to, in atom order. Duplicate assignments
    never occur. Return [`Stop] to abort. *)

val iter_matches_compiled :
  Relational.Source.t ->
  compiled ->
  (Relational.Value.t array ->
  (string * Relational.Tuple.t) list ->
  [ `Continue | `Stop ]) ->
  unit

val run_delta :
  Relational.Source.t ->
  compiled ->
  delta:(string -> Relational.Tuple.t list) ->
  (Relational.Value.t array ->
  (string * Relational.Tuple.t) list ->
  [ `Continue | `Stop ]) ->
  unit
(** Semi-naive delta evaluation: enumerate exactly the satisfying
    assignments that map {e at least one} positive atom to a tuple of
    [delta rel] (the tuples of [rel] visible in the current source but
    not in the previously evaluated one). For each positive atom the
    search is seeded with each Δ-tuple and completed over the remaining
    atoms through the source's (current) indexes.

    Soundness: if the body is negation-free ({!has_negation} = false),
    its match set is monotone in the visible tuples, so every match
    present now but absent before uses ≥ 1 added tuple — [run_delta]
    misses none of them. It never reports a match not satisfied by the
    current source. An assignment mapping [k > 1] atoms to Δ-tuples is
    reported up to [k] times (once per seed); callers that count or sum
    must deduplicate assignments. *)

val aggregate_value :
  Relational.Source.t -> Query.aggregate -> Relational.Value.t option
(** [α(B)] where [B] is the bag of [h(x̄)] over all satisfying
    assignments; [None] when the bag is empty. *)

val aggregate_value_compiled :
  Relational.Source.t -> compiled -> Query.aggregate -> Relational.Value.t option
(** Same, over the precompiled body ([compile a.body]). *)

val project_compiled :
  compiled ->
  Term.t array ->
  Relational.Value.t array ->
  Relational.Value.t array
(** [h(x̄)]: the aggregate's argument terms under an assignment (values
    of the body variables in [var_names] order). *)

val theta_holds :
  Query.theta -> Relational.Value.t -> Relational.Value.t -> bool
(** [theta_holds θ v threshold] — the aggregate comparison [v θ t]. *)

val eval : Relational.Source.t -> Query.t -> bool
(** Full denial-constraint body evaluation over one world. For aggregates
    an empty bag makes the comparison false (footnote 9 semantics). *)

val eval_compiled : Relational.Source.t -> Query.t -> compiled -> bool
(** Same, over the precompiled body of [q] (its CQ part: the boolean body
    or the aggregate's body). *)

val body_of : Query.t -> Cq.t
(** The CQ body of a query (boolean body, or the aggregate's body). *)

val count_matches : Relational.Source.t -> Cq.t -> int
