/* Monotonic clock for solver timing: immune to NTP adjustment, unlike
   gettimeofday. CLOCK_MONOTONIC is POSIX; the OCaml stdlib (5.1) does
   not expose it, hence this stub. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <time.h>

CAMLprim value bcdb_monotime_ns(value unit)
{
  CAMLparam1(unit);
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  CAMLreturn(caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec));
}
