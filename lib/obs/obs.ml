type span = {
  name : string;
  cat : string;
  dom : int;
  start_ns : int64;
  dur_ns : int64;
}

type hist = { count : int; sum : float; min : float; max : float }

type summary = {
  spans : span list;
  counters : (string * int) list;
  hists : (string * hist) list;
}

type sink = summary -> unit

(* Per-domain buffer: only the owning domain ever writes to it, so no
   synchronization is needed on the record path. Spans are kept in
   completion order (consed, then reversed at merge time). *)
type buffer = {
  dom : int;
  mutable b_spans : span list;
  b_counters : (string, int ref) Hashtbl.t;
  b_hists : (string, hist ref) Hashtbl.t;
}

type t = {
  id : int;  (* distinguishes recorders in the domain-local registry *)
  enabled : bool;
  sinks : sink list;
  lock : Mutex.t;  (* guards [buffers] registration only *)
  mutable buffers : buffer list;
}

(* One process-wide epoch so every recorder shares a timeline and a
   collector can merge traces from many recorders into one file. *)
let epoch_ns = Monotime.now_ns ()

let next_id =
  let counter = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add counter 1

let null =
  {
    id = next_id ();
    enabled = false;
    sinks = [];
    lock = Mutex.create ();
    buffers = [];
  }

let create ?(sinks = []) () =
  { id = next_id (); enabled = true; sinks; lock = Mutex.create (); buffers = [] }

let enabled t = t.enabled

(* The calling domain's buffer for [t], created and registered on first
   use. The registry is domain-local (a map from recorder id to buffer),
   so the lookup never synchronizes; only the one-time registration into
   [t.buffers] takes the recorder's lock. *)
let dls_key : (int, buffer) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let buffer t =
  let registry = Domain.DLS.get dls_key in
  match Hashtbl.find_opt registry t.id with
  | Some b -> b
  | None ->
      let b =
        {
          dom = (Domain.self () :> int);
          b_spans = [];
          b_counters = Hashtbl.create 16;
          b_hists = Hashtbl.create 8;
        }
      in
      Hashtbl.replace registry t.id b;
      Mutex.lock t.lock;
      t.buffers <- b :: t.buffers;
      Mutex.unlock t.lock;
      b

let span t ?(cat = "") name f =
  if not t.enabled then f ()
  else begin
    let b = buffer t in
    let start = Monotime.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let stop = Monotime.now_ns () in
        b.b_spans <-
          {
            name;
            cat;
            dom = b.dom;
            start_ns = Int64.sub start epoch_ns;
            dur_ns = Int64.sub stop start;
          }
          :: b.b_spans)
      f
  end

let add t name n =
  if t.enabled then begin
    let b = buffer t in
    match Hashtbl.find_opt b.b_counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace b.b_counters name (ref n)
  end

let observe t name v =
  if t.enabled then begin
    let b = buffer t in
    match Hashtbl.find_opt b.b_hists name with
    | Some h ->
        h :=
          {
            count = !h.count + 1;
            sum = !h.sum +. v;
            min = Float.min !h.min v;
            max = Float.max !h.max v;
          }
    | None ->
        Hashtbl.replace b.b_hists name (ref { count = 1; sum = v; min = v; max = v })
  end

let merge_hist a b =
  {
    count = a.count + b.count;
    sum = a.sum +. b.sum;
    min = Float.min a.min b.min;
    max = Float.max a.max b.max;
  }

let summary t =
  Mutex.lock t.lock;
  let buffers = t.buffers in
  Mutex.unlock t.lock;
  let buffers = List.sort (fun a b -> Int.compare a.dom b.dom) buffers in
  let counters = Hashtbl.create 16 and hists = Hashtbl.create 8 in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun name r ->
          Hashtbl.replace counters name
            (!r + Option.value (Hashtbl.find_opt counters name) ~default:0))
        b.b_counters;
      Hashtbl.iter
        (fun name h ->
          Hashtbl.replace hists name
            (match Hashtbl.find_opt hists name with
            | Some prev -> merge_hist prev !h
            | None -> !h))
        b.b_hists)
    buffers;
  let sorted tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare in
  {
    spans = List.concat_map (fun b -> List.rev b.b_spans) buffers;
    counters = sorted counters;
    hists = sorted hists;
  }

let counter t name =
  Mutex.lock t.lock;
  let buffers = t.buffers in
  Mutex.unlock t.lock;
  List.fold_left
    (fun acc b ->
      acc + Option.value (Option.map ( ! ) (Hashtbl.find_opt b.b_counters name)) ~default:0)
    0 buffers

let counters t = (summary t).counters
let hist_of t name = List.assoc_opt name (summary t).hists

let flush t =
  match t.sinks with
  | [] -> ()
  | sinks ->
      let s = summary t in
      List.iter (fun sink -> sink s) sinks

(* --- sinks --- *)

(* Span aggregates by (cat, name): count and total/min/max duration. *)
let span_aggregates spans =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun sp ->
      let key = (sp.cat, sp.name) in
      let d = Int64.to_float sp.dur_ns /. 1e9 in
      match Hashtbl.find_opt tbl key with
      | Some h -> h := merge_hist !h { count = 1; sum = d; min = d; max = d }
      | None ->
          Hashtbl.replace tbl key (ref { count = 1; sum = d; min = d; max = d });
          order := key :: !order)
    spans;
  List.rev_map (fun key -> (key, !(Hashtbl.find tbl key))) !order
  |> List.sort compare

let pretty_sink ?(out = stderr) () s =
  let p fmt = Printf.fprintf out fmt in
  p "== obs summary ==\n";
  if s.spans <> [] then begin
    p "spans (cat/name: count, total, min..max):\n";
    List.iter
      (fun ((cat, name), h) ->
        p "  %-28s %6d  %9.3f ms  [%0.3f..%0.3f ms]\n"
          ((if cat = "" then "" else cat ^ "/") ^ name)
          h.count (h.sum *. 1e3) (h.min *. 1e3) (h.max *. 1e3))
      (span_aggregates s.spans)
  end;
  if s.counters <> [] then begin
    p "counters:\n";
    List.iter (fun (name, v) -> p "  %-28s %d\n" name v) s.counters
  end;
  if s.hists <> [] then begin
    p "histograms (count, sum, min..max):\n";
    List.iter
      (fun (name, (h : hist)) ->
        p "  %-28s %6d  %9.6f  [%g..%g]\n" name h.count h.sum h.min h.max)
      s.hists
  end;
  Stdlib.flush out

let metrics_sink path s =
  let oc = open_out path in
  let line fmt = Printf.fprintf oc fmt in
  List.iter
    (fun (name, v) ->
      line "{\"type\": \"counter\", \"name\": %s, \"value\": %d}\n"
        (Json.escape name) v)
    s.counters;
  List.iter
    (fun (name, (h : hist)) ->
      line
        "{\"type\": \"hist\", \"name\": %s, \"count\": %d, \"sum\": %.9f, \
         \"min\": %.9f, \"max\": %.9f}\n"
        (Json.escape name) h.count h.sum h.min h.max)
    s.hists;
  List.iter
    (fun ((cat, name), (h : hist)) ->
      line
        "{\"type\": \"span\", \"cat\": %s, \"name\": %s, \"count\": %d, \
         \"total_s\": %.9f, \"min_s\": %.9f, \"max_s\": %.9f}\n"
        (Json.escape cat) (Json.escape name) h.count h.sum h.min h.max)
    (span_aggregates s.spans);
  close_out oc

(* --- Chrome trace_event --- *)

let us_of_ns ns = Int64.to_float ns /. 1e3

let trace_string summaries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\": [\n";
  Buffer.add_string buf
    "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
     \"args\": {\"name\": \"bcdb\"}}";
  let doms = Hashtbl.create 8 in
  List.iter
    (fun s ->
      List.iter
        (fun (sp : span) ->
          if not (Hashtbl.mem doms sp.dom) then begin
            Hashtbl.replace doms sp.dom ();
            Buffer.add_string buf
              (Printf.sprintf
                 ",\n\
                 \  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \
                  \"tid\": %d, \"args\": {\"name\": \"domain %d\"}}"
                 sp.dom sp.dom)
          end)
        s.spans)
    summaries;
  List.iter
    (fun s ->
      List.iter
        (fun (sp : span) ->
          Buffer.add_string buf
            (Printf.sprintf
               ",\n\
               \  {\"name\": %s, \"cat\": %s, \"ph\": \"X\", \"pid\": 1, \
                \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f}"
               (Json.escape sp.name)
               (Json.escape (if sp.cat = "" then "default" else sp.cat))
               sp.dom (us_of_ns sp.start_ns) (us_of_ns sp.dur_ns)))
        s.spans)
    summaries;
  Buffer.add_string buf "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents buf

let write_string path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let trace_sink path s = write_string path (trace_string [ s ])

type collector = { c_lock : Mutex.t; mutable c_summaries : summary list }

let collector () = { c_lock = Mutex.create (); c_summaries = [] }

let collector_sink c s =
  Mutex.lock c.c_lock;
  c.c_summaries <- s :: c.c_summaries;
  Mutex.unlock c.c_lock

let write_trace c path =
  Mutex.lock c.c_lock;
  let summaries = List.rev c.c_summaries in
  Mutex.unlock c.c_lock;
  write_string path (trace_string summaries)

(* --- trace_event schema validation --- *)

let validate_trace_file path =
  if not (Sys.file_exists path) then Error [ path ^ ": no such file" ]
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    match Json.parse contents with
    | Error msg -> Error [ path ^ ": " ^ msg ]
    | Ok json -> (
        match Json.member "traceEvents" json with
        | None -> Error [ path ^ ": top-level object lacks \"traceEvents\"" ]
        | Some (Json.List events) ->
            let errors = ref [] in
            let err i fmt =
              Printf.ksprintf
                (fun s -> errors := Printf.sprintf "event %d: %s" i s :: !errors)
                fmt
            in
            List.iteri
              (fun i ev ->
                let str key =
                  match Json.member key ev with
                  | Some (Json.Str s) -> Some s
                  | _ -> None
                in
                let num key =
                  match Json.member key ev with
                  | Some (Json.Num _) -> true
                  | _ -> false
                in
                (match ev with
                | Json.Obj _ -> ()
                | _ -> err i "not an object");
                (match str "name" with
                | Some _ -> ()
                | None -> err i "missing string \"name\"");
                match str "ph" with
                | None -> err i "missing string \"ph\""
                | Some "X" ->
                    List.iter
                      (fun key ->
                        if not (num key) then
                          err i "complete event lacks numeric %S" key)
                      [ "ts"; "dur"; "pid"; "tid" ]
                | Some _ -> ())
              events;
            if !errors <> [] then Error (List.rev !errors)
            else Ok (List.length events)
        | Some _ -> Error [ path ^ ": \"traceEvents\" is not an array" ])
  end
