type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Fail of int * string

let fail i msg = raise (Fail (i, msg))

let parse s =
  let n = String.length s in
  let rec skip i =
    if i < n && (match s.[i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    then skip (i + 1)
    else i
  in
  let literal i word v =
    let l = String.length word in
    if i + l <= n && String.sub s i l = word then (v, i + l)
    else fail i ("expected " ^ word)
  in
  let number i =
    let j = ref i in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !j < n && num_char s.[!j] do
      incr j
    done;
    match float_of_string_opt (String.sub s i (!j - i)) with
    | Some f -> (Num f, !j)
    | None -> fail i "malformed number"
  in
  let string_lit i =
    let buf = Buffer.create 16 in
    let rec go i =
      if i >= n then fail i "unterminated string"
      else
        match s.[i] with
        | '"' -> (Buffer.contents buf, i + 1)
        | '\\' ->
            if i + 1 >= n then fail i "truncated escape"
            else (
              (match s.[i + 1] with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | 'r' -> Buffer.add_char buf '\r'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' -> ()
              | c -> fail i (Printf.sprintf "bad escape \\%c" c));
              if s.[i + 1] = 'u' then begin
                if i + 5 >= n then fail i "truncated \\u escape";
                match int_of_string_opt ("0x" ^ String.sub s (i + 2) 4) with
                | Some code ->
                    Buffer.add_utf_8_uchar buf
                      (if Uchar.is_valid code then Uchar.of_int code
                       else Uchar.rep);
                    go (i + 6)
                | None -> fail i "bad \\u escape"
              end
              else go (i + 2))
        | c ->
            Buffer.add_char buf c;
            go (i + 1)
    in
    go i
  in
  let rec value i =
    let i = skip i in
    if i >= n then fail i "unexpected end of input"
    else
      match s.[i] with
      | 'n' -> literal i "null" Null
      | 't' -> literal i "true" (Bool true)
      | 'f' -> literal i "false" (Bool false)
      | '"' ->
          let str, i = string_lit (i + 1) in
          (Str str, i)
      | '[' -> list_items (i + 1) []
      | '{' -> obj_items (i + 1) []
      | _ -> number i
  and list_items i acc =
    let i = skip i in
    if i < n && s.[i] = ']' then (List (List.rev acc), i + 1)
    else
      let v, i = value i in
      let i = skip i in
      if i < n && s.[i] = ',' then list_items (i + 1) (v :: acc)
      else if i < n && s.[i] = ']' then (List (List.rev (v :: acc)), i + 1)
      else fail i "expected ',' or ']'"
  and obj_items i acc =
    let i = skip i in
    if i < n && s.[i] = '}' then (Obj (List.rev acc), i + 1)
    else if i < n && s.[i] = '"' then begin
      let key, i = string_lit (i + 1) in
      let i = skip i in
      if i >= n || s.[i] <> ':' then fail i "expected ':'"
      else
        let v, i = value (i + 1) in
        let i = skip i in
        if i < n && s.[i] = ',' then obj_items (i + 1) ((key, v) :: acc)
        else if i < n && s.[i] = '}' then
          (Obj (List.rev ((key, v) :: acc)), i + 1)
        else fail i "expected ',' or '}'"
    end
    else fail i "expected '\"' or '}'"
  in
  match value 0 with
  | v, i ->
      let i = skip i in
      if i = n then Ok v
      else Error (Printf.sprintf "trailing input at offset %d" i)
  | exception Fail (i, msg) -> Error (Printf.sprintf "%s at offset %d" msg i)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf
