(** A minimal JSON reader, just large enough to validate the files the
    observability sinks emit (Chrome [trace_event] traces, JSONL
    metrics) without pulling a JSON dependency into the build. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value. The error carries a character offset. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing fields and non-objects. *)

val escape : string -> string
(** The JSON string-literal encoding of [s], quotes included. Shared by
    every sink that writes JSON. *)
