(** Observability: spans, counters and histograms, buffered per domain.

    A recorder ({!t}) is either {!null} — disabled, every operation is a
    single branch, safe to leave on the hottest paths — or enabled
    ({!create}), in which case each OCaml domain records into a private
    buffer (domain-local storage), so instrumentation under the parallel
    engine never contends on a lock and never interleaves two domains'
    measurements in one buffer. The buffers are merged into a {!summary}
    on demand and pushed through pluggable {!sink}s at {!flush} time.

    Timestamps come from {!Monotime} (monotonic clock), as nanoseconds
    since a process-wide epoch fixed when this module is loaded — so
    spans recorded by different recorders in one process share a
    timeline and can be written into one trace file. *)

type t

val null : t
(** The disabled recorder: {!enabled} is false, {!span} runs its thunk
    directly, {!add}/{!observe} are no-ops, {!flush} does nothing. *)

type span = {
  name : string;
  cat : string;  (** Coarse grouping: ["dcsat"], ["engine"], ... *)
  dom : int;  (** Id of the domain that recorded the span. *)
  start_ns : int64;  (** Nanoseconds since the process epoch. *)
  dur_ns : int64;
}

type hist = { count : int; sum : float; min : float; max : float }
(** Summary statistics of the samples passed to {!observe}. *)

type summary = {
  spans : span list;
      (** Grouped by domain (ascending id); within one domain, in
          completion order — the order the scoped timers returned, so
          same-domain spans are properly nested or disjoint, never
          interleaved. *)
  counters : (string * int) list;  (** Merged across domains; sorted. *)
  hists : (string * hist) list;  (** Merged across domains; sorted. *)
}

type sink = summary -> unit

val create : ?sinks:sink list -> unit -> t
(** A fresh enabled recorder. [sinks] (default none) receive the merged
    summary at {!flush}. *)

val enabled : t -> bool

val span : t -> ?cat:string -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f ()], recording a scoped monotonic-clock
    timer in the calling domain's buffer (also on exception). *)

val add : t -> string -> int -> unit
(** Bump a counter in the calling domain's buffer; merged by sum. *)

val observe : t -> string -> float -> unit
(** Record one histogram sample (a duration in seconds, a size, ...). *)

val summary : t -> summary
(** Merge the per-domain buffers. Call only when no other domain is
    still recording into [t] (e.g. after the engine joined its
    workers). Does not clear the buffers. *)

val counter : t -> string -> int
(** Merged value of one counter; 0 when never bumped. *)

val counters : t -> (string * int) list

val hist_of : t -> string -> hist option

val flush : t -> unit
(** Merge and push the summary through the recorder's sinks. A null or
    sink-less recorder flushes to nowhere. *)

(** {2 Sinks} *)

val pretty_sink : ?out:out_channel -> unit -> sink
(** Human-readable summary — span aggregates by name, counters,
    histograms — to [out] (default stderr). *)

val metrics_sink : string -> sink
(** JSONL metrics file: one object per line, [{"type":"counter",...}],
    [{"type":"hist",...}] and per-name span aggregates
    [{"type":"span",...}]. Overwrites. *)

val trace_sink : string -> sink
(** Chrome [trace_event] JSON file (open in [about:tracing] or
    {{:https://ui.perfetto.dev}Perfetto}). Overwrites. *)

(** {2 Trace collection across recorders}

    The bench harness uses one recorder per measurement (so counters
    stay attributable) but wants a single trace file for the whole run:
    a collector accumulates summaries and writes them as one trace. *)

type collector

val collector : unit -> collector
val collector_sink : collector -> sink

val write_trace : collector -> string -> unit
(** All collected summaries as one Chrome trace_event JSON file. *)

val trace_string : summary list -> string
(** The Chrome trace_event JSON document for the given summaries. *)

val validate_trace_file : string -> (int, string list) result
(** Parse a trace file and check it against the Chrome trace_event
    schema: a top-level object with a [traceEvents] array whose entries
    carry string [name]/[ph], and — for complete events ([ph = "X"]) —
    numeric [ts], [dur], [pid] and [tid]. Returns the number of events,
    or the list of schema violations. *)
