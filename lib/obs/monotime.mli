(** Monotonic wall-clock readings ([clock_gettime(CLOCK_MONOTONIC)]).

    Solver statistics report elapsed times as differences of these
    readings, so [stats.runtime] cannot go negative or jump when NTP
    slews the system clock — which [Unix.gettimeofday] cannot
    guarantee. The absolute value is meaningless (an arbitrary epoch,
    typically boot time); only differences are. *)

val now_ns : unit -> int64
(** Nanoseconds since an arbitrary fixed epoch. *)

val now : unit -> float
(** Seconds since an arbitrary fixed epoch. *)

val elapsed : since:float -> float
(** [elapsed ~since:(now ())] is the seconds elapsed, always >= 0. *)
