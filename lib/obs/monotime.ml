external now_ns : unit -> int64 = "bcdb_monotime_ns"

let now () = Int64.to_float (now_ns ()) /. 1e9
let elapsed ~since = now () -. since
