(* The bcdb text format: parsing, validation errors, round-trips. *)

module R = Relational
module V = R.Value
module Core = Bccore

let sample =
  {|
# a tiny ledger
relation Item(id, kind)
relation Move(id, owner, epoch)
key Item(id)
key Move(id, epoch)
fd Move(id -> owner)            % every id has one owner over all moves
ind Move(id) <= Item(id)

state Item("axe", "tool")
state Move("axe", "ann", 1)

tx first
  Item("saw", "tool")
  Move("saw", "bob", 1)

tx
  Move("axe", "ann", 2)
|}

let parse_ok s =
  match Core.Bcdb_file.of_string s with
  | Ok db -> db
  | Error msg -> Alcotest.fail msg

let test_parse () =
  let db = parse_ok sample in
  Alcotest.(check int) "pending" 2 (Core.Bcdb.pending_count db);
  Alcotest.(check int) "constraints" 4 (List.length db.Core.Bcdb.constraints);
  Alcotest.(check string) "first label" "first"
    db.Core.Bcdb.pending.(0).Core.Pending.label;
  Alcotest.(check string) "default label" "T2"
    db.Core.Bcdb.pending.(1).Core.Pending.label;
  Alcotest.(check int) "state rows" 2
    (R.Database.total_cardinality db.Core.Bcdb.state)

let test_roundtrip () =
  let db = parse_ok sample in
  let printed = Core.Bcdb_file.to_string db in
  let db' = parse_ok printed in
  Alcotest.(check string) "print is a fixpoint" printed
    (Core.Bcdb_file.to_string db');
  (* Same possible worlds. *)
  let worlds db =
    let store = Core.Tagged_store.create db in
    let acc = ref [] in
    Core.Poss.enumerate store (fun w ->
        acc := Bcgraph.Bitset.to_list w :: !acc;
        `Continue);
    List.sort compare !acc
  in
  Alcotest.(check (list (list int))) "same worlds" (worlds db) (worlds db')

let test_roundtrip_paper () =
  let db = Fixtures.paper_db () in
  let printed = Core.Bcdb_file.to_string db in
  let db' = parse_ok printed in
  Alcotest.(check int) "pending preserved" 5 (Core.Bcdb.pending_count db');
  let store = Core.Tagged_store.create db' in
  Alcotest.(check int) "nine worlds" 9 (Core.Poss.count store);
  (* Values (including floats and ints) survive the round trip. *)
  Alcotest.(check string) "second print stable" printed
    (Core.Bcdb_file.to_string db')

let expect_error fragment s =
  match Core.Bcdb_file.of_string s with
  | Ok _ -> Alcotest.failf "expected failure mentioning %S" fragment
  | Error msg ->
      let contains =
        let lf = String.lowercase_ascii fragment
        and lm = String.lowercase_ascii msg in
        let n = String.length lf in
        let rec go i =
          i + n <= String.length lm && (String.sub lm i n = lf || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) (Printf.sprintf "%S in %S" fragment msg) true contains

let test_errors () =
  expect_error "not declared" {| state Foo(1) |};
  expect_error "expects 2 values" {|
relation Item(id, kind)
state Item(1)
|};
  expect_error "declared twice" {|
relation Item(id)
relation Item(id)
|};
  expect_error "before any" {|
relation Item(id)
Item(1)
|};
  expect_error "->" {|
relation Item(id, kind)
fd Item(id, kind)
|};
  expect_error "violates" {|
relation Item(id, kind)
key Item(id)
state Item(1, "a")
state Item(1, "b")
|};
  expect_error "cannot parse" {|
relation Item(id)
state Item(unquoted)
|}

let test_values () =
  let db =
    parse_ok
      {|
relation Mixed(a, b, c, d, e)
state Mixed(42, -7.5, "hello, world", true, null)
|}
  in
  let rel = R.Database.relation db.Core.Bcdb.state "Mixed" in
  match R.Relation.to_list rel with
  | [ t ] ->
      Alcotest.(check bool) "int" true (V.equal (R.Tuple.get t 0) (V.Int 42));
      Alcotest.(check bool) "float" true
        (V.equal (R.Tuple.get t 1) (V.Float (-7.5)));
      Alcotest.(check bool) "string with comma" true
        (V.equal (R.Tuple.get t 2) (V.Str "hello, world"));
      Alcotest.(check bool) "bool" true (V.equal (R.Tuple.get t 3) (V.Bool true));
      Alcotest.(check bool) "null" true (V.equal (R.Tuple.get t 4) V.Null)
  | other -> Alcotest.failf "expected one tuple, got %d" (List.length other)

let test_save_load () =
  let db = Fixtures.paper_db () in
  let path = Filename.temp_file "bcdb" ".txt" in
  (match Core.Bcdb_file.save path db with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  (match Core.Bcdb_file.load path with
  | Ok db' -> Alcotest.(check int) "reloaded" 5 (Core.Bcdb.pending_count db')
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

let test_binary_save_load () =
  let db = Fixtures.paper_db () in
  let path = Filename.temp_file "bcdb" ".snap" in
  (match Core.Bcdb_file.save_binary path db with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  (match Core.Bcdb_file.load_binary path with
  | Ok db' ->
      Alcotest.(check int) "pending restored" 5 (Core.Bcdb.pending_count db');
      Alcotest.(check string) "labels restored" "T5"
        db'.Core.Bcdb.pending.(4).Core.Pending.label;
      Alcotest.(check string) "text render identical"
        (Core.Bcdb_file.to_string db)
        (Core.Bcdb_file.to_string db');
      let store = Core.Tagged_store.create db' in
      Alcotest.(check int) "nine worlds" 9 (Core.Poss.count store)
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

let test_binary_rejects_garbage () =
  let reject label s =
    match Core.Bcdb_file.of_binary_string s with
    | Ok _ -> Alcotest.failf "%s: accepted" label
    | Error _ -> ()
  in
  reject "empty" "";
  reject "bad magic" "NOTASNAP";
  let good = Core.Bcdb_file.to_binary_string (Fixtures.paper_db ()) in
  reject "truncated" (String.sub good 0 (String.length good / 2));
  reject "trailing bytes" (good ^ "x");
  (* Flip a byte in the middle: must error, never crash. *)
  let b = Bytes.of_string good in
  Bytes.set b (Bytes.length b / 2) '\xff';
  match Core.Bcdb_file.of_binary_string (Bytes.to_string b) with
  | Ok _ | Error _ -> ()

(* Floats print in their shortest exact form: awkward values (repeating
   binary fractions, extremes, negative zero) must parse back to the
   identical bits, and integer-valued floats must keep a decimal point
   so reparsing cannot demote them to Int. *)
let test_float_printing () =
  let roundtrips f =
    let s = V.to_string (V.Float f) in
    Alcotest.(check (float 0.0))
      (Printf.sprintf "%h prints as %s" f s)
      f (float_of_string s)
  in
  List.iter roundtrips
    [
      0.1; -0.1; 1.0 /. 3.0; 0.2 +. 0.1; 1e15; 1.5e300; 4.9e-324;
      Float.max_float; Float.min_float; -0.0; 1234567.25;
    ];
  List.iter
    (fun f ->
      let s = V.to_string (V.Float f) in
      Alcotest.(check bool)
        (Printf.sprintf "%g keeps float syntax (%s)" f s)
        true
        (String.exists (fun c -> c = '.' || c = 'e') s))
    [ 4.0; 0.0; -3.0; 1e15; 0.5 ]

let float_shortest_roundtrip =
  QCheck.Test.make ~name:"binary float encoding roundtrips" ~count:300
    QCheck.float (fun f ->
      let buf = Buffer.create 16 in
      V.write_binary buf (V.Float f);
      match V.read_binary (Buffer.contents buf) (ref 0) with
      | Some (V.Float f') ->
          Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float f')
      | _ -> false)

(* Fuzz: random databases (awkward values included: commas, quotes,
   floats, booleans) survive a print/parse round-trip with identical
   possible-world structure. *)
let fuzz_roundtrip =
  QCheck.Test.make ~name:"random db roundtrips" ~count:60
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let item = R.Schema.relation "Item" [ "id"; "kind" ] in
      let move = R.Schema.relation "Move" [ "id"; "owner" ] in
      let cat = R.Schema.of_list [ item; move ] in
      let constraints =
        [
          R.Constr.key item [ "id" ];
          R.Constr.ind ~sub:move [ "id" ] ~sup:item [ "id" ];
        ]
      in
      let rand_value () =
        match Random.State.int rng 5 with
        | 0 -> V.Int (Random.State.int rng 5)
        | 1 -> V.Str (Printf.sprintf "s%d, \"x\"" (Random.State.int rng 3))
        | 2 -> V.Float (float_of_int (Random.State.int rng 9) /. 2.0)
        | 3 -> V.Bool (Random.State.bool rng)
        | _ -> V.Null
      in
      let state = R.Database.create cat in
      for i = 0 to 2 do
        ignore
          (R.Database.insert state "Item" (R.Tuple.make [ V.Int i; rand_value () ]))
      done;
      let k = 1 + Random.State.int rng 4 in
      let pending =
        List.init k (fun j ->
            if Random.State.bool rng then
              [ ("Item", R.Tuple.make [ V.Int (3 + j); rand_value () ]) ]
            else
              [
                ( "Move",
                  R.Tuple.make [ V.Int (Random.State.int rng 6); rand_value () ]
                );
              ])
      in
      let db = Core.Bcdb.create_exn ~state ~constraints ~pending () in
      let printed = Core.Bcdb_file.to_string db in
      match Core.Bcdb_file.of_string printed with
      | Error _ -> false
      | Ok db' ->
          let worlds d =
            let store = Core.Tagged_store.create d in
            let acc = ref [] in
            Core.Poss.enumerate store (fun w ->
                acc := Bcgraph.Bitset.to_list w :: !acc;
                `Continue);
            List.sort compare !acc
          in
          (* Value fidelity: printing the reparsed database must be a
             fixpoint (catches broken string escaping). *)
          String.equal printed (Core.Bcdb_file.to_string db')
          && worlds db = worlds db')

let () =
  Alcotest.run "file"
    [
      ( "bcdb-file",
        [
          Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "roundtrip paper" `Quick test_roundtrip_paper;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "values" `Quick test_values;
          Alcotest.test_case "save/load" `Quick test_save_load;
          Alcotest.test_case "binary save/load" `Quick test_binary_save_load;
          Alcotest.test_case "binary rejects garbage" `Quick
            test_binary_rejects_garbage;
          Alcotest.test_case "float printing" `Quick test_float_printing;
          QCheck_alcotest.to_alcotest float_shortest_roundtrip;
          QCheck_alcotest.to_alcotest fuzz_roundtrip;
        ] );
    ]
