(* Observability layer: unit tests for the recorder and sinks, the
   Chrome trace_event emission/validation round-trip on a real OptDCSat
   run, and the cross-backend regression — sequential and parallel runs
   must report identical solver stats and identical merged values for
   the deterministic obs counters, with per-domain span buffers that
   never interleave. *)

module R = Relational
module V = R.Value
module Q = Bcquery
module Core = Bccore
module Obs = Bccore.Obs

(* The parallel worker count: CI runs the suite once with
   BCDB_TEST_JOBS=1 and once with BCDB_TEST_JOBS=4, so the same
   assertions are exercised against both backends. *)
let par_jobs =
  match Sys.getenv_opt "BCDB_TEST_JOBS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

(* --- fixture: a small instance that defeats the pre-check and drives
   every OptDCSat phase (components, covers, cliques, worlds) --- *)

let node = R.Schema.relation "Node" [ "id"; "colour" ]
let edge = R.Schema.relation "Edge" [ "src"; "dst" ]
let cat = R.Schema.of_list [ node; edge ]

let constraints =
  [
    R.Constr.key node [ "id" ];
    R.Constr.ind ~sub:edge [ "src" ] ~sup:node [ "id" ];
    R.Constr.ind ~sub:edge [ "dst" ] ~sup:node [ "id" ];
  ]

let node_row id colour = ("Node", R.Tuple.make [ V.Int id; V.Str colour ])
let edge_row s d = ("Edge", R.Tuple.make [ V.Int s; V.Int d ])

let fixture_db () =
  let state = R.Database.create cat in
  R.Database.insert_all state
    [ node_row 0 "red"; node_row 1 "red"; node_row 2 "red"; edge_row 0 1 ];
  Core.Bcdb.create_exn ~state ~constraints
    ~pending:
      [
        [ node_row 3 "green" ];
        [ node_row 3 "blue" ];  (* key-conflicts with the green tx *)
        [ edge_row 0 3 ];
        [ node_row 4 "green"; edge_row 4 4 ];
        [ node_row 5 "red" ];
      ]
    ()

(* Unsatisfied and not precheck-decidable-false: some possible world
   contains a green node, so every phase past the pre-check runs. *)
let q_green = {| q() :- Node(i, "green"). |}
let parse s = Q.Parser.parse_exn ~catalog:cat s

(* --- recorder unit tests --- *)

let test_counters () =
  let t = Obs.create () in
  Obs.add t "a" 2;
  Obs.add t "a" 3;
  Obs.add t "b" 1;
  Alcotest.(check int) "merged sum" 5 (Obs.counter t "a");
  Alcotest.(check int) "other counter" 1 (Obs.counter t "b");
  Alcotest.(check int) "absent counter" 0 (Obs.counter t "zzz");
  Alcotest.(check (list (pair string int)))
    "sorted merged counters"
    [ ("a", 5); ("b", 1) ]
    (Obs.counters t)

let test_null_is_inert () =
  Alcotest.(check bool) "null disabled" false (Obs.enabled Obs.null);
  Obs.add Obs.null "a" 1;
  Obs.observe Obs.null "h" 1.0;
  let r = Obs.span Obs.null "s" (fun () -> 42) in
  Alcotest.(check int) "span passes value through" 42 r;
  Alcotest.(check int) "no counter recorded" 0 (Obs.counter Obs.null "a");
  let s = Obs.summary Obs.null in
  Alcotest.(check int) "no spans" 0 (List.length s.Obs.spans)

let test_hist () =
  let t = Obs.create () in
  Obs.observe t "h" 1.0;
  Obs.observe t "h" 3.0;
  Obs.observe t "h" 2.0;
  match Obs.hist_of t "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      Alcotest.(check int) "count" 3 h.Obs.count;
      Alcotest.(check (float 1e-9)) "sum" 6.0 h.Obs.sum;
      Alcotest.(check (float 1e-9)) "min" 1.0 h.Obs.min;
      Alcotest.(check (float 1e-9)) "max" 3.0 h.Obs.max

let test_span_records_on_exception () =
  let t = Obs.create () in
  (try Obs.span t "boom" (fun () -> failwith "x") with Failure _ -> ());
  let s = Obs.summary t in
  Alcotest.(check int) "span recorded despite raise" 1
    (List.length s.Obs.spans)

(* --- solver-driven tests --- *)

let solve_opt ~jobs session q =
  match Core.Dcsat.opt ~jobs session q with
  | Ok o -> o
  | Error r -> Alcotest.failf "opt refused: %a" Core.Dcsat.pp_refusal r

(* Every instrumented phase must contribute at least one span to the
   trace of an OptDCSat run, and the emitted file must validate against
   the Chrome trace_event schema. *)
let test_trace_phases () =
  let path = Filename.temp_file "bcdb_trace" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let obs = Obs.create ~sinks:[ Obs.trace_sink path ] () in
  let session = Core.Session.create ~obs (fixture_db ()) in
  let outcome = solve_opt ~jobs:2 session (parse q_green) in
  Alcotest.(check bool) "fixture is unsatisfied" false
    outcome.Core.Dcsat.satisfied;
  Obs.flush obs;
  (match Obs.validate_trace_file path with
  | Ok events ->
      Alcotest.(check bool) "trace has events" true (events > 0)
  | Error errs -> Alcotest.failf "invalid trace: %s" (String.concat "; " errs));
  let spans = (Obs.summary obs).Obs.spans in
  let phases =
    [
      "precheck"; "ind_graph"; "covers"; "bk_yield"; "get_maximal"; "eval";
      (* engine *)
      "worker"; "claim"; "join";
      (* session lazies forced during the run *)
      "fd_graph"; "ind_base_edges";
    ]
  in
  List.iter
    (fun phase ->
      let n =
        List.length
          (List.filter (fun (sp : Obs.span) -> sp.Obs.name = phase) spans)
      in
      if n = 0 then Alcotest.failf "no %S span in the trace" phase)
    phases

(* Same-domain spans come from nested scoped timers on one call stack:
   any two must be disjoint in time or one must contain the other. An
   interleaved pair would mean two domains wrote into one buffer. *)
let test_span_buffers_well_formed () =
  let obs = Obs.create () in
  let session = Core.Session.create ~obs (fixture_db ()) in
  ignore (solve_opt ~jobs:par_jobs session (parse q_green));
  let spans = (Obs.summary obs).Obs.spans in
  Alcotest.(check bool) "run produced spans" true (spans <> []);
  let by_dom = Hashtbl.create 4 in
  List.iter
    (fun (sp : Obs.span) ->
      Hashtbl.replace by_dom sp.Obs.dom
        (sp :: Option.value (Hashtbl.find_opt by_dom sp.Obs.dom) ~default:[]))
    spans;
  Hashtbl.iter
    (fun dom dom_spans ->
      let arr = Array.of_list dom_spans in
      let ends (sp : Obs.span) = Int64.add sp.Obs.start_ns sp.Obs.dur_ns in
      Array.iteri
        (fun i a ->
          Array.iteri
            (fun j b ->
              if i < j then
                let disjoint =
                  ends a <= b.Obs.start_ns || ends b <= a.Obs.start_ns
                in
                let a_in_b =
                  b.Obs.start_ns <= a.Obs.start_ns && ends a <= ends b
                in
                let b_in_a =
                  a.Obs.start_ns <= b.Obs.start_ns && ends b <= ends a
                in
                if not (disjoint || a_in_b || b_in_a) then
                  Alcotest.failf
                    "domain %d: spans %s and %s interleave (corrupt buffer?)"
                    dom a.Obs.name b.Obs.name)
            arr)
        arr)
    by_dom

(* Sequential vs parallel: identical solver stats (runtime aside) and
   identical merged values for the counters the engine clamps
   deterministically. Span counts and cache hit/miss are legitimately
   backend-dependent and are not compared. *)
let deterministic_counters =
  [ "dcsat.worlds"; "dcsat.cliques"; "dcsat.components" ]

let counters_of ~jobs ~use_precheck session q =
  let obs = Obs.create () in
  let saved = Core.Session.obs session in
  Core.Session.set_obs session obs;
  Fun.protect ~finally:(fun () -> Core.Session.set_obs session saved)
  @@ fun () ->
  match Core.Dcsat.opt ~jobs ~use_precheck session q with
  | Error r -> Alcotest.failf "opt refused: %a" Core.Dcsat.pp_refusal r
  | Ok o ->
      ( { o.Core.Dcsat.stats with Core.Dcsat.runtime = 0.0 },
        List.map (fun name -> (name, Obs.counter obs name)) deterministic_counters
      )

let test_backend_counters_agree () =
  let session = Core.Session.create (fixture_db ()) in
  List.iter
    (fun (qs, use_precheck) ->
      let q = parse qs in
      let seq = counters_of ~jobs:1 ~use_precheck session q in
      let par = counters_of ~jobs:par_jobs ~use_precheck session q in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "obs counters %s (precheck %b)" qs use_precheck)
        (snd seq) (snd par);
      if fst seq <> fst par then
        Alcotest.failf "solver stats diverge on %s (precheck %b)" qs
          use_precheck)
    [
      (q_green, true);
      (q_green, false);
      ({| q() :- Edge(s, d), Node(d, "blue"). |}, false);
      ({| q() :- Node(i, c), Node(j, c), i != j. |}, true);
    ]

let random_dbs_counters_agree =
  QCheck.Test.make
    ~name:"merged deterministic counters agree across backends (random dbs)"
    ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let state = R.Database.create cat in
      R.Database.insert_all state
        [ node_row 0 "red"; node_row 1 "red"; edge_row 0 1 ];
      let colours = [| "red"; "green"; "blue" |] in
      let k = 2 + Random.State.int rng 5 in
      let random_tx () =
        List.init
          (1 + Random.State.int rng 2)
          (fun _ ->
            if Random.State.bool rng then
              node_row
                (2 + Random.State.int rng 5)
                colours.(Random.State.int rng 3)
            else edge_row (Random.State.int rng 7) (Random.State.int rng 7))
      in
      let db =
        Core.Bcdb.create_exn ~state ~constraints
          ~pending:(List.init k (fun _ -> random_tx ()))
          ()
      in
      let session = Core.Session.create db in
      let q = parse {| q() :- Edge(s, d), Node(d, "green"). |} in
      let seq = counters_of ~jobs:1 ~use_precheck:false session q in
      let par = counters_of ~jobs:par_jobs ~use_precheck:false session q in
      seq = par)

(* Instrumentation must not change answers: the same solve under a null
   and an enabled recorder returns identical outcomes. *)
let test_tracing_preserves_outcome () =
  let db = fixture_db () in
  let quiet = Core.Session.create db in
  let traced = Core.Session.create ~obs:(Obs.create ()) db in
  List.iter
    (fun qs ->
      let q = parse qs in
      let a = solve_opt ~jobs:2 quiet q in
      let b = solve_opt ~jobs:2 traced q in
      Alcotest.(check bool)
        (Printf.sprintf "verdict %s" qs)
        a.Core.Dcsat.satisfied b.Core.Dcsat.satisfied;
      if a.Core.Dcsat.witness_world <> b.Core.Dcsat.witness_world then
        Alcotest.failf "witness diverges under tracing on %s" qs)
    [ q_green; {| q() :- Edge(s, d), Node(d, "blue"). |} ]

(* --- sink round-trips --- *)

let test_metrics_jsonl () =
  let path = Filename.temp_file "bcdb_metrics" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let obs = Obs.create ~sinks:[ Obs.metrics_sink path ] () in
  let session = Core.Session.create ~obs (fixture_db ()) in
  ignore (solve_opt ~jobs:2 session (parse q_green));
  Obs.flush obs;
  let ic = open_in path in
  let lines = In_channel.input_lines ic in
  close_in ic;
  Alcotest.(check bool) "metrics non-empty" true (lines <> []);
  List.iter
    (fun line ->
      match Bcobs.Json.parse line with
      | Error msg -> Alcotest.failf "bad JSONL line %S: %s" line msg
      | Ok json -> (
          match Bcobs.Json.member "type" json with
          | Some (Bcobs.Json.Str ("counter" | "hist" | "span")) -> ()
          | _ -> Alcotest.failf "line lacks a known type: %S" line))
    lines;
  let has ty name =
    List.exists
      (fun l ->
        match Bcobs.Json.parse l with
        | Ok json ->
            Bcobs.Json.member "type" json = Some (Bcobs.Json.Str ty)
            && Bcobs.Json.member "name" json = Some (Bcobs.Json.Str name)
        | Error _ -> false)
      lines
  in
  Alcotest.(check bool) "worlds counter present" true
    (has "counter" "dcsat.worlds");
  Alcotest.(check bool) "busy histogram present" true
    (has "hist" "engine.busy_s")

let test_trace_validator_rejects_garbage () =
  let path = Filename.temp_file "bcdb_badtrace" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  output_string oc {| {"traceEvents": [{"ph": "X", "ts": 1}]} |};
  close_out oc;
  match Obs.validate_trace_file path with
  | Ok _ -> Alcotest.fail "validator accepted an event without name/dur"
  | Error _ -> ()

let () =
  Alcotest.run "obs"
    [
      ( "recorder",
        [
          Alcotest.test_case "counters merge" `Quick test_counters;
          Alcotest.test_case "null recorder is inert" `Quick test_null_is_inert;
          Alcotest.test_case "histograms" `Quick test_hist;
          Alcotest.test_case "span survives exceptions" `Quick
            test_span_records_on_exception;
        ] );
      ( "trace",
        [
          Alcotest.test_case "all phases span the trace" `Quick
            test_trace_phases;
          Alcotest.test_case "metrics JSONL parses" `Quick test_metrics_jsonl;
          Alcotest.test_case "validator rejects garbage" `Quick
            test_trace_validator_rejects_garbage;
        ] );
      ( "backends",
        [
          Alcotest.test_case "span buffers never interleave" `Quick
            test_span_buffers_well_formed;
          Alcotest.test_case "deterministic counters agree" `Quick
            test_backend_counters_agree;
          QCheck_alcotest.to_alcotest random_dbs_counters_agree;
          Alcotest.test_case "tracing preserves outcomes" `Quick
            test_tracing_preserves_outcome;
        ] );
    ]
