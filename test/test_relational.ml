(* Relational substrate: values, tuples, relations, constraints. *)

module R = Relational
module V = R.Value

let v = Alcotest.testable R.Value.pp R.Value.equal

let test_value_order () =
  Alcotest.(check bool) "int lt" true (V.lt (V.Int 1) (V.Int 2));
  Alcotest.(check bool) "mixed numeric lt" true (V.lt (V.Int 1) (V.Float 1.5));
  Alcotest.(check bool) "float/int gt" false (V.lt (V.Float 2.5) (V.Int 2));
  Alcotest.(check bool) "string lt" true (V.lt (V.Str "a") (V.Str "b"));
  Alcotest.(check bool) "incomparable" false (V.lt (V.Str "a") (V.Int 3));
  Alcotest.(check bool) "null incomparable" false (V.lt V.Null (V.Int 0))

let test_value_arith () =
  Alcotest.check v "int add" (V.Int 5) (V.add (V.Int 2) (V.Int 3));
  Alcotest.check v "promote to float" (V.Float 3.5) (V.add (V.Int 2) (V.Float 1.5));
  Alcotest.check v "max" (V.Int 7) (V.max_v (V.Int 7) (V.Int 3));
  Alcotest.check v "min" (V.Int 3) (V.min_v (V.Int 7) (V.Int 3));
  Alcotest.(check_raises) "non-numeric add"
    (Invalid_argument "Value.add: non-numeric operand") (fun () ->
      ignore (V.add (V.Str "x") (V.Int 1)))

let value_total_order =
  QCheck.Test.make ~name:"Value.compare is a total order" ~count:200
    QCheck.(
      triple
        (oneof [ map (fun i -> V.Int i) small_int; map (fun s -> V.Str s) string ])
        (oneof [ map (fun i -> V.Int i) small_int; map (fun s -> V.Str s) string ])
        (oneof [ map (fun i -> V.Int i) small_int; map (fun s -> V.Str s) string ]))
    (fun (a, b, c) ->
      let ( <= ) x y = V.compare x y <= 0 in
      (V.compare a b = -V.compare b a || V.compare a b = 0)
      && ((not (a <= b && b <= c)) || a <= c)
      && V.equal a a)

let float_print_roundtrip =
  QCheck.Test.make ~name:"float printing parses back exactly" ~count:300
    QCheck.float (fun f ->
      QCheck.assume (Float.is_finite f);
      let printed = V.to_string (V.Float f) in
      match float_of_string_opt printed with
      | Some f' -> Float.equal f' f
      | None -> false)

let hash_consistent =
  QCheck.Test.make ~name:"equal values hash equally" ~count:200
    QCheck.(pair small_int small_int)
    (fun (i, j) ->
      (not (V.equal (V.Int i) (V.Int j))) || V.hash (V.Int i) = V.hash (V.Int j))

let test_tuple_project () =
  let t = R.Tuple.make [ V.Int 1; V.Str "x"; V.Int 3 ] in
  Alcotest.(check int) "arity" 3 (R.Tuple.arity t);
  Alcotest.check v "get" (V.Str "x") (R.Tuple.get t 1);
  let p = R.Tuple.project t [ 2; 0 ] in
  Alcotest.check v "projected order" (V.Int 3) (R.Tuple.get p 0);
  Alcotest.check v "projected order" (V.Int 1) (R.Tuple.get p 1);
  (* The identity projection returns the tuple itself, no copy. *)
  Alcotest.(check bool) "identity projection is physical" true
    (R.Tuple.project t [ 0; 1; 2 ] == t);
  Alcotest.(check bool) "prefix projection still copies" false
    (R.Tuple.project t [ 0; 1 ] == t);
  Alcotest.(check_raises) "out of range"
    (Invalid_argument "Tuple.project: position out of range") (fun () ->
      ignore (R.Tuple.project t [ 3 ]))

let test_schema () =
  let r = R.Schema.relation "R" [ "a"; "b"; "c" ] in
  Alcotest.(check int) "arity" 3 (R.Schema.arity r);
  Alcotest.(check int) "attr index" 1 (R.Schema.attr_index r "b");
  Alcotest.(check bool) "missing attr raises" true
    (match R.Schema.attr_index r "z" with
    | exception Not_found -> true
    | _ -> false);
  Alcotest.(check bool) "duplicate attrs rejected" true
    (match R.Schema.relation "S" [ "a"; "a" ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_relation_set_semantics () =
  let r = R.Relation.create (R.Schema.relation "R" [ "a"; "b" ]) in
  let t1 = R.Tuple.make [ V.Int 1; V.Int 2 ] in
  Alcotest.(check bool) "first insert" true (R.Relation.insert r t1);
  Alcotest.(check bool) "duplicate ignored" false (R.Relation.insert r t1);
  Alcotest.(check int) "cardinality" 1 (R.Relation.cardinality r);
  Alcotest.(check bool) "mem" true (R.Relation.mem r t1)

let test_relation_lookup () =
  let r = R.Relation.create (R.Schema.relation "R" [ "a"; "b" ]) in
  for i = 1 to 100 do
    ignore (R.Relation.insert r (R.Tuple.make [ V.Int (i mod 10); V.Int i ]))
  done;
  let hits = List.of_seq (R.Relation.lookup r [ (0, V.Int 3) ]) in
  Alcotest.(check int) "index lookup size" 10 (List.length hits);
  Alcotest.(check bool) "all match" true
    (List.for_all (fun t -> V.equal (R.Tuple.get t 0) (V.Int 3)) hits);
  let narrowed = List.of_seq (R.Relation.lookup r [ (0, V.Int 3); (1, V.Int 13) ]) in
  Alcotest.(check int) "two binds" 1 (List.length narrowed);
  (* Index stays correct across later inserts. *)
  ignore (R.Relation.insert r (R.Tuple.make [ V.Int 3; V.Int 1000 ]));
  Alcotest.(check int) "incremental index" 11
    (List.length (List.of_seq (R.Relation.lookup r [ (0, V.Int 3) ])))

let lookup_agrees_with_scan =
  QCheck.Test.make ~name:"lookup equals filtered scan" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_bound 40) (pair (int_bound 5) (int_bound 5)))
    (fun rows ->
      let r = R.Relation.create (R.Schema.relation "R" [ "a"; "b" ]) in
      List.iter
        (fun (a, b) -> ignore (R.Relation.insert r (R.Tuple.make [ V.Int a; V.Int b ])))
        rows;
      List.for_all
        (fun key ->
          let via_lookup =
            List.of_seq (R.Relation.lookup r [ (0, V.Int key) ])
            |> List.sort R.Tuple.compare
          in
          let via_scan =
            List.of_seq (R.Relation.scan r)
            |> List.filter (fun t -> V.equal (R.Tuple.get t 0) (V.Int key))
            |> List.sort R.Tuple.compare
          in
          List.equal R.Tuple.equal via_lookup via_scan)
        [ 0; 1; 2; 3; 4; 5 ])

(* --- constraints --- *)

let abc = R.Schema.relation "R" [ "a"; "b"; "c" ]
let s_rel = R.Schema.relation "S" [ "x"; "y" ]
let cat = R.Schema.of_list [ abc; s_rel ]

let mk rows srows =
  let db = R.Database.create cat in
  List.iter
    (fun (a, b, c) ->
      ignore (R.Database.insert db "R" (R.Tuple.make [ V.Int a; V.Int b; V.Int c ])))
    rows;
  List.iter
    (fun (x, y) ->
      ignore (R.Database.insert db "S" (R.Tuple.make [ V.Int x; V.Int y ])))
    srows;
  db

let test_fd_check () =
  let fd = R.Constr.fd abc [ "a" ] [ "b" ] in
  let ok = mk [ (1, 2, 3); (1, 2, 4); (2, 9, 0) ] [] in
  let bad = mk [ (1, 2, 3); (1, 5, 4) ] [] in
  Alcotest.(check bool) "fd holds" true
    (R.Check.satisfies (R.Database.source ok) [ fd ]);
  Alcotest.(check bool) "fd violated" false
    (R.Check.satisfies (R.Database.source bad) [ fd ])

let test_key_is_fd () =
  let key = R.Constr.key abc [ "a" ] in
  (match key with
  | R.Constr.Fd f ->
      Alcotest.(check bool) "key detected" true (R.Constr.is_key abc f)
  | R.Constr.Ind _ -> Alcotest.fail "key must be an fd");
  let plain = R.Constr.fd abc [ "a" ] [ "b" ] in
  match plain with
  | R.Constr.Fd f -> Alcotest.(check bool) "not a key" false (R.Constr.is_key abc f)
  | R.Constr.Ind _ -> Alcotest.fail "fd must be an fd"

let test_ind_check () =
  let ind = R.Constr.ind ~sub:s_rel [ "x" ] ~sup:abc [ "a" ] in
  let ok = mk [ (1, 0, 0); (2, 0, 0) ] [ (1, 5); (2, 6) ] in
  let bad = mk [ (1, 0, 0) ] [ (3, 5) ] in
  Alcotest.(check bool) "ind holds" true
    (R.Check.satisfies (R.Database.source ok) [ ind ]);
  match R.Check.first_violation (R.Database.source bad) [ ind ] with
  | Some (R.Check.Ind_violation _) -> ()
  | Some (R.Check.Fd_violation _) | None -> Alcotest.fail "expected ind violation"

let test_batch_consistent () =
  let fd = R.Constr.fd abc [ "a" ] [ "b" ] in
  let ind = R.Constr.ind ~sub:s_rel [ "x" ] ~sup:abc [ "a" ] in
  let db = mk [ (1, 2, 3) ] [ (1, 9) ] in
  let src = R.Database.source db in
  let batch rows srows =
    List.map (fun (a, b, c) -> ("R", R.Tuple.make [ V.Int a; V.Int b; V.Int c ])) rows
    @ List.map (fun (x, y) -> ("S", R.Tuple.make [ V.Int x; V.Int y ])) srows
    |> List.map (fun (n, t) -> (n, [ t ]))
  in
  Alcotest.(check bool) "compatible batch" true
    (R.Check.batch_consistent src [ fd; ind ] (batch [ (2, 0, 0) ] [ (2, 1) ]));
  Alcotest.(check bool) "fd conflict with state" false
    (R.Check.batch_consistent src [ fd; ind ] (batch [ (1, 7, 0) ] []));
  Alcotest.(check bool) "internal fd conflict" false
    (R.Check.batch_consistent src [ fd; ind ]
       (batch [ (5, 1, 0); (5, 2, 0) ] []));
  Alcotest.(check bool) "unsupported ind" false
    (R.Check.batch_consistent src [ fd; ind ] (batch [] [ (9, 9) ]));
  Alcotest.(check bool) "ind supported within batch" true
    (R.Check.batch_consistent src [ fd; ind ] (batch [ (4, 0, 0) ] [ (4, 2) ]))

let batch_equals_full_check =
  QCheck.Test.make ~name:"batch_consistent = full recheck" ~count:100
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_bound 8) (triple (int_bound 3) (int_bound 3) (int_bound 3)))
        (list_of_size (QCheck.Gen.int_bound 6) (triple (int_bound 3) (int_bound 3) (int_bound 3))))
    (fun (base_rows, batch_rows) ->
      let fd = R.Constr.fd abc [ "a" ] [ "b" ] in
      let base = mk base_rows [] in
      QCheck.assume (R.Check.satisfies (R.Database.source base) [ fd ]);
      let batch =
        [
          ( "R",
            List.map
              (fun (a, b, c) -> R.Tuple.make [ V.Int a; V.Int b; V.Int c ])
              batch_rows );
        ]
      in
      let incremental =
        R.Check.batch_consistent (R.Database.source base) [ fd ] batch
      in
      let merged = mk (base_rows @ batch_rows) [] in
      let full = R.Check.satisfies (R.Database.source merged) [ fd ] in
      incremental = full)

let () =
  Alcotest.run "relational"
    [
      ( "value",
        [
          Alcotest.test_case "semantic order" `Quick test_value_order;
          Alcotest.test_case "arithmetic" `Quick test_value_arith;
          QCheck_alcotest.to_alcotest value_total_order;
          QCheck_alcotest.to_alcotest float_print_roundtrip;
          QCheck_alcotest.to_alcotest hash_consistent;
        ] );
      ( "tuple-schema",
        [
          Alcotest.test_case "projection" `Quick test_tuple_project;
          Alcotest.test_case "schema" `Quick test_schema;
        ] );
      ( "relation",
        [
          Alcotest.test_case "set semantics" `Quick test_relation_set_semantics;
          Alcotest.test_case "indexed lookup" `Quick test_relation_lookup;
          QCheck_alcotest.to_alcotest lookup_agrees_with_scan;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "fd" `Quick test_fd_check;
          Alcotest.test_case "key" `Quick test_key_is_fd;
          Alcotest.test_case "ind" `Quick test_ind_check;
          Alcotest.test_case "batch" `Quick test_batch_consistent;
          QCheck_alcotest.to_alcotest batch_equals_full_check;
        ] );
    ]
