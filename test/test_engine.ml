(* Engine robustness: cooperative budgets (deadline / max-worlds /
   max-pulled) surfacing as three-valued verdicts, the clique
   generator's interrupt hook, and exception safety of both backends —
   a raising eval must propagate to the caller, release every borrowed
   replica, and leave the helper-domain pool reusable. *)

module Core = Bccore
module Engine = Core.Engine

(* CI runs the suite once with BCDB_TEST_JOBS=1 and once with
   BCDB_TEST_JOBS=4, exercising the same assertions against the
   sequential and parallel backends. *)
let par_jobs =
  match Sys.getenv_opt "BCDB_TEST_JOBS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

(* --- Budget unit tests --- *)

let test_budget_create () =
  Alcotest.(check bool) "unlimited is unlimited" true
    (Engine.Budget.is_unlimited Engine.Budget.unlimited);
  Alcotest.(check bool) "bounded is not" false
    (Engine.Budget.is_unlimited (Engine.Budget.create ~max_worlds:5 ()));
  Alcotest.check_raises "negative timeout"
    (Invalid_argument "Engine.Budget.create: negative timeout") (fun () ->
      ignore (Engine.Budget.create ~timeout_s:(-1.0) ()))

let test_budget_trips_sticky () =
  let b = Engine.Budget.create ~max_worlds:3 ~max_pulled:2 () in
  Alcotest.(check bool) "under both limits" true
    (Engine.Budget.check b ~pulled:1 ~evaluated:1 = None);
  (* max_pulled trips first here; the reason then sticks even when a
     later check would also exceed max_worlds. *)
  Alcotest.(check bool) "max_pulled trips" true
    (Engine.Budget.check b ~pulled:2 ~evaluated:1
    = Some Engine.Budget.Max_pulled);
  Alcotest.(check bool) "first reason sticks" true
    (Engine.Budget.check b ~pulled:9 ~evaluated:9
    = Some Engine.Budget.Max_pulled);
  Alcotest.(check bool) "tripped agrees" true
    (Engine.Budget.tripped b = Some Engine.Budget.Max_pulled)

let test_budget_deadline_interrupt () =
  let b = Engine.Budget.create ~timeout_s:0.0 () in
  (* The absolute deadline is already behind us. *)
  Alcotest.(check bool) "interrupt fires" true (Engine.Budget.interrupt b ());
  Alcotest.(check bool) "deadline recorded" true
    (Engine.Budget.tripped b = Some Engine.Budget.Deadline);
  let unlimited = Engine.Budget.unlimited in
  Alcotest.(check bool) "unlimited never fires" false
    (Engine.Budget.interrupt unlimited ())

(* --- generator interrupt hook --- *)

let diamond () =
  (* Two triangles sharing an edge: cliques {0,1,2} and {1,2,3}. *)
  let g = Bcgraph.Undirected.create 4 in
  List.iter
    (fun (i, j) -> Bcgraph.Undirected.add_edge g i j)
    [ (0, 1); (0, 2); (1, 2); (1, 3); (2, 3) ];
  g

let test_generator_interrupt () =
  let next = Bcgraph.Bron_kerbosch.generator ~interrupt:(fun () -> true) (diamond ()) in
  Alcotest.(check bool) "immediately exhausted" true (next () = None);
  let full = Bcgraph.Bron_kerbosch.generator ~interrupt:(fun () -> false) (diamond ()) in
  let count = ref 0 in
  let rec drain () =
    match full () with Some _ -> incr count; drain () | None -> () in
  drain ();
  Alcotest.(check int) "false interrupt enumerates all" 2 !count;
  (* Fire after the first yield: the generator must answer None from
     then on, even though a second clique exists. *)
  let fired = ref false in
  let partial =
    Bcgraph.Bron_kerbosch.generator ~interrupt:(fun () -> !fired) (diamond ())
  in
  Alcotest.(check bool) "first clique yields" true (partial () <> None);
  fired := true;
  Alcotest.(check bool) "then permanently None" true (partial () = None);
  Alcotest.(check bool) "still None" true (partial () = None)

(* --- budgeted solver runs: three-valued verdicts --- *)

let is_unknown (o : Core.Dcsat.outcome) =
  match o.Core.Dcsat.verdict with
  | Core.Dcsat.Unknown _ -> true
  | Core.Dcsat.Satisfied | Core.Dcsat.Violated _ -> false

let test_unknown_on_max_worlds jobs () =
  let session = Core.Session.create (Fixtures.paper_db ()) in
  let budget = Engine.Budget.create ~max_worlds:0 () in
  match Core.Dcsat.opt ~jobs ~budget session Fixtures.qs_u8 with
  | Error r -> Alcotest.failf "refused: %a" Core.Dcsat.pp_refusal r
  | Ok o ->
      Alcotest.(check bool) "verdict unknown" true (is_unknown o);
      Alcotest.(check bool) "not claimed satisfied" false o.Core.Dcsat.satisfied;
      Alcotest.(check bool) "no witness" true (o.Core.Dcsat.witness_world = None)

let test_unknown_on_deadline jobs () =
  let session = Core.Session.create (Fixtures.paper_db ()) in
  (* qs_u8 is true over R ∪ T, so the pre-check cannot decide and the
     enumeration must start — where the already-expired deadline trips
     at the first claim. *)
  let budget = Engine.Budget.create ~timeout_s:0.0 () in
  match Core.Dcsat.naive ~jobs ~budget session Fixtures.qs_u8 with
  | Error r -> Alcotest.failf "refused: %a" Core.Dcsat.pp_refusal r
  | Ok o -> (
      match o.Core.Dcsat.verdict with
      | Core.Dcsat.Unknown Engine.Budget.Deadline -> ()
      | v ->
          Alcotest.failf "expected Unknown deadline, got %s"
            (Core.Dcsat.verdict_name v))

let test_generous_budget_matches_unbudgeted jobs () =
  let session = Core.Session.create (Fixtures.paper_db ()) in
  let solve budget = Core.Dcsat.opt ~jobs ?budget session Fixtures.qs_u8 in
  match (solve None, solve (Some (Engine.Budget.create ~max_worlds:1_000 ()))) with
  | Ok a, Ok b ->
      Alcotest.(check bool) "same satisfied" a.Core.Dcsat.satisfied
        b.Core.Dcsat.satisfied;
      Alcotest.(check (option (list int)))
        "same witness world" a.Core.Dcsat.witness_world
        b.Core.Dcsat.witness_world;
      Alcotest.(check bool) "untripped budget is not Unknown" false
        (is_unknown b)
  | _ -> Alcotest.fail "solver refused the paper query"

(* A violation found within the budget must be reported as Violated
   even though the budget would have tripped soon after: the
   counterexample is sound regardless of the unexplored suffix. *)
let test_violation_beats_exhaustion jobs () =
  let session = Core.Session.create (Fixtures.paper_db ()) in
  let budget = Engine.Budget.create ~max_worlds:1 () in
  match Core.Dcsat.opt ~jobs ~budget session Fixtures.qs_u8 with
  | Error r -> Alcotest.failf "refused: %a" Core.Dcsat.pp_refusal r
  | Ok o -> (
      (* The paper instance violates qs_u8 in the very first evaluated
         world, so even a one-world budget finds it. *)
      match o.Core.Dcsat.verdict with
      | Core.Dcsat.Violated _ -> ()
      | v ->
          Alcotest.failf "expected Violated, got %s"
            (Core.Dcsat.verdict_name v))

(* --- exception safety --- *)

exception Boom

let run_with_failing_eval ~jobs ~store ~replicate ~release items ~fail_on =
  Engine.run ~jobs ~store ~replicate ~release
    ~source:(Engine.Work_source.of_list items)
    ~eval:(fun () _store members ->
      if members = fail_on then raise Boom
      else { Engine.world = members; violation = None })
    ~on_item:ignore ~on_evaluated:ignore ()

let test_eval_raise_propagates jobs () =
  let store = Core.Tagged_store.create (Fixtures.paper_db ()) in
  let borrowed = ref 0 and released = ref 0 in
  let replicate () =
    incr borrowed;
    Core.Tagged_store.clone store
  in
  let release _ = incr released in
  let items = [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ]; [ 4 ] ] in
  (match
     run_with_failing_eval ~jobs ~store ~replicate ~release items
       ~fail_on:[ 2 ]
   with
  | (_ : Engine.report) -> Alcotest.fail "expected the eval's exception"
  | exception Boom -> ());
  Alcotest.(check int) "every borrowed replica released" !borrowed !released;
  (* The engine (and its helper-domain pool) must stay usable: a clean
     run right after the failed one completes with full counts. *)
  let report =
    Engine.run ~jobs ~store ~replicate ~release
      ~source:(Engine.Work_source.of_list items)
      ~eval:(fun () _store members -> { Engine.world = members; violation = None })
      ~on_item:ignore ~on_evaluated:ignore ()
  in
  Alcotest.(check int) "clean rerun evaluates everything" 5
    report.Engine.evaluated;
  Alcotest.(check bool) "no violation" true (report.Engine.hit = None);
  Alcotest.(check bool) "no exhaustion" true (report.Engine.exhausted = None);
  Alcotest.(check int) "rerun replicas also released" !borrowed !released

let test_replicate_raise_propagates jobs () =
  (* Failures in replicate (not just eval) must unwind the same way. *)
  let store = Core.Tagged_store.create (Fixtures.paper_db ()) in
  let released = ref 0 in
  let replicate () = raise Boom in
  let release _ = incr released in
  if jobs <= 1 then begin
    (* The sequential backend evaluates on the primary store and never
       replicates, so a poisoned replicate is simply unused. *)
    let report =
      run_with_failing_eval ~jobs ~store ~replicate ~release
        [ [ 0 ]; [ 1 ] ]
        ~fail_on:[ 99 ]
    in
    Alcotest.(check int) "sequential run unaffected" 2 report.Engine.evaluated
  end
  else begin
    (match
       run_with_failing_eval ~jobs ~store ~replicate ~release
         [ [ 0 ]; [ 1 ] ]
         ~fail_on:[ 99 ]
     with
    | (_ : Engine.report) -> Alcotest.fail "expected replicate's exception"
    | exception Boom -> ());
    Alcotest.(check int) "nothing to release" 0 !released
  end

let jobs_cases name mk =
  [
    Alcotest.test_case (name ^ " (jobs=1)") `Quick (mk 1);
    Alcotest.test_case
      (Printf.sprintf "%s (jobs=%d)" name par_jobs)
      `Quick (mk par_jobs);
  ]

let () =
  Alcotest.run "engine"
    [
      ( "budget",
        [
          Alcotest.test_case "create/unlimited" `Quick test_budget_create;
          Alcotest.test_case "sticky trip" `Quick test_budget_trips_sticky;
          Alcotest.test_case "deadline interrupt" `Quick
            test_budget_deadline_interrupt;
        ] );
      ( "generator",
        [ Alcotest.test_case "interrupt hook" `Quick test_generator_interrupt ]
      );
      ( "verdicts",
        jobs_cases "unknown on max-worlds" test_unknown_on_max_worlds
        @ jobs_cases "unknown on expired deadline" test_unknown_on_deadline
        @ jobs_cases "generous budget matches unbudgeted"
            test_generous_budget_matches_unbudgeted
        @ jobs_cases "violation beats exhaustion"
            test_violation_beats_exhaustion );
      ( "exceptions",
        jobs_cases "eval raise propagates" test_eval_raise_propagates
        @ jobs_cases "replicate raise propagates"
            test_replicate_raise_propagates );
    ]
