(* The strongest correctness property in the suite: on randomly generated
   blockchain databases with the *mixed* constraint profile (keys AND
   inclusion dependencies — the CoNP-complete territory), NaiveDCSat and
   OptDCSat must agree with exhaustive possible-world enumeration on
   every monotone denial constraint, and the dispatcher must agree on
   everything it accepts. *)

module R = Relational
module V = R.Value
module Q = Bcquery
module Core = Bccore

(* Schema: Node(id, colour) with key id; Edge(src, dst) with
   Edge[src] ⊆ Node[id] and Edge[dst] ⊆ Node[id]. Random transactions
   insert nodes (possibly key-conflicting) and edges (possibly dangling),
   giving rich clique/component/dependency structure. *)

let node = R.Schema.relation "Node" [ "id"; "colour" ]
let edge = R.Schema.relation "Edge" [ "src"; "dst" ]
let cat = R.Schema.of_list [ node; edge ]

let constraints =
  [
    R.Constr.key node [ "id" ];
    R.Constr.ind ~sub:edge [ "src" ] ~sup:node [ "id" ];
    R.Constr.ind ~sub:edge [ "dst" ] ~sup:node [ "id" ];
  ]

let node_row id colour = ("Node", R.Tuple.make [ V.Int id; V.Str colour ])
let edge_row s d = ("Edge", R.Tuple.make [ V.Int s; V.Int d ])

let colours = [| "red"; "green"; "blue" |]

let random_db rng =
  let state = R.Database.create cat in
  (* Base: nodes 0..2 all red, an edge 0 -> 1. *)
  R.Database.insert_all state
    [ node_row 0 "red"; node_row 1 "red"; node_row 2 "red"; edge_row 0 1 ];
  let k = 2 + Random.State.int rng 5 in
  let random_tx () =
    let rows = 1 + Random.State.int rng 2 in
    List.init rows (fun _ ->
        if Random.State.bool rng then
          node_row
            (3 + Random.State.int rng 4)
            colours.(Random.State.int rng 3)
        else edge_row (Random.State.int rng 7) (Random.State.int rng 7))
  in
  Core.Bcdb.create_exn ~state ~constraints
    ~pending:(List.init k (fun _ -> random_tx ()))
    ()

let queries =
  [
    {| q() :- Node(i, "green"). |};
    {| q() :- Edge(s, d), Node(s, "red"), Node(d, c). |};
    {| q() :- Edge(s, d), Edge(d, e), s != e. |};
    {| q() :- Node(4, c). |};
    {| q() :- Edge(s, 5). |};
    {| q() :- Edge(s, d), Node(d, "blue"). |};
    "q(count()) :- Edge(s, d) | > 2.";
    {| q(cntd(c)) :- Node(i, c) | > 2. |};
    {| q(max(i)) :- Node(i, c) | > 5. |};
  ]

let agreement =
  QCheck.Test.make
    ~name:"naive = opt = brute on random mixed-constraint databases"
    ~count:120
    QCheck.(pair (int_bound 100_000) (int_bound (List.length queries - 1)))
    (fun (seed, qi) ->
      let rng = Random.State.make [| seed |] in
      let db = random_db rng in
      let session = Core.Session.create db in
      let q = Q.Parser.parse_exn ~catalog:cat (List.nth queries qi) in
      let brute = (Core.Dcsat.brute_force session q).Core.Dcsat.satisfied in
      let naive_ok =
        match Core.Dcsat.naive session q with
        | Ok o -> o.Core.Dcsat.satisfied = brute
        | Error _ -> false
      in
      let opt_ok =
        match Core.Dcsat.opt session q with
        | Ok o -> o.Core.Dcsat.satisfied = brute
        | Error `Not_connected -> true (* aggregates / disconnected *)
        | Error (`Not_monotone _) -> false
      in
      let solver_ok =
        match Core.Solver.solve session q with
        | Ok (o, _) -> o.Core.Dcsat.satisfied = brute
        | Error _ -> false
      in
      naive_ok && opt_ok && solver_ok)

(* Witness worlds returned on violation must be genuine possible worlds
   over which the query is true. *)
let witness_soundness =
  QCheck.Test.make ~name:"witness worlds are real and violating" ~count:120
    QCheck.(pair (int_bound 100_000) (int_bound (List.length queries - 1)))
    (fun (seed, qi) ->
      let rng = Random.State.make [| seed |] in
      let db = random_db rng in
      let session = Core.Session.create db in
      let store = Core.Session.store session in
      let q = Q.Parser.parse_exn ~catalog:cat (List.nth queries qi) in
      match Core.Dcsat.naive session q with
      | Error _ -> QCheck.assume_fail ()
      | Ok { Core.Dcsat.satisfied = true; _ } -> true
      | Ok { Core.Dcsat.satisfied = false; witness_world = None; _ } -> false
      | Ok { Core.Dcsat.satisfied = false; witness_world = Some ids; _ } ->
          let world =
            Bcgraph.Bitset.of_list (Core.Tagged_store.tx_count store) ids
          in
          let legal = Core.Poss.is_possible_world store world in
          Core.Tagged_store.set_world store world;
          let violating =
            Q.Eval.eval (Core.Tagged_store.source store) q
          in
          legal && violating)

(* The engine's determinism contract: the parallel backend must return
   exactly the sequential answer — same satisfaction verdict, same
   witness world, and (runtime aside) the same stats: claims happen in
   source order and counts are clamped to the winning violation's
   index, so parallel never *reports* more worlds than sequential. *)
let backend_agreement =
  QCheck.Test.make
    ~name:"parallel backend agrees with sequential (naive & opt)" ~count:80
    QCheck.(pair (int_bound 100_000) (int_bound (List.length queries - 1)))
    (fun (seed, qi) ->
      let rng = Random.State.make [| seed |] in
      let db = random_db rng in
      let session = Core.Session.create db in
      let q = Q.Parser.parse_exn ~catalog:cat (List.nth queries qi) in
      let agree run =
        match (run ~jobs:1, run ~jobs:3) with
        | Ok (seq : Core.Dcsat.outcome), Ok (par : Core.Dcsat.outcome) ->
            seq.Core.Dcsat.satisfied = par.Core.Dcsat.satisfied
            && seq.Core.Dcsat.witness_world = par.Core.Dcsat.witness_world
            && { par.Core.Dcsat.stats with Core.Dcsat.runtime = 0.0 }
               = { seq.Core.Dcsat.stats with Core.Dcsat.runtime = 0.0 }
        | Error _, Error _ -> true (* same refusal either way *)
        | _ -> false
      in
      agree (fun ~jobs -> Core.Dcsat.naive ~jobs session q)
      && agree (fun ~jobs -> Core.Dcsat.opt ~jobs session q)
      (* With the pre-check off, the clique/component enumeration — and
         with it the component-scoped store path — actually runs even
         when R ∪ T already refutes q; with covers off every component
         is entered. Together these drive far more worlds through the
         scoped-store views on both backends. *)
      && agree (fun ~jobs -> Core.Dcsat.naive ~use_precheck:false ~jobs session q)
      && agree (fun ~jobs -> Core.Dcsat.opt ~use_precheck:false ~jobs session q)
      && agree (fun ~jobs ->
             Core.Dcsat.opt ~use_precheck:false ~use_covers:false ~jobs session
               q)
      && agree (fun ~jobs ->
             match Core.Dcsat.brute_force ~jobs session q with
             | o -> Ok o
             | exception Invalid_argument m -> Error m))

let () =
  Alcotest.run "agreement"
    [
      ( "solver-agreement",
        [
          QCheck_alcotest.to_alcotest agreement;
          QCheck_alcotest.to_alcotest witness_soundness;
          QCheck_alcotest.to_alcotest backend_agreement;
        ] );
    ]
