(* Differential suite for the incremental evaluation layer: on random
   databases and random monotone denial constraints, the delta-seeded
   evaluator must be *indistinguishable* from from-scratch evaluation —
   identical verdicts, identical canonical witnesses — over arbitrary
   world sequences (including revisits, which exercise the replay path)
   and across repeated solver runs on one session (which exercise the
   per-store world cache, the maximal-world memo, and the ind-component
   cache). CI runs the suite with BCDB_TEST_JOBS=1 and =4. *)

module R = Relational
module V = R.Value
module Q = Bcquery
module Core = Bccore

let par_jobs =
  match Sys.getenv_opt "BCDB_TEST_JOBS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

(* Same mixed-constraint generator family as test_agreement: keys and
   inclusion dependencies over Node/Edge give the solver real clique and
   component structure to cache across. *)

let node = R.Schema.relation "Node" [ "id"; "colour" ]
let edge = R.Schema.relation "Edge" [ "src"; "dst" ]
let cat = R.Schema.of_list [ node; edge ]

let constraints =
  [
    R.Constr.key node [ "id" ];
    R.Constr.ind ~sub:edge [ "src" ] ~sup:node [ "id" ];
    R.Constr.ind ~sub:edge [ "dst" ] ~sup:node [ "id" ];
  ]

let node_row id colour = ("Node", R.Tuple.make [ V.Int id; V.Str colour ])
let edge_row s d = ("Edge", R.Tuple.make [ V.Int s; V.Int d ])
let colours = [| "red"; "green"; "blue" |]

let random_db rng =
  let state = R.Database.create cat in
  R.Database.insert_all state
    [ node_row 0 "red"; node_row 1 "red"; node_row 2 "red"; edge_row 0 1 ];
  let k = 2 + Random.State.int rng 5 in
  let random_tx () =
    let rows = 1 + Random.State.int rng 2 in
    List.init rows (fun _ ->
        if Random.State.bool rng then
          node_row
            (3 + Random.State.int rng 4)
            colours.(Random.State.int rng 3)
        else edge_row (Random.State.int rng 7) (Random.State.int rng 7))
  in
  Core.Bcdb.create_exn ~state ~constraints
    ~pending:(List.init k (fun _ -> random_tx ()))
    ()

(* Monotone bodies only — the delta path's territory. Aggregates ride
   along to exercise the incremental accumulators (count/sum/max/min)
   and their fallback rules. *)
let queries =
  [
    {| q() :- Node(i, "green"). |};
    {| q() :- Edge(s, d), Node(s, "red"), Node(d, c). |};
    {| q() :- Edge(s, d), Edge(d, e), s != e. |};
    {| q() :- Node(4, c). |};
    {| q() :- Edge(s, d), Node(d, "blue"). |};
    "q(count()) :- Edge(s, d) | > 2.";
    {| q(sum(s)) :- Edge(s, d) | > 6. |};
    {| q(max(i)) :- Node(i, c) | > 5. |};
    {| q(min(d)) :- Edge(s, d) | < 1. |};
    {| q(cntd(c)) :- Node(i, c) | > 2. |};
  ]

let parse qi = Q.Parser.parse_exn ~catalog:cat (List.nth queries qi)

(* --- Direct differential: eval_world over random world sequences --- *)

(* Both evaluators see the same store and the same world sequence; the
   delta one may answer from its cache (replay / delta-seeded search),
   the baseline always runs the full join. Every answer — verdict and
   canonical witness — must be identical. Worlds repeat with high
   probability (draws from a small pool), so the replay path fires. *)
let eval_world_differential =
  QCheck.Test.make
    ~name:"eval_world: delta-seeded = from-scratch over world sequences"
    ~count:150
    QCheck.(pair (int_bound 100_000) (int_bound (List.length queries - 1)))
    (fun (seed, qi) ->
      let rng = Random.State.make [| seed |] in
      let db = random_db rng in
      let session = Core.Session.create db in
      let store = Core.Session.store session in
      let n = Core.Tagged_store.tx_count store in
      let q = parse qi in
      let plan = Core.Session.plan session q in
      let inc = Core.Inc_eval.evaluator ~use_delta:true plan in
      let full = Core.Inc_eval.evaluator ~use_delta:false plan in
      (* A small pool of random worlds, then a longer sequence drawn
         from it with repetition. *)
      let pool =
        Array.init 6 (fun _ ->
            List.filter (fun _ -> Random.State.bool rng) (List.init n Fun.id))
      in
      let steps =
        List.init 25 (fun _ -> pool.(Random.State.int rng (Array.length pool)))
      in
      List.for_all
        (fun world ->
          let a = Core.Inc_eval.eval_world inc store world in
          let b = Core.Inc_eval.eval_world full store world in
          a = b)
        steps)

(* --- Maximal-world memo: cached closure = direct closure --- *)

let maximal_world_memo =
  QCheck.Test.make ~name:"maximal_world memo = Get_maximal.run_list"
    ~count:100
    QCheck.(pair (int_bound 100_000) (int_bound (List.length queries - 1)))
    (fun (seed, qi) ->
      let rng = Random.State.make [| seed |] in
      let db = random_db rng in
      let session = Core.Session.create db in
      let store = Core.Session.store session in
      let n = Core.Tagged_store.tx_count store in
      let plan = Core.Session.plan session (parse qi) in
      let inc = Core.Inc_eval.evaluator ~use_delta:true plan in
      let members =
        List.filter (fun _ -> Random.State.bool rng) (List.init n Fun.id)
      in
      let direct = Core.Get_maximal.run_list store members in
      (* Twice: a miss that populates the memo, then the hit. *)
      let first = Core.Inc_eval.maximal_world inc store members in
      let second = Core.Inc_eval.maximal_world inc store members in
      Bcgraph.Bitset.equal direct first && Bcgraph.Bitset.equal direct second)

(* --- Solver-level differential: use_delta on = off, across repeats --- *)

(* One session solves the same constraint three times with the delta
   machinery on (run 2 and 3 hit the world cache, the maximal-world
   memo, and — for Opt — the ind-component cache); a fresh session
   solves once with everything off. All four outcomes must agree on the
   verdict and the witness world. *)
let solver_differential =
  QCheck.Test.make
    ~name:"solve: use_delta:true (repeated) = use_delta:false (fresh)"
    ~count:80
    QCheck.(pair (int_bound 100_000) (int_bound (List.length queries - 1)))
    (fun (seed, qi) ->
      let rng = Random.State.make [| seed |] in
      let db = random_db rng in
      let q = parse qi in
      let baseline_session = Core.Session.create db in
      let baseline =
        Core.Solver.solve ~jobs:par_jobs ~use_delta:false baseline_session q
      in
      let session = Core.Session.create db in
      let agree run =
        match (baseline, run) with
        | Ok (b, _), Ok (o, _) ->
            b.Core.Dcsat.satisfied = o.Core.Dcsat.satisfied
            && b.Core.Dcsat.witness_world = o.Core.Dcsat.witness_world
        | Error _, Error _ -> true
        | _ -> false
      in
      List.for_all
        (fun () -> agree (Core.Solver.solve ~jobs:par_jobs session q))
        [ (); (); () ])

(* --- Algorithm-level differential with the pre-check off --- *)

(* With use_precheck:false the clique walk actually runs even when
   R ∪ T already refutes q, driving many more worlds through the
   incremental evaluator; Naive and Opt must still match their own
   delta-off runs exactly (stats aside). *)
let algo_differential =
  QCheck.Test.make
    ~name:"naive/opt: delta on = off with pre-check disabled" ~count:60
    QCheck.(pair (int_bound 100_000) (int_bound (List.length queries - 1)))
    (fun (seed, qi) ->
      let rng = Random.State.make [| seed |] in
      let db = random_db rng in
      let q = parse qi in
      let outcome_eq (a : Core.Dcsat.outcome) (b : Core.Dcsat.outcome) =
        a.Core.Dcsat.satisfied = b.Core.Dcsat.satisfied
        && a.Core.Dcsat.witness_world = b.Core.Dcsat.witness_world
      in
      let agree run =
        let fresh () = Core.Session.create db in
        match (run ~use_delta:false (fresh ()), run ~use_delta:true (fresh ()))
        with
        | Ok a, Ok b -> outcome_eq a b
        | Error _, Error _ -> true
        | _ -> false
      in
      agree (fun ~use_delta s ->
          Core.Dcsat.naive ~use_precheck:false ~use_delta ~jobs:par_jobs s q)
      && agree (fun ~use_delta s ->
             Core.Dcsat.opt ~use_precheck:false ~use_delta ~jobs:par_jobs s q))

(* --- Closure-compiled tier: native = interpreted ------------------- *)

(* Raw evaluator level: on a plain database source, the closure chain
   must agree with the backtracking interpreter on existence AND on the
   full match bag (as a multiset of assignments — join orders differ).
   Every query in the pool is negation-free and safe, so all of them
   must actually compile to the native tier. *)
let native_matches_interpreted =
  QCheck.Test.make
    ~name:"compile_native: closure chain = interpreter (exists + bag)"
    ~count:150
    QCheck.(pair (int_bound 100_000) (int_bound (List.length queries - 1)))
    (fun (seed, qi) ->
      let rng = Random.State.make [| seed |] in
      let state = R.Database.create cat in
      R.Database.insert_all state
        [ node_row 0 "red"; node_row 1 "green"; edge_row 0 1 ];
      for _ = 1 to 3 + Random.State.int rng 12 do
        R.Database.insert_all state
          [
            (if Random.State.bool rng then
               node_row (Random.State.int rng 7)
                 colours.(Random.State.int rng 3)
             else edge_row (Random.State.int rng 7) (Random.State.int rng 7));
          ]
      done;
      let src = R.Database.source state in
      let body = Q.Eval.body_of (parse qi) in
      let c = Q.Eval.compile body in
      match Q.Eval.compile_native c with
      | None -> false (* the whole pool is inside the tier *)
      | Some nat ->
          let interp = ref [] in
          Q.Eval.iter_matches_compiled src c (fun values _ ->
              interp := Array.copy values :: !interp;
              `Continue);
          let native = ref [] in
          Q.Eval.native_iter nat src (fun values ->
              native := Array.copy values :: !native);
          Q.Eval.native_exists nat src = (!interp <> [])
          && List.sort compare !native = List.sort compare !interp)

(* Inc_eval level: cross use_native × use_delta over world sequences
   with revisits, so the native tier is exercised both as the full
   evaluator and as the fallback the delta/replay paths rest on. All
   four evaluators must return identical entries everywhere. *)
let native_world_differential =
  QCheck.Test.make
    ~name:"eval_world: native x delta cross-agreement over world sequences"
    ~count:100
    QCheck.(pair (int_bound 100_000) (int_bound (List.length queries - 1)))
    (fun (seed, qi) ->
      let rng = Random.State.make [| seed |] in
      let db = random_db rng in
      let session = Core.Session.create db in
      let store = Core.Session.store session in
      let n = Core.Tagged_store.tx_count store in
      let plan = Core.Session.plan session (parse qi) in
      let evs =
        List.map
          (fun (d, nt) -> Core.Inc_eval.evaluator ~use_delta:d ~use_native:nt plan)
          [ (true, true); (true, false); (false, true); (false, false) ]
      in
      let pool =
        Array.init 5 (fun _ ->
            List.filter (fun _ -> Random.State.bool rng) (List.init n Fun.id))
      in
      let steps =
        List.init 20 (fun _ -> pool.(Random.State.int rng (Array.length pool)))
      in
      List.for_all
        (fun world ->
          match
            List.map (fun ev -> Core.Inc_eval.eval_world ev store world) evs
          with
          | a :: rest -> List.for_all (fun b -> a = b) rest
          | [] -> assert false)
        steps)

(* Solver level: with the pre-check off (forcing the enumeration), the
   native tier must not change verdicts, witness worlds, or witnesses. *)
let native_solver_differential =
  QCheck.Test.make
    ~name:"naive/opt: use_native on = off with pre-check disabled" ~count:60
    QCheck.(pair (int_bound 100_000) (int_bound (List.length queries - 1)))
    (fun (seed, qi) ->
      let rng = Random.State.make [| seed |] in
      let db = random_db rng in
      let q = parse qi in
      let outcome_eq (a : Core.Dcsat.outcome) (b : Core.Dcsat.outcome) =
        a.Core.Dcsat.satisfied = b.Core.Dcsat.satisfied
        && a.Core.Dcsat.witness_world = b.Core.Dcsat.witness_world
        && a.Core.Dcsat.witness = b.Core.Dcsat.witness
      in
      let agree run =
        let fresh () = Core.Session.create db in
        match
          (run ~use_native:false (fresh ()), run ~use_native:true (fresh ()))
        with
        | Ok a, Ok b -> outcome_eq a b
        | Error _, Error _ -> true
        | _ -> false
      in
      agree (fun ~use_native s ->
          Core.Dcsat.naive ~use_precheck:false ~use_native ~jobs:par_jobs s q)
      && agree (fun ~use_native s ->
             Core.Dcsat.opt ~use_precheck:false ~use_native ~jobs:par_jobs s q))

let () =
  Alcotest.run "inc_eval"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest eval_world_differential;
          QCheck_alcotest.to_alcotest maximal_world_memo;
          QCheck_alcotest.to_alcotest solver_differential;
          QCheck_alcotest.to_alcotest algo_differential;
        ] );
      ( "native",
        [
          QCheck_alcotest.to_alcotest native_matches_interpreted;
          QCheck_alcotest.to_alcotest native_world_differential;
          QCheck_alcotest.to_alcotest native_solver_differential;
        ] );
    ]
