(* Tagged store: world switching, set semantics across origins, indexes
   under visibility, and agreement with materialized databases. *)

module R = Relational
module V = R.Value
module Core = Bccore
module Bitset = Bcgraph.Bitset

let abc = R.Schema.relation "Rel" [ "a"; "b" ]
let cat = R.Schema.of_list [ abc ]
let row a b = ("Rel", R.Tuple.make [ V.Int a; V.Int b ])

let mk state pending =
  let db = R.Database.create cat in
  R.Database.insert_all db state;
  Core.Bcdb.create_exn ~state:db ~constraints:[] ~pending ()

let test_visibility () =
  let db = mk [ row 1 1 ] [ [ row 2 2 ]; [ row 3 3 ] ] in
  let store = Core.Tagged_store.create db in
  let src = Core.Tagged_store.source store in
  let count () = List.length (List.of_seq (src.R.Source.scan "Rel")) in
  Core.Tagged_store.base_only store;
  Alcotest.(check int) "base only" 1 (count ());
  Core.Tagged_store.set_world_list store [ 0 ];
  Alcotest.(check int) "base + T0" 2 (count ());
  Alcotest.(check bool) "T1 row invisible" false
    (src.R.Source.mem "Rel" (R.Tuple.make [ V.Int 3; V.Int 3 ]));
  Core.Tagged_store.all_visible store;
  Alcotest.(check int) "all" 3 (count ())

let test_set_semantics_across_origins () =
  (* The same tuple contributed by the base state and two transactions
     must be stored once and never double-counted. *)
  let db = mk [ row 1 1 ] [ [ row 1 1; row 2 2 ]; [ row 1 1 ] ] in
  let store = Core.Tagged_store.create db in
  let src = Core.Tagged_store.source store in
  Core.Tagged_store.all_visible store;
  Alcotest.(check int) "distinct tuples" 2
    (List.length (List.of_seq (src.R.Source.scan "Rel")));
  Alcotest.(check (list int))
    "origins recorded" [ -1; 0; 1 ]
    (Core.Tagged_store.origins store "Rel" (R.Tuple.make [ V.Int 1; V.Int 1 ]));
  (* Visible through any one of its origins. *)
  Core.Tagged_store.set_world_list store [ 1 ];
  Alcotest.(check bool) "visible via T1" true
    (src.R.Source.mem "Rel" (R.Tuple.make [ V.Int 1; V.Int 1 ]));
  Alcotest.(check bool) "T0-only row invisible" false
    (src.R.Source.mem "Rel" (R.Tuple.make [ V.Int 2; V.Int 2 ]))

let test_lookup_respects_visibility () =
  let db = mk [ row 5 0 ] [ [ row 5 1 ]; [ row 5 2 ] ] in
  let store = Core.Tagged_store.create db in
  let src = Core.Tagged_store.source store in
  Core.Tagged_store.set_world_list store [ 1 ];
  let hits = List.of_seq (src.R.Source.lookup "Rel" [ (0, V.Int 5) ]) in
  Alcotest.(check int) "lookup filtered" 2 (List.length hits);
  Alcotest.(check bool) "right tuples" true
    (List.for_all
       (fun t ->
         let b = R.Tuple.get t 1 in
         V.equal b (V.Int 0) || V.equal b (V.Int 2))
       hits)

let test_to_database_matches () =
  let db = Fixtures.paper_db () in
  let store = Core.Tagged_store.create db in
  Core.Tagged_store.set_world_list store [ 0; 1 ];
  let materialized = Core.Tagged_store.to_database store in
  let src_store = Core.Tagged_store.source store in
  let src_db = R.Database.source materialized in
  List.iter
    (fun rel ->
      let of_seq s = List.sort R.Tuple.compare (List.of_seq s) in
      Alcotest.(check int)
        (rel ^ " cardinality agrees")
        (List.length (of_seq (src_db.R.Source.scan rel)))
        (List.length (of_seq (src_store.R.Source.scan rel)));
      Alcotest.(check bool)
        (rel ^ " contents agree")
        true
        (List.equal R.Tuple.equal
           (of_seq (src_db.R.Source.scan rel))
           (of_seq (src_store.R.Source.scan rel))))
    [ "TxOut"; "TxIn" ]

let test_clone_independence () =
  (* A clone must share no mutable state with its parent: world switches
     and index builds on one side never show through on the other. *)
  let db = mk [ row 1 1 ] [ [ row 2 2 ]; [ row 3 3 ] ] in
  let store = Core.Tagged_store.create db in
  Core.Tagged_store.set_world_list store [ 0 ];
  let replica = Core.Tagged_store.clone store in
  let count st =
    let src = Core.Tagged_store.source st in
    List.length (List.of_seq (src.R.Source.scan "Rel"))
  in
  Alcotest.(check int) "clone starts in parent's world" 2 (count replica);
  (* Move the clone; the parent must not budge — including via indexed
     lookups, which build per-store index tables on demand. *)
  Core.Tagged_store.set_world_list replica [ 0; 1 ];
  Alcotest.(check int) "clone moved" 3 (count replica);
  Alcotest.(check int) "parent unchanged" 2 (count store);
  let lookup st a =
    let src = Core.Tagged_store.source st in
    List.length (List.of_seq (src.R.Source.lookup "Rel" [ (0, V.Int a) ]))
  in
  Alcotest.(check int) "clone lookup sees T1" 1 (lookup replica 3);
  Alcotest.(check int) "parent lookup does not" 0 (lookup store 3);
  (* And the other direction. *)
  Core.Tagged_store.base_only store;
  Alcotest.(check int) "parent narrowed" 1 (count store);
  Alcotest.(check int) "clone unaffected" 3 (count replica)

let store_scan_prop =
  QCheck.Test.make
    ~name:"store scan = base ∪ visible txs, as a set" ~count:100
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_bound 10) (pair (int_bound 4) (int_bound 4)))
        (pair
           (list_of_size (QCheck.Gen.int_bound 3)
              (list_of_size (QCheck.Gen.int_bound 4)
                 (pair (int_bound 4) (int_bound 4))))
           (list_of_size (QCheck.Gen.int_bound 3) (int_bound 2))))
    (fun (base, (pending, visible)) ->
      QCheck.assume (List.for_all (fun tx -> tx <> []) pending);
      let db =
        mk
          (List.map (fun (a, b) -> row a b) base)
          (List.map (List.map (fun (a, b) -> row a b)) pending)
      in
      let store = Core.Tagged_store.create db in
      let k = Core.Tagged_store.tx_count store in
      let visible = List.filter (fun i -> i < k) visible in
      Core.Tagged_store.set_world_list store visible;
      let src = Core.Tagged_store.source store in
      let got =
        List.of_seq (src.R.Source.scan "Rel") |> List.sort_uniq R.Tuple.compare
      in
      let expected =
        List.map (fun (a, b) -> R.Tuple.make [ V.Int a; V.Int b ]) base
        @ List.concat_map
            (fun i ->
              List.map
                (fun (a, b) -> R.Tuple.make [ V.Int a; V.Int b ])
                (List.nth pending i))
            visible
        |> List.sort_uniq R.Tuple.compare
      in
      List.equal R.Tuple.equal got expected)

(* A component-scoped view ({!Tagged_store.restrict}) must answer
   scans, indexed lookups and membership tests exactly like the full
   store, for every world inside the component — including after
   repeated world switches, which exercise the epoch-stamped caches of
   visibility-filtered postings on both stores. *)
let scoped_view_prop =
  QCheck.Test.make
    ~name:"scoped view = full store, on worlds inside the component"
    ~count:100
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_bound 8) (pair (int_bound 4) (int_bound 4)))
        (pair
           (list_of_size (QCheck.Gen.int_bound 4)
              (list_of_size (QCheck.Gen.int_bound 3)
                 (pair (int_bound 4) (int_bound 4))))
           (pair
              (list_of_size (QCheck.Gen.int_bound 4) (int_bound 3))
              (list_of_size (QCheck.Gen.int_bound 6)
                 (list_of_size (QCheck.Gen.int_bound 4) (int_bound 3))))))
    (fun (base, (pending, (component, worlds))) ->
      QCheck.assume (List.for_all (fun tx -> tx <> []) pending);
      let db =
        mk
          (List.map (fun (a, b) -> row a b) base)
          (List.map (List.map (fun (a, b) -> row a b)) pending)
      in
      let store = Core.Tagged_store.create db in
      let k = Core.Tagged_store.tx_count store in
      let component =
        List.sort_uniq compare (List.filter (fun i -> i < k) component)
      in
      let view = Core.Tagged_store.restrict store component in
      let clone = Core.Tagged_store.clone view in
      let worlds =
        List.map (List.filter (fun i -> List.mem i component)) worlds
      in
      let values = List.init 5 (fun v -> V.Int v) in
      let tuples =
        List.concat_map (fun a -> List.map (fun b -> R.Tuple.make [ a; b ]) values) values
      in
      let agree w =
        Core.Tagged_store.set_world_list store w;
        Core.Tagged_store.set_world_list view w;
        Core.Tagged_store.set_world_list clone w;
        let full = Core.Tagged_store.source store in
        List.for_all
          (fun st ->
            let scoped = Core.Tagged_store.source st in
            let sorted s = List.sort R.Tuple.compare (List.of_seq s) in
            List.equal R.Tuple.equal
              (sorted (full.R.Source.scan "Rel"))
              (sorted (scoped.R.Source.scan "Rel"))
            && List.for_all
                 (fun v ->
                   List.equal R.Tuple.equal
                     (sorted (full.R.Source.lookup "Rel" [ (0, v) ]))
                     (sorted (scoped.R.Source.lookup "Rel" [ (0, v) ]))
                   && List.equal R.Tuple.equal
                        (sorted (full.R.Source.lookup "Rel" [ (1, v) ]))
                        (sorted (scoped.R.Source.lookup "Rel" [ (1, v) ])))
                 values
            && List.for_all
                 (fun t ->
                   full.R.Source.mem "Rel" t = scoped.R.Source.mem "Rel" t)
                 tuples)
          [ view; clone ]
      in
      (* Each world twice: the second pass must be answered from the
         epoch-cached postings and still agree. *)
      List.for_all agree (worlds @ worlds))

let () =
  Alcotest.run "store"
    [
      ( "tagged-store",
        [
          Alcotest.test_case "visibility" `Quick test_visibility;
          Alcotest.test_case "set semantics" `Quick test_set_semantics_across_origins;
          Alcotest.test_case "indexed lookup" `Quick test_lookup_respects_visibility;
          Alcotest.test_case "materialize" `Quick test_to_database_matches;
          Alcotest.test_case "clone independence" `Quick
            test_clone_independence;
          QCheck_alcotest.to_alcotest store_scan_prop;
          QCheck_alcotest.to_alcotest scoped_view_prop;
        ] );
    ]
