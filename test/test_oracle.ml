(* Differential oracle: a tiny, independent Poss(D) enumerator checked
   against the production solvers on random small instances.

   The oracle shares NOTHING with the solver stack under test — no
   Engine, no Tagged_store, no graphs: each candidate subset W of the
   pending transactions is materialized as a plain R.Database (base
   state + the rows of W), constraint satisfaction comes from
   R.Check.satisfies, and W is possible iff it satisfies R ∪ W and is
   empty or reachable by removing one transaction from another possible
   world (the inductive definition of Poss from the paper, Section 3).
   Query truth over a world uses Q.Eval directly on the materialized
   database. Any bug the solvers share with Tagged_store visibility,
   world switching, clique enumeration or the engine shows up as a
   disagreement here. *)

module R = Relational
module V = R.Value
module Q = Bcquery
module Core = Bccore

let node = R.Schema.relation "Node" [ "id"; "colour" ]
let edge = R.Schema.relation "Edge" [ "src"; "dst" ]
let cat = R.Schema.of_list [ node; edge ]

let constraints =
  [
    R.Constr.key node [ "id" ];
    R.Constr.ind ~sub:edge [ "src" ] ~sup:node [ "id" ];
    R.Constr.ind ~sub:edge [ "dst" ] ~sup:node [ "id" ];
  ]

let node_row id colour = ("Node", R.Tuple.make [ V.Int id; V.Str colour ])
let edge_row s d = ("Edge", R.Tuple.make [ V.Int s; V.Int d ])
let colours = [| "red"; "green"; "blue" |]

(* Small instances: the oracle enumerates all 2^k subsets. *)
let random_db rng =
  let state = R.Database.create cat in
  R.Database.insert_all state
    [ node_row 0 "red"; node_row 1 "red"; node_row 2 "red"; edge_row 0 1 ];
  let k = 2 + Random.State.int rng 4 in
  let random_tx () =
    let rows = 1 + Random.State.int rng 2 in
    List.init rows (fun _ ->
        if Random.State.bool rng then
          node_row
            (3 + Random.State.int rng 4)
            colours.(Random.State.int rng 3)
        else edge_row (Random.State.int rng 7) (Random.State.int rng 7))
  in
  Core.Bcdb.create_exn ~state ~constraints
    ~pending:(List.init k (fun _ -> random_tx ()))
    ()

let queries =
  [
    {| q() :- Node(i, "green"). |};
    {| q() :- Edge(s, d), Node(s, "red"), Node(d, c). |};
    {| q() :- Edge(s, d), Edge(d, e), s != e. |};
    {| q() :- Node(4, c). |};
    {| q() :- Edge(s, d), Node(d, "blue"). |};
    "q(count()) :- Edge(s, d) | > 2.";
  ]

(* The plain database R ∪ (∪ W): base rows plus the rows of every
   transaction whose bit is set in [mask]. R.Database has set semantics,
   so tuples contributed twice are stored once — matching the paper's
   definition of a world as a set of tuples. *)
let db_of_mask (db : Core.Bcdb.t) mask =
  let d = R.Database.copy db.Core.Bcdb.state in
  Array.iteri
    (fun i (tx : Core.Pending.t) ->
      if mask land (1 lsl i) <> 0 then
        List.iter
          (fun (rel, tuple) -> ignore (R.Database.insert d rel tuple))
          tx.Core.Pending.rows)
    db.Core.Bcdb.pending;
  d

type oracle = {
  possible : bool array;  (* indexed by subset mask *)
  violating : bool array;  (* q true over the materialized world *)
}

(* Masks increase when bits are added, so a single ascending pass sees
   every W \ {t} before W — the inductive closure needs no fixpoint. *)
let build_oracle db q =
  let k = Array.length db.Core.Bcdb.pending in
  let n = 1 lsl k in
  let possible = Array.make n false in
  let violating = Array.make n false in
  for mask = 0 to n - 1 do
    let d = db_of_mask db mask in
    let src = R.Database.source d in
    let sat = R.Check.satisfies src db.Core.Bcdb.constraints in
    let reachable =
      mask = 0
      || List.exists
           (fun i ->
             mask land (1 lsl i) <> 0 && possible.(mask lxor (1 lsl i)))
           (List.init k Fun.id)
    in
    possible.(mask) <- sat && reachable;
    violating.(mask) <- Q.Eval.eval src q
  done;
  { possible; violating }

let oracle_satisfied o =
  Array.for_all2 (fun p v -> not (p && v)) o.possible o.violating

let mask_of_world ids = List.fold_left (fun m i -> m lor (1 lsl i)) 0 ids

(* One solver outcome against the oracle: the verdict must match, and a
   claimed witness world must be a possible world the oracle finds
   violating (solvers may legitimately return a different violating
   world than the oracle's first, so membership is the right check). *)
let outcome_agrees o (outcome : Core.Dcsat.outcome) =
  let sat_ok = outcome.Core.Dcsat.satisfied = oracle_satisfied o in
  let witness_ok =
    match (outcome.Core.Dcsat.satisfied, outcome.Core.Dcsat.witness_world) with
    | true, _ -> true
    | false, None -> false
    | false, Some ids ->
        let m = mask_of_world ids in
        o.possible.(m) && o.violating.(m)
  in
  sat_ok && witness_ok

let differential ~trace =
  let name =
    Printf.sprintf "solvers match the independent Poss(D) oracle (tracing %s)"
      (if trace then "on" else "off")
  in
  QCheck.Test.make ~name ~count:80
    QCheck.(pair (int_bound 100_000) (int_bound (List.length queries - 1)))
    (fun (seed, qi) ->
      let rng = Random.State.make [| seed |] in
      let db = random_db rng in
      let obs = if trace then Core.Obs.create () else Core.Obs.null in
      let session = Core.Session.create ~obs db in
      let q = Q.Parser.parse_exn ~catalog:cat (List.nth queries qi) in
      let o = build_oracle db q in
      let naive_ok =
        match Core.Dcsat.naive session q with
        | Ok outcome -> outcome_agrees o outcome
        | Error _ -> false
      in
      let opt_ok =
        match Core.Dcsat.opt ~jobs:2 session q with
        | Ok outcome -> outcome_agrees o outcome
        | Error `Not_connected -> true (* aggregates: Naive covers them *)
        | Error (`Not_monotone _) -> false
      in
      let brute_ok =
        outcome_agrees o (Core.Dcsat.brute_force session q)
      in
      naive_ok && opt_ok && brute_ok)

(* The oracle itself must be sane on a hand-checked instance: a
   key-conflicting pair can never be possible together, and a dangling
   edge needs its endpoints. *)
let oracle_sanity () =
  let state = R.Database.create cat in
  R.Database.insert_all state [ node_row 0 "red" ];
  let db =
    Core.Bcdb.create_exn ~state ~constraints
      ~pending:
        [
          [ node_row 1 "green" ];  (* tx0: fine alone *)
          [ node_row 1 "blue" ];  (* tx1: keys with tx0 *)
          [ edge_row 0 1 ];  (* tx2: needs node 1, i.e. tx0 or tx1 *)
        ]
      ()
  in
  let q = Q.Parser.parse_exn ~catalog:cat {| q() :- Node(i, "green"). |} in
  let o = build_oracle db q in
  Alcotest.(check bool) "empty world possible" true o.possible.(0b000);
  Alcotest.(check bool) "tx0 alone possible" true o.possible.(0b001);
  Alcotest.(check bool) "key conflict impossible" false o.possible.(0b011);
  Alcotest.(check bool) "dangling edge impossible" false o.possible.(0b100);
  Alcotest.(check bool) "edge with support possible" true o.possible.(0b101);
  Alcotest.(check bool) "oracle sees the green node" false (oracle_satisfied o)

let () =
  Alcotest.run "oracle"
    [
      ( "differential",
        [
          Alcotest.test_case "oracle sanity" `Quick oracle_sanity;
          QCheck_alcotest.to_alcotest (differential ~trace:false);
          QCheck_alcotest.to_alcotest (differential ~trace:true);
        ] );
    ]
