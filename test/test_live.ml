(* The live layer's contract: after an arbitrary stream of mempool
   events (add / evict / confirm / reorg), every incrementally
   maintained structure — the fd-transaction graph, the ΘI edge set,
   per-transaction includability, the ind-q components — and the DCSat
   verdict itself must be identical to a from-scratch batch rebuild of
   the same database. Plus regression pins for the cache-staleness
   bugs: session caches guarded only by physical database equality
   going stale under in-place state mutation, and memoized getMaximal
   closures surviving an RBF eviction. *)

module R = Relational
module V = R.Value
module Q = Bcquery
module Core = Bccore
module C = Chain

(* Same mixed-constraint schema as the agreement suite: keys AND
   inclusion dependencies, so event streams exercise both conflict
   edges and Θ edges. *)
let node = R.Schema.relation "Node" [ "id"; "colour" ]
let edge = R.Schema.relation "Edge" [ "src"; "dst" ]
let cat = R.Schema.of_list [ node; edge ]

let constraints =
  [
    R.Constr.key node [ "id" ];
    R.Constr.ind ~sub:edge [ "src" ] ~sup:node [ "id" ];
    R.Constr.ind ~sub:edge [ "dst" ] ~sup:node [ "id" ];
  ]

let node_row id colour = ("Node", R.Tuple.make [ V.Int id; V.Str colour ])
let edge_row s d = ("Edge", R.Tuple.make [ V.Int s; V.Int d ])
let colours = [| "red"; "green"; "blue" |]
let parse q = Q.Parser.parse_exn ~catalog:cat q

let queries =
  [
    {| q() :- Node(i, "green"). |};
    {| q() :- Edge(s, d), Node(s, "red"), Node(d, c). |};
    {| q() :- Node(4, c). |};
    {| q() :- Edge(s, d), Node(d, "blue"). |};
  ]

(* --- the reference model: a plain record of what the database should
   contain, replayed into [Bcdb.create_unchecked] after every event --- *)

type model = {
  base : (string * R.Tuple.t) list;
  mutable confirmed : (string * (string * R.Tuple.t) list) list;
      (* newest first — a reorg pops the head back into the mempool *)
  mutable pending : (string * (string * R.Tuple.t) list) list;
      (* oldest first, mirroring pending ids *)
}

let model_db m =
  let state = R.Database.create cat in
  R.Database.insert_all state m.base;
  List.iter
    (fun (_, rows) -> R.Database.insert_all state rows)
    (List.rev m.confirmed);
  Core.Bcdb.create_unchecked ~state ~constraints
    ~pending:(List.map snd m.pending)
    ~labels:(List.map fst m.pending)
    ()

let fresh_model () =
  {
    base =
      [ node_row 0 "red"; node_row 1 "red"; node_row 2 "red"; edge_row 0 1 ];
    confirmed = [];
    pending = [];
  }

(* --- structure comparison helpers --- *)

let edge_list g =
  let n = Bcgraph.Undirected.node_count g in
  let acc = ref [] in
  for i = 0 to n - 1 do
    List.iter
      (fun j -> if j > i then acc := (i, j) :: !acc)
      (Bcgraph.Undirected.neighbours g i)
  done;
  List.sort compare !acc

let norm_pairs ps =
  List.sort compare (List.map (fun (a, b) -> (min a b, max a b)) ps)

let norm_comps comps =
  List.sort compare (List.map (List.sort compare) comps)

let fail_diff what step pp a b =
  QCheck.Test.fail_reportf "step %d: %s differ:@.  live:  %s@.  fresh: %s"
    step what (pp a) (pp b)

let pp_pairs ps =
  String.concat "; " (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) ps)

let pp_bools bs =
  String.concat "" (List.map (fun b -> if b then "1" else "0") (Array.to_list bs))

let pp_comps cs =
  String.concat "; "
    (List.map (fun c -> "[" ^ String.concat "," (List.map string_of_int c) ^ "]") cs)

(* Every maintained structure against a from-scratch session over the
   model database; true verdict agreement through the solver at the
   given parallelism. *)
let assert_agrees ~step ~jobs live m q =
  let db = model_db m in
  let fresh = Core.Session.create db in
  let lf = Core.Live.fd_graph live and ff = Core.Session.fd_graph fresh in
  if Array.to_list lf.Core.Fd_graph.node_ok <> Array.to_list ff.Core.Fd_graph.node_ok
  then
    fail_diff "fd node validity" step pp_bools lf.Core.Fd_graph.node_ok
      ff.Core.Fd_graph.node_ok;
  let le = edge_list lf.Core.Fd_graph.graph
  and fe = edge_list ff.Core.Fd_graph.graph in
  if le <> fe then fail_diff "fd edges" step pp_pairs le fe;
  let lc = norm_pairs lf.Core.Fd_graph.conflicts
  and fc = norm_pairs ff.Core.Fd_graph.conflicts in
  if lc <> fc then fail_diff "fd conflicts" step pp_pairs lc fc;
  let li = norm_pairs (Core.Live.ind_base_edges live)
  and fi = norm_pairs (Core.Session.ind_base_edges fresh) in
  if li <> fi then fail_diff "ΘI edges" step pp_pairs li fi;
  let linc = Core.Live.includable live
  and finc = Core.Session.includable fresh in
  if Array.to_list linc <> Array.to_list finc then
    fail_diff "includable" step pp_bools linc finc;
  let lcomp = norm_comps (Core.Live.components live q)
  and fcomp = norm_comps (Core.Session.ind_components fresh q) in
  if lcomp <> fcomp then fail_diff "ind-q components" step pp_comps lcomp fcomp;
  let lsat =
    match Core.Live.check ~jobs live q with
    | Ok (o, _) -> o.Core.Dcsat.satisfied
    | Error e -> QCheck.Test.fail_reportf "step %d: live check: %s" step e
  in
  let fsat =
    match Core.Solver.solve ~jobs fresh q with
    | Ok (o, _) -> o.Core.Dcsat.satisfied
    | Error e -> QCheck.Test.fail_reportf "step %d: batch solve: %s" step e
  in
  if lsat <> fsat then
    QCheck.Test.fail_reportf "step %d: verdict differs: live %b, batch %b" step
      lsat fsat;
  true

(* --- random event streams --- *)

let next_label =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "L%d" !n

let random_rows rng =
  let rows = 1 + Random.State.int rng 2 in
  List.sort_uniq compare
    (List.init rows (fun _ ->
         if Random.State.bool rng then
           node_row (3 + Random.State.int rng 4) colours.(Random.State.int rng 3)
         else edge_row (Random.State.int rng 7) (Random.State.int rng 7)))

let random_pending_label rng m = fst (List.nth m.pending (Random.State.int rng (List.length m.pending)))

(* One event, applied to the model and each live layer in lockstep (the
   cache differential drives two instances through the same stream). *)
let step_event rng lives m =
  let pick = Random.State.int rng 100 in
  if pick < 45 || m.pending = [] then begin
    let label = next_label () and rows = random_rows rng in
    m.pending <- m.pending @ [ (label, rows) ];
    List.iter (fun live -> Core.Live.add live ~label rows) lives
  end
  else if pick < 65 then begin
    let label = random_pending_label rng m in
    m.pending <- List.filter (fun (l, _) -> l <> label) m.pending;
    List.iter
      (fun live ->
        match Core.Live.evict live label with
        | Ok () -> ()
        | Error e -> QCheck.Test.fail_reportf "evict %s: %s" label e)
      lives
  end
  else if pick < 85 then begin
    let label = random_pending_label rng m in
    let rows = List.assoc label m.pending in
    m.pending <- List.filter (fun (l, _) -> l <> label) m.pending;
    m.confirmed <- (label, rows) :: m.confirmed;
    List.iter
      (fun live ->
        match Core.Live.confirm live label with
        | Ok () -> ()
        | Error e -> QCheck.Test.fail_reportf "confirm %s: %s" label e)
      lives
  end
  else
    match m.confirmed with
    | [] ->
        let label = next_label () and rows = random_rows rng in
        m.pending <- m.pending @ [ (label, rows) ];
        List.iter (fun live -> Core.Live.add live ~label rows) lives
    | (label, rows) :: rest ->
        (* Reorg: the most recent confirmation is disconnected and its
           transaction returns to the mempool; the live layer resyncs. *)
        m.confirmed <- rest;
        m.pending <- m.pending @ [ (label, rows) ];
        List.iter (fun live -> Core.Live.reset live (model_db m)) lives

let differential ~jobs ~count =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "incremental maintenance = from-scratch rebuild (jobs %d)"
         jobs)
    ~count
    QCheck.(pair (int_bound 1_000_000) (int_bound (List.length queries - 1)))
    (fun (seed, qi) ->
      let rng = Random.State.make [| seed; jobs |] in
      let m = fresh_model () in
      let live = Core.Live.create (model_db m) in
      let q = parse (List.nth queries qi) in
      let steps = 6 + Random.State.int rng 5 in
      let ok = ref true in
      for step = 1 to steps do
        step_event rng [ live ] m;
        ok := !ok && assert_agrees ~step ~jobs live m q
      done;
      !ok)

(* --- satellite 3 (PR 10): the verdict cache must be invisible --------

   Two live instances over the same initial database, driven by the
   identical event stream; one checks with the per-(query, component)
   verdict cache forced on, the other with it forced off. At every
   interleaved check (every [k] events, so caches go warm, dirty and
   warm again) the whole outcome — verdict constructor, satisfied bit,
   witness world and witness assignment — must be bit-identical, at
   jobs 1 and at jobs 4. *)

let pp_world = function
  | None -> "-"
  | Some ws -> "[" ^ String.concat "," (List.map string_of_int ws) ^ "]"

let pp_binding = function
  | None -> "-"
  | Some bs ->
      String.concat ","
        (List.map (fun (x, v) -> Printf.sprintf "%s=%s" x (V.to_string v)) bs)

let outcome_sig (o : Core.Dcsat.outcome) =
  let v =
    match o.Core.Dcsat.verdict with
    | Core.Dcsat.Satisfied -> "satisfied"
    | Core.Dcsat.Violated _ -> "violated"
    | Core.Dcsat.Unknown _ -> "unknown"
  in
  (v, o.Core.Dcsat.satisfied, o.Core.Dcsat.witness_world, o.Core.Dcsat.witness)

let cache_differential ~jobs ~count =
  QCheck.Test.make
    ~name:(Printf.sprintf "cached check = uncached check (jobs %d)" jobs)
    ~count
    QCheck.(pair (int_bound 1_000_000) (int_bound (List.length queries - 1)))
    (fun (seed, qi) ->
      let rng = Random.State.make [| seed; jobs; 0xCACE |] in
      let m = fresh_model () in
      let cached = Core.Live.create (model_db m) in
      let uncached = Core.Live.create (model_db m) in
      let q = parse (List.nth queries qi) in
      let steps = 6 + Random.State.int rng 5 in
      let k = 1 + Random.State.int rng 2 in
      let agree step =
        let solve ~use_cache live =
          match Core.Live.check ~jobs ~use_cache live q with
          | Ok (o, _) -> o
          | Error e -> QCheck.Test.fail_reportf "step %d: check: %s" step e
        in
        let oc = solve ~use_cache:true cached
        and ou = solve ~use_cache:false uncached in
        let ((vc, sc, wc, bc) as c) = outcome_sig oc
        and ((vu, su, wu, bu) as u) = outcome_sig ou in
        if c <> u then
          QCheck.Test.fail_reportf
            "step %d: cache changes the answer:@.  cached:   %s sat=%b world \
             %s witness %s@.  uncached: %s sat=%b world %s witness %s"
            step vc sc (pp_world wc) (pp_binding bc) vu su (pp_world wu)
            (pp_binding bu);
        true
      in
      let ok = ref true in
      for step = 1 to steps do
        step_event rng [ cached; uncached ] m;
        if step mod k = 0 then ok := !ok && agree step
      done;
      (* Two back-to-back checks of the final mempool: the second runs
         against a fully warm cache (every component a hit). *)
      ok := !ok && agree (steps + 1) && agree (steps + 2);
      !ok)

(* --- satellite 1: session caches vs in-place state mutation ---------

   The session's plan/graph/component caches used to be guarded only by
   physical equality of the database value; mutating the *same*
   database between two solves kept serving the stale structures. The
   generation stamp must notice the mutation and revalidate. *)

let test_session_state_mutation () =
  let state = R.Database.create cat in
  R.Database.insert_all state [ node_row 0 "red"; node_row 1 "red" ];
  let db =
    Core.Bcdb.create_exn ~state ~constraints
      ~pending:[ [ node_row 3 "red" ] ]
      ()
  in
  let session = Core.Session.create db in
  let q = parse {| q() :- Node(4, "green"). |} in
  let solve () =
    match Core.Solver.solve session q with
    | Ok (o, _) -> o.Core.Dcsat.satisfied
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "no green node 4 anywhere: satisfied" true (solve ());
  (* Mutate the same database value in place between the two solves. *)
  ignore (R.Database.insert state "Node" (R.Tuple.make [ V.Int 4; V.Str "green" ]) : bool);
  Alcotest.(check bool)
    "the in-place row violates q over R itself: second solve must see it"
    false (solve ())

(* The same staleness through the maximal-world path: a state row that
   key-conflicts a pending transaction shrinks every world containing
   it; a cached getMaximal closure would keep reporting the old
   (now-impossible) world and the old verdict. *)
let test_maximal_world_state_mutation () =
  let state = R.Database.create cat in
  R.Database.insert_all state [ node_row 0 "red" ];
  let db =
    Core.Bcdb.create_exn ~state ~constraints
      ~pending:[ [ node_row 5 "green" ] ]
      ()
  in
  let session = Core.Session.create db in
  let q = parse {| q() :- Node(5, "green"). |} in
  let solve () =
    match Core.Solver.solve session q with
    | Ok (o, _) -> (o.Core.Dcsat.satisfied, o.Core.Dcsat.witness_world)
    | Error e -> Alcotest.fail e
  in
  let sat1, world1 = solve () in
  Alcotest.(check bool) "world {T0} violates q" false sat1;
  Alcotest.(check (option (list int))) "witnessed by T0" (Some [ 0 ]) world1;
  (* Node id 5 is now taken in R: T0 turns fd-invalid, the only possible
     world is {}, and the constraint holds. *)
  ignore (R.Database.insert state "Node" (R.Tuple.make [ V.Int 5; V.Str "red" ]) : bool);
  let sat2, world2 = solve () in
  Alcotest.(check bool) "T0 can no longer join any world" true sat2;
  Alcotest.(check (option (list int))) "no witness survives" None world2

(* --- satellite 3: eviction must invalidate memoized getMaximal ------

   Two key-rival transactions, the constraint violated only through the
   rival's world. After the RBF eviction the cached maximal worlds of
   the old graph must be unreachable — the verdict flips. *)

let test_evict_invalidates_maximal_worlds () =
  let state = R.Database.create cat in
  R.Database.insert_all state [ node_row 0 "red" ];
  let db =
    Core.Bcdb.create_exn ~state ~constraints
      ~pending:[ [ node_row 9 "green" ]; [ node_row 9 "blue" ] ]
      ~labels:[ "T-green"; "T-blue" ]
      ()
  in
  let live = Core.Live.create db in
  let blue = parse {| q() :- Node(i, "blue"). |} in
  let green = parse {| q() :- Node(i, "green"). |} in
  let check q =
    match Core.Live.check live q with
    | Ok (o, _) -> o.Core.Dcsat.satisfied
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "blue reachable through T-blue's world" false
    (check blue);
  Alcotest.(check bool) "green reachable too" false (check green);
  (match Core.Live.evict live "T-blue" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool)
    "after eviction no world contains blue: a cached maximal world would lie"
    true (check blue);
  Alcotest.(check bool) "the survivor still violates green" false (check green);
  Alcotest.(check int) "one pending left" 1 (Core.Live.pending_count live)

(* --- the feed: live layer vs re-encoding the node from scratch ------ *)

let sorted_state_rows db =
  let state = db.Core.Bcdb.state in
  List.map
    (fun r ->
      let acc = ref [] in
      R.Database.iter_tuples state r.R.Schema.name (fun t -> acc := t :: !acc);
      (r.R.Schema.name, List.sort compare !acc))
    (R.Schema.relations (R.Database.catalog state))

let pending_view db =
  Array.to_list db.Core.Bcdb.pending
  |> List.map (fun tx -> (tx.Core.Pending.label, List.sort compare tx.Core.Pending.rows))

let assert_feed_consistent msg feed =
  let node_db =
    match C.Encode.bcdb_of_node (C.Feed.node feed) with
    | Ok db -> db
    | Error e -> Alcotest.fail e
  in
  let live = C.Feed.live feed in
  let live_db = Core.Live.db live in
  Alcotest.(check bool)
    (msg ^ ": pending set matches a fresh encode")
    true
    (pending_view node_db = pending_view live_db);
  Alcotest.(check bool)
    (msg ^ ": state contents match a fresh encode")
    true
    (sorted_state_rows node_db = sorted_state_rows live_db);
  (* And the maintained graphs match what a batch session would build
     over the re-encoded database. *)
  let fresh = Core.Session.create node_db in
  let lf = Core.Live.fd_graph live and ff = Core.Session.fd_graph fresh in
  Alcotest.(check bool)
    (msg ^ ": fd graph matches a rebuild")
    true
    (Array.to_list lf.Core.Fd_graph.node_ok
     = Array.to_list ff.Core.Fd_graph.node_ok
    && edge_list lf.Core.Fd_graph.graph = edge_list ff.Core.Fd_graph.graph);
  Alcotest.(check bool)
    (msg ^ ": includability matches a rebuild")
    true
    (Array.to_list (Core.Live.includable live)
    = Array.to_list (Core.Session.includable fresh))

let feed_wallets () = Array.init 2 (fun i -> C.Wallet.create ~seed:(Printf.sprintf "live%d" i))

let test_feed_tracks_node () =
  let ws = feed_wallets () in
  let initial =
    Array.to_list ws
    |> List.concat_map (fun w ->
           List.init 3 (fun _ -> (C.Wallet.address w, 50_000)))
  in
  let node = C.Node.create ~initial in
  let feed =
    match C.Feed.create node with Ok f -> f | Error e -> Alcotest.fail e
  in
  assert_feed_consistent "fresh" feed;
  let pay from to_ amount fee =
    match
      C.Wallet.pay ws.(from) ~utxo:(C.Node.utxo node)
        ~to_:(C.Wallet.address ws.(to_)) ~amount ~fee
    with
    | Ok tx -> tx
    | Error e -> Alcotest.fail e
  in
  let tx1 = pay 0 1 4_000 100 in
  (match C.Feed.submit feed tx1 with
  | Ok () -> ()
  | Error r -> Alcotest.failf "submit: %a" C.Mempool.pp_reject r);
  assert_feed_consistent "after submit" feed;
  Alcotest.(check int) "one pending" 1
    (Core.Live.pending_count (C.Feed.live feed));
  (* An eviction observed through the mempool hook. *)
  let tx2 = pay 1 0 3_000 100 in
  (match C.Feed.submit feed tx2 with
  | Ok () -> ()
  | Error r -> Alcotest.failf "submit: %a" C.Mempool.pp_reject r);
  C.Mempool.remove (C.Node.mempool node) tx2.C.Tx.txid;
  (match C.Feed.sync feed with Ok () -> () | Error e -> Alcotest.fail e);
  assert_feed_consistent "after evict" feed;
  Alcotest.(check int) "back to one pending" 1
    (Core.Live.pending_count (C.Feed.live feed));
  (* Confirmation: tx1 moves into the state, the coinbase is appended
     without ever having been pending. *)
  (match C.Feed.mine feed ~coinbase_script:(C.Wallet.address ws.(0)) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  assert_feed_consistent "after mine" feed;
  Alcotest.(check int) "mempool drained" 0
    (Core.Live.pending_count (C.Feed.live feed))

let test_feed_survives_reorg () =
  let ws = feed_wallets () in
  let initial =
    Array.to_list ws
    |> List.concat_map (fun w ->
           List.init 3 (fun _ -> (C.Wallet.address w, 50_000)))
  in
  let net = C.Network.create ~peers:2 ~initial () in
  let node = C.Network.peer net 0 in
  let feed =
    match C.Feed.create node with Ok f -> f | Error e -> Alcotest.fail e
  in
  (* Peer 0 mines one block locally; peer 1 (partitioned) builds the
     longer branch. Healing forces a reorg at peer 0, which the feed
     must absorb with a full resync. *)
  C.Network.partition net [ 1 ];
  (match C.Feed.mine feed ~coinbase_script:(C.Wallet.address ws.(0)) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  assert_feed_consistent "after local block" feed;
  for _ = 1 to 2 do
    match
      C.Network.mine_at net ~at:1 ~coinbase_script:(C.Wallet.address ws.(1)) ()
    with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  done;
  C.Network.heal net;
  ignore (C.Network.deliver net ());
  Alcotest.(check int) "peer 0 adopted the longer branch" 2
    (C.Chain_state.height (C.Node.chain node));
  (match C.Feed.sync feed with Ok () -> () | Error e -> Alcotest.fail e);
  assert_feed_consistent "after reorg" feed

let () =
  Alcotest.run "live"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest (differential ~jobs:1 ~count:60);
          QCheck_alcotest.to_alcotest (differential ~jobs:4 ~count:40);
          QCheck_alcotest.to_alcotest (cache_differential ~jobs:1 ~count:60);
          QCheck_alcotest.to_alcotest (cache_differential ~jobs:4 ~count:40);
        ] );
      ( "staleness",
        [
          Alcotest.test_case "session caches vs in-place state mutation" `Quick
            test_session_state_mutation;
          Alcotest.test_case "maximal worlds vs in-place state mutation" `Quick
            test_maximal_world_state_mutation;
          Alcotest.test_case "eviction invalidates memoized maximal worlds"
            `Quick test_evict_invalidates_maximal_worlds;
        ] );
      ( "feed",
        [
          Alcotest.test_case "feed tracks the node through add/evict/confirm"
            `Quick test_feed_tracks_node;
          Alcotest.test_case "feed absorbs a reorg" `Quick
            test_feed_survives_reorg;
        ] );
    ]
