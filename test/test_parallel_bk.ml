(* Work-stealing Bron–Kerbosch: the Par pool must enumerate exactly the
   sequential search tree — same clique set from any worker count, DFS
   order from one worker, paths that index into the sequential order —
   plus units for the two graph-layer helpers it rests on
   (Bitset.max_inter, Undirected.degeneracy_order). *)

module G = Bcgraph
module R = Relational
module V = R.Value
module Q = Bcquery
module Core = Bccore

let random_graph n edges =
  let g = G.Undirected.create n in
  List.iter
    (fun (i, j) -> if i < n && j < n && i <> j then G.Undirected.add_edge g i j)
    edges;
  g

let graph_arb =
  QCheck.(
    pair (int_range 1 10)
      (list_of_size (QCheck.Gen.int_bound 30) (pair (int_bound 9) (int_bound 9))))

(* Drive the pool with [workers] domains (worker 0 is the caller), each
   draining until exhaustion. *)
let par_claims ~workers g =
  let pool = G.Bron_kerbosch.Par.create ~workers g in
  let results = Array.make workers [] in
  let run w =
    let rec go acc =
      match G.Bron_kerbosch.Par.next pool ~worker:w with
      | Some claim -> go (claim :: acc)
      | None -> List.rev acc
    in
    results.(w) <- go []
  in
  let doms =
    List.init (workers - 1) (fun k -> Domain.spawn (fun () -> run (k + 1)))
  in
  run 0;
  List.iter Domain.join doms;
  (pool, Array.to_list results |> List.concat)

(* --- Bitset.max_inter ------------------------------------------------ *)

let max_inter_matches_naive =
  QCheck.Test.make ~name:"max_inter = naive argmax over inter_cardinal"
    ~count:200
    QCheck.(
      triple
        (list_of_size (QCheck.Gen.int_bound 12) (int_bound 19))
        (list_of_size (QCheck.Gen.int_bound 12) (int_bound 19))
        (array_of_size (QCheck.Gen.return 20)
           (list_of_size (QCheck.Gen.int_bound 8) (int_bound 19))))
    (fun (cand, target, rows_members) ->
      let cand = G.Bitset.of_list 20 cand
      and target = G.Bitset.of_list 20 target in
      let rows = Array.map (G.Bitset.of_list 20) rows_members in
      let naive =
        List.fold_left
          (fun (bu, bs) u ->
            let s = G.Bitset.inter_cardinal rows.(u) target in
            if s > bs then (u, s) else (bu, bs))
          (-1, -1)
          (G.Bitset.to_list cand)
      in
      G.Bitset.max_inter ~rows cand target = naive)

(* --- Undirected.degeneracy_order ------------------------------------ *)

let degeneracy_is_greedy_min_peel =
  QCheck.Test.make ~name:"degeneracy_order = greedy min-degree peel"
    ~count:100 graph_arb (fun (n, edges) ->
      let g = random_graph n edges in
      let order = G.Undirected.degeneracy_order g in
      (* a permutation of 0..n-1 *)
      List.sort compare (Array.to_list order) = List.init n Fun.id
      &&
      (* each removed node has minimum remaining degree, smallest id on
         ties, against a naive simulation *)
      let removed = Array.make n false in
      let live_degree v =
        List.length
          (List.filter (fun u -> not removed.(u)) (G.Undirected.neighbours g v))
      in
      Array.for_all
        (fun v ->
          let dv = live_degree v in
          let ok =
            List.for_all
              (fun u ->
                removed.(u) || u = v
                ||
                let du = live_degree u in
                du > dv || (du = dv && u > v))
              (List.init n Fun.id)
          in
          removed.(v) <- true;
          ok)
        order)

(* --- Par pool -------------------------------------------------------- *)

let one_worker_is_sequential =
  QCheck.Test.make ~name:"Par workers:1 = sequential generator, same order"
    ~count:100 graph_arb (fun (n, edges) ->
      let g = random_graph n edges in
      let seq = G.Bron_kerbosch.maximal_cliques g in
      let _, claims = par_claims ~workers:1 g in
      List.map snd claims = seq
      &&
      (* paths come out strictly increasing — DFS order *)
      let rec ascending = function
        | (p1, _) :: ((p2, _) :: _ as rest) ->
            G.Bron_kerbosch.path_compare p1 p2 < 0 && ascending rest
        | _ -> true
      in
      ascending claims)

let par_matches_sequential_set =
  QCheck.Test.make ~name:"Par workers:4 clique set = sequential" ~count:100
    graph_arb (fun (n, edges) ->
      let g = random_graph n edges in
      let seq = List.sort compare (G.Bron_kerbosch.maximal_cliques g) in
      let pool, claims = par_claims ~workers:4 g in
      ignore (G.Bron_kerbosch.Par.steals pool);
      List.sort compare (List.map snd claims) = seq)

let count_upto_is_position =
  QCheck.Test.make ~name:"count_upto path_k = k+1" ~count:100 graph_arb
    (fun (n, edges) ->
      let g = random_graph n edges in
      let _, claims = par_claims ~workers:1 g in
      List.for_all2
        (fun (path, _) k -> G.Bron_kerbosch.count_upto g path = k + 1)
        claims
        (List.init (List.length claims) Fun.id))

let prune_cuts_exactly_after_target =
  QCheck.Test.make ~name:"prune before start claims exactly the prefix"
    ~count:100
    QCheck.(pair graph_arb small_nat)
    (fun ((n, edges), pick) ->
      let g = random_graph n edges in
      let _, all = par_claims ~workers:1 g in
      QCheck.assume (all <> []);
      let target, _ = List.nth all (pick mod List.length all) in
      let pool = G.Bron_kerbosch.Par.create ~workers:3 g in
      G.Bron_kerbosch.Par.prune pool target;
      let results = Array.make 3 [] in
      let run w =
        let rec go acc =
          match G.Bron_kerbosch.Par.next pool ~worker:w with
          | Some claim -> go (claim :: acc)
          | None -> acc
        in
        results.(w) <- go []
      in
      let doms = List.init 2 (fun k -> Domain.spawn (fun () -> run (k + 1))) in
      run 0;
      List.iter Domain.join doms;
      let claimed =
        Array.to_list results |> List.concat |> List.map snd
        |> List.sort compare
      in
      let expected =
        List.filter
          (fun (p, _) -> G.Bron_kerbosch.path_compare p target <= 0)
          all
        |> List.map snd |> List.sort compare
      in
      claimed = expected)

let interrupt_stops_pool () =
  (* a pre-fired interrupt produces no cliques at all *)
  let g = random_graph 8 [ (0, 1); (1, 2); (0, 2); (3, 4); (5, 6) ] in
  let pool =
    G.Bron_kerbosch.Par.create ~interrupt:(fun () -> true) ~workers:2 g
  in
  Alcotest.(check bool)
    "worker 0 sees None" true
    (G.Bron_kerbosch.Par.next pool ~worker:0 = None);
  Alcotest.(check bool)
    "worker 1 sees None" true
    (G.Bron_kerbosch.Par.next pool ~worker:1 = None)

let subtree_counter () =
  let g = random_graph 6 [ (0, 1); (2, 3) ] in
  let pool, claims = par_claims ~workers:2 g in
  Alcotest.(check int) "six cliques minus merged pairs" 4 (List.length claims);
  Alcotest.(check int) "all roots claimed" 6 (G.Bron_kerbosch.Par.subtrees pool)

let steal_drains_abandoned_deques () =
  (* Three workers each claim exactly one clique and walk away, leaving
     frames parked in their deques; the last worker must steal those
     frames to terminate. Regression: a steal used to double-count the
     frame's live token, so the termination test never fired and the
     survivor spun forever. *)
  let n = 12 in
  let g = G.Undirected.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if u / 2 <> v / 2 then G.Undirected.add_edge g u v
    done
  done;
  (* K_{2x6}: 2^6 = 64 maximal cliques *)
  let expected = G.Bron_kerbosch.maximal_cliques g in
  let pool = G.Bron_kerbosch.Par.create ~workers:4 g in
  let one w () =
    match G.Bron_kerbosch.Par.next pool ~worker:w with
    | Some (_, c) -> [ c ]
    | None -> []
  in
  let early =
    List.init 3 (fun i -> Domain.spawn (one (i + 1)))
    |> List.map Domain.join |> List.concat
  in
  let rest = ref [] in
  let rec drain () =
    match G.Bron_kerbosch.Par.next pool ~worker:0 with
    | Some (_, c) ->
        rest := c :: !rest;
        drain ()
    | None -> ()
  in
  drain ();
  let got = List.sort compare (early @ !rest) in
  Alcotest.(check int) "64 cliques" 64 (List.length got);
  Alcotest.(check bool)
    "set matches sequential" true
    (got = List.sort compare expected);
  Alcotest.(check bool)
    "steals happened" true
    (G.Bron_kerbosch.Par.steals pool > 0)

(* --- solver-level differential: steal backend vs claim-lock --------- *)

let acct = R.Schema.relation "Acct" [ "id"; "val" ]
let cat = R.Schema.of_list [ acct ]
let acct_row id v = ("Acct", R.Tuple.make [ V.Int id; V.Str v ])

(* Random instances with heavy key conflicts: many pending writers of
   few distinct ids makes the fd graph dense — exactly the regime the
   steal backend targets. *)
let random_db rng =
  let state = R.Database.create cat in
  R.Database.insert_all state [ acct_row 9 "a" ];
  let k = 5 + Random.State.int rng 5 in
  let random_tx () =
    let rows = 1 + Random.State.int rng 2 in
    List.init rows (fun _ ->
        acct_row
          (Random.State.int rng 4)
          (if Random.State.bool rng then "a" else "b"))
  in
  Core.Bcdb.create_exn ~state
    ~constraints:[ R.Constr.key acct [ "id" ] ]
    ~pending:(List.init k (fun _ -> random_tx ()))
    ()

let queries =
  [
    {| q() :- Acct(x, "a"), Acct(x, "b"). |};
    {| q() :- Acct(0, v). |};
    {| q() :- Acct(x, "a"), Acct(y, "b"), x != y. |};
  ]

(* Everything observable except runtime must coincide: the steal
   backend's path-minimum winner is the sequential first violation, and
   violated-run counts are recovered by the count_upto walk. *)
let same_outcome (a : Core.Dcsat.outcome) (b : Core.Dcsat.outcome) =
  let sa = a.Core.Dcsat.stats and sb = b.Core.Dcsat.stats in
  a.Core.Dcsat.satisfied = b.Core.Dcsat.satisfied
  && a.Core.Dcsat.witness_world = b.Core.Dcsat.witness_world
  && a.Core.Dcsat.witness = b.Core.Dcsat.witness
  && a.Core.Dcsat.verdict = b.Core.Dcsat.verdict
  && sa.Core.Dcsat.worlds_checked = sb.Core.Dcsat.worlds_checked
  && sa.Core.Dcsat.cliques_enumerated = sb.Core.Dcsat.cliques_enumerated
  && sa.Core.Dcsat.components_total = sb.Core.Dcsat.components_total
  && sa.Core.Dcsat.components_covered = sb.Core.Dcsat.components_covered
  && sa.Core.Dcsat.precheck_decided = sb.Core.Dcsat.precheck_decided

let steal_matches_claim_lock =
  QCheck.Test.make
    ~name:"naive/opt: steal backend = claim-lock (verdict/witness/stats)"
    ~count:60
    QCheck.(pair (int_bound 100_000) (int_bound (List.length queries - 1)))
    (fun (seed, qi) ->
      let rng = Random.State.make [| seed |] in
      let db = random_db rng in
      let session = Core.Session.create db in
      let q = Q.Parser.parse_exn ~catalog:cat (List.nth queries qi) in
      (* no precheck: force the enumeration on every instance *)
      let naive ~use_steal ~jobs =
        match
          Core.Dcsat.naive ~use_precheck:false ~use_steal ~jobs session q
        with
        | Ok o -> o
        | Error _ -> QCheck.assume_fail ()
      in
      let baseline = naive ~use_steal:false ~jobs:1 in
      let naive_ok =
        same_outcome baseline (naive ~use_steal:true ~jobs:1)
        && same_outcome baseline (naive ~use_steal:true ~jobs:4)
      in
      let opt_ok =
        match
          Core.Dcsat.opt ~use_precheck:false ~use_steal:false ~jobs:1 session q
        with
        | Error _ -> true (* disconnected: Naive covers it *)
        | Ok base ->
            let run ~jobs =
              match
                Core.Dcsat.opt ~use_precheck:false ~use_steal:true ~jobs
                  session q
              with
              | Ok o -> o
              | Error _ -> QCheck.assume_fail ()
            in
            same_outcome base (run ~jobs:1) && same_outcome base (run ~jobs:4)
      in
      naive_ok && opt_ok)

(* A tripped budget must surface as Unknown and leave the session
   reusable: borrowed replicas handed back, a follow-up unbudgeted solve
   on the same session gives the exact answer. *)
let budget_trips_to_unknown () =
  let state = R.Database.create cat in
  let pending =
    (* 8 key-conflicting pairs: 2^8 maximal worlds, all satisfied *)
    List.concat_map
      (fun j -> [ [ acct_row j "a" ]; [ acct_row j "b" ] ])
      (List.init 8 Fun.id)
  in
  let db =
    Core.Bcdb.create_exn ~state
      ~constraints:[ R.Constr.key acct [ "id" ] ]
      ~pending ()
  in
  let session = Core.Session.create db in
  let q =
    Q.Parser.parse_exn ~catalog:cat {| q() :- Acct(x, "a"), Acct(x, "b"). |}
  in
  for _ = 1 to 2 do
    let budget = Core.Engine.Budget.create ~max_worlds:4 () in
    (match
       Core.Dcsat.naive ~use_precheck:false ~use_steal:true ~jobs:4 ~budget
         session q
     with
    | Ok o -> (
        match o.Core.Dcsat.verdict with
        | Core.Dcsat.Unknown _ -> ()
        | v -> Alcotest.failf "expected Unknown, got %s" (Core.Dcsat.verdict_name v))
    | Error _ -> Alcotest.fail "refused");
    match Core.Dcsat.naive ~use_precheck:false ~use_steal:true ~jobs:4 session q with
    | Ok o ->
        Alcotest.(check bool)
          "full solve after trip is exact" true o.Core.Dcsat.satisfied
    | Error _ -> Alcotest.fail "refused"
  done

let () =
  Alcotest.run "parallel_bk"
    [
      ( "helpers",
        [
          QCheck_alcotest.to_alcotest max_inter_matches_naive;
          QCheck_alcotest.to_alcotest degeneracy_is_greedy_min_peel;
        ] );
      ( "pool",
        [
          QCheck_alcotest.to_alcotest one_worker_is_sequential;
          QCheck_alcotest.to_alcotest par_matches_sequential_set;
          QCheck_alcotest.to_alcotest count_upto_is_position;
          QCheck_alcotest.to_alcotest prune_cuts_exactly_after_target;
          Alcotest.test_case "interrupt" `Quick interrupt_stops_pool;
          Alcotest.test_case "subtree counter" `Quick subtree_counter;
          Alcotest.test_case "steal drains abandoned deques" `Quick
            steal_drains_abandoned_deques;
        ] );
      ( "solver",
        [
          QCheck_alcotest.to_alcotest steal_matches_claim_lock;
          Alcotest.test_case "budget trips to Unknown" `Quick
            budget_trips_to_unknown;
        ] );
    ]
