(* Columnar segments: value/relation round-trips, row-vs-columnar
   agreement on probes and solver verdicts, binary-vs-text snapshot
   equivalence, and the clone-cost contract (clone cost independent of
   base size). *)

module R = Relational
module V = R.Value
module Q = Bcquery
module Core = Bccore
module W = Workload

let schema3 = R.Schema.relation "S" [ "a"; "b"; "c" ]

let value_gen =
  QCheck.Gen.(
    oneof
      [
        return V.Null;
        map (fun b -> V.Bool b) bool;
        map (fun i -> V.Int i) (int_range (-1000) 1000);
        map (fun f -> V.Float f) (float_range (-100.0) 100.0);
        map (fun i -> V.Str (Printf.sprintf "s%d" i)) (int_range 0 30);
      ])

let tuple_gen = QCheck.Gen.(map Array.of_list (list_repeat 3 value_gen))

let rows_arb =
  QCheck.make
    QCheck.Gen.(list_size (int_range 0 200) tuple_gen)
    ~print:(fun rows ->
      String.concat "; " (List.map R.Tuple.to_string rows))

let relation_of rows =
  let r = R.Relation.create schema3 in
  List.iter (fun t -> ignore (R.Relation.insert r t)) rows;
  r

let sorted_list r = List.sort compare (R.Relation.to_list r)

let segment_relation_roundtrip =
  QCheck.Test.make ~name:"Segment.of_relation |> to_relation is identity"
    ~count:200 rows_arb (fun rows ->
      let r = relation_of rows in
      let seg = R.Segment.of_relation r in
      R.Segment.length seg = R.Relation.cardinality r
      && sorted_list (R.Segment.to_relation schema3 seg) = sorted_list r)

let segment_binary_roundtrip =
  QCheck.Test.make ~name:"Segment serialize |> deserialize is identity"
    ~count:200 rows_arb (fun rows ->
      let seg = R.Segment.of_relation (relation_of rows) in
      let buf = Buffer.create 256 in
      R.Segment.serialize buf seg;
      let seg' = R.Segment.deserialize (Buffer.contents buf) (ref 0) in
      R.Segment.length seg' = R.Segment.length seg
      && List.init (R.Segment.length seg) (R.Segment.tuple seg)
         = List.init (R.Segment.length seg') (R.Segment.tuple seg'))

(* Probes answer exactly what a row-at-a-time filter over the same rows
   answers, for every single- and two-column bind drawn from the data
   (hits) and from values absent from it (dictionary misses). *)
let probe_agreement =
  QCheck.Test.make ~name:"Segment probes agree with row filtering" ~count:100
    rows_arb (fun rows ->
      let r = relation_of rows in
      let seg = R.Segment.of_relation r in
      let tuples = R.Relation.to_list r in
      let expected binds =
        List.filter
          (fun t ->
            List.for_all (fun (c, v) -> V.equal (R.Tuple.get t c) v) binds)
          tuples
        |> List.sort compare
      in
      let got binds =
        let slice =
          R.Segment.lookup seg (List.map fst binds |> List.sort_uniq compare)
            binds
        in
        R.Segment.slice_rows seg slice
        |> Seq.map (R.Segment.tuple seg)
        |> List.of_seq |> List.sort compare
      in
      let probes =
        (match tuples with
        | t :: _ ->
            [
              [ (0, R.Tuple.get t 0) ];
              [ (1, R.Tuple.get t 1) ];
              [ (0, R.Tuple.get t 0); (2, R.Tuple.get t 2) ];
            ]
        | [] -> [])
        @ [ [ (0, V.Str "never-interned") ]; [ (1, V.Int 123456) ] ]
      in
      List.for_all (fun binds -> expected binds = got binds) probes)

(* ------------------------------------------------------------------ *)
(* Row-built vs snapshot-restored databases must be indistinguishable
   to the solvers: same verdicts, same witness worlds, at jobs=1 and
   jobs=4. The original state lives in the mutable row tail; the
   restored one is pure columnar segments. *)

let binary_of db =
  match Core.Bcdb_file.of_binary_string (Core.Bcdb_file.to_binary_string db) with
  | Ok db' -> db'
  | Error msg -> Alcotest.failf "binary round-trip: %s" msg

let queries =
  [
    {| q() :- TxOut(t, s, "U8Pk", a). |};
    {| q() :- TxOut(t, s, "U7Pk", a). |};
    {| q() :- TxIn(p, s, k, a, n, g), TxOut(n, s2, "U4Pk", a2). |};
    {| q() :- TxOut(t, s, k, a), TxOut(t, s2, k2, a2), s != s2. |};
  ]

let test_row_columnar_verdicts () =
  let db = Fixtures.paper_db () in
  let db' = binary_of db in
  let sess = Core.Session.create db in
  let sess' = Core.Session.create db' in
  List.iter
    (fun qtext ->
      let q = Q.Parser.parse_exn ~catalog:Fixtures.catalog qtext in
      List.iter
        (fun jobs ->
          List.iter
            (fun (name, solve) ->
              let o = solve ~jobs sess q in
              let o' = solve ~jobs sess' q in
              Alcotest.(check bool)
                (Printf.sprintf "%s jobs=%d satisfied agree: %s" name jobs
                   qtext)
                o.Core.Dcsat.satisfied o'.Core.Dcsat.satisfied;
              Alcotest.(check (option (list int)))
                (Printf.sprintf "%s jobs=%d witness agree: %s" name jobs qtext)
                o.Core.Dcsat.witness_world o'.Core.Dcsat.witness_world)
            [
              ( "naive",
                fun ~jobs s q -> Result.get_ok (Core.Dcsat.naive ~jobs s q) );
              ("opt", fun ~jobs s q -> Result.get_ok (Core.Dcsat.opt ~jobs s q));
            ])
        [ 1; 4 ])
    queries

(* The store built over a restored database exposes the same relation
   contents, membership and per-bind lookups as the row-built one. *)
let test_row_columnar_store () =
  let db = Fixtures.paper_db () in
  let db' = binary_of db in
  let store = Core.Tagged_store.create db in
  let store' = Core.Tagged_store.create db' in
  Core.Tagged_store.all_visible store;
  Core.Tagged_store.all_visible store';
  let src = Core.Tagged_store.source store in
  let src' = Core.Tagged_store.source store' in
  List.iter
    (fun rel ->
      let name = rel.R.Schema.name in
      let sorted (s : R.Source.t) =
        s.R.Source.scan name |> List.of_seq |> List.sort compare
      in
      Alcotest.(check int)
        (name ^ " cardinality")
        (src.R.Source.cardinality name)
        (src'.R.Source.cardinality name);
      Alcotest.(check bool) (name ^ " scan agrees") true (sorted src = sorted src');
      List.iter
        (fun t ->
          Alcotest.(check bool) (name ^ " mem agrees") true
            (src'.R.Source.mem name t);
          let binds = [ (0, R.Tuple.get t 0) ] in
          let l (s : R.Source.t) =
            s.R.Source.lookup name binds |> List.of_seq |> List.sort compare
          in
          Alcotest.(check bool) (name ^ " lookup agrees") true (l src = l src'))
        (sorted src))
    (R.Schema.relations Fixtures.catalog)

(* ------------------------------------------------------------------ *)
(* Binary and text snapshots describe the same database: restoring the
   binary form and rendering it as text reproduces the text render of
   the original, pending transactions and labels included. *)

let test_binary_text_equivalence () =
  let check_db label db =
    let db' = binary_of db in
    Alcotest.(check string)
      (label ^ ": text render survives the binary round-trip")
      (Core.Bcdb_file.to_string db)
      (Core.Bcdb_file.to_string db')
  in
  check_db "paper" (Fixtures.paper_db ());
  let sim = W.Generator.generate (W.Datasets.params W.Datasets.Small) in
  check_db "generated" (W.Generator.dataset sim ~contradictions:5 ())

let test_binary_validate () =
  let db = Fixtures.paper_db () in
  match
    Core.Bcdb_file.of_binary_string ~validate:true
      (Core.Bcdb_file.to_binary_string db)
  with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "validated restore failed: %s" msg

(* ------------------------------------------------------------------ *)
(* Clone cost: cloning a store whose base holds hundreds of thousands
   of rows must allocate only per-pending-transaction state — the base
   segment is shared, never copied. The bound is generous (the real
   figure is a few hundred KB) but two orders of magnitude below the
   base payload, so a base copy trips it immediately. *)

let test_clone_cost () =
  let p = { W.Huge.smoke with W.Huge.rows = 300_000 } in
  let db = W.Huge.generate p in
  let store = Core.Tagged_store.create db in
  Core.Tagged_store.all_visible store;
  Alcotest.(check bool) "base is actually large (> 5 MB)" true
    (Core.Tagged_store.base_bytes store > 5_000_000);
  (* Warm one probe so lazily built structures don't bill to the clone. *)
  ignore
    ((Core.Tagged_store.source store).R.Source.lookup "TxOut" [ (0, V.Int 0) ]
    |> List.of_seq);
  let before = Gc.allocated_bytes () in
  let clone = Core.Tagged_store.clone store in
  let allocated = Gc.allocated_bytes () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "clone allocated %.0f bytes (< 2 MB)" allocated)
    true
    (allocated < 2_000_000.0);
  Alcotest.(check int) "clone shares the base segments"
    (Core.Tagged_store.base_bytes store)
    (Core.Tagged_store.base_bytes clone);
  (* And the clone still answers. *)
  Alcotest.(check bool) "clone sees base rows" true
    ((Core.Tagged_store.source clone).R.Source.mem "TxOut"
       (R.Tuple.make [ V.Int 0; V.Int 0; V.Str "PK0"; V.Int 1 ]))

(* The streaming Huge generator's constraints hold by construction and
   its two queries land on the designed verdicts. *)
let test_huge_smoke_solves () =
  let db = W.Huge.generate W.Huge.smoke in
  Alcotest.(check bool) "Huge base state satisfies the constraints" true
    (R.Check.satisfies
       (R.Database.source db.Core.Bcdb.state)
       db.Core.Bcdb.constraints);
  let sess = Core.Session.create db in
  let hit = Result.get_ok (Core.Dcsat.opt sess (W.Huge.query_hit ())) in
  Alcotest.(check bool) "hit query violated in the marked world" false
    hit.Core.Dcsat.satisfied;
  let miss = Result.get_ok (Core.Dcsat.opt sess (W.Huge.query_miss ())) in
  Alcotest.(check bool) "miss query satisfied everywhere" true
    miss.Core.Dcsat.satisfied

let () =
  Alcotest.run "segment"
    [
      ( "roundtrip",
        [
          QCheck_alcotest.to_alcotest segment_relation_roundtrip;
          QCheck_alcotest.to_alcotest segment_binary_roundtrip;
          QCheck_alcotest.to_alcotest probe_agreement;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "solver verdicts row vs columnar" `Quick
            test_row_columnar_verdicts;
          Alcotest.test_case "store probes row vs columnar" `Quick
            test_row_columnar_store;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "binary = text" `Quick test_binary_text_equivalence;
          Alcotest.test_case "validated restore" `Quick test_binary_validate;
        ] );
      ( "clone", [ Alcotest.test_case "cost" `Quick test_clone_cost ] );
      ( "huge",
        [ Alcotest.test_case "smoke preset solves" `Quick test_huge_smoke_solves ]
      );
    ]
