(* Chain substrate: crypto mock, scripts, transactions, UTXO, mempool,
   miner, chain state, wallets, relational encoding. *)

module C = Chain
module R = Relational

let kp seed = C.Crypto.keypair ~seed

let test_crypto () =
  let a = kp "alice" and b = kp "bob" in
  Alcotest.(check bool) "distinct keys" false
    (String.equal a.C.Crypto.public b.C.Crypto.public);
  let s = C.Crypto.sign a ~msg:"hello" in
  Alcotest.(check bool) "verifies" true
    (C.Crypto.verify ~public:a.C.Crypto.public ~msg:"hello" ~signature:s);
  Alcotest.(check bool) "wrong message" false
    (C.Crypto.verify ~public:a.C.Crypto.public ~msg:"other" ~signature:s);
  Alcotest.(check bool) "wrong key" false
    (C.Crypto.verify ~public:b.C.Crypto.public ~msg:"hello" ~signature:s);
  Alcotest.(check bool) "combine injective-ish" false
    (String.equal (C.Crypto.combine [ "ab"; "c" ]) (C.Crypto.combine [ "a"; "bc" ]))

let test_scripts () =
  let a = kp "alice" in
  let msg = "spend" in
  let witness =
    C.Script.Key_sig
      { public = a.C.Crypto.public; signature = C.Crypto.sign a ~msg }
  in
  Alcotest.(check bool) "p2pk unlock" true
    (C.Script.unlock (C.Script.Pay_to_key a.C.Crypto.public) witness ~msg ~height:0);
  Alcotest.(check bool) "p2pk wrong key" false
    (C.Script.unlock (C.Script.Pay_to_key "PKother") witness ~msg ~height:0);
  let lock = C.Script.Hash_lock (C.Crypto.digest "secret") in
  Alcotest.(check bool) "hash lock" true
    (C.Script.unlock lock (C.Script.Preimage "secret") ~msg ~height:0);
  Alcotest.(check bool) "wrong preimage" false
    (C.Script.unlock lock (C.Script.Preimage "nope") ~msg ~height:0);
  let b = kp "bob" and c = kp "carol" in
  let multisig =
    C.Script.Multi_sig (2, [ a.C.Crypto.public; b.C.Crypto.public; c.C.Crypto.public ])
  in
  let sig_of k = (k.C.Crypto.public, C.Crypto.sign k ~msg) in
  Alcotest.(check bool) "2-of-3 with 2" true
    (C.Script.unlock multisig (C.Script.Sig_list [ sig_of a; sig_of c ]) ~msg ~height:0);
  Alcotest.(check bool) "2-of-3 with 1" false
    (C.Script.unlock multisig (C.Script.Sig_list [ sig_of a ]) ~msg ~height:0);
  Alcotest.(check bool) "duplicate sigs don't count twice" false
    (C.Script.unlock multisig (C.Script.Sig_list [ sig_of a; sig_of a ]) ~msg ~height:0)

let test_timelock_script () =
  let a = kp "alice" in
  let msg = "spend" in
  let witness =
    C.Script.Key_sig
      { public = a.C.Crypto.public; signature = C.Crypto.sign a ~msg }
  in
  let locked = C.Script.Timelock (5, C.Script.Pay_to_key a.C.Crypto.public) in
  Alcotest.(check bool) "locked before height" false
    (C.Script.unlock locked witness ~msg ~height:4);
  Alcotest.(check bool) "spendable at height" true
    (C.Script.unlock locked witness ~msg ~height:5);
  Alcotest.(check bool) "owner hint unwraps" true
    (String.equal (C.Script.owner_hint locked) a.C.Crypto.public)

let test_timelock_on_chain () =
  let alice = C.Wallet.create ~seed:"alice" in
  let bob = C.Wallet.create ~seed:"bob" in
  (* Alice's only coin is locked until height 3. *)
  let node =
    C.Node.create
      ~initial:[ (C.Script.Timelock (3, C.Wallet.address alice), 50_000) ]
  in
  let spend () =
    match
      C.Wallet.pay alice ~utxo:(C.Node.utxo node) ~to_:(C.Wallet.address bob)
        ~amount:10_000 ~fee:100
    with
    | Ok tx -> C.Node.submit node tx
    | Error msg -> Alcotest.fail msg
  in
  (* Next block is height 1 < 3: the mempool rejects the spend. *)
  (match spend () with
  | Error (C.Mempool.Invalid _) -> ()
  | Error r -> Alcotest.failf "unexpected reject: %a" C.Mempool.pp_reject r
  | Ok () -> Alcotest.fail "premature timelocked spend accepted");
  (* Mine empty blocks until the lock matures, then it goes through. *)
  let miner = C.Wallet.create ~seed:"m" in
  for _ = 1 to 2 do
    match C.Node.mine node ~coinbase_script:(C.Wallet.address miner) () with
    | Ok _ -> ()
    | Error msg -> Alcotest.fail msg
  done;
  (match spend () with
  | Ok () -> ()
  | Error r -> Alcotest.failf "mature spend rejected: %a" C.Mempool.pp_reject r);
  (match C.Node.mine node ~coinbase_script:(C.Wallet.address miner) () with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "bob paid after maturity" 10_000
    (C.Wallet.balance bob (C.Node.utxo node))

(* A two-wallet world: genesis gives Alice one coin. *)
let small_node () =
  let alice = C.Wallet.create ~seed:"alice" in
  let bob = C.Wallet.create ~seed:"bob" in
  let node = C.Node.create ~initial:[ (C.Wallet.address alice, 100_000) ] in
  (node, alice, bob)

let test_pay_and_mine () =
  let node, alice, bob = small_node () in
  Alcotest.(check int) "alice funded" 100_000
    (C.Wallet.balance alice (C.Node.utxo node));
  let tx =
    match
      C.Wallet.pay alice ~utxo:(C.Node.utxo node) ~to_:(C.Wallet.address bob)
        ~amount:30_000 ~fee:500
    with
    | Ok tx -> tx
    | Error msg -> Alcotest.fail msg
  in
  (match C.Node.submit node tx with
  | Ok () -> ()
  | Error r -> Alcotest.failf "submit: %a" C.Mempool.pp_reject r);
  let miner = C.Wallet.create ~seed:"miner" in
  (match C.Node.mine node ~coinbase_script:(C.Wallet.address miner) () with
  | Ok block -> Alcotest.(check int) "block has coinbase + tx" 2 (C.Block.tx_count block)
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "bob paid" 30_000 (C.Wallet.balance bob (C.Node.utxo node));
  Alcotest.(check int) "alice change" 69_500
    (C.Wallet.balance alice (C.Node.utxo node));
  Alcotest.(check int) "miner got reward + fee" (C.Miner.block_reward + 500)
    (C.Wallet.balance miner (C.Node.utxo node));
  Alcotest.(check int) "mempool empty" 0 (C.Mempool.size (C.Node.mempool node))

let test_insufficient_funds () =
  let node, alice, bob = small_node () in
  match
    C.Wallet.pay alice ~utxo:(C.Node.utxo node) ~to_:(C.Wallet.address bob)
      ~amount:200_000 ~fee:10
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overspend must fail"

let test_conflict_rejected_then_rbf () =
  let node, alice, bob = small_node () in
  let utxo = C.Node.utxo node in
  let pay fee =
    match
      C.Wallet.pay alice ~utxo ~to_:(C.Wallet.address bob) ~amount:10_000 ~fee
    with
    | Ok tx -> tx
    | Error msg -> Alcotest.fail msg
  in
  let tx1 = pay 100 in
  (match C.Node.submit node tx1 with
  | Ok () -> ()
  | Error r -> Alcotest.failf "first submit: %a" C.Mempool.pp_reject r);
  (* Same coins, insufficient bump: rejected. *)
  let tx2 = pay 105 in
  Alcotest.(check bool) "conflict shares input" true (C.Tx.conflicts tx1 tx2);
  (match C.Node.submit node tx2 with
  | Error (C.Mempool.Fee_too_low _) -> ()
  | Error r -> Alcotest.failf "unexpected reject: %a" C.Mempool.pp_reject r
  | Ok () -> Alcotest.fail "low-fee replacement must be rejected");
  (* Proper fee bump: replaces. *)
  let tx3 = pay 500 in
  (match C.Node.submit node tx3 with
  | Ok () -> ()
  | Error r -> Alcotest.failf "rbf: %a" C.Mempool.pp_reject r);
  Alcotest.(check int) "pool holds only the replacement" 1
    (C.Mempool.size (C.Node.mempool node));
  Alcotest.(check bool) "old tx evicted" false
    (C.Mempool.mem (C.Node.mempool node) tx1.C.Tx.txid)

let test_mempool_chaining_and_eviction () =
  let node, alice, bob = small_node () in
  let effective = C.Utxo.copy (C.Node.utxo node) in
  let pay_eff wallet to_ amount fee =
    match C.Wallet.pay wallet ~utxo:effective ~to_ ~amount ~fee with
    | Ok tx -> (
        match C.Node.submit node tx with
        | Ok () ->
            (match C.Utxo.apply_tx effective tx with
            | Ok () -> ()
            | Error msg -> Alcotest.fail msg);
            tx
        | Error r -> Alcotest.failf "submit: %a" C.Mempool.pp_reject r)
    | Error msg -> Alcotest.fail msg
  in
  let tx1 = pay_eff alice (C.Wallet.address bob) 40_000 200 in
  (* Bob spends his unconfirmed coin: a chained pending transaction. *)
  let _tx2 = pay_eff bob (C.Wallet.address alice) 15_000 200 in
  Alcotest.(check int) "two pool txs" 2 (C.Mempool.size (C.Node.mempool node));
  (* Evicting the parent drags the descendant out. *)
  C.Mempool.remove (C.Node.mempool node) tx1.C.Tx.txid;
  Alcotest.(check int) "descendant evicted too" 0
    (C.Mempool.size (C.Node.mempool node))

let test_rbf_evicts_descendants () =
  (* A replacement conflicts only with the parent, but eviction drags the
     parent's whole pool subtree out — fee accounting included: the bump
     is computed against the direct conflicts, the removal is
     transitive. *)
  let node, alice, bob = small_node () in
  let pool = C.Node.mempool node in
  let effective = C.Utxo.copy (C.Node.utxo node) in
  let pay_eff wallet to_ amount fee =
    match C.Wallet.pay wallet ~utxo:effective ~to_ ~amount ~fee with
    | Ok tx -> (
        match C.Node.submit node tx with
        | Ok () ->
            (match C.Utxo.apply_tx effective tx with
            | Ok () -> ()
            | Error msg -> Alcotest.fail msg);
            tx
        | Error r -> Alcotest.failf "submit: %a" C.Mempool.pp_reject r)
    | Error msg -> Alcotest.fail msg
  in
  let tx1 = pay_eff alice (C.Wallet.address bob) 40_000 200 in
  let tx2 = pay_eff bob (C.Wallet.address alice) 15_000 200 in
  Alcotest.(check int) "parent and child pending" 2 (C.Mempool.size pool);
  Alcotest.(check int) "descendant set covers both" 2
    (List.length (C.Mempool.descendants pool tx1.C.Tx.txid));
  (* Replace the parent from the same coins; tx2 never conflicts with the
     replacement directly, yet it cannot survive its parent. *)
  let tx3 =
    match
      C.Wallet.pay alice ~utxo:(C.Node.utxo node) ~to_:(C.Wallet.address bob)
        ~amount:40_000 ~fee:500
    with
    | Ok tx -> tx
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check bool) "replacement conflicts with parent" true
    (C.Tx.conflicts tx1 tx3);
  Alcotest.(check bool) "replacement independent of child" false
    (C.Tx.conflicts tx2 tx3);
  (match C.Node.submit node tx3 with
  | Ok () -> ()
  | Error r -> Alcotest.failf "rbf: %a" C.Mempool.pp_reject r);
  Alcotest.(check int) "only the replacement remains" 1 (C.Mempool.size pool);
  Alcotest.(check bool) "parent evicted" false (C.Mempool.mem pool tx1.C.Tx.txid);
  Alcotest.(check bool) "orphaned child evicted" false
    (C.Mempool.mem pool tx2.C.Tx.txid);
  Alcotest.(check bool) "replacement admitted" true
    (C.Mempool.mem pool tx3.C.Tx.txid)

let test_confirm_block_evicts_conflict () =
  (* A block confirming a conflicting transaction (mined elsewhere, not
     from our pool) invalidates the pool entry spending the same coins:
     confirm_block must drop it even though the block never contained
     it. *)
  let node, alice, bob = small_node () in
  let pool = C.Node.mempool node in
  let utxo = C.Node.utxo node in
  let tx =
    match
      C.Wallet.pay alice ~utxo ~to_:(C.Wallet.address bob) ~amount:10_000
        ~fee:100
    with
    | Ok tx -> tx
    | Error msg -> Alcotest.fail msg
  in
  let cancel =
    match C.Wallet.cancel alice ~utxo ~original:tx ~fee:600 with
    | Ok c -> c
    | Error msg -> Alcotest.fail msg
  in
  (match C.Node.submit node tx with
  | Ok () -> ()
  | Error r -> Alcotest.failf "submit: %a" C.Mempool.pp_reject r);
  Alcotest.(check bool) "payment pending" true (C.Mempool.mem pool tx.C.Tx.txid);
  let chain = C.Node.chain node in
  let coinbase =
    C.Tx.coinbase ~reward:C.Miner.block_reward
      ~script:(C.Script.Pay_to_key "PKrival") ~tag:"rival"
  in
  let block =
    match
      C.Block.create ~height:1 ~prev_hash:(C.Chain_state.tip_hash chain)
        ~timestamp:7 ~txs:[ coinbase; cancel ]
    with
    | Ok b -> b
    | Error msg -> Alcotest.fail msg
  in
  (match C.Chain_state.connect_block chain block with
  | Ok C.Chain_state.Extended -> ()
  | Ok _ -> Alcotest.fail "expected a tip extension"
  | Error msg -> Alcotest.fail msg);
  C.Mempool.confirm_block pool block;
  Alcotest.(check bool) "conflicting pool tx evicted" false
    (C.Mempool.mem pool tx.C.Tx.txid);
  Alcotest.(check int) "pool empty" 0 (C.Mempool.size pool);
  (* The cancel returned the coins to Alice (minus its fee). *)
  Alcotest.(check int) "bob never paid" 0
    (C.Wallet.balance bob (C.Node.utxo node));
  Alcotest.(check int) "alice holds the change" 99_400
    (C.Wallet.balance alice (C.Node.utxo node))

let test_wallet_cancel_conflicts () =
  let node, alice, bob = small_node () in
  let utxo = C.Node.utxo node in
  let tx =
    match
      C.Wallet.pay alice ~utxo ~to_:(C.Wallet.address bob) ~amount:10_000 ~fee:100
    with
    | Ok tx -> tx
    | Error msg -> Alcotest.fail msg
  in
  let cancel =
    match C.Wallet.cancel alice ~utxo ~original:tx ~fee:600 with
    | Ok c -> c
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check bool) "cancel conflicts with original" true
    (C.Tx.conflicts tx cancel);
  (match C.Tx.validate ~resolver:(C.Utxo.resolver utxo) cancel with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "cancel invalid: %s" msg);
  let bump =
    match C.Wallet.bump_fee alice ~original:tx ~add_fee:400 with
    | Ok b -> b
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check bool) "bump conflicts with original" true
    (C.Tx.conflicts tx bump);
  (* The bump keeps the payment to Bob intact. *)
  Alcotest.(check bool) "bump still pays bob" true
    (List.exists
       (fun (o : C.Tx.output) ->
         o.C.Tx.amount = 10_000 && C.Wallet.owns bob o.C.Tx.script)
       bump.C.Tx.outputs)

let test_block_validation () =
  let node, alice, _bob = small_node () in
  let chain = C.Node.chain node in
  ignore alice;
  (* A block with the wrong parent is rejected. *)
  let coinbase =
    C.Tx.coinbase ~reward:C.Miner.block_reward
      ~script:(C.Script.Pay_to_key "PKx") ~tag:"h1"
  in
  let bad =
    match
      C.Block.create ~height:1 ~prev_hash:(C.Crypto.digest "wrong") ~timestamp:1
        ~txs:[ coinbase ]
    with
    | Ok b -> b
    | Error msg -> Alcotest.fail msg
  in
  (match C.Chain_state.connect_block chain bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong parent accepted");
  (* An overpaying coinbase is rejected. *)
  let greedy =
    C.Tx.coinbase ~reward:(C.Miner.block_reward + 1)
      ~script:(C.Script.Pay_to_key "PKx") ~tag:"h1"
  in
  let over =
    match
      C.Block.create ~height:1 ~prev_hash:(C.Chain_state.tip_hash chain)
        ~timestamp:1 ~txs:[ greedy ]
    with
    | Ok b -> b
    | Error msg -> Alcotest.fail msg
  in
  match C.Chain_state.connect_block chain over with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overpaying coinbase accepted"

let test_reorg () =
  let alice = C.Wallet.create ~seed:"alice" in
  let bob = C.Wallet.create ~seed:"bob" in
  let node = C.Node.create ~initial:[ (C.Wallet.address alice, 100_000) ] in
  let chain = C.Node.chain node in
  (* Branch A: one block containing Alice's payment to Bob. *)
  let tx =
    match
      C.Wallet.pay alice ~utxo:(C.Node.utxo node) ~to_:(C.Wallet.address bob)
        ~amount:30_000 ~fee:500
    with
    | Ok tx -> tx
    | Error msg -> Alcotest.fail msg
  in
  (match C.Node.submit node tx with
  | Ok () -> ()
  | Error r -> Alcotest.failf "%a" C.Mempool.pp_reject r);
  let genesis_hash =
    C.Block.hash (List.hd (C.Chain_state.blocks chain))
  in
  (match C.Node.mine node ~coinbase_script:(C.Wallet.address alice) () with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "on branch A" 1 (C.Chain_state.height chain);
  Alcotest.(check int) "bob paid on A" 30_000
    (C.Wallet.balance bob (C.Node.utxo node));
  (* A competing empty branch B of length 2 from genesis overtakes A. *)
  let mk_block height prev tag =
    let coinbase =
      C.Tx.coinbase ~reward:C.Miner.block_reward
        ~script:(C.Script.Pay_to_key ("PKrival" ^ tag))
        ~tag
    in
    match C.Block.create ~height ~prev_hash:prev ~timestamp:99 ~txs:[ coinbase ] with
    | Ok b -> b
    | Error msg -> Alcotest.fail msg
  in
  let b1 = mk_block 1 genesis_hash "b1" in
  (match C.Chain_state.connect_block chain b1 with
  | Ok C.Chain_state.Side_branch -> ()
  | Ok _ -> Alcotest.fail "same-height branch must not take over"
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "tip unchanged" 1 (C.Chain_state.height chain);
  let b2 = mk_block 2 (C.Block.hash b1) "b2" in
  (match C.Chain_state.connect_block chain b2 with
  | Ok (C.Chain_state.Reorg { disconnected; connected }) ->
      Alcotest.(check int) "one block abandoned" 1 (List.length disconnected);
      Alcotest.(check int) "two blocks activated" 2 (List.length connected)
  | Ok _ -> Alcotest.fail "expected a reorg"
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "tip at height 2" 2 (C.Chain_state.height chain);
  (* On the new branch Bob was never paid; the UTXO reflects that. *)
  Alcotest.(check int) "bob unpaid after reorg" 0
    (C.Wallet.balance bob (C.Node.utxo node));
  Alcotest.(check int) "alice coin restored" 100_000
    (C.Wallet.balance alice (C.Node.utxo node));
  Alcotest.(check int) "three non-genesis blocks stored" 4
    (C.Chain_state.block_count chain)

let test_network_fork_race () =
  (* Two halves mine competing blocks while partitioned; after healing,
     the longer branch wins everywhere and the short branch's payment
     returns to the mempool. *)
  let alice = C.Wallet.create ~seed:"alice" in
  let bob = C.Wallet.create ~seed:"bob" in
  let net =
    C.Network.create ~peers:2 ~initial:[ (C.Wallet.address alice, 100_000) ] ()
  in
  C.Network.partition net [ 1 ];
  (* Peer 0 mines a block with a payment. *)
  let tx =
    match
      C.Wallet.pay alice
        ~utxo:(C.Node.utxo (C.Network.peer net 0))
        ~to_:(C.Wallet.address bob) ~amount:20_000 ~fee:300
    with
    | Ok tx -> tx
    | Error msg -> Alcotest.fail msg
  in
  (match C.Network.submit net ~at:0 tx with
  | Ok () -> ()
  | Error r -> Alcotest.failf "%a" C.Mempool.pp_reject r);
  (match C.Network.mine_at net ~at:0 ~coinbase_script:(C.Wallet.address alice) () with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  (* Peer 1 mines two empty blocks: the longer branch. *)
  for _ = 1 to 2 do
    match
      C.Network.mine_at net ~at:1 ~coinbase_script:(C.Script.Pay_to_key "PKm") ()
    with
    | Ok _ -> ()
    | Error msg -> Alcotest.fail msg
  done;
  ignore (C.Network.deliver net ());
  C.Network.heal net;
  ignore (C.Network.deliver net ());
  (* Both peers end on the longer branch... *)
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Printf.sprintf "peer %d height" i)
        2
        (C.Chain_state.height (C.Node.chain (C.Network.peer net i))))
    [ 0; 1 ];
  Alcotest.(check string) "same tip"
    (C.Chain_state.tip_hash (C.Node.chain (C.Network.peer net 0)))
    (C.Chain_state.tip_hash (C.Node.chain (C.Network.peer net 1)));
  (* ... and the orphaned payment is pending again on peer 0. *)
  Alcotest.(check bool) "payment back in peer 0's mempool" true
    (C.Mempool.mem (C.Node.mempool (C.Network.peer net 0)) tx.C.Tx.txid)

(* Conservation: coins in the UTXO set equal minted coins minus burned
   fees... in our model fees flow to the miner, so total UTXO value =
   genesis + rewards + fees collected - fees paid = genesis + rewards. *)
let conservation_prop =
  QCheck.Test.make ~name:"value conservation across random traffic" ~count:10
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let wallets =
        Array.init 4 (fun i -> C.Wallet.create ~seed:(Printf.sprintf "w%d-%d" seed i))
      in
      let node =
        C.Node.create
          ~initial:
            (Array.to_list wallets
            |> List.map (fun w -> (C.Wallet.address w, 50_000)))
      in
      let miner = C.Wallet.create ~seed:"m" in
      let blocks = 3 in
      for _ = 1 to blocks do
        let effective = C.Utxo.copy (C.Node.utxo node) in
        for _ = 1 to 5 do
          let s = wallets.(Random.State.int rng 4) in
          let r = wallets.(Random.State.int rng 4) in
          if s != r && C.Wallet.balance s effective > 2_000 then
            match
              C.Wallet.pay s ~utxo:effective ~to_:(C.Wallet.address r)
                ~amount:(500 + Random.State.int rng 1_000)
                ~fee:(10 + Random.State.int rng 90)
            with
            | Ok tx -> (
                match C.Node.submit node tx with
                | Ok () -> ignore (C.Utxo.apply_tx effective tx)
                | Error _ -> ())
            | Error _ -> ()
        done;
        match C.Node.mine node ~coinbase_script:(C.Wallet.address miner) () with
        | Ok _ -> ()
        | Error msg -> Alcotest.fail msg
      done;
      let expected = (4 * 50_000) + (blocks * C.Miner.block_reward) in
      C.Utxo.total_amount (C.Node.utxo node) = expected)

(* --- relational encoding --- *)

let test_encoding_paper_constraints () =
  let node, alice, bob = small_node () in
  let effective = C.Utxo.copy (C.Node.utxo node) in
  (match C.Wallet.pay alice ~utxo:effective ~to_:(C.Wallet.address bob)
           ~amount:30_000 ~fee:500 with
  | Ok tx -> (
      match C.Node.submit node tx with
      | Ok () -> ()
      | Error r -> Alcotest.failf "%a" C.Mempool.pp_reject r)
  | Error msg -> Alcotest.fail msg);
  match C.Encode.bcdb_of_node node with
  | Error msg -> Alcotest.fail msg
  | Ok db ->
      Alcotest.(check int) "one pending tx" 1 (Bccore.Bcdb.pending_count db);
      (* The encoded state satisfies the paper's constraints by
         construction, and the pending payment can actually be appended. *)
      let store = Bccore.Tagged_store.create db in
      Alcotest.(check bool) "pending tx appendable" true
        (Bccore.Poss.is_possible_world store (Bcgraph.Bitset.of_list 1 [ 0 ]))

let test_encoding_double_spend_conflict () =
  let node, alice, bob = small_node () in
  let utxo = C.Node.utxo node in
  let tx =
    match
      C.Wallet.pay alice ~utxo ~to_:(C.Wallet.address bob) ~amount:10_000 ~fee:100
    with
    | Ok tx -> tx
    | Error msg -> Alcotest.fail msg
  in
  let cancel =
    match C.Wallet.cancel alice ~utxo ~original:tx ~fee:600 with
    | Ok c -> c
    | Error msg -> Alcotest.fail msg
  in
  let db =
    match
      C.Encode.bcdb_of_txs
        ~confirmed:(C.Chain_state.all_txs (C.Node.chain node))
        ~pending:[ tx; cancel ]
        ~resolver:(C.Chain_state.find_output (C.Node.chain node))
    with
    | Ok db -> db
    | Error msg -> Alcotest.fail msg
  in
  let store = Bccore.Tagged_store.create db in
  let fd = Bccore.Fd_graph.build store in
  (* The double spend is an fd contradiction: TxIn key (prevTxId,
     prevSer). *)
  Alcotest.(check (list (pair int int)))
    "conflict detected" [ (0, 1) ] fd.Bccore.Fd_graph.conflicts;
  Alcotest.(check int) "poss: R, R+tx, R+cancel" 3 (Bccore.Poss.count store)

let test_reorg_invalidates_pending_check () =
  (* The event the paper's uncertainty model is really about: a pending
     transaction passes a DCSat check, then a reorg disconnects the
     confirmed output it spends. The old session keeps answering from
     its snapshot; a fresh encoding of the node shows the pending
     transaction is no longer appendable in any possible world. *)
  let alice = C.Wallet.create ~seed:"alice" in
  let bob = C.Wallet.create ~seed:"bob" in
  let node = C.Node.create ~initial:[ (C.Wallet.address alice, 100_000) ] in
  let chain = C.Node.chain node in
  let genesis_hash = C.Block.hash (List.hd (C.Chain_state.blocks chain)) in
  (* Block A1 confirms Alice's payment; Bob then spends his new coin, and
     that spend sits in the mempool. *)
  (match
     C.Wallet.pay alice ~utxo:(C.Node.utxo node) ~to_:(C.Wallet.address bob)
       ~amount:30_000 ~fee:500
   with
  | Ok tx -> (
      match C.Node.submit node tx with
      | Ok () -> ()
      | Error r -> Alcotest.failf "%a" C.Mempool.pp_reject r)
  | Error msg -> Alcotest.fail msg);
  (match C.Node.mine node ~coinbase_script:(C.Wallet.address alice) () with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  let tx_b =
    match
      C.Wallet.pay bob ~utxo:(C.Node.utxo node) ~to_:(C.Wallet.address alice)
        ~amount:5_000 ~fee:100
    with
    | Ok tx -> tx
    | Error msg -> Alcotest.fail msg
  in
  (match C.Node.submit node tx_b with
  | Ok () -> ()
  | Error r -> Alcotest.failf "%a" C.Mempool.pp_reject r);
  (* DCSat check against the pre-reorg state: the double-spend denial
     constraint is satisfiable-forever, and Bob's pending transaction is
     a possible world. *)
  let pre_db =
    match C.Encode.bcdb_of_node node with
    | Ok db -> db
    | Error msg -> Alcotest.fail msg
  in
  let world0 = Bcgraph.Bitset.of_list 1 [ 0 ] in
  let pre_store = Bccore.Tagged_store.create pre_db in
  Alcotest.(check bool) "pending appendable before reorg" true
    (Bccore.Poss.is_possible_world pre_store world0);
  let q =
    Bcquery.Parser.parse_exn ~catalog:C.Encode.catalog
      "q() :- TxIn(p, s, k1, a1, n1, g1), TxIn(p, s, k2, a2, n2, g2), n1 != n2."
  in
  let session = Bccore.Session.create pre_db in
  (match Bccore.Dcsat.opt ~jobs:2 session q with
  | Ok outcome ->
      Alcotest.(check bool) "no double spend reachable" true
        outcome.Bccore.Dcsat.satisfied
  | Error _ -> Alcotest.fail "opt refused the double-spend query");
  (* Mid-check, the chain reorganizes under the node: an empty rival
     branch of length 2 from genesis orphans block A1 — and with it the
     output tx_b spends. The mempool itself is untouched. *)
  let mk_block height prev tag =
    let coinbase =
      C.Tx.coinbase ~reward:C.Miner.block_reward
        ~script:(C.Script.Pay_to_key ("PKrival" ^ tag))
        ~tag
    in
    match
      C.Block.create ~height ~prev_hash:prev ~timestamp:99 ~txs:[ coinbase ]
    with
    | Ok b -> b
    | Error msg -> Alcotest.fail msg
  in
  let b1 = mk_block 1 genesis_hash "r1" in
  (match C.Chain_state.connect_block chain b1 with
  | Ok C.Chain_state.Side_branch -> ()
  | Ok _ -> Alcotest.fail "rival must start as a side branch"
  | Error msg -> Alcotest.fail msg);
  let b2 = mk_block 2 (C.Block.hash b1) "r2" in
  (match C.Chain_state.connect_block chain b2 with
  | Ok (C.Chain_state.Reorg _) -> ()
  | Ok _ -> Alcotest.fail "expected a reorg"
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check bool) "tx_b still pending in the pool" true
    (C.Mempool.mem (C.Node.mempool node) tx_b.C.Tx.txid);
  (* The pre-reorg session answers from its snapshot, unperturbed. *)
  Alcotest.(check bool) "old snapshot still consistent" true
    (Bccore.Poss.is_possible_world pre_store world0);
  (* A fresh encoding sees the truth: tx_b's TxIn references a TxOut no
     confirmed transaction provides, so the inclusion dependency fails
     in every world containing it — Poss(D) collapses to {R}. *)
  let post_db =
    match C.Encode.bcdb_of_node node with
    | Ok db -> db
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check int) "still one pending tx encoded" 1
    (Bccore.Bcdb.pending_count post_db);
  let post_store = Bccore.Tagged_store.create post_db in
  Alcotest.(check bool) "pending no longer appendable" false
    (Bccore.Poss.is_possible_world post_store world0);
  Alcotest.(check int) "possible worlds collapse to {R}" 1
    (Bccore.Poss.count post_store)

(* Edge: a replacement whose victim has a confirmed descendant. The RBF
   evicts the original *and* its in-pool child; when another peer then
   confirms the original pair, connecting that block must evict the
   replacement everywhere, and a fresh conflict against the now-confirmed
   transaction must bounce with [Unknown_inputs]. *)
let test_rbf_descendant_confirmed () =
  let alice = C.Wallet.create ~seed:"alice" in
  let bob = C.Wallet.create ~seed:"bob" in
  let carol = C.Wallet.create ~seed:"carol" in
  let net =
    C.Network.create ~peers:2 ~initial:[ (C.Wallet.address alice, 100_000) ] ()
  in
  let peer0 = C.Network.peer net 0 in
  let pay ~utxo ~to_ ~amount ~fee =
    match C.Wallet.pay alice ~utxo ~to_ ~amount ~fee with
    | Ok tx -> tx
    | Error msg -> Alcotest.fail msg
  in
  let submit ~at tx =
    match C.Network.submit net ~at tx with
    | Ok () -> ()
    | Error r -> Alcotest.failf "submit: %a" C.Mempool.pp_reject r
  in
  let tx_a =
    pay ~utxo:(C.Node.utxo peer0) ~to_:(C.Wallet.address bob) ~amount:30_000
      ~fee:300
  in
  submit ~at:0 tx_a;
  (* The child spends A's change. *)
  let view = C.Utxo.copy (C.Node.utxo peer0) in
  (match C.Utxo.apply_tx view tx_a with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  let tx_b =
    pay ~utxo:view ~to_:(C.Wallet.address carol) ~amount:20_000 ~fee:300
  in
  submit ~at:0 tx_b;
  ignore (C.Network.deliver net ());
  C.Network.partition net [ 1 ];
  (* Replace A at peer 0: the descendant must go with it. *)
  let tx_a' =
    pay ~utxo:(C.Node.utxo peer0) ~to_:(C.Wallet.address bob) ~amount:30_000
      ~fee:2_000
  in
  submit ~at:0 tx_a';
  Alcotest.(check bool) "A evicted by RBF" false
    (C.Mempool.mem (C.Node.mempool peer0) tx_a.C.Tx.txid);
  Alcotest.(check bool) "descendant B evicted with A" false
    (C.Mempool.mem (C.Node.mempool peer0) tx_b.C.Tx.txid);
  Alcotest.(check (list string))
    "only the replacement pends at peer 0"
    [ tx_a'.C.Tx.txid ]
    (C.Network.mempool_view net 0);
  (* Peer 1 never saw the replacement and confirms the original pair. *)
  (match
     C.Network.mine_at net ~at:1 ~coinbase_script:(C.Script.Pay_to_key "PKm") ()
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  C.Network.heal net;
  ignore (C.Network.deliver net ());
  Alcotest.(check (list string))
    "confirming A evicted the conflicting replacement" []
    (C.Network.mempool_view net 0);
  Alcotest.(check (list string)) "peer 1 pool drained" []
    (C.Network.mempool_view net 1);
  Alcotest.(check bool) "network in sync" true (C.Network.in_sync net);
  Alcotest.(check int) "bob paid exactly once" 30_000
    (C.Wallet.balance bob (C.Node.utxo peer0));
  Alcotest.(check int) "carol paid by the descendant" 20_000
    (C.Wallet.balance carol (C.Node.utxo peer0));
  (* RBF against the now-confirmed A: its inputs are gone from the UTXO
     and from every pool, so the conflict is just an orphan spend. *)
  let prevs =
    List.map
      (fun (i : C.Tx.input) ->
        match C.Chain_state.find_output (C.Node.chain peer0) i.C.Tx.prev with
        | Some o -> (i.C.Tx.prev, o)
        | None -> Alcotest.fail "cannot resolve A's input")
      tx_a.C.Tx.inputs
  in
  let total =
    List.fold_left (fun acc (_, (o : C.Tx.output)) -> acc + o.C.Tx.amount) 0 prevs
  in
  let outputs =
    [ { C.Tx.amount = total - 5_000; script = C.Wallet.address bob } ]
  in
  let inputs =
    match C.Wallet.sign_inputs alice ~prevs ~outputs with
    | Ok inputs -> inputs
    | Error msg -> Alcotest.fail msg
  in
  match C.Network.submit net ~at:0 (C.Tx.create ~inputs ~outputs) with
  | Error (C.Mempool.Unknown_inputs _) -> ()
  | Ok () -> Alcotest.fail "conflict against a confirmed tx must be rejected"
  | Error r -> Alcotest.failf "expected Unknown_inputs, got %a" C.Mempool.pp_reject r

(* Edge: a block that is stashed (arrives before its parent), joins the
   active chain when the parent shows up, and is orphaned again by a
   later reorg. The payment it carried must return to the mempool and
   stay spendable on the winning branch. *)
let test_reorg_reorphans_stashed_block () =
  let alice = C.Wallet.create ~seed:"alice" in
  let bob = C.Wallet.create ~seed:"bob" in
  let net =
    C.Network.create ~peers:1 ~initial:[ (C.Wallet.address alice, 100_000) ] ()
  in
  let node = C.Network.peer net 0 in
  let chain = C.Node.chain node in
  let genesis_hash = C.Chain_state.tip_hash chain in
  let tx =
    match
      C.Wallet.pay alice ~utxo:(C.Node.utxo node) ~to_:(C.Wallet.address bob)
        ~amount:20_000 ~fee:300
    with
    | Ok tx -> tx
    | Error msg -> Alcotest.fail msg
  in
  let mk_block ?(txs = []) ~fees height prev tag =
    let coinbase =
      C.Tx.coinbase
        ~reward:(C.Miner.block_reward + fees)
        ~script:(C.Script.Pay_to_key ("PKrival" ^ tag))
        ~tag
    in
    match
      C.Block.create ~height ~prev_hash:prev ~timestamp:99 ~txs:(coinbase :: txs)
    with
    | Ok b -> b
    | Error msg -> Alcotest.fail msg
  in
  let y1 = mk_block ~fees:0 1 genesis_hash "y1" in
  let y2 = mk_block ~txs:[ tx ] ~fees:300 2 (C.Block.hash y1) "y2" in
  (* The tip of the rival branch arrives before its parent: stashed. *)
  C.Network.inject_block net ~at:0 y2;
  Alcotest.(check int) "stashed block leaves the tip alone" 0
    (C.Chain_state.height chain);
  (* The peer mines its own block meanwhile. *)
  let x1 =
    match
      C.Network.mine_at net ~at:0 ~coinbase_script:(C.Wallet.address alice) ()
    with
    | Ok b -> b
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check int) "local branch first" 1 (C.Chain_state.height chain);
  (* The missing parent arrives: the stashed tip follows it in and the
     rival branch takes over. *)
  C.Network.inject_block net ~at:0 y1;
  Alcotest.(check int) "unstashed branch reorged in" 2
    (C.Chain_state.height chain);
  Alcotest.(check string) "tip is the once-stashed block"
    (C.Block.hash y2)
    (C.Chain_state.tip_hash chain);
  Alcotest.(check int) "payment confirmed on the rival branch" 20_000
    (C.Wallet.balance bob (C.Node.utxo node));
  (* A longer branch now grows on the orphaned local block — its tip
     again arriving out of order. *)
  let x2 = mk_block ~fees:0 2 (C.Block.hash x1) "x2" in
  let x3 = mk_block ~fees:0 3 (C.Block.hash x2) "x3" in
  C.Network.inject_block net ~at:0 x3;
  Alcotest.(check int) "second stash leaves the tip alone" 2
    (C.Chain_state.height chain);
  C.Network.inject_block net ~at:0 x2;
  Alcotest.(check int) "longest branch wins the second reorg" 3
    (C.Chain_state.height chain);
  Alcotest.(check string) "tip is the second stashed block"
    (C.Block.hash x3)
    (C.Chain_state.tip_hash chain);
  (* The once-stashed, once-active block is an orphan again; its payment
     is back in the pool and still valid on the winning branch. *)
  Alcotest.(check bool) "payment returned to the pool" true
    (C.Mempool.mem (C.Node.mempool node) tx.C.Tx.txid);
  Alcotest.(check int) "payment no longer confirmed" 0
    (C.Wallet.balance bob (C.Node.utxo node));
  Alcotest.(check bool) "single peer trivially in sync" true
    (C.Network.in_sync net);
  (match
     C.Network.mine_at net ~at:0 ~coinbase_script:(C.Script.Pay_to_key "PKm") ()
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "returned payment mined again" 20_000
    (C.Wallet.balance bob (C.Node.utxo node));
  Alcotest.(check (list string)) "pool drained" [] (C.Network.mempool_view net 0)

let () =
  Alcotest.run "chain"
    [
      ( "crypto-scripts",
        [
          Alcotest.test_case "crypto" `Quick test_crypto;
          Alcotest.test_case "scripts" `Quick test_scripts;
          Alcotest.test_case "timelock script" `Quick test_timelock_script;
          Alcotest.test_case "timelock on chain" `Quick test_timelock_on_chain;
        ] );
      ( "payments",
        [
          Alcotest.test_case "pay and mine" `Quick test_pay_and_mine;
          Alcotest.test_case "insufficient" `Quick test_insufficient_funds;
          Alcotest.test_case "rbf" `Quick test_conflict_rejected_then_rbf;
          Alcotest.test_case "chained mempool" `Quick test_mempool_chaining_and_eviction;
          Alcotest.test_case "rbf evicts descendants" `Quick
            test_rbf_evicts_descendants;
          Alcotest.test_case "confirm evicts conflict" `Quick
            test_confirm_block_evicts_conflict;
          Alcotest.test_case "cancel/bump" `Quick test_wallet_cancel_conflicts;
        ] );
      ( "blocks",
        [
          Alcotest.test_case "validation" `Quick test_block_validation;
          Alcotest.test_case "reorg" `Quick test_reorg;
          Alcotest.test_case "network fork race" `Quick test_network_fork_race;
          Alcotest.test_case "rbf vs confirmed descendant" `Quick
            test_rbf_descendant_confirmed;
          Alcotest.test_case "reorg re-orphans stashed block" `Quick
            test_reorg_reorphans_stashed_block;
          QCheck_alcotest.to_alcotest conservation_prop;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "constraints hold" `Quick test_encoding_paper_constraints;
          Alcotest.test_case "double spend = fd conflict" `Quick
            test_encoding_double_spend_conflict;
          Alcotest.test_case "reorg invalidates pending check" `Quick
            test_reorg_invalidates_pending_check;
        ] );
    ]
