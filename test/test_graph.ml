(* Graph substrate: bitsets, union-find, components, Bron–Kerbosch. *)

module G = Bcgraph

let test_bitset_basics () =
  let b = G.Bitset.create 10 in
  Alcotest.(check bool) "empty" true (G.Bitset.is_empty b);
  G.Bitset.add b 3;
  G.Bitset.add b 7;
  G.Bitset.add b 3;
  Alcotest.(check int) "cardinal" 2 (G.Bitset.cardinal b);
  Alcotest.(check (list int)) "to_list" [ 3; 7 ] (G.Bitset.to_list b);
  G.Bitset.remove b 3;
  Alcotest.(check bool) "mem after remove" false (G.Bitset.mem b 3);
  Alcotest.(check (option int)) "choose" (Some 7) (G.Bitset.choose_opt b)

let bitset_ops_prop =
  QCheck.Test.make ~name:"bitset ops agree with list ops" ~count:200
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_bound 20) (int_bound 30))
        (list_of_size (QCheck.Gen.int_bound 20) (int_bound 30)))
    (fun (xs, ys) ->
      let a = G.Bitset.of_list 31 xs and b = G.Bitset.of_list 31 ys in
      let sx = List.sort_uniq compare xs and sy = List.sort_uniq compare ys in
      let expect_inter = List.filter (fun x -> List.mem x sy) sx in
      let expect_union = List.sort_uniq compare (sx @ sy) in
      let expect_diff = List.filter (fun x -> not (List.mem x sy)) sx in
      G.Bitset.to_list (G.Bitset.inter a b) = expect_inter
      && G.Bitset.to_list (G.Bitset.union a b) = expect_union
      && G.Bitset.to_list (G.Bitset.diff a b) = expect_diff
      && G.Bitset.subset (G.Bitset.inter a b) a
      && G.Bitset.cardinal a = List.length sx)

let test_union_find () =
  let uf = G.Union_find.create 6 in
  G.Union_find.union uf 0 1;
  G.Union_find.union uf 1 2;
  G.Union_find.union uf 4 5;
  Alcotest.(check bool) "same component" true (G.Union_find.same uf 0 2);
  Alcotest.(check bool) "different" false (G.Union_find.same uf 0 4);
  Alcotest.(check (list (list int)))
    "groups"
    [ [ 0; 1; 2 ]; [ 3 ]; [ 4; 5 ] ]
    (G.Union_find.groups uf)

let test_undirected () =
  let g = G.Undirected.create 5 in
  G.Undirected.add_edge g 0 1;
  G.Undirected.add_edge g 1 2;
  G.Undirected.add_edge g 0 0;
  Alcotest.(check bool) "edge" true (G.Undirected.connected g 0 1);
  Alcotest.(check bool) "symmetric" true (G.Undirected.connected g 1 0);
  Alcotest.(check bool) "self loop ignored" false (G.Undirected.connected g 0 0);
  Alcotest.(check int) "edge count" 2 (G.Undirected.edge_count g);
  Alcotest.(check (list int)) "neighbours" [ 0; 2 ] (G.Undirected.neighbours g 1);
  G.Undirected.remove_edge g 0 1;
  Alcotest.(check bool) "removed" false (G.Undirected.connected g 0 1)

let test_components () =
  let g = G.Undirected.create 6 in
  G.Undirected.add_edge g 0 1;
  G.Undirected.add_edge g 2 3;
  G.Undirected.add_edge g 3 4;
  Alcotest.(check (list (list int)))
    "components"
    [ [ 0; 1 ]; [ 2; 3; 4 ]; [ 5 ] ]
    (G.Components.of_graph g);
  Alcotest.(check (list int)) "bfs component" [ 2; 3; 4 ]
    (G.Components.component_of g 3)

let test_bron_kerbosch_known () =
  (* Classic example: two triangles sharing an edge plus a pendant. *)
  let g = G.Undirected.create 5 in
  List.iter
    (fun (i, j) -> G.Undirected.add_edge g i j)
    [ (0, 1); (0, 2); (1, 2); (1, 3); (2, 3); (3, 4) ];
  let cliques = List.sort compare (G.Bron_kerbosch.maximal_cliques g) in
  Alcotest.(check (list (list int)))
    "maximal cliques"
    [ [ 0; 1; 2 ]; [ 1; 2; 3 ]; [ 3; 4 ] ]
    cliques

let test_bron_kerbosch_extremes () =
  let empty = G.Undirected.create 4 in
  Alcotest.(check (list (list int)))
    "edgeless graph: singletons"
    [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ]
    (List.sort compare (G.Bron_kerbosch.maximal_cliques empty));
  let complete = G.Undirected.complement empty in
  Alcotest.(check (list (list int)))
    "complete graph: one clique"
    [ [ 0; 1; 2; 3 ] ]
    (G.Bron_kerbosch.maximal_cliques complete);
  let zero = G.Undirected.create 0 in
  Alcotest.(check int) "empty graph" 0 (G.Bron_kerbosch.count_maximal_cliques zero)

let test_early_stop () =
  let g = G.Undirected.create 8 in
  let seen = ref 0 in
  G.Bron_kerbosch.iter_maximal_cliques g (fun _ ->
      incr seen;
      if !seen >= 3 then `Stop else `Continue);
  Alcotest.(check int) "stopped after three" 3 !seen

(* Reference implementation: a set is a maximal clique iff it is a clique
   and no outside vertex extends it. *)
let brute_cliques g =
  let n = G.Undirected.node_count g in
  let nodes = List.init n Fun.id in
  let subsets =
    List.fold_left
      (fun acc v -> acc @ List.map (fun s -> v :: s) acc)
      [ [] ] nodes
    |> List.map (List.sort compare)
  in
  let is_clique s =
    List.for_all
      (fun i -> List.for_all (fun j -> i = j || G.Undirected.connected g i j) s)
      s
  in
  let maximal s =
    is_clique s && s <> []
    && List.for_all
         (fun v -> List.mem v s || not (is_clique (List.sort compare (v :: s))))
         nodes
  in
  List.filter maximal subsets |> List.sort_uniq compare

(* The resumable generator must emit the same cliques, in the same
   order, as iter_maximal_cliques — the engine's jobs:1 determinism
   guarantee rests on this. *)
let generator_matches_iter =
  QCheck.Test.make ~name:"clique generator = iterator, same order" ~count:80
    QCheck.(
      pair (int_range 1 9) (list_of_size (QCheck.Gen.int_bound 24) (pair (int_bound 8) (int_bound 8))))
    (fun (n, edges) ->
      let g = G.Undirected.create n in
      List.iter
        (fun (i, j) ->
          if i < n && j < n && i <> j then G.Undirected.add_edge g i j)
        edges;
      let via_iter = ref [] in
      G.Bron_kerbosch.iter_maximal_cliques g (fun c ->
          via_iter := c :: !via_iter;
          `Continue);
      let next = G.Bron_kerbosch.generator g in
      let rec drain acc =
        match next () with Some c -> drain (c :: acc) | None -> acc
      in
      drain [] = !via_iter && next () = None)

let bk_matches_brute =
  QCheck.Test.make ~name:"Bron–Kerbosch = brute force (n <= 8)" ~count:80
    QCheck.(
      pair (int_range 1 8) (list_of_size (QCheck.Gen.int_bound 20) (pair (int_bound 7) (int_bound 7))))
    (fun (n, edges) ->
      let g = G.Undirected.create n in
      List.iter
        (fun (i, j) ->
          if i < n && j < n && i <> j then G.Undirected.add_edge g i j)
        edges;
      List.sort compare (G.Bron_kerbosch.maximal_cliques g) = brute_cliques g)

let induced_preserves_edges =
  QCheck.Test.make ~name:"induced subgraph preserves adjacency" ~count:80
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_bound 15) (pair (int_bound 9) (int_bound 9)))
        (list_of_size (QCheck.Gen.int_bound 6) (int_bound 9)))
    (fun (edges, nodes) ->
      let g = G.Undirected.create 10 in
      List.iter
        (fun (i, j) -> if i <> j then G.Undirected.add_edge g i j)
        edges;
      let nodes = List.sort_uniq compare nodes in
      let sub, back = G.Undirected.induced g nodes in
      let n = G.Undirected.node_count sub in
      let ok = ref (n = List.length nodes) in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if a <> b then
            ok :=
              !ok
              && G.Undirected.connected sub a b
                 = G.Undirected.connected g back.(a) back.(b)
        done
      done;
      !ok)

let () =
  Alcotest.run "graph"
    [
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          QCheck_alcotest.to_alcotest bitset_ops_prop;
        ] );
      ( "union-find",
        [ Alcotest.test_case "groups" `Quick test_union_find ] );
      ( "undirected",
        [
          Alcotest.test_case "edges" `Quick test_undirected;
          Alcotest.test_case "components" `Quick test_components;
          QCheck_alcotest.to_alcotest induced_preserves_edges;
        ] );
      ( "bron-kerbosch",
        [
          Alcotest.test_case "known graph" `Quick test_bron_kerbosch_known;
          Alcotest.test_case "extremes" `Quick test_bron_kerbosch_extremes;
          Alcotest.test_case "early stop" `Quick test_early_stop;
          QCheck_alcotest.to_alcotest bk_matches_brute;
          QCheck_alcotest.to_alcotest generator_matches_iter;
        ] );
    ]
