(* Scenario differential harness: every named scenario instance must
   produce its scripted verdict under every solver (auto dispatch,
   NaiveDCSat, OptDCSat, brute force), at jobs 1 and 4, across the
   delta / native / steal evaluation toggles. The qcheck generator is
   fuzzed at fixed, replayable seeds against a solver-vs-brute-force
   oracle, and the shrinker is shown to minimize an injected failing
   trace to a single zeroed payment step.

   CI runs this file once per BCDB_TEST_JOBS x BCDB_BK_STEAL matrix
   cell; the explicit jobs list below keeps both parallelism levels
   covered even in a single run. *)

module S = Scenario
module G = Scenario.Trace_gen

let jobs_env =
  match Sys.getenv_opt "BCDB_TEST_JOBS" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 1)
  | None -> 1

let jobs_list = if List.mem jobs_env [ 1; 4 ] then [ 1; 4 ] else [ 1; 4; jobs_env ]

(* (use_delta, use_native, use_steal) *)
let toggles =
  [
    (false, false, false);
    (true, false, false);
    (false, true, false);
    (false, false, true);
    (true, true, true);
  ]

let engines = [ S.Auto; S.Naive; S.Opt; S.Brute ]

let test_differential () =
  List.iter
    (fun (inst : S.t) ->
      match S.compile inst with
      | Error msg -> Alcotest.failf "%s: compile: %s" inst.S.name msg
      | Ok compiled ->
          List.iter
            (fun engine ->
              List.iter
                (fun (use_delta, use_native, use_steal) ->
                  List.iter
                    (fun jobs ->
                      match
                        S.solve_compiled ~engine ~jobs ~use_delta ~use_native
                          ~use_steal inst compiled
                      with
                      | Error msg -> (
                          (* A specialized solver may refuse a query
                             outside its fragment (OptDCSat and
                             aggregates, say); a refusal from the auto
                             dispatcher or brute force is a bug. *)
                          match engine with
                          | S.Naive | S.Opt -> ()
                          | S.Auto | S.Brute ->
                              Alcotest.failf "%s [%s]: %s" inst.S.name
                                (S.engine_name engine) msg)
                      | Ok solved -> (
                          match solved.S.check with
                          | Ok () -> ()
                          | Error msg ->
                              Alcotest.failf
                                "%s [%s jobs=%d delta=%b native=%b steal=%b]: \
                                 %s"
                                inst.S.name (S.engine_name engine) jobs
                                use_delta use_native use_steal msg))
                    jobs_list)
                toggles)
            engines)
    (Scenarios.Catalog.instances ())

let test_catalog_shape () =
  Alcotest.(check int) "five families" 5 (List.length Scenarios.Catalog.all);
  List.iter
    (fun (f : S.family) ->
      Alcotest.(check bool)
        (f.S.base.S.name ^ " has at least two variants")
        true
        (List.length f.S.variants >= 2))
    Scenarios.Catalog.all;
  let names = Scenarios.Catalog.names () in
  Alcotest.(check int)
    "instance names unique"
    (List.length names)
    (List.length (List.sort_uniq compare names))

(* Replayable fuzz seeds: each seed drives a full generate/run/solve
   round against the brute-force oracle. A regression found by any
   future run is reproduced by adding its seed here. *)
let regression_seeds = [ 42; 4242; 99731 ]

let fuzz_cases_per_seed = 12

let fuzz_cell ~jobs =
  QCheck.Test.make_cell ~count:fuzz_cases_per_seed ~name:"trace differential"
    G.arbitrary (fun script ->
      match G.differential ~jobs script with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

let test_fuzz_differential () =
  List.iter
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      match
        QCheck.TestResult.get_state
          (QCheck.Test.check_cell ~rand (fuzz_cell ~jobs:jobs_env))
      with
      | QCheck.TestResult.Success -> ()
      | QCheck.TestResult.Failed { instances = c :: _ } ->
          Alcotest.failf "seed %d: differential failure on minimized trace:\n%s"
            seed (G.print c.QCheck.TestResult.instance)
      | QCheck.TestResult.Failed { instances = [] } ->
          Alcotest.failf "seed %d: differential failure (no instance)" seed
      | QCheck.TestResult.Failed_other { msg } ->
          Alcotest.failf "seed %d: %s" seed msg
      | QCheck.TestResult.Error { exn; _ } ->
          Alcotest.failf "seed %d: raised %s" seed (Printexc.to_string exn))
    regression_seeds

(* Inject a failure ("no trace ever pays anyone") and check the shrinker
   drives the counterexample down to the canonical minimum: exactly one
   choice, a payment with both shrinkable fields at zero. *)
let test_shrinker_minimizes () =
  let cell =
    QCheck.Test.make_cell ~count:50 ~name:"injected failure" G.arbitrary
      (fun script ->
        not (List.exists (function G.Pay _ -> true | _ -> false) script))
  in
  match
    QCheck.TestResult.get_state
      (QCheck.Test.check_cell ~rand:(Random.State.make [| 7 |]) cell)
  with
  | QCheck.TestResult.Failed { instances = c :: _ } -> (
      Alcotest.(check bool)
        "shrinking actually happened" true
        (c.QCheck.TestResult.shrink_steps > 0);
      match c.QCheck.TestResult.instance with
      | [ G.Pay { amount; fee; _ } ] ->
          Alcotest.(check int) "amount shrunk to zero" 0 amount;
          Alcotest.(check int) "fee shrunk to zero" 0 fee
      | other ->
          Alcotest.failf "not minimized to a single payment: %s"
            (G.print other))
  | _ -> Alcotest.fail "the injected failure did not fail"

(* A minimized script must survive reassembly and interpretation — the
   totality contract that makes shrinking sound. *)
let test_assemble_total () =
  let scripts =
    [
      [];
      [ G.Double { of_ = 3; to_ = 1; fee = 0 } ];
      [ G.Bump { of_ = 0; add_fee = 0 } ];
      [ G.Cancel { of_ = 9; fee = 0 } ];
      [ G.Join; G.Split; G.Join; G.Mine 5; G.Slot ];
      [
        G.Pay { from_ = 0; to_ = 0; amount = 0; fee = 0 };
        G.Split;
        G.Double { of_ = 0; to_ = 2; fee = 800 };
        G.Mine 1;
        G.Join;
      ];
    ]
  in
  List.iter
    (fun script ->
      match S.Interp.run (G.assemble script) with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "script not total: %s\n%s" msg (G.print script))
    scripts

let () =
  Alcotest.run "scenario"
    [
      ( "catalog",
        [
          Alcotest.test_case "shape" `Quick test_catalog_shape;
          Alcotest.test_case "differential verdicts" `Quick test_differential;
        ] );
      ( "generator",
        [
          Alcotest.test_case "assemble is total" `Quick test_assemble_total;
          Alcotest.test_case "fuzz differential (fixed seeds)" `Quick
            test_fuzz_differential;
          Alcotest.test_case "shrinker minimizes injected failure" `Quick
            test_shrinker_minimizes;
        ] );
    ]
