(* Gossip network: convergence, partitions, and the footnote-6 scenario -
   two honest nodes answering the same denial constraint differently
   because their mempools diverge. *)

module C = Chain
module Q = Bcquery
module Core = Bccore

let wallets n = Array.init n (fun i -> C.Wallet.create ~seed:(Printf.sprintf "nw%d" i))

let make_network peers =
  let ws = wallets 3 in
  let initial =
    Array.to_list ws
    |> List.concat_map (fun w ->
           List.init 4 (fun _ -> (C.Wallet.address w, 100_000)))
  in
  (C.Network.create ~peers ~initial (), ws)

let pay net ws ~at ~from ~to_ ~amount ~fee =
  let utxo = C.Node.utxo (C.Network.peer net at) in
  match C.Wallet.pay ws.(from) ~utxo ~to_:(C.Wallet.address ws.(to_)) ~amount ~fee with
  | Ok tx -> (
      match C.Network.submit net ~at tx with
      | Ok () -> tx
      | Error r -> Alcotest.failf "submit: %a" C.Mempool.pp_reject r)
  | Error msg -> Alcotest.fail msg

let test_tx_gossip () =
  let net, ws = make_network 4 in
  let tx = pay net ws ~at:0 ~from:0 ~to_:1 ~amount:5_000 ~fee:100 in
  Alcotest.(check bool) "not yet at peer 3" false
    (C.Mempool.mem (C.Node.mempool (C.Network.peer net 3)) tx.C.Tx.txid);
  ignore (C.Network.deliver net ());
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "peer %d has the tx" i)
      true
      (C.Mempool.mem (C.Node.mempool (C.Network.peer net i)) tx.C.Tx.txid)
  done;
  Alcotest.(check bool) "network in sync" true (C.Network.in_sync net)

let test_block_gossip_and_confirmation () =
  let net, ws = make_network 3 in
  let tx = pay net ws ~at:0 ~from:0 ~to_:1 ~amount:5_000 ~fee:100 in
  ignore (C.Network.deliver net ());
  (match C.Network.mine_at net ~at:1 ~coinbase_script:(C.Wallet.address ws.(2)) () with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  ignore (C.Network.deliver net ());
  for i = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "peer %d height" i)
      1
      (C.Chain_state.height (C.Node.chain (C.Network.peer net i)));
    Alcotest.(check bool)
      (Printf.sprintf "peer %d dropped the confirmed tx" i)
      false
      (C.Mempool.mem (C.Node.mempool (C.Network.peer net i)) tx.C.Tx.txid)
  done;
  Alcotest.(check bool) "in sync" true (C.Network.in_sync net)

let test_orphan_catchup () =
  let net, ws = make_network 3 in
  (* Peer 2 misses two blocks (partitioned), then receives them out of
     order through heal; the orphan stash must connect both. *)
  C.Network.partition net [ 2 ];
  ignore (pay net ws ~at:0 ~from:0 ~to_:1 ~amount:4_000 ~fee:100);
  ignore (C.Network.deliver net ());
  (match C.Network.mine_at net ~at:0 ~coinbase_script:(C.Wallet.address ws.(0)) () with
  | Ok _ -> () | Error msg -> Alcotest.fail msg);
  ignore (pay net ws ~at:0 ~from:1 ~to_:2 ~amount:3_000 ~fee:100);
  ignore (C.Network.deliver net ());
  (match C.Network.mine_at net ~at:0 ~coinbase_script:(C.Wallet.address ws.(0)) () with
  | Ok _ -> () | Error msg -> Alcotest.fail msg);
  ignore (C.Network.deliver net ());
  Alcotest.(check int) "peer 2 still at genesis" 0
    (C.Chain_state.height (C.Node.chain (C.Network.peer net 2)));
  C.Network.heal net;
  ignore (C.Network.deliver net ());
  Alcotest.(check int) "peer 2 caught up" 2
    (C.Chain_state.height (C.Node.chain (C.Network.peer net 2)));
  Alcotest.(check bool) "in sync" true (C.Network.in_sync net)

(* Footnote 6: divergent mempools mean divergent denial-constraint
   answers. *)
let test_divergent_dcsat () =
  let net, ws = make_network 2 in
  let receiver_pk = C.Wallet.public_key ws.(1) in
  C.Network.partition net [ 1 ];
  (* Issued at peer 0 while peer 1 is cut off. *)
  ignore (pay net ws ~at:0 ~from:0 ~to_:1 ~amount:7_777 ~fee:150);
  ignore (C.Network.deliver net ());
  let constraint_of_peer i =
    let db = Result.get_ok (C.Encode.bcdb_of_node (C.Network.peer net i)) in
    let q =
      Q.Parser.parse_exn ~catalog:C.Encode.catalog
        (Printf.sprintf {| q() :- TxOut(t, s, "%s", a), a = 7777. |} receiver_pk)
    in
    match Core.Solver.solve (Core.Session.create db) q with
    | Ok (o, _) -> o.Core.Dcsat.satisfied
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check bool) "peer 0 sees the risk" false (constraint_of_peer 0);
  Alcotest.(check bool) "peer 1 believes it is safe" true (constraint_of_peer 1);
  (* After healing, the answers agree. *)
  C.Network.heal net;
  ignore (C.Network.deliver net ());
  Alcotest.(check bool) "peer 1 now agrees" false (constraint_of_peer 1);
  Alcotest.(check bool) "views converged" true (C.Network.in_sync net)

let test_conflict_resolution_per_peer () =
  let net, ws = make_network 2 in
  (* Two conflicting spends submitted on opposite sides of a partition:
     each peer accepts its own; after heal, the gossiped duplicate is
     rejected as a low-fee conflict (or replaces, if it pays enough). *)
  C.Network.partition net [ 1 ];
  let utxo0 = C.Node.utxo (C.Network.peer net 0) in
  let coins = C.Wallet.utxos ws.(0) utxo0 in
  let coin = List.hd coins in
  let sign outputs =
    match C.Wallet.sign_inputs ws.(0) ~prevs:[ coin ] ~outputs with
    | Ok inputs -> C.Tx.create ~inputs ~outputs
    | Error msg -> Alcotest.fail msg
  in
  let tx_a =
    sign [ { C.Tx.amount = (snd coin).C.Tx.amount - 100; script = C.Wallet.address ws.(1) } ]
  in
  let tx_b =
    sign [ { C.Tx.amount = (snd coin).C.Tx.amount - 150; script = C.Wallet.address ws.(2) } ]
  in
  (match C.Network.submit net ~at:0 tx_a with
  | Ok () -> () | Error r -> Alcotest.failf "a: %a" C.Mempool.pp_reject r);
  (match C.Network.submit net ~at:1 tx_b with
  | Ok () -> () | Error r -> Alcotest.failf "b: %a" C.Mempool.pp_reject r);
  ignore (C.Network.deliver net ());
  Alcotest.(check bool) "conflict" true (C.Tx.conflicts tx_a tx_b);
  C.Network.heal net;
  ignore (C.Network.deliver net ());
  (* Each peer holds exactly one of the two (whichever its RBF policy
     kept) - never both. *)
  for i = 0 to 1 do
    let pool = C.Node.mempool (C.Network.peer net i) in
    let has_a = C.Mempool.mem pool tx_a.C.Tx.txid in
    let has_b = C.Mempool.mem pool tx_b.C.Tx.txid in
    Alcotest.(check bool)
      (Printf.sprintf "peer %d holds exactly one" i)
      true
      ((has_a || has_b) && not (has_a && has_b))
  done

(* Two fork blocks share a missing parent: the orphan stash must hold
   both children (a single-slot stash silently loses one) and connect
   both once the parent arrives — one extends the chain, the other
   becomes a side branch. *)
let test_two_orphans_same_parent () =
  let net, ws = make_network 3 in
  (* Isolate peer 2 for the whole scenario. *)
  C.Network.partition net [ 2 ];
  let mine at script =
    match C.Network.mine_at net ~at ~coinbase_script:script () with
    | Ok b -> b
    | Error msg -> Alcotest.fail msg
  in
  ignore (pay net ws ~at:0 ~from:0 ~to_:1 ~amount:4_000 ~fee:100);
  ignore (C.Network.deliver net ());
  let parent = mine 0 (C.Wallet.address ws.(0)) in
  ignore (C.Network.deliver net ());
  (* Now split peers 0 and 1; each mines its own child of [parent]. *)
  C.Network.partition net [ 1 ];
  ignore (pay net ws ~at:0 ~from:0 ~to_:2 ~amount:2_000 ~fee:100);
  let child_a = mine 0 (C.Wallet.address ws.(0)) in
  ignore (pay net ws ~at:1 ~from:1 ~to_:0 ~amount:1_500 ~fee:100);
  let child_b = mine 1 (C.Wallet.address ws.(1)) in
  Alcotest.(check bool) "forks differ" false
    (String.equal (C.Block.hash child_a) (C.Block.hash child_b));
  (* Peer 2 hears about both children before their parent. *)
  C.Network.inject_block net ~at:2 child_a;
  C.Network.inject_block net ~at:2 child_b;
  Alcotest.(check int) "children stashed, chain unmoved" 0
    (C.Chain_state.height (C.Node.chain (C.Network.peer net 2)));
  C.Network.inject_block net ~at:2 parent;
  let chain2 = C.Node.chain (C.Network.peer net 2) in
  Alcotest.(check int) "parent plus one child extend" 2
    (C.Chain_state.height chain2);
  (* genesis + parent + both fork children: losing a stashed child
     would leave only 3. *)
  Alcotest.(check int) "both children connected" 4
    (C.Chain_state.block_count chain2)

(* A stashed orphan is in-flight state: a network holding one must not
   report itself in sync even while every tip and mempool agrees. *)
let test_in_sync_sees_orphans () =
  let net, _ = make_network 1 in
  Alcotest.(check bool) "fresh net in sync" true (C.Network.in_sync net);
  (* A second network with the same initial allocation shares the
     deterministic genesis, so its blocks connect over here. *)
  let donor, dws = make_network 1 in
  let mine () =
    match
      C.Network.mine_at donor ~at:0 ~coinbase_script:(C.Wallet.address dws.(0))
        ()
    with
    | Ok b -> b
    | Error msg -> Alcotest.fail msg
  in
  let x1 = mine () in
  let x2 = mine () in
  C.Network.inject_block net ~at:0 x2;
  Alcotest.(check int) "x2 is an orphan" 0
    (C.Chain_state.height (C.Node.chain (C.Network.peer net 0)));
  Alcotest.(check bool) "orphan blocks sync" false (C.Network.in_sync net);
  C.Network.inject_block net ~at:0 x1;
  Alcotest.(check int) "both connected" 2
    (C.Chain_state.height (C.Node.chain (C.Network.peer net 0)));
  Alcotest.(check bool) "in sync again" true (C.Network.in_sync net)

(* Partitioning drops the traffic already crossing the cut — it must
   not be delivered when links are restored, only re-announcement can
   repair the gap. *)
let test_partition_drops_in_flight () =
  let net, ws = make_network 2 in
  let tx = pay net ws ~at:0 ~from:0 ~to_:1 ~amount:5_000 ~fee:100 in
  (* The tx is queued toward peer 1 but not yet delivered. *)
  C.Network.partition net [ 1 ];
  ignore (C.Network.deliver net ());
  Alcotest.(check bool) "queued tx was dropped by the cut" false
    (C.Mempool.mem (C.Node.mempool (C.Network.peer net 1)) tx.C.Tx.txid);
  Alcotest.(check bool) "views diverged" false (C.Network.in_sync net);
  C.Network.heal net;
  ignore (C.Network.deliver net ());
  Alcotest.(check bool) "re-announcement repairs the gap" true
    (C.Mempool.mem (C.Node.mempool (C.Network.peer net 1)) tx.C.Tx.txid);
  Alcotest.(check bool) "in sync after heal" true (C.Network.in_sync net)

(* --- lossy links: seeded fault schedules still converge --- *)

(* CI pins BCDB_FAULT_SEED to run the same schedule matrix on every
   push; locally the qcheck generator explores fresh seeds. *)
let fault_seed_base =
  match Sys.getenv_opt "BCDB_FAULT_SEED" with
  | Some s -> ( try int_of_string s with _ -> 0)
  | None -> 0

let lossy_network seed =
  let ws = wallets 3 in
  let initial =
    Array.to_list ws
    |> List.concat_map (fun w ->
           List.init 4 (fun _ -> (C.Wallet.address w, 100_000)))
  in
  let faults =
    C.Link_model.create ~drop:0.15 ~duplicate:0.1 ~reorder:0.1 ~delay:0.1
      ~max_delay:2 ~seed ()
  in
  (C.Network.create ~faults ~peers:3 ~initial (), ws)

(* Sends, mines, and a partition/heal cycle under per-message faults:
   every honest peer must reach the same tip and mempool once the
   convergence driver's re-announcements push the lost traffic
   through. *)
let lossy_schedule_converges seed =
  let net, ws = lossy_network seed in
  let converged () =
    match C.Network.converge ~max_rounds:500 net with
    | Some _ -> C.Network.in_sync net
    | None -> false
  in
  ignore (pay net ws ~at:0 ~from:0 ~to_:1 ~amount:5_000 ~fee:100);
  if not (converged ()) then Alcotest.failf "seed %d: tx gossip stalled" seed;
  (match C.Network.mine_at net ~at:0 ~coinbase_script:(C.Wallet.address ws.(0)) () with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  if not (converged ()) then Alcotest.failf "seed %d: block gossip stalled" seed;
  ignore (pay net ws ~at:1 ~from:1 ~to_:2 ~amount:2_500 ~fee:100);
  C.Network.partition net [ 2 ];
  (match C.Network.mine_at net ~at:1 ~coinbase_script:(C.Wallet.address ws.(1)) () with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  C.Network.heal net;
  if not (converged ()) then
    Alcotest.failf "seed %d: post-heal convergence stalled" seed;
  true

let test_lossy_convergence_qcheck =
  QCheck.Test.make ~count:8 ~name:"seeded lossy schedules converge"
    QCheck.small_nat
    (fun n -> lossy_schedule_converges (fault_seed_base + (n * 7919)))

let test_lossy_convergence_pinned () =
  (* The exact seed CI pins, exercised deterministically. *)
  Alcotest.(check bool) "pinned seed converges" true
    (lossy_schedule_converges fault_seed_base)

(* Regression pin: [in_sync] must count delayed traffic as in flight.
   Under a delay-only fault model, whenever [in_sync] reports true a
   delivery round must find nothing to do — a true verdict with
   messages still ticking down in the delay queue would let a caller
   treat a transient view as converged (and a live feed snapshot it). *)
let in_sync_never_hides_delayed_traffic seed =
  let faults =
    C.Link_model.create ~delay:0.5 ~max_delay:3 ~seed ()
  in
  let ws = wallets 3 in
  let initial =
    Array.to_list ws
    |> List.concat_map (fun w ->
           List.init 4 (fun _ -> (C.Wallet.address w, 100_000)))
  in
  let net = C.Network.create ~faults ~peers:3 ~initial () in
  let rng = Random.State.make [| seed |] in
  let quiesced_is_stable step =
    if C.Network.in_sync net then begin
      let processed = C.Network.deliver net () in
      if processed <> 0 then
        Alcotest.failf
          "seed %d step %d: in_sync with %d delayed messages still in flight"
          seed step processed
    end
    else ignore (C.Network.deliver net ())
  in
  for step = 1 to 8 do
    let at = Random.State.int rng 3 in
    (try ignore (pay net ws ~at ~from:at ~to_:((at + 1) mod 3) ~amount:(500 + Random.State.int rng 2_000) ~fee:100)
     with _ -> () (* a drained wallet is fine; the traffic is the point *));
    if step mod 3 = 0 then
      ignore
        (C.Network.mine_at net ~at ~coinbase_script:(C.Wallet.address ws.(at)) ());
    quiesced_is_stable step
  done;
  (match C.Network.converge ~max_rounds:500 net with
  | Some _ -> ()
  | None -> Alcotest.failf "seed %d: delay-only schedule failed to converge" seed);
  Alcotest.(check bool) "converged in sync" true (C.Network.in_sync net);
  Alcotest.(check int) "no residual traffic after convergence" 0
    (C.Network.deliver net ())

let test_in_sync_vs_delayed_pinned () =
  in_sync_never_hides_delayed_traffic 424242

let test_in_sync_vs_delayed_qcheck =
  QCheck.Test.make ~count:10 ~name:"in_sync counts delayed traffic"
    QCheck.small_nat
    (fun n ->
      in_sync_never_hides_delayed_traffic (424242 + (n * 104729));
      true)

let () =
  Alcotest.run "network"
    [
      ( "gossip",
        [
          Alcotest.test_case "tx propagation" `Quick test_tx_gossip;
          Alcotest.test_case "block confirmation" `Quick
            test_block_gossip_and_confirmation;
          Alcotest.test_case "orphan catch-up" `Quick test_orphan_catchup;
          Alcotest.test_case "two orphans, one parent" `Quick
            test_two_orphans_same_parent;
          Alcotest.test_case "in_sync sees orphans" `Quick
            test_in_sync_sees_orphans;
          Alcotest.test_case "partition drops in-flight traffic" `Quick
            test_partition_drops_in_flight;
        ] );
      ( "divergence",
        [
          Alcotest.test_case "divergent DCSat answers" `Quick
            test_divergent_dcsat;
          Alcotest.test_case "conflicting spends" `Quick
            test_conflict_resolution_per_peer;
        ] );
      ( "faults",
        [
          Alcotest.test_case "pinned fault seed converges" `Quick
            test_lossy_convergence_pinned;
          QCheck_alcotest.to_alcotest test_lossy_convergence_qcheck;
          Alcotest.test_case "in_sync vs delayed traffic (pinned)" `Quick
            test_in_sync_vs_delayed_pinned;
          QCheck_alcotest.to_alcotest test_in_sync_vs_delayed_qcheck;
        ] );
    ]
