(* Divergent views of the future: the paper's footnote 6.

   A blockchain database's pending set T is *a node's view* of the
   mempool. Transactions gossip peer-to-peer, so while the network is
   converging (or partitioned), two honest nodes can give different
   answers to the same denial constraint. This example partitions a
   four-peer network, issues a payment on one side, and asks both sides
   whether the payee can possibly be paid - then heals the partition and
   watches the answers converge. Run with:

     dune exec examples/gossip.exe
*)

module C = Chain
module Q = Bcquery
module Core = Bccore

let () =
  let alice = C.Wallet.create ~seed:"alice" in
  let bob = C.Wallet.create ~seed:"bob" in
  let net =
    C.Network.create ~peers:4
      ~initial:(List.init 4 (fun _ -> (C.Wallet.address alice, 100_000)))
      ()
  in
  let ask peer_index =
    let db =
      Result.get_ok (C.Encode.bcdb_of_node (C.Network.peer net peer_index))
    in
    let q =
      Q.Parser.parse_exn ~catalog:C.Encode.catalog
        (Printf.sprintf {| q() :- TxOut(t, s, "%s", a). |}
           (C.Wallet.public_key bob))
    in
    match Core.Solver.solve (Core.Session.create db) q with
    | Ok (o, _) -> o.Core.Dcsat.satisfied
    | Error msg -> failwith msg
  in
  let show label =
    Format.printf "%-28s" label;
    for i = 0 to 3 do
      Format.printf "  peer%d: %s" i
        (if ask i then "safe" else "AT RISK")
    done;
    Format.printf "@."
  in
  Format.printf
    "denial constraint at each peer: \"Bob is never paid\"@.@.";
  show "before any payment";

  (* Peers 2 and 3 drop off the network. *)
  C.Network.partition net [ 2; 3 ];
  Format.printf "@.-- partition: {0,1} | {2,3}; Alice pays Bob at peer 0 --@.";
  let tx =
    match
      C.Wallet.pay alice
        ~utxo:(C.Node.utxo (C.Network.peer net 0))
        ~to_:(C.Wallet.address bob) ~amount:40_000 ~fee:300
    with
    | Ok tx -> tx
    | Error msg -> failwith msg
  in
  (match C.Network.submit net ~at:0 tx with
  | Ok () -> ()
  | Error r -> failwith (Format.asprintf "%a" C.Mempool.pp_reject r));
  ignore (C.Network.deliver net ());
  show "while partitioned";
  Format.printf
    "  (peers 2 and 3 cannot see the pending payment: to them the \
     constraint still holds)@.";

  Format.printf "@.-- partition heals, gossip resumes --@.";
  C.Network.heal net;
  ignore (C.Network.deliver net ());
  show "after gossip converges";
  Format.printf "network in sync: %b@." (C.Network.in_sync net);

  (* A block confirms the payment; the constraint is now violated in the
     *current state*, not just in a possible future. *)
  (match
     C.Network.mine_at net ~at:2 ~coinbase_script:(C.Wallet.address alice) ()
   with
  | Ok _ -> ()
  | Error msg -> failwith msg);
  ignore (C.Network.deliver net ());
  show "after confirmation";
  Format.printf "heights: %s@."
    (String.concat ", "
       (List.init 4 (fun i ->
            string_of_int
              (C.Chain_state.height (C.Node.chain (C.Network.peer net i))))))
