(* Walk the whole scenario catalog: solve every instance with the
   auto-dispatched engine and print the verdict, the strategy that ran
   and whether the scripted expectation held. Exits non-zero on the
   first infrastructure error or failed expectation, so the tour doubles
   as a smoke check. *)

let () =
  let failures = ref 0 in
  List.iter
    (fun (s : Scenario.t) ->
      match Scenario.solve s with
      | Error msg ->
          incr failures;
          Printf.printf "%-40s ERROR %s\n" s.Scenario.name msg
      | Ok solved ->
          let verdict =
            match solved.Scenario.outcome.Bccore.Dcsat.verdict with
            | Bccore.Dcsat.Satisfied -> "satisfied"
            | Bccore.Dcsat.Violated { world; _ } ->
                Printf.sprintf "violated[%s]"
                  (String.concat "," (List.map string_of_int world))
            | Bccore.Dcsat.Unknown _ -> "unknown"
          in
          let status =
            match solved.Scenario.check with
            | Ok () -> "ok"
            | Error msg ->
                incr failures;
                "MISMATCH " ^ msg
          in
          Printf.printf "%-40s %-12s %-10s %s\n" s.Scenario.name
            solved.Scenario.strategy verdict status)
    (Scenarios.Catalog.instances ());
  if !failures > 0 then (
    Printf.printf "%d scenario expectation(s) failed\n" !failures;
    exit 1)
