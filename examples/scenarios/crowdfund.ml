(** Crowdfunding refund deadline. A backer pledges to the founder; the
    denial constraint says the pledged coin never moves except into the
    pledge. In the honest trace the pledge confirms in the next block.
    If miners sit on it past the campaign deadline (empty slots), the
    backer can still replace it with a refund to themselves — violated.
    Once confirmed, the same refund attempt cannot even be built. *)

open Scenario

let base_trace =
  Trace.make ~peers:2 ~observe:0
    ~funding:[ Trace.Fund_party ("backer", 80_000) ]
    [
      Trace.pay ~label:"pledge" ~tag:"pledge" ~from_:"backer"
        ~to_:(Step.To_party "founder") ~amount:50_000 ~fee:600 ();
      Trace.mine ~label:"confirm" ();
    ]

let property compiled =
  Compile.parse_property compiled
    (Printf.sprintf {|q() :- TxIn(p, s, "%s", a, n, g), n != "%s".|}
       (Compile.pk compiled "backer")
       (Compile.txid compiled "pledge"))

let refund =
  Trace.attempted
    (Trace.cancel ~tag:"refund" ~of_:"pledge" ~by:"backer" ~fee:2_000 ())

let family =
  {
    base =
      {
        name = "crowdfund-refund-deadline";
        description =
          "a 50k pledge that confirms immediately; the pledge is the only \
           permitted move of the backer's coins";
        trace = base_trace;
        property;
        expect = Expect.Satisfied;
        max_worlds = None;
      };
    variants =
      [
        variant ~name:"deadline-refund"
          ~description:
            "miners mine empty slots past the deadline instead of \
             confirming; the backer replaces the still-pending pledge \
             with a refund"
          ~expect:
            (Expect.Violated
               { class_ = "refund-after-deadline"; involves = [ "refund" ] })
          [
            Tweak.replace "confirm" (Trace.slots 3);
            Tweak.append [ refund ];
          ];
        variant ~name:"confirmed-in-time"
          ~description:
            "the pledge confirmed before the deadline; the refund cannot \
             even be constructed any more"
          ~expect:Expect.Satisfied
          [ Tweak.append [ Trace.slots 2 ]; Tweak.append [ refund ] ];
      ];
  }
