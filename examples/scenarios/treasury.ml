(** Multisig treasury under partition. A 2-of-3 treasury coin is being
    paid out to a vendor; the denial constraint says the raider address
    is never paid in any world. With the network split, a rogue quorum
    signs a conflicting payout to the raider on the other side — two
    maximal worlds, one of them paying the raider. A sub-quorum attempt
    is rejected by script validation no matter the fee. *)

open Scenario

let signer_names = [ "t-ops"; "t-fin"; "t-sec" ]
let signers = List.map Party.make signer_names
let treasury = Party.multisig 2 signers

let payout ~at ~tag ~signers ~to_ ~fee =
  Trace.multi_spend ~at ~tag ~script:treasury
    ~source:(Step.Script_utxo treasury) ~signers ~to_:(Step.To_party to_)
    ~fee ()

let base_trace =
  Trace.make ~peers:2 ~observe:0
    ~funding:[ Trace.Fund_script (treasury, 90_000) ]
    [
      {
        (payout ~at:0 ~tag:"payout" ~signers:[ "t-ops"; "t-fin" ]
           ~to_:"vendor" ~fee:500)
        with
        Trace.label = Some "payout";
      };
    ]

let property compiled =
  Compile.parse_property compiled
    (Printf.sprintf {|q() :- TxOut(n, s, "%s", a).|}
       (Compile.pk compiled "raider"))

let family =
  {
    base =
      {
        name = "multisig-partition";
        description =
          "a 2-of-3 treasury payout to the vendor; no world ever pays the \
           raider";
        trace = base_trace;
        property;
        expect = Expect.Satisfied;
        max_worlds = None;
      };
    variants =
      [
        variant ~name:"rogue-quorum"
          ~description:
            "behind a partition a different 2-of-3 quorum signs the same \
             coin over to the raider; one maximal world pays them"
          ~expect:
            (Expect.Violated
               { class_ = "conflicting-payout"; involves = [ "raid" ] })
          [
            Tweak.append [ Trace.partition [ 1 ] ];
            Tweak.append
              [
                Trace.attempted
                  (payout ~at:1 ~tag:"raid" ~signers:[ "t-fin"; "t-sec" ]
                     ~to_:"raider" ~fee:2_000);
              ];
          ];
        variant ~name:"quorum-blocked"
          ~description:
            "one signature is not a quorum: the raid is rejected outright \
             and the book stays clean"
          ~expect:Expect.Satisfied
          [
            Tweak.append
              [
                Trace.rejected
                  (payout ~at:0 ~tag:"raid" ~signers:[ "t-sec" ] ~to_:"raider"
                     ~fee:2_000);
              ];
          ];
      ];
  }
