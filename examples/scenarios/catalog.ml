(** The named scenario catalog: every family the CLI, the differential
    test harness and the bench `scenarios` section consume. *)

let all : Scenario.family list =
  [
    Escrow.family;
    Auction.family;
    Crowdfund.family;
    Swap.family;
    Treasury.family;
  ]

let instances () = List.concat_map Scenario.instances all

let find name =
  List.find_opt
    (fun (s : Scenario.t) -> String.equal s.Scenario.name name)
    (instances ())

let names () = List.map (fun (s : Scenario.t) -> s.Scenario.name) (instances ())
