(** Auction outbid race. Three bidders send pending bids to the host;
    the denial constraint caps what the host can ever collect at the
    budget the auction announced. The honest book stays under the cap in
    its single world. The race variant has a bidder replace their bid
    with their whole coin behind a partition — a maximal world now blows
    the cap. The churn variant only bumps fees (payments unchanged, so
    every world is honest) but doubles the world count three times over;
    with a two-world budget the solver must answer [Unknown]. *)

open Scenario

let bid ~label ~from_ ~amount =
  Trace.pay ~label ~tag:label ~from_ ~to_:(Step.To_party "host") ~amount
    ~fee:500 ()

let base_trace =
  Trace.make ~peers:2 ~observe:0
    ~funding:
      [
        Trace.Fund_party ("bidder1", 60_000);
        Trace.Fund_party ("bidder2", 60_000);
        Trace.Fund_party ("bidder3", 60_000);
      ]
    [
      bid ~label:"bid1" ~from_:"bidder1" ~amount:20_000;
      bid ~label:"bid2" ~from_:"bidder2" ~amount:15_000;
      bid ~label:"bid3" ~from_:"bidder3" ~amount:10_000;
    ]

let cap = 50_000

let property compiled =
  Compile.parse_property compiled
    (Printf.sprintf {|q(sum(a)) :- TxOut(n, s, "%s", a) | > %d.|}
       (Compile.pk compiled "host")
       cap)

let bump ~tag ~of_ ~by =
  Trace.attempted (Trace.bump ~at:1 ~tag ~of_ ~by ~add_fee:300 ())

let family =
  {
    base =
      {
        name = "auction-outbid-race";
        description =
          "three pending bids totalling 45k against a 50k collection cap";
        trace = base_trace;
        property;
        expect = Expect.Satisfied;
        max_worlds = None;
      };
    variants =
      [
        variant ~name:"all-in-race"
          ~description:
            "behind a partition bidder1 replaces the 20k bid with their \
             entire coin; the world holding the replacement collects 84k"
          ~expect:
            (Expect.Violated
               { class_ = "over-cap-collection"; involves = [ "allin" ] })
          [
            Tweak.append [ Trace.partition [ 1 ] ];
            Tweak.append
              [
                Trace.attempted
                  (Trace.double_spend ~at:1 ~tag:"allin" ~of_:"bid1"
                     ~by:"bidder1" ~to_:(Step.To_party "host") ~fee:800 ());
              ];
          ];
        variant ~name:"underbid-rejected"
          ~description:
            "a conflicting rebid that does not clear the replace-by-fee \
             bump bounces off the mempool and changes nothing"
          ~expect:Expect.Satisfied
          [
            Tweak.append
              [
                Trace.rejected
                  (Trace.double_spend ~tag:"relow" ~of_:"bid1" ~by:"bidder1"
                     ~to_:(Step.To_party "host") ~fee:505 ());
              ];
          ];
        variant ~max_worlds:2 ~name:"churn-starved"
          ~description:
            "every bidder fee-bumps behind the partition: eight maximal \
             worlds, all honest — a two-world budget must say unknown"
          ~expect:Expect.Unknown
          [
            Tweak.append [ Trace.partition [ 1 ] ];
            Tweak.append
              [
                bump ~tag:"bump1" ~of_:"bid1" ~by:"bidder1";
                bump ~tag:"bump2" ~of_:"bid2" ~by:"bidder2";
                bump ~tag:"bump3" ~of_:"bid3" ~by:"bidder3";
              ];
          ];
      ];
  }
