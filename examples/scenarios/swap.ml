(** Exchange atomic-swap reorg. Alice and Bob swap coins; both legs
    confirm in the settlement block and the denial constraint — Alice's
    coins only ever move in her leg — holds over the whole (empty)
    future. The attack variant forks behind a partition: Alice replaces
    her leg with a self-spend, mines it plus one spare block, and the
    heal reorgs the settlement away — the current state itself now
    diverts the coin, so the constraint is violated with an empty
    pending witness. A one-block fork loses the length race and changes
    nothing. *)

open Scenario

let base_trace =
  Trace.make ~peers:2 ~observe:0
    ~funding:
      [
        Trace.Fund_party ("alice", 50_000); Trace.Fund_party ("bob", 50_000);
      ]
    [
      Trace.pay ~label:"leg1" ~tag:"leg1" ~from_:"alice"
        ~to_:(Step.To_party "bob") ~amount:30_000 ~fee:500 ();
      Trace.pay ~label:"leg2" ~tag:"leg2" ~from_:"bob"
        ~to_:(Step.To_party "alice") ~amount:30_000 ~fee:500 ();
      Trace.mine ~label:"settle" ();
    ]

let property compiled =
  Compile.parse_property compiled
    (Printf.sprintf {|q() :- TxIn(p, s, "%s", a, n, g), n != "%s".|}
       (Compile.pk compiled "alice")
       (Compile.txid compiled "leg1"))

let fork_prefix =
  [
    Tweak.insert_before "settle" [ Trace.partition [ 1 ] ];
    Tweak.append
      [
        Trace.attempted
          (Trace.double_spend ~at:1 ~tag:"takeback" ~of_:"leg1" ~by:"alice"
             ~to_:(Step.To_party "alice") ~fee:2_000 ());
        Trace.mine ~at:1 ();
      ];
  ]

let family =
  {
    base =
      {
        name = "swap-reorg";
        description =
          "a two-leg atomic swap settled in one block; Alice's coins only \
           ever move in her leg";
        trace = base_trace;
        property;
        expect = Expect.Satisfied;
        max_worlds = None;
      };
    variants =
      [
        variant ~name:"reorg-steal"
          ~description:
            "Alice forks pre-settlement, confirms a self-spend on a longer \
             branch, and the heal reorgs the swap away — the diversion is \
             on the active chain itself"
          ~expect:
            (Expect.Violated { class_ = "reorg-steal"; involves = [] })
          (fork_prefix
          @ [
              Tweak.append [ Trace.mine ~at:1 () ];
              Tweak.append [ Trace.heal (); Trace.deliver () ];
            ]);
        variant ~name:"short-fork"
          ~description:
            "the same fork one block short: the settlement branch wins the \
             length race and the swap stands"
          ~expect:Expect.Satisfied
          (fork_prefix @ [ Tweak.append [ Trace.heal (); Trace.deliver () ] ]);
      ];
  }
