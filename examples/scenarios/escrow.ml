(** Escrow double-spend. The buyer deposits the purchase price with the
    seller; the denial constraint says the deposited coin never flows
    anywhere but into the deposit transaction. Honest trace: satisfied.
    Attack variants divert the coin — behind a partition (classic
    double-spend, both spends pending somewhere) or in the open via a
    replace-by-fee — and the constraint flips to violated with the
    diverted spend in every witness world. *)

open Scenario

let base_trace =
  Trace.make ~peers:2 ~observe:0
    ~funding:[ Trace.Fund_party ("buyer", 100_000) ]
    [
      Trace.pay ~label:"deposit" ~tag:"deposit" ~from_:"buyer"
        ~to_:(Step.To_party "seller") ~amount:60_000 ~fee:500 ();
    ]

(* "The buyer's coins only ever move in the deposit": any world where a
   buyer-signed input feeds a transaction other than the deposit is a
   diversion. *)
let property compiled =
  Compile.parse_property compiled
    (Printf.sprintf {|q() :- TxIn(p, s, "%s", a, n, g), n != "%s".|}
       (Compile.pk compiled "buyer")
       (Compile.txid compiled "deposit"))

let steal ~at ~fee =
  Trace.attempted
    (Trace.double_spend ~at ~tag:"steal" ~of_:"deposit" ~by:"buyer"
       ~to_:(Step.To_party "mallory") ~fee ())

let family =
  {
    base =
      {
        name = "escrow-double-spend";
        description =
          "buyer deposits 60k with the seller; the deposit is the only \
           permitted move of the buyer's coins";
        trace = base_trace;
        property;
        expect = Expect.Satisfied;
        max_worlds = None;
      };
    variants =
      [
        variant ~name:"double-spend"
          ~description:
            "behind a partition the buyer re-spends the deposited coin to \
             an accomplice; both spends are pending somewhere, so some \
             maximal world diverts the coin"
          ~expect:
            (Expect.Violated
               { class_ = "double-spend"; involves = [ "steal" ] })
          [
            Tweak.append [ Trace.partition [ 1 ] ];
            Tweak.append [ steal ~at:1 ~fee:2_000 ];
          ];
        variant ~name:"rbf-steal"
          ~description:
            "no partition needed: a fee-bumped conflicting spend replaces \
             the deposit in every mempool"
          ~expect:
            (Expect.Violated
               { class_ = "rbf-replacement"; involves = [ "steal" ] })
          [ Tweak.append [ steal ~at:0 ~fee:2_000 ] ];
        variant ~name:"confirm-first"
          ~description:
            "the seller waits for a confirmation before shipping; the \
             late double-spend bounces off every mempool"
          ~expect:Expect.Satisfied
          [
            Tweak.insert_after "deposit" [ Trace.mine () ];
            Tweak.append [ Trace.partition [ 1 ] ];
            Tweak.append [ steal ~at:1 ~fee:2_000 ];
          ];
      ];
  }
