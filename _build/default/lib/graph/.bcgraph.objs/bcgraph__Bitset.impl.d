lib/graph/bitset.ml: Array Bytes Char Format List
