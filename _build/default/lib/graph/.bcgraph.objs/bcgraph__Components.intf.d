lib/graph/components.mli: Undirected
