lib/graph/bron_kerbosch.mli: Undirected
