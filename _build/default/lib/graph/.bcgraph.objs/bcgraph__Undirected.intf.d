lib/graph/undirected.mli: Format
