lib/graph/undirected.ml: Array Bytes Char Format List
