lib/graph/bron_kerbosch.ml: Array Bitset Int List Undirected
