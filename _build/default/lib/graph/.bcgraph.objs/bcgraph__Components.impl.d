lib/graph/components.ml: Array Int List Queue Undirected Union_find
