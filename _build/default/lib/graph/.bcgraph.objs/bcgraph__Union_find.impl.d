lib/graph/union_find.ml: Array Hashtbl Int List Option
