(* Adjacency is a packed bit matrix: row i holds the neighbour bitset of
   node i. Rows share one Bytes buffer of n*stride bytes. *)

type t = { n : int; stride : int; bits : Bytes.t }

let create n =
  if n < 0 then invalid_arg "Undirected.create: negative size";
  let stride = (n + 7) / 8 in
  { n; stride; bits = Bytes.make (n * stride) '\000' }

let node_count g = g.n
let copy g = { g with bits = Bytes.copy g.bits }

let extend g extra =
  if extra < 0 then invalid_arg "Undirected.extend: negative extra";
  let out = create (g.n + extra) in
  (* Row widths differ, so copy row by row. *)
  for i = 0 to g.n - 1 do
    Bytes.blit g.bits (i * g.stride) out.bits (i * out.stride) g.stride
  done;
  out

let check g i =
  if i < 0 || i >= g.n then invalid_arg "Undirected: node out of range"

let get g i j =
  let byte = Char.code (Bytes.get g.bits ((i * g.stride) + (j lsr 3))) in
  byte land (1 lsl (j land 7)) <> 0

let set g i j v =
  let pos = (i * g.stride) + (j lsr 3) in
  let byte = Char.code (Bytes.get g.bits pos) in
  let mask = 1 lsl (j land 7) in
  let byte = if v then byte lor mask else byte land lnot mask in
  Bytes.set g.bits pos (Char.chr byte)

let add_edge g i j =
  check g i;
  check g j;
  if i <> j then begin
    set g i j true;
    set g j i true
  end

let remove_edge g i j =
  check g i;
  check g j;
  set g i j false;
  set g j i false

let connected g i j =
  check g i;
  check g j;
  get g i j

let iter_neighbours g i f =
  check g i;
  for j = 0 to g.n - 1 do
    if get g i j then f j
  done

let neighbours g i =
  let acc = ref [] in
  iter_neighbours g i (fun j -> acc := j :: !acc);
  List.rev !acc

let degree g i =
  let d = ref 0 in
  iter_neighbours g i (fun _ -> incr d);
  !d

let edge_count g =
  let total = ref 0 in
  for i = 0 to g.n - 1 do
    for j = i + 1 to g.n - 1 do
      if get g i j then incr total
    done
  done;
  !total

let fold_nodes g f acc =
  let acc = ref acc in
  for i = 0 to g.n - 1 do
    acc := f !acc i
  done;
  !acc

let complement g =
  let c = create g.n in
  for i = 0 to g.n - 1 do
    for j = i + 1 to g.n - 1 do
      if not (get g i j) then add_edge c i j
    done
  done;
  c

let induced g nodes =
  let nodes = Array.of_list nodes in
  Array.iter (check g) nodes;
  let sub = create (Array.length nodes) in
  for a = 0 to Array.length nodes - 1 do
    for b = a + 1 to Array.length nodes - 1 do
      if get g nodes.(a) nodes.(b) then add_edge sub a b
    done
  done;
  (sub, nodes)

let pp ppf g =
  Format.fprintf ppf "@[<v>graph on %d nodes:" g.n;
  for i = 0 to g.n - 1 do
    let ns = neighbours g i in
    if ns <> [] then
      Format.fprintf ppf "@ %d -- %a" i
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        ns
  done;
  Format.fprintf ppf "@]"
