exception Stop

(* Neighbour bitsets are materialized once; the recursion then works purely
   on bitset intersections. Pivot choice: the vertex of P ∪ X with the most
   neighbours inside P, which minimizes the branching set P \ N(pivot). *)

let iter_maximal_cliques g f =
  let n = Undirected.node_count g in
  if n = 0 then ()
  else begin
    let neigh =
      Array.init n (fun i ->
          let b = Bitset.create n in
          Undirected.iter_neighbours g i (Bitset.add b);
          b)
    in
    let report clique =
      match f (List.sort Int.compare clique) with
      | `Continue -> ()
      | `Stop -> raise Stop
    in
    let pick_pivot p x =
      let best = ref (-1) and best_score = ref (-1) in
      let consider u =
        let score = Bitset.cardinal (Bitset.inter p neigh.(u)) in
        if score > !best_score then begin
          best := u;
          best_score := score
        end
      in
      Bitset.iter consider p;
      Bitset.iter consider x;
      !best
    in
    let rec expand r p x =
      if Bitset.is_empty p && Bitset.is_empty x then report r
      else begin
        let pivot = pick_pivot p x in
        let candidates = Bitset.diff p neigh.(pivot) in
        Bitset.iter
          (fun v ->
            if Bitset.mem p v then begin
              expand (v :: r) (Bitset.inter p neigh.(v)) (Bitset.inter x neigh.(v));
              Bitset.remove p v;
              Bitset.add x v
            end)
          candidates
      end
    in
    try expand [] (Bitset.full n) (Bitset.create n) with Stop -> ()
  end

let maximal_cliques g =
  let acc = ref [] in
  iter_maximal_cliques g (fun c ->
      acc := c :: !acc;
      `Continue);
  List.rev !acc

let count_maximal_cliques g =
  let count = ref 0 in
  iter_maximal_cliques g (fun _ ->
      incr count;
      `Continue);
  !count
