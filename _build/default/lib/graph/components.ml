let of_graph g =
  let n = Undirected.node_count g in
  let uf = Union_find.create n in
  for i = 0 to n - 1 do
    Undirected.iter_neighbours g i (fun j -> if j > i then Union_find.union uf i j)
  done;
  Union_find.groups uf

let count g = List.length (of_graph g)

let component_of g start =
  let n = Undirected.node_count g in
  let seen = Array.make n false in
  let queue = Queue.create () in
  Queue.add start queue;
  seen.(start) <- true;
  let acc = ref [] in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    acc := v :: !acc;
    Undirected.iter_neighbours g v (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          Queue.add w queue
        end)
  done;
  List.sort Int.compare !acc
