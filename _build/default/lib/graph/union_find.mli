(** Disjoint-set forest with path compression and union by rank, used to
    compute connected components of the ind-q-transaction graph without
    materializing edges twice. *)

type t

val create : int -> t
val find : t -> int -> int
val union : t -> int -> int -> unit
val same : t -> int -> int -> bool

val groups : t -> int list list
(** The partition as lists of member nodes; singletons included. Each
    group is ascending; groups are ordered by their smallest member. *)
