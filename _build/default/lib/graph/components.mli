(** Connected components of an undirected graph. *)

val of_graph : Undirected.t -> int list list
(** Components as ascending node lists, ordered by smallest member;
    isolated nodes form singleton components. *)

val count : Undirected.t -> int
val component_of : Undirected.t -> int -> int list
(** The component containing the given node (BFS). *)
