(** Maximal-clique enumeration: the Bron–Kerbosch algorithm (CACM 1973)
    with the pivoting rule of Tomita, Tanaka and Takahashi (TCS 2006),
    exactly the combination the paper uses inside OptDCSat (Section 6.3).

    Enumeration is lazy through a callback that may abort early — denial
    constraint checking stops at the first violating world, so the
    consumer frequently does not need the full clique list. *)

val iter_maximal_cliques : Undirected.t -> (int list -> [ `Continue | `Stop ]) -> unit
(** Calls the function once per maximal clique (ascending node list,
    isolated nodes yield singleton cliques). Returning [`Stop] aborts the
    enumeration. *)

val maximal_cliques : Undirected.t -> int list list
(** All maximal cliques, in enumeration order. *)

val count_maximal_cliques : Undirected.t -> int
