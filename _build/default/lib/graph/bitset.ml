type t = { n : int; words : Bytes.t }

(* 63-bit words stored via Bytes.{get,set}_int64 would complicate bounds;
   a plain byte array keeps the code simple and is fast enough for the
   few-thousand-node graphs we handle. *)

let nbytes n = (n + 7) / 8
let create n = { n; words = Bytes.make (nbytes n) '\000' }
let capacity t = t.n
let copy t = { n = t.n; words = Bytes.copy t.words }

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: element out of range"

let add t i =
  check t i;
  let pos = i lsr 3 in
  Bytes.set t.words pos
    (Char.chr (Char.code (Bytes.get t.words pos) lor (1 lsl (i land 7))))

let remove t i =
  check t i;
  let pos = i lsr 3 in
  Bytes.set t.words pos
    (Char.chr (Char.code (Bytes.get t.words pos) land lnot (1 lsl (i land 7))))

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let is_empty t = Bytes.for_all (fun c -> c = '\000') t.words

let popcount_byte =
  let table = Array.make 256 0 in
  for i = 1 to 255 do
    table.(i) <- table.(i lsr 1) + (i land 1)
  done;
  fun c -> table.(Char.code c)

let cardinal t = Bytes.fold_left (fun acc c -> acc + popcount_byte c) 0 t.words
let equal a b = a.n = b.n && Bytes.equal a.words b.words

let binop f a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch";
  let out = create a.n in
  for i = 0 to nbytes a.n - 1 do
    Bytes.set out.words i
      (Char.chr
         (f (Char.code (Bytes.get a.words i)) (Char.code (Bytes.get b.words i))))
  done;
  out

let inter = binop ( land )
let union = binop ( lor )
let diff = binop (fun x y -> x land lnot y land 0xff)

let subset a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch";
  let rec go i =
    i >= nbytes a.n
    || Char.code (Bytes.get a.words i) land lnot (Char.code (Bytes.get b.words i))
         land 0xff
       = 0
       && go (i + 1)
  in
  go 0

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let choose_opt t =
  let rec go i =
    if i >= t.n then None else if mem t i then Some i else go (i + 1)
  in
  go 0

let of_list n members =
  let t = create n in
  List.iter (add t) members;
  t

let to_list t = List.rev (fold List.cons t [])

let full n =
  let t = create n in
  for i = 0 to n - 1 do
    add t i
  done;
  t

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (to_list t)
