(** A small peer-to-peer gossip simulation: several full nodes exchanging
    transactions and blocks over FIFO links.

    This grounds the paper's footnote 6: the pending set [T] of a
    blockchain database is {e a node's view} — transactions issued
    concurrently at different peers live in different mempools until
    gossip converges, so two honest nodes can return different answers to
    the same denial constraint at the same instant. The tests and the
    gossip example exercise exactly that divergence.

    Simplifications (documented in DESIGN.md): links are reliable FIFO
    queues drained on demand ([deliver]); topology is a full mesh with
    optional partitions. Fork races resolve by the longest-chain rule of
    {!Chain_state}: a competing branch that overtakes a peer's tip
    triggers a reorg, returning the abandoned blocks' transactions to
    that peer's mempool; blocks arriving ahead of a missing parent are
    stashed and connected once the gap fills. *)

type t

val create : peers:int -> initial:(Script.t * int) list -> t
(** [peers >= 1] nodes, all starting from the same genesis. *)

val peer_count : t -> int
val peer : t -> int -> Node.t
(** The node at a peer index. *)

val submit : t -> at:int -> Tx.t -> (unit, Mempool.reject) result
(** Submit to one peer's mempool; on acceptance the transaction is queued
    to the peer's current neighbours. *)

val mine_at :
  t -> at:int -> coinbase_script:Script.t -> ?min_feerate:float -> unit ->
  (Block.t, string) result
(** Mine from the peer's mempool, connect locally, gossip the block. *)

val deliver : t -> ?max_messages:int -> unit -> int
(** Drain queued messages (transactions and blocks), re-gossiping
    anything new; returns the number of messages processed. Without
    [max_messages], runs until every queue is empty. *)

val partition : t -> int list -> unit
(** Cut every link between the listed peers and the rest. Messages
    already sitting in a peer's queue are still processed; no new traffic
    crosses the cut. *)

val heal : t -> unit
(** Restore the full mesh and let peers re-announce their mempools and
    chain tips to everyone. [deliver] then converges the views. *)

val mempool_view : t -> int -> Crypto.digest list
(** Sorted txids in a peer's mempool. *)

val in_sync : t -> bool
(** All peers have equal chain tips and equal mempool views and no
    messages are in flight. *)
