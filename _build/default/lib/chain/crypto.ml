type digest = string

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let digest s = Printf.sprintf "%016Lx" (fnv64 s)

let combine parts =
  digest
    (String.concat ""
       (List.map (fun p -> Printf.sprintf "%d:%s" (String.length p) p) parts))

type keypair = { secret : string; public : string }

let keypair ~seed =
  { secret = seed; public = "PK" ^ combine [ "pk"; seed ] }

(* The signature depends only on (public, msg) so that verification can
   recompute it; real unforgeability is out of scope (see .mli). *)
let expected ~public ~msg = "SG" ^ combine [ "sig"; public; msg ]

let sign kp ~msg = expected ~public:kp.public ~msg

let verify ~public ~msg ~signature =
  String.equal signature (expected ~public ~msg)
