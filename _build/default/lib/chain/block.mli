(** Blocks: ordered batches of transactions committed together, chained by
    the digest of the predecessor block. Proof-of-work is replaced by a
    deterministic nonce — consensus dynamics are orthogonal to the data
    model (paper, Remark 1). *)

type header = {
  height : int;
  prev_hash : Crypto.digest;
  merkle_root : Crypto.digest;  (** Digest over the txids, in order. *)
  timestamp : int;
  nonce : int;
}

type t = private { header : header; txs : Tx.t list }

val max_vsize : int
(** Block capacity (in {!Tx.vsize} units) enforced by {!create} and the
    miner: 100_000, a scaled-down Bitcoin limit. *)

val create :
  height:int ->
  prev_hash:Crypto.digest ->
  timestamp:int ->
  txs:Tx.t list ->
  (t, string) result
(** Requires a leading coinbase transaction, no other coinbases, no
    internal conflicts and total vsize within {!max_vsize}. *)

val hash : t -> Crypto.digest
val vsize : t -> int
val tx_count : t -> int
val pp : Format.formatter -> t -> unit
