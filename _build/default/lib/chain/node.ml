type t = { chain : Chain_state.t; mempool : Mempool.t }

let create ~initial =
  { chain = Chain_state.genesis ~initial; mempool = Mempool.create () }

let chain t = t.chain
let mempool t = t.mempool
let utxo t = Chain_state.utxo t.chain
let submit t tx =
  Mempool.add t.mempool ~utxo:(utxo t)
    ~height:(Chain_state.height t.chain + 1)
    tx

let mine t ~coinbase_script ?min_feerate () =
  Chain_state.mine_and_connect t.chain ~mempool:t.mempool ~coinbase_script
    ?min_feerate ()

let pending_txs t = Mempool.txs t.mempool
