type t =
  | Pay_to_key of string
  | Hash_lock of Crypto.digest
  | Multi_sig of int * string list
  | Timelock of int * t

type witness =
  | Key_sig of { public : string; signature : string }
  | Preimage of string
  | Sig_list of (string * string) list

let rec unlock script witness ~msg ~height =
  match (script, witness) with
  | Timelock (h, inner), w -> height >= h && unlock inner w ~msg ~height
  | Pay_to_key pk, Key_sig { public; signature } ->
      String.equal pk public && Crypto.verify ~public ~msg ~signature
  | Hash_lock h, Preimage p -> String.equal (Crypto.digest p) h
  | Multi_sig (m, pks), Sig_list sigs ->
      let valid_distinct =
        List.sort_uniq compare sigs
        |> List.filter (fun (public, signature) ->
               List.mem public pks && Crypto.verify ~public ~msg ~signature)
      in
      List.length valid_distinct >= m
  | Pay_to_key _, (Preimage _ | Sig_list _)
  | Hash_lock _, (Key_sig _ | Sig_list _)
  | Multi_sig _, (Key_sig _ | Preimage _) ->
      false

let rec serialize = function
  | Pay_to_key pk -> "p2pk:" ^ pk
  | Hash_lock h -> "hlock:" ^ h
  | Multi_sig (m, pks) ->
      Printf.sprintf "msig:%d:%s" m (String.concat "," (List.sort compare pks))
  | Timelock (h, inner) -> Printf.sprintf "tl:%d:%s" h (serialize inner)

(* A timelocked output belongs to whoever can eventually claim it, so the
   relational pk column keeps the inner owner. *)
let rec owner_hint = function
  | Pay_to_key pk -> pk
  | Timelock (_, inner) -> owner_hint inner
  | (Hash_lock _ | Multi_sig _) as s -> "SC" ^ Crypto.digest (serialize s)

let witness_serialize = function
  | Key_sig { public; signature } -> Printf.sprintf "ks:%s:%s" public signature
  | Preimage p -> "pre:" ^ Crypto.digest p
  | Sig_list sigs ->
      "sl:"
      ^ String.concat ","
          (List.map (fun (p, s) -> p ^ "/" ^ s) (List.sort compare sigs))

let pp ppf s = Format.pp_print_string ppf (serialize s)
