(** Relational encoding of chain data: the two-relation schema of the
    paper's Example 1,

    {v
    TxOut(txId, ser, pk, amount)
    TxIn(prevTxId, prevSer, pk, amount, newTxId, sig)
    v}

    with key constraints on [TxOut(txId, ser)] and [TxIn(prevTxId,
    prevSer)] — the latter is precisely the no-double-spend rule — and the
    two inclusion dependencies: every consumed input was created as the
    output of some transaction, and every transaction with inputs has
    outputs. *)

val txout : Relational.Schema.relation
val txin : Relational.Schema.relation
val catalog : Relational.Schema.t
val constraints : Relational.Constr.t list

val rows_of_tx :
  resolver:(Tx.outpoint -> Tx.output option) ->
  Tx.t ->
  ((string * Relational.Tuple.t) list, string) result
(** The [TxOut] and [TxIn] tuples of one transaction. The resolver
    supplies the consumed outputs' pk and amount columns; it must cover
    historical (already spent) outputs for inputs of confirmed
    transactions. *)

val bcdb_of_node : Node.t -> (Bccore.Bcdb.t, string) result
(** The blockchain database [D = (R, I, T)] of a node: [R] encodes every
    confirmed transaction, [T] has one pending transaction per mempool
    entry (resolving inputs against the chain history and the mempool
    itself). *)

val bcdb_of_txs :
  confirmed:Tx.t list ->
  pending:Tx.t list ->
  resolver:(Tx.outpoint -> Tx.output option) ->
  (Bccore.Bcdb.t, string) result
(** Lower-level variant used by workload generators: encode the given
    confirmed transactions as the state and the given transactions as
    pending, resolving against [resolver] plus the outputs of all listed
    transactions. *)
