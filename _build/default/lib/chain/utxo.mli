(** The unspent-transaction-output set: the spendable state of the chain.
    Applying a transaction atomically removes its inputs and adds its
    outputs. *)

type t

val create : unit -> t
val copy : t -> t
val cardinal : t -> int
val find : t -> Tx.outpoint -> Tx.output option
val mem : t -> Tx.outpoint -> bool

val resolver : t -> Tx.outpoint -> Tx.output option
(** For {!Tx.fee} / {!Tx.validate}. *)

val add_tx_outputs : t -> Tx.t -> unit

val apply_tx : t -> ?height:int -> Tx.t -> (unit, string) result
(** Validates the transaction against this set (at [height], for
    timelocks; defaults to "far future"), spends its inputs and adds its
    outputs. The set is unchanged on error. *)

val total_amount : t -> int
val fold : (Tx.outpoint -> Tx.output -> 'a -> 'a) -> t -> 'a -> 'a
val filter : t -> (Tx.outpoint -> Tx.output -> bool) -> (Tx.outpoint * Tx.output) list
