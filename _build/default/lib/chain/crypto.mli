(** Simulated cryptography for the chain substrate.

    {b Not secure.} The reasoning algorithms of the paper never verify
    real signatures — they only need public keys and signatures to be
    distinct, deterministic values with the right functional
    relationships (a signature is a function of the signer and the signed
    message). A 64-bit FNV-1a hash provides exactly that without any
    external dependency; see DESIGN.md for the substitution rationale. *)

type digest = string
(** 16 lowercase hex characters. *)

val digest : string -> digest
val combine : string list -> digest
(** Digest of a length-prefixed concatenation (injective on the list). *)

type keypair = private { secret : string; public : string }

val keypair : seed:string -> keypair
(** Deterministic keypair; the public key is ["PK" ^ digest]. *)

val sign : keypair -> msg:string -> string
(** Deterministic signature tagged ["SG"]. *)

val verify : public:string -> msg:string -> signature:string -> bool
(** Structural verification: recomputes the expected signature for this
    public key and message. *)
