(** Transactions: many-to-many transfers from inputs (pointers to
    previously created outputs, with unlocking witnesses) to fresh
    outputs. A transaction fully spends every input it references; two
    transactions sharing an input {e conflict} and can never coexist in
    the chain — the relational shadow of this rule is the key constraint
    on [TxIn(prevTxId, prevSer)]. *)

type outpoint = { txid : Crypto.digest; vout : int }

type output = { amount : int; script : Script.t }
(** Amounts in integral satoshis. *)

type input = { prev : outpoint; witness : Script.witness }

type t = private {
  inputs : input list;
  outputs : output list;
  txid : Crypto.digest;  (** Digest of the transaction content. *)
}

val create : inputs:input list -> outputs:output list -> t
(** Raises [Invalid_argument] on empty outputs, a non-positive output
    amount, or duplicate input outpoints. *)

val coinbase : reward:int -> script:Script.t -> tag:string -> t
(** An input-less minting transaction; [tag] (e.g. the block height)
    makes the txid unique. *)

val is_coinbase : t -> bool

val signing_msg : inputs:outpoint list -> outputs:output list -> string
(** The message a spender signs: commits to all inputs and outputs, so a
    signature cannot be transplanted onto a different transfer. *)

val vsize : t -> int
(** Virtual size used for fee-rate and block-capacity accounting. *)

val fee : resolver:(outpoint -> output option) -> t -> (int, string) result
(** Total input amount minus total output amount; [Error] on an unknown
    input or on overspend. Coinbase transactions have fee 0. *)

val conflicts : t -> t -> bool
(** Share at least one input outpoint. *)

val validate :
  resolver:(outpoint -> output option) -> ?height:int -> t ->
  (unit, string) result
(** Structural validity against resolvable outputs: inputs exist, every
    witness unlocks its script for this transaction's signing message at
    [height] (relevant to timelocks; defaults to "far future" so that
    height-independent checks can ignore it), and inputs cover
    outputs. *)

val pp_outpoint : Format.formatter -> outpoint -> unit
val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
(** By txid. *)

val equal : t -> t -> bool
