lib/chain/chain_state.ml: Block Crypto Hashtbl List Mempool Miner Printf String Tx Utxo
