lib/chain/network.mli: Block Crypto Mempool Node Script Tx
