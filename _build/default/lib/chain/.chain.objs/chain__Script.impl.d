lib/chain/script.ml: Crypto Format List Printf String
