lib/chain/node.ml: Chain_state Mempool
