lib/chain/wallet.ml: Crypto Int List Option Printf Result Script String Tx Utxo
