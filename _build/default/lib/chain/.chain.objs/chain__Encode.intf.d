lib/chain/encode.mli: Bccore Node Relational Tx
