lib/chain/encode.ml: Bccore Chain_state Crypto Format Hashtbl List Node Relational Result Script Tx
