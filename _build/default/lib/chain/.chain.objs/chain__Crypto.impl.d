lib/chain/crypto.ml: Char Int64 List Printf String
