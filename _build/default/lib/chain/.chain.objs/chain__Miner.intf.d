lib/chain/miner.mli: Block Crypto Mempool Script Tx Utxo
