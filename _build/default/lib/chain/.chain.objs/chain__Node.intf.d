lib/chain/node.mli: Block Chain_state Mempool Script Tx Utxo
