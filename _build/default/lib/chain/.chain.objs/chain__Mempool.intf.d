lib/chain/mempool.mli: Block Crypto Format Tx Utxo
