lib/chain/block.mli: Crypto Format Tx
