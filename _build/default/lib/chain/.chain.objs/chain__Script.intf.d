lib/chain/script.mli: Crypto Format
