lib/chain/crypto.mli:
