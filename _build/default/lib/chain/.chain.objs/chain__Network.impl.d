lib/chain/network.ml: Array Block Chain_state Crypto Hashtbl List Mempool Node Option Queue String Tx
