lib/chain/utxo.ml: Hashtbl List Tx
