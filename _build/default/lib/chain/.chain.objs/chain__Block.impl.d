lib/chain/block.ml: Crypto Format List Tx
