lib/chain/tx.ml: Crypto Format List Printf Result Script String
