lib/chain/wallet.mli: Script Tx Utxo
