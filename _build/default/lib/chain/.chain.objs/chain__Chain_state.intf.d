lib/chain/chain_state.mli: Block Crypto Mempool Script Tx Utxo
