lib/chain/tx.mli: Crypto Format Script
