lib/chain/miner.ml: Block Float Hashtbl Int List Mempool Option Printf Tx Utxo
