lib/chain/utxo.mli: Tx
