lib/chain/mempool.ml: Block Crypto Format Hashtbl Int List Option String Tx Utxo
