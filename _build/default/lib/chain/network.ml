type message = Mtx of Tx.t | Mblock of Block.t

type peer_state = {
  node : Node.t;
  queue : message Queue.t;
  orphans : (Crypto.digest, Block.t) Hashtbl.t;
      (** Blocks ahead of the tip, keyed by their parent hash. *)
  seen_blocks : (Crypto.digest, unit) Hashtbl.t;
}

type t = {
  peers : peer_state array;
  linked : bool array array;
}

let create ~peers ~initial =
  if peers < 1 then invalid_arg "Network.create: need at least one peer";
  let mk () =
    {
      node = Node.create ~initial;
      queue = Queue.create ();
      orphans = Hashtbl.create 8;
      seen_blocks = Hashtbl.create 8;
    }
  in
  {
    peers = Array.init peers (fun _ -> mk ());
    linked = Array.init peers (fun i -> Array.init peers (fun j -> i <> j));
  }

let peer_count t = Array.length t.peers
let peer t i = t.peers.(i).node

let gossip t ~from msg =
  Array.iteri
    (fun j p -> if t.linked.(from).(j) then Queue.add msg p.queue)
    t.peers

let submit t ~at tx =
  match Node.submit t.peers.(at).node tx with
  | Ok () ->
      gossip t ~from:at (Mtx tx);
      Ok ()
  | Error _ as e -> e

let try_connect t ~at block =
  let p = t.peers.(at) in
  let chain = Node.chain p.node in
  let pool = Node.mempool p.node in
  let rec connect block =
    match Chain_state.connect_block chain block with
    | Ok event ->
        (match event with
        | Chain_state.Extended -> Mempool.confirm_block pool block
        | Chain_state.Side_branch -> ()
        | Chain_state.Reorg { disconnected; connected } ->
            (* Newly active blocks clear the pool; abandoned transactions
               become pending again (where still valid). *)
            List.iter (Mempool.confirm_block pool) connected;
            let next_height = Chain_state.height chain + 1 in
            List.iter
              (fun (b : Block.t) ->
                List.iter
                  (fun tx ->
                    if not (Tx.is_coinbase tx) then
                      ignore
                        (Mempool.add pool ~utxo:(Chain_state.utxo chain)
                           ~height:next_height tx))
                  b.Block.txs)
              disconnected);
        (* A stashed child may now fit. *)
        (match Hashtbl.find_opt p.orphans (Block.hash block) with
        | Some child ->
            Hashtbl.remove p.orphans (Block.hash block);
            connect child
        | None -> ())
    | Error "unknown parent" ->
        (* Ahead of us: stash until the parent arrives. *)
        Hashtbl.replace p.orphans block.Block.header.Block.prev_hash block
    | Error _ -> ()
  in
  connect block

let mine_at t ~at ~coinbase_script ?min_feerate () =
  match Node.mine t.peers.(at).node ~coinbase_script ?min_feerate () with
  | Ok block ->
      Hashtbl.replace t.peers.(at).seen_blocks (Block.hash block) ();
      gossip t ~from:at (Mblock block);
      Ok block
  | Error _ as e -> e

let handle t ~at msg =
  let p = t.peers.(at) in
  match msg with
  | Mtx tx ->
      if not (Mempool.mem (Node.mempool p.node) tx.Tx.txid) then begin
        match Node.submit p.node tx with
        | Ok () -> gossip t ~from:at (Mtx tx)
        | Error _ -> ()
        (* Already confirmed, conflicting, or unresolvable here: drop. *)
      end
  | Mblock block ->
      let h = Block.hash block in
      if not (Hashtbl.mem p.seen_blocks h) then begin
        Hashtbl.replace p.seen_blocks h ();
        try_connect t ~at block;
        gossip t ~from:at (Mblock block)
      end

let deliver t ?max_messages () =
  let processed = ref 0 in
  let budget = Option.value max_messages ~default:max_int in
  let progress = ref true in
  while !progress && !processed < budget do
    progress := false;
    Array.iteri
      (fun at p ->
        if !processed < budget && not (Queue.is_empty p.queue) then begin
          let msg = Queue.pop p.queue in
          incr processed;
          progress := true;
          handle t ~at msg
        end)
      t.peers
  done;
  !processed

let partition t group =
  let in_group = Array.make (peer_count t) false in
  List.iter (fun i -> in_group.(i) <- true) group;
  for i = 0 to peer_count t - 1 do
    for j = 0 to peer_count t - 1 do
      if i <> j && in_group.(i) <> in_group.(j) then begin
        t.linked.(i).(j) <- false;
        (* Drop in-flight traffic on severed links: queues are per-peer,
           so this is approximated by clearing both queues' messages that
           came from across the cut - we conservatively keep them; new
           traffic stops flowing. *)
        ()
      end
    done
  done

let heal t =
  for i = 0 to peer_count t - 1 do
    for j = 0 to peer_count t - 1 do
      t.linked.(i).(j) <- i <> j
    done
  done;
  (* Re-announce local state so the other side can catch up. *)
  Array.iteri
    (fun i p ->
      List.iter (fun tx -> gossip t ~from:i (Mtx tx)) (Node.pending_txs p.node);
      List.iter
        (fun b -> gossip t ~from:i (Mblock b))
        (Chain_state.blocks (Node.chain p.node)))
    t.peers

let mempool_view t i =
  Node.pending_txs t.peers.(i).node
  |> List.map (fun (tx : Tx.t) -> tx.Tx.txid)
  |> List.sort String.compare

let in_sync t =
  let tip i = Chain_state.tip_hash (Node.chain t.peers.(i).node) in
  let view0 = mempool_view t 0 and tip0 = tip 0 in
  Array.for_all (fun p -> Queue.is_empty p.queue) t.peers
  &&
  let rec go i =
    i >= peer_count t
    || (String.equal (tip i) tip0
       && List.equal String.equal (mempool_view t i) view0
       && go (i + 1))
  in
  go 1
