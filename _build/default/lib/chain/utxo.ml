type t = (Tx.outpoint, Tx.output) Hashtbl.t

let create () : t = Hashtbl.create 256
let copy = Hashtbl.copy
let cardinal = Hashtbl.length
let find t o = Hashtbl.find_opt t o
let mem t o = Hashtbl.mem t o
let resolver t o = find t o

let add_tx_outputs t (tx : Tx.t) =
  List.iteri
    (fun vout output ->
      Hashtbl.replace t { Tx.txid = tx.Tx.txid; vout } output)
    tx.Tx.outputs

let apply_tx t ?height (tx : Tx.t) =
  match Tx.validate ~resolver:(resolver t) ?height tx with
  | Error _ as e -> e
  | Ok () ->
      List.iter (fun (i : Tx.input) -> Hashtbl.remove t i.Tx.prev) tx.Tx.inputs;
      add_tx_outputs t tx;
      Ok ()

let total_amount t =
  Hashtbl.fold (fun _ (o : Tx.output) acc -> acc + o.Tx.amount) t 0

let fold f t acc = Hashtbl.fold f t acc

let filter t pred =
  Hashtbl.fold (fun op o acc -> if pred op o then (op, o) :: acc else acc) t []
  |> List.sort compare
