(** A node's view of the chain: a {e block tree} with a longest-chain
    rule. Competing branches can coexist; the active chain is the one
    with the greatest height (first-seen wins ties, as in Bitcoin), and
    when a side branch overtakes the tip the node {e reorganizes}:
    the abandoned suffix is disconnected and its transactions become
    pending again.

    The paper's data model deliberately ignores forks (Remark 1: they
    are system-dependent and resolve quickly); the substrate supports
    them because any credible chain implementation must, and because a
    reorg is exactly the event that turns "accepted" transactions back
    into pending ones — the uncertainty the paper reasons about. *)

type t

type event =
  | Extended  (** The block extended the active tip. *)
  | Side_branch  (** Stored, but the active chain did not change. *)
  | Reorg of { disconnected : Block.t list; connected : Block.t list }
      (** The active chain switched: [disconnected] lost blocks (oldest
          first), [connected] newly active ones (oldest first). *)

val genesis : initial:(Script.t * int) list -> t
(** A chain whose genesis block mints the given (script, amount) outputs
    — the simulation's initial coin distribution. *)

val height : t -> int
(** Height of the active tip. *)

val tip_hash : t -> Crypto.digest
val blocks : t -> Block.t list
(** The active chain, oldest first, genesis included. *)

val block_count : t -> int
(** All stored blocks, side branches included. *)

val utxo : t -> Utxo.t
(** UTXO set of the active chain. Live reference — treat as read-only;
    use {!connect_block} to change state. *)

val connect_block : t -> Block.t -> (event, string) result
(** Store and, if appropriate, activate a block. The parent must already
    be stored ([Error] otherwise — callers keep an orphan stash). A block
    extending the tip is validated against the current UTXO set; a branch
    overtaking the tip is validated by full replay and rejected wholesale
    if invalid. Duplicate blocks return [Ok Side_branch]. *)

val mine_and_connect :
  t ->
  mempool:Mempool.t ->
  coinbase_script:Script.t ->
  ?min_feerate:float ->
  unit ->
  (Block.t, string) result
(** Convenience: {!Miner.mine} at the active tip, connect, and drop the
    included transactions from the mempool. *)

val all_txs : t -> Tx.t list
(** Every transaction of the {e active} chain in block order (coinbases
    included). *)

val find_output : t -> Tx.outpoint -> Tx.output option
(** Resolve an outpoint against every output ever seen (spent or not, on
    any branch) — the resolver used when encoding chain data relationally,
    since [TxIn] rows reference historical outputs. *)
