(** Transaction selection for a new block. As the paper notes, choosing
    an optimal set is a constrained knapsack (limited block size, varying
    transaction sizes and fees, dependencies and conflicts); like real
    miners, this implementation is greedy: candidates are taken in
    decreasing fee-rate order, skipping any whose parents are not yet
    available or that conflict with an already selected transaction,
    looping until nothing more fits. The unpredictability of inclusion
    that motivates the whole paper emerges from exactly this policy. *)

val select :
  utxo:Utxo.t ->
  ?max_vsize:int ->
  ?min_feerate:float ->
  Mempool.entry list ->
  Tx.t list
(** Chosen transactions in a dependency-respecting order (parents before
    children). [max_vsize] defaults to {!Block.max_vsize} minus coinbase
    headroom; [min_feerate] (default 0) drops underpaying transactions —
    the knob behind "transactions may simply never be included". *)

val block_reward : int

val mine :
  chain_tip:Crypto.digest ->
  height:int ->
  timestamp:int ->
  utxo:Utxo.t ->
  mempool:Mempool.t ->
  coinbase_script:Script.t ->
  ?min_feerate:float ->
  unit ->
  (Block.t, string) result
(** Assemble a block: select transactions, collect their fees into the
    coinbase, and build the block. *)
