type outpoint = { txid : Crypto.digest; vout : int }

type output = { amount : int; script : Script.t }

type input = { prev : outpoint; witness : Script.witness }

type t = { inputs : input list; outputs : output list; txid : Crypto.digest }

let serialize_outpoint (o : outpoint) = Printf.sprintf "%s#%d" o.txid o.vout

let serialize_output o =
  Printf.sprintf "%d->%s" o.amount (Script.serialize o.script)

let content_digest inputs outputs =
  Crypto.combine
    (List.map
       (fun i ->
         serialize_outpoint i.prev ^ "@" ^ Script.witness_serialize i.witness)
       inputs
    @ List.map serialize_output outputs)

let create ~inputs ~outputs =
  if outputs = [] then invalid_arg "Tx.create: no outputs";
  if List.exists (fun o -> o.amount <= 0) outputs then
    invalid_arg "Tx.create: non-positive output amount";
  let outpoints = List.map (fun i -> i.prev) inputs in
  if List.length (List.sort_uniq compare outpoints) <> List.length outpoints
  then invalid_arg "Tx.create: duplicate input outpoint";
  { inputs; outputs; txid = content_digest inputs outputs }

let coinbase ~reward ~script ~tag =
  if reward <= 0 then invalid_arg "Tx.coinbase: non-positive reward";
  let outputs = [ { amount = reward; script } ] in
  {
    inputs = [];
    outputs;
    txid = Crypto.combine ("coinbase" :: tag :: List.map serialize_output outputs);
  }

let is_coinbase t = t.inputs = []

let signing_msg ~inputs ~outputs =
  Crypto.combine
    (List.map serialize_outpoint inputs @ List.map serialize_output outputs)

let vsize t = 10 + (68 * List.length t.inputs) + (31 * List.length t.outputs)

let sum_outputs outputs = List.fold_left (fun acc o -> acc + o.amount) 0 outputs

let fee ~resolver t =
  if is_coinbase t then Ok 0
  else
    let rec total_in acc = function
      | [] -> Ok acc
      | i :: rest -> (
          match resolver i.prev with
          | Some o -> total_in (acc + o.amount) rest
          | None ->
              Error
                (Printf.sprintf "unknown input %s" (serialize_outpoint i.prev)))
    in
    match total_in 0 t.inputs with
    | Error _ as e -> e
    | Ok total ->
        let spent = sum_outputs t.outputs in
        if spent > total then
          Error (Printf.sprintf "overspend: %d out of %d in" spent total)
        else Ok (total - spent)

let conflicts a b =
  List.exists
    (fun (i : input) -> List.exists (fun (j : input) -> i.prev = j.prev) b.inputs)
    a.inputs

let validate ~resolver ?(height = max_int) t =
  if is_coinbase t then Ok ()
  else
    let msg =
      signing_msg ~inputs:(List.map (fun i -> i.prev) t.inputs) ~outputs:t.outputs
    in
    let rec check_inputs = function
      | [] -> Result.map (fun (_ : int) -> ()) (fee ~resolver t)
      | i :: rest -> (
          match resolver i.prev with
          | None ->
              Error
                (Printf.sprintf "unknown input %s" (serialize_outpoint i.prev))
          | Some o ->
              if not (Script.unlock o.script i.witness ~msg ~height) then
                Error
                  (Printf.sprintf "witness does not unlock %s"
                     (serialize_outpoint i.prev))
              else check_inputs rest)
    in
    check_inputs t.inputs

let pp_outpoint ppf (o : outpoint) = Format.fprintf ppf "%s#%d" o.txid o.vout

let pp ppf t =
  Format.fprintf ppf "@[<v 2>tx %s:@ in: %a@ out: %a@]" t.txid
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf i -> pp_outpoint ppf i.prev))
    t.inputs
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf o -> Format.fprintf ppf "%d->%a" o.amount Script.pp o.script))
    t.outputs

let compare a b = String.compare a.txid b.txid
let equal a b = String.equal a.txid b.txid
