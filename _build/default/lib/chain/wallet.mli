(** A user's wallet: deterministic keys, coin selection, payment
    construction with change, and — the paper's Section 8 future-work
    item, "automatically derive a new transaction that contradicts
    previous transactions" — explicit conflict construction: fee bumps
    (same transfer, higher fee) and cancels (spend the same inputs back to
    yourself), both of which share an input with the original and are
    therefore mutually exclusive with it on-chain. *)

type t

val create : seed:string -> t
val address : t -> Script.t
(** This wallet's primary pay-to-key script. *)

val public_key : t -> string
val fresh_address : t -> Script.t
(** A new deterministic key each call. *)

val owns : t -> Script.t -> bool
val utxos : t -> Utxo.t -> (Tx.outpoint * Tx.output) list
val balance : t -> Utxo.t -> int

val pay :
  t ->
  utxo:Utxo.t ->
  to_:Script.t ->
  amount:int ->
  fee:int ->
  (Tx.t, string) result
(** Build a payment: select owned coins (largest first), send [amount] to
    the recipient, return change above [fee] to a fresh own address, and
    sign every input. *)

val bump_fee : t -> original:Tx.t -> add_fee:int -> (Tx.t, string) result
(** The same transfer with [add_fee] more fee taken out of this wallet's
    change output. Conflicts with [original] by construction. [Error] if
    the original has no change output back to this wallet, or change is
    too small. *)

val cancel : t -> utxo:Utxo.t -> original:Tx.t -> fee:int -> (Tx.t, string) result
(** A contradicting transaction returning the original's first owned
    input to this wallet minus [fee] — the "retraction by conflict" the
    paper describes users attempting. *)

val sign_inputs :
  t -> prevs:(Tx.outpoint * Tx.output) list -> outputs:Tx.output list ->
  (Tx.input list, string) result
(** Low-level: witnesses for the given previous outputs (all of which
    must be pay-to-key scripts this wallet owns). *)
