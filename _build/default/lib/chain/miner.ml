let block_reward = 50_000

let coinbase_headroom = 200

let select ~utxo ?max_vsize ?(min_feerate = 0.0) entries =
  let budget =
    Option.value max_vsize ~default:(Block.max_vsize - coinbase_headroom)
  in
  let candidates =
    entries
    |> List.filter (fun (e : Mempool.entry) -> e.Mempool.feerate >= min_feerate)
    |> List.sort (fun (a : Mempool.entry) (b : Mempool.entry) ->
           match Float.compare b.Mempool.feerate a.Mempool.feerate with
           | 0 -> Int.compare a.Mempool.sequence b.Mempool.sequence
           | c -> c)
  in
  let selected_ids = Hashtbl.create 16 in
  let spent = Hashtbl.create 16 in
  let selected = ref [] in
  let used = ref 0 in
  let available (i : Tx.input) =
    (Utxo.mem utxo i.Tx.prev || Hashtbl.mem selected_ids i.Tx.prev.Tx.txid)
    && not (Hashtbl.mem spent i.Tx.prev)
  in
  let progress = ref true in
  let remaining = ref candidates in
  while !progress do
    progress := false;
    remaining :=
      List.filter
        (fun (e : Mempool.entry) ->
          let tx = e.Mempool.tx in
          let sz = Tx.vsize tx in
          if
            !used + sz <= budget
            && List.for_all available tx.Tx.inputs
          then begin
            Hashtbl.replace selected_ids tx.Tx.txid ();
            List.iter
              (fun (i : Tx.input) -> Hashtbl.replace spent i.Tx.prev ())
              tx.Tx.inputs;
            selected := tx :: !selected;
            used := !used + sz;
            progress := true;
            false
          end
          else true)
        !remaining
  done;
  List.rev !selected

let mine ~chain_tip ~height ~timestamp ~utxo ~mempool ~coinbase_script
    ?min_feerate () =
  let chosen = select ~utxo ?min_feerate (Mempool.entries mempool) in
  let fees =
    List.fold_left
      (fun acc (tx : Tx.t) ->
        match Mempool.find mempool tx.Tx.txid with
        | Some e -> acc + e.Mempool.fee
        | None -> acc)
      0 chosen
  in
  let coinbase =
    Tx.coinbase
      ~reward:(block_reward + fees)
      ~script:coinbase_script
      ~tag:(Printf.sprintf "h%d" height)
  in
  Block.create ~height ~prev_hash:chain_tip ~timestamp ~txs:(coinbase :: chosen)
