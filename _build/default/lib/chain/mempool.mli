(** The mempool: transactions issued to the network but not yet accepted
    into the chain — exactly the pending set [T] of the blockchain
    database abstraction. Tracks spent outpoints for conflict detection
    and implements replace-by-fee: a conflicting transaction is admitted
    only if it pays strictly more total fee than everything it evicts
    (plus a minimum bump), mirroring the fee-bumping practice the paper's
    motivating example describes. *)

type entry = private {
  tx : Tx.t;
  fee : int;
  feerate : float;  (** fee / vsize. *)
  sequence : int;  (** Admission order. *)
}

type t

val create : unit -> t
val size : t -> int
val entries : t -> entry list
(** In admission order. *)

val txs : t -> Tx.t list
val mem : t -> Crypto.digest -> bool
val find : t -> Crypto.digest -> entry option

type reject =
  | Unknown_inputs of Tx.outpoint list
      (** Inputs neither in the UTXO set nor created by mempool txs. *)
  | Invalid of string  (** Failed script/amount validation. *)
  | Duplicate
  | Fee_too_low of { required : int; offered : int }
      (** Replace-by-fee refused. *)

val pp_reject : Format.formatter -> reject -> unit

val min_rbf_bump : int
(** Minimum extra fee a replacement must add (per evicted tx). *)

val add : t -> utxo:Utxo.t -> ?height:int -> Tx.t -> (unit, reject) result
(** Admit a transaction. Inputs may come from the UTXO set or from
    outputs of transactions already in the pool (chained pending
    transactions). On a successful replace-by-fee, the conflicting
    transactions and their pool descendants are evicted. *)

val conflicts_of : t -> Tx.t -> entry list
(** Pool entries spending an outpoint this transaction also spends. *)

val descendants : t -> Crypto.digest -> Crypto.digest list
(** Pool transactions depending (transitively) on the given txid,
    including it, in eviction-safe order. *)

val remove : t -> Crypto.digest -> unit
(** Remove a transaction and its pool descendants. *)

val confirm_block : t -> Block.t -> unit
(** Drop transactions included in the block and any pool transaction that
    now conflicts with a confirmed one. *)
