type event =
  | Extended
  | Side_branch
  | Reorg of { disconnected : Block.t list; connected : Block.t list }

type t = {
  by_hash : (Crypto.digest, Block.t) Hashtbl.t;
  mutable tip : Crypto.digest;
  mutable active_utxo : Utxo.t;
  history : (Tx.outpoint, Tx.output) Hashtbl.t;
      (** Every output ever created, on any branch. *)
  genesis_hash : Crypto.digest;
  mutable clock : int;
}

let record_history t (tx : Tx.t) =
  List.iteri
    (fun vout output ->
      Hashtbl.replace t.history { Tx.txid = tx.Tx.txid; vout } output)
    tx.Tx.outputs

let block t hash = Hashtbl.find_opt t.by_hash hash

let block_exn t hash =
  match block t hash with
  | Some b -> b
  | None -> invalid_arg "Chain_state: unknown block"

(* The branch from genesis to [hash], oldest first. *)
let branch_of t hash =
  let rec up acc hash =
    let b = block_exn t hash in
    if b.Block.header.Block.height = 0 then b :: acc
    else up (b :: acc) b.Block.header.Block.prev_hash
  in
  up [] hash

(* Validate and apply one block's transactions on [utxo] (at the block's
   height), returning the fee total. *)
let apply_block_txs utxo (blk : Block.t) =
  let height = blk.Block.header.Block.height in
  let fees = ref 0 in
  let apply (tx : Tx.t) =
    if Tx.is_coinbase tx then begin
      Utxo.add_tx_outputs utxo tx;
      Ok ()
    end
    else
      match Tx.fee ~resolver:(Utxo.resolver utxo) tx with
      | Error _ as e -> e
      | Ok fee ->
          fees := !fees + fee;
          Utxo.apply_tx utxo ~height tx
  in
  let rec go = function
    | [] ->
        let coinbase_value =
          match blk.Block.txs with
          | cb :: _ ->
              List.fold_left
                (fun acc (o : Tx.output) -> acc + o.Tx.amount)
                0 cb.Tx.outputs
          | [] -> 0
        in
        (* The genesis coinbase mints the initial distribution and is
           exempt from the reward rule. *)
        if height > 0 && coinbase_value > Miner.block_reward + !fees then
          Error "coinbase overpays reward plus fees"
        else Ok ()
    | tx :: rest -> ( match apply tx with Ok () -> go rest | Error _ as e -> e)
  in
  go blk.Block.txs

let replay_branch t tip_hash =
  let utxo = Utxo.create () in
  let rec go = function
    | [] -> Ok utxo
    | blk :: rest -> (
        match apply_block_txs utxo blk with
        | Ok () -> go rest
        | Error msg ->
            Error
              (Printf.sprintf "block at height %d: %s"
                 blk.Block.header.Block.height msg))
  in
  go (branch_of t tip_hash)

let genesis ~initial =
  if initial = [] then invalid_arg "Chain_state.genesis: no initial outputs";
  let outputs =
    List.map (fun (script, amount) -> { Tx.amount; script }) initial
  in
  let coinbase = Tx.create ~inputs:[] ~outputs in
  let blk =
    match
      Block.create ~height:0 ~prev_hash:(Crypto.digest "genesis") ~timestamp:0
        ~txs:[ coinbase ]
    with
    | Ok b -> b
    | Error msg -> invalid_arg ("Chain_state.genesis: " ^ msg)
  in
  let t =
    {
      by_hash = Hashtbl.create 64;
      tip = Block.hash blk;
      active_utxo = Utxo.create ();
      history = Hashtbl.create 1024;
      genesis_hash = Block.hash blk;
      clock = 1;
    }
  in
  Hashtbl.replace t.by_hash (Block.hash blk) blk;
  Utxo.add_tx_outputs t.active_utxo coinbase;
  record_history t coinbase;
  t

let height t = (block_exn t t.tip).Block.header.Block.height
let tip_hash t = t.tip
let blocks t = branch_of t t.tip
let block_count t = Hashtbl.length t.by_hash
let utxo t = t.active_utxo

let connect_block t (blk : Block.t) =
  let hash = Block.hash blk in
  if Hashtbl.mem t.by_hash hash then Ok Side_branch
  else
    match block t blk.Block.header.Block.prev_hash with
    | None -> Error "unknown parent"
    | Some parent ->
        if
          blk.Block.header.Block.height
          <> parent.Block.header.Block.height + 1
        then Error "height does not follow the parent"
        else if String.equal blk.Block.header.Block.prev_hash t.tip then begin
          (* Fast path: extends the active tip; validate incrementally. *)
          let scratch = Utxo.copy t.active_utxo in
          match apply_block_txs scratch blk with
          | Error msg -> Error ("invalid block: " ^ msg)
          | Ok () ->
              Hashtbl.replace t.by_hash hash blk;
              t.active_utxo <- scratch;
              List.iter (record_history t) blk.Block.txs;
              t.tip <- hash;
              t.clock <- t.clock + 1;
              Ok Extended
        end
        else begin
          (* Side branch. Store it; switch only if strictly longer. *)
          Hashtbl.replace t.by_hash hash blk;
          if blk.Block.header.Block.height <= height t then begin
            List.iter (record_history t) blk.Block.txs;
            Ok Side_branch
          end
          else begin
            match replay_branch t hash with
            | Error msg ->
                Hashtbl.remove t.by_hash hash;
                Error ("invalid branch: " ^ msg)
            | Ok fresh ->
                List.iter (record_history t) blk.Block.txs;
                let old_branch = branch_of t t.tip in
                let new_branch = branch_of t hash in
                let rec split (a : Block.t list) (b : Block.t list) =
                  match (a, b) with
                  | x :: xs, y :: ys when String.equal (Block.hash x) (Block.hash y)
                    ->
                      split xs ys
                  | _ -> (a, b)
                in
                let disconnected, connected = split old_branch new_branch in
                t.tip <- hash;
                t.active_utxo <- fresh;
                t.clock <- t.clock + 1;
                Ok (Reorg { disconnected; connected })
          end
        end

let mine_and_connect t ~mempool ~coinbase_script ?min_feerate () =
  match
    Miner.mine ~chain_tip:t.tip ~height:(height t + 1) ~timestamp:t.clock
      ~utxo:t.active_utxo ~mempool ~coinbase_script ?min_feerate ()
  with
  | Error _ as e -> e
  | Ok blk -> (
      match connect_block t blk with
      | Error _ as e -> e
      | Ok _ ->
          Mempool.confirm_block mempool blk;
          Ok blk)

let all_txs t = List.concat_map (fun (b : Block.t) -> b.Block.txs) (blocks t)

let find_output t outpoint = Hashtbl.find_opt t.history outpoint
