type header = {
  height : int;
  prev_hash : Crypto.digest;
  merkle_root : Crypto.digest;
  timestamp : int;
  nonce : int;
}

type t = { header : header; txs : Tx.t list }

let max_vsize = 100_000

let vsize_of_txs txs = List.fold_left (fun acc tx -> acc + Tx.vsize tx) 0 txs

let merkle txs = Crypto.combine (List.map (fun (tx : Tx.t) -> tx.Tx.txid) txs)

let rec has_conflict = function
  | [] -> false
  | tx :: rest -> List.exists (Tx.conflicts tx) rest || has_conflict rest

let create ~height ~prev_hash ~timestamp ~txs =
  match txs with
  | [] -> Error "empty block"
  | coinbase :: rest ->
      if not (Tx.is_coinbase coinbase) then
        Error "first transaction must be a coinbase"
      else if List.exists Tx.is_coinbase rest then
        Error "multiple coinbase transactions"
      else if vsize_of_txs txs > max_vsize then Error "block too large"
      else if has_conflict txs then Error "conflicting transactions in block"
      else
        Ok
          {
            header =
              {
                height;
                prev_hash;
                merkle_root = merkle txs;
                timestamp;
                nonce = height * 7919;
              };
            txs;
          }

let hash t =
  Crypto.combine
    [
      string_of_int t.header.height;
      t.header.prev_hash;
      t.header.merkle_root;
      string_of_int t.header.timestamp;
      string_of_int t.header.nonce;
    ]

let vsize t = vsize_of_txs t.txs
let tx_count t = List.length t.txs

let pp ppf t =
  Format.fprintf ppf "block %d [%s] (%d txs, %d vbytes)" t.header.height
    (hash t) (tx_count t) (vsize t)
