(** Output scripts: the challenge attached to an amount, specifying how it
    may be claimed (Section 2 of the paper sketches the Bitcoin variants
    modelled here: a required signature, a hash preimage, or multiple
    signatures against different public keys). *)

type t =
  | Pay_to_key of string  (** Spendable by the holder of this public key. *)
  | Hash_lock of Crypto.digest
      (** Spendable by revealing a preimage of this digest. *)
  | Multi_sig of int * string list
      (** [Multi_sig (m, pks)]: any [m] distinct signatures among [pks]. *)
  | Timelock of int * t
      (** [Timelock (h, inner)]: [inner], but unspendable before chain
          height [h] — an output that {e will} become claimable in the
          future, one of the real-world sources of "a transaction may be
          appended at any point in the future". *)

type witness =
  | Key_sig of { public : string; signature : string }
  | Preimage of string
  | Sig_list of (string * string) list  (** (public, signature) pairs. *)

val unlock : t -> witness -> msg:string -> height:int -> bool
(** Does the witness satisfy the script for the given signed message, at
    the given chain height (relevant to {!Timelock})? *)

val owner_hint : t -> string
(** The value stored in the relational [pk] column: the public key for
    pay-to-key, a tagged digest for the other script kinds. *)

val serialize : t -> string
val witness_serialize : witness -> string
val pp : Format.formatter -> t -> unit
