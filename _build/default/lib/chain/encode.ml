module R = Relational
module V = R.Value

let txout =
  R.Schema.relation "TxOut" [ "txId"; "ser"; "pk"; "amount" ]

let txin =
  R.Schema.relation "TxIn"
    [ "prevTxId"; "prevSer"; "pk"; "amount"; "newTxId"; "sig" ]

let catalog = R.Schema.of_list [ txout; txin ]

let constraints =
  [
    R.Constr.key txout [ "txId"; "ser" ];
    R.Constr.key txin [ "prevTxId"; "prevSer" ];
    R.Constr.ind ~sub:txin
      [ "prevTxId"; "prevSer"; "pk"; "amount" ]
      ~sup:txout
      [ "txId"; "ser"; "pk"; "amount" ];
    R.Constr.ind ~sub:txin [ "newTxId" ] ~sup:txout [ "txId" ];
  ]

let out_row txid ser (o : Tx.output) =
  ( "TxOut",
    R.Tuple.make
      [
        V.Str txid;
        V.Int ser;
        V.Str (Script.owner_hint o.Tx.script);
        V.Int o.Tx.amount;
      ] )

let rows_of_tx ~resolver (tx : Tx.t) =
  let outs = List.mapi (fun ser o -> out_row tx.Tx.txid ser o) tx.Tx.outputs in
  let rec ins acc = function
    | [] -> Ok (List.rev acc)
    | (i : Tx.input) :: rest -> (
        match resolver i.Tx.prev with
        | None ->
            Error
              (Format.asprintf "cannot resolve input %a of %s" Tx.pp_outpoint
                 i.Tx.prev tx.Tx.txid)
        | Some (o : Tx.output) ->
            let row =
              ( "TxIn",
                R.Tuple.make
                  [
                    V.Str i.Tx.prev.Tx.txid;
                    V.Int i.Tx.prev.Tx.vout;
                    V.Str (Script.owner_hint o.Tx.script);
                    V.Int o.Tx.amount;
                    V.Str tx.Tx.txid;
                    V.Str (Crypto.digest (Script.witness_serialize i.Tx.witness));
                  ] )
            in
            ins (row :: acc) rest)
  in
  Result.map (fun input_rows -> outs @ input_rows) (ins [] tx.Tx.inputs)

let bcdb_of_txs ~confirmed ~pending ~resolver =
  (* Extend the resolver with the outputs of every transaction in sight,
     so pending transactions can consume other transactions' outputs. *)
  let local = Hashtbl.create 256 in
  List.iter
    (fun (tx : Tx.t) ->
      List.iteri
        (fun vout o -> Hashtbl.replace local { Tx.txid = tx.Tx.txid; vout } o)
        tx.Tx.outputs)
    (confirmed @ pending);
  let resolve outpoint =
    match resolver outpoint with
    | Some _ as found -> found
    | None -> Hashtbl.find_opt local outpoint
  in
  let state = R.Database.create catalog in
  let rec encode_confirmed = function
    | [] -> Ok ()
    | tx :: rest -> (
        match rows_of_tx ~resolver:resolve tx with
        | Error _ as e -> e
        | Ok rows ->
            R.Database.insert_all state rows;
            encode_confirmed rest)
  in
  match encode_confirmed confirmed with
  | Error msg -> Error msg
  | Ok () -> (
      let rec encode_pending acc labels = function
        | [] -> Ok (List.rev acc, List.rev labels)
        | (tx : Tx.t) :: rest -> (
            match rows_of_tx ~resolver:resolve tx with
            | Error _ as e -> e
            | Ok rows -> encode_pending (rows :: acc) (tx.Tx.txid :: labels) rest)
      in
      match encode_pending [] [] pending with
      | Error msg -> Error msg
      | Ok (pending_rows, labels) ->
          Bccore.Bcdb.create ~state ~constraints ~pending:pending_rows ~labels ())

let bcdb_of_node node =
  let chain = Node.chain node in
  bcdb_of_txs
    ~confirmed:(Chain_state.all_txs chain)
    ~pending:(Node.pending_txs node)
    ~resolver:(Chain_state.find_output chain)
