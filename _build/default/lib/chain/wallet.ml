type t = {
  seed : string;
  mutable keys : Crypto.keypair list;  (** Newest first; never empty. *)
  mutable counter : int;
}

let derive seed i = Crypto.keypair ~seed:(Printf.sprintf "%s/%d" seed i)

let create ~seed = { seed; keys = [ derive seed 0 ]; counter = 1 }

let primary t =
  match List.rev t.keys with
  | kp :: _ -> kp
  | [] -> assert false

let address t = Script.Pay_to_key (primary t).Crypto.public
let public_key t = (primary t).Crypto.public

let fresh_address t =
  let kp = derive t.seed t.counter in
  t.counter <- t.counter + 1;
  t.keys <- kp :: t.keys;
  Script.Pay_to_key kp.Crypto.public

let key_for t public =
  List.find_opt (fun kp -> String.equal kp.Crypto.public public) t.keys

let rec owns t = function
  | Script.Pay_to_key pk -> Option.is_some (key_for t pk)
  | Script.Timelock (_, inner) -> owns t inner
  | Script.Hash_lock _ | Script.Multi_sig _ -> false

let utxos t utxo =
  Utxo.filter utxo (fun _ (o : Tx.output) -> owns t o.Tx.script)

let balance t utxo =
  List.fold_left (fun acc (_, (o : Tx.output)) -> acc + o.Tx.amount) 0 (utxos t utxo)

let sign_inputs t ~prevs ~outputs =
  let msg = Tx.signing_msg ~inputs:(List.map fst prevs) ~outputs in
  (* A timelocked pay-to-key output is signed like the inner script; the
     chain enforces the height. *)
  let rec inner_key = function
    | Script.Pay_to_key pk -> Ok pk
    | Script.Timelock (_, inner) -> inner_key inner
    | Script.Hash_lock _ | Script.Multi_sig _ ->
        Error "can only sign pay-to-key outputs"
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (outpoint, (o : Tx.output)) :: rest -> (
        match inner_key o.Tx.script with
        | Error _ as e -> e
        | Ok pk -> (
            match key_for t pk with
            | None -> Error ("wallet does not own key " ^ pk)
            | Some kp ->
                let witness =
                  Script.Key_sig
                    {
                      public = kp.Crypto.public;
                      signature = Crypto.sign kp ~msg;
                    }
                in
                go ({ Tx.prev = outpoint; witness } :: acc) rest))
  in
  go [] prevs

(* Largest-first coin selection. *)
let select_coins t utxo target =
  let coins =
    utxos t utxo
    |> List.sort (fun (_, (a : Tx.output)) (_, (b : Tx.output)) ->
           Int.compare b.Tx.amount a.Tx.amount)
  in
  let rec go acc total = function
    | _ when total >= target -> Some (List.rev acc, total)
    | [] -> None
    | coin :: rest -> go (coin :: acc) (total + (snd coin).Tx.amount) rest
  in
  go [] 0 coins

let pay t ~utxo ~to_ ~amount ~fee =
  if amount <= 0 then Error "non-positive amount"
  else if fee < 0 then Error "negative fee"
  else
    match select_coins t utxo (amount + fee) with
    | None ->
        Error
          (Printf.sprintf "insufficient funds: need %d, have %d" (amount + fee)
             (balance t utxo))
    | Some (coins, total) ->
        let change = total - amount - fee in
        let outputs =
          { Tx.amount; script = to_ }
          ::
          (if change > 0 then
             [ { Tx.amount = change; script = fresh_address t } ]
           else [])
        in
        Result.map
          (fun inputs -> Tx.create ~inputs ~outputs)
          (sign_inputs t ~prevs:coins ~outputs)

(* Rebuild the original transfer with the change output reduced. Requires
   re-resolving the original's inputs from our own key list: the witnesses
   commit to the outputs, so they must be re-signed. *)
let bump_fee t ~original ~add_fee =
  if add_fee <= 0 then Error "non-positive fee bump"
  else
    let is_change (o : Tx.output) = owns t o.Tx.script in
    let change, keep =
      List.partition is_change original.Tx.outputs
    in
    match change with
    | [] -> Error "original has no change output owned by this wallet"
    | c :: _ ->
        if c.Tx.amount <= add_fee then Error "change too small for the bump"
        else begin
          let outputs =
            keep @ [ { c with Tx.amount = c.Tx.amount - add_fee } ]
          in
          (* Recover the previous outputs: we need their scripts to
             re-sign; they must be pay-to-key outputs we own, which we can
             reconstruct from the original witnesses. *)
          let prevs =
            List.map
              (fun (i : Tx.input) ->
                match i.Tx.witness with
                | Script.Key_sig { public; _ } ->
                    ( i.Tx.prev,
                      { Tx.amount = 0; script = Script.Pay_to_key public } )
                | Script.Preimage _ | Script.Sig_list _ ->
                    (i.Tx.prev, { Tx.amount = 0; script = Script.Hash_lock "" }))
              original.Tx.inputs
          in
          Result.map
            (fun inputs -> Tx.create ~inputs ~outputs)
            (sign_inputs t ~prevs ~outputs)
        end

let cancel t ~utxo ~original ~fee =
  let owned_input =
    List.find_opt
      (fun (i : Tx.input) ->
        match Utxo.find utxo i.Tx.prev with
        | Some o -> owns t o.Tx.script
        | None -> false)
      original.Tx.inputs
  in
  match owned_input with
  | None -> Error "no spendable owned input to contradict"
  | Some i -> (
      match Utxo.find utxo i.Tx.prev with
      | None -> Error "input vanished"
      | Some o ->
          if o.Tx.amount <= fee then Error "input too small to pay the fee"
          else
            let outputs =
              [ { Tx.amount = o.Tx.amount - fee; script = fresh_address t } ]
            in
            Result.map
              (fun inputs -> Tx.create ~inputs ~outputs)
              (sign_inputs t ~prevs:[ (i.Tx.prev, o) ] ~outputs))
