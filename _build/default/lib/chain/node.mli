(** A full node: chain state plus mempool, with the operations users and
    miners perform against it. The blockchain-database abstraction is a
    view over exactly this pair — the chain is the current state [R], the
    mempool the pending set [T]. *)

type t

val create : initial:(Script.t * int) list -> t
val chain : t -> Chain_state.t
val mempool : t -> Mempool.t

val submit : t -> Tx.t -> (unit, Mempool.reject) result
(** Broadcast a transaction into the mempool. *)

val mine :
  t -> coinbase_script:Script.t -> ?min_feerate:float -> unit ->
  (Block.t, string) result
(** Mine one block from the mempool and connect it. *)

val utxo : t -> Utxo.t
val pending_txs : t -> Tx.t list
