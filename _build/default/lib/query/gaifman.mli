(** The Gaifman graph of a query (Section 6.2): nodes are the terms
    appearing in relational atoms; two terms are adjacent when they occur
    in the same atom. A query is {e connected} when this graph has a
    single component — comparisons do {e not} create edges, so
    [q() <- R(x,y), S(w,v), y < v] is disconnected even though its atoms
    are linked by a comparison. OptDCSat is only sound for connected
    queries. *)

val is_connected : Cq.t -> bool
(** Connectivity of the Gaifman graph over positive and negated atoms.
    Variables identified by [Eq] comparisons are treated as one node. *)

val components : Cq.t -> Term.t list list
(** The term partition, ordered by first occurrence. *)
