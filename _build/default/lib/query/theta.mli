(** Equality constraints [R\[X̄\] = S\[Ȳ\]] (Section 6.2). Two sources:
    every inclusion dependency induces one (the set ΘI), and every pair of
    positive query atoms sharing variables (or variables forced equal by
    [Eq] comparisons) induces one (the set Θq). The union Θ = ΘI ∪ Θq
    drives the edges of the ind-q-transaction graph: two pending
    transactions are connected when some θ is satisfied by a tuple from
    each. *)

type t = {
  lrel : string;
  lattrs : int list;
  rrel : string;
  rattrs : int list;
}
(** [lrel[lattrs] = rrel[rattrs]]; the position lists have equal length
    and are nonempty. *)

val of_inds : Relational.Constr.ind list -> t list
(** ΘI: one equality constraint per inclusion dependency. *)

val of_query : Cq.t -> t list
(** Θq: for each unordered pair of distinct positive atoms, the equality
    constraint pairing the first occurrence positions of every term class
    the two atoms share — shared variables, {e repeated constants} (the
    only link inside the star queries q_r of Section 7), and terms
    identified by the query's [Eq] comparisons. Atom pairs sharing
    nothing contribute nothing. Duplicates are removed. *)

val satisfied_by_tuples :
  t -> Relational.Tuple.t -> Relational.Tuple.t -> bool
(** [satisfied_by_tuples theta l r] with [l] from [lrel] and [r] from
    [rrel]. *)

val pp : Format.formatter -> t -> unit
