type t = { rel : string; args : Term.t array }

let make rel args = { rel; args = Array.of_list args }
let arity a = Array.length a.args

let vars a =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  Array.iter
    (function
      | Term.Var v ->
          if not (Hashtbl.mem seen v) then begin
            Hashtbl.replace seen v ();
            acc := v :: !acc
          end
      | Term.Const _ -> ())
    a.args;
  List.rev !acc

let constants a =
  let acc = ref [] in
  Array.iteri
    (fun i -> function
      | Term.Const c -> acc := (i, c) :: !acc
      | Term.Var _ -> ())
    a.args;
  List.rev !acc

let equal a b =
  String.equal a.rel b.rel
  && Array.length a.args = Array.length b.args
  && Array.for_all2 Term.equal a.args b.args

let pp ppf a =
  Format.fprintf ppf "%s(%a)" a.rel
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Term.pp)
    (Array.to_list a.args)
