(** Syntactic monotonicity analysis. A Boolean query [q] is monotone when
    [R ⊆ R'] and [q(R)] imply [q(R')] (Section 6.1); NaiveDCSat and
    OptDCSat are only sound for monotone denial constraints, because they
    restrict attention to maximal possible worlds.

    The analysis is sound but incomplete: [Not_monotone] really means
    "not established monotone by this analysis". *)

type verdict =
  | Monotone
  | Not_monotone of string  (** Human-readable reason. *)

val analyze : ?sum_args_nonnegative:bool -> Query.t -> verdict
(** Positive conjunctive queries are monotone. Positive aggregate queries
    are monotone for [count > c], [cntd > c], [max > c], [min < c], and —
    when [sum_args_nonnegative] (default [true], matching bitcoin amounts)
    — [sum > c]. Negation, [θ ∈ {<, =}] on growing aggregates, and
    [max <] / [min >] are rejected with a reason. *)

val is_monotone : ?sum_args_nonnegative:bool -> Query.t -> bool
