module Value = Relational.Value
module Schema = Relational.Schema

type cmp_op = Eq | Neq | Lt | Gt

type comparison = { clhs : Term.t; op : cmp_op; crhs : Term.t }

type t = {
  positive : Atom.t list;
  negated : Atom.t list;
  comparisons : comparison list;
  vars : string list;
}

let term_vars = function Term.Var v -> [ v ] | Term.Const _ -> []

let distinct_vars_of_atoms atoms =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  List.iter
    (fun a ->
      List.iter
        (fun v ->
          if not (Hashtbl.mem seen v) then begin
            Hashtbl.replace seen v ();
            acc := v :: !acc
          end)
        (Atom.vars a))
    atoms;
  List.rev !acc

let validate ?catalog ~positive ~negated ~comparisons () =
  let ( let* ) = Result.bind in
  let* () =
    if positive = [] then Error "query has no positive atoms" else Ok ()
  in
  let* () =
    match catalog with
    | None -> Ok ()
    | Some cat ->
        let check_atom (a : Atom.t) =
          match Schema.find_opt cat a.Atom.rel with
          | None -> Error (Printf.sprintf "unknown relation %s" a.Atom.rel)
          | Some schema ->
              if Schema.arity schema <> Atom.arity a then
                Error
                  (Printf.sprintf "atom %s has arity %d, schema says %d"
                     a.Atom.rel (Atom.arity a) (Schema.arity schema))
              else Ok ()
        in
        List.fold_left
          (fun acc a -> Result.bind acc (fun () -> check_atom a))
          (Ok ()) (positive @ negated)
  in
  let positive_vars = distinct_vars_of_atoms positive in
  let bound v = List.mem v positive_vars in
  let* () =
    let unsafe_atom_var =
      List.concat_map Atom.vars negated |> List.find_opt (fun v -> not (bound v))
    in
    match unsafe_atom_var with
    | Some v -> Error (Printf.sprintf "unsafe variable %s in negated atom" v)
    | None -> Ok ()
  in
  let* () =
    let cmp_vars c = term_vars c.clhs @ term_vars c.crhs in
    match
      List.concat_map cmp_vars comparisons
      |> List.find_opt (fun v -> not (bound v))
    with
    | Some v -> Error (Printf.sprintf "unsafe variable %s in comparison" v)
    | None -> Ok ()
  in
  Ok { positive; negated; comparisons; vars = positive_vars }

let make ?catalog ~positive ?(negated = []) ?(comparisons = []) () =
  validate ?catalog ~positive ~negated ~comparisons ()

let make_exn ?catalog ~positive ?negated ?comparisons () =
  match make ?catalog ~positive ?negated ?comparisons () with
  | Ok q -> q
  | Error msg -> invalid_arg ("Cq.make: " ^ msg)

let is_positive q = q.negated = []

let substitute q bindings =
  let subst_term = function
    | Term.Var v as t -> (
        match List.assoc_opt v bindings with
        | Some value -> Term.Const value
        | None -> t)
    | Term.Const _ as t -> t
  in
  let subst_atom (a : Atom.t) =
    { a with Atom.args = Array.map subst_term a.Atom.args }
  in
  let subst_cmp c =
    { c with clhs = subst_term c.clhs; crhs = subst_term c.crhs }
  in
  match
    make
      ~positive:(List.map subst_atom q.positive)
      ~negated:(List.map subst_atom q.negated)
      ~comparisons:(List.map subst_cmp q.comparisons)
      ()
  with
  | Ok q' -> q'
  | Error msg -> invalid_arg ("Cq.substitute: " ^ msg)

let cmp op a b =
  match op with
  | Eq -> Value.equal a b
  | Neq -> not (Value.equal a b)
  | Lt -> Value.lt a b
  | Gt -> Value.lt b a

let var_equalities q =
  List.filter_map
    (fun c ->
      match (c.op, c.clhs, c.crhs) with
      | Eq, Term.Var x, Term.Var y -> Some (x, y)
      | _ -> None)
    q.comparisons

let pp_cmp_op ppf op =
  Format.pp_print_string ppf
    (match op with Eq -> "=" | Neq -> "!=" | Lt -> "<" | Gt -> ">")

let pp_comparison ppf c =
  Format.fprintf ppf "%a %a %a" Term.pp c.clhs pp_cmp_op c.op Term.pp c.crhs

let pp ppf q =
  let sep ppf () = Format.pp_print_string ppf ", " in
  let items =
    List.map (fun a ppf -> Atom.pp ppf a) q.positive
    @ List.map (fun a ppf -> Format.fprintf ppf "!%a" Atom.pp a) q.negated
    @ List.map (fun c ppf -> pp_comparison ppf c) q.comparisons
  in
  Format.pp_print_list ~pp_sep:sep (fun ppf f -> f ppf) ppf items
