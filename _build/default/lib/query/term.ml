type t = Var of string | Const of Relational.Value.t

let is_var = function Var _ -> true | Const _ -> false

let compare a b =
  match (a, b) with
  | Var x, Var y -> String.compare x y
  | Const x, Const y -> Relational.Value.compare x y
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1

let equal a b = compare a b = 0

let pp ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Const c -> Relational.Value.pp ppf c
