(** Denial constraints: Boolean conjunctive queries or aggregate queries
    [[q(α(x̄)) <- body] θ c] (Section 5). A denial constraint [q] is
    {e satisfied} by a blockchain database when [q] is false over every
    possible world — evaluation of [q] itself over a single world lives in
    {!Eval}. *)

type agg = Count | Cntd | Sum | Max | Min

type theta = Lt | Gt | Eq
(** The aggregate comparison operators the paper studies. *)

type aggregate = {
  body : Cq.t;
  agg : agg;
  agg_args : Term.t array;
      (** The tuple [x̄] the aggregate is applied to. Must be variables of
          the body ([count] may take zero arguments). *)
  theta : theta;
  threshold : Relational.Value.t;
}

type t = Boolean of Cq.t | Aggregate of aggregate

val boolean : Cq.t -> t

val aggregate :
  body:Cq.t ->
  agg:agg ->
  args:Term.t list ->
  theta:theta ->
  threshold:Relational.Value.t ->
  (t, string) result
(** Validates that aggregate arguments are body variables, that
    [sum]/[max]/[min] take exactly one argument, and that [cntd] takes at
    least one. *)

val aggregate_exn :
  body:Cq.t ->
  agg:agg ->
  args:Term.t list ->
  theta:theta ->
  threshold:Relational.Value.t ->
  t

val body : t -> Cq.t
val is_positive : t -> bool
val agg_name : agg -> string
val pp_theta : Format.formatter -> theta -> unit
val pp : Format.formatter -> t -> unit
(** Prints in the parser's concrete syntax; see {!Parser}. *)

val to_string : t -> string
