(** Query evaluation over a {!Relational.Source.t}.

    The evaluator runs a backtracking join: at every depth it picks the
    cheapest remaining positive atom (most bound argument positions,
    smallest index-estimated result), enumerates matching tuples through
    the source's index lookups, and prunes with negated atoms and
    comparisons as soon as their variables are bound.

    An assignment [h] maps each body variable to a value; because every
    variable occurs in a positive atom, assignments correspond one-to-one
    to the tuple combinations the join enumerates, which gives exactly the
    bag semantics of Section 5 for aggregates. *)

val eval_boolean : Relational.Source.t -> Cq.t -> bool
(** True when at least one satisfying assignment exists (early exit). *)

val find_witness :
  Relational.Source.t -> Cq.t -> (string * Relational.Value.t) list option
(** A satisfying assignment, as variable bindings in [q.vars] order. *)

val iter_matches :
  Relational.Source.t ->
  Cq.t ->
  (Relational.Value.t array ->
  (string * Relational.Tuple.t) list ->
  [ `Continue | `Stop ]) ->
  unit
(** Calls the callback once per satisfying assignment with the values of
    [q.vars] (in order) and the {e support}: the (relation, tuple) pair
    each positive atom was mapped to, in atom order. Duplicate assignments
    never occur. Return [`Stop] to abort. *)

val aggregate_value :
  Relational.Source.t -> Query.aggregate -> Relational.Value.t option
(** [α(B)] where [B] is the bag of [h(x̄)] over all satisfying
    assignments; [None] when the bag is empty. *)

val eval : Relational.Source.t -> Query.t -> bool
(** Full denial-constraint body evaluation over one world. For aggregates
    an empty bag makes the comparison false (footnote 9 semantics). *)

val count_matches : Relational.Source.t -> Cq.t -> int
