type verdict = Monotone | Not_monotone of string

let analyze ?(sum_args_nonnegative = true) q =
  match q with
  | Query.Boolean body ->
      if Cq.is_positive body then Monotone
      else Not_monotone "negated atoms can become false as the world grows"
  | Query.Aggregate a ->
      if not (Cq.is_positive a.Query.body) then
        Not_monotone "negated atoms can become false as the world grows"
      else begin
        match (a.Query.agg, a.Query.theta) with
        | (Query.Count | Query.Cntd), Query.Gt -> Monotone
        | Query.Sum, Query.Gt ->
            if sum_args_nonnegative then Monotone
            else
              Not_monotone
                "sum > c is monotone only when summands are non-negative"
        | Query.Max, Query.Gt | Query.Min, Query.Lt -> Monotone
        | (Query.Count | Query.Cntd | Query.Sum), (Query.Lt | Query.Eq) ->
            Not_monotone
              (Printf.sprintf "%s with '%s' can flip from true to false"
                 (Query.agg_name a.Query.agg)
                 (match a.Query.theta with
                 | Query.Lt -> "<"
                 | Query.Eq -> "="
                 | Query.Gt -> ">"))
        | Query.Max, (Query.Lt | Query.Eq) | Query.Min, (Query.Gt | Query.Eq) ->
            Not_monotone "extremum can move past the threshold as worlds grow"
      end

let is_monotone ?sum_args_nonnegative q =
  match analyze ?sum_args_nonnegative q with
  | Monotone -> true
  | Not_monotone _ -> false
