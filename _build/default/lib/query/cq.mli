(** Conjunctive-query bodies with negation and comparisons (the class
    [Qc] of Section 5): [q() <- P, N, C] where [P] is a conjunction of
    positive relational atoms, [N] of negated atoms, and [C] of
    comparisons between variables and constants.

    Construction enforces the paper's safety condition: every variable
    occurring in a negated atom or a comparison must also occur in a
    positive atom. *)

type cmp_op = Eq | Neq | Lt | Gt

type comparison = { clhs : Term.t; op : cmp_op; crhs : Term.t }

type t = private {
  positive : Atom.t list;
  negated : Atom.t list;
  comparisons : comparison list;
  vars : string list;  (** Distinct variables, first-occurrence order. *)
}

val make :
  ?catalog:Relational.Schema.t ->
  positive:Atom.t list ->
  ?negated:Atom.t list ->
  ?comparisons:comparison list ->
  unit ->
  (t, string) result
(** Validates safety and, when a catalog is supplied, relation existence
    and atom arities. *)

val make_exn :
  ?catalog:Relational.Schema.t ->
  positive:Atom.t list ->
  ?negated:Atom.t list ->
  ?comparisons:comparison list ->
  unit ->
  t
(** Raises [Invalid_argument] on validation failure. *)

val is_positive : t -> bool
(** No negated atoms (the class [Q+c]). *)

val cmp : cmp_op -> Relational.Value.t -> Relational.Value.t -> bool
(** Semantics of a comparison operator on ground values. *)

val substitute : t -> (string * Relational.Value.t) list -> t
(** Replace variables by constants throughout the body. The result is
    revalidated; substituting every output variable of a query yields the
    Boolean specialization asking whether that particular answer holds. *)

val var_equalities : t -> (string * string) list
(** Variable pairs forced equal by [Eq] comparisons (not closed under
    transitivity; feed into a union-find). *)

val pp_cmp_op : Format.formatter -> cmp_op -> unit
val pp : Format.formatter -> t -> unit
