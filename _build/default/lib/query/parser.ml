module Value = Relational.Value

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | BANG
  | PIPE
  | ARROW (* :- or <- *)
  | OP_EQ
  | OP_NEQ
  | OP_LT
  | OP_GT
  | EOF

exception Err of string * int

let fail pos msg = raise (Err (msg, pos))

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let push pos tok = tokens := (tok, pos) :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '%' then begin
      (* line comment *)
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      push pos (IDENT (String.sub input start (!i - start)))
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit input.[!i + 1])
    then begin
      let start = !i in
      if c = '-' then incr i;
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      let is_float =
        !i + 1 < n && input.[!i] = '.' && is_digit input.[!i + 1]
      in
      if is_float then begin
        incr i;
        while !i < n && is_digit input.[!i] do
          incr i
        done;
        (* Optional exponent, as produced by the value printer. *)
        if
          !i < n
          && (input.[!i] = 'e' || input.[!i] = 'E')
          &&
          let j = if !i + 1 < n && (input.[!i + 1] = '+' || input.[!i + 1] = '-')
                  then !i + 2 else !i + 1
          in
          j < n && is_digit input.[j]
        then begin
          incr i;
          if input.[!i] = '+' || input.[!i] = '-' then incr i;
          while !i < n && is_digit input.[!i] do
            incr i
          done
        end;
        push pos (FLOAT (float_of_string (String.sub input start (!i - start))))
      end
      else push pos (INT (int_of_string (String.sub input start (!i - start))))
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        let c = input.[!i] in
        if c = '"' then begin
          closed := true;
          incr i
        end
        else if c = '\\' && !i + 1 < n then begin
          let e = input.[!i + 1] in
          Buffer.add_char buf
            (match e with 'n' -> '\n' | 't' -> '\t' | other -> other);
          i := !i + 2
        end
        else begin
          Buffer.add_char buf c;
          incr i
        end
      done;
      if not !closed then fail pos "unterminated string literal";
      push pos (STRING (Buffer.contents buf))
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub input !i 2) else None
      in
      match two with
      | Some ":-" | Some "<-" ->
          push pos ARROW;
          i := !i + 2
      | Some "!=" | Some "<>" ->
          push pos OP_NEQ;
          i := !i + 2
      | _ -> (
          incr i;
          match c with
          | '(' -> push pos LPAREN
          | ')' -> push pos RPAREN
          | ',' -> push pos COMMA
          | '.' -> push pos DOT
          | '!' -> push pos BANG
          | '|' -> push pos PIPE
          | '=' -> push pos OP_EQ
          | '<' -> push pos OP_LT
          | '>' -> push pos OP_GT
          | _ -> fail pos (Printf.sprintf "unexpected character %c" c))
    end
  done;
  push n EOF;
  Array.of_list (List.rev !tokens)

type state = { toks : (token * int) array; mutable cur : int }

let peek st = fst st.toks.(st.cur)
let pos st = snd st.toks.(st.cur)
let advance st = st.cur <- st.cur + 1

let expect st tok what =
  if peek st = tok then advance st else fail (pos st) ("expected " ^ what)

let parse_value st =
  match peek st with
  | INT i ->
      advance st;
      Value.Int i
  | FLOAT f ->
      advance st;
      Value.Float f
  | STRING s ->
      advance st;
      Value.Str s
  | IDENT "true" ->
      advance st;
      Value.Bool true
  | IDENT "false" ->
      advance st;
      Value.Bool false
  | IDENT "null" ->
      advance st;
      Value.Null
  | _ -> fail (pos st) "expected a constant"

let parse_term st =
  match peek st with
  | IDENT name
    when not (List.mem name [ "true"; "false"; "null" ]) ->
      advance st;
      Term.Var name
  | _ -> Term.Const (parse_value st)

let parse_term_list st =
  let rec go acc =
    let t = parse_term st in
    match peek st with
    | COMMA ->
        advance st;
        go (t :: acc)
    | _ -> List.rev (t :: acc)
  in
  if peek st = RPAREN then [] else go []

let parse_atom st name =
  expect st LPAREN "'('";
  let args = parse_term_list st in
  expect st RPAREN "')'";
  Atom.make name args

let cmp_op_of_token = function
  | OP_EQ -> Some Cq.Eq
  | OP_NEQ -> Some Cq.Neq
  | OP_LT -> Some Cq.Lt
  | OP_GT -> Some Cq.Gt
  | _ -> None

type item =
  | Pos of Atom.t
  | Neg of Atom.t
  | Cmp of Cq.comparison

let parse_item st =
  match peek st with
  | BANG ->
      advance st;
      let name =
        match peek st with
        | IDENT n ->
            advance st;
            n
        | _ -> fail (pos st) "expected relation name after '!'"
      in
      Neg (parse_atom st name)
  | IDENT "not" when fst st.toks.(st.cur + 1) <> LPAREN ->
      advance st;
      let name =
        match peek st with
        | IDENT n ->
            advance st;
            n
        | _ -> fail (pos st) "expected relation name after 'not'"
      in
      Neg (parse_atom st name)
  | IDENT name when fst st.toks.(st.cur + 1) = LPAREN ->
      advance st;
      Pos (parse_atom st name)
  | _ -> (
      let lhs = parse_term st in
      match cmp_op_of_token (peek st) with
      | Some op ->
          advance st;
          let rhs = parse_term st in
          Cmp { Cq.clhs = lhs; op; crhs = rhs }
      | None -> fail (pos st) "expected a comparison operator")

let parse_body st =
  let rec go acc =
    let item = parse_item st in
    match peek st with
    | COMMA ->
        advance st;
        go (item :: acc)
    | _ -> List.rev (item :: acc)
  in
  go []

let aggregates = [ "count"; "cntd"; "sum"; "max"; "min" ]

let agg_of_string = function
  | "count" -> Query.Count
  | "cntd" -> Query.Cntd
  | "sum" -> Query.Sum
  | "max" -> Query.Max
  | "min" -> Query.Min
  | s -> invalid_arg ("unknown aggregate " ^ s)

type head = Bool_head | Agg_head of Query.agg * Term.t list

let parse_head st =
  (match peek st with
  | IDENT _ -> advance st
  | _ -> fail (pos st) "expected query name");
  expect st LPAREN "'(' after query name";
  match peek st with
  | RPAREN ->
      advance st;
      Bool_head
  | IDENT a when List.mem a aggregates && fst st.toks.(st.cur + 1) = LPAREN ->
      advance st;
      expect st LPAREN "'('";
      let args = parse_term_list st in
      expect st RPAREN "')'";
      expect st RPAREN "')' closing the head";
      Agg_head (agg_of_string a, args)
  | _ -> fail (pos st) "expected ')' or an aggregate in the query head"

let theta_of_token = function
  | OP_LT -> Some Query.Lt
  | OP_GT -> Some Query.Gt
  | OP_EQ -> Some Query.Eq
  | _ -> None

let parse_query ?catalog st =
  let head = parse_head st in
  expect st ARROW "':-'";
  let items = parse_body st in
  let positive = List.filter_map (function Pos a -> Some a | _ -> None) items in
  let negated = List.filter_map (function Neg a -> Some a | _ -> None) items in
  let comparisons =
    List.filter_map (function Cmp c -> Some c | _ -> None) items
  in
  let body_result = Cq.make ?catalog ~positive ~negated ~comparisons () in
  let body =
    match body_result with Ok b -> b | Error msg -> fail (pos st) msg
  in
  let q =
    match head with
    | Bool_head -> Query.Boolean body
    | Agg_head (agg, args) ->
        let theta =
          if peek st = PIPE then begin
            advance st;
            match theta_of_token (peek st) with
            | Some t ->
                advance st;
                t
            | None -> fail (pos st) "expected <, > or = after '|'"
          end
          else fail (pos st) "aggregate query needs '| theta constant'"
        in
        let threshold = parse_value st in
        let result = Query.aggregate ~body ~agg ~args ~theta ~threshold in
        (match result with Ok q -> q | Error msg -> fail (pos st) msg)
  in
  if peek st = DOT then advance st;
  expect st EOF "end of input";
  q

let parse ?catalog input =
  match
    let st = { toks = tokenize input; cur = 0 } in
    parse_query ?catalog st
  with
  | q -> Ok q
  | exception Err (msg, pos) ->
      Error (Printf.sprintf "parse error at position %d: %s" pos msg)

let parse_exn ?catalog input =
  match parse ?catalog input with
  | Ok q -> q
  | Error msg -> invalid_arg ("Parser.parse: " ^ msg)
