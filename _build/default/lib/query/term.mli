(** Terms of denial-constraint bodies: variables or ground constants. *)

type t = Var of string | Const of Relational.Value.t

val is_var : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
