(** Relational atoms [R(t1, ..., tn)]. *)

type t = { rel : string; args : Term.t array }

val make : string -> Term.t list -> t
val arity : t -> int

val vars : t -> string list
(** Distinct variables, in order of first occurrence. *)

val constants : t -> (int * Relational.Value.t) list
(** [(position, value)] pairs for the constant arguments. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
