module Tuple = Relational.Tuple
module Constr = Relational.Constr

type t = {
  lrel : string;
  lattrs : int list;
  rrel : string;
  rattrs : int list;
}

let of_inds inds =
  List.map
    (fun (i : Constr.ind) ->
      {
        lrel = i.Constr.sub_rel;
        lattrs = i.Constr.sub_attrs;
        rrel = i.Constr.sup_rel;
        rattrs = i.Constr.sup_attrs;
      })
    inds

(* Terms (variables *and* constants) are grouped into identity classes,
   closed under the query's Eq comparisons; two atoms imply an equality
   constraint on the first-occurrence positions of every class they
   share. Constants matter: the star queries of Section 7 (q_r) are
   connected only through a repeated constant, and OptDCSat is sound on
   them precisely because atoms sharing a constant are linked here. *)
let of_query (q : Cq.t) =
  let atoms = Array.of_list q.Cq.positive in
  let n = Array.length atoms in
  let ids = Hashtbl.create 16 in
  let intern t =
    match Hashtbl.find_opt ids t with
    | Some i -> i
    | None ->
        let i = Hashtbl.length ids in
        Hashtbl.replace ids t i;
        i
  in
  Array.iter (fun a -> Array.iter (fun t -> ignore (intern t)) a.Atom.args) atoms;
  let uf = Bcgraph.Union_find.create (Hashtbl.length ids) in
  List.iter
    (fun (c : Cq.comparison) ->
      match c.Cq.op with
      | Cq.Eq -> (
          match (Hashtbl.find_opt ids c.Cq.clhs, Hashtbl.find_opt ids c.Cq.crhs) with
          | Some i, Some j -> Bcgraph.Union_find.union uf i j
          | _ -> ())
      | Cq.Neq | Cq.Lt | Cq.Gt -> ())
    q.Cq.comparisons;
  let repr t = Bcgraph.Union_find.find uf (Hashtbl.find ids t) in
  (* First position of each class within an atom. *)
  let positions (a : Atom.t) =
    let tbl = Hashtbl.create 8 in
    Array.iteri
      (fun pos term ->
        let r = repr term in
        if not (Hashtbl.mem tbl r) then Hashtbl.replace tbl r pos)
      a.Atom.args;
    tbl
  in
  let pos_tables = Array.map positions atoms in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let shared =
        Hashtbl.fold
          (fun r pi pairs ->
            match Hashtbl.find_opt pos_tables.(j) r with
            | Some pj -> (pi, pj) :: pairs
            | None -> pairs)
          pos_tables.(i) []
        |> List.sort compare
      in
      if shared <> [] then
        acc :=
          {
            lrel = atoms.(i).Atom.rel;
            lattrs = List.map fst shared;
            rrel = atoms.(j).Atom.rel;
            rattrs = List.map snd shared;
          }
          :: !acc
    done
  done;
  List.sort_uniq compare !acc

let satisfied_by_tuples theta l r =
  Tuple.equal (Tuple.project l theta.lattrs) (Tuple.project r theta.rattrs)

let pp ppf t =
  let pp_ints =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
      Format.pp_print_int
  in
  Format.fprintf ppf "%s[%a] = %s[%a]" t.lrel pp_ints t.lattrs t.rrel pp_ints
    t.rattrs
