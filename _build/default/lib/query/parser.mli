(** Concrete syntax for denial constraints, in the spirit of the paper's
    notation. Examples:

    {v
    q() :- TxOut(t, s, "U8Pk", a).
    q() :- TxIn(p1, s1, "AlicePK", 1, n1, "AliceSig"),
           TxOut(n1, o1, "BobPK", 1),
           TxIn(p2, s2, "AlicePK", 1, n2, "AliceSig"),
           TxOut(n2, o2, "BobPK", 1), n1 != n2.
    q() :- TxIn(p, s, "AlcPK", a, n, g), TxOut(n, o, pk, b), !Trusted(pk).
    q(sum(a)) :- TxIn(t, s, "AlcPK", a, n, g) | > 5.
    v}

    Identifiers are variables inside atom argument lists; constants are
    quoted strings, integers, floats, [true], [false] or [null]. [!]
    (or [not]) negates an atom. Comparisons use [=], [!=], [<], [>].
    An aggregate head is [q(agg(x, ...))] with agg one of [count], [cntd],
    [sum], [max], [min], and the threshold comparison follows the body
    after a [|]. The trailing period is optional, as is [<-] for [:-].

    {!Query.pp} prints in this same syntax; [parse (to_string q)]
    round-trips. *)

val parse : ?catalog:Relational.Schema.t -> string -> (Query.t, string) result
(** Parse a denial constraint; validates safety (and schema conformance
    when a catalog is given). The error string includes a character
    position. *)

val parse_exn : ?catalog:Relational.Schema.t -> string -> Query.t
(** Raises [Invalid_argument] with the parse error. *)
