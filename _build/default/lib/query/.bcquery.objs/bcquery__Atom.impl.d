lib/query/atom.ml: Array Format Hashtbl List String Term
