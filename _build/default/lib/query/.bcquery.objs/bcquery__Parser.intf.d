lib/query/parser.mli: Query Relational
