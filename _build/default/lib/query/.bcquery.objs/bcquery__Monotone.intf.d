lib/query/monotone.mli: Query
