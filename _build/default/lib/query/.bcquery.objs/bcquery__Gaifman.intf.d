lib/query/gaifman.mli: Cq Term
