lib/query/theta.ml: Array Atom Bcgraph Cq Format Hashtbl List Relational
