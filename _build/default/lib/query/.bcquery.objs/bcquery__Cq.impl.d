lib/query/cq.ml: Array Atom Format Hashtbl List Printf Relational Result Term
