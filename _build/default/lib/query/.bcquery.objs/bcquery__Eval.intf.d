lib/query/eval.mli: Cq Query Relational
