lib/query/query.ml: Array Cq Format List Printf Relational Term
