lib/query/query.mli: Cq Format Relational Term
