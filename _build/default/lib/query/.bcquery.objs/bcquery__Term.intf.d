lib/query/term.mli: Format Relational
