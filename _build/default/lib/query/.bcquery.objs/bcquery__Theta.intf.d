lib/query/theta.mli: Cq Format Relational
