lib/query/monotone.ml: Cq Printf Query
