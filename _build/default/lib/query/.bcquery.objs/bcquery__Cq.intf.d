lib/query/cq.mli: Atom Format Relational Term
