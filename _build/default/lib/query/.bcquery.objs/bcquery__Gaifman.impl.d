lib/query/gaifman.ml: Array Atom Bcgraph Cq Hashtbl List Term
