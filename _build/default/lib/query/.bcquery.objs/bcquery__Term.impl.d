lib/query/term.ml: Format Relational String
