lib/query/atom.mli: Format Relational Term
