lib/query/eval.ml: Array Atom Cq Hashtbl List Option Query Relational Seq String Term
