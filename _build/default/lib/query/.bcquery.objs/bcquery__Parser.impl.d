lib/query/parser.ml: Array Atom Buffer Cq List Printf Query Relational String Term
