(* Terms are interned into dense ids; atoms clique their terms together;
   Eq comparisons merge the two variables' nodes. *)

let build q =
  let ids = Hashtbl.create 16 in
  let terms = ref [] in
  let intern t =
    match Hashtbl.find_opt ids t with
    | Some i -> i
    | None ->
        let i = Hashtbl.length ids in
        Hashtbl.replace ids t i;
        terms := t :: !terms;
        i
  in
  let atoms = q.Cq.positive @ q.Cq.negated in
  List.iter (fun a -> Array.iter (fun t -> ignore (intern t)) a.Atom.args) atoms;
  let n = Hashtbl.length ids in
  let uf = Bcgraph.Union_find.create n in
  List.iter
    (fun a ->
      let members = Array.map intern a.Atom.args in
      Array.iter (fun i -> Bcgraph.Union_find.union uf members.(0) i) members)
    atoms;
  List.iter
    (fun (x, y) ->
      match (Hashtbl.find_opt ids (Term.Var x), Hashtbl.find_opt ids (Term.Var y)) with
      | Some i, Some j -> Bcgraph.Union_find.union uf i j
      | _ -> ())
    (Cq.var_equalities q);
  (uf, Array.of_list (List.rev !terms))

let components q =
  let uf, terms = build q in
  Bcgraph.Union_find.groups uf
  |> List.map (fun members -> List.map (fun i -> terms.(i)) members)

let is_connected q = List.length (components q) <= 1
