type agg = Count | Cntd | Sum | Max | Min

type theta = Lt | Gt | Eq

type aggregate = {
  body : Cq.t;
  agg : agg;
  agg_args : Term.t array;
  theta : theta;
  threshold : Relational.Value.t;
}

type t = Boolean of Cq.t | Aggregate of aggregate

let boolean q = Boolean q

let agg_name = function
  | Count -> "count"
  | Cntd -> "cntd"
  | Sum -> "sum"
  | Max -> "max"
  | Min -> "min"

let aggregate ~body ~agg ~args ~theta ~threshold =
  let arity = List.length args in
  let arity_ok =
    match agg with
    | Count -> true
    | Cntd -> arity >= 1
    | Sum | Max | Min -> arity = 1
  in
  if not arity_ok then
    Error (Printf.sprintf "aggregate %s cannot take %d arguments" (agg_name agg) arity)
  else
    let bad_arg =
      List.find_opt
        (function
          | Term.Var v -> not (List.mem v body.Cq.vars)
          | Term.Const _ -> true)
        args
    in
    match bad_arg with
    | Some t ->
        Error
          (Format.asprintf "aggregate argument %a is not a body variable"
             Term.pp t)
    | None ->
        Ok
          (Aggregate
             { body; agg; agg_args = Array.of_list args; theta; threshold })

let aggregate_exn ~body ~agg ~args ~theta ~threshold =
  match aggregate ~body ~agg ~args ~theta ~threshold with
  | Ok q -> q
  | Error msg -> invalid_arg ("Query.aggregate: " ^ msg)

let body = function Boolean q -> q | Aggregate a -> a.body

let is_positive q = Cq.is_positive (body q)

let pp_theta ppf t =
  Format.pp_print_string ppf (match t with Lt -> "<" | Gt -> ">" | Eq -> "=")

let pp ppf = function
  | Boolean q -> Format.fprintf ppf "q() :- %a." Cq.pp q
  | Aggregate a ->
      Format.fprintf ppf "q(%s(%a)) :- %a | %a %a." (agg_name a.agg)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Term.pp)
        (Array.to_list a.agg_args)
        Cq.pp a.body pp_theta a.theta Relational.Value.pp a.threshold

let to_string q = Format.asprintf "%a" pp q
