(** Constant coverage (Section 6.2): a component of pending transactions
    only needs to be explored when, together with the current state, it
    can cover the constants of every positive atom of the query — i.e.
    for every atom, some tuple agrees with all of the atom's constant
    positions. Components failing this test cannot yield a satisfying
    assignment and are skipped by OptDCSat. *)

val covers : Tagged_store.t -> int list -> Bcquery.Query.t -> bool
(** [covers store component q] — [Covers(R, T', q)] with [T'] the listed
    transactions. Leaves the store's active world unchanged. *)
