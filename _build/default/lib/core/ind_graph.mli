(** The ind-q-transaction graph [G^{q,ind}_T] (Section 6.2): nodes are the
    pending transactions; an edge [(T, T')] exists when some equality
    constraint θ ∈ Θ = ΘI ∪ Θq is satisfied by a tuple of [T] paired with
    a tuple of [T'].

    Connected components partition [T] into independently checkable sets
    for connected monotone denial constraints (Proposition 2). The edges
    derived from ΘI depend only on the database, so a session precomputes
    them once ({!base_edges}); the Θq edges are added per query. *)

val edges : Tagged_store.t -> Bcquery.Theta.t list -> (int * int) list
(** Distinct transaction pairs [(i, j)], [i < j], linked by one of the
    given equality constraints. Computed by hashing projections — linear
    in the pending rows plus output size. *)

val base_edges : Tagged_store.t -> (int * int) list
(** The ΘI edges (from the database's inclusion dependencies). *)

val build : Tagged_store.t -> Bcquery.Query.t -> (int * int) list -> Bcgraph.Undirected.t
(** [build store q base] is [G^{q,ind}_T]: the base ΘI edges plus the Θq
    edges of [q]'s body. *)

val edges_for_tx : Tagged_store.t -> Bcquery.Theta.t list -> int -> (int * int) list
(** The edges incident to one transaction, found through the store's
    indexes — incremental maintenance when a transaction is issued. *)
