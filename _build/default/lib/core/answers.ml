module R = Relational
module Q = Bcquery

type answer = { values : R.Tuple.t; world : int list option }

let validate_vars (body : Q.Cq.t) vars =
  match List.find_opt (fun v -> not (List.mem v body.Q.Cq.vars)) vars with
  | Some v -> Error (Printf.sprintf "unknown output variable %s" v)
  | None -> Ok ()

let projection (body : Q.Cq.t) vars =
  let index v =
    let rec go i = function
      | [] -> assert false
      | v' :: _ when String.equal v v' -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 body.Q.Cq.vars
  in
  let positions = List.map index vars in
  fun values -> Array.of_list (List.map (fun i -> values.(i)) positions)

(* Distinct projections of the query matches over the current source. *)
let distinct_answers src body vars =
  let project = projection body vars in
  let seen = R.Tuple.Tbl.create 64 in
  let acc = ref [] in
  Q.Eval.iter_matches src body (fun values _support ->
      let t = project values in
      if not (R.Tuple.Tbl.mem seen t) then begin
        R.Tuple.Tbl.replace seen t ();
        acc := t :: !acc
      end;
      `Continue);
  List.sort R.Tuple.compare !acc

let certain session (body : Q.Cq.t) ~vars =
  match validate_vars body vars with
  | Error _ as e -> e
  | Ok () ->
      let store = Session.store session in
      if Q.Cq.is_positive body then begin
        (* Monotone: true over R stays true in every world ⊇ R. *)
        Tagged_store.base_only store;
        Ok (distinct_answers (Tagged_store.source store) body vars)
      end
      else if Tagged_store.tx_count store > 24 then
        Error "negated body over too many pending transactions for enumeration"
      else begin
        (* Candidates are the answers over R (a possible world), then
           each must survive every other world. *)
        Tagged_store.base_only store;
        let candidates =
          distinct_answers (Tagged_store.source store) body vars
        in
        let survivors = Hashtbl.create 16 in
        List.iter (fun t -> Hashtbl.replace survivors t true) candidates;
        Poss.enumerate store (fun world ->
            Tagged_store.set_world store world;
            let here =
              distinct_answers (Tagged_store.source store) body vars
            in
            Hashtbl.iter
              (fun t alive ->
                if alive && not (List.exists (R.Tuple.equal t) here) then
                  Hashtbl.replace survivors t false)
              (Hashtbl.copy survivors);
            `Continue);
        Ok
          (List.filter
             (fun t -> Hashtbl.find_opt survivors t = Some true)
             candidates)
      end

let possible session (body : Q.Cq.t) ~vars =
  match validate_vars body vars with
  | Error _ as e -> e
  | Ok () ->
      let store = Session.store session in
      Tagged_store.all_visible store;
      let candidates = distinct_answers (Tagged_store.source store) body vars in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | t :: rest -> (
            let bindings =
              List.mapi (fun i v -> (v, R.Tuple.get t i)) vars
            in
            let specialized = Q.Query.Boolean (Q.Cq.substitute body bindings) in
            match Solver.solve session specialized with
            | Error msg -> Error msg
            | Ok (outcome, _) ->
                if outcome.Dcsat.satisfied then go acc rest
                else
                  go
                    ({ values = t; world = outcome.Dcsat.witness_world } :: acc)
                    rest)
      in
      go [] candidates

let uncertain session body ~vars =
  match certain session body ~vars with
  | Error _ as e -> e
  | Ok certain_answers -> (
      match possible session body ~vars with
      | Error _ as e -> e
      | Ok possible_answers ->
          Ok
            (List.filter_map
               (fun a ->
                 if List.exists (R.Tuple.equal a.values) certain_answers then
                   None
                 else Some a.values)
               possible_answers))
