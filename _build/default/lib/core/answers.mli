(** Certain and possible answers over a blockchain database (Section 5).

    For a non-Boolean conjunctive query with output variables [x̄]:

    - a {e certain} answer appears in the result over {e every} possible
      world. As the paper observes, for positive conjunctive queries the
      certain answers are exactly the result over the current state [R]
      (the smallest world, and positive queries are monotone). With
      negation, certainty requires checking all worlds — supported by
      exhaustive enumeration for small pending sets.
    - a {e possible} answer appears in the result over {e some} possible
      world. Each candidate (a match over [R ∪ T]) is decided by
      specializing the query with the candidate's constants and asking
      the denial-constraint solver whether the specialization is
      violable — possible answers are exactly the unsatisfied
      specializations, so all of Section 6's machinery applies. *)

type answer = {
  values : Relational.Tuple.t;  (** Output-variable values, in order. *)
  world : int list option;
      (** For possible answers: a witness world containing the answer. *)
}

val certain :
  Session.t -> Bcquery.Cq.t -> vars:string list ->
  (Relational.Tuple.t list, string) result
(** Distinct certain answers, sorted. [vars] must be body variables.
    [Error] when the body has negation and the pending set exceeds the
    enumeration limit. *)

val possible :
  Session.t -> Bcquery.Cq.t -> vars:string list -> (answer list, string) result
(** Distinct possible answers, sorted by value. [Error] if some
    specialization cannot be decided (non-monotone over a large pending
    set). *)

val uncertain :
  Session.t -> Bcquery.Cq.t -> vars:string list ->
  (Relational.Tuple.t list, string) result
(** Possible but not certain: the answers whose membership in the query
    result depends on which pending transactions get accepted — the
    interesting ones for a user reasoning about the future. *)
