(** Hypothetical transactions — the paper's primary workflow (Example 4,
    Section 7): before actually issuing a transaction, the user adds it
    {e hypothetically} to the pending set and checks her denial
    constraints; only if they are satisfied is the transaction safe to
    broadcast.

    [with_transaction] extends a warm session in place — the loaded
    tuples, indexes, fd-transaction graph, ΘI edges and includability
    flags are all shared, and only the hypothetical transaction's node
    and edges are computed (Section 6.3's steady-state maintenance) —
    runs the callback, and rolls everything back. On a large pending set
    this is orders of magnitude cheaper than rebuilding a session per
    what-if (see the benchmark's ablation section). *)

val with_transaction :
  Session.t ->
  ?label:string ->
  (string * Relational.Tuple.t) list ->
  (Session.t -> int -> 'a) ->
  'a
(** [with_transaction session rows f] calls [f extended_session tx_id]
    where [tx_id] is the hypothetical transaction's id, then rolls the
    shared store back (also on exception). The extended session must not
    be used after [f] returns. Nesting is allowed (LIFO). *)

val safe_to_issue :
  Session.t ->
  ?label:string ->
  (string * Relational.Tuple.t) list ->
  Bcquery.Query.t list ->
  (bool * (Bcquery.Query.t * Dcsat.outcome) list, string) result
(** Dry-run a transaction against a list of denial constraints using the
    dispatching solver: [Ok (true, outcomes)] when every constraint
    remains satisfied with the transaction pending, so it is safe to
    broadcast. [Error] if some constraint cannot be decided. *)
