(** Deriving contradicting transactions — the first future-work item of
    Section 8 ("automatically derive a new transaction that contradicts
    previous transactions"), in schema-generic form.

    A transaction [T'] contradicts a pending transaction [T] when no
    possible world contains both — achieved by making [T'] collide with
    [T] on a functional dependency: they agree on some fd's lhs but
    differ on its rhs (for Bitcoin's [TxIn] key this is precisely a
    double spend of the same outpoint, the paper's footnote-3 "more
    attractive contradicting transaction").

    The derivation copies the target's rows and renames one rhs value
    consistently throughout (so internal inclusion dependencies keep
    holding), then checks that the candidate is individually includable
    and really conflicts. *)

val derive :
  Session.t -> int -> ((string * Relational.Tuple.t) list, string) result
(** [derive session id] builds a transaction contradicting pending
    transaction [id], or explains why none was found. The result is
    verified: it is includable over the current state alone and collides
    with the target on a functional dependency. *)

val conflicts_on_fd :
  Session.t -> int -> (string * Relational.Tuple.t) list -> bool
(** Whether the candidate rows collide with pending transaction [id] on
    some fd of the database (same lhs projection, different rhs) — the
    sufficient condition for mutual exclusion in every world. *)
