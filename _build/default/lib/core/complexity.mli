(** The complexity classification of Theorems 1–2 and Corollary 1, as an
    executable decision table: given a database's constraint profile Δ
    and a denial constraint's query class, what is the data complexity of
    [DCSat(Q, Δ)]?

    Useful for tooling (warn before an expensive check), documentation,
    and tests that pin the implementation to the paper's statements. The
    classification is about the {e class} an instance belongs to —
    individual instances may of course be easy. *)

type verdict =
  | Ptime of string  (** Tractable; the string cites the theorem. *)
  | Conp_complete of string
  | Conp of string
      (** In CoNP (Corollary 1); completeness not claimed by the paper
          for this exact class. *)

val classify : Bcdb.t -> Bcquery.Query.t -> verdict
(** Classify with respect to the database's constraint types and the
    query's syntactic class (positivity, aggregate, comparison
    operator). *)

val verdict_string : verdict -> string
val pp : Format.formatter -> verdict -> unit
