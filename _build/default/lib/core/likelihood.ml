module R = Relational
module Q = Bcquery
module Bitset = Bcgraph.Bitset

type model = { probs : int -> float }

let clamp p = Float.max 0.0 (Float.min 1.0 p)
let uniform p = { probs = (fun _ -> clamp p) }
let of_weights arr = { probs = (fun i -> clamp arr.(i)) }

let logistic_feerate ~fee_rates ?(midpoint = 1.0) ?(steepness = 2.0) () =
  {
    probs =
      (fun i -> clamp (1.0 /. (1.0 +. exp (-.steepness *. (fee_rates.(i) -. midpoint)))));
  }

let probability m i = m.probs i

(* Greedy deterministic repair: proposed transactions in decreasing
   probability (ties by id) are appended while consistency holds, looping
   until a fixpoint so that dependency chains inside the proposal are
   honoured regardless of their probabilities. *)
let repair session model proposal =
  let store = Session.store session in
  let db = Session.db session in
  let order =
    Bitset.to_list proposal
    |> List.sort (fun a b ->
           match Float.compare (model.probs b) (model.probs a) with
           | 0 -> Int.compare a b
           | c -> c)
  in
  let saved = Tagged_store.world store in
  let k = Tagged_store.tx_count store in
  let included = Bitset.create k in
  Tagged_store.set_world store included;
  let src = Tagged_store.source store in
  let remaining = ref order in
  let progress = ref true in
  while !progress && !remaining <> [] do
    progress := false;
    remaining :=
      List.filter
        (fun id ->
          let rows = Tagged_store.tx_rows store id in
          if R.Check.batch_consistent src db.Bcdb.constraints rows then begin
            Bitset.add included id;
            Tagged_store.set_world store included;
            progress := true;
            false
          end
          else true)
        !remaining
  done;
  Tagged_store.set_world store saved;
  included

let violates session q world =
  let store = Session.store session in
  let saved = Tagged_store.world store in
  Tagged_store.set_world store world;
  let result = Q.Eval.eval (Tagged_store.source store) q in
  Tagged_store.set_world store saved;
  result

let exact_violation_probability session model q =
  let store = Session.store session in
  let k = Tagged_store.tx_count store in
  if k > 20 then
    invalid_arg "Likelihood.exact_violation_probability: too many pending txs";
  let total = ref 0.0 in
  for bits = 0 to (1 lsl k) - 1 do
    let proposal = Bitset.create k in
    let weight = ref 1.0 in
    for i = 0 to k - 1 do
      let p = model.probs i in
      if bits land (1 lsl i) <> 0 then begin
        Bitset.add proposal i;
        weight := !weight *. p
      end
      else weight := !weight *. (1.0 -. p)
    done;
    if !weight > 0.0 then begin
      let world = repair session model proposal in
      if violates session q world then total := !total +. !weight
    end
  done;
  !total

type estimate = { probability : float; std_error : float; samples : int }

let estimate_violation_probability ?(seed = 0x5eed) ?(samples = 1000) session
    model q =
  if samples <= 0 then
    invalid_arg "Likelihood.estimate_violation_probability: samples <= 0";
  let store = Session.store session in
  let k = Tagged_store.tx_count store in
  let state = Random.State.make [| seed |] in
  let hits = ref 0 in
  for _ = 1 to samples do
    let proposal = Bitset.create k in
    for i = 0 to k - 1 do
      if Random.State.float state 1.0 < model.probs i then Bitset.add proposal i
    done;
    let world = repair session model proposal in
    if violates session q world then incr hits
  done;
  let p = float_of_int !hits /. float_of_int samples in
  {
    probability = p;
    std_error = sqrt (p *. (1.0 -. p) /. float_of_int samples);
    samples;
  }
