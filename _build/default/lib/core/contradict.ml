module R = Relational
module V = R.Value

let mutate = function
  | V.Str s -> V.Str (s ^ "~dbl")
  | V.Int i -> V.Int ((i * 2) + 1_000_003)
  | V.Float f -> V.Float (f +. 1_000_003.5)
  | V.Bool b -> V.Bool (not b)
  | V.Null -> V.Int 1_000_003

let conflicts_on_fd session id rows =
  let db = Session.db session in
  let target = db.Bcdb.pending.(id) in
  List.exists
    (fun (f : R.Constr.fd) ->
      List.exists
        (fun orig ->
          List.exists
            (fun (rel, tuple) ->
              String.equal rel f.R.Constr.frel
              && R.Tuple.equal
                   (R.Tuple.project orig f.R.Constr.lhs)
                   (R.Tuple.project tuple f.R.Constr.lhs)
              && not
                   (R.Tuple.equal
                      (R.Tuple.project orig f.R.Constr.rhs)
                      (R.Tuple.project tuple f.R.Constr.rhs)))
            rows)
        (Pending.rows_for target f.R.Constr.frel))
    (Bcdb.fds db)

let includable_from_base session rows =
  let store = Session.store session in
  let db = Session.db session in
  let saved = Tagged_store.world store in
  Tagged_store.base_only store;
  let grouped =
    List.fold_left
      (fun acc (rel, tuple) ->
        let prev = Option.value (List.assoc_opt rel acc) ~default:[] in
        (rel, tuple :: prev) :: List.remove_assoc rel acc)
      [] rows
  in
  let ok =
    R.Check.batch_consistent (Tagged_store.source store) db.Bcdb.constraints
      grouped
  in
  Tagged_store.set_world store saved;
  ok

(* Candidate rhs values to rename: for each fd over a relation the target
   touches, each row's value at an rhs position outside the lhs. *)
let rename_candidates db (target : Pending.t) =
  List.concat_map
    (fun (f : R.Constr.fd) ->
      let rhs_only =
        List.filter (fun p -> not (List.mem p f.R.Constr.lhs)) f.R.Constr.rhs
      in
      List.concat_map
        (fun tuple -> List.map (fun p -> tuple.(p)) rhs_only)
        (Pending.rows_for target f.R.Constr.frel))
    (Bcdb.fds db)
  |> List.sort_uniq V.compare

let rename_everywhere rows v v' =
  List.map
    (fun (rel, tuple) ->
      ( rel,
        Array.map (fun x -> if V.equal x v then v' else x) tuple ))
    rows

let derive session id =
  let db = Session.db session in
  if id < 0 || id >= Array.length db.Bcdb.pending then
    Error "no such pending transaction"
  else begin
    let target = db.Bcdb.pending.(id) in
    let viable candidate =
      conflicts_on_fd session id candidate
      && includable_from_base session candidate
    in
    let attempt v =
      let candidate = rename_everywhere target.Pending.rows v (mutate v) in
      if viable candidate then Some candidate else None
    in
    match List.find_map attempt (rename_candidates db target) with
    | Some candidate -> Ok candidate
    | None ->
        Error
          "no single-value renaming yields an includable conflicting \
           transaction (the target may have no fd-protected rows, or its \
           inclusion dependencies cannot be met from the current state)"
  end
