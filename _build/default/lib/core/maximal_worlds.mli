(** Enumeration of the {e maximal} possible worlds: the worlds produced
    by running [getMaximal] over each maximal clique of the
    fd-transaction graph (Section 6.1). For monotone properties these are
    the only worlds that matter; the solvers use this enumeration
    internally and it is exposed here for analytics (e.g. "how much could
    X at most receive across all futures"). Distinct cliques can yield
    the same world; duplicates are filtered. *)

val iter :
  Session.t ->
  ?restrict:int list ->
  (Bcgraph.Bitset.t -> [ `Continue | `Stop ]) ->
  unit
(** Each distinct maximal world, as its included-transaction set.
    [restrict] limits the candidate transactions (e.g. to one component
    of the ind-q-transaction graph). *)

val count : Session.t -> int
val list : Session.t -> int list list
(** Sorted id lists, in enumeration order. *)

val extremum :
  Session.t ->
  (Relational.Source.t -> 'a) ->
  compare:('a -> 'a -> int) ->
  ('a * int list) option
(** Evaluate a function over every maximal world and keep the largest
    result (with its world) under [compare]. [None] when there are no
    pending transactions — the base state is then the only (and maximal)
    world, which the caller can evaluate directly. *)
