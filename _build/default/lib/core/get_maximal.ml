let run store candidates =
  let db = Tagged_store.db store in
  Closure.run store ~constraints:db.Bcdb.constraints ~candidates

let run_list store ids =
  run store (Bcgraph.Bitset.of_list (Tagged_store.tx_count store) ids)
