module R = Relational
module V = R.Value

(* ------------------------------------------------------------------ *)
(* Line-oriented tokenizer: each declaration fits on one line (a tx row
   is "NAME(v, ...)" on its own line under a "tx" header). *)

type line =
  | Relation_decl of string * string list
  | Key_decl of string * string list
  | Fd_decl of string * string list * string list
  | Ind_decl of string * string list * string * string list
  | State_row of string * V.t list
  | Tx_header of string option
  | Tx_row of string * V.t list

exception Err of int * string

let fail lineno msg = raise (Err (lineno, msg))

let strip_comment s =
  let cut c s = match String.index_opt s c with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  cut '#' s |> cut '%'

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '~'

(* Parse "NAME(item, item, ...)" returning the name and raw item
   strings; items may contain quoted strings with commas. *)
let parse_call lineno s =
  match String.index_opt s '(' with
  | None -> fail lineno "expected NAME(...)"
  | Some lp ->
      let name = String.trim (String.sub s 0 lp) in
      if name = "" then fail lineno "missing name before '('";
      let n = String.length s in
      if s.[n - 1] <> ')' then fail lineno "missing closing ')'";
      let body = String.sub s (lp + 1) (n - lp - 2) in
      (* Split on commas outside quotes; a backslash escapes the next
         character inside a quoted string. *)
      let items = ref [] in
      let buf = Buffer.create 16 in
      let in_quote = ref false in
      let escaped = ref false in
      String.iter
        (fun c ->
          if !escaped then begin
            Buffer.add_char buf c;
            escaped := false
          end
          else if !in_quote && c = '\\' then begin
            Buffer.add_char buf c;
            escaped := true
          end
          else if c = '"' then begin
            in_quote := not !in_quote;
            Buffer.add_char buf c
          end
          else if c = ',' && not !in_quote then begin
            items := Buffer.contents buf :: !items;
            Buffer.clear buf
          end
          else Buffer.add_char buf c)
        body;
      if Buffer.length buf > 0 || !items <> [] then
        items := Buffer.contents buf :: !items;
      let items = List.rev_map String.trim !items in
      if List.exists (fun i -> i = "") items && List.length items > 1 then
        fail lineno "empty item in argument list";
      (name, List.filter (fun i -> i <> "") items)

let parse_value lineno raw =
  let n = String.length raw in
  if n = 0 then fail lineno "empty value"
  else if raw.[0] = '"' then begin
    if n < 2 || raw.[n - 1] <> '"' then fail lineno "unterminated string";
    (* Undo OCaml-style escapes produced by the printer (%S). *)
    let buf = Buffer.create (n - 2) in
    let i = ref 1 in
    while !i < n - 1 do
      let c = raw.[!i] in
      if c = '\\' && !i + 1 < n - 1 then begin
        (match raw.[!i + 1] with
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | other -> Buffer.add_char buf other);
        i := !i + 2
      end
      else begin
        Buffer.add_char buf c;
        incr i
      end
    done;
    V.Str (Buffer.contents buf)
  end
  else
    match raw with
    | "true" -> V.Bool true
    | "false" -> V.Bool false
    | "null" -> V.Null
    | _ -> (
        match int_of_string_opt raw with
        | Some i -> V.Int i
        | None -> (
            match float_of_string_opt raw with
            | Some f -> V.Float f
            | None ->
                fail lineno
                  (Printf.sprintf "cannot parse value %S (strings are quoted)" raw)))

let check_attr lineno a =
  if a = "" || not (String.for_all is_ident_char a) then
    fail lineno (Printf.sprintf "bad attribute name %S" a);
  a

let parse_line lineno s =
  let s = String.trim (strip_comment s) in
  if s = "" then None
  else if String.length s >= 9 && String.sub s 0 9 = "relation " then begin
    let name, attrs = parse_call lineno (String.sub s 9 (String.length s - 9)) in
    Some (Relation_decl (name, List.map (check_attr lineno) attrs))
  end
  else if String.length s >= 4 && String.sub s 0 4 = "key " then begin
    let name, attrs = parse_call lineno (String.sub s 4 (String.length s - 4)) in
    Some (Key_decl (name, List.map (check_attr lineno) attrs))
  end
  else if String.length s >= 3 && String.sub s 0 3 = "fd " then begin
    let name, items = parse_call lineno (String.sub s 3 (String.length s - 3)) in
    (* items were split on commas; the arrow lives inside one item,
       e.g. "a, b -> c, d" splits as ["a"; "b -> c"; "d"]. *)
    let lhs = ref [] and rhs = ref [] and seen_arrow = ref false in
    List.iter
      (fun item ->
        match
          let rec find i =
            if i + 1 >= String.length item then None
            else if item.[i] = '-' && item.[i + 1] = '>' then Some i
            else find (i + 1)
          in
          find 0
        with
        | Some i ->
            if !seen_arrow then fail lineno "two arrows in fd";
            seen_arrow := true;
            let l = String.trim (String.sub item 0 i) in
            let r =
              String.trim (String.sub item (i + 2) (String.length item - i - 2))
            in
            if l <> "" then lhs := l :: !lhs;
            if r <> "" then rhs := r :: !rhs
        | None ->
            if !seen_arrow then rhs := item :: !rhs else lhs := item :: !lhs)
      items;
    if not !seen_arrow then fail lineno "fd needs '->'";
    Some
      (Fd_decl
         ( name,
           List.rev_map (check_attr lineno) !lhs,
           List.rev_map (check_attr lineno) !rhs ))
  end
  else if String.length s >= 4 && String.sub s 0 4 = "ind " then begin
    let rest = String.sub s 4 (String.length s - 4) in
    let sep = "<=" in
    let idx =
      let rec find i =
        if i + 1 >= String.length rest then fail lineno "ind needs '<='"
        else if rest.[i] = '<' && rest.[i + 1] = '=' then i
        else find (i + 1)
      in
      find 0
    in
    let left = String.trim (String.sub rest 0 idx) in
    let right =
      String.trim (String.sub rest (idx + String.length sep)
                     (String.length rest - idx - String.length sep))
    in
    let sub_name, sub_attrs = parse_call lineno left in
    let sup_name, sup_attrs = parse_call lineno right in
    Some
      (Ind_decl
         ( sub_name,
           List.map (check_attr lineno) sub_attrs,
           sup_name,
           List.map (check_attr lineno) sup_attrs ))
  end
  else if String.length s >= 6 && String.sub s 0 6 = "state " then begin
    let name, items = parse_call lineno (String.sub s 6 (String.length s - 6)) in
    Some (State_row (name, List.map (parse_value lineno) items))
  end
  else if s = "tx" then Some (Tx_header None)
  else if String.length s >= 3 && String.sub s 0 3 = "tx " then
    Some (Tx_header (Some (String.trim (String.sub s 3 (String.length s - 3)))))
  else begin
    let name, items = parse_call lineno s in
    Some (Tx_row (name, List.map (parse_value lineno) items))
  end

(* ------------------------------------------------------------------ *)

let of_string input =
  match
    let lines = String.split_on_char '\n' input in
    let parsed =
      List.concat
        (List.mapi
           (fun i raw ->
             match parse_line (i + 1) raw with
             | Some l -> [ (i + 1, l) ]
             | None -> [])
           lines)
    in
    let schemas = ref [] in
    let constraints = ref [] in
    let state_rows = ref [] in
    let txs = ref [] (* (label option, rows ref) in reverse *) in
    let find_schema lineno name =
      match List.assoc_opt name !schemas with
      | Some s -> s
      | None -> fail lineno (Printf.sprintf "relation %s not declared" name)
    in
    let check_row lineno name values =
      let schema = find_schema lineno name in
      if List.length values <> R.Schema.arity schema then
        fail lineno
          (Printf.sprintf "%s expects %d values, got %d" name
             (R.Schema.arity schema) (List.length values));
      (name, R.Tuple.make values)
    in
    List.iter
      (fun (lineno, l) ->
        match l with
        | Relation_decl (name, attrs) ->
            if List.mem_assoc name !schemas then
              fail lineno (Printf.sprintf "relation %s declared twice" name);
            let schema =
              try R.Schema.relation name attrs
              with Invalid_argument msg -> fail lineno msg
            in
            schemas := (name, schema) :: !schemas
        | Key_decl (name, attrs) ->
            let schema = find_schema lineno name in
            let c =
              try R.Constr.key schema attrs
              with Invalid_argument msg | Failure msg -> fail lineno msg
                 | Not_found -> fail lineno ("unknown attribute in key on " ^ name)
            in
            constraints := c :: !constraints
        | Fd_decl (name, lhs, rhs) ->
            let schema = find_schema lineno name in
            let c =
              try R.Constr.fd schema lhs rhs
              with Invalid_argument msg -> fail lineno msg
                 | Not_found -> fail lineno ("unknown attribute in fd on " ^ name)
            in
            constraints := c :: !constraints
        | Ind_decl (sub_name, sub_attrs, sup_name, sup_attrs) ->
            let sub = find_schema lineno sub_name in
            let sup = find_schema lineno sup_name in
            let c =
              try R.Constr.ind ~sub sub_attrs ~sup sup_attrs
              with Invalid_argument msg -> fail lineno msg
                 | Not_found -> fail lineno "unknown attribute in ind"
            in
            constraints := c :: !constraints
        | State_row (name, values) ->
            state_rows := check_row lineno name values :: !state_rows
        | Tx_header label -> txs := (label, ref []) :: !txs
        | Tx_row (name, values) -> (
            match !txs with
            | [] -> fail lineno "transaction row before any 'tx' header"
            | (_, rows) :: _ -> rows := check_row lineno name values :: !rows))
      parsed;
    let catalog = R.Schema.of_list (List.rev_map snd !schemas) in
    let state = R.Database.create catalog in
    R.Database.insert_all state (List.rev !state_rows);
    let txs = List.rev !txs in
    List.iteri
      (fun i (_, rows) ->
        if !rows = [] then
          fail 0 (Printf.sprintf "transaction #%d has no rows" (i + 1)))
      txs;
    let labels =
      List.mapi
        (fun i (label, _) ->
          Option.value label ~default:(Printf.sprintf "T%d" (i + 1)))
        txs
    in
    Bcdb.create ~state
      ~constraints:(List.rev !constraints)
      ~pending:(List.map (fun (_, rows) -> List.rev !rows) txs)
      ~labels ()
  with
  | result -> result
  | exception Err (lineno, msg) ->
      Error (Printf.sprintf "line %d: %s" lineno msg)

let to_string (db : Bcdb.t) =
  let buf = Buffer.create 4096 in
  let catalog = Bcdb.catalog db in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun schema ->
      pr "relation %s(%s)\n" schema.R.Schema.name
        (String.concat ", " (Array.to_list schema.R.Schema.attrs)))
    (R.Schema.relations catalog);
  Buffer.add_char buf '\n';
  List.iter
    (fun c ->
      let attr_names schema positions =
        String.concat ", "
          (List.map (fun i -> schema.R.Schema.attrs.(i)) positions)
      in
      match c with
      | R.Constr.Fd f ->
          let schema = R.Schema.find catalog f.R.Constr.frel in
          if R.Constr.is_key schema f then
            pr "key %s(%s)\n" f.R.Constr.frel (attr_names schema f.R.Constr.lhs)
          else
            pr "fd %s(%s -> %s)\n" f.R.Constr.frel
              (attr_names schema f.R.Constr.lhs)
              (attr_names schema f.R.Constr.rhs)
      | R.Constr.Ind i ->
          let sub = R.Schema.find catalog i.R.Constr.sub_rel in
          let sup = R.Schema.find catalog i.R.Constr.sup_rel in
          pr "ind %s(%s) <= %s(%s)\n" i.R.Constr.sub_rel
            (attr_names sub i.R.Constr.sub_attrs)
            i.R.Constr.sup_rel
            (attr_names sup i.R.Constr.sup_attrs))
    db.Bcdb.constraints;
  Buffer.add_char buf '\n';
  let pr_tuple name tuple =
    Printf.sprintf "%s(%s)" name
      (String.concat ", "
         (List.map V.to_string (Array.to_list tuple)))
  in
  List.iter
    (fun schema ->
      let rel = R.Database.relation db.Bcdb.state schema.R.Schema.name in
      R.Relation.iter
        (fun tuple -> pr "state %s\n" (pr_tuple schema.R.Schema.name tuple))
        rel)
    (R.Schema.relations catalog);
  Array.iter
    (fun (tx : Pending.t) ->
      pr "\ntx %s\n" tx.Pending.label;
      List.iter
        (fun (name, tuple) -> pr "  %s\n" (pr_tuple name tuple))
        tx.Pending.rows)
    db.Bcdb.pending;
  Buffer.contents buf

let parse_row catalog input =
  match
    let name, items = parse_call 1 (String.trim (strip_comment input)) in
    match R.Schema.find_opt catalog name with
    | None -> Error (Printf.sprintf "unknown relation %s" name)
    | Some schema ->
        let values = List.map (parse_value 1) items in
        if List.length values <> R.Schema.arity schema then
          Error
            (Printf.sprintf "%s expects %d values, got %d" name
               (R.Schema.arity schema) (List.length values))
        else Ok (name, R.Tuple.make values)
  with
  | result -> result
  | exception Err (_, msg) -> Error msg

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_string contents
  | exception Sys_error msg -> Error msg

let save path db =
  match Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string db)) with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg
