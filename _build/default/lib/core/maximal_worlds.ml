module Bitset = Bcgraph.Bitset

let iter session ?restrict f =
  let store = Session.store session in
  let fd = Session.fd_graph session in
  let k = Tagged_store.tx_count store in
  if k = 0 then ignore (f (Bitset.create 0))
  else begin
    let nodes = Option.value restrict ~default:(List.init k Fun.id) in
    let sub, back = Bcgraph.Undirected.induced fd.Fd_graph.graph nodes in
    let seen = Hashtbl.create 16 in
    Bcgraph.Bron_kerbosch.iter_maximal_cliques sub (fun clique ->
        let members = List.map (fun i -> back.(i)) clique in
        let world = Get_maximal.run_list store members in
        let key = Bitset.to_list world in
        if Hashtbl.mem seen key then `Continue
        else begin
          Hashtbl.replace seen key ();
          f world
        end)
  end

let list session =
  let acc = ref [] in
  iter session (fun w ->
      acc := Bitset.to_list w :: !acc;
      `Continue);
  List.rev !acc

let count session = List.length (list session)

let extremum session eval ~compare =
  let store = Session.store session in
  let best = ref None in
  iter session (fun world ->
      Tagged_store.set_world store world;
      let value = eval (Tagged_store.source store) in
      (match !best with
      | Some (current, _) when compare value current <= 0 -> ()
      | Some _ | None -> best := Some (value, Bitset.to_list world));
      `Continue);
  !best
