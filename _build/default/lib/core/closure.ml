module R = Relational
module Bitset = Bcgraph.Bitset

let run store ~constraints ~candidates =
  let saved = Tagged_store.world store in
  let k = Tagged_store.tx_count store in
  let included = Bitset.create k in
  Tagged_store.set_world store included;
  let src = Tagged_store.source store in
  let remaining = ref (Bitset.to_list candidates) in
  let progress = ref true in
  while !progress && !remaining <> [] do
    progress := false;
    remaining :=
      List.filter
        (fun id ->
          let rows = Tagged_store.tx_rows store id in
          if R.Check.batch_consistent src constraints rows then begin
            Bitset.add included id;
            Tagged_store.set_world store included;
            progress := true;
            false
          end
          else true)
        !remaining
  done;
  Tagged_store.set_world store saved;
  included
