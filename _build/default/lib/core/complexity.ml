module Q = Bcquery

type verdict = Ptime of string | Conp_complete of string | Conp of string

let verdict_string = function
  | Ptime why -> "PTIME (" ^ why ^ ")"
  | Conp_complete why -> "CoNP-complete (" ^ why ^ ")"
  | Conp why -> "in CoNP (" ^ why ^ ")"

let pp ppf v = Format.pp_print_string ppf (verdict_string v)

let classify db q =
  let profile = Bcdb.constraint_profile db in
  let has_ind = List.mem `Ind profile in
  let has_fd = List.mem `Fd profile || List.mem `Key profile in
  let fd_only = not has_ind in
  let ind_only = not has_fd in
  match q with
  | Q.Query.Boolean body ->
      if fd_only then Ptime "Theorem 1(1): DCSat(Qc, {key, fd})"
      else if ind_only then Ptime "Theorem 1(1): DCSat(Qc, {ind})"
      else if Q.Cq.is_positive body then
        Conp_complete "Theorem 1(2): DCSat(Q+c, {key, ind})"
      else Conp_complete "Theorem 1(2) with Corollary 1: DCSat(Qc, {key, ind})"
  | Q.Query.Aggregate a ->
      let positive = Q.Cq.is_positive a.Q.Query.body in
      let agg = a.Q.Query.agg and theta = a.Q.Query.theta in
      if fd_only then begin
        match (agg, theta) with
        | (Q.Query.Max | Q.Query.Min), _ ->
            if positive then Ptime "Theorem 2(1): DCSat(Qmax, {key, fd})"
            else Ptime "Theorem 2(1): DCSat(Qmax, {key, fd}) (min by symmetry)"
        | (Q.Query.Count | Q.Query.Cntd | Q.Query.Sum), Q.Query.Lt ->
            Ptime "Theorem 2(2): DCSat(Qα,<, {key, fd})"
        | (Q.Query.Count | Q.Query.Cntd | Q.Query.Sum), (Q.Query.Gt | Q.Query.Eq)
          ->
            if positive then
              Conp_complete "Theorem 2(3): DCSat(Q+α,θ, {key}), θ ∈ {>, =}"
            else Conp "Corollary 1; hardness from Theorem 2(3)"
      end
      else if ind_only then begin
        match (agg, theta) with
        | (Q.Query.Count | Q.Query.Cntd | Q.Query.Sum), Q.Query.Gt ->
            if positive then Ptime "Theorem 2(4): DCSat(Q+α,>, {ind})"
            else Conp_complete "Theorem 2(6): DCSat(Qα,>, {ind})"
        | Q.Query.Max, Q.Query.Gt ->
            Ptime "Theorem 2(7): DCSat(Qmax,>, {ind})"
        | Q.Query.Min, Q.Query.Lt ->
            Ptime "Theorem 2(7): DCSat(Qmax,>, {ind}) (min by symmetry)"
        | ( (Q.Query.Count | Q.Query.Cntd | Q.Query.Sum | Q.Query.Max),
            (Q.Query.Lt | Q.Query.Eq) ) ->
            if positive then
              Conp_complete "Theorem 2(5): DCSat(Q+α,θ, {ind}), θ ∈ {<, =}"
            else Conp "Corollary 1; hardness from Theorem 2(5)"
        | Q.Query.Min, (Q.Query.Gt | Q.Query.Eq) ->
            if positive then
              Conp_complete
                "Theorem 2(5): DCSat(Q+α,θ, {ind}) (min by symmetry)"
            else Conp "Corollary 1; hardness from Theorem 2(5)"
      end
      else begin
        match agg with
        | Q.Query.Max | Q.Query.Min ->
            if positive then
              Conp_complete "Theorem 2(8): DCSat(Q+max, {key, ind})"
            else Conp "Corollary 1; hardness from Theorem 2(8)"
        | Q.Query.Count | Q.Query.Cntd | Q.Query.Sum ->
            if positive then
              Conp_complete
                "Theorems 2(3)/2(5): hardness holds within {key, ind}"
            else Conp "Corollary 1"
      end
