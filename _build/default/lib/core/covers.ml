module Q = Bcquery

let covers store component q =
  let saved = Tagged_store.world store in
  Tagged_store.set_world_list store component;
  let src = Tagged_store.source store in
  let body = Q.Query.body q in
  let atom_covered (a : Q.Atom.t) =
    match Q.Atom.constants a with
    | [] -> true
    | binds -> not (Seq.is_empty (src.Relational.Source.lookup a.Q.Atom.rel binds))
  in
  let ok = List.for_all atom_covered body.Q.Cq.positive in
  Tagged_store.set_world store saved;
  ok
