module Tuple = Relational.Tuple

type t = { id : int; label : string; rows : (string * Tuple.t) list }

let make ~id ?label rows =
  if id < 0 then invalid_arg "Pending.make: negative id";
  if rows = [] then invalid_arg "Pending.make: empty transaction";
  let seen = Hashtbl.create 8 in
  let rows =
    List.filter
      (fun (rel, tuple) ->
        let key = (rel, Tuple.hash tuple, tuple) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      rows
  in
  let label = Option.value label ~default:(Printf.sprintf "T%d" id) in
  { id; label; rows }

let rows_for t rel =
  List.filter_map
    (fun (r, tuple) -> if String.equal r rel then Some tuple else None)
    t.rows

let relations t =
  let seen = Hashtbl.create 4 in
  List.filter_map
    (fun (r, _) ->
      if Hashtbl.mem seen r then None
      else begin
        Hashtbl.replace seen r ();
        Some r
      end)
    t.rows

let size t = List.length t.rows

let pp ppf t =
  Format.fprintf ppf "@[<v 2>%s:@ %a@]" t.label
    (Format.pp_print_list (fun ppf (rel, tuple) ->
         Format.fprintf ppf "%s%a" rel Tuple.pp tuple))
    t.rows
