(** [getMaximal] (Figure 4): the unique maximal possible world over
    [(R, I, T')] for a candidate transaction set [T'] that is pairwise
    fd-consistent (a clique of the fd-transaction graph). Transactions
    are appended greedily while the full constraint set stays satisfied;
    transactions whose inclusion dependencies can never be met within the
    candidate set are left out. *)

val run : Tagged_store.t -> Bcgraph.Bitset.t -> Bcgraph.Bitset.t
(** The included-transaction set of the maximal world. *)

val run_list : Tagged_store.t -> int list -> Bcgraph.Bitset.t
