let with_transaction session ?label rows f =
  let store = Session.store session in
  let db' = Bcdb.with_pending (Session.db session) ?label rows in
  let journal = Tagged_store.append_tx store db' in
  Fun.protect
    ~finally:(fun () -> Tagged_store.undo store journal)
    (fun () ->
      let extended = Session.extended session in
      f extended (Tagged_store.tx_count store - 1))

let safe_to_issue session ?label rows constraints =
  with_transaction session ?label rows (fun extended _id ->
      let rec go acc = function
        | [] -> Ok (true, List.rev acc)
        | q :: rest -> (
            match Solver.solve extended q with
            | Error msg -> Error msg
            | Ok (outcome, _) ->
                if outcome.Dcsat.satisfied then go ((q, outcome) :: acc) rest
                else Ok (false, List.rev ((q, outcome) :: acc)))
      in
      go [] constraints)
