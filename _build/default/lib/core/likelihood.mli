(** Weighting possible worlds by likelihood — the second future-work
    direction of Section 8 ("denial constraint satisfaction when weighting
    possible worlds by learning an estimation of their actual
    likelihood").

    The model assigns each pending transaction an independent inclusion
    probability (e.g. a logistic function of its fee rate, reflecting
    miners' preference for high-fee transactions). A random {e proposal}
    subset drawn from the product measure is repaired into a possible
    world by greedily appending proposed transactions in decreasing
    probability order while the constraints hold — the deterministic
    repair makes the world a function of the proposal, inducing a
    distribution over [Poss(D)].

    The quantity of interest is the probability that the realized world
    violates a denial constraint: a risk-weighted refinement of the
    paper's all-or-nothing [D |= ¬q]. *)

type model

val uniform : float -> model
(** Every transaction included with the same probability. *)

val of_weights : float array -> model
(** Per-transaction probabilities (clamped to [0, 1]); the array is
    indexed by transaction id. *)

val logistic_feerate : fee_rates:float array -> ?midpoint:float -> ?steepness:float -> unit -> model
(** [p_i = 1 / (1 + exp (-steepness * (rate_i - midpoint)))]; defaults:
    midpoint 1.0, steepness 2.0. *)

val probability : model -> int -> float

val repair : Session.t -> model -> Bcgraph.Bitset.t -> Bcgraph.Bitset.t
(** The deterministic greedy repair of a proposal into a possible world. *)

type estimate = {
  probability : float;
  std_error : float;  (** Binomial standard error of the estimate. *)
  samples : int;
}

val exact_violation_probability :
  Session.t -> model -> Bcquery.Query.t -> float
(** Sum of proposal probabilities whose repaired world satisfies the
    query. Exponential: raises [Invalid_argument] beyond 20 pending
    transactions. *)

val estimate_violation_probability :
  ?seed:int ->
  ?samples:int ->
  Session.t ->
  model ->
  Bcquery.Query.t ->
  estimate
(** Monte-Carlo estimate (default 1000 samples, fixed default seed for
    reproducibility). *)
