(** Pending (insert) transactions: the elements of the set [T] of a
    blockchain database (Section 4). A transaction is a set of ground
    tuples over (some of) the relations of the schema; it has been issued
    but not (yet) accepted into the current state, and may be appended at
    any point in the future — or never. *)

type t = private {
  id : int;  (** Dense index within the database's pending set. *)
  label : string;  (** Human-readable name, e.g. a txid. *)
  rows : (string * Relational.Tuple.t) list;  (** (relation, tuple) inserts. *)
}

val make : id:int -> ?label:string -> (string * Relational.Tuple.t) list -> t
(** Duplicate rows are dropped. Raises [Invalid_argument] on an empty row
    list or a negative id. *)

val rows_for : t -> string -> Relational.Tuple.t list
(** The tuples this transaction inserts into the named relation. *)

val relations : t -> string list
(** Distinct relation names touched, in first-occurrence order. *)

val size : t -> int
val pp : Format.formatter -> t -> unit
