lib/core/tractable.mli: Bcdb Bcquery Dcsat Session
