lib/core/answers.mli: Bcquery Relational Session
