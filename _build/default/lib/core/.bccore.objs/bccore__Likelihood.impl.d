lib/core/likelihood.ml: Array Bcdb Bcgraph Bcquery Float Int List Random Relational Session Tagged_store
