lib/core/explain.mli: Bcdb Bcquery Complexity Dcsat Format Session
