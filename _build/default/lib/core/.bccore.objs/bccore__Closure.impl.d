lib/core/closure.ml: Bcgraph List Relational Tagged_store
