lib/core/tagged_store.mli: Bcdb Bcgraph Relational
