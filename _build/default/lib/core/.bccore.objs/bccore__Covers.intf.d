lib/core/covers.mli: Bcquery Tagged_store
