lib/core/fd_graph.mli: Bcgraph Tagged_store
