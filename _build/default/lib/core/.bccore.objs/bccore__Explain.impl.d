lib/core/explain.ml: Array Bcdb Bcquery Complexity Dcsat Format List Pending Result Session String Tagged_store Tractable
