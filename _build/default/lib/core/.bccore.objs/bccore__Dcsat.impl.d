lib/core/dcsat.ml: Array Bcgraph Bcquery Covers Fd_graph Format Fun Get_maximal Ind_graph List Poss Relational Session Tagged_store Unix
