lib/core/pending.mli: Format Relational
