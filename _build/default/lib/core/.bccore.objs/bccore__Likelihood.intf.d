lib/core/likelihood.mli: Bcgraph Bcquery Session
