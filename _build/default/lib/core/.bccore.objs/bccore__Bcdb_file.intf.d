lib/core/bcdb_file.mli: Bcdb Relational
