lib/core/solver.ml: Bcquery Dcsat Format Printf Result Session Tagged_store Tractable
