lib/core/poss.mli: Bcgraph Tagged_store
