lib/core/bcdb_file.ml: Array Bcdb Buffer In_channel List Option Out_channel Pending Printf Relational String
