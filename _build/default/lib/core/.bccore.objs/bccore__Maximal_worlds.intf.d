lib/core/maximal_worlds.mli: Bcgraph Relational Session
