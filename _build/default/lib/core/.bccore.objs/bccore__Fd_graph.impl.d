lib/core/fd_graph.ml: Array Bcdb Bcgraph Hashtbl Int List Option Pending Relational Seq Tagged_store
