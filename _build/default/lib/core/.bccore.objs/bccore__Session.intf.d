lib/core/session.mli: Bcdb Fd_graph Tagged_store
