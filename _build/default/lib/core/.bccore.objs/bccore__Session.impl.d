lib/core/session.ml: Array Bcdb Bcquery Fd_graph Ind_graph Lazy Relational Tagged_store
