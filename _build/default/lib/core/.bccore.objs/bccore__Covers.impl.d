lib/core/covers.ml: Bcquery List Relational Seq Tagged_store
