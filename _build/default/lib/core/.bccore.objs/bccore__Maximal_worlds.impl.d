lib/core/maximal_worlds.ml: Array Bcgraph Fd_graph Fun Get_maximal Hashtbl List Option Session Tagged_store
