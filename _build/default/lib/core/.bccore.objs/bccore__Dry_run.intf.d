lib/core/dry_run.mli: Bcquery Dcsat Relational Session
