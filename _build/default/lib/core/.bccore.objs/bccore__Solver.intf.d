lib/core/solver.mli: Bcdb Bcquery Dcsat Session Tractable
