lib/core/poss.ml: Bcdb Bcgraph Closure Hashtbl List Option Queue Relational Tagged_store
