lib/core/ind_graph.mli: Bcgraph Bcquery Tagged_store
