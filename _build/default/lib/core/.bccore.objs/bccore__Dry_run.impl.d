lib/core/dry_run.ml: Bcdb Dcsat Fun List Session Solver Tagged_store
