lib/core/contradict.mli: Relational Session
