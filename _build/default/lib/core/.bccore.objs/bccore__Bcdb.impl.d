lib/core/bcdb.ml: Array Format List Pending Relational
