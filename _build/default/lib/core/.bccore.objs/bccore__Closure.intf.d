lib/core/closure.mli: Bcgraph Relational Tagged_store
