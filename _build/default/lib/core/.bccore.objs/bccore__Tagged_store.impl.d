lib/core/tagged_store.ml: Array Bcdb Bcgraph Hashtbl Int List Map Option Pending Relational Seq String
