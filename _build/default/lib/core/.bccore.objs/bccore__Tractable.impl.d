lib/core/tractable.ml: Array Bcdb Bcgraph Bcquery Dcsat Fd_graph Get_maximal Hashtbl Int List Relational Session Tagged_store Unix
