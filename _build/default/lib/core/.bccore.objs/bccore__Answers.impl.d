lib/core/answers.ml: Array Bcquery Dcsat Hashtbl List Poss Printf Relational Session Solver String Tagged_store
