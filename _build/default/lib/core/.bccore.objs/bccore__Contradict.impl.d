lib/core/contradict.ml: Array Bcdb List Option Pending Relational Session String Tagged_store
