lib/core/ind_graph.ml: Array Bcdb Bcgraph Bcquery Hashtbl List Pending Relational Seq Tagged_store
