lib/core/bcdb.mli: Format Pending Relational
