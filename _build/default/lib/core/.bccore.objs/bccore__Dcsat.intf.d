lib/core/dcsat.mli: Bcquery Format Relational Session
