lib/core/get_maximal.ml: Bcdb Bcgraph Closure Tagged_store
