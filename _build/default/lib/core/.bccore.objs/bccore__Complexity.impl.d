lib/core/complexity.ml: Bcdb Bcquery Format List
