lib/core/get_maximal.mli: Bcgraph Tagged_store
