lib/core/pending.ml: Format Hashtbl List Option Printf Relational String
