lib/core/complexity.mli: Bcdb Bcquery Format
