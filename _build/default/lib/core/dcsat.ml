module R = Relational
module Q = Bcquery
module Bitset = Bcgraph.Bitset
module Undirected = Bcgraph.Undirected

type stats = {
  worlds_checked : int;
  cliques_enumerated : int;
  components_total : int;
  components_covered : int;
  precheck_decided : bool;
  runtime : float;
}

type outcome = {
  satisfied : bool;
  witness_world : int list option;
  witness : (string * R.Value.t) list option;
  stats : stats;
}

type refusal = [ `Not_monotone of string | `Not_connected ]

type event =
  | Precheck_decided
  | Components_found of int
  | Component_skipped of int list
  | Component_entered of int list
  | Clique_found of int list
  | World_evaluated of int list * bool

let pp_refusal ppf = function
  | `Not_monotone reason -> Format.fprintf ppf "not monotone: %s" reason
  | `Not_connected -> Format.pp_print_string ppf "not a connected conjunctive query"

let pp_outcome ppf o =
  Format.fprintf ppf "%s (worlds=%d cliques=%d comps=%d/%d precheck=%b %.4fs)"
    (if o.satisfied then "SATISFIED" else "UNSATISFIED")
    o.stats.worlds_checked o.stats.cliques_enumerated
    o.stats.components_covered o.stats.components_total
    o.stats.precheck_decided o.stats.runtime

(* Mutable counters threaded through a run. *)
type counters = {
  mutable worlds : int;
  mutable cliques : int;
  mutable comps : int;
  mutable covered : int;
}

let fresh_counters () = { worlds = 0; cliques = 0; comps = 0; covered = 0 }

let finish ~t0 ~precheck counters satisfied witness_world witness =
  {
    satisfied;
    witness_world;
    witness;
    stats =
      {
        worlds_checked = counters.worlds;
        cliques_enumerated = counters.cliques;
        components_total = counters.comps;
        components_covered = counters.covered;
        precheck_decided = precheck;
        runtime = Unix.gettimeofday () -. t0;
      };
  }

let eval_world session counters world =
  let store = Session.store session in
  counters.worlds <- counters.worlds + 1;
  Tagged_store.set_world store world;
  Tagged_store.source store

(* Evaluate q over the world; on violation return the witness. *)
let violated session counters q world =
  let src = eval_world session counters world in
  match q with
  | Q.Query.Boolean body -> (
      match Q.Eval.find_witness src body with
      | Some assignment -> Some (Bitset.to_list world, Some assignment)
      | None -> None)
  | Q.Query.Aggregate _ ->
      if Q.Eval.eval src q then Some (Bitset.to_list world, None) else None

let brute_force session q =
  let t0 = Unix.gettimeofday () in
  let store = Session.store session in
  let counters = fresh_counters () in
  let violation = ref None in
  Poss.enumerate store (fun world ->
      match violated session counters q world with
      | Some (txs, witness) ->
          violation := Some (txs, witness);
          `Stop
      | None -> `Continue);
  match !violation with
  | Some (txs, witness) ->
      finish ~t0 ~precheck:false counters false (Some txs) witness
  | None -> finish ~t0 ~precheck:false counters true None None

(* The monotone pre-check: q false over R ∪ T implies satisfied. *)
let precheck session q =
  let store = Session.store session in
  Tagged_store.all_visible store;
  not (Q.Eval.eval (Tagged_store.source store) q)

(* Iterate maximal worlds arising from the maximal cliques of the fd
   graph restricted to [nodes]; evaluate q on each. Returns a violation
   or None. Counts via [counters]. *)
let check_cliques ?(on_event = ignore) session counters q nodes =
  let store = Session.store session in
  let fd = Session.fd_graph session in
  let sub, back = Undirected.induced fd.Fd_graph.graph nodes in
  let violation = ref None in
  Bcgraph.Bron_kerbosch.iter_maximal_cliques sub (fun clique ->
      counters.cliques <- counters.cliques + 1;
      let members = List.map (fun i -> back.(i)) clique in
      on_event (Clique_found members);
      let world = Get_maximal.run_list store members in
      match violated session counters q world with
      | Some v ->
          on_event (World_evaluated (fst v, true));
          violation := Some v;
          `Stop
      | None ->
          on_event (World_evaluated (Bitset.to_list world, false));
          `Continue);
  !violation

let require_monotone q k =
  match Q.Monotone.analyze q with
  | Q.Monotone.Monotone -> k ()
  | Q.Monotone.Not_monotone reason -> Error (`Not_monotone reason)

let base_world_check session counters q =
  let store = Session.store session in
  let empty = Bitset.create (Tagged_store.tx_count store) in
  violated session counters q empty

let naive ?(use_precheck = true) ?(on_event = ignore) session q =
  require_monotone q @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let counters = fresh_counters () in
  if use_precheck && precheck session q then begin
    on_event Precheck_decided;
    Ok (finish ~t0 ~precheck:true counters true None None)
  end
  else begin
    let store = Session.store session in
    let k = Tagged_store.tx_count store in
    let all = List.init k Fun.id in
    let violation =
      if k = 0 then base_world_check session counters q
      else check_cliques ~on_event session counters q all
    in
    match violation with
    | Some (txs, witness) ->
        Ok (finish ~t0 ~precheck:false counters false (Some txs) witness)
    | None -> Ok (finish ~t0 ~precheck:false counters true None None)
  end

let opt ?(use_precheck = true) ?(use_covers = true) ?(on_event = ignore)
    session q =
  require_monotone q @@ fun () ->
  match q with
  | Q.Query.Aggregate _ -> Error `Not_connected
  | Q.Query.Boolean body ->
      if not (Q.Gaifman.is_connected body) then Error `Not_connected
      else begin
        let t0 = Unix.gettimeofday () in
        let counters = fresh_counters () in
        if use_precheck && precheck session q then begin
          on_event Precheck_decided;
          Ok (finish ~t0 ~precheck:true counters true None None)
        end
        else begin
          let store = Session.store session in
          let k = Tagged_store.tx_count store in
          let violation =
            if k = 0 then base_world_check session counters q
            else begin
              let graph = Ind_graph.build store q (Session.ind_base_edges session) in
              let components = Bcgraph.Components.of_graph graph in
              counters.comps <- List.length components;
              on_event (Components_found (List.length components));
              let rec go = function
                | [] -> None
                | component :: rest ->
                    if (not use_covers) || Covers.covers store component q
                    then begin
                      counters.covered <- counters.covered + 1;
                      on_event (Component_entered component);
                      match check_cliques ~on_event session counters q component with
                      | Some v -> Some v
                      | None -> go rest
                    end
                    else begin
                      on_event (Component_skipped component);
                      go rest
                    end
              in
              go components
            end
          in
          match violation with
          | Some (txs, witness) ->
              Ok (finish ~t0 ~precheck:false counters false (Some txs) witness)
          | None -> Ok (finish ~t0 ~precheck:false counters true None None)
        end
      end
