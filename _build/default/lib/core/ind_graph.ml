module R = Relational
module Q = Bcquery

let edges store thetas =
  let db = Tagged_store.db store in
  let seen = Hashtbl.create 256 in
  let acc = ref [] in
  let record i j =
    if i <> j then begin
      let key = if i < j then (i, j) else (j, i) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        acc := key :: !acc
      end
    end
  in
  List.iter
    (fun (theta : Q.Theta.t) ->
      (* projection value -> (txs with a matching lrel tuple,
                              txs with a matching rrel tuple) *)
      let buckets = R.Tuple.Tbl.create 256 in
      let bucket proj =
        match R.Tuple.Tbl.find_opt buckets proj with
        | Some cell -> cell
        | None ->
            let cell = (ref [], ref []) in
            R.Tuple.Tbl.replace buckets proj cell;
            cell
      in
      Array.iter
        (fun (tx : Pending.t) ->
          List.iter
            (fun tuple ->
              let left, _ =
                bucket (R.Tuple.project tuple theta.Q.Theta.lattrs)
              in
              left := tx.Pending.id :: !left)
            (Pending.rows_for tx theta.Q.Theta.lrel);
          List.iter
            (fun tuple ->
              let _, right =
                bucket (R.Tuple.project tuple theta.Q.Theta.rattrs)
              in
              right := tx.Pending.id :: !right)
            (Pending.rows_for tx theta.Q.Theta.rrel))
        db.Bcdb.pending;
      R.Tuple.Tbl.iter
        (fun _ (left, right) ->
          List.iter (fun i -> List.iter (fun j -> record i j) !right) !left)
        buckets)
    thetas;
  List.rev !acc

let edges_for_tx store thetas id =
  let db = Tagged_store.db store in
  let tx = db.Bcdb.pending.(id) in
  let saved = Tagged_store.world store in
  Tagged_store.all_visible store;
  let src = Tagged_store.source store in
  let acc = Hashtbl.create 8 in
  let record j =
    if j >= 0 && j <> id then
      Hashtbl.replace acc (if j < id then (j, id) else (id, j)) ()
  in
  (* For each theta, match this transaction's lrel rows against everyone's
     rrel rows (via index lookup on the projection columns) and vice
     versa. *)
  let probe ~my_attrs ~my_rel ~other_rel ~other_attrs =
    List.iter
      (fun tuple ->
        let proj = R.Tuple.project tuple my_attrs in
        let binds = List.map2 (fun col v -> (col, v)) other_attrs (Array.to_list proj) in
        src.R.Source.lookup other_rel binds
        |> Seq.iter (fun other ->
               List.iter record (Tagged_store.origins store other_rel other)))
      (Pending.rows_for tx my_rel)
  in
  List.iter
    (fun (theta : Q.Theta.t) ->
      probe ~my_attrs:theta.Q.Theta.lattrs ~my_rel:theta.Q.Theta.lrel
        ~other_rel:theta.Q.Theta.rrel ~other_attrs:theta.Q.Theta.rattrs;
      probe ~my_attrs:theta.Q.Theta.rattrs ~my_rel:theta.Q.Theta.rrel
        ~other_rel:theta.Q.Theta.lrel ~other_attrs:theta.Q.Theta.lattrs)
    thetas;
  Tagged_store.set_world store saved;
  Hashtbl.fold (fun e () l -> e :: l) acc [] |> List.sort compare

let base_edges store =
  let db = Tagged_store.db store in
  edges store (Q.Theta.of_inds (Bcdb.inds db))

let build store q base =
  let k = Tagged_store.tx_count store in
  let g = Bcgraph.Undirected.create k in
  List.iter (fun (i, j) -> Bcgraph.Undirected.add_edge g i j) base;
  let q_edges = edges store (Q.Theta.of_query (Q.Query.body q)) in
  List.iter (fun (i, j) -> Bcgraph.Undirected.add_edge g i j) q_edges;
  g
