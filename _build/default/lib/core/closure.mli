(** The greedy append loop shared by [getMaximal] (Fig. 4) and
    possible-world recognition: repeatedly make visible any candidate
    transaction whose addition keeps the given constraints satisfied,
    until a fixpoint. Each successful step is one application of the
    can-append relation [→T,I] restricted to the candidate set.

    The consistency check per step is incremental: only the candidate's
    own rows are examined (fd violations must involve a new tuple; ind
    support can only grow). *)

val run :
  Tagged_store.t ->
  constraints:Relational.Constr.t list ->
  candidates:Bcgraph.Bitset.t ->
  Bcgraph.Bitset.t
(** Returns the set of transactions appended. The store's active world is
    restored before returning. *)
