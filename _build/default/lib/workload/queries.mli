(** The four denial-constraint families of the experimental evaluation
    (Section 7):

    - [qs]  — simple: "address X never receives bitcoins";
    - [qp i] — path: "no series of [i] transactions transfers bitcoins
      from X's output onward to a spend by Y";
    - [qr i] — star: "X never transfers bitcoins in [i] distinct
      transactions";
    - [qa n] — aggregate: "X never receives more than [n] in total".

    [instantiate] picks the constants from a generated dataset so that
    the denial constraint is satisfied (fresh keys that appear nowhere —
    the underlying query is false everywhere) or unsatisfied (keys of the
    planted structures — some possible world satisfies the query). *)

val qs : x:string -> Bcquery.Query.t
val qp : int -> x:string -> y:string -> Bcquery.Query.t
(** [qp i] has [i - 1] (TxOut, TxIn) atom pairs chained by transaction id
    and serial; [i >= 2]. *)

val qr : int -> x:string -> Bcquery.Query.t
(** [i >= 1] TxIn/TxOut pairs with pairwise-distinct new transaction
    ids. *)

val qa : x:string -> threshold:int -> Bcquery.Query.t

type family = Qs | Qp of int | Qr of int | Qa
type variant = Satisfied | Unsatisfied

val family_name : family -> string
val instantiate : Generator.sim -> family -> variant -> Bcquery.Query.t
