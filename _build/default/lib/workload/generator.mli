(** Synthetic Bitcoin economy, standing in for the real blockchain data
    of Section 7 (see DESIGN.md for the substitution rationale).

    A population of funded wallets exchanges random payments; a miner
    collects them into blocks. The first [state_blocks] blocks become the
    current state [R]; the transactions of the following [pending_blocks]
    blocks are the pending set [T] — exactly how the paper derived its
    pending transactions from "subsequent blocks". The generator
    additionally {e plants} deterministic structures the experiment
    queries need (a payment chain for the path queries, a star spender, a
    known aggregate receiver) and precomputes a pool of double-spend
    conflicts used to control the number of fd contradictions.

    Everything is deterministic in [seed]. *)

type params = {
  users : int;
  state_blocks : int;
  pending_blocks : int;
  txs_per_block : int;
  max_contradictions : int;
  seed : int;
}

val default_params : params

type planted = {
  chain : (string * string * string) list;
      (** Pending payment chain, in order: (txid, receiver pk of output 0,
          spender pk of its input). Length ≥ 6. *)
  star_spender : string;  (** pk that made ≥ 5 distinct pending payments. *)
  star_count : int;
  agg_receiver : string;  (** pk with a known pending received total. *)
  agg_total : int;
  fresh_pk : string;  (** A pk that appears nowhere in the data. *)
}

type sim = private {
  params : params;
  confirmed_txs : Chain.Tx.t list;  (** Blocks [0 .. state_blocks]. *)
  pending_by_block : Chain.Tx.t list list;
      (** Non-coinbase txs of each subsequent block, oldest block first. *)
  conflict_pool : Chain.Tx.t list;
      (** Prebuilt double-spends of distinct non-planted pending txs. *)
  planted : planted;
  resolver : Chain.Tx.outpoint -> Chain.Tx.output option;
      (** Full-history output resolver. *)
}

val generate : params -> sim

val dataset :
  sim -> ?pending_take:int -> ?contradictions:int -> unit -> Bccore.Bcdb.t
(** Build the blockchain database: the confirmed transactions as [R]; the
    first [pending_take] pending blocks' transactions (default: all) plus
    the first [contradictions] conflict transactions (default: 0) as [T].
    Raises [Invalid_argument] if more contradictions are requested than
    the pool holds. *)

val pending_count : sim -> pending_take:int -> contradictions:int -> int
