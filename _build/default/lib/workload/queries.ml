module Q = Bcquery
module V = Relational.Value

let var v = Q.Term.Var v
let str s = Q.Term.Const (V.Str s)
let atom = Q.Atom.make

let boolean ?comparisons positive =
  Q.Query.boolean (Q.Cq.make_exn ~positive ?comparisons ())

let qs ~x = boolean [ atom "TxOut" [ var "ntx"; var "s"; str x; var "a" ] ]

(* One (TxOut, TxIn) pair per hop: the output of transaction ntx_j is
   consumed inside transaction ntx_{j+1}. X receives in the first hop's
   output; Y is the spender in the last hop's input. *)
let qp i ~x ~y =
  if i < 2 then invalid_arg "Queries.qp: path length must be >= 2";
  let hops = i - 1 in
  let pair j =
    let ntx = Printf.sprintf "ntx%d" j in
    let ser = Printf.sprintf "s%d" j in
    let next = Printf.sprintf "ntx%d" (j + 1) in
    let out_pk = if j = 1 then str x else var (Printf.sprintf "pk%d" j) in
    let in_pk =
      if j = hops then str y else var (Printf.sprintf "spk%d" j)
    in
    [
      atom "TxOut" [ var ntx; var ser; out_pk; var (Printf.sprintf "a%d" j) ];
      atom "TxIn"
        [
          var ntx;
          var ser;
          in_pk;
          var (Printf.sprintf "a%d" j);
          var next;
          var (Printf.sprintf "sig%d" j);
        ];
    ]
  in
  boolean (List.concat_map pair (List.init hops (fun j -> j + 1)))

let qr i ~x =
  if i < 1 then invalid_arg "Queries.qr: star size must be >= 1";
  let branch j =
    [
      atom "TxIn"
        [
          var (Printf.sprintf "pntx%d" j);
          var (Printf.sprintf "s%d" j);
          str x;
          var (Printf.sprintf "a%d" j);
          var (Printf.sprintf "ntx%d" j);
          var (Printf.sprintf "sig%d" j);
        ];
      atom "TxOut"
        [
          var (Printf.sprintf "ntx%d" j);
          var (Printf.sprintf "t%d" j);
          var (Printf.sprintf "pk%d" j);
          var (Printf.sprintf "b%d" j);
        ];
    ]
  in
  let branches = List.init i (fun j -> j + 1) in
  let comparisons =
    List.concat_map
      (fun j ->
        List.filter_map
          (fun k ->
            if j < k then
              Some
                {
                  Q.Cq.clhs = var (Printf.sprintf "ntx%d" j);
                  op = Q.Cq.Neq;
                  crhs = var (Printf.sprintf "ntx%d" k);
                }
            else None)
          branches)
      branches
  in
  boolean ~comparisons (List.concat_map branch branches)

let qa ~x ~threshold =
  Q.Query.aggregate_exn
    ~body:
      (Q.Cq.make_exn
         ~positive:[ atom "TxOut" [ var "ntx"; var "s"; str x; var "a" ] ]
         ())
    ~agg:Q.Query.Sum ~args:[ var "a" ] ~theta:Q.Query.Gt
    ~threshold:(V.Int threshold)

type family = Qs | Qp of int | Qr of int | Qa
type variant = Satisfied | Unsatisfied

let family_name = function
  | Qs -> "qs"
  | Qp i -> Printf.sprintf "qp%d" i
  | Qr i -> Printf.sprintf "qr%d" i
  | Qa -> "qa"

let instantiate (sim : Generator.sim) family variant =
  let p = sim.Generator.planted in
  let fresh = p.Generator.fresh_pk in
  match (family, variant) with
  | Qs, Satisfied -> qs ~x:fresh
  | Qs, Unsatisfied -> qs ~x:p.Generator.agg_receiver
  | Qp i, Satisfied -> qp i ~x:fresh ~y:fresh
  | Qp i, Unsatisfied ->
      let hops = i - 1 in
      if hops > List.length p.Generator.chain - 1 then
        invalid_arg "Queries.instantiate: planted chain too short";
      (* X receives in the first chain transaction; Y signs the input of
         the transaction consuming hop [hops]'s output. *)
      let nth_receiver j =
        let _, receiver, _ = List.nth p.Generator.chain j in
        receiver
      in
      let x = nth_receiver 0 in
      (* The spender of hop j's output is the receiver of hop j: chain
         wallet j+1. *)
      let y = nth_receiver (hops - 1) in
      qp i ~x ~y
  | Qr i, Satisfied -> qr i ~x:fresh
  | Qr i, Unsatisfied ->
      if i > p.Generator.star_count then
        invalid_arg "Queries.instantiate: star too small";
      qr i ~x:p.Generator.star_spender
  | Qa, Satisfied -> qa ~x:fresh ~threshold:100
  | Qa, Unsatisfied ->
      qa ~x:p.Generator.agg_receiver ~threshold:(p.Generator.agg_total / 2)
