module C = Chain

type params = {
  users : int;
  state_blocks : int;
  pending_blocks : int;
  txs_per_block : int;
  max_contradictions : int;
  seed : int;
}

let default_params =
  {
    users = 40;
    state_blocks = 30;
    pending_blocks = 12;
    txs_per_block = 30;
    max_contradictions = 60;
    seed = 42;
  }

type planted = {
  chain : (string * string * string) list;
  star_spender : string;
  star_count : int;
  agg_receiver : string;
  agg_total : int;
  fresh_pk : string;
}

type sim = {
  params : params;
  confirmed_txs : C.Tx.t list;
  pending_by_block : C.Tx.t list list;
  conflict_pool : C.Tx.t list;
  planted : planted;
  resolver : C.Tx.outpoint -> C.Tx.output option;
}

let coin = 2_000_000
let coins_per_user = 8
let chain_hops = 6

let pk_of_wallet = C.Wallet.public_key

(* A payment built against the [effective] UTXO view (chain UTXO plus
   already-submitted pending transactions) and submitted to the node. *)
let issue node effective wallet ~to_ ~amount ~fee =
  match C.Wallet.pay wallet ~utxo:effective ~to_ ~amount ~fee with
  | Error msg -> Error msg
  | Ok tx -> (
      match C.Node.submit node tx with
      | Error reject -> Error (Format.asprintf "%a" C.Mempool.pp_reject reject)
      | Ok () -> (
          match C.Utxo.apply_tx effective tx with
          | Ok () -> Ok tx
          | Error msg -> Error ("effective view: " ^ msg)))

let issue_exn node effective wallet ~to_ ~amount ~fee =
  match issue node effective wallet ~to_ ~amount ~fee with
  | Ok tx -> tx
  | Error msg -> invalid_arg ("Generator.issue: " ^ msg)

let generate params =
  if params.users < 4 then invalid_arg "Generator.generate: need >= 4 users";
  let rng = Random.State.make [| params.seed |] in
  let wallets =
    Array.init params.users (fun i ->
        C.Wallet.create ~seed:(Printf.sprintf "user-%d-%d" params.seed i))
  in
  let chain_wallets =
    Array.init (chain_hops + 1) (fun i ->
        C.Wallet.create ~seed:(Printf.sprintf "chain-%d-%d" params.seed i))
  in
  let agg_wallet = C.Wallet.create ~seed:(Printf.sprintf "agg-%d" params.seed) in
  let miner = C.Wallet.create ~seed:"miner" in
  (* The star wallet is kept out of the background traffic so that its
     genesis coins — all locked by its primary key — are still unspent
     when the star payments are planted. *)
  let star_wallet =
    C.Wallet.create ~seed:(Printf.sprintf "star-%d" params.seed)
  in
  let initial =
    List.concat_map
      (fun w ->
        List.init coins_per_user (fun _ -> (C.Wallet.address w, coin)))
      (Array.to_list wallets)
    @ [ (C.Wallet.address chain_wallets.(0), 200_000) ]
    @ List.init 6 (fun _ -> (C.Wallet.address star_wallet, 100_000))
  in
  let node = C.Node.create ~initial in
  let total_blocks = params.state_blocks + params.pending_blocks in
  let first_pending = params.state_blocks + 1 in
  (* (sender wallet, tx) for pending non-planted payments: double-spend
     candidates. *)
  let conflict_candidates = ref [] in
  let planted_txids = Hashtbl.create 16 in
  let chain_txs = ref [] in
  let star_payments = ref 0 in
  let agg_received = ref 0 in
  let rand_amount () = 1_000 + Random.State.int rng 40_000 in
  let rand_fee () = 50 + Random.State.int rng 500 in
  let pick_sender effective =
    let rec try_pick n =
      if n = 0 then None
      else
        let w = wallets.(Random.State.int rng params.users) in
        if C.Wallet.balance w effective > 100_000 then Some w
        else try_pick (n - 1)
    in
    try_pick 20
  in
  let pick_receiver sender =
    let rec go () =
      let w = wallets.(Random.State.int rng params.users) in
      if w == sender then go () else w
    in
    go ()
  in
  for height = 1 to total_blocks do
    let effective = C.Utxo.copy (C.Node.utxo node) in
    let pending_region = height >= first_pending in
    (* Planted structures live in the first pending blocks. *)
    if height = first_pending then begin
      (* The payment chain c0 -> c1 -> ... -> c6, each hop spending the
         previous hop's output 0 (each chain wallet owns only that coin,
         and the hop pays the full amount minus fee, so there is no
         change). *)
      let amount = ref 100_000 in
      for hop = 0 to chain_hops - 1 do
        amount := !amount - 300;
        let tx =
          issue_exn node effective chain_wallets.(hop)
            ~to_:(C.Wallet.address chain_wallets.(hop + 1))
            ~amount:!amount ~fee:300
        in
        Hashtbl.replace planted_txids tx.C.Tx.txid ();
        chain_txs :=
          ( tx.C.Tx.txid,
            pk_of_wallet chain_wallets.(hop + 1),
            pk_of_wallet chain_wallets.(hop) )
          :: !chain_txs
      done;
      (* The star: one wallet spends five distinct coins in five distinct
         transactions. *)
      for _ = 1 to 5 do
        let receiver = pick_receiver star_wallet in
        let tx =
          issue_exn node effective star_wallet
            ~to_:(C.Wallet.address receiver) ~amount:10_000 ~fee:200
        in
        Hashtbl.replace planted_txids tx.C.Tx.txid ();
        incr star_payments
      done
    end;
    if pending_region && height - first_pending < 4 then begin
      (* Aggregate receiver: a known pending income stream. *)
      match pick_sender effective with
      | Some sender ->
          let tx =
            issue_exn node effective sender ~to_:(C.Wallet.address agg_wallet)
              ~amount:25_000 ~fee:(rand_fee ())
          in
          Hashtbl.replace planted_txids tx.C.Tx.txid ();
          agg_received := !agg_received + 25_000
      | None -> ()
    end;
    (* Background traffic. *)
    for _ = 1 to params.txs_per_block do
      match pick_sender effective with
      | None -> ()
      | Some sender -> (
          let receiver = pick_receiver sender in
          match
            issue node effective sender
              ~to_:(C.Wallet.fresh_address receiver)
              ~amount:(rand_amount ()) ~fee:(rand_fee ())
          with
          | Ok tx ->
              if pending_region then
                conflict_candidates := (sender, tx) :: !conflict_candidates
          | Error _ -> ())
    done;
    match C.Node.mine node ~coinbase_script:(C.Wallet.address miner) () with
    | Ok _ -> ()
    | Error msg -> invalid_arg ("Generator.generate: mining failed: " ^ msg)
  done;
  let chain_state = C.Node.chain node in
  let resolver = C.Chain_state.find_output chain_state in
  let blocks = C.Chain_state.blocks chain_state in
  let confirmed_txs =
    List.concat_map
      (fun (b : C.Block.t) -> b.C.Block.txs)
      (List.filteri (fun i _ -> i <= params.state_blocks) blocks)
  in
  let pending_by_block =
    List.filteri (fun i _ -> i > params.state_blocks) blocks
    |> List.map (fun (b : C.Block.t) ->
           List.filter (fun tx -> not (C.Tx.is_coinbase tx)) b.C.Block.txs)
  in
  (* Double-spend pool: one conflict per distinct non-planted pending
     payment, oldest first. *)
  let conflict_pool =
    !conflict_candidates |> List.rev
    |> List.filter (fun ((_ : C.Wallet.t), (tx : C.Tx.t)) ->
           not (Hashtbl.mem planted_txids tx.C.Tx.txid))
    |> List.filter_map (fun (w, (tx : C.Tx.t)) ->
           match tx.C.Tx.inputs with
           | [] -> None
           | input :: _ -> (
               match resolver input.C.Tx.prev with
               | None -> None
               | Some (prev : C.Tx.output) ->
                   if prev.C.Tx.amount <= 1_000 then None
                   else
                     let outputs =
                       [
                         {
                           C.Tx.amount = prev.C.Tx.amount - 777;
                           script = C.Wallet.fresh_address w;
                         };
                       ]
                     in
                     (match
                        C.Wallet.sign_inputs w
                          ~prevs:[ (input.C.Tx.prev, prev) ]
                          ~outputs
                      with
                     | Ok inputs -> Some (C.Tx.create ~inputs ~outputs)
                     | Error _ -> None)))
    |> List.filteri (fun i _ -> i < params.max_contradictions)
  in
  let planted =
    {
      chain = List.rev !chain_txs;
      star_spender = pk_of_wallet star_wallet;
      star_count = !star_payments;
      agg_receiver = pk_of_wallet agg_wallet;
      agg_total = !agg_received;
      fresh_pk = "PKfresh-never-used";
    }
  in
  {
    params;
    confirmed_txs;
    pending_by_block;
    conflict_pool;
    planted;
    resolver;
  }

let dataset sim ?pending_take ?(contradictions = 0) () =
  let take = Option.value pending_take ~default:(List.length sim.pending_by_block) in
  if contradictions > List.length sim.conflict_pool then
    invalid_arg
      (Printf.sprintf
         "Generator.dataset: %d contradictions requested, pool has %d"
         contradictions
         (List.length sim.conflict_pool));
  let pending =
    List.concat (List.filteri (fun i _ -> i < take) sim.pending_by_block)
    @ List.filteri (fun i _ -> i < contradictions) sim.conflict_pool
  in
  match
    C.Encode.bcdb_of_txs ~confirmed:sim.confirmed_txs ~pending
      ~resolver:sim.resolver
  with
  | Ok db -> db
  | Error msg -> invalid_arg ("Generator.dataset: " ^ msg)

let pending_count sim ~pending_take ~contradictions =
  List.fold_left ( + ) 0
    (List.filteri
       (fun i _ -> i < pending_take)
       (List.map List.length sim.pending_by_block))
  + contradictions
