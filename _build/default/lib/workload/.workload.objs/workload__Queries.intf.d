lib/workload/queries.mli: Bcquery Generator
