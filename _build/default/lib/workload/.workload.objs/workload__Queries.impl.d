lib/workload/queries.ml: Bcquery Generator List Printf Relational
