lib/workload/datasets.mli: Generator
