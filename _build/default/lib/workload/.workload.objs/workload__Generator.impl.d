lib/workload/generator.ml: Array Chain Format Hashtbl List Option Printf Random
