lib/workload/datasets.ml: Chain Generator List
