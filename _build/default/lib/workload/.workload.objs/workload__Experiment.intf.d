lib/workload/experiment.mli: Bccore Bcquery Queries
