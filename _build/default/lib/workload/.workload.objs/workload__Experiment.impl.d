lib/workload/experiment.ml: Bccore Format List Printf Queries String
