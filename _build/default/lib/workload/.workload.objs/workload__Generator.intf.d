lib/workload/generator.mli: Bccore Chain
