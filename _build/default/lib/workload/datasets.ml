module C = Chain

type preset = Small | Mid | Large

let name = function Small -> "D-small" | Mid -> "D-mid" | Large -> "D-large"

let params preset =
  let base = Generator.default_params in
  match preset with
  | Small -> { base with Generator.state_blocks = 20; txs_per_block = 25; seed = 11 }
  | Mid -> { base with Generator.state_blocks = 40; txs_per_block = 35; seed = 22 }
  | Large -> { base with Generator.state_blocks = 70; txs_per_block = 45; seed = 33 }

let sweep_params =
  {
    (params Mid) with
    Generator.pending_blocks = 50;
    max_contradictions = 60;
    seed = 44;
  }

let default_contradictions = 20

type stats = {
  blocks : int;
  transactions : int;
  input_rows : int;
  output_rows : int;
}

let stats_of_txs blocks txs =
  {
    blocks;
    transactions = List.length txs;
    input_rows =
      List.fold_left (fun acc (tx : C.Tx.t) -> acc + List.length tx.C.Tx.inputs) 0 txs;
    output_rows =
      List.fold_left
        (fun acc (tx : C.Tx.t) -> acc + List.length tx.C.Tx.outputs)
        0 txs;
  }

let state_stats (sim : Generator.sim) =
  stats_of_txs
    (sim.Generator.params.Generator.state_blocks + 1)
    sim.Generator.confirmed_txs

let pending_stats (sim : Generator.sim) ~pending_take ~contradictions =
  let pending =
    List.concat
      (List.filteri (fun i _ -> i < pending_take) sim.Generator.pending_by_block)
    @ List.filteri (fun i _ -> i < contradictions) sim.Generator.conflict_pool
  in
  stats_of_txs pending_take pending
