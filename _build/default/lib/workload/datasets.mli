(** Scaled dataset presets mirroring Table 1's D100/D200/D300 progression
    (laptop-scale; see DESIGN.md). [Small]/[Mid]/[Large] grow the current
    state while keeping a comparable pending set, exactly the axis of
    Fig. 6h; [sweep] is a [Mid]-sized economy with a long pending tail
    for the pending-transaction sweep of Fig. 6c/d. *)

type preset = Small | Mid | Large

val name : preset -> string
val params : preset -> Generator.params
val sweep_params : Generator.params
(** Mid-sized state with 50 pending blocks. *)

val default_contradictions : int
(** The paper's default: 20. *)

type stats = {
  blocks : int;
  transactions : int;
  input_rows : int;
  output_rows : int;
}

val state_stats : Generator.sim -> stats
val pending_stats : Generator.sim -> pending_take:int -> contradictions:int -> stats
