module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type index = int list Vtbl.t
(* value on the indexed column -> positions (most recent first) *)

type t = {
  schema : Schema.relation;
  mutable tuples : Tuple.t array;
  mutable len : int;
  present : unit Tuple.Tbl.t;
  indexes : (int, index) Hashtbl.t;
}

let create schema =
  {
    schema;
    tuples = [||];
    len = 0;
    present = Tuple.Tbl.create 64;
    indexes = Hashtbl.create 4;
  }

let schema r = r.schema
let name r = r.schema.Schema.name
let cardinality r = r.len

let grow r =
  let cap = Array.length r.tuples in
  if r.len >= cap then begin
    let ncap = max 16 (2 * cap) in
    let nt = Array.make ncap [||] in
    Array.blit r.tuples 0 nt 0 r.len;
    r.tuples <- nt
  end

let index_add idx v pos =
  let prev = Option.value (Vtbl.find_opt idx v) ~default:[] in
  Vtbl.replace idx v (pos :: prev)

let insert r t =
  if Tuple.arity t <> Schema.arity r.schema then
    invalid_arg
      (Printf.sprintf "Relation.insert: arity mismatch for %s (got %d, want %d)"
         (name r) (Tuple.arity t)
         (Schema.arity r.schema));
  if Tuple.Tbl.mem r.present t then false
  else begin
    grow r;
    r.tuples.(r.len) <- t;
    Tuple.Tbl.replace r.present t ();
    Hashtbl.iter (fun col idx -> index_add idx t.(col) r.len) r.indexes;
    r.len <- r.len + 1;
    true
  end

let mem r t = Tuple.Tbl.mem r.present t

let scan r =
  let n = r.len in
  let tuples = r.tuples in
  let rec go i () = if i >= n then Seq.Nil else Seq.Cons (tuples.(i), go (i + 1)) in
  go 0

let ensure_index r col =
  match Hashtbl.find_opt r.indexes col with
  | Some idx -> idx
  | None ->
      let idx = Vtbl.create (max 16 r.len) in
      for i = 0 to r.len - 1 do
        index_add idx r.tuples.(i).(col) i
      done;
      Hashtbl.replace r.indexes col idx;
      idx

let matches binds (t : Tuple.t) =
  List.for_all (fun (col, v) -> Value.equal t.(col) v) binds

let lookup r binds =
  match binds with
  | [] -> scan r
  | (col, v) :: rest ->
      let idx = ensure_index r col in
      let positions = Option.value (Vtbl.find_opt idx v) ~default:[] in
      let tuples = r.tuples in
      List.to_seq positions
      |> Seq.map (fun i -> tuples.(i))
      |> Seq.filter (matches rest)

let lookup_count_estimate r binds =
  match binds with
  | [] -> r.len
  | (col, v) :: _ ->
      let idx = ensure_index r col in
      List.length (Option.value (Vtbl.find_opt idx v) ~default:[])

let fold f r acc =
  let acc = ref acc in
  for i = 0 to r.len - 1 do
    acc := f r.tuples.(i) !acc
  done;
  !acc

let iter f r =
  for i = 0 to r.len - 1 do
    f r.tuples.(i)
  done

let to_list r = List.rev (fold List.cons r [])

let pp ppf r =
  Format.fprintf ppf "@[<v 2>%a:@ %a@]" Schema.pp_relation r.schema
    (Format.pp_print_list Tuple.pp)
    (to_list r)
