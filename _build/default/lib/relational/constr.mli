(** Integrity constraints of Section 4: functional dependencies (with key
    constraints as the special case [rhs = all attributes]) and inclusion
    dependencies. Attribute sets are stored as positional indices into the
    relation schema, resolved once at construction time. *)

type fd = { frel : string; lhs : int list; rhs : int list }
(** [X -> Y] over relation [frel]; [lhs]/[rhs] are attribute positions. *)

type ind = {
  sub_rel : string;
  sub_attrs : int list;
  sup_rel : string;
  sup_attrs : int list;
}
(** [sub_rel\[sub_attrs\] ⊆ sup_rel\[sup_attrs\]]; the two position lists
    have equal length. *)

type t = Fd of fd | Ind of ind

val fd : Schema.relation -> string list -> string list -> t
(** [fd r xs ys] builds [X -> Y] from attribute names. Raises
    [Invalid_argument]/[Not_found] on bad attribute names. *)

val key : Schema.relation -> string list -> t
(** [key r xs] is the key constraint [X -> all attributes of r]. *)

val ind : sub:Schema.relation -> string list -> sup:Schema.relation -> string list -> t
(** Raises [Invalid_argument] if the attribute lists have different
    lengths. *)

val is_key : Schema.relation -> fd -> bool
(** True when the fd's rhs covers every attribute of the schema. *)

val fds : t list -> fd list
(** The functional dependencies (including keys) among a constraint set. *)

val inds : t list -> ind list

val classify : Schema.t -> t list -> [ `Key | `Fd | `Ind ] list
(** Constraint-type profile of a set, for the complexity dispatcher. *)

val pp : Schema.t -> Format.formatter -> t -> unit
