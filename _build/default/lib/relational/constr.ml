type fd = { frel : string; lhs : int list; rhs : int list }

type ind = {
  sub_rel : string;
  sub_attrs : int list;
  sup_rel : string;
  sup_attrs : int list;
}

type t = Fd of fd | Ind of ind

let fd r xs ys =
  if xs = [] then invalid_arg "Constr.fd: empty lhs";
  if ys = [] then invalid_arg "Constr.fd: empty rhs";
  Fd
    {
      frel = r.Schema.name;
      lhs = Schema.attr_indices r xs;
      rhs = Schema.attr_indices r ys;
    }

let key r xs = fd r xs (Array.to_list r.Schema.attrs)

let ind ~sub sub_xs ~sup sup_ys =
  if List.length sub_xs <> List.length sup_ys then
    invalid_arg "Constr.ind: attribute lists of different lengths";
  if sub_xs = [] then invalid_arg "Constr.ind: empty attribute lists";
  Ind
    {
      sub_rel = sub.Schema.name;
      sub_attrs = Schema.attr_indices sub sub_xs;
      sup_rel = sup.Schema.name;
      sup_attrs = Schema.attr_indices sup sup_ys;
    }

let is_key schema f =
  let positions = List.sort_uniq Int.compare f.rhs in
  List.length positions = Schema.arity schema

let fds cs = List.filter_map (function Fd f -> Some f | Ind _ -> None) cs
let inds cs = List.filter_map (function Ind i -> Some i | Fd _ -> None) cs

let classify catalog cs =
  let of_constr = function
    | Ind _ -> `Ind
    | Fd f -> if is_key (Schema.find catalog f.frel) f then `Key else `Fd
  in
  List.map of_constr cs

let pp_attrs schema ppf positions =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf i -> Format.pp_print_string ppf schema.Schema.attrs.(i))
    ppf positions

let pp catalog ppf = function
  | Fd f ->
      let schema = Schema.find catalog f.frel in
      Format.fprintf ppf "%s: %a -> %a" f.frel (pp_attrs schema) f.lhs
        (pp_attrs schema) f.rhs
  | Ind i ->
      let sub = Schema.find catalog i.sub_rel in
      let sup = Schema.find catalog i.sup_rel in
      Format.fprintf ppf "%s[%a] <= %s[%a]" i.sub_rel (pp_attrs sub)
        i.sub_attrs i.sup_rel (pp_attrs sup) i.sup_attrs
