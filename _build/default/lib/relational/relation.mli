(** A mutable relation instance: a set of ground tuples with lazily built
    per-column hash indexes.

    Relations are {e sets}: inserting a duplicate tuple is a no-op. This
    matches the paper's model, where a blockchain database's current state
    is a set of relations and transactions insert sets of tuples. The
    store is append-only (blockchains never delete), so indexes are
    maintained incrementally and never invalidated. *)

type t

val create : Schema.relation -> t
val schema : t -> Schema.relation
val name : t -> string
val cardinality : t -> int

val insert : t -> Tuple.t -> bool
(** [insert r t] adds [t]; returns [false] if it was already present.
    Raises [Invalid_argument] on an arity mismatch. *)

val mem : t -> Tuple.t -> bool
val scan : t -> Tuple.t Seq.t

val lookup : t -> (int * Value.t) list -> Tuple.t Seq.t
(** [lookup r binds] yields every tuple agreeing with all [(position,
    value)] pairs in [binds], using (and if needed building) a hash index
    on the first bound position. [lookup r []] is {!scan}. *)

val lookup_count_estimate : t -> (int * Value.t) list -> int
(** Upper bound on [lookup] result size from the index on the first bound
    position; used by the query planner for join ordering. *)

val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Tuple.t -> unit) -> t -> unit
val to_list : t -> Tuple.t list
val pp : Format.formatter -> t -> unit
