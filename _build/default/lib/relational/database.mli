(** A database: a catalog of schemas together with one {!Relation.t}
    instance per relation name. Used for the current state [R] of a
    blockchain database and for scratch materializations in tests. *)

type t

val create : Schema.t -> t
(** Fresh empty instance for every relation of the catalog. *)

val catalog : t -> Schema.t
val relation : t -> string -> Relation.t
(** Raises [Not_found] for an unknown relation name. *)

val relation_opt : t -> string -> Relation.t option

val insert : t -> string -> Tuple.t -> bool
(** Insert into a named relation; see {!Relation.insert}. *)

val insert_all : t -> (string * Tuple.t) list -> unit

val total_cardinality : t -> int
val copy : t -> t
(** Deep copy (fresh relations holding the same tuples). *)

val source : t -> Source.t
(** Read-only view for the query evaluator. *)

val pp : Format.formatter -> t -> unit
