(** Relation schemas and schema catalogs.

    A relation schema [R(A1, ..., An)] names a relation and its attributes
    (Section 4 of the paper). A catalog maps relation names to schemas and
    is shared by the current state, pending transactions, and queries. *)

type relation = private { name : string; attrs : string array }

val relation : string -> string list -> relation
(** [relation name attrs] builds a schema. Raises [Invalid_argument] on an
    empty or duplicate attribute list. *)

val arity : relation -> int

val attr_index : relation -> string -> int
(** Position of a named attribute. Raises [Not_found] if absent. *)

val attr_indices : relation -> string list -> int list

val pp_relation : Format.formatter -> relation -> unit

type t
(** A catalog of relation schemas, keyed by relation name. *)

val empty : t
val add : t -> relation -> t
(** Raises [Invalid_argument] if a schema with the same name exists. *)

val of_list : relation list -> t
val find : t -> string -> relation
(** Raises [Not_found]. *)

val find_opt : t -> string -> relation option
val mem : t -> string -> bool
val relations : t -> relation list
(** In name order. *)
