type violation =
  | Fd_violation of Constr.fd * Tuple.t * Tuple.t
  | Ind_violation of Constr.ind * Tuple.t

let pp_violation ppf = function
  | Fd_violation (f, t1, t2) ->
      Format.fprintf ppf "fd violation on %s: %a vs %a" f.Constr.frel Tuple.pp
        t1 Tuple.pp t2
  | Ind_violation (i, t) ->
      Format.fprintf ppf "ind violation: %s tuple %a unsupported in %s"
        i.Constr.sub_rel Tuple.pp t i.Constr.sup_rel

exception Found of violation

let check_fd (src : Source.t) (f : Constr.fd) =
  let seen = Tuple.Tbl.create 256 in
  try
    src.Source.scan f.Constr.frel
    |> Seq.iter (fun t ->
           let lhs = Tuple.project t f.Constr.lhs in
           let rhs = Tuple.project t f.Constr.rhs in
           match Tuple.Tbl.find_opt seen lhs with
           | Some (rhs', t') ->
               if not (Tuple.equal rhs rhs') then
                 raise (Found (Fd_violation (f, t', t)))
           | None -> Tuple.Tbl.replace seen lhs (rhs, t));
    None
  with Found v -> Some v

let check_ind (src : Source.t) (i : Constr.ind) =
  let supported = Tuple.Tbl.create 256 in
  src.Source.scan i.Constr.sup_rel
  |> Seq.iter (fun t ->
         Tuple.Tbl.replace supported (Tuple.project t i.Constr.sup_attrs) ());
  try
    src.Source.scan i.Constr.sub_rel
    |> Seq.iter (fun t ->
           if not (Tuple.Tbl.mem supported (Tuple.project t i.Constr.sub_attrs))
           then raise (Found (Ind_violation (i, t))));
    None
  with Found v -> Some v

let check_one src = function
  | Constr.Fd f -> check_fd src f
  | Constr.Ind i -> check_ind src i

let first_violation src cs = List.find_map (check_one src) cs
let satisfies src cs = Option.is_none (first_violation src cs)
let violations src cs = List.filter_map (check_one src) cs

let fd_conflict (src : Source.t) (f : Constr.fd) (t : Tuple.t) =
  let binds = List.map (fun col -> (col, t.(col))) f.Constr.lhs in
  let rhs = Tuple.project t f.Constr.rhs in
  src.Source.lookup f.Constr.frel binds
  |> Seq.find (fun t' -> not (Tuple.equal (Tuple.project t' f.Constr.rhs) rhs))

let ind_supported (src : Source.t) (i : Constr.ind) (t : Tuple.t) =
  let binds =
    List.map2
      (fun sup_col sub_col -> (sup_col, t.(sub_col)))
      i.Constr.sup_attrs i.Constr.sub_attrs
  in
  not (Seq.is_empty (src.Source.lookup i.Constr.sup_rel binds))

let batch_consistent (src : Source.t) cs rows =
  let batch_of rel =
    List.concat_map (fun (name, ts) -> if String.equal name rel then ts else [])
      rows
  in
  let fd_ok (f : Constr.fd) =
    let fresh = batch_of f.Constr.frel in
    fresh = []
    ||
    let seen = Tuple.Tbl.create 16 in
    List.for_all
      (fun t ->
        if Option.is_some (fd_conflict src f t) then false
        else
          let lhs = Tuple.project t f.Constr.lhs in
          let rhs = Tuple.project t f.Constr.rhs in
          match Tuple.Tbl.find_opt seen lhs with
          | Some rhs' -> Tuple.equal rhs rhs'
          | None ->
              Tuple.Tbl.replace seen lhs rhs;
              true)
      fresh
  in
  let ind_ok (i : Constr.ind) =
    let fresh_sub = batch_of i.Constr.sub_rel in
    fresh_sub = []
    ||
    let fresh_sup = Tuple.Tbl.create 16 in
    List.iter
      (fun t ->
        Tuple.Tbl.replace fresh_sup (Tuple.project t i.Constr.sup_attrs) ())
      (batch_of i.Constr.sup_rel);
    List.for_all
      (fun t ->
        Tuple.Tbl.mem fresh_sup (Tuple.project t i.Constr.sub_attrs)
        || ind_supported src i t)
      fresh_sub
  in
  List.for_all
    (function Constr.Fd f -> fd_ok f | Constr.Ind i -> ind_ok i)
    cs
