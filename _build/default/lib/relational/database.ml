module Smap = Map.Make (String)

type t = { catalog : Schema.t; relations : Relation.t Smap.t }

let create catalog =
  let relations =
    List.fold_left
      (fun acc r -> Smap.add r.Schema.name (Relation.create r) acc)
      Smap.empty (Schema.relations catalog)
  in
  { catalog; relations }

let catalog t = t.catalog
let relation t name = Smap.find name t.relations
let relation_opt t name = Smap.find_opt name t.relations
let insert t name tuple = Relation.insert (relation t name) tuple

let insert_all t rows =
  List.iter (fun (name, tuple) -> ignore (insert t name tuple)) rows

let total_cardinality t =
  Smap.fold (fun _ r acc -> acc + Relation.cardinality r) t.relations 0

let copy t =
  let fresh = create t.catalog in
  Smap.iter
    (fun name r -> Relation.iter (fun tu -> ignore (insert fresh name tu)) r)
    t.relations;
  fresh

let source t =
  {
    Source.catalog = t.catalog;
    scan = (fun name -> Relation.scan (relation t name));
    lookup = (fun name binds -> Relation.lookup (relation t name) binds);
    mem = (fun name tu -> Relation.mem (relation t name) tu);
    cardinality = (fun name -> Relation.cardinality (relation t name));
    selectivity =
      (fun name binds -> Relation.lookup_count_estimate (relation t name) binds);
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list Relation.pp)
    (List.map snd (Smap.bindings t.relations))
