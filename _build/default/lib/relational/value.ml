type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

let tag = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Str _ -> 4

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | _ -> Int.compare (tag a) (tag b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Bool b -> if b then 1 else 2
  | Int i -> Hashtbl.hash (2, i)
  | Float f -> Hashtbl.hash (3, f)
  | Str s -> Hashtbl.hash (4, s)

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Null | Bool _ | Str _ -> None

let is_numeric v = match v with Int _ | Float _ -> true | _ -> false

let lt a b =
  match (a, b) with
  | Int x, Int y -> x < y
  | Str x, Str y -> x < y
  | Bool x, Bool y -> (not x) && y
  | (Int _ | Float _), (Int _ | Float _) -> (
      match (to_float a, to_float b) with
      | Some x, Some y -> x < y
      | _ -> false)
  | _ -> false

let add a b =
  match (a, b) with
  | Int x, Int y -> Int (x + y)
  | (Int _ | Float _), (Int _ | Float _) -> (
      match (to_float a, to_float b) with
      | Some x, Some y -> Float (x +. y)
      | _ -> invalid_arg "Value.add: non-numeric operand")
  | _ -> invalid_arg "Value.add: non-numeric operand"

let zero = Int 0
let max_v a b = if lt a b then b else a
let min_v a b = if lt b a then b else a

let pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Format.fprintf ppf "%.1f" f
      else begin
        (* Shortest representation that parses back to the same float. *)
        let short = Printf.sprintf "%.12g" f in
        if float_of_string short = f then Format.pp_print_string ppf short
        else Format.fprintf ppf "%.17g" f
      end
  | Str s -> Format.fprintf ppf "%S" s

let to_string v = Format.asprintf "%a" pp v
