type relation = { name : string; attrs : string array }

let relation name attrs =
  if attrs = [] then invalid_arg "Schema.relation: no attributes";
  let sorted = List.sort_uniq String.compare attrs in
  if List.length sorted <> List.length attrs then
    invalid_arg ("Schema.relation: duplicate attribute in " ^ name);
  { name; attrs = Array.of_list attrs }

let arity r = Array.length r.attrs

let attr_index r a =
  let n = Array.length r.attrs in
  let rec go i =
    if i >= n then raise Not_found
    else if String.equal r.attrs.(i) a then i
    else go (i + 1)
  in
  go 0

let attr_indices r attrs = List.map (attr_index r) attrs

let pp_relation ppf r =
  Format.fprintf ppf "%s(%a)" r.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_string)
    (Array.to_list r.attrs)

module Smap = Map.Make (String)

type t = relation Smap.t

let empty = Smap.empty

let add t r =
  if Smap.mem r.name t then
    invalid_arg ("Schema.add: duplicate relation " ^ r.name)
  else Smap.add r.name r t

let of_list rs = List.fold_left add empty rs
let find t name = Smap.find name t
let find_opt t name = Smap.find_opt name t
let mem t name = Smap.mem name t
let relations t = List.map snd (Smap.bindings t)
