(** Integrity-constraint satisfaction over a {!Source.t}: [R |= I] checks,
    witness extraction, and the incremental per-tuple checks used by the
    core algorithms ([getMaximal], graph construction).

    Incremental reasoning relies on two standard monotonicity facts:
    functional-dependency violations are pairwise (so appending tuples can
    only add violations that involve a new tuple), and inclusion
    dependencies can never be broken for already-present tuples by
    appending more tuples. *)

type violation =
  | Fd_violation of Constr.fd * Tuple.t * Tuple.t
      (** Two tuples agreeing on the lhs, differing on the rhs. *)
  | Ind_violation of Constr.ind * Tuple.t
      (** A sub-relation tuple whose projection is unsupported. *)

val pp_violation : Format.formatter -> violation -> unit

val check_fd : Source.t -> Constr.fd -> violation option
val check_ind : Source.t -> Constr.ind -> violation option
val first_violation : Source.t -> Constr.t list -> violation option
val satisfies : Source.t -> Constr.t list -> bool
val violations : Source.t -> Constr.t list -> violation list

val fd_conflict : Source.t -> Constr.fd -> Tuple.t -> Tuple.t option
(** [fd_conflict src f t] is a visible tuple of [f.frel] agreeing with [t]
    on the lhs of [f] but differing on the rhs, if any. [t] itself need
    not be visible. *)

val ind_supported : Source.t -> Constr.ind -> Tuple.t -> bool
(** Whether a (hypothetical) sub-relation tuple's projection is present in
    the visible sup relation. *)

val batch_consistent :
  Source.t -> Constr.t list -> (string * Tuple.t list) list -> bool
(** [batch_consistent src cs rows] decides whether the visible source
    extended with [rows] (grouped by relation name) still satisfies [cs].
    Runs in time proportional to the batch, not the source. *)
