lib/relational/constr.ml: Array Format Int List Schema
