lib/relational/database.ml: Format List Map Relation Schema Source String
