lib/relational/source.ml: Schema Seq Tuple Value
