lib/relational/check.ml: Array Constr Format List Option Seq Source String Tuple
