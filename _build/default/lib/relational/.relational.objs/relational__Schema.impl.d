lib/relational/schema.ml: Array Format List Map String
