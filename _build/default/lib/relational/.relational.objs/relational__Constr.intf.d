lib/relational/constr.mli: Format Schema
