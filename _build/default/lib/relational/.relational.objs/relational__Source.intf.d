lib/relational/source.mli: Schema Seq Tuple Value
