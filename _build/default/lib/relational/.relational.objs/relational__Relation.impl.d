lib/relational/relation.ml: Array Format Hashtbl List Option Printf Schema Seq Tuple Value
