lib/relational/check.mli: Constr Format Source Tuple
