lib/relational/relation.mli: Format Schema Seq Tuple Value
